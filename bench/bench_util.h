#ifndef PRISMA_BENCH_BENCH_UTIL_H_
#define PRISMA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <initializer_list>

#include "obs/metrics.h"

namespace prisma::bench {

/// True when the binary was invoked with `flag` (exact match).
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// True when the binary was invoked with --smoke: run a tiny, seconds-fast
/// version of the experiment (registered as a ctest case) instead of the
/// full sweep.
inline bool SmokeMode(int argc, char** argv) {
  return HasFlag(argc, argv, "--smoke");
}

/// Prints the named counter series (summed across label sets) from a
/// registry — the bench's measured output sourced from the metrics layer
/// rather than ad-hoc bookkeeping.
inline void PrintCounterSeries(const obs::MetricsRegistry& registry,
                               std::initializer_list<const char*> names) {
  std::printf("\n-- measured series (metrics registry) --\n");
  for (const char* name : names) {
    std::printf("%-26s %llu\n", name,
                static_cast<unsigned long long>(registry.CounterTotal(name)));
  }
}

}  // namespace prisma::bench

#endif  // PRISMA_BENCH_BENCH_UTIL_H_
