// E15 — Serving layer: open-loop sessions through admission control and
// the shared plan cache (DESIGN.md §15).
//
// Harness: a seeded open-loop workload (serve::WorkloadGenerator) drives
// thousands of simulated client sessions against one machine through the
// serving dispatcher. Three axes are measured:
//
//   1. Load sweep — offered rate vs achieved throughput and the exact
//      p50/p99/p999 latency, locating the saturation knee. ≥3 points.
//   2. Overload — offered 2x the measured saturation throughput: every
//      statement must resolve (answer, typed Unavailable or typed
//      Overloaded — never a hang), and the same seed must replay to
//      byte-identical metrics.
//   3. Plan cache — the identical read-only workload with the cache on
//      vs off: the cached run must show hits, a strictly lower p50 and
//      byte-identical answers.
//
// Emits BENCH_serving.json — the latency/saturation trajectory plus the
// cache contrast — so serving regressions are visible PR-over-PR.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "serve/dispatcher.h"
#include "serve/workload.h"

using prisma::StrFormat;
using prisma::Tuple;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;
using prisma::serve::Dispatcher;
using prisma::serve::DispatcherOptions;
using prisma::serve::WorkloadGenerator;
using prisma::serve::WorkloadProfile;

namespace {

// Scale (smoke shrinks these).
int kRows = 2000;
int kFragments = 8;
int kPes = 8;
int kSessions = 400;
prisma::sim::SimTime kDurationNs = prisma::sim::kNanosPerSecond / 2;
uint64_t kSeed = 42;

struct PointResult {
  double offered_qps = 0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t unavailable = 0;
  uint64_t failed = 0;
  int64_t p50 = 0;
  int64_t p99 = 0;
  int64_t p999 = 0;
  double throughput_qps = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Concatenated replies in submission order (read-only runs only).
  std::string digest;
  /// Metrics dump for same-seed replay comparison.
  std::string metrics;
};

/// Runs one load point end to end on a fresh machine.
PointResult RunPoint(uint64_t seed, double offered_qps, size_t cache_capacity,
                     bool read_only, bool collect_digest,
                     bool collect_metrics) {
  MachineConfig config;
  config.pes = kPes;
  config.plan_cache_capacity = cache_capacity;
  PrismaDb db(config);
  PRISMA_CHECK(WorkloadGenerator::SetupSchema(&db, kRows, kFragments).ok());

  WorkloadProfile profile;
  profile.sessions = kSessions;
  profile.offered_qps = offered_qps;
  profile.duration_ns = kDurationNs;
  if (read_only) {
    // Pure parameterized point reads: answers are interleaving-independent
    // (no writes), the per-statement cost is far below saturation at the
    // cache load point, and the small key domain re-parameterizes the same
    // normalized statement often — the plan cache's target traffic.
    profile.mix = {1.0, 0, 0, 0};
    profile.key_domain = 128;
  }
  WorkloadGenerator generator(seed, profile);
  const std::vector<prisma::serve::ArrivalEvent> schedule =
      generator.Generate();

  Dispatcher dispatcher(&db, DispatcherOptions());
  PointResult out;
  out.offered_qps = offered_qps;
  const prisma::sim::SimTime start_ns = db.simulator().now();
  std::vector<std::string> replies(collect_digest ? schedule.size() : 0);
  for (size_t i = 0; i < schedule.size(); ++i) {
    const prisma::serve::ArrivalEvent& event = schedule[i];
    dispatcher.Submit(
        event.sql, prisma::exec::kAutoCommit,
        [i, collect_digest, &replies](const prisma::gdh::ClientReply& reply,
                                      prisma::sim::SimTime) {
          if (!collect_digest) return;
          std::string& line = replies[i];
          line = reply.status.ok() ? "ok" : reply.status.ToString();
          if (reply.tuples != nullptr) {
            for (const Tuple& t : *reply.tuples) line += " " + t.ToString();
          }
        },
        event.at_ns);
  }
  dispatcher.Run();

  const Dispatcher::Stats& stats = dispatcher.stats();
  // The zero-hang contract: every submitted statement resolved.
  PRISMA_CHECK(stats.submitted == stats.completed + stats.shed)
      << "hang: " << stats.submitted << " submitted, " << stats.completed
      << " completed, " << stats.shed << " shed";
  // Fault-free machine: nothing may fail outright (a broken workload
  // statement shape would otherwise hide inside the failed count).
  PRISMA_CHECK(stats.failed == 0 && stats.unavailable == 0)
      << stats.failed << " failed, " << stats.unavailable << " unavailable";
  out.submitted = stats.submitted;
  out.completed = stats.completed;
  out.shed = stats.shed;
  out.unavailable = stats.unavailable;
  out.failed = stats.failed;
  out.p50 = dispatcher.latency().P50();
  out.p99 = dispatcher.latency().P99();
  out.p999 = dispatcher.latency().P999();
  const prisma::sim::SimTime makespan_ns = db.simulator().now() - start_ns;
  out.throughput_qps =
      makespan_ns > 0 ? static_cast<double>(stats.completed) *
                            prisma::sim::kNanosPerSecond / makespan_ns
                      : 0;
  out.cache_hits = db.plan_cache().hits();
  out.cache_misses = db.plan_cache().misses();
  for (const std::string& line : replies) {
    out.digest += line;
    out.digest += '\n';
  }
  if (collect_metrics) out.metrics = db.DumpMetrics();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  if (smoke) {
    kRows = 400;
    kFragments = 4;
    kPes = 4;
    kSessions = 60;
    kDurationNs = prisma::sim::kNanosPerSecond / 5;
  }

  // ------------------------------------------------------------ Load sweep
  std::vector<double> loads =
      smoke ? std::vector<double>{500, 2000, 8000}
            : std::vector<double>{400, 1600, 6400, 25600};
  std::printf("== load sweep: %d sessions, %d rows, %d fragments, %d PEs\n",
              kSessions, kRows, kFragments, kPes);
  std::printf("%10s %10s %10s %8s %10s %10s %10s\n", "offered", "tput",
              "completed", "shed", "p50_us", "p99_us", "p999_us");
  std::vector<PointResult> sweep;
  double saturation_qps = 0;
  for (double qps : loads) {
    PointResult r = RunPoint(kSeed, qps, /*cache_capacity=*/256,
                             /*read_only=*/false, /*collect_digest=*/false,
                             /*collect_metrics=*/false);
    std::printf("%10.0f %10.0f %10llu %8llu %10.1f %10.1f %10.1f\n",
                r.offered_qps, r.throughput_qps,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.shed), r.p50 / 1e3,
                r.p99 / 1e3, r.p999 / 1e3);
    saturation_qps = std::max(saturation_qps, r.throughput_qps);
    sweep.push_back(std::move(r));
  }
  std::printf("saturation throughput: %.0f qps\n", saturation_qps);

  // ------------------------------------------- Overload at 2x saturation
  // Same seed twice: zero hangs (checked inside RunPoint) and a
  // byte-identical replay, metrics included.
  const double overload_qps = 2 * saturation_qps;
  PointResult over_a = RunPoint(kSeed, overload_qps, 256, false, false,
                                /*collect_metrics=*/true);
  PointResult over_b = RunPoint(kSeed, overload_qps, 256, false, false,
                                /*collect_metrics=*/true);
  PRISMA_CHECK(over_a.metrics == over_b.metrics)
      << "same-seed overload replay diverged";
  PRISMA_CHECK(over_a.completed == over_b.completed &&
               over_a.shed == over_b.shed && over_a.p999 == over_b.p999);
  std::printf(
      "\n== overload at 2x saturation (%.0f qps): %llu completed, "
      "%llu shed, %llu unavailable, p99 %.1f us — deterministic replay ok\n",
      overload_qps, static_cast<unsigned long long>(over_a.completed),
      static_cast<unsigned long long>(over_a.shed),
      static_cast<unsigned long long>(over_a.unavailable), over_a.p99 / 1e3);

  // ------------------------------------------------- Plan-cache contrast
  // Read-only mix so answers are interleaving-independent; a load point
  // well under saturation so nothing is shed and the digests line up
  // statement for statement.
  const double cache_qps = smoke ? 500 : 1600;
  PointResult cache_on = RunPoint(kSeed, cache_qps, 256, /*read_only=*/true,
                                  /*collect_digest=*/true, false);
  PointResult cache_off = RunPoint(kSeed, cache_qps, 0, /*read_only=*/true,
                                   /*collect_digest=*/true, false);
  PRISMA_CHECK(cache_on.shed == 0 && cache_off.shed == 0)
      << "cache contrast must run below saturation (shed " << cache_on.shed
      << " on, " << cache_off.shed << " off)";
  PRISMA_CHECK(cache_on.cache_hits > 0) << "plan cache never hit";
  PRISMA_CHECK(cache_off.cache_hits == 0);
  PRISMA_CHECK(cache_on.digest == cache_off.digest)
      << "cached answers differ from uncached answers";
  PRISMA_CHECK(cache_on.p50 < cache_off.p50)
      << "plan cache did not lower p50: " << cache_on.p50
      << " !< " << cache_off.p50;
  const double hit_rate =
      static_cast<double>(cache_on.cache_hits) /
      static_cast<double>(cache_on.cache_hits + cache_on.cache_misses);
  std::printf(
      "\n== plan cache at %.0f qps: hit rate %.3f, p50 %.1f us (on) vs "
      "%.1f us (off), p99 %.1f vs %.1f — answers byte-identical\n",
      cache_qps, hit_rate, cache_on.p50 / 1e3, cache_off.p50 / 1e3,
      cache_on.p99 / 1e3, cache_off.p99 / 1e3);

  std::printf("cache-on: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(cache_on.cache_hits),
              static_cast<unsigned long long>(cache_on.cache_misses));

  // JSON trajectory artifact.
  std::string json = StrFormat(
      "{\n  \"bench\": \"serving\",\n  \"smoke\": %s,\n"
      "  \"scale\": {\"rows\": %d, \"fragments\": %d, \"pes\": %d, "
      "\"sessions\": %d},\n"
      "  \"saturation_qps\": %.0f,\n  \"sweep\": [\n",
      smoke ? "true" : "false", kRows, kFragments, kPes, kSessions,
      saturation_qps);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const PointResult& r = sweep[i];
    json += StrFormat(
        "    {\"offered_qps\": %.0f, \"throughput_qps\": %.0f, "
        "\"completed\": %llu, \"shed\": %llu, \"unavailable\": %llu, "
        "\"p50_ns\": %lld, \"p99_ns\": %lld, \"p999_ns\": %lld}%s\n",
        r.offered_qps, r.throughput_qps,
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.unavailable),
        static_cast<long long>(r.p50), static_cast<long long>(r.p99),
        static_cast<long long>(r.p999), i + 1 < sweep.size() ? "," : "");
  }
  json += StrFormat(
      "  ],\n  \"overload\": {\"offered_qps\": %.0f, \"completed\": %llu, "
      "\"shed\": %llu, \"unavailable\": %llu, \"p99_ns\": %lld},\n",
      overload_qps, static_cast<unsigned long long>(over_a.completed),
      static_cast<unsigned long long>(over_a.shed),
      static_cast<unsigned long long>(over_a.unavailable),
      static_cast<long long>(over_a.p99));
  json += StrFormat(
      "  \"plan_cache\": {\"hit_rate\": %.4f, \"p50_on_ns\": %lld, "
      "\"p50_off_ns\": %lld, \"p99_on_ns\": %lld, \"p99_off_ns\": %lld}\n}\n",
      hit_rate, static_cast<long long>(cache_on.p50),
      static_cast<long long>(cache_off.p50),
      static_cast<long long>(cache_on.p99),
      static_cast<long long>(cache_off.p99));
  const char* path = "BENCH_serving.json";
  std::FILE* f = std::fopen(path, "w");
  PRISMA_CHECK(f != nullptr) << "cannot write " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
