// E2 — Fragment parallelism (paper §2.1, §2.2).
//
// Paper claim: "performance improvement by introduction of parallelism";
// fragmented relations are processed by many One-Fragment Managers in
// parallel, coordinated per query.
//
// Harness: the same selection / aggregation / join workloads over a
// 50,000-row relation fragmented into 1..48 fragments of a 64-PE machine;
// reports simulated response time and speedup versus one fragment.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;

namespace {

constexpr int kBatch = 500;
int g_rows = 50'000;

struct Timings {
  double select_ms;
  double aggregate_ms;
  double join_ms;
  /// Registry series for the three queries: tuples the OFMs scanned and
  /// messages the interconnect delivered (deltas over the query phase).
  uint64_t tuples_scanned;
  uint64_t messages;
};

Timings RunWithFragments(int fragments) {
  const int kRows = g_rows;
  PrismaDb db{MachineConfig()};  // 64 PEs.
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute(StrFormat(
      "CREATE TABLE sales (id INT, region INT, amount INT) "
      "FRAGMENTED BY HASH(id) INTO %d FRAGMENTS",
      fragments)));
  must(db.Execute(
      "CREATE TABLE region (id INT, name STRING) "
      "FRAGMENTED BY HASH(id) INTO 2 FRAGMENTS"));
  for (int r = 0; r < 10; ++r) {
    must(db.Execute(StrFormat("INSERT INTO region VALUES (%d, 'r%d')", r, r)));
  }
  for (int base = 0; base < kRows; base += kBatch) {
    std::string sql = "INSERT INTO sales VALUES ";
    for (int i = 0; i < kBatch; ++i) {
      const int id = base + i;
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, %d, %d)", id, id % 10, (id * 37) % 1000);
    }
    must(db.Execute(sql));
  }

  Timings t;
  const uint64_t scanned_before = db.metrics().CounterTotal("ofm.tuples_scanned");
  const uint64_t messages_before =
      db.metrics().CounterValue("net.messages_delivered");
  t.select_ms = static_cast<double>(
                    must(db.Execute("SELECT id FROM sales WHERE amount < 20"))
                        .response_time_ns) /
                1e6;
  t.aggregate_ms =
      static_cast<double>(
          must(db.Execute("SELECT region, COUNT(*), SUM(amount) FROM sales "
                          "GROUP BY region"))
              .response_time_ns) /
      1e6;
  t.join_ms = static_cast<double>(
                  must(db.Execute(
                          "SELECT r.name, s.amount FROM sales s "
                          "JOIN region r ON s.region = r.id "
                          "WHERE s.amount >= 990"))
                      .response_time_ns) /
              1e6;
  t.tuples_scanned =
      db.metrics().CounterTotal("ofm.tuples_scanned") - scanned_before;
  t.messages =
      db.metrics().CounterValue("net.messages_delivered") - messages_before;
  return t;
}

// ------------------------------------------- join execution strategies
//
// The same logical join under the three physical executions the machine
// supports (--shuffle):
//   co-located  orders is fragmented on the join key, aligned with cust —
//               the allocation manager anticipated the join (§2.2);
//   shuffle     orders is fragmented on its primary key, so the exchange
//               layer streams it between the PEs at query time (§10);
//   gather      exchanges disabled: both inputs ship to the coordinator.

enum class JoinMode { kColocated, kShuffle, kGather };

struct JoinStrategyRow {
  double ms = 0;
  double mbits = 0;
  uint64_t batches = 0;  // exchange.batches_sent over the join.
};

JoinStrategyRow RunJoinStrategy(int fragments, JoinMode mode) {
  const int kRows = g_rows;
  MachineConfig config;  // 64 PEs.
  if (mode == JoinMode::kGather) {
    config.rules.colocated_joins = false;
    config.rules.exchange_joins = false;
  }
  PrismaDb db(config);
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute(StrFormat(
      "CREATE TABLE orders (id INT, cust INT, qty INT) "
      "FRAGMENTED BY HASH(%s) INTO %d FRAGMENTS",
      mode == JoinMode::kColocated ? "cust" : "id", fragments)));
  must(db.Execute(StrFormat(
      "CREATE TABLE cust (id INT, name STRING) "
      "FRAGMENTED BY HASH(id) INTO %d FRAGMENTS",
      fragments)));
  for (int base = 0; base < 10'000; base += kBatch) {
    std::string sql = "INSERT INTO cust VALUES ";
    for (int i = 0; i < kBatch; ++i) {
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, 'c%d')", base + i, base + i);
    }
    must(db.Execute(sql));
  }
  for (int base = 0; base < kRows; base += kBatch) {
    std::string sql = "INSERT INTO orders VALUES ";
    for (int i = 0; i < kBatch; ++i) {
      const int id = base + i;
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, %d, %d)", id, id % 10'000, (id * 37) % 1000);
    }
    must(db.Execute(sql));
  }

  JoinStrategyRow row;
  const int64_t bits_before =
      static_cast<int64_t>(db.metrics().CounterValue("net.link_bits"));
  const uint64_t batches_before =
      db.metrics().CounterTotal("exchange.batches_sent");
  row.ms = static_cast<double>(
               must(db.Execute("SELECT c.name, o.qty FROM orders o "
                               "JOIN cust c ON o.cust = c.id "
                               "WHERE o.qty >= 990"))
                   .response_time_ns) /
           1e6;
  row.mbits =
      static_cast<double>(
          static_cast<int64_t>(db.metrics().CounterValue("net.link_bits")) -
          bits_before) /
      1e6;
  row.batches =
      db.metrics().CounterTotal("exchange.batches_sent") - batches_before;
  return row;
}

void JoinStrategySweep(const std::vector<int>& fragment_sweep) {
  std::printf("E2b: join execution strategies, orders(%d) x cust(10000), "
              "64 PEs\n",
              g_rows);
  std::printf("%-10s | %13s | %10s %10s | %10s %10s | %8s\n", "fragments",
              "colocated ms", "shuffle ms", "Mb", "gather ms", "Mb",
              "batches");
  for (const int fragments : fragment_sweep) {
    const JoinStrategyRow colocated =
        RunJoinStrategy(fragments, JoinMode::kColocated);
    const JoinStrategyRow shuffle =
        RunJoinStrategy(fragments, JoinMode::kShuffle);
    const JoinStrategyRow gather =
        RunJoinStrategy(fragments, JoinMode::kGather);
    PRISMA_CHECK(colocated.batches == 0 && gather.batches == 0);
    PRISMA_CHECK(fragments == 1 || shuffle.batches > 0)
        << "the shuffle run did not use the exchange layer";
    std::printf("%-10d | %13.2f | %10.2f %10.2f | %10.2f %10.2f | %8llu\n",
                fragments, colocated.ms, shuffle.ms, shuffle.mbits, gather.ms,
                gather.mbits, static_cast<unsigned long long>(shuffle.batches));
  }
  std::printf(
      "\nreading: co-located placement wins when the allocation manager "
      "anticipated the\njoin. When it did not, the exchange layer picks the "
      "cheapest movement by modeled\nshipped tuples: broadcast of the small "
      "cust side at low fragment counts, then a\nhash shuffle of the "
      "filtered orders side once replication would cost more — and\neither "
      "beats shipping both inputs to the coordinator for a serial join.\n");
}

// --------------------------------------------- row vs vectorized shuffle
//
// The same shuffled join in both execution modes (--vectorized): the
// vectorized machine column-encodes every exchange frame, so beyond the
// kernel speedup its `exchange.wire_bits` must come in below the row
// encoding for identical batch counts (DESIGN.md §12.3; the smoke ctest
// case is the regression gate for the wire-savings contract).

struct ModeRow {
  double ms = 0;
  uint64_t batches = 0;
  uint64_t wire_bits = 0;
};

ModeRow RunShuffleJoin(int fragments, prisma::exec::ExecMode mode) {
  const int kRows = g_rows;
  MachineConfig config;  // 64 PEs.
  config.exec_mode = mode;
  PrismaDb db(config);
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute(StrFormat(
      "CREATE TABLE orders (id INT, cust INT, qty INT) "
      "FRAGMENTED BY HASH(id) INTO %d FRAGMENTS",
      fragments)));
  must(db.Execute(StrFormat(
      "CREATE TABLE cust (id INT, name STRING) "
      "FRAGMENTED BY HASH(id) INTO %d FRAGMENTS",
      fragments)));
  for (int base = 0; base < 10'000; base += kBatch) {
    std::string sql = "INSERT INTO cust VALUES ";
    for (int i = 0; i < kBatch; ++i) {
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, 'c%d')", base + i, base + i);
    }
    must(db.Execute(sql));
  }
  for (int base = 0; base < kRows; base += kBatch) {
    std::string sql = "INSERT INTO orders VALUES ";
    for (int i = 0; i < kBatch; ++i) {
      const int id = base + i;
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, %d, %d)", id, id % 10'000, (id * 37) % 1000);
    }
    must(db.Execute(sql));
  }

  ModeRow row;
  const uint64_t batches_before =
      db.metrics().CounterTotal("exchange.batches_sent");
  const uint64_t wire_before = db.metrics().CounterTotal("exchange.wire_bits");
  row.ms = static_cast<double>(
               must(db.Execute("SELECT c.name, o.qty FROM orders o "
                               "JOIN cust c ON o.cust = c.id "
                               "WHERE o.qty >= 990"))
                   .response_time_ns) /
           1e6;
  row.batches =
      db.metrics().CounterTotal("exchange.batches_sent") - batches_before;
  row.wire_bits =
      db.metrics().CounterTotal("exchange.wire_bits") - wire_before;
  return row;
}

void VectorizedSweep(const std::vector<int>& fragment_sweep) {
  std::printf("E2v: row vs vectorized shuffled join, orders(%d) x "
              "cust(10000), 64 PEs\n",
              g_rows);
  std::printf("%-10s | %10s %12s | %10s %12s | %8s\n", "fragments",
              "row ms", "row Mb", "vec ms", "vec Mb", "saving");
  for (const int fragments : fragment_sweep) {
    const ModeRow row = RunShuffleJoin(fragments, prisma::exec::ExecMode::kRow);
    const ModeRow vec =
        RunShuffleJoin(fragments, prisma::exec::ExecMode::kVectorized);
    // Identical plans and partitions: the same batches ship in either
    // encoding, and the column frames must be strictly smaller.
    PRISMA_CHECK(row.batches == vec.batches);
    PRISMA_CHECK(fragments == 1 || row.batches > 0);
    PRISMA_CHECK(row.batches == 0 || vec.wire_bits < row.wire_bits)
        << "column frames did not shrink the wire: " << vec.wire_bits
        << " vs " << row.wire_bits;
    const double saving =
        row.wire_bits == 0
            ? 0.0
            : 1.0 - static_cast<double>(vec.wire_bits) /
                        static_cast<double>(row.wire_bits);
    std::printf("%-10d | %10.2f %12.3f | %10.2f %12.3f | %7.1f%%\n",
                fragments, row.ms, static_cast<double>(row.wire_bits) / 1e6,
                vec.ms, static_cast<double>(vec.wire_bits) / 1e6,
                saving * 100.0);
  }
  std::printf(
      "\nreading: column-encoded frames carry the same tuples in fewer "
      "bits —\nbit-packed null bitmaps and frame-of-reference integers "
      "compress the\nshuffled payload, so the vectorized machine ships "
      "measurably less and\nresponds no slower than the row encoding.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  if (smoke) g_rows = 2'000;
  if (prisma::bench::HasFlag(argc, argv, "--vectorized")) {
    VectorizedSweep(smoke ? std::vector<int>{2, 4}
                          : std::vector<int>{1, 2, 4, 8, 16, 32});
    return 0;
  }
  if (prisma::bench::HasFlag(argc, argv, "--shuffle")) {
    JoinStrategySweep(smoke ? std::vector<int>{2, 4}
                            : std::vector<int>{1, 2, 4, 8, 16, 32, 48});
    return 0;
  }
  std::printf("E2: fragment-parallel query processing, %d rows, 64 PEs%s\n",
              g_rows, smoke ? " (smoke)" : "");
  std::printf("%-10s | %12s %8s | %12s %8s | %12s %8s | %10s %8s\n",
              "fragments", "select ms", "speedup", "aggregate ms", "speedup",
              "join ms", "speedup", "scanned", "msgs");
  Timings base{0, 0, 0, 0, 0};
  const std::vector<int> fragment_sweep =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32, 48};
  for (const int fragments : fragment_sweep) {
    const Timings t = RunWithFragments(fragments);
    if (base.select_ms == 0) base = t;
    std::printf(
        "%-10d | %12.2f %7.1fx | %12.2f %7.1fx | %12.2f %7.1fx | %10llu "
        "%8llu\n",
        fragments, t.select_ms, base.select_ms / t.select_ms, t.aggregate_ms,
        base.aggregate_ms / t.aggregate_ms, t.join_ms,
        base.join_ms / t.join_ms,
        static_cast<unsigned long long>(t.tuples_scanned),
        static_cast<unsigned long long>(t.messages));
  }
  std::printf(
      "\nreading: near-linear speedup while per-fragment work dominates; "
      "the curve\nflattens (and can turn) when coordination and result "
      "gathering dominate —\nthe coarse-grain tradeoff the paper's §2.4 "
      "discusses.\n");
  return 0;
}
