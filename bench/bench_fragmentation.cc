// E9 — Fragmentation strategies and the data-allocation manager
// (paper §2.2).
//
// Paper claim: the GDH contains a data allocation manager; how relations
// are fragmented and placed determines how much of the machine a
// statement must touch.
//
// Harness: a 20,000-row relation fragmented 16 ways by HASH(id),
// RANGE(id) and ROUNDROBIN; a batch of point lookups and point updates
// measures fragments contacted (via pruning), network traffic and
// simulated response time per strategy.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;

namespace {

int kRows = 20'000;
int kLookups = 30;

struct Outcome {
  double lookup_ms_avg = 0;
  double update_ms_avg = 0;
  double full_scan_ms = 0;
  double lookup_mbits = 0;  // Link traffic for the lookup batch.
};

Outcome RunStrategy(const char* clause) {
  PrismaDb db{MachineConfig()};
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute(StrFormat(
      "CREATE TABLE item (id INT, v INT) FRAGMENTED BY %s INTO 16 FRAGMENTS",
      clause)));
  for (int base = 0; base < kRows; base += 500) {
    std::string sql = "INSERT INTO item VALUES ";
    for (int i = 0; i < 500; ++i) {
      const int id = base + i;
      if (i > 0) sql += ", ";
      // Spread ids over the default RANGE domain [0, 1e6).
      sql += StrFormat("(%d, %d)", id * 50, id % 97);
    }
    must(db.Execute(sql));
  }

  Outcome out;
  // Link traffic from the registry series the network maintains.
  const int64_t bits_before =
      static_cast<int64_t>(db.metrics().CounterValue("net.link_bits"));
  double lookup_ns = 0;
  for (int i = 0; i < kLookups; ++i) {
    const int id = ((i * 997) % kRows) * 50;
    lookup_ns += static_cast<double>(
        must(db.Execute(StrFormat("SELECT v FROM item WHERE id = %d", id)))
            .response_time_ns);
  }
  out.lookup_mbits =
      static_cast<double>(
          static_cast<int64_t>(db.metrics().CounterValue("net.link_bits")) -
          bits_before) /
      1e6;
  out.lookup_ms_avg = lookup_ns / kLookups / 1e6;

  double update_ns = 0;
  for (int i = 0; i < kLookups; ++i) {
    const int id = ((i * 991) % kRows) * 50;
    update_ns += static_cast<double>(
        must(db.Execute(
                 StrFormat("UPDATE item SET v = v + 1 WHERE id = %d", id)))
            .response_time_ns);
  }
  out.update_ms_avg = update_ns / kLookups / 1e6;

  out.full_scan_ms =
      static_cast<double>(
          must(db.Execute("SELECT COUNT(*), SUM(v) FROM item"))
              .response_time_ns) /
      1e6;
  return out;
}

}  // namespace

namespace {

/// Join of two co-partitioned tables under the three physical executions:
/// inside the PEs (aligned placement + co-located scheduling), via the
/// streaming exchange layer (colocation off, so the join must repartition
/// at query time), or by gathering both inputs at the coordinator.
void JoinPlacementExperiment() {
  struct Mode {
    const char* name;
    bool colocated;
    bool exchanges;
  };
  const Mode modes[] = {
      {"co-located (join inside the PEs)", true, true},
      {"shuffled (exchange streams)", false, true},
      {"gathered (join at the coordinator)", false, false},
  };
  std::printf("\n-- join of co-partitioned tables: fact(20000) x dim(50) --\n");
  std::printf("%-36s %14s %18s %16s\n", "execution", "join ms",
              "join traffic Mb", "shuffle batches");
  for (const Mode& mode : modes) {
    MachineConfig config;
    config.rules.colocated_joins = mode.colocated;
    config.rules.exchange_joins = mode.exchanges;
    PrismaDb db(config);
    auto must = [](auto&& r) {
      PRISMA_CHECK(r.ok()) << r.status().ToString();
      return std::forward<decltype(r)>(r).value();
    };
    must(db.Execute("CREATE TABLE fact (k INT, v INT) "
                    "FRAGMENTED BY HASH(k) INTO 16 FRAGMENTS"));
    must(db.Execute("CREATE TABLE dim (k INT, label STRING) "
                    "FRAGMENTED BY HASH(k) INTO 16 FRAGMENTS"));
    for (int base = 0; base < kRows; base += 500) {
      std::string sql = "INSERT INTO fact VALUES ";
      for (int i = 0; i < 500; ++i) {
        const int id = base + i;
        if (i > 0) sql += ", ";
        sql += StrFormat("(%d, %d)", id % 1000, id);
      }
      must(db.Execute(sql));
    }
    // A selective dimension: 50 of 1000 fact keys match.
    std::string dim_sql = "INSERT INTO dim VALUES ";
    for (int i = 0; i < 50; ++i) {
      if (i > 0) dim_sql += ", ";
      dim_sql += StrFormat("(%d, 'd%d')", i * 20, i);
    }
    must(db.Execute(dim_sql));

    const int64_t bits_before =
        static_cast<int64_t>(db.metrics().CounterValue("net.link_bits"));
    const uint64_t batches_before =
        db.metrics().CounterTotal("exchange.batches_sent");
    auto joined = must(db.Execute(
        "SELECT f.v, d.label FROM fact f JOIN dim d ON f.k = d.k"));
    const double traffic_mb =
        static_cast<double>(
            static_cast<int64_t>(db.metrics().CounterValue("net.link_bits")) -
            bits_before) /
        1e6;
    const uint64_t batches =
        db.metrics().CounterTotal("exchange.batches_sent") - batches_before;
    std::printf("%-36s %14.2f %18.2f %16llu\n", mode.name,
                static_cast<double>(joined.response_time_ns) / 1e6,
                traffic_mb, static_cast<unsigned long long>(batches));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  if (smoke) {
    kRows = 2'000;
    kLookups = 5;
  }
  std::printf("E9: fragmentation strategy vs statement footprint%s\n",
              smoke ? " (smoke)" : "");
  std::printf("relation: %d rows, 16 fragments, 64-PE machine; %d point "
              "lookups + %d point updates\n\n",
              kRows, kLookups, kLookups);
  std::printf("%-14s %14s %14s %14s %16s\n", "strategy", "lookup ms",
              "update ms", "full scan ms", "lookup traffic Mb");
  struct Strategy {
    const char* name;
    const char* clause;
  };
  const Strategy strategies[] = {
      {"hash(id)", "HASH(id)"},
      {"range(id)", "RANGE(id)"},
      {"roundrobin", "ROUNDROBIN"},
  };
  for (const Strategy& s : strategies) {
    const Outcome o = RunStrategy(s.clause);
    std::printf("%-14s %14.2f %14.2f %14.2f %16.2f\n", s.name, o.lookup_ms_avg,
                o.update_ms_avg, o.full_scan_ms, o.lookup_mbits);
  }
  JoinPlacementExperiment();
  std::printf(
      "\nreading: key-based strategies let the coordinator prune a point "
      "query to the\none fragment that can hold the key — half the response "
      "time and ~10x less\nnetwork traffic than round-robin's broadcast. "
      "Point updates are dominated by\nthe forced WAL write (2PC), so "
      "pruning shows mainly in traffic there. Full\nscans cost the same "
      "everywhere — fragmentation is a workload decision, which\nis why "
      "PRISMA gives it to the data allocation manager (§2.2). A join of\n"
      "co-partitioned tables runs inside the PEs that host both fragments, "
      "shipping\nonly matches — the payoff of the allocation manager's "
      "aligned placement.\nWhen co-location is off the streaming exchange "
      "repartitions one side between\nthe PEs, still far cheaper than "
      "gathering both inputs at the coordinator.\n");
  return 0;
}
