// E1 — Interconnect throughput (paper §3.2).
//
// Paper claim: "Various simulations show an average network throughput of
// up to 20.000 packets (of 256 bits) per second for each processing
// element simultaneously", on a 64-PE machine with four 10 Mbit/s links
// per PE, mesh-like or chordal-ring topology.
//
// This harness re-runs that simulation: Poisson packet injection at a
// swept offered load, measuring delivered packets/s/PE and latency for
// the 8x8 mesh and the chordal ring, plus the pattern sensitivity at a
// fixed load.
//
// --loss switches to the fault-injection experiment instead: commit
// latency of distributed transactions (presumed-abort 2PC with
// retransmission) as the per-hop message-loss rate sweeps upward.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "obs/metrics.h"

using prisma::net::LinkParams;
using prisma::net::RunSyntheticTraffic;
using prisma::net::Topology;
using prisma::net::TrafficConfig;
using prisma::net::TrafficPattern;
using prisma::net::TrafficResult;

namespace {

/// Shared registry: every traffic run streams its packet/latency series
/// here, and the bench reports from it at the end.
prisma::obs::MetricsRegistry& Registry() {
  static prisma::obs::MetricsRegistry registry;
  return registry;
}

void PrintHeader(const char* title) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-14s %14s %14s %12s %10s\n", "topology", "offered/PE/s",
              "delivered/PE/s", "avg lat us", "peak util");
}

void RunPoint(const Topology& topology, TrafficPattern pattern, double offered,
              bool smoke) {
  TrafficConfig config;
  config.pattern = pattern;
  config.offered_packets_per_sec_per_pe = offered;
  config.warmup_ns =
      (smoke ? 1 : 10) * prisma::sim::kNanosPerMilli;
  config.measure_ns =
      (smoke ? 5 : 50) * prisma::sim::kNanosPerMilli;
  config.metrics = &Registry();
  const TrafficResult r = RunSyntheticTraffic(topology, LinkParams(), config);
  std::printf("%-14s %14.0f %14.0f %12.1f %9.0f%%\n",
              topology.name().c_str(), r.offered_packets_per_sec_per_pe,
              r.delivered_packets_per_sec_per_pe, r.average_latency_us,
              r.peak_link_utilization * 100);
}

/// --loss: commit latency of multi-fragment transactions vs per-hop loss
/// rate. Each point runs the same seeded workload (explicit transactions
/// touching every fragment) on a fresh machine whose fault plan drops the
/// given fraction of DBMS messages; losses surface as retransmission
/// delay in the COMMIT's 2PC round trips.
void RunLossSweep(bool smoke) {
  using prisma::core::MachineConfig;
  using prisma::core::PrismaDb;

  std::printf("E-loss: commit latency under message loss%s\n",
              smoke ? " (smoke)" : "");
  std::printf("presumed-abort 2PC, %d rpc attempts, 250 ms initial "
              "retransmission timeout under an active fault plan\n",
              MachineConfig().rpc_attempts);

  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.02, 0.05}
            : std::vector<double>{0.0, 0.005, 0.01, 0.02, 0.05, 0.1};
  const int txns = smoke ? 8 : 40;
  constexpr int kFragments = 4;

  std::printf("\n%-8s %6s %6s %14s %14s %12s %10s\n", "loss", "txns", "ok",
              "avg commit ms", "max commit ms", "rpc retries",
              "dropped");
  for (const double rate : rates) {
    MachineConfig config;
    config.pes = smoke ? 4 : 8;
    config.fault_plan.seed = 99;
    config.fault_plan.link.drop_probability = rate;
    PrismaDb db(config);
    auto created = db.Execute(prisma::StrFormat(
        "CREATE TABLE t (id INT, v INT) FRAGMENTED BY HASH(id) INTO %d "
        "FRAGMENTS",
        kFragments));
    if (!created.ok()) {
      std::printf("%-8.3f CREATE TABLE failed: %s\n", rate,
                  created.status().ToString().c_str());
      continue;
    }
    int ok = 0;
    int64_t id = 0;
    prisma::sim::SimTime total_commit_ns = 0;
    prisma::sim::SimTime max_commit_ns = 0;
    for (int t = 0; t < txns; ++t) {
      auto session = db.OpenSession();
      bool alive = session.Execute("BEGIN").ok();
      // One insert per fragment so every COMMIT is a full 2PC round.
      for (int k = 0; alive && k < kFragments; ++k) {
        alive = session
                    .Execute(prisma::StrFormat(
                        "INSERT INTO t VALUES (%lld, %d)",
                        static_cast<long long>(id++), k))
                    .ok();
      }
      if (!alive) {
        if (session.in_transaction()) (void)session.Execute("ABORT");
        continue;
      }
      auto commit = session.Execute("COMMIT");
      if (commit.ok()) {
        ++ok;
        total_commit_ns += commit->response_time_ns;
        max_commit_ns = std::max(max_commit_ns, commit->response_time_ns);
      }
    }
    std::printf("%-8.3f %6d %6d %14.3f %14.3f %12llu %10llu\n", rate, txns,
                ok,
                ok > 0 ? static_cast<double>(total_commit_ns) / ok / 1e6 : 0.0,
                static_cast<double>(max_commit_ns) / 1e6,
                static_cast<unsigned long long>(
                    db.metrics().CounterTotal("gdh.rpc_retries")),
                static_cast<unsigned long long>(db.network().stats().dropped));
  }
  std::printf(
      "\nreading: the fault-free row is the 2PC floor (disk-flush bound);\n"
      "each lost request or reply adds one retransmission timeout (250 ms,\n"
      "doubling) to that commit, so the average climbs with the loss rate\n"
      "while the max shows the unluckiest retry chain. See EXPERIMENTS.md.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--loss") == 0) {
      RunLossSweep(smoke);
      return 0;
    }
  }
  std::printf("E1: network throughput of the 64-PE machine%s\n",
              smoke ? " (smoke)" : "");
  std::printf("paper claim: up to 20,000 delivered packets (256 bit) per "
              "second per PE\n");
  std::printf("links: 4 per PE, 10 Mbit/s each; store-and-forward\n");

  const Topology mesh = smoke ? Topology::Mesh(4, 4) : Topology::Mesh(8, 8);
  const Topology chordal = smoke ? Topology::ChordalRing(16, 4)
                                 : Topology::ChordalRing(64, 8);
  std::printf("\ntopology properties: mesh diameter=%d avg=%.2f | "
              "chordal diameter=%d avg=%.2f\n",
              mesh.Diameter(), mesh.AverageDistance(), chordal.Diameter(),
              chordal.AverageDistance());

  const std::vector<double> uniform_sweep =
      smoke ? std::vector<double>{5'000.0, 15'000.0}
            : std::vector<double>{2'000.0,  5'000.0,  10'000.0, 15'000.0,
                                  20'000.0, 30'000.0, 50'000.0};
  PrintHeader("offered-load sweep, uniform random traffic");
  for (const double offered : uniform_sweep) {
    RunPoint(mesh, TrafficPattern::kUniform, offered, smoke);
  }
  std::printf("\n");
  for (const double offered : uniform_sweep) {
    RunPoint(chordal, TrafficPattern::kUniform, offered, smoke);
  }

  PrintHeader("nearest-neighbour traffic (short paths) sweep");
  const std::vector<double> neighbor_sweep =
      smoke ? std::vector<double>{20'000.0}
            : std::vector<double>{10'000.0, 20'000.0, 40'000.0, 60'000.0,
                                  80'000.0};
  for (const double offered : neighbor_sweep) {
    RunPoint(mesh, TrafficPattern::kNeighbor, offered, smoke);
  }

  PrintHeader("pattern sensitivity at 15,000 packets/s/PE offered");
  for (const TrafficPattern pattern :
       {TrafficPattern::kUniform, TrafficPattern::kNeighbor,
        TrafficPattern::kTranspose, TrafficPattern::kHotspot}) {
    TrafficConfig config;
    config.pattern = pattern;
    config.offered_packets_per_sec_per_pe = 15'000;
    config.warmup_ns = (smoke ? 1 : 10) * prisma::sim::kNanosPerMilli;
    config.measure_ns = (smoke ? 5 : 50) * prisma::sim::kNanosPerMilli;
    config.metrics = &Registry();
    const TrafficResult r =
        RunSyntheticTraffic(mesh, LinkParams(), config);
    std::printf("%-14s %14.0f %14.0f %12.1f %9.0f%%\n",
                TrafficPatternName(pattern),
                r.offered_packets_per_sec_per_pe,
                r.delivered_packets_per_sec_per_pe, r.average_latency_us,
                r.peak_link_utilization * 100);
  }

  prisma::bench::PrintCounterSeries(
      Registry(), {"net.packets_sent", "net.messages_sent",
                   "net.messages_delivered", "net.link_bits"});
  const prisma::obs::Histogram* latency =
      Registry().FindHistogram("net.latency_ns");
  if (latency != nullptr) {
    std::printf("net.latency_ns p50=%lld p99=%lld max=%lld (all runs)\n",
                static_cast<long long>(latency->ApproxQuantile(0.5)),
                static_cast<long long>(latency->ApproxQuantile(0.99)),
                static_cast<long long>(latency->max()));
  }

  std::printf(
      "\nreading: delivered throughput tracks offered load until links "
      "saturate;\nshort-path (neighbour) traffic sustains well beyond the "
      "paper's 20k/PE,\nuniform random traffic saturates near the bisection "
      "limit. See EXPERIMENTS.md.\n");
  return 0;
}
