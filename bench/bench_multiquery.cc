// E8 — Inter-query parallelism and concurrency control (paper §2.2).
//
// Paper claim: "evaluation of several queries and updates can be done in
// parallel, except for accesses to the same copy of base fragments of the
// database" — per-query component instances run on their own PEs, while
// the concurrency-control unit serializes conflicting fragment accesses.
//
// Harness:
//  (a) read-only throughput: N concurrent SELECTs vs N (queries per
//      simulated second);
//  (b) conflict sweep: concurrent updates focused on 1 fragment vs spread
//      over 16 — conflicting work serializes, spread work scales;
//  (c) deadlock detection: transactions locking two fragments in opposite
//      orders — victims abort with kAborted and the rest commit.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "serve/dispatcher.h"
#include "serve/workload.h"

using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;

namespace {

int kRows = 10'000;
bool g_smoke = false;

std::unique_ptr<PrismaDb> MakeLoadedDb() {
  auto db = std::make_unique<PrismaDb>(MachineConfig{});
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
  };
  must(db->Execute("CREATE TABLE item (id INT, grp INT, v INT) "
                   "FRAGMENTED BY HASH(id) INTO 16 FRAGMENTS"));
  for (int base = 0; base < kRows; base += 500) {
    std::string sql = "INSERT INTO item VALUES ";
    for (int i = 0; i < 500; ++i) {
      const int id = base + i;
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, %d, %d)", id, id % 16, id % 100);
    }
    must(db->Execute(sql));
  }
  return db;
}

void ReadThroughput() {
  std::printf("--- (a) concurrent read-only queries ---\n");
  std::printf("%-8s %14s %16s %14s\n", "clients", "makespan ms",
              "queries/sim-sec", "avg resp ms");
  const std::vector<int> client_sweep =
      g_smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32};
  for (const int clients : client_sweep) {
    auto db = MakeLoadedDb();
    const prisma::sim::SimTime begin = db->simulator().now();
    int done = 0;
    double response_sum = 0;
    for (int c = 0; c < clients; ++c) {
      db->Submit("SELECT grp, COUNT(*), SUM(v) FROM item GROUP BY grp",
                 false, prisma::exec::kAutoCommit,
                 [&](const prisma::gdh::ClientReply& reply,
                     prisma::sim::SimTime response) {
                   PRISMA_CHECK(reply.status.ok()) << reply.status.ToString();
                   ++done;
                   response_sum += static_cast<double>(response);
                 });
    }
    db->Run();
    PRISMA_CHECK(done == clients);
    const double makespan_ms =
        static_cast<double>(db->simulator().now() - begin) / 1e6;
    std::printf("%-8d %14.2f %16.1f %14.2f\n", clients, makespan_ms,
                clients / (makespan_ms / 1000.0),
                response_sum / clients / 1e6);
  }
}

/// The default (a) since the serving layer landed: the same GROUP BY
/// shape, but issued open-loop by serve::WorkloadGenerator sessions
/// through the admission dispatcher instead of a single synchronized
/// burst — closer to real concurrent clients, and the exact latency
/// histogram replaces the hand-rolled response average. `--legacy` keeps
/// the original burst mode.
void ReadThroughputGenerated() {
  std::printf("--- (a) open-loop read-only sessions (workload generator; "
              "--legacy for the burst mode) ---\n");
  std::printf("%-8s %14s %16s %12s %12s\n", "sessions", "makespan ms",
              "queries/sim-sec", "p50 ms", "p99 ms");
  const std::vector<int> session_sweep =
      g_smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32};
  for (const int sessions : session_sweep) {
    auto db = MakeLoadedDb();
    prisma::serve::WorkloadProfile profile;
    profile.sessions = sessions;
    // Fixed per-session rate, so offered load scales with the session
    // count exactly as the legacy client sweep did.
    profile.offered_qps = 40.0 * sessions;
    profile.duration_ns = prisma::sim::kNanosPerSecond / 4;
    profile.mix = {0, 0, 1.0, 0};  // The legacy GROUP BY shape only.
    prisma::serve::WorkloadGenerator generator(/*seed=*/7, profile);
    // This sweep measures raw throughput, not overload behaviour: admit
    // everything (the serving-layer shedding contracts live in
    // bench_serving) and let only the concurrency cap pace dispatch.
    prisma::serve::DispatcherOptions options;
    options.queue_capacity = 1u << 20;
    options.backlog_high = 1 << 30;
    prisma::serve::Dispatcher dispatcher(db.get(), options);
    const prisma::sim::SimTime begin = db->simulator().now();
    for (const prisma::serve::ArrivalEvent& event : generator.Generate()) {
      dispatcher.Submit(event.sql, prisma::exec::kAutoCommit,
                        [](const prisma::gdh::ClientReply& reply,
                           prisma::sim::SimTime) {
                          PRISMA_CHECK(reply.status.ok())
                              << reply.status.ToString();
                        },
                        event.at_ns);
    }
    dispatcher.Run();
    const prisma::serve::Dispatcher::Stats& stats = dispatcher.stats();
    PRISMA_CHECK(stats.completed == stats.submitted && stats.shed == 0);
    const double makespan_ms =
        static_cast<double>(db->simulator().now() - begin) / 1e6;
    std::printf("%-8d %14.2f %16.1f %12.2f %12.2f\n", sessions, makespan_ms,
                static_cast<double>(stats.completed) / (makespan_ms / 1000.0),
                dispatcher.latency().P50() / 1e6,
                dispatcher.latency().P99() / 1e6);
  }
}

void ConflictSweep() {
  const int kClients = g_smoke ? 8 : 32;
  std::printf("\n--- (b) %d concurrent updates: conflicting vs spread ---\n",
              kClients);
  std::printf("%-22s %14s %14s %10s %10s\n", "target", "makespan ms",
              "throughput/s", "waits", "commits");
  for (const bool spread : {false, true}) {
    auto db = MakeLoadedDb();
    const prisma::sim::SimTime begin = db->simulator().now();
    int done = 0;
    for (int c = 0; c < kClients; ++c) {
      // Same id -> same fragment -> X-lock conflicts; spread ids cover
      // all 16 fragments.
      const int id = spread ? c * 313 % kRows : 7;
      db->Submit(
          StrFormat("UPDATE item SET v = v + 1 WHERE id = %d", id), false,
          prisma::exec::kAutoCommit,
          [&](const prisma::gdh::ClientReply& reply, prisma::sim::SimTime) {
            PRISMA_CHECK(reply.status.ok()) << reply.status.ToString();
            ++done;
          });
    }
    db->Run();
    PRISMA_CHECK(done == kClients);
    const double makespan_ms =
        static_cast<double>(db->simulator().now() - begin) / 1e6;
    db->DumpMetrics();  // Sync derived gauges (lock.waits).
    std::printf("%-22s %14.2f %14.1f %10lld %10llu\n",
                spread ? "spread (16 fragments)" : "one hot fragment",
                makespan_ms, kClients / (makespan_ms / 1000.0),
                static_cast<long long>(
                    db->metrics().GaugeValue("lock.waits")),
                static_cast<unsigned long long>(
                    db->metrics().CounterValue("gdh.txns_committed")));
  }
}

void DeadlockSweep() {
  std::printf("\n--- (c) deadlock detection: opposed two-fragment "
              "transactions ---\n");
  auto db = MakeLoadedDb();
  // ids 0 and 1 land in different fragments (hash). Each pair of clients
  // updates them in opposite orders inside explicit transactions.
  int committed = 0;
  int aborted = 0;
  const int pairs = g_smoke ? 2 : 8;
  for (int p = 0; p < pairs; ++p) {
    for (const bool forward : {true, false}) {
      const int first = forward ? 0 : 1;
      const int second = forward ? 1 : 0;
      // Drive one client through BEGIN -> upd -> upd -> COMMIT with
      // chained callbacks.
      auto on_reply = std::make_shared<
          std::function<void(int, prisma::exec::TxnId)>>();
      // The stored closure holds itself only weakly (a strong capture
      // would cycle and leak); each pending Submit callback holds the
      // strong reference that keeps the chain alive.
      std::weak_ptr<std::function<void(int, prisma::exec::TxnId)>> weak_reply =
          on_reply;
      *on_reply = [&, first, second, weak_reply](int step,
                                                 prisma::exec::TxnId txn) {
        const auto next = [&, on_reply = weak_reply.lock(), step, txn](
                              const prisma::gdh::ClientReply& reply,
                              prisma::sim::SimTime) {
          if (!reply.status.ok()) {
            ++aborted;  // Deadlock victim (transaction is dead).
            return;
          }
          (*on_reply)(step + 1,
                      reply.txn != prisma::exec::kAutoCommit ? reply.txn : txn);
        };
        switch (step) {
          case 0:
            db->Submit("BEGIN", false, prisma::exec::kAutoCommit, next);
            break;
          case 1:
            db->Submit(StrFormat("UPDATE item SET v = v + 1 WHERE id = %d",
                                 first),
                       false, txn, next);
            break;
          case 2:
            db->Submit(StrFormat("UPDATE item SET v = v + 1 WHERE id = %d",
                                 second),
                       false, txn, next);
            break;
          case 3:
            db->Submit("COMMIT", false, txn, next);
            break;
          default:
            ++committed;
        }
      };
      (*on_reply)(0, prisma::exec::kAutoCommit);
    }
  }
  db->Run();
  // Deadlock count from the registry series the GDH maintains.
  std::printf("transactions: %d committed, %d aborted "
              "(GDH saw %llu deadlock aborts)\n",
              committed, aborted,
              static_cast<unsigned long long>(
                  db->metrics().CounterValue("gdh.deadlock_aborts")));
  PRISMA_CHECK(committed + aborted == 2 * pairs);
  // Conservation check: every committed transaction applied exactly 2
  // increments.
  auto sum = db->Execute("SELECT SUM(v) FROM item WHERE id < 2");
  PRISMA_CHECK(sum.ok());
  std::printf("v(0)+v(1) = %s (baseline 1, +2 per committed txn)\n",
              sum->tuples.front().at(0).ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = prisma::bench::SmokeMode(argc, argv);
  if (g_smoke) kRows = 2'000;
  std::printf("E8: multi-query parallelism under two-phase locking, "
              "64 PEs%s\n\n",
              g_smoke ? " (smoke)" : "");
  if (prisma::bench::HasFlag(argc, argv, "--legacy")) {
    ReadThroughput();
  } else {
    ReadThroughputGenerated();
  }
  ConflictSweep();
  DeadlockSweep();
  std::printf(
      "\nreading: read-only throughput scales with clients (per-query "
      "coordinator\ninstances on distinct PEs); updates to one fragment "
      "serialize on its X lock\nexactly as §2.2 predicts; opposed lock "
      "orders deadlock, the victim aborts,\nand everyone else commits.\n");
  return 0;
}
