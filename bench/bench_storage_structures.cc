// Ablation — OFM storage structures (paper §2.5).
//
// Paper claim: OFMs contain "(various) storage structures" and a local
// query optimizer; each OFM is "tuned towards the requirements that can
// be derived from the relation definition."
//
// Harness: point and range selections over one fragment at several sizes,
// answered by (a) a full scan, (b) a hash index probe, (c) a B+-tree
// bounded scan — simulated CPU time from the virtual cost model, plus the
// wall-clock time of the real data structures.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "storage/btree_index.h"
#include "storage/hash_index.h"
#include "storage/relation.h"

using namespace prisma;           // NOLINT: bench convenience.
using namespace prisma::algebra;  // NOLINT

namespace {

Schema ItemSchema() {
  return Schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}});
}

std::unique_ptr<Plan> PointQuery(int64_t key) {
  auto plan = SelectPlan::Create(
      ScanPlan::Create("item", ItemSchema()),
      Expr::Binary(BinaryOp::kEq, Col("id"), Lit(key)));
  PRISMA_CHECK(plan.ok());
  return std::move(plan).value();
}

std::unique_ptr<Plan> RangeQuery(int64_t lo, int64_t hi) {
  auto plan = SelectPlan::Create(
      ScanPlan::Create("item", ItemSchema()),
      algebra::And(Expr::Binary(BinaryOp::kGe, Col("id"), Lit(lo)),
                   Expr::Binary(BinaryOp::kLt, Col("id"), Lit(hi))));
  PRISMA_CHECK(plan.ok());
  return std::move(plan).value();
}

struct Sample {
  double sim_us;
  double wall_us;
};

Sample Measure(const exec::TableResolver& resolver, const Plan& plan,
               int repeats) {
  double sim_ns = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) {
    exec::Executor executor(&resolver, exec::ExecOptions());
    auto out = executor.Execute(plan);
    PRISMA_CHECK(out.ok());
    sim_ns += static_cast<double>(executor.stats().charged_ns);
  }
  const auto end = std::chrono::steady_clock::now();
  return Sample{
      sim_ns / repeats / 1e3,
      std::chrono::duration<double, std::micro>(end - start).count() / repeats};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  prisma::obs::MetricsRegistry registry;
  std::printf("ablation: OFM storage structures (scan vs hash vs B+-tree)%s\n",
              smoke ? " (smoke)" : "");
  std::printf("%-8s %-12s | %12s | %12s | %12s   (simulated us/query)\n",
              "rows", "query", "scan", "hash index", "btree index");
  const std::vector<int> row_sweep =
      smoke ? std::vector<int>{1'000} : std::vector<int>{1'000, 10'000,
                                                         100'000};
  for (const int rows : row_sweep) {
    storage::Relation rel("item", ItemSchema());
    Rng rng(5);
    for (int i = 0; i < rows; ++i) {
      rel.Insert(Tuple({Value::Int(i), Value::Int(rng.UniformInt(0, 999))}))
          .value();
    }
    storage::HashIndex hash("h", {0});
    hash.Rebuild(rel);
    storage::BTreeIndex btree("b", {0});
    btree.Rebuild(rel);

    exec::MapTableResolver scan_only;
    scan_only.Register("item", &rel);
    exec::MapTableResolver with_hash;
    with_hash.Register("item", &rel);
    with_hash.RegisterHashIndex("item", &hash);
    exec::MapTableResolver with_btree;
    with_btree.Register("item", &rel);
    with_btree.RegisterBTreeIndex("item", &btree);

    const int repeats = smoke ? 3 : 20;
    auto point = PointQuery(rows / 2);
    const Sample p_scan = Measure(scan_only, *point, repeats);
    const Sample p_hash = Measure(with_hash, *point, repeats);
    const Sample p_btree = Measure(with_btree, *point, repeats);
    std::printf("%-8d %-12s | %12.1f | %12.1f | %12.1f\n", rows, "point",
                p_scan.sim_us, p_hash.sim_us, p_btree.sim_us);

    auto range = RangeQuery(rows / 2, rows / 2 + rows / 100 + 1);
    const Sample r_scan = Measure(scan_only, *range, repeats);
    const Sample r_btree = Measure(with_btree, *range, repeats);
    std::printf("%-8d %-12s | %12.1f | %12s | %12.1f\n", rows, "range(1%)",
                r_scan.sim_us, "-", r_btree.sim_us);

    const std::string rows_label = std::to_string(rows);
    registry.GetGauge("ablation.point_ns", {{"rows", rows_label},
                                            {"structure", "scan"}})
        ->Set(static_cast<int64_t>(p_scan.sim_us * 1e3));
    registry.GetGauge("ablation.point_ns", {{"rows", rows_label},
                                            {"structure", "hash"}})
        ->Set(static_cast<int64_t>(p_hash.sim_us * 1e3));
    registry.GetGauge("ablation.point_ns", {{"rows", rows_label},
                                            {"structure", "btree"}})
        ->Set(static_cast<int64_t>(p_btree.sim_us * 1e3));
  }
  std::printf("\n-- measured series (metrics registry) --\n%s",
              registry.DumpText().c_str());
  std::printf(
      "\nreading: a point probe is O(1) and a bounded B+-tree scan touches "
      "only the\nmatching keys, while the scan pays per resident tuple — "
      "the reason each OFM\nis 'equipped with the right amount of tools' "
      "for its fragment (§2.5).\n");
  return 0;
}
