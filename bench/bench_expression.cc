// E4 — The OFM expression compiler (paper §2.5).
//
// Paper claim: "each OFM is equipped with an expression compiler to
// generate routines dynamically ... it avoids the otherwise excessive
// interpretation overhead incurred by a query expression interpreter."
//
// Harness: google-benchmark comparing the tree-walking interpreter with
// the compiled register-bytecode VM on per-tuple predicate and projection
// evaluation at several expression complexities (real wall-clock time).

#include <benchmark/benchmark.h>

#include <memory>

#include "algebra/expr.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "exec/expr_compiler.h"
#include "exec/expr_eval.h"
#include "obs/metrics.h"

using namespace prisma;           // NOLINT: bench convenience.
using namespace prisma::algebra;  // NOLINT

namespace {

Schema BenchSchema() {
  return Schema({{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"c", DataType::kDouble},
                 {"d", DataType::kString}});
}

std::vector<Tuple> BenchTuples(int n) {
  Rng rng(7);
  std::vector<Tuple> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(Tuple({Value::Int(rng.UniformInt(0, 100)),
                         Value::Int(rng.UniformInt(0, 100)),
                         Value::Double(rng.NextDouble() * 100),
                         Value::String(rng.NextBool(0.5) ? "xx" : "yy")}));
  }
  return out;
}

/// complexity 0: a < 50
/// complexity 1: a < 50 AND b >= 10 AND c < 75.0
/// complexity 2: (a*3 + b*2 - 7 > c) AND (a % 5 <> b % 3) AND d = 'xx'
std::unique_ptr<Expr> MakePredicate(int complexity) {
  std::unique_ptr<Expr> e;
  switch (complexity) {
    case 0:
      e = Expr::Binary(BinaryOp::kLt, Col("a"), Lit(int64_t{50}));
      break;
    case 1:
      e = And(And(Expr::Binary(BinaryOp::kLt, Col("a"), Lit(int64_t{50})),
                  Expr::Binary(BinaryOp::kGe, Col("b"), Lit(int64_t{10}))),
              Expr::Binary(BinaryOp::kLt, Col("c"), Lit(75.0)));
      break;
    default:
      e = And(
          And(Expr::Binary(
                  BinaryOp::kGt,
                  Expr::Binary(
                      BinaryOp::kSub,
                      Expr::Binary(
                          BinaryOp::kAdd,
                          Expr::Binary(BinaryOp::kMul, Col("a"),
                                       Lit(int64_t{3})),
                          Expr::Binary(BinaryOp::kMul, Col("b"),
                                       Lit(int64_t{2}))),
                      Lit(int64_t{7})),
                  Col("c")),
              Expr::Binary(
                  BinaryOp::kNe,
                  Expr::Binary(BinaryOp::kMod, Col("a"), Lit(int64_t{5})),
                  Expr::Binary(BinaryOp::kMod, Col("b"), Lit(int64_t{3})))),
          Expr::Binary(BinaryOp::kEq, Col("d"), Lit(std::string("xx"))));
      break;
  }
  PRISMA_CHECK_OK(e->Bind(BenchSchema()));
  return e;
}

void BM_InterpretedPredicate(benchmark::State& state) {
  auto expr = MakePredicate(static_cast<int>(state.range(0)));
  const auto tuples = BenchTuples(1024);
  size_t i = 0;
  for (auto _ : state) {
    auto v = exec::EvalPredicate(*expr, tuples[i++ & 1023]);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpretedPredicate)->Arg(0)->Arg(1)->Arg(2);

void BM_CompiledPredicate(benchmark::State& state) {
  auto expr = MakePredicate(static_cast<int>(state.range(0)));
  auto compiled = exec::CompileExpr(*expr);
  PRISMA_CHECK(compiled.ok());
  const auto tuples = BenchTuples(1024);
  size_t i = 0;
  for (auto _ : state) {
    auto v = compiled->EvalPredicate(tuples[i++ & 1023]);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledPredicate)->Arg(0)->Arg(1)->Arg(2);

void BM_InterpretedProjection(benchmark::State& state) {
  // (a + b) * 2, c / 4.0 — arithmetic-heavy projection.
  auto e1 = Expr::Binary(
      BinaryOp::kMul,
      Expr::Binary(BinaryOp::kAdd, Col("a"), Col("b")), Lit(int64_t{2}));
  auto e2 = Expr::Binary(BinaryOp::kDiv, Col("c"), Lit(4.0));
  PRISMA_CHECK_OK(e1->Bind(BenchSchema()));
  PRISMA_CHECK_OK(e2->Bind(BenchSchema()));
  const auto tuples = BenchTuples(1024);
  size_t i = 0;
  for (auto _ : state) {
    const Tuple& t = tuples[i++ & 1023];
    auto v1 = exec::EvalExpr(*e1, t);
    auto v2 = exec::EvalExpr(*e2, t);
    benchmark::DoNotOptimize(v1);
    benchmark::DoNotOptimize(v2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpretedProjection);

void BM_CompiledProjection(benchmark::State& state) {
  auto e1 = Expr::Binary(
      BinaryOp::kMul,
      Expr::Binary(BinaryOp::kAdd, Col("a"), Col("b")), Lit(int64_t{2}));
  auto e2 = Expr::Binary(BinaryOp::kDiv, Col("c"), Lit(4.0));
  PRISMA_CHECK_OK(e1->Bind(BenchSchema()));
  PRISMA_CHECK_OK(e2->Bind(BenchSchema()));
  auto c1 = exec::CompileExpr(*e1);
  auto c2 = exec::CompileExpr(*e2);
  PRISMA_CHECK(c1.ok() && c2.ok());
  const auto tuples = BenchTuples(1024);
  size_t i = 0;
  for (auto _ : state) {
    const Tuple& t = tuples[i++ & 1023];
    auto v1 = c1->Eval(t);
    auto v2 = c2->Eval(t);
    benchmark::DoNotOptimize(v1);
    benchmark::DoNotOptimize(v2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledProjection);

/// One-time compilation cost, to show it amortizes over a fragment scan.
void BM_CompileExpr(benchmark::State& state) {
  auto expr = MakePredicate(2);
  for (auto _ : state) {
    auto compiled = exec::CompileExpr(*expr);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileExpr);

/// Smoke mode: skip google-benchmark's timing loops and instead check that
/// the interpreter and the compiled VM agree on every tuple, streaming the
/// evaluation counts through a metrics registry.
int RunSmoke() {
  prisma::obs::MetricsRegistry registry;
  const auto tuples = BenchTuples(256);
  for (int complexity = 0; complexity < 3; ++complexity) {
    auto expr = MakePredicate(complexity);
    auto compiled = exec::CompileExpr(*expr);
    PRISMA_CHECK(compiled.ok());
    const prisma::obs::Labels labels = {
        {"complexity", std::to_string(complexity)}};
    prisma::obs::Counter* evals = registry.GetCounter("e4.evals", labels);
    prisma::obs::Counter* matches = registry.GetCounter("e4.matches", labels);
    for (const Tuple& t : tuples) {
      const auto interpreted = exec::EvalPredicate(*expr, t);
      const auto vm = compiled->EvalPredicate(t);
      PRISMA_CHECK(interpreted.ok() && vm.ok());
      PRISMA_CHECK(*interpreted == *vm)
          << "interpreter/VM divergence at complexity " << complexity;
      evals->Increment();
      if (*vm) matches->Increment();
    }
  }
  std::printf("E4 (smoke): interpreter and compiled VM agree on %zu tuples "
              "x 3 predicates\n",
              tuples.size());
  prisma::bench::PrintCounterSeries(registry, {"e4.evals", "e4.matches"});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (prisma::bench::SmokeMode(argc, argv)) return RunSmoke();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
