// E7 — OFM types (paper §2.5).
//
// Paper claim: "Several OFM types are envisioned, each equipped with the
// right amount of tools. For example, OFMs needed for query processing
// only, do not require extensive crash recovery facilities."
//
// Harness: the same insert/update workload against a machine whose base
// fragments use full OFMs (write-ahead logging to stable storage) versus
// query-only OFMs (no durability machinery), reporting simulated
// statement latency, total time, and WAL volume.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;

namespace {

int kInserts = 2'000;
int kUpdates = 200;

struct Outcome {
  double insert_ms_avg;
  double update_ms_avg;
  double total_ms;
  size_t wal_bytes;
  /// WAL records, from the per-fragment ofm.wal_records registry series.
  uint64_t wal_records;
};

Outcome RunWorkload(prisma::exec::OfmType type, bool replicated = false) {
  MachineConfig config;
  config.pes = 16;
  config.base_ofm_type = type;
  config.replicate_fragments = replicated;
  PrismaDb db(config);
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute("CREATE TABLE log (id INT, payload STRING, hits INT) "
                  "FRAGMENTED BY HASH(id) INTO 8 FRAGMENTS"));

  Outcome out{0, 0, 0, 0, 0};
  const prisma::sim::SimTime begin = db.simulator().now();
  double insert_ns = 0;
  for (int base = 0; base < kInserts; base += 100) {
    std::string sql = "INSERT INTO log VALUES ";
    for (int i = 0; i < 100; ++i) {
      const int id = base + i;
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, 'event payload %d', 0)", id, id);
    }
    insert_ns += static_cast<double>(must(db.Execute(sql)).response_time_ns);
  }
  double update_ns = 0;
  for (int i = 0; i < kUpdates; ++i) {
    update_ns += static_cast<double>(
        must(db.Execute(StrFormat(
                 "UPDATE log SET hits = hits + 1 WHERE id = %d",
                 (i * 37) % kInserts)))
            .response_time_ns);
  }
  out.total_ms =
      static_cast<double>(db.simulator().now() - begin) / 1e6;
  out.insert_ms_avg = insert_ns / (kInserts / 100) / 1e6;
  out.update_ms_avg = update_ns / kUpdates / 1e6;
  for (int pe = 0; pe < config.pes; ++pe) {
    out.wal_bytes += db.stable_store(pe).total_bytes();
  }
  out.wal_records = db.metrics().CounterTotal("ofm.wal_records");
  return out;
}

}  // namespace

/// --replicated: write amplification of dual-replica 2PC (DESIGN.md §13)
/// against the single-copy baseline, on the same full-OFM workload.
int RunReplicatedComparison(bool smoke) {
  std::printf("E7b: single-copy vs replicated (dual-replica 2PC) writes%s\n",
              smoke ? " (smoke)" : "");
  std::printf("workload: %d inserts (batches of 100) + %d point updates, "
              "8 fragments, full OFMs\n\n",
              kInserts, kUpdates);
  std::printf("%-14s %16s %16s %12s %12s %12s\n", "placement",
              "insert ms/stmt", "update ms/stmt", "total ms", "WAL bytes",
              "WAL records");
  const Outcome single = RunWorkload(prisma::exec::OfmType::kFull);
  const Outcome dual =
      RunWorkload(prisma::exec::OfmType::kFull, /*replicated=*/true);
  std::printf("%-14s %16.2f %16.2f %12.1f %12zu %12llu\n", "single-copy",
              single.insert_ms_avg, single.update_ms_avg, single.total_ms,
              single.wal_bytes,
              static_cast<unsigned long long>(single.wal_records));
  std::printf("%-14s %16.2f %16.2f %12.1f %12zu %12llu\n", "replicated",
              dual.insert_ms_avg, dual.update_ms_avg, dual.total_ms,
              dual.wal_bytes,
              static_cast<unsigned long long>(dual.wal_records));
  std::printf("%-14s %15.1fx %15.1fx %11.1fx %11.1fx %11.1fx\n",
              "amplification", dual.insert_ms_avg / single.insert_ms_avg,
              dual.update_ms_avg / single.update_ms_avg,
              dual.total_ms / single.total_ms,
              static_cast<double>(dual.wal_bytes) /
                  static_cast<double>(single.wal_bytes),
              static_cast<double>(dual.wal_records) /
                  static_cast<double>(single.wal_records));
  // The contract the smoke enforces: every write lands on both replicas
  // (2x WAL records), and latency overhead stays bounded — the backup is
  // just one more 2PC participant, not a serial second round-trip.
  PRISMA_CHECK(dual.wal_records == 2 * single.wal_records)
      << "replicated workload must WAL every write twice, got "
      << dual.wal_records << " vs single-copy " << single.wal_records;
  PRISMA_CHECK(dual.total_ms < 3.0 * single.total_ms)
      << "dual-replica 2PC should piggyback on the commit round, not "
         "double-serialize it";
  std::printf(
      "\nreading: the backup replica is one more presumed-abort 2PC "
      "participant, so the\nwrite path pays 2x WAL volume but only the "
      "widest-participant latency (§13).\n");
  return 0;
}

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  if (smoke) {
    kInserts = 200;
    kUpdates = 20;
  }
  if (prisma::bench::HasFlag(argc, argv, "--replicated")) {
    return RunReplicatedComparison(smoke);
  }
  std::printf("E7: full vs query-only One-Fragment Managers%s\n",
              smoke ? " (smoke)" : "");
  std::printf("workload: %d inserts (batches of 100) + %d point updates, "
              "8 fragments\n\n",
              kInserts, kUpdates);
  std::printf("%-14s %16s %16s %12s %12s %12s\n", "OFM type",
              "insert ms/stmt", "update ms/stmt", "total ms", "WAL bytes",
              "WAL records");
  const Outcome full = RunWorkload(prisma::exec::OfmType::kFull);
  const Outcome query_only = RunWorkload(prisma::exec::OfmType::kQueryOnly);
  std::printf("%-14s %16.2f %16.2f %12.1f %12zu %12llu\n", "full",
              full.insert_ms_avg, full.update_ms_avg, full.total_ms,
              full.wal_bytes,
              static_cast<unsigned long long>(full.wal_records));
  std::printf("%-14s %16.2f %16.2f %12.1f %12zu %12llu\n", "query_only",
              query_only.insert_ms_avg, query_only.update_ms_avg,
              query_only.total_ms, query_only.wal_bytes,
              static_cast<unsigned long long>(query_only.wal_records));
  std::printf("%-14s %15.1fx %15.1fx %11.1fx\n", "ratio",
              full.insert_ms_avg / query_only.insert_ms_avg,
              full.update_ms_avg / query_only.update_ms_avg,
              full.total_ms / query_only.total_ms);
  std::printf(
      "\nreading: durability costs a forced group-committed WAL write per "
      "transaction\nper touched fragment. Intermediate results never need "
      "that, so PRISMA equips\nquery-processing OFMs without it (§2.5).\n");
  return 0;
}
