// E6 — The knowledge-based query optimizer (paper §2.4).
//
// Paper claim: "A knowledge-based approach to query optimization is
// chosen", with a rule base covering logical transformations, size
// estimation (driving join order), common-subexpression detection, and
// parallel scheduling to minimize response time.
//
// Harness: a 3-table join query with selective predicates on a 64-PE
// machine, re-run with each optimizer rule group disabled in turn;
// reports simulated response times. A self-join exercises the CSE rule.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;
using prisma::gdh::OptimizerRules;

namespace {

int kOrders = 10'000;
int kCustomers = 400;
constexpr int kRegions = 8;

double RunQueries(const OptimizerRules& rules, double* cse_ms,
                  uint64_t* tuples_scanned) {
  MachineConfig config;
  config.rules = rules;
  PrismaDb db(config);
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute("CREATE TABLE region (rid INT, rname STRING) "
                  "FRAGMENTED BY HASH(rid) INTO 2 FRAGMENTS"));
  must(db.Execute("CREATE TABLE customer (cid INT, rid INT, active INT) "
                  "FRAGMENTED BY HASH(cid) INTO 8 FRAGMENTS"));
  must(db.Execute("CREATE TABLE orders (oid INT, cid INT, amount INT) "
                  "FRAGMENTED BY HASH(oid) INTO 16 FRAGMENTS"));
  for (int r = 0; r < kRegions; ++r) {
    must(db.Execute(StrFormat("INSERT INTO region VALUES (%d, 'r%d')", r, r)));
  }
  for (int base = 0; base < kCustomers; base += 100) {
    std::string sql = "INSERT INTO customer VALUES ";
    for (int i = 0; i < 100; ++i) {
      const int cid = base + i;
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, %d, %d)", cid, cid % kRegions, cid % 2);
    }
    must(db.Execute(sql));
  }
  for (int base = 0; base < kOrders; base += 500) {
    std::string sql = "INSERT INTO orders VALUES ";
    for (int i = 0; i < 500; ++i) {
      const int oid = base + i;
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, %d, %d)", oid, oid % kCustomers,
                       (oid * 13) % 1000);
    }
    must(db.Execute(sql));
  }

  // Chain join with a selective order predicate: pushdown + ordering by
  // size matter. FROM lists big-to-small so reordering has work to do.
  const uint64_t scanned_before =
      db.metrics().CounterTotal("ofm.tuples_scanned");
  auto joined = must(db.Execute(
      "SELECT r.rname, o.amount FROM orders o "
      "JOIN customer c ON o.cid = c.cid "
      "JOIN region r ON c.rid = r.rid "
      "WHERE o.amount < 20 AND c.active = 1"));
  const double join_ms = static_cast<double>(joined.response_time_ns) / 1e6;

  // Self-join with an identical expensive subtree on both sides (CSE).
  auto cse = must(db.Execute(
      "SELECT a.rid, b.rid FROM customer a "
      "JOIN customer b ON a.cid = b.cid "
      "WHERE a.active = 1 AND b.active = 1"));
  *cse_ms = static_cast<double>(cse.response_time_ns) / 1e6;
  *tuples_scanned =
      db.metrics().CounterTotal("ofm.tuples_scanned") - scanned_before;
  return join_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  if (smoke) {
    kOrders = 1'000;
    kCustomers = 100;
  }
  std::printf("E6: knowledge-based optimizer rule ablation%s\n",
              smoke ? " (smoke)" : "");
  std::printf("workload: orders(%d) x customer(%d) x region(%d), 64 PEs\n\n",
              kOrders, kCustomers, kRegions);
  std::printf("%-28s %14s %14s %14s\n", "rule configuration", "3-way join ms",
              "self-join ms", "scanned");

  struct Config {
    const char* name;
    OptimizerRules rules;
  };
  OptimizerRules all;
  OptimizerRules no_push = all;
  no_push.push_selections = false;
  OptimizerRules no_reorder = all;
  no_reorder.reorder_joins = false;
  OptimizerRules no_cse = all;
  no_cse.detect_common_subexpressions = false;
  OptimizerRules sequential = all;
  sequential.parallel_fragments = false;
  OptimizerRules none;
  none.push_selections = false;
  none.reorder_joins = false;
  none.detect_common_subexpressions = false;
  none.parallel_fragments = false;

  const Config configs[] = {
      {"all rules (PRISMA)", all},
      {"- selection pushdown", no_push},
      {"- join reordering", no_reorder},
      {"- common subexpressions", no_cse},
      {"- parallel scheduling", sequential},
      {"no rules at all", none},
  };
  const size_t num_configs = sizeof(configs) / sizeof(configs[0]);
  for (size_t i = 0; i < num_configs; ++i) {
    // Smoke: only the two extremes (all rules vs none).
    if (smoke && i != 0 && i != num_configs - 1) continue;
    const Config& c = configs[i];
    double cse_ms = 0;
    uint64_t scanned = 0;
    const double join_ms = RunQueries(c.rules, &cse_ms, &scanned);
    std::printf("%-28s %14.2f %14.2f %14llu\n", c.name, join_ms, cse_ms,
                static_cast<unsigned long long>(scanned));
  }
  std::printf(
      "\nreading: each rule group pays for itself on the workload that "
      "exercises it —\npushdown shrinks what crosses the network, ordering "
      "keeps intermediates small,\nCSE halves the duplicated subtree, and "
      "parallel scheduling is the largest\nsingle factor (the paper's "
      "response-time objective, §2.4).\n");
  return 0;
}
