// E13 — availability through a single-PE crash (DESIGN.md §13).
//
// Harness: the same point-read stream driven through a scheduled PE
// crash/restart window, on a machine with and without fragment
// replication. The replicated machine must answer EVERY read (failover to
// the backup replica); the single-copy machine degrades to typed
// Unavailable for fragments on the dead PE. A separate steady-state write
// workload (no faults) prices the dual-replica 2PC overhead.
//
// Emits BENCH_replication.json — failover latency, resync wire volume,
// answered fractions and write overhead — so robustness regressions are
// visible PR-over-PR.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::Rng;
using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;

namespace {

int kRows = 200;
int kReads = 400;
int kWrites = 400;

constexpr int kFragments = 4;
constexpr int kClients = 4;
// The crash lands after the load phase even at full scale (batched
// inserts run to ~450ms/stmt on the replicated machine) and the restart
// leaves a long tail of the op stream still inside the down window.
constexpr prisma::sim::SimTime kCrashAtNs =
    5'000 * prisma::sim::kNanosPerMilli;
constexpr prisma::sim::SimTime kRestartAtNs =
    kCrashAtNs + 2'000 * prisma::sim::kNanosPerMilli;

/// One availability run: load, then kClients concurrent chained streams
/// of point reads with writes mixed in (1 in 4), their virtual-time span
/// covering the crash window (a synchronous Execute would drain the crash
/// event before any statement was in flight). Reads route around a dead
/// primary at plan time; writes are what discover the dead replica the
/// hard way — a retry finding its host process gone — and shed it, so the
/// mix prices both sides of failover. Multiple clients keep reads flowing
/// through the window even while one client is stuck behind a stalled
/// write.
struct AvailabilityOutcome {
  uint64_t reads = 0;
  uint64_t answered = 0;
  /// Reads whose [submit, reply] interval overlaps the crash window: the
  /// denominator of the availability fraction. A read that stalls through
  /// the whole outage and is only served at restart overlapped the window
  /// but was not answered inside it.
  uint64_t window_reads = 0;
  uint64_t window_answered = 0;  ///< OK replies landing inside the window.
  uint64_t writes = 0;
  uint64_t writes_answered = 0;
  double worst_read_ms = 0;      ///< Read-side route-around cost.
  double worst_write_ms = 0;     ///< Failover latency: the shedding write.
  double steady_read_ms = 0;     ///< Mean over answered reads.
  uint64_t unavailable = 0;      ///< query.unavailable counter.
  uint64_t failovers = 0;
  uint64_t resyncs_completed = 0;
  uint64_t resync_wire_bits = 0;
};

AvailabilityOutcome RunAvailability(bool replicated) {
  MachineConfig config;
  config.pes = 4;
  config.replicate_fragments = replicated;
  config.coordinator_pes = {0};
  // Tight retransmission budget so a read stalled on the dead primary
  // exhausts and fails over quickly: retries at 50/100/200ms.
  config.rpc_timeout_ns = 50 * prisma::sim::kNanosPerMilli;
  config.rpc_backoff_cap_ns = 400 * prisma::sim::kNanosPerMilli;
  config.rpc_attempts = 4;
  prisma::net::PeCrashEvent crash;
  crash.pe = 2;
  crash.at_ns = kCrashAtNs;
  crash.restart_at_ns = kRestartAtNs;
  config.fault_plan.pe_crashes.push_back(crash);
  PrismaDb db(config);

  AvailabilityOutcome out;
  Rng rng(0x5eedULL);
  double answered_ns_sum = 0;
  int loaded = 0;
  int ops_left = kReads;
  std::function<void()> next_op = [&] {
    const int op = ops_left--;
    if (op <= 0) return;
    const int id = rng.UniformInt(0, kRows - 1);
    const bool is_write = op % 4 == 0;
    const std::string sql =
        is_write ? StrFormat("UPDATE t SET v = v + 1 WHERE id = %d", id)
                 : StrFormat("SELECT v FROM t WHERE id = %d", id);
    db.Submit(sql, /*prismalog=*/false, prisma::exec::kAutoCommit,
              [&, is_write, id](const prisma::gdh::ClientReply& reply,
                                prisma::sim::SimTime response_ns) {
                const double ms = static_cast<double>(response_ns) / 1e6;
                if (is_write) {
                  ++out.writes;
                  if (reply.status.ok()) {
                    ++out.writes_answered;
                    if (ms > out.worst_write_ms) out.worst_write_ms = ms;
                  }
                  next_op();
                  return;
                }
                ++out.reads;
                const prisma::sim::SimTime now = db.simulator().now();
                const prisma::sim::SimTime submitted = now - response_ns;
                if (submitted <= kRestartAtNs && now >= kCrashAtNs) {
                  ++out.window_reads;
                }
                const bool in_window =
                    now >= kCrashAtNs && now <= kRestartAtNs;
                if (reply.status.ok()) {
                  ++out.answered;
                  if (in_window) ++out.window_answered;
                  answered_ns_sum += static_cast<double>(response_ns);
                  if (ms > out.worst_read_ms) out.worst_read_ms = ms;
                }
                next_op();
              },
              /*delay=*/rng.UniformInt(0, 10 * prisma::sim::kNanosPerMilli));
  };
  std::function<void()> next_load = [&] {
    if (loaded >= kRows) {
      for (int c = 0; c < kClients; ++c) next_op();
      return;
    }
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = 0; i < 20; ++i, ++loaded) {
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, %d)", loaded, loaded * 7);
    }
    db.Submit(sql, /*prismalog=*/false, prisma::exec::kAutoCommit,
              [&](const prisma::gdh::ClientReply& reply,
                  prisma::sim::SimTime) {
                PRISMA_CHECK(reply.status.ok()) << reply.status.ToString();
                next_load();
              });
  };
  db.Submit(StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                      "HASH(id) INTO %d FRAGMENTS",
                      kFragments),
            /*prismalog=*/false, prisma::exec::kAutoCommit,
            [&](const prisma::gdh::ClientReply& reply, prisma::sim::SimTime) {
              PRISMA_CHECK(reply.status.ok()) << reply.status.ToString();
              next_load();
            });
  db.Run();  // Drains the stream, the crash, the restart and the resync.

  out.steady_read_ms = out.answered == 0
                           ? 0
                           : answered_ns_sum / static_cast<double>(
                                                   out.answered) / 1e6;
  out.unavailable = db.metrics().CounterTotal("query.unavailable");
  out.failovers = db.metrics().CounterTotal("replica.failovers");
  out.resyncs_completed =
      db.metrics().CounterTotal("replica.resyncs_completed");
  out.resync_wire_bits =
      db.metrics().CounterTotal("replica.resync_wire_bits");
  return out;
}

/// Steady-state write pricing (no faults): total virtual time and WAL
/// records for the same insert/update stream, replicated vs single-copy.
struct WriteOutcome {
  double total_ms = 0;
  uint64_t wal_records = 0;
};

WriteOutcome RunWriteWorkload(bool replicated) {
  MachineConfig config;
  config.pes = 4;
  config.replicate_fragments = replicated;
  config.coordinator_pes = {0};
  PrismaDb db(config);
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute(StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                            "HASH(id) INTO %d FRAGMENTS",
                            kFragments)));
  WriteOutcome out;
  const prisma::sim::SimTime begin = db.simulator().now();
  for (int i = 0; i < kWrites; ++i) {
    if (i % 2 == 0) {
      must(db.Execute(StrFormat("INSERT INTO t VALUES (%d, %d)", i, i)));
    } else {
      must(db.Execute(
          StrFormat("UPDATE t SET v = v + 1 WHERE id = %d", i - 1)));
    }
  }
  out.total_ms = static_cast<double>(db.simulator().now() - begin) / 1e6;
  out.wal_records = db.metrics().CounterTotal("ofm.wal_records");
  return out;
}

double Fraction(uint64_t num, uint64_t den) {
  return den == 0 ? 0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  if (smoke) {
    kRows = 100;
    kReads = 250;
    kWrites = 60;
  }
  std::printf("E13: availability through a single-PE crash%s\n",
              smoke ? " (smoke)" : "");
  std::printf("stream of %d ops (3:1 point SELECT:UPDATE); PE 2 down "
              "%lld-%lldms; %d-row table, %d fragments\n\n",
              kReads, static_cast<long long>(kCrashAtNs / 1'000'000),
              static_cast<long long>(kRestartAtNs / 1'000'000), kRows,
              kFragments);

  const AvailabilityOutcome rep = RunAvailability(/*replicated=*/true);
  const AvailabilityOutcome single = RunAvailability(/*replicated=*/false);
  const WriteOutcome wrep = RunWriteWorkload(/*replicated=*/true);
  const WriteOutcome wsingle = RunWriteWorkload(/*replicated=*/false);

  std::printf("%-14s %10s %12s %14s %14s %12s\n", "placement", "answered",
              "in-window", "worst read ms", "steady read ms", "unavailable");
  std::printf("%-14s %6llu/%-3llu %8llu/%-3llu %14.1f %14.2f %12llu\n",
              "replicated",
              static_cast<unsigned long long>(rep.answered),
              static_cast<unsigned long long>(rep.reads),
              static_cast<unsigned long long>(rep.window_answered),
              static_cast<unsigned long long>(rep.window_reads),
              rep.worst_read_ms, rep.steady_read_ms,
              static_cast<unsigned long long>(rep.unavailable));
  std::printf("%-14s %6llu/%-3llu %8llu/%-3llu %14.1f %14.2f %12llu\n",
              "single-copy",
              static_cast<unsigned long long>(single.answered),
              static_cast<unsigned long long>(single.reads),
              static_cast<unsigned long long>(single.window_answered),
              static_cast<unsigned long long>(single.window_reads),
              single.worst_read_ms, single.steady_read_ms,
              static_cast<unsigned long long>(single.unavailable));
  std::printf("%-14s writes answered %llu/%llu, worst write %.1fms "
              "(the shedding write pays the\nfailover: the first retry that "
              "finds the host process dead sheds the replica)\n",
              "replicated",
              static_cast<unsigned long long>(rep.writes_answered),
              static_cast<unsigned long long>(rep.writes),
              rep.worst_write_ms);
  std::printf("\nresync after restart: %llu completed, %llu wire bits\n",
              static_cast<unsigned long long>(rep.resyncs_completed),
              static_cast<unsigned long long>(rep.resync_wire_bits));
  std::printf("steady-state writes:  %.1fms replicated vs %.1fms "
              "single-copy (%.2fx), WAL records %llu vs %llu\n",
              wrep.total_ms, wsingle.total_ms,
              wrep.total_ms / wsingle.total_ms,
              static_cast<unsigned long long>(wrep.wal_records),
              static_cast<unsigned long long>(wsingle.wal_records));

  // The §13 contract this bench enforces (and the smoke gates on):
  // replication answers every read through the window; the single copy
  // provably degrades (otherwise the window never exercised failover);
  // the resync actually moved bytes; writes land on both replicas.
  PRISMA_CHECK(rep.answered == rep.reads)
      << "replicated machine dropped reads: " << rep.answered << "/"
      << rep.reads;
  PRISMA_CHECK(rep.writes_answered == rep.writes)
      << "replicated machine dropped writes: " << rep.writes_answered
      << "/" << rep.writes;
  PRISMA_CHECK(rep.unavailable == 0);
  PRISMA_CHECK(rep.failovers > 0)
      << "crash window never forced a failover — widen the window";
  PRISMA_CHECK(single.unavailable > 0)
      << "single-copy machine degraded nowhere — the bench is vacuous";
  PRISMA_CHECK(rep.resyncs_completed > 0 && rep.resync_wire_bits > 0);
  PRISMA_CHECK(wrep.wal_records == 2 * wsingle.wal_records)
      << "replicated writes must WAL on both replicas";

  const std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"replication\",\n"
      "  \"smoke\": %s,\n"
      "  \"availability\": {\n"
      "    \"reads\": %llu,\n"
      "    \"answered_fraction_replicated\": %.4f,\n"
      "    \"answered_fraction_single_copy\": %.4f,\n"
      "    \"window_answered_fraction_replicated\": %.4f,\n"
      "    \"window_answered_fraction_single_copy\": %.4f,\n"
      "    \"failover_latency_ms\": %.3f,\n"
      "    \"worst_read_ms\": %.3f,\n"
      "    \"steady_read_ms\": %.3f,\n"
      "    \"failovers\": %llu\n"
      "  },\n"
      "  \"resync\": {\n"
      "    \"completed\": %llu,\n"
      "    \"wire_bits\": %llu\n"
      "  },\n"
      "  \"write_overhead\": {\n"
      "    \"replicated_total_ms\": %.3f,\n"
      "    \"single_copy_total_ms\": %.3f,\n"
      "    \"latency_ratio\": %.4f,\n"
      "    \"wal_records_replicated\": %llu,\n"
      "    \"wal_records_single_copy\": %llu\n"
      "  }\n"
      "}\n",
      smoke ? "true" : "false",
      static_cast<unsigned long long>(rep.reads),
      Fraction(rep.answered, rep.reads),
      Fraction(single.answered, single.reads),
      Fraction(rep.window_answered, rep.window_reads),
      Fraction(single.window_answered, single.window_reads),
      rep.worst_write_ms, rep.worst_read_ms, rep.steady_read_ms,
      static_cast<unsigned long long>(rep.failovers),
      static_cast<unsigned long long>(rep.resyncs_completed),
      static_cast<unsigned long long>(rep.resync_wire_bits),
      wrep.total_ms, wsingle.total_ms, wrep.total_ms / wsingle.total_ms,
      static_cast<unsigned long long>(wrep.wal_records),
      static_cast<unsigned long long>(wsingle.wal_records));
  const char* path = "BENCH_replication.json";
  std::FILE* f = std::fopen(path, "w");
  PRISMA_CHECK(f != nullptr) << "cannot write " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
