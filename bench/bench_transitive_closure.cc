// E5 — The transitive-closure operator (paper §2.5, §2.3).
//
// Paper claim: OFMs "support a transitive closure operator for dealing
// with recursive queries"; PRISMAlog recursion is defined by translation
// to this extended relational algebra.
//
// Harness, two levels:
//  (a) operator level: naive vs seminaive vs smart (squaring) evaluation
//      on chain / tree / random / cyclic graphs — derived-pair counts,
//      iteration counts, and wall time;
//  (b) machine level: the PRISMAlog ancestor query end-to-end on the
//      64-PE machine, TC operator vs generic seminaive rule iteration;
//  (c) distributed fixpoint scaling (--fixpoint runs only this part):
//      partitions 1/4/16/64 x naive/seminaive/smart, reporting rounds,
//      shipped delta bits over the exchange layer, and simulated time.

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "exec/transitive_closure.h"
#include "obs/metrics.h"

using namespace prisma;  // NOLINT: bench convenience.
using exec::TcAlgorithm;
using exec::TcStats;
using exec::TransitiveClosure;

namespace {

Tuple Pair(int64_t a, int64_t b) {
  return Tuple({Value::Int(a), Value::Int(b)});
}

std::vector<Tuple> Chain(int n) {
  std::vector<Tuple> edges;
  for (int i = 0; i < n; ++i) edges.push_back(Pair(i, i + 1));
  return edges;
}

std::vector<Tuple> BinaryTree(int depth) {
  std::vector<Tuple> edges;
  const int nodes = (1 << depth) - 1;
  for (int i = 1; i < nodes; ++i) edges.push_back(Pair((i - 1) / 2, i));
  return edges;
}

std::vector<Tuple> RandomGraph(int nodes, int edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  for (int i = 0; i < edges; ++i) {
    out.push_back(Pair(rng.Uniform(nodes), rng.Uniform(nodes)));
  }
  return out;
}

std::vector<Tuple> Cycle(int n) {
  std::vector<Tuple> edges;
  for (int i = 0; i < n; ++i) edges.push_back(Pair(i, (i + 1) % n));
  return edges;
}

void RunFamily(const char* name, const std::vector<Tuple>& edges,
               prisma::obs::MetricsRegistry* registry) {
  std::printf("\n%s (%zu edges):\n", name, edges.size());
  std::printf("  %-10s %12s %12s %12s %12s\n", "algorithm", "result", "iters",
              "derived", "wall us");
  for (const TcAlgorithm algorithm :
       {TcAlgorithm::kNaive, TcAlgorithm::kSeminaive, TcAlgorithm::kSmart}) {
    TcStats stats;
    const auto start = std::chrono::steady_clock::now();
    auto closure = TransitiveClosure(edges, algorithm, &stats);
    const auto end = std::chrono::steady_clock::now();
    PRISMA_CHECK(closure.ok());
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count();
    const prisma::obs::Labels labels = {
        {"family", name}, {"algorithm", TcAlgorithmName(algorithm)}};
    registry->GetCounter("e5.pairs_derived", labels)
        ->Increment(stats.pairs_derived);
    registry->GetGauge("e5.iterations", labels)
        ->Set(static_cast<int64_t>(stats.iterations));
    std::printf("  %-10s %12llu %12llu %12llu %12.0f\n",
                TcAlgorithmName(algorithm),
                static_cast<unsigned long long>(stats.result_size),
                static_cast<unsigned long long>(stats.iterations),
                static_cast<unsigned long long>(stats.pairs_derived), us);
  }
}

double AncestorQueryMs(bool use_tc_operator, int forest_nodes) {
  core::MachineConfig config;
  config.pes = 16;
  // The TC shortcut is an optimizer behaviour of the PRISMAlog engine;
  // the coordinator always enables it, so contrast at the engine level by
  // renaming the step rule so the pattern does not match.
  core::PrismaDb db(config);
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute("CREATE TABLE parent (p INT, c INT) "
                  "FRAGMENTED BY HASH(p) INTO 8 FRAGMENTS"));
  // A random forest.
  Rng rng(11);
  std::string sql = "INSERT INTO parent VALUES ";
  for (int i = 1; i < forest_nodes; ++i) {
    if (i > 1) sql += ", ";
    sql += StrFormat("(%d, %d)", static_cast<int>(rng.Uniform(i)), i);
  }
  must(db.Execute(sql));

  const char* tc_program =
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(0, D).";
  // Breaking the linear pattern (extra indirection) forces the generic
  // seminaive path while computing the same relation.
  const char* generic_program =
      "step(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Y) :- step(X, Y).\n"
      "ancestor(X, Z) :- step(X, Y), ancestor(Y, Z), X >= 0.\n"
      "? ancestor(0, D).";
  auto result =
      must(db.ExecutePrismalog(use_tc_operator ? tc_program : generic_program));
  return static_cast<double>(result.response_time_ns) / 1e6;
}

// ------------------------------------------- distributed fixpoint sweep

/// Deterministic random forest as (parent, child) pairs — every node but
/// the root hangs off an earlier node, so the closure is the ancestor
/// relation and depth (= round count) grows slowly with n.
std::vector<std::pair<int, int>> ForestEdges(int nodes) {
  Rng rng(11);
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < nodes; ++i) {
    edges.push_back({static_cast<int>(rng.Uniform(i)), i});
  }
  return edges;
}

struct FixpointRow {
  double ms = 0;
  int64_t rounds = 0;
  int64_t wire_bits = 0;
  int64_t delta_tuples = 0;
};

FixpointRow FixpointQueryRow(const std::vector<std::pair<int, int>>& edges,
                             int fragments, TcAlgorithm algorithm) {
  core::MachineConfig config;
  config.pes = 64;
  config.fixpoint_algorithm = algorithm;
  core::PrismaDb db(config);
  auto must = [](auto&& r) {
    PRISMA_CHECK(r.ok()) << r.status().ToString();
    return std::forward<decltype(r)>(r).value();
  };
  must(db.Execute(StrFormat("CREATE TABLE edge (src INT, dst INT) "
                            "FRAGMENTED BY HASH(src) INTO %d FRAGMENTS",
                            fragments)));
  std::string sql = "INSERT INTO edge VALUES ";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += StrFormat("(%d, %d)", edges[i].first, edges[i].second);
  }
  must(db.Execute(sql));
  auto result = must(db.ExecutePrismalog(
      "p(X, Y) :- edge(X, Y).\n"
      "p(X, Z) :- edge(X, Y), p(Y, Z).\n"
      "? p(X, Y)."));
  FixpointRow row;
  row.ms = static_cast<double>(result.response_time_ns) / 1e6;
  row.rounds = db.metrics().GaugeValue("fixpoint.last_rounds");
  row.wire_bits = db.metrics().GaugeValue("fixpoint.last_wire_bits");
  row.delta_tuples = db.metrics().GaugeValue("fixpoint.last_delta_tuples");
  return row;
}

void FixpointSweep(bool smoke) {
  const int nodes = smoke ? 40 : 150;
  const auto edges = ForestEdges(nodes);
  std::vector<Tuple> tuples;
  for (const auto& [a, b] : edges) tuples.push_back(Pair(a, b));
  std::printf(
      "\ndistributed fixpoint scaling (forest n=%d, 64-PE machine):\n", nodes);
  std::printf("  %-10s %-10s %8s %14s %12s %12s\n", "partitions", "algorithm",
              "rounds", "shipped bits", "closure", "sim ms");
  for (const int fragments : {1, 4, 16, 64}) {
    for (const TcAlgorithm algorithm :
         {TcAlgorithm::kNaive, TcAlgorithm::kSeminaive, TcAlgorithm::kSmart}) {
      TcStats stats;
      auto oracle = TransitiveClosure(tuples, algorithm, &stats);
      PRISMA_CHECK(oracle.ok());
      const FixpointRow row = FixpointQueryRow(edges, fragments, algorithm);
      // The acceptance cross-check: distributed fixpoint.rounds equals the
      // single-node iteration count for the same strategy (the diff
      // harness proves this for arbitrary graphs; the bench keeps it
      // wired into every sweep so a regression fails the smoke run).
      PRISMA_CHECK(static_cast<uint64_t>(row.rounds) == stats.iterations)
          << "fixpoint.rounds=" << row.rounds << " single-node iterations="
          << stats.iterations << " (" << TcAlgorithmName(algorithm) << ", "
          << fragments << " partitions)";
      PRISMA_CHECK(static_cast<uint64_t>(row.delta_tuples) ==
                   stats.result_size);
      std::printf("  %-10d %-10s %8lld %14lld %12lld %12.2f\n", fragments,
                  TcAlgorithmName(algorithm),
                  static_cast<long long>(row.rounds),
                  static_cast<long long>(row.wire_bits),
                  static_cast<long long>(row.delta_tuples), row.ms);
    }
  }
  std::printf(
      "\nreading: rounds depend on the strategy and the data, never on the\n"
      "partition count. Seminaive ships only fresh delta tuples; naive\n"
      "re-ships every re-derived pair each round (dedup happens at the\n"
      "home partition); smart needs O(log d) rounds but also ships the\n"
      "index copy partitioned on the first endpoint. This is the §2.5\n"
      "shipping-cost axis the single-node operator comparison hides.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  if (prisma::bench::HasFlag(argc, argv, "--fixpoint")) {
    // Dedicated entry point (its own ctest smoke case): just the
    // distributed fixpoint scaling sweep.
    std::printf("E5: distributed fixpoint scaling%s\n", smoke ? " (smoke)" : "");
    FixpointSweep(smoke);
    return 0;
  }
  prisma::obs::MetricsRegistry registry;
  std::printf("E5: transitive-closure operator strategies%s\n",
              smoke ? " (smoke)" : "");
  if (smoke) {
    RunFamily("chain n=32", Chain(32), &registry);
    RunFamily("binary tree depth=6", BinaryTree(6), &registry);
    RunFamily("cycle n=32", Cycle(32), &registry);
  } else {
    RunFamily("chain n=128", Chain(128), &registry);
    RunFamily("chain n=512", Chain(512), &registry);
    RunFamily("binary tree depth=10", BinaryTree(10), &registry);
    RunFamily("random n=300 e=600", RandomGraph(300, 600, 3), &registry);
    RunFamily("cycle n=128", Cycle(128), &registry);
  }
  prisma::bench::PrintCounterSeries(registry, {"e5.pairs_derived"});

  const int forest = smoke ? 60 : 200;
  std::printf("\nend-to-end PRISMAlog ancestor query on the machine:\n");
  const double with_tc = AncestorQueryMs(true, forest);
  const double without_tc = AncestorQueryMs(false, forest);
  std::printf("  %-34s %10.2f simulated ms\n",
              "TC operator (linear recursion)", with_tc);
  std::printf("  %-34s %10.2f simulated ms\n",
              "generic seminaive rule iteration", without_tc);
  std::printf(
      "\nreading: seminaive derives far fewer pairs than naive (no "
      "re-derivation);\nsmart needs O(log d) rounds but each round joins the "
      "whole closure. The\ndedicated operator beats generic rule iteration "
      "end-to-end — the reason\n§2.5 builds it into every OFM.\n");

  FixpointSweep(smoke);
  return 0;
}
