// E14 — TPC-H-lite: distributed OLAP over the exchange layer
// (DESIGN.md §14).
//
// Harness: a scaled-down TPC-H-shaped schema (lineitem / orders /
// customer, integral values so every aggregate is exact) on machines of
// increasing PE count, running eight analytic queries twice per machine
// shape — once with the multi-stage OLAP lowering (pre-aggregate +
// shuffle-by-key group-bys, sample-based range-partitioned sorts) and
// once on the gather baseline (distributed_olap and aggregate_pushdown
// off: the coordinator pulls base tuples and does everything itself).
// Every answer is self-checked byte-for-byte against a single-fragment
// reference machine before any number is reported.
//
// Emits BENCH_tpch_lite.json — per-PE-count, per-query response times
// and wire volumes for both strategies — so OLAP regressions are visible
// PR-over-PR.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::Rng;
using prisma::StrFormat;
using prisma::Tuple;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;
using prisma::core::QueryResult;

namespace {

// Scale (smoke shrinks these): TPC-H's 4:1 lineitem:orders row ratio.
int kLineitems = 1200;
int kOrders = 300;
int kCustomers = 60;

const char* kShipmodes[] = {"AIR", "MAIL", "RAIL", "SHIP", "TRUCK"};
const char* kStatuses[] = {"F", "O", "P"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "MACHINERY"};
const char* kNations[] = {"BRAZIL", "CANADA", "FRANCE", "JAPAN", "KENYA"};

/// The eight queries: four single-table group-bys (every aggregate,
/// AVG included so partial SUM+COUNT merge is priced), two distributed
/// sorts (one under LIMIT), one global aggregate without group keys and
/// one join + group-by whose group-by stays at the coordinator (the join
/// output is not a base table) — the mixed-path case.
struct Query {
  const char* name;
  const char* sql;
};
const Query kQueries[] = {
    {"q1_pricing_summary",
     "SELECT l_status, COUNT(*) AS n, SUM(l_quantity) AS qty, "
     "SUM(l_price) AS price, AVG(l_price) AS mean_price "
     "FROM lineitem GROUP BY l_status ORDER BY l_status"},
    {"q2_shipmode_counts",
     "SELECT l_shipmode, COUNT(*) AS n, SUM(l_price) AS price FROM lineitem "
     "WHERE l_quantity >= 25 GROUP BY l_shipmode ORDER BY l_shipmode"},
    {"q3_order_priority",
     "SELECT o_priority, COUNT(*) AS n FROM orders "
     "GROUP BY o_priority ORDER BY o_priority"},
    {"q4_nation_distribution",
     "SELECT c_nation, COUNT(*) AS n FROM customer "
     "GROUP BY c_nation ORDER BY c_nation"},
    {"q5_price_rank",
     "SELECT l_orderkey, l_price FROM lineitem "
     "ORDER BY l_price DESC, l_orderkey"},
    {"q6_top_orders",
     "SELECT o_orderkey, o_total FROM orders "
     "ORDER BY o_total DESC, o_orderkey LIMIT 10"},
    {"q7_revenue_filter",
     "SELECT SUM(l_price) AS revenue, COUNT(*) AS n FROM lineitem "
     "WHERE l_discount >= 5 AND l_quantity < 30"},
    {"q8_segment_totals",
     "SELECT c_segment, SUM(o_total) AS total FROM orders o "
     "JOIN customer c ON o.o_custkey = c.c_custkey "
     "GROUP BY c_segment ORDER BY c_segment"},
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

QueryResult MustExecute(PrismaDb& db, const std::string& sql) {
  auto result = db.Execute(sql);
  PRISMA_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
  return std::move(result).value();
}

void InsertBatched(PrismaDb& db, const std::string& table,
                   const std::vector<std::string>& rows) {
  for (size_t i = 0; i < rows.size(); i += 100) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    for (size_t j = i; j < rows.size() && j < i + 100; ++j) {
      if (j > i) sql += ", ";
      sql += rows[j];
    }
    MustExecute(db, sql);
  }
}

/// Loads the deterministic dataset; `fragments` <= 1 creates unfragmented
/// tables (the single-node reference).
void LoadTpchLite(PrismaDb& db, int fragments) {
  const char* frag_l =
      fragments > 1 ? " FRAGMENTED BY HASH(l_orderkey) INTO %d FRAGMENTS" : "";
  const char* frag_o =
      fragments > 1 ? " FRAGMENTED BY HASH(o_orderkey) INTO %d FRAGMENTS" : "";
  const char* frag_c =
      fragments > 1 ? " FRAGMENTED BY HASH(c_custkey) INTO %d FRAGMENTS" : "";
  MustExecute(db, StrFormat("CREATE TABLE lineitem (l_orderkey INT, "
                            "l_partkey INT, l_quantity INT, l_price INT, "
                            "l_discount INT, l_shipmode STRING, "
                            "l_status STRING)%s",
                            StrFormat(frag_l, fragments).c_str()));
  MustExecute(db, StrFormat("CREATE TABLE orders (o_orderkey INT, "
                            "o_custkey INT, o_status STRING, o_total INT, "
                            "o_priority STRING)%s",
                            StrFormat(frag_o, fragments).c_str()));
  MustExecute(db, StrFormat("CREATE TABLE customer (c_custkey INT, "
                            "c_name STRING, c_segment STRING, "
                            "c_nation STRING)%s",
                            StrFormat(frag_c, fragments).c_str()));

  Rng rng(0x7c9b1ed1ULL);
  std::vector<std::string> rows;
  for (int i = 0; i < kLineitems; ++i) {
    rows.push_back(StrFormat(
        "(%d, %d, %d, %d, %d, '%s', '%s')", i % kOrders,
        static_cast<int>(rng.UniformInt(0, 200)),
        static_cast<int>(rng.UniformInt(1, 50)),
        static_cast<int>(rng.UniformInt(100, 10000)),
        static_cast<int>(rng.UniformInt(0, 10)),
        kShipmodes[rng.UniformInt(0, 4)], kStatuses[rng.UniformInt(0, 2)]));
  }
  InsertBatched(db, "lineitem", rows);
  rows.clear();
  for (int i = 0; i < kOrders; ++i) {
    rows.push_back(StrFormat(
        "(%d, %d, '%s', %d, '%s')", i,
        static_cast<int>(rng.UniformInt(0, kCustomers - 1)),
        kStatuses[rng.UniformInt(0, 2)],
        static_cast<int>(rng.UniformInt(1000, 100000)),
        kPriorities[rng.UniformInt(0, 3)]));
  }
  InsertBatched(db, "orders", rows);
  rows.clear();
  for (int i = 0; i < kCustomers; ++i) {
    rows.push_back(StrFormat("(%d, 'customer%d', '%s', '%s')", i, i,
                             kSegments[rng.UniformInt(0, 2)],
                             kNations[rng.UniformInt(0, 4)]));
  }
  InsertBatched(db, "customer", rows);
}

std::string Rendered(const QueryResult& result) {
  std::string out;
  for (const Tuple& t : result.tuples) {
    out += t.ToString();
    out += '\n';
  }
  return out;
}

struct QueryMeasure {
  double ms = 0;                 ///< Virtual response time.
  uint64_t tuples_gathered = 0;  ///< Rows pulled to the coordinator.
  uint64_t olap_parts = 0;
  uint64_t shuffle_bits = 0;     ///< olap.shuffle_bits delta.
  uint64_t olap_gather_bits = 0; ///< olap.gather_bits delta.
  uint64_t gather_bits = 0;      ///< Plain fragment-reply bits (gauge).
};

struct SweepCell {
  int pes = 0;
  int fragments = 0;
  QueryMeasure olap[kNumQueries];
  QueryMeasure gather[kNumQueries];
};

/// Runs all queries on one machine shape; `lowered` picks the strategy.
/// Answers are checked against `reference` (the single-fragment run).
void RunShape(int pes, int fragments, bool lowered,
              const std::vector<std::string>& reference,
              QueryMeasure* measures) {
  MachineConfig config;
  config.pes = pes;
  if (!lowered) {
    config.rules.distributed_olap = false;
    config.rules.aggregate_pushdown = false;
  }
  PrismaDb db(config);
  LoadTpchLite(db, fragments);
  for (size_t q = 0; q < kNumQueries; ++q) {
    const uint64_t gathered0 =
        db.metrics().CounterTotal("query.tuples_gathered");
    const uint64_t parts0 = db.metrics().CounterTotal("olap.parts");
    const uint64_t shuffle0 = db.metrics().CounterTotal("olap.shuffle_bits");
    const uint64_t ogather0 = db.metrics().CounterTotal("olap.gather_bits");
    const QueryResult result = MustExecute(db, kQueries[q].sql);
    PRISMA_CHECK(Rendered(result) == reference[q])
        << kQueries[q].name << " diverged from the single-node reference "
        << "(pes=" << pes << ", lowered=" << lowered << ")";
    QueryMeasure& m = measures[q];
    m.ms = static_cast<double>(result.response_time_ns) / 1e6;
    m.tuples_gathered =
        db.metrics().CounterTotal("query.tuples_gathered") - gathered0;
    m.olap_parts = db.metrics().CounterTotal("olap.parts") - parts0;
    m.shuffle_bits = db.metrics().CounterTotal("olap.shuffle_bits") - shuffle0;
    m.olap_gather_bits =
        db.metrics().CounterTotal("olap.gather_bits") - ogather0;
    m.gather_bits = static_cast<uint64_t>(
        db.metrics().GaugeValue("query.last_gather_bits"));
  }
  if (lowered) {
    prisma::bench::PrintCounterSeries(
        db.metrics(), {"olap.parts", "olap.shuffle_bits", "olap.gather_bits",
                       "olap.sample_rows", "exchange.batches_sent",
                       "query.tuples_gathered"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  std::vector<int> pe_counts = {4, 8, 16};
  if (smoke) {
    kLineitems = 240;
    kOrders = 60;
    kCustomers = 20;
    pe_counts = {4};
  }

  // Single-fragment reference answers (no distributed plans at all).
  std::vector<std::string> reference;
  {
    MachineConfig config;
    config.pes = 2;
    PrismaDb db(config);
    LoadTpchLite(db, /*fragments=*/1);
    for (const Query& q : kQueries) {
      reference.push_back(Rendered(MustExecute(db, q.sql)));
    }
  }

  std::vector<SweepCell> sweep;
  for (const int pes : pe_counts) {
    SweepCell cell;
    cell.pes = pes;
    cell.fragments = pes;
    std::printf("== pes=%d fragments=%d ==\n", pes, cell.fragments);
    RunShape(pes, cell.fragments, /*lowered=*/true, reference, cell.olap);
    RunShape(pes, cell.fragments, /*lowered=*/false, reference, cell.gather);
    std::printf("\n%-22s %12s %12s %10s %14s %14s\n", "query", "olap_ms",
                "gather_ms", "speedup", "olap_bits", "gather_bits");
    for (size_t q = 0; q < kNumQueries; ++q) {
      const QueryMeasure& o = cell.olap[q];
      const QueryMeasure& g = cell.gather[q];
      std::printf("%-22s %12.3f %12.3f %9.2fx %14llu %14llu\n",
                  kQueries[q].name, o.ms, g.ms, g.ms / o.ms,
                  static_cast<unsigned long long>(
                      o.shuffle_bits + o.olap_gather_bits + o.gather_bits),
                  static_cast<unsigned long long>(g.gather_bits));
    }
    sweep.push_back(cell);

    // Contract: the pure group-bys and sorts (q1..q6) all took the
    // multi-stage path, and the canonical group-by (q1) moved strictly
    // fewer wire bits than its base-tuple gather baseline.
    for (size_t q = 0; q < 6; ++q) {
      PRISMA_CHECK(cell.olap[q].olap_parts > 0)
          << kQueries[q].name << " was not lowered at pes=" << pes;
    }
    PRISMA_CHECK(cell.olap[0].shuffle_bits + cell.olap[0].olap_gather_bits <
                 cell.gather[0].gather_bits)
        << "q1 wire bits not below the gather baseline at pes=" << pes;
    PRISMA_CHECK(cell.olap[0].tuples_gathered < cell.gather[0].tuples_gathered)
        << "q1 gathered as many tuples as the baseline at pes=" << pes;
  }

  // JSON trajectory artifact.
  std::string json = StrFormat(
      "{\n  \"bench\": \"tpch_lite\",\n  \"smoke\": %s,\n"
      "  \"scale\": {\"lineitem\": %d, \"orders\": %d, \"customer\": %d},\n"
      "  \"sweep\": [\n",
      smoke ? "true" : "false", kLineitems, kOrders, kCustomers);
  for (size_t c = 0; c < sweep.size(); ++c) {
    const SweepCell& cell = sweep[c];
    json += StrFormat("    {\"pes\": %d, \"fragments\": %d, \"queries\": [\n",
                      cell.pes, cell.fragments);
    for (size_t q = 0; q < kNumQueries; ++q) {
      const QueryMeasure& o = cell.olap[q];
      const QueryMeasure& g = cell.gather[q];
      json += StrFormat(
          "      {\"name\": \"%s\", \"olap_ms\": %.3f, \"gather_ms\": %.3f, "
          "\"olap_parts\": %llu, \"olap_shuffle_bits\": %llu, "
          "\"olap_gather_bits\": %llu, \"olap_tuples_gathered\": %llu, "
          "\"baseline_gather_bits\": %llu, "
          "\"baseline_tuples_gathered\": %llu}%s\n",
          kQueries[q].name, o.ms, g.ms,
          static_cast<unsigned long long>(o.olap_parts),
          static_cast<unsigned long long>(o.shuffle_bits),
          static_cast<unsigned long long>(o.olap_gather_bits),
          static_cast<unsigned long long>(o.tuples_gathered),
          static_cast<unsigned long long>(g.gather_bits),
          static_cast<unsigned long long>(g.tuples_gathered),
          q + 1 < kNumQueries ? "," : "");
    }
    json += StrFormat("    ]}%s\n", c + 1 < sweep.size() ? "," : "");
  }
  json += "  ]\n}\n";
  const char* path = "BENCH_tpch_lite.json";
  std::FILE* f = std::fopen(path, "w");
  PRISMA_CHECK(f != nullptr) << "cannot write " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
