// E3 — Main memory as primary storage (paper §2.1).
//
// Paper claim: PRISMA "aims at performance improvement ... by using a
// very large main-memory as primary storage". The paper has no numbers;
// the experiment contrasts the same OFM-local workloads against a
// simulated disk-resident baseline (a late-1980s drive: ~25 ms access,
// 1 MB/s transfer), using the virtual cost model for the CPU side and the
// DiskModel for I/O.
//
// The disk-resident baseline charges one sequential sweep of the relation
// per scan (pages are not cached between queries, as in a classic
// buffer-starved 1988 machine), while the main-memory OFM touches memory
// only.

#include <cstdio>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "storage/relation.h"
#include "storage/stable_store.h"

using namespace prisma;           // NOLINT: bench convenience.
using namespace prisma::algebra;  // NOLINT

namespace {

Schema SalesSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"region", DataType::kInt64},
                 {"amount", DataType::kInt64}});
}

std::unique_ptr<storage::Relation> MakeSales(int rows) {
  auto rel = std::make_unique<storage::Relation>("sales", SalesSchema());
  Rng rng(42);
  for (int i = 0; i < rows; ++i) {
    rel->Insert(Tuple({Value::Int(i), Value::Int(rng.UniformInt(0, 9)),
                       Value::Int(rng.UniformInt(0, 999))}))
        .value();
  }
  return rel;
}

struct Workload {
  const char* name;
  std::function<std::unique_ptr<Plan>()> plan;
  /// Relation sweeps a disk-resident evaluation needs (scan passes).
  int disk_sweeps;
};

/// --vectorized: the same OFM-local workloads in row vs vectorized
/// execution (DESIGN.md §12), reporting virtual-time rows/sec. The batch
/// kernels amortize interpretation: per row they charge batch_row_ns plus
/// a few vector_instr_ns instead of tuple_ns plus compiled_instr_ns per
/// instruction, so scan+filter must clear 2x (enforced below — the smoke
/// ctest case is the regression gate).
int VectorizedSweep(bool smoke) {
  std::printf("E3v: row vs vectorized execution (virtual time)%s\n",
              smoke ? " (smoke)" : "");
  std::printf("%-8s %-12s %14s %14s %9s\n", "rows", "workload",
              "row Mrows/s", "vec Mrows/s", "speedup");
  const std::vector<int> row_sweep =
      smoke ? std::vector<int>{10'000}
            : std::vector<int>{10'000, 100'000};
  double scan_filter_speedup = 0;
  for (const int rows : row_sweep) {
    auto sales = MakeSales(rows);
    exec::MapTableResolver resolver;
    resolver.Register("sales", sales.get());

    const Workload workloads[] = {
        {"select",
         [] {
           auto plan = SelectPlan::Create(
               ScanPlan::Create("sales", SalesSchema()),
               Expr::Binary(BinaryOp::kLt,
                            Expr::ColumnIndex(2, DataType::kInt64),
                            Lit(int64_t{100})));
           PRISMA_CHECK(plan.ok());
           return std::move(plan).value();
         },
         1},
        {"aggregate",
         [] {
           std::vector<std::unique_ptr<Expr>> groups;
           groups.push_back(Expr::ColumnIndex(1, DataType::kInt64));
           std::vector<AggSpec> aggs;
           aggs.push_back({AggFunc::kSum,
                           Expr::ColumnIndex(2, DataType::kInt64), "total"});
           auto plan = AggregatePlan::Create(
               ScanPlan::Create("sales", SalesSchema()), std::move(groups),
               {"region"}, std::move(aggs));
           PRISMA_CHECK(plan.ok());
           return std::unique_ptr<Plan>(std::move(plan).value());
         },
         1},
    };
    for (const Workload& w : workloads) {
      auto run = [&](exec::ExecMode mode) {
        exec::ExecOptions options;
        options.exec_mode = mode;
        exec::Executor executor(&resolver, options);
        auto plan = w.plan();
        auto result = executor.Execute(*plan);
        PRISMA_CHECK(result.ok()) << result.status().ToString();
        PRISMA_CHECK(executor.stats().charged_ns > 0);
        // Rows scanned per virtual second.
        return static_cast<double>(executor.stats().tuples_scanned) /
               (static_cast<double>(executor.stats().charged_ns) / 1e9);
      };
      const double row_rate = run(exec::ExecMode::kRow);
      const double vec_rate = run(exec::ExecMode::kVectorized);
      const double speedup = vec_rate / row_rate;
      if (std::string(w.name) == "select") {
        scan_filter_speedup = speedup;
      }
      std::printf("%-8d %-12s %14.2f %14.2f %8.1fx\n", rows, w.name,
                  row_rate / 1e6, vec_rate / 1e6, speedup);
    }
  }
  PRISMA_CHECK(scan_filter_speedup >= 2.0)
      << "vectorized scan+filter regressed below the 2x contract: "
      << scan_filter_speedup;
  std::printf(
      "\nreading: the batch kernels clear the 2x contract on scan+filter "
      "by\namortizing per-tuple dispatch into per-batch kernel launches — "
      "the\ngenerative-interpretation gap the vectorized path models.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = prisma::bench::SmokeMode(argc, argv);
  if (prisma::bench::HasFlag(argc, argv, "--vectorized")) {
    return VectorizedSweep(smoke);
  }
  std::printf("E3: main-memory vs disk-resident processing (simulated)%s\n",
              smoke ? " (smoke)" : "");
  std::printf("disk model: %.0f ms access, %.1f MB/s transfer\n",
              storage::DiskModel().access_ns / 1e6,
              storage::DiskModel().bandwidth_bytes_per_sec / 1e6);
  std::printf("%-8s %-12s %14s %14s %9s\n", "rows", "workload", "memory ms",
              "disk ms", "ratio");

  const storage::DiskModel disk;
  prisma::obs::MetricsRegistry registry;
  const std::vector<int> row_sweep =
      smoke ? std::vector<int>{1'000} : std::vector<int>{1'000, 10'000,
                                                         100'000};
  for (const int rows : row_sweep) {
    auto sales = MakeSales(rows);
    exec::MapTableResolver resolver;
    resolver.Register("sales", sales.get());

    const Workload workloads[] = {
        {"select",
         [] {
           auto plan = SelectPlan::Create(
               ScanPlan::Create("sales", SalesSchema()),
               Expr::Binary(BinaryOp::kLt,
                            Expr::ColumnIndex(2, DataType::kInt64),
                            Lit(int64_t{100})));
           PRISMA_CHECK(plan.ok());
           return std::move(plan).value();
         },
         1},
        {"aggregate",
         [] {
           std::vector<std::unique_ptr<Expr>> groups;
           groups.push_back(Expr::ColumnIndex(1, DataType::kInt64));
           std::vector<AggSpec> aggs;
           aggs.push_back({AggFunc::kSum,
                           Expr::ColumnIndex(2, DataType::kInt64), "total"});
           auto plan = AggregatePlan::Create(
               ScanPlan::Create("sales", SalesSchema()), std::move(groups),
               {"region"}, std::move(aggs));
           PRISMA_CHECK(plan.ok());
           return std::unique_ptr<Plan>(std::move(plan).value());
         },
         1},
        {"self-join",
         [] {
           // Equi self-join on region: two scans.
           auto plan = JoinPlan::Create(
               ScanPlan::Create("sales", SalesSchema()),
               ScanPlan::Create("sales", SalesSchema()),
               algebra::And(
                   Expr::Binary(BinaryOp::kEq,
                                Expr::ColumnIndex(0, DataType::kInt64),
                                Expr::ColumnIndex(3, DataType::kInt64)),
                   Expr::Binary(BinaryOp::kLt,
                                Expr::ColumnIndex(2, DataType::kInt64),
                                Lit(int64_t{50}))));
           PRISMA_CHECK(plan.ok());
           return std::unique_ptr<Plan>(std::move(plan).value());
         },
         2},
    };

    for (const Workload& w : workloads) {
      exec::Executor executor(&resolver, exec::ExecOptions());
      auto plan = w.plan();
      auto result = executor.Execute(*plan);
      PRISMA_CHECK(result.ok()) << result.status().ToString();
      const double memory_ms =
          static_cast<double>(executor.stats().charged_ns) / 1e6;
      // Disk-resident baseline: same CPU work, plus sequential sweeps of
      // the base relation per scan pass.
      const double io_ms = static_cast<double>(disk.IoNs(sales->byte_size())) /
                           1e6 * w.disk_sweeps;
      const double disk_ms = memory_ms + io_ms;
      const prisma::obs::Labels labels = {
          {"rows", std::to_string(rows)}, {"workload", w.name}};
      registry.GetGauge("e3.memory_ns", labels)
          ->Set(executor.stats().charged_ns);
      registry.GetCounter("e3.tuples_scanned", labels)
          ->Increment(executor.stats().tuples_scanned);
      std::printf("%-8d %-12s %14.3f %14.3f %8.1fx\n", rows, w.name,
                  memory_ms, disk_ms, disk_ms / memory_ms);
    }
  }
  prisma::bench::PrintCounterSeries(registry, {"e3.tuples_scanned"});
  std::printf(
      "\nreading: main-memory evaluation wins by the I/O-to-CPU gap — an "
      "order of\nmagnitude and more at small sizes where positioning time "
      "dominates, and\nstill several-fold at 100k rows. This is the design "
      "premise of §2.1.\n");
  return 0;
}
