#!/usr/bin/env sh
# Checks that every C++ source under src/, tools/, tests/, bench/ and
# examples/ is clang-format clean (.clang-format at the repo root).
#
# Skips with a notice when clang-format is not installed — the container
# used for local development ships only gcc; CI installs the tool in the
# lint job and enforces the check there.
set -eu

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping (CI enforces this)"
  exit 0
fi

echo "check_format: using $(clang-format --version)"

status=0
for file in $(find src tools tests bench examples \
    \( -name '*.h' -o -name '*.cc' -o -name '*.cpp' \) | sort); do
  if ! clang-format --dry-run -Werror "$file" 2>/dev/null; then
    echo "check_format: needs formatting: $file"
    clang-format --dry-run -Werror "$file" 2>&1 | head -20 || true
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: all files clean"
fi
exit "$status"
