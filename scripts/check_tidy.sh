#!/usr/bin/env sh
# Runs clang-tidy (profile: .clang-tidy at the repo root) over src/ and
# tools/ using the compile database of an existing build directory.
#
# Usage: scripts/check_tidy.sh [build-dir]   (default: build)
#
# Skips with a notice when clang-tidy is not installed — the container
# used for local development ships only gcc; CI installs the tool in the
# lint job and enforces the check there.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_tidy: clang-tidy not found; skipping (CI enforces this)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "check_tidy: $BUILD_DIR/compile_commands.json missing; configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first"
  exit 2
fi

echo "check_tidy: using $(clang-tidy --version | head -1)"

# run-clang-tidy parallelizes across the compile database when available;
# fall back to a sequential loop otherwise.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$BUILD_DIR" "src/.*\.cc$" "tools/.*\.cc$"
else
  status=0
  for file in $(find src tools -name '*.cc' | sort); do
    clang-tidy -quiet -p "$BUILD_DIR" "$file" || status=1
  done
  exit "$status"
fi
