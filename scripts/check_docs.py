#!/usr/bin/env python3
"""Docs cross-reference lint (ctest case `check_docs`).

The documentation map (README "Documentation map", DESIGN.md section
index, EXPERIMENTS.md registry) is load-bearing: sources cite design
sections by number and benches emit JSON artifacts that EXPERIMENTS.md
interprets. This check fails the build when any of those links dangle:

  1. every `DESIGN.md §N[.M]` reference in sources, tests, benches,
     examples and the other docs resolves to a real DESIGN.md heading;
  2. every `BENCH_*.json` artifact at the repo root has a matching
     mention in EXPERIMENTS.md (a section interprets it);
  3. every `bench/bench_*.cc` binary appears in the DESIGN.md §3
     experiment index, and every `bench_*` named there exists on disk;
  4. every `BENCH_*.json` name EXPERIMENTS.md mentions has a bench
     source that actually emits it (the string literal appears in some
     bench/bench_*.cc) — no phantom artifacts in the registry.

Usage: check_docs.py [repo-root]   (defaults to the parent of scripts/)
"""

import os
import re
import sys


def fail(problems):
    for p in problems:
        print(f"check_docs: {p}")
    print(f"check_docs: FAILED ({len(problems)} problem(s))")
    return 1


def design_sections(design_text):
    """Section numbers declared by DESIGN.md headings: {'3', '10', '10.2', ...}."""
    sections = set()
    for line in design_text.splitlines():
        m = re.match(r"^##\s+(\d+)\.\s", line)
        if m:
            sections.add(m.group(1))
        m = re.match(r"^###\s+(\d+\.\d+)\s", line)
        if m:
            sections.add(m.group(1))
    return sections


def iter_source_files(root):
    scan_dirs = ["src", "tests", "bench", "examples", "tools", "scripts"]
    for d in scan_dirs:
        for dirpath, _, files in os.walk(os.path.join(root, d)):
            for f in files:
                if f.endswith((".h", ".cc", ".cpp", ".py", ".md", ".txt")):
                    yield os.path.join(dirpath, f)
    for f in os.listdir(root):
        if f.endswith(".md"):
            yield os.path.join(root, f)


# "DESIGN.md §10.2", "`DESIGN.md` §14" — an optional closing backtick may
# sit between the filename and the section sigil.
REF_RE = re.compile(r"DESIGN\.md`?\s*§(\d+(?:\.\d+)?)")


def check_section_refs(root, sections, problems):
    for path in iter_source_files(root):
        rel = os.path.relpath(path, root)
        try:
            with open(path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except (OSError, UnicodeDecodeError):
            continue
        for lineno, line in enumerate(lines, 1):
            for m in REF_RE.finditer(line):
                if m.group(1) not in sections:
                    problems.append(
                        f"{rel}:{lineno}: dangling reference DESIGN.md "
                        f"§{m.group(1)} (no such section heading)")


def check_bench_artifacts(root, problems):
    experiments = open(os.path.join(root, "EXPERIMENTS.md"),
                       encoding="utf-8").read()
    for f in sorted(os.listdir(root)):
        if f.startswith("BENCH_") and f.endswith(".json"):
            if f not in experiments:
                problems.append(
                    f"{f}: benchmark artifact has no mention in "
                    f"EXPERIMENTS.md (add the section that interprets it)")


def check_bench_emitters(root, problems):
    experiments = open(os.path.join(root, "EXPERIMENTS.md"),
                       encoding="utf-8").read()
    bench_dir = os.path.join(root, "bench")
    emitted = set()
    for f in os.listdir(bench_dir):
        if f.startswith("bench_") and f.endswith(".cc"):
            src = open(os.path.join(bench_dir, f), encoding="utf-8").read()
            emitted.update(re.findall(r"BENCH_\w+\.json", src))
    for name in sorted(set(re.findall(r"BENCH_\w+\.json", experiments))):
        if name not in emitted:
            problems.append(
                f"EXPERIMENTS.md: mentions {name} but no bench/bench_*.cc "
                f"emits it (write the bench or drop the artifact)")


def check_experiment_index(root, problems):
    design = open(os.path.join(root, "DESIGN.md"), encoding="utf-8").read()
    m = re.search(r"^## 3\.\s.*?(?=^## \d+\.)", design, re.M | re.S)
    if not m:
        problems.append("DESIGN.md: cannot locate the §3 experiment index")
        return
    index = m.group(0)
    on_disk = {f[:-3] for f in os.listdir(os.path.join(root, "bench"))
               if f.startswith("bench_") and f.endswith(".cc")}
    for name in sorted(on_disk):
        if name not in index:
            problems.append(
                f"bench/{name}.cc: not listed in the DESIGN.md §3 "
                f"experiment index")
    for name in sorted(set(re.findall(r"bench_\w+", index))):
        if name not in on_disk:
            problems.append(
                f"DESIGN.md §3: experiment index names {name} but "
                f"bench/{name}.cc does not exist")


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir))
    problems = []
    design = open(os.path.join(root, "DESIGN.md"), encoding="utf-8").read()
    check_section_refs(root, design_sections(design), problems)
    check_bench_artifacts(root, problems)
    check_bench_emitters(root, problems)
    check_experiment_index(root, problems)
    if problems:
        return fail(problems)
    print("check_docs: OK (section references, bench artifacts and the "
          "experiment index are in sync)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
