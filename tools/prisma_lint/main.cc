// CLI driver: `prisma_lint --root src [--allowlist tools/prisma_lint/
// allowlist.txt] [--verbose]`. Exit 0 when the tree is clean (allowlisted
// findings are fine), 1 on violations or stale allowlist entries, 2 on
// usage/IO errors.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint.h"

#include <fstream>
#include <sstream>

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: prisma_lint --root <dir> [--allowlist <file>] "
               "[--verbose]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist_path;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--allowlist") == 0 && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return Usage();
    }
  }
  if (root.empty()) return Usage();

  std::vector<prisma::lint::SourceFile> files;
  std::string error;
  if (!prisma::lint::LoadTree(root, &files, &error)) {
    std::fprintf(stderr, "prisma_lint: %s\n", error.c_str());
    return 2;
  }

  std::vector<prisma::lint::AllowlistEntry> allowlist;
  if (!allowlist_path.empty()) {
    std::ifstream in(allowlist_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "prisma_lint: cannot read allowlist %s\n",
                   allowlist_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<std::string> parse_errors;
    allowlist = prisma::lint::ParseAllowlist(buffer.str(), &parse_errors);
    for (const std::string& e : parse_errors) {
      std::fprintf(stderr, "prisma_lint: %s: %s\n", allowlist_path.c_str(),
                   e.c_str());
    }
    if (!parse_errors.empty()) return 2;
  }

  prisma::lint::LintReport report =
      prisma::lint::ApplyAllowlist(prisma::lint::AnalyzeSources(files),
                                   allowlist);

  size_t allowlisted = 0;
  for (const prisma::lint::Diagnostic& d : report.diagnostics) {
    if (d.allowlisted) {
      ++allowlisted;
      if (verbose) {
        std::printf("%s\n    allowlisted: %s\n", d.Format().c_str(),
                    d.justification.c_str());
      }
      continue;
    }
    std::printf("%s\n    > %s\n", d.Format().c_str(), d.snippet.c_str());
  }
  for (const prisma::lint::AllowlistEntry& entry : report.unused_allowlist) {
    std::printf(
        "%s:%d: stale allowlist entry (matched nothing): %s | %s | %s\n",
        allowlist_path.c_str(), entry.source_line, entry.rule.c_str(),
        entry.path_suffix.c_str(), entry.needle.c_str());
  }
  std::printf(
      "prisma_lint: %zu file(s), %zu violation(s), %zu allowlisted, "
      "%zu stale allowlist entrie(s)\n",
      files.size(), report.violations, allowlisted,
      report.unused_allowlist.size());
  return report.clean() ? 0 : 1;
}
