// CLI driver: `prisma_lint --root src [--allowlist tools/prisma_lint/
// allowlist.txt] [--json report.json] [--smoke [--budget-ms N]]
// [--verbose]`. Exit 0 when the tree is clean (allowlisted findings are
// fine), 1 on violations or stale allowlist entries, 2 on usage/IO errors
// or a blown --smoke budget.

#include <chrono>  // Tool-side wall clock for --smoke; src/ is what D1 lints.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint.h"

#include <fstream>
#include <sstream>

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: prisma_lint --root <dir> [--allowlist <file>] "
               "[--json <file>] [--smoke] [--budget-ms <n>] [--verbose]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist_path;
  std::string json_path;
  bool verbose = false;
  bool smoke = false;
  long budget_ms = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--allowlist") == 0 && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc) {
      budget_ms = std::strtol(argv[++i], nullptr, 10);
      if (budget_ms <= 0) return Usage();
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return Usage();
    }
  }
  if (root.empty()) return Usage();

  std::vector<prisma::lint::SourceFile> files;
  std::string error;
  if (!prisma::lint::LoadTree(root, &files, &error)) {
    std::fprintf(stderr, "prisma_lint: %s\n", error.c_str());
    return 2;
  }

  std::vector<prisma::lint::AllowlistEntry> allowlist;
  if (!allowlist_path.empty()) {
    std::ifstream in(allowlist_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "prisma_lint: cannot read allowlist %s\n",
                   allowlist_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<std::string> parse_errors;
    allowlist = prisma::lint::ParseAllowlist(buffer.str(), &parse_errors);
    for (const std::string& e : parse_errors) {
      std::fprintf(stderr, "prisma_lint: %s: %s\n", allowlist_path.c_str(),
                   e.c_str());
    }
    if (!parse_errors.empty()) return 2;
  }

  const auto analysis_start = std::chrono::steady_clock::now();
  prisma::lint::LintReport report =
      prisma::lint::ApplyAllowlist(prisma::lint::AnalyzeSources(files),
                                   allowlist);
  const long elapsed_ms =
      static_cast<long>(std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - analysis_start)
                            .count());

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "prisma_lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << prisma::lint::ReportToJson(report, files.size());
  }

  size_t allowlisted = 0;
  for (const prisma::lint::Diagnostic& d : report.diagnostics) {
    if (d.allowlisted) {
      ++allowlisted;
      if (verbose) {
        std::printf("%s\n    allowlisted: %s\n", d.Format().c_str(),
                    d.justification.c_str());
      }
      continue;
    }
    std::printf("%s\n    > %s\n", d.Format().c_str(), d.snippet.c_str());
  }
  for (const prisma::lint::AllowlistEntry& entry : report.unused_allowlist) {
    std::printf(
        "%s:%d: stale allowlist entry (matched nothing): %s | %s | %s\n",
        allowlist_path.c_str(), entry.source_line, entry.rule.c_str(),
        entry.path_suffix.c_str(), entry.needle.c_str());
  }
  std::printf(
      "prisma_lint: %zu file(s), %zu violation(s), %zu allowlisted, "
      "%zu stale allowlist entrie(s), %ld ms\n",
      files.size(), report.violations, allowlisted,
      report.unused_allowlist.size(), elapsed_ms);
  if (smoke && elapsed_ms > budget_ms) {
    std::fprintf(stderr,
                 "prisma_lint: SMOKE FAILURE: analysis took %ld ms, budget "
                 "is %ld ms — the structural pass is becoming a build tax\n",
                 elapsed_ms, budget_ms);
    return 2;
  }
  return report.clean() ? 0 : 1;
}
