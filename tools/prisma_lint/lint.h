#ifndef PRISMA_TOOLS_PRISMA_LINT_LINT_H_
#define PRISMA_TOOLS_PRISMA_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

// prisma-lint: the project's invariant checker (see DESIGN.md "Invariants").
//
// The analyzer is deliberately freestanding (standard library only, no
// dependency on the prisma libraries) so it builds in seconds, cannot be
// broken by the code it checks, and can be reused by tests/lint_test.cc
// against a fixture corpus.
//
// Enforced rules:
//   D0  annotation hygiene: unknown "prisma-lint:" tags, unknown PRISMA_*
//       protocol markers and reason-less annotations are themselves
//       findings (a typo'd silence must not silently do nothing).
//   D1  no nondeterminism sources outside src/sim (wall clocks, rand,
//       random_device, threads, mutexes, pointer-keyed ordered containers).
//   D2  no iteration over unordered containers in files that (transitively)
//       touch the message/metrics/trace surface, unless the site carries a
//       "// prisma-lint: ordered" annotation.
//   D3  no pointers/references to another POOL-X process class outside that
//       class's own translation unit — cross-process state moves by Message.
//   D4  a "(void)" discard of a result must carry a trailing reason comment.
//   D5  mail-handler totality: every kMail* wire constant is consumed by
//       exactly the files that declare it via "// PRISMA_HANDLES(kinds)",
//       each dispatch chain is exhaustive over its declared set, and no
//       kind is left unclaimed tree-wide.
//   D6  RPC lifecycle: every registration into a PendingRpc container has a
//       declared "// PRISMA_SETTLES(map: success=Fn, exhaustion=Fn,
//       shed=Fn)" triad whose functions exist and visibly settle.
//   D7  state-machine conformance: lifecycle enums with a
//       "// PRISMA_STATE_MACHINE(Enum: from->to, ...)" table require a
//       "// PRISMA_TRANSITION(from, to, reason)" at every assignment site;
//       undeclared transitions AND unreachable declared transitions fail.
//   D8  metric-name registry: every literal GetCounter/LazyCounter name and
//       tracer span category/name must appear in obs/metric_names.h, and
//       every registry entry must be used.
//
// D5–D8 are cross-file structural rules implemented in protocol.cc over
// the extraction layer in structure.h; the annotation grammar is specified
// in DESIGN.md §9.
//
// Annotation grammar (silences one finding on the same or the next line):
//   // prisma-lint: <tag> - <reason>
// with <tag> one of: nondet (D1), ordered (D2), cross-process (D3),
// unused-status (D4). The reason is free text and is required (D0).

namespace prisma::lint {

/// One source file handed to the analyzer. `path` is relative to the scan
/// root and uses '/' separators (it is what diagnostics and include
/// resolution are keyed on).
struct SourceFile {
  std::string path;
  std::string content;
};

struct Diagnostic {
  std::string path;
  int line = 0;  // 1-based.
  std::string rule;  // "D0".."D8".
  std::string message;
  std::string snippet;  // Trimmed source line the finding points at.

  /// Set when an allowlist entry matched.
  bool allowlisted = false;
  std::string justification;

  /// "path:line: [rule] message".
  std::string Format() const;
};

/// One entry of the checked-in allowlist. Matching is content-based (rule +
/// path suffix + a substring of the flagged line) rather than line-number
/// based, so entries survive unrelated edits.
struct AllowlistEntry {
  std::string rule;
  std::string path_suffix;
  std::string needle;
  std::string justification;
  int source_line = 0;  // Line in the allowlist file (for error messages).
};

/// Parses the "rule | path-suffix | needle | justification" format.
/// Malformed lines (fewer than four fields, empty justification) are
/// reported in `errors` and skipped. '#' starts a comment.
std::vector<AllowlistEntry> ParseAllowlist(const std::string& content,
                                           std::vector<std::string>* errors);

/// Runs every rule over the file set (cross-file state — include closure,
/// process-class registry — is built internally). Diagnostics are sorted by
/// (path, line, rule).
std::vector<Diagnostic> AnalyzeSources(const std::vector<SourceFile>& files);

struct LintReport {
  std::vector<Diagnostic> diagnostics;  // Allowlisted ones included.
  /// Indexes into the allowlist of entries that matched nothing: a stale
  /// entry is itself a finding (the allowlist must shrink, not rot).
  std::vector<AllowlistEntry> unused_allowlist;
  size_t violations = 0;  // Diagnostics not covered by the allowlist.

  bool clean() const { return violations == 0 && unused_allowlist.empty(); }
};

/// Applies the allowlist to raw diagnostics and computes the verdict.
LintReport ApplyAllowlist(std::vector<Diagnostic> diagnostics,
                          const std::vector<AllowlistEntry>& allowlist);

/// Machine-readable report (uploaded as a CI artifact so diagnostics diff
/// cleanly PR-over-PR). Stable key order; diagnostics in their sorted
/// (path, line, rule) order.
std::string ReportToJson(const LintReport& report, size_t file_count);

/// Loads every *.h / *.cc / *.cpp under `root` (sorted, so diagnostics are
/// stable) and returns them with root-relative paths. Returns false when
/// `root` is not a directory.
bool LoadTree(const std::string& root, std::vector<SourceFile>* files,
              std::string* error);

}  // namespace prisma::lint

#endif  // PRISMA_TOOLS_PRISMA_LINT_LINT_H_
