#ifndef PRISMA_TOOLS_PRISMA_LINT_STRUCTURE_H_
#define PRISMA_TOOLS_PRISMA_LINT_STRUCTURE_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

// Text preparation and the lightweight structural pass shared by every
// lint rule (see lint.h for the rule catalogue).
//
// The analyzer stays freestanding: no compiler frontend, just a comment/
// literal-aware line model plus brace-balanced extraction of functions,
// enums and protocol annotations. That is deliberately cheap — the whole
// tree is re-extracted on every run (see the --smoke budget) — and
// deliberately dumb: anything the extractor cannot see (macro-generated
// dispatch, computed mail kinds) must not be used for protocol surfaces.

namespace prisma::lint {

struct SourceFile;  // lint.h

/// A "// prisma-lint: tag - reason" annotation occurrence.
struct TagAnnotation {
  std::string tag;
  bool has_reason = false;
  int line = 0;  // 1-based.
};

/// A file split into lines, with two parallel views of each line:
///   code — comments AND string/char literals blanked (rule matching
///          never fires inside either);
///   text — comments blanked but literals kept (for rules that must see
///          literal metric/span names).
/// Line counts of raw/code/text always agree.
struct PreparedFile {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> text;
  std::vector<std::string> comment;  // Comment text on each line, if any.
  std::vector<std::string> includes;  // Quoted include paths, in order.

  /// Every lowercase annotation, in file order (for hygiene checks).
  std::vector<TagAnnotation> annotations;

  /// tag -> lines it silences (the annotation's line and the next one).
  std::map<std::string, std::set<int>> silenced;

  bool IsSilenced(const std::string& tag, int line) const {
    auto it = silenced.find(tag);
    return it != silenced.end() && it->second.contains(line);
  }
};

PreparedFile Prepare(const SourceFile& source);

// ------------------------------------------------------ structural layer

/// One function definition's brace extent. Covers out-of-class
/// definitions ("bool GdhProcess::SettleRpc(...) {"), free functions and
/// class-inline methods; `name` is the unqualified last component.
/// Lambdas and control-flow blocks are not recorded (their braces only
/// contribute to extent balancing).
struct FunctionDef {
  std::string name;
  int first_line = 0;  // Line the body's opening brace is on.
  int last_line = 0;   // Line of the matching closing brace.
};

/// An enum / enum class declaration and its enumerators.
struct EnumDef {
  std::string name;
  std::vector<std::string> enumerators;
  int first_line = 0;  // Line of the `enum` keyword.
  int last_line = 0;   // Line of the closing brace.
};

/// An uppercase protocol annotation "// PRISMA_<TAG>(args)". The tag set
/// is validated by the hygiene rule D0 (see lint.h); args are kept raw
/// for the consuming rule to parse.
struct Marker {
  std::string tag;   // "HANDLES", "SETTLES", "STATE_MACHINE", ...
  std::string args;  // Text inside the parentheses, untrimmed.
  int line = 0;
};

struct FileStructure {
  std::vector<FunctionDef> functions;
  std::vector<EnumDef> enums;
  std::vector<Marker> markers;
  /// Wire-protocol mail-kind constants declared in this file
  /// ("inline constexpr char kMailX[] = ..."), with declaration lines.
  std::vector<std::pair<std::string, int>> mail_constants;

  /// Functions whose extent covers `line`, innermost last.
  const FunctionDef* EnclosingFunction(int line) const;
};

FileStructure ExtractStructure(const PreparedFile& file);

// ------------------------------------------------------------- utilities

std::string Trim(const std::string& s);
bool EndsWith(const std::string& s, const std::string& suffix);
bool StartsWith(const std::string& s, const std::string& prefix);
bool IsIdentChar(char c);
void SplitLines(const std::string& content, std::vector<std::string>* out);

/// Splits on top-level commas, trimming each piece; empty pieces dropped.
std::vector<std::string> SplitCommaList(const std::string& args);

/// "prisma::gdh::kMailWrite" -> "kMailWrite".
std::string UnqualifiedName(const std::string& qualified);

}  // namespace prisma::lint

#endif  // PRISMA_TOOLS_PRISMA_LINT_STRUCTURE_H_
