#include "protocol.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <string>

namespace prisma::lint {
namespace {

void Emit(std::vector<Diagnostic>* out, const PreparedFile& file, int line,
          const char* rule, std::string message) {
  Diagnostic d;
  d.path = file.path;
  d.line = line;
  d.rule = rule;
  d.message = std::move(message);
  if (line >= 1 && line <= static_cast<int>(file.raw.size())) {
    d.snippet = Trim(file.raw[line - 1]);
  }
  out->push_back(std::move(d));
}

/// (file index, line) of a marker/site, for cross-referencing.
struct Site {
  size_t file = 0;
  int line = 0;
};

// ------------------------------------------------------------------ rule D0
//
// Annotation hygiene: a typo'd tag or marker silences nothing today and
// silently disables the check it meant to configure — so unknown tags,
// unknown markers and reason-less annotations are themselves findings.

void CheckAnnotationHygiene(const std::vector<PreparedFile>& files,
                            const std::vector<FileStructure>& structures,
                            std::vector<Diagnostic>* out) {
  static const std::set<std::string> kKnownTags = {
      "nondet", "ordered", "cross-process", "unused-status"};
  // Uppercase macros that legitimately appear inside prose comments and
  // must not be mistaken for protocol annotations.
  static const std::set<std::string> kKnownMacros = {"CHECK", "DCHECK",
                                                     "WERROR", "SEED_REPRO"};
  static const std::set<std::string> kKnownMarkers = {
      "HANDLES", "SETTLES", "STATE_MACHINE", "TRANSITION", "STATE_SETTER"};
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const PreparedFile& file = files[fi];
    for (const TagAnnotation& a : file.annotations) {
      if (!kKnownTags.contains(a.tag)) {
        Emit(out, file, a.line, "D0",
             "unknown prisma-lint tag '" + a.tag +
                 "' — it silences nothing; valid tags: nondet, ordered, "
                 "cross-process, unused-status");
      } else if (!a.has_reason) {
        Emit(out, file, a.line, "D0",
             "prisma-lint annotation '" + a.tag +
                 "' without a reason — write '// prisma-lint: " + a.tag +
                 " - <why>'");
      }
    }
    for (const Marker& m : structures[fi].markers) {
      if (!kKnownMarkers.contains(m.tag) && !kKnownMacros.contains(m.tag)) {
        Emit(out, file, m.line, "D0",
             "unknown protocol annotation 'PRISMA_" + m.tag +
                 "' — it declares nothing; valid markers: PRISMA_HANDLES, "
                 "PRISMA_SETTLES, PRISMA_STATE_MACHINE, PRISMA_TRANSITION, "
                 "PRISMA_STATE_SETTER");
      }
    }
  }
}

// ------------------------------------------------------------------ rule D5
//
// Mail-handler totality. The mail-kind universe is every `inline
// constexpr char kMail*[]` constant in the tree (gdh/messages.h in the
// real tree). Each file that dispatches mail declares its consumed set
// with `// PRISMA_HANDLES(kMailA, kMailB)` markers; the dispatch if-chain
// (`mail.kind == kMailA` tests) must cover exactly that set, and every
// kind in the universe must be consumed by at least one process. A kind
// with no handler is dead protocol surface — or, worse, mail a default
// branch silently drops.

void CheckMailTotality(const std::vector<PreparedFile>& files,
                       const std::vector<FileStructure>& structures,
                       std::vector<Diagnostic>* out) {
  // Universe of declared mail kinds.
  std::map<std::string, Site> universe;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const auto& [name, line] : structures[fi].mail_constants) {
      auto [it, inserted] = universe.try_emplace(name, Site{fi, line});
      if (!inserted) {
        Emit(out, files[fi], line, "D5",
             "duplicate declaration of mail kind '" + name +
                 "' (first declared in " + files[it->second.file].path + ":" +
                 std::to_string(it->second.line) + ")");
      }
    }
  }

  static const std::regex kDispatch(
      "\\bmail\\s*\\.\\s*kind\\s*[!=]=\\s*([A-Za-z_][\\w:]*)");
  static const std::regex kMailToken("\\bkMail\\w+\\b");

  std::set<std::string> declared_anywhere;
  struct PerFile {
    std::map<std::string, int> handled;   // kind -> first dispatch line.
    std::map<std::string, int> declared;  // kind -> marker line.
  };
  std::vector<PerFile> per_file(files.size());

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const PreparedFile& file = files[fi];
    PerFile& pf = per_file[fi];
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& code = file.code[li];
      for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                          kDispatch);
           it != std::sregex_iterator(); ++it) {
        const std::string kind = UnqualifiedName((*it)[1].str());
        pf.handled.try_emplace(kind, static_cast<int>(li) + 1);
      }
      // Self-check: any kMail token that names no declared kind is a typo
      // (a misspelled constant would be a compile error, but annotations,
      // fixtures and dead branches can rot silently).
      for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                          kMailToken);
           it != std::sregex_iterator(); ++it) {
        const std::string token = it->str();
        if (!universe.contains(token)) {
          Emit(out, file, static_cast<int>(li) + 1, "D5",
               "reference to unknown mail kind '" + token +
                   "' — not declared as a kMail* constant anywhere");
        }
      }
    }
    for (const Marker& m : structures[fi].markers) {
      if (m.tag != "HANDLES") continue;
      for (const std::string& kind : SplitCommaList(m.args)) {
        if (!universe.contains(kind)) {
          Emit(out, file, m.line, "D5",
               "PRISMA_HANDLES names unknown mail kind '" + kind +
                   "' — not declared as a kMail* constant anywhere");
          continue;
        }
        pf.declared.try_emplace(kind, m.line);
        declared_anywhere.insert(kind);
      }
    }
  }

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const PreparedFile& file = files[fi];
    const PerFile& pf = per_file[fi];
    for (const auto& [kind, line] : pf.handled) {
      if (!universe.contains(kind)) continue;  // Already reported above.
      if (!pf.declared.contains(kind)) {
        Emit(out, file, line, "D5",
             "dispatches mail kind '" + kind +
                 "' without declaring it — add '// PRISMA_HANDLES(" + kind +
                 ")' to this file's handler contract");
      }
    }
    for (const auto& [kind, line] : pf.declared) {
      if (!pf.handled.contains(kind)) {
        Emit(out, file, line, "D5",
             "PRISMA_HANDLES declares '" + kind +
                 "' but no dispatch test ('mail.kind == " + kind +
                 "') exists here — the if-chain is not exhaustive over its "
                 "declared set (or the annotation is stale)");
      }
    }
  }

  for (const auto& [kind, site] : universe) {
    if (!declared_anywhere.contains(kind)) {
      Emit(out, files[site.file], site.line, "D5",
           "mail kind '" + kind +
               "' is consumed by no process — every kind must be claimed "
               "by a PRISMA_HANDLES declaration (a kind nobody dispatches "
               "is silently dropped by every default branch)");
    }
  }
}

// ------------------------------------------------------------------ rule D6
//
// RPC lifecycle. A container of pending RPCs (declared with a PendingRpc
// value type) buys an obligation: whoever inserts must also settle — on
// the success path (reply arrived), on retry-budget exhaustion, and on a
// shed/sweep (target known dead, statement finished). The triad is
// declared per container:
//   // PRISMA_SETTLES(rpcs_: success=SettleRpc, exhaustion=HandleRpcTimeout,
//   //                shed=TryFailover)
// and each named function must exist in the header/cc pair and visibly
// settle (erase/clear the container, or call another declared settler).
// Scope is the header/cc stem pair, like D2's declaration sharing.

struct SettlesDecl {
  std::map<std::string, std::string> roles;  // role -> function name.
  size_t file = 0;
  int line = 0;
};

void CheckRpcLifecycle(const std::vector<PreparedFile>& files,
                       const std::vector<FileStructure>& structures,
                       std::vector<Diagnostic>* out) {
  // Group file indices by stem (path minus extension).
  std::map<std::string, std::vector<size_t>> pairs;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    pairs[files[fi].path.substr(0, files[fi].path.rfind('.'))].push_back(fi);
  }

  static const std::regex kTrackedDecl("PendingRpc\\s*>{1,3}\\s*(\\w+)\\s*[;={(]");
  static const std::set<std::string> kRoles = {"success", "exhaustion",
                                               "shed"};

  for (const auto& [stem, members] : pairs) {
    // Tracked containers and SETTLES declarations across the pair.
    std::map<std::string, Site> tracked;
    std::map<std::string, SettlesDecl> settles;
    std::map<std::string, std::vector<Site>> registrations;

    for (size_t fi : members) {
      const PreparedFile& file = files[fi];
      std::string joined;
      std::vector<size_t> line_starts;
      for (const std::string& line : file.code) {
        line_starts.push_back(joined.size());
        joined += line;
        joined += '\n';
      }
      auto line_of = [&line_starts](size_t pos) {
        auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                   pos);
        return static_cast<int>(it - line_starts.begin());
      };
      for (auto it = std::sregex_iterator(joined.begin(), joined.end(),
                                          kTrackedDecl);
           it != std::sregex_iterator(); ++it) {
        tracked.try_emplace(
            (*it)[1].str(),
            Site{fi, line_of(static_cast<size_t>(it->position()))});
      }
      for (const Marker& m : structures[fi].markers) {
        if (m.tag != "SETTLES") continue;
        const size_t colon = m.args.find(':');
        if (colon == std::string::npos) {
          Emit(out, file, m.line, "D6",
               "malformed PRISMA_SETTLES — expected "
               "'(container: success=Fn, exhaustion=Fn, shed=Fn)'");
          continue;
        }
        SettlesDecl decl;
        decl.file = fi;
        decl.line = m.line;
        const std::string name = Trim(m.args.substr(0, colon));
        for (const std::string& piece :
             SplitCommaList(m.args.substr(colon + 1))) {
          const size_t eq = piece.find('=');
          if (eq == std::string::npos) {
            Emit(out, file, m.line, "D6",
                 "malformed PRISMA_SETTLES role '" + piece +
                     "' — expected 'role=Function'");
            continue;
          }
          const std::string role = Trim(piece.substr(0, eq));
          if (!kRoles.contains(role)) {
            Emit(out, file, m.line, "D6",
                 "unknown PRISMA_SETTLES role '" + role +
                     "' — valid roles: success, exhaustion, shed");
            continue;
          }
          decl.roles[role] = Trim(piece.substr(eq + 1));
        }
        settles[name] = std::move(decl);
      }
    }

    // Registration sites per tracked container.
    for (size_t fi : members) {
      const PreparedFile& file = files[fi];
      for (const auto& [name, decl_site] : tracked) {
        const std::regex reg(
            "(\\b" + name + "|\\(\\s*\\*\\s*" + name +
            "\\s*\\))\\s*(\\[[^\\]]*\\]\\s*=[^=]|(\\.|->)\\s*"
            "(insert|emplace|try_emplace)\\s*\\()");
        for (size_t li = 0; li < file.code.size(); ++li) {
          if (std::regex_search(file.code[li], reg)) {
            registrations[name].push_back(
                Site{fi, static_cast<int>(li) + 1});
          }
        }
      }
    }

    for (const auto& [name, sites] : registrations) {
      if (!settles.contains(name)) {
        for (const Site& s : sites) {
          Emit(out, files[s.file], s.line, "D6",
               "outstanding RPC registered in '" + name +
                   "' but the pair declares no settlement contract — add "
                   "'// PRISMA_SETTLES(" + name +
                   ": success=Fn, exhaustion=Fn, shed=Fn)'");
        }
      }
    }

    for (const auto& [name, decl] : settles) {
      const PreparedFile& dfile = files[decl.file];
      if (!tracked.contains(name)) {
        Emit(out, dfile, decl.line, "D6",
             "PRISMA_SETTLES names '" + name +
                 "' but no PendingRpc container of that name is declared "
                 "in this header/cc pair (stale annotation?)");
        continue;
      }
      if (!registrations.contains(name)) {
        Emit(out, dfile, decl.line, "D6",
             "PRISMA_SETTLES names '" + name +
                 "' but nothing in this header/cc pair registers into it "
                 "(stale annotation?)");
        continue;
      }
      for (const std::string& role : kRoles) {
        if (!decl.roles.contains(role)) {
          Emit(out, dfile, decl.line, "D6",
               "PRISMA_SETTLES(" + name + ") is missing the '" + role +
                   "' settlement path — orphaned RPCs hide exactly there");
        }
      }
      // Each role function must exist in the pair and visibly settle.
      for (const auto& [role, fn_name] : decl.roles) {
        const FunctionDef* fn = nullptr;
        size_t fn_file = 0;
        for (size_t fi : members) {
          for (const FunctionDef& candidate : structures[fi].functions) {
            if (candidate.name == fn_name) {
              fn = &candidate;
              fn_file = fi;
              break;
            }
          }
          if (fn != nullptr) break;
        }
        if (fn == nullptr) {
          Emit(out, dfile, decl.line, "D6",
               "PRISMA_SETTLES(" + name + ") " + role + " path '" + fn_name +
                   "' is not defined in this header/cc pair");
          continue;
        }
        // Direct settle: erase/clear on the container...
        const std::regex settle_re(
            "(\\b" + name + "|\\(\\s*\\*\\s*" + name +
            "\\s*\\))\\s*(\\.|->)\\s*(erase|clear)\\s*\\(");
        // ...or delegation to another declared settle path.
        std::string others;
        for (const auto& [other_role, other_fn] : decl.roles) {
          if (other_fn == fn_name) continue;
          others += (others.empty() ? "" : "|") + other_fn;
        }
        const std::regex delegate_re("\\b(" + (others.empty() ? "$^" : others) +
                                     ")\\s*\\(");
        bool settles_it = false;
        const PreparedFile& ffile = files[fn_file];
        for (int li = fn->first_line; li <= fn->last_line; ++li) {
          const std::string& code = ffile.code[static_cast<size_t>(li) - 1];
          if (std::regex_search(code, settle_re) ||
              std::regex_search(code, delegate_re)) {
            settles_it = true;
            break;
          }
        }
        if (!settles_it) {
          Emit(out, dfile, decl.line, "D6",
               "PRISMA_SETTLES(" + name + ") " + role + " path '" + fn_name +
                   "' never erases/clears the container nor delegates to "
                   "another declared settle path — the RPC leaks");
        }
      }
    }
  }
}

// ------------------------------------------------------------------ rule D7
//
// State-machine conformance. A lifecycle enum declares its legal
// transitions once:
//   // PRISMA_STATE_MACHINE(ReplicaState: init->kInSync, kInSync->kStale,
//   //                      kStale->kResyncing, ...)
// ("init" is the pseudo-state of member initializers). Every assignment
// of a literal enumerator — directly or through a setter tagged
// `// PRISMA_STATE_SETTER(Enum)` — must carry a site annotation
//   // PRISMA_TRANSITION(from, to, reason)
// on the same or the preceding line. Undeclared transitions, unannotated
// assignments, unreachable declared transitions and annotations matching
// no site are all findings.

struct TransitionKey {
  std::string from, to;
  bool operator<(const TransitionKey& o) const {
    return from != o.from ? from < o.from : to < o.to;
  }
};

struct MachineDecl {
  std::set<std::string> states;                 // Enumerators.
  std::map<TransitionKey, Site> table;          // Declared transitions.
  std::set<TransitionKey> used;                 // Observed at sites.
  std::vector<std::pair<std::string, Site>> setters;  // Name, decl site.
};

void CheckStateMachines(const std::vector<PreparedFile>& files,
                        const std::vector<FileStructure>& structures,
                        std::vector<Diagnostic>* out) {
  // Enum definitions tree-wide.
  struct EnumSite {
    const EnumDef* def;
    size_t file;
  };
  std::map<std::string, EnumSite> enums;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const EnumDef& def : structures[fi].enums) {
      enums.try_emplace(def.name, EnumSite{&def, fi});
    }
  }

  std::map<std::string, MachineDecl> machines;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const PreparedFile& file = files[fi];
    for (const Marker& m : structures[fi].markers) {
      if (m.tag == "STATE_MACHINE") {
        const size_t colon = m.args.find(':');
        if (colon == std::string::npos) {
          Emit(out, file, m.line, "D7",
               "malformed PRISMA_STATE_MACHINE — expected "
               "'(Enum: from->to, from->to, ...)'");
          continue;
        }
        const std::string name = Trim(m.args.substr(0, colon));
        auto enum_it = enums.find(name);
        if (enum_it == enums.end()) {
          Emit(out, file, m.line, "D7",
               "PRISMA_STATE_MACHINE names unknown enum '" + name + "'");
          continue;
        }
        MachineDecl& machine = machines[name];
        machine.states.insert(enum_it->second.def->enumerators.begin(),
                              enum_it->second.def->enumerators.end());
        for (const std::string& entry :
             SplitCommaList(m.args.substr(colon + 1))) {
          const size_t arrow = entry.find("->");
          if (arrow == std::string::npos) {
            Emit(out, file, m.line, "D7",
                 "malformed transition '" + entry + "' — expected from->to");
            continue;
          }
          TransitionKey key{Trim(entry.substr(0, arrow)),
                            Trim(entry.substr(arrow + 2))};
          for (const std::string& state : {key.from, key.to}) {
            if (state != "init" && !machine.states.contains(state)) {
              Emit(out, file, m.line, "D7",
                   "transition names unknown state '" + state + "' of " +
                       name);
            }
          }
          machine.table.try_emplace(key, Site{fi, m.line});
        }
      } else if (m.tag == "STATE_SETTER") {
        const std::string name = Trim(m.args);
        if (!enums.contains(name)) {
          Emit(out, file, m.line, "D7",
               "PRISMA_STATE_SETTER names unknown enum '" + name + "'");
          continue;
        }
        // The setter is the function declared on the marker's line or the
        // next one.
        static const std::regex kFn("([A-Za-z_]\\w*)\\s*\\(");
        std::string fn;
        int fn_line = 0;
        for (int li = m.line; li <= m.line + 1; ++li) {
          if (li < 1 || li > static_cast<int>(file.code.size())) continue;
          std::smatch fm;
          const std::string& code = file.code[static_cast<size_t>(li) - 1];
          if (std::regex_search(code, fm, kFn)) {
            fn = fm[1].str();
            fn_line = li;
            break;
          }
        }
        if (fn.empty()) {
          Emit(out, file, m.line, "D7",
               "PRISMA_STATE_SETTER is not attached to a function "
               "declaration");
          continue;
        }
        machines[name].setters.emplace_back(fn, Site{fi, fn_line});
      }
    }
  }

  // Transition site detection + conformance.
  std::set<std::pair<size_t, int>> consumed_markers;
  for (auto& [enum_name, machine] : machines) {
    auto enum_it = enums.find(enum_name);
    if (enum_it == enums.end() || machine.table.empty()) continue;
    const EnumDef* def = enum_it->second.def;
    const size_t enum_file = enum_it->second.file;
    const std::regex literal("\\b" + enum_name + "\\s*::\\s*(\\w+)");

    for (size_t fi = 0; fi < files.size(); ++fi) {
      const PreparedFile& file = files[fi];
      for (size_t li = 0; li < file.code.size(); ++li) {
        const int line = static_cast<int>(li) + 1;
        // Inside the enum's own declaration.
        if (fi == enum_file && line >= def->first_line &&
            line <= def->last_line) {
          continue;
        }
        const std::string& code = file.code[li];
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            literal);
             it != std::sregex_iterator(); ++it) {
          const std::string state = (*it)[1].str();
          if (!machine.states.contains(state)) continue;
          // Classify the use by what precedes it.
          std::string prefix =
              code.substr(0, static_cast<size_t>(it->position()));
          while (!prefix.empty() &&
                 std::isspace(static_cast<unsigned char>(prefix.back()))) {
            prefix.pop_back();
          }
          bool is_assignment = false;
          if (!prefix.empty() && prefix.back() == '=') {
            const char before =
                prefix.size() >= 2 ? prefix[prefix.size() - 2] : '\0';
            is_assignment = before != '=' && before != '!' &&
                            before != '<' && before != '>';
          }
          bool is_setter_call = false;
          if (!is_assignment) {
            for (const auto& [setter, decl_site] : machine.setters) {
              if (decl_site.file == fi && decl_site.line == line) {
                continue;  // The setter's own declaration.
              }
              const size_t call = code.find(setter + "(");
              const size_t call_sp = code.find(setter + " (");
              const size_t at = std::min(call, call_sp);
              if (at != std::string::npos &&
                  at < static_cast<size_t>(it->position())) {
                is_setter_call = true;
                break;
              }
            }
          }
          if (!is_assignment && !is_setter_call) continue;

          // Find the site's PRISMA_TRANSITION on this or the previous line.
          const Marker* site_marker = nullptr;
          for (const Marker& m : structures[fi].markers) {
            if (m.tag != "TRANSITION") continue;
            if (m.line == line || m.line == line - 1) {
              site_marker = &m;
              break;
            }
          }
          if (site_marker == nullptr) {
            Emit(out, file, line, "D7",
                 enum_name + " set to " + state +
                     " without a declared transition — annotate the site "
                     "with '// PRISMA_TRANSITION(from, " + state +
                     ", reason)'");
            continue;
          }
          consumed_markers.insert({fi, site_marker->line});
          std::vector<std::string> parts = SplitCommaList(site_marker->args);
          if (parts.size() < 3) {
            Emit(out, file, site_marker->line, "D7",
                 "malformed PRISMA_TRANSITION — expected (from, to, reason)");
            continue;
          }
          const std::string from = parts[0];
          const std::string to = parts[1];
          if (to != state) {
            Emit(out, file, site_marker->line, "D7",
                 "PRISMA_TRANSITION declares target '" + to +
                     "' but the site assigns " + enum_name + "::" + state);
            continue;
          }
          for (const std::string& s : {from, to}) {
            if (s != "init" && !machine.states.contains(s)) {
              Emit(out, file, site_marker->line, "D7",
                   "PRISMA_TRANSITION names unknown state '" + s + "' of " +
                       enum_name);
            }
          }
          TransitionKey key{from, to};
          if (!machine.table.contains(key)) {
            Emit(out, file, line, "D7",
                 "undeclared transition " + from + " -> " + to + " of " +
                     enum_name +
                     " — add it to the PRISMA_STATE_MACHINE table or fix "
                     "the site");
            continue;
          }
          machine.used.insert(key);
        }
      }
    }

    for (const auto& [key, site] : machine.table) {
      if (!machine.used.contains(key)) {
        Emit(out, files[site.file], site.line, "D7",
             "declared transition " + key.from + " -> " + key.to + " of " +
                 enum_name +
                 " is exercised by no annotated site (dead table entry, or "
                 "an assignment the structural pass cannot see)");
      }
    }
  }

  // TRANSITION markers that attached to no detected site silence nothing.
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const Marker& m : structures[fi].markers) {
      if (m.tag != "TRANSITION") continue;
      if (!consumed_markers.contains({fi, m.line})) {
        Emit(out, files[fi], m.line, "D7",
             "PRISMA_TRANSITION matches no state assignment on this or the "
             "next line (stale annotation, or a site shape the structural "
             "pass cannot see)");
      }
    }
  }
}

// ------------------------------------------------------------------ rule D8
//
// Metric-name registry. Every literal counter name (GetCounter /
// LazyCounter) and tracer span/instant category+name must appear in the
// obs/metric_names.h registry, and every registry entry must be used —
// so a typo'd name fails the build instead of silently starting a new
// series, and deleted metrics cannot leave ghost entries behind.

struct RegistryEntry {
  int line = 0;
  bool used = false;
};

void ParseRegistrySection(const PreparedFile& file, const char* begin_marker,
                          const char* end_marker,
                          std::map<std::string, RegistryEntry>* entries,
                          std::vector<Diagnostic>* out) {
  static const std::regex kEntry("\"([^\"]*)\"");
  bool in_section = false;
  for (size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& raw = file.raw[li];
    if (raw.find(begin_marker) != std::string::npos) {
      in_section = true;
      continue;
    }
    if (raw.find(end_marker) != std::string::npos) {
      in_section = false;
      continue;
    }
    if (!in_section) continue;
    std::smatch m;
    if (std::regex_search(raw, m, kEntry)) {
      auto [it, inserted] = entries->try_emplace(
          m[1].str(), RegistryEntry{static_cast<int>(li) + 1, false});
      if (!inserted) {
        Emit(out, file, static_cast<int>(li) + 1, "D8",
             "duplicate registry entry '" + m[1].str() + "' (first at line " +
                 std::to_string(it->second.line) + ")");
      }
    }
  }
}

void CheckMetricRegistry(const std::vector<PreparedFile>& files,
                         std::vector<Diagnostic>* out) {
  const PreparedFile* registry = nullptr;
  for (const PreparedFile& file : files) {
    if (EndsWith(file.path, "obs/metric_names.h")) {
      registry = &file;
      break;
    }
  }
  std::map<std::string, RegistryEntry> metrics;
  std::map<std::string, RegistryEntry> spans;
  if (registry != nullptr) {
    ParseRegistrySection(*registry, "PRISMA_METRICS_BEGIN",
                         "PRISMA_METRICS_END", &metrics, out);
    ParseRegistrySection(*registry, "PRISMA_SPANS_BEGIN", "PRISMA_SPANS_END",
                         &spans, out);
  }

  // Literal name sites, matched over the literal-preserving text view so
  // multi-line calls resolve (the name is often on the line after the
  // opening parenthesis).
  static const std::regex kCounter(
      "\\b(?:GetCounter\\s*\\(|LazyCounter\\s*\\([^\")]*,)\\s*\"([^\"]+)\"");
  static const std::regex kSpan(
      "\\b(?:Span|Instant)\\s*\\(\\s*\"([^\"]+)\"\\s*,\\s*(\"([^\"]+)\")?");

  bool any_site = false;
  bool missing_reported = false;
  for (const PreparedFile& file : files) {
    if (&file == registry) continue;
    std::string joined;
    std::vector<size_t> line_starts;
    for (const std::string& line : file.text) {
      line_starts.push_back(joined.size());
      joined += line;
      joined += '\n';
    }
    auto line_of = [&line_starts](size_t pos) {
      auto it = std::upper_bound(line_starts.begin(), line_starts.end(), pos);
      return static_cast<int>(it - line_starts.begin());
    };
    auto check = [&](const std::string& name, size_t pos,
                     std::map<std::string, RegistryEntry>* reg,
                     const char* what) {
      any_site = true;
      if (registry == nullptr) {
        if (!missing_reported) {
          Emit(out, file, line_of(pos), "D8",
               std::string(what) + " '" + name +
                   "' used but the tree has no obs/metric_names.h registry");
          missing_reported = true;
        }
        return;
      }
      auto it = reg->find(name);
      if (it == reg->end()) {
        Emit(out, file, line_of(pos), "D8",
             std::string(what) + " '" + name +
                 "' is not in the obs/metric_names.h registry — typo, or a "
                 "new series that must be registered");
      } else {
        it->second.used = true;
      }
    };
    for (auto it = std::sregex_iterator(joined.begin(), joined.end(),
                                        kCounter);
         it != std::sregex_iterator(); ++it) {
      check((*it)[1].str(), static_cast<size_t>(it->position()), &metrics,
            "metric name");
    }
    for (auto it = std::sregex_iterator(joined.begin(), joined.end(), kSpan);
         it != std::sregex_iterator(); ++it) {
      check((*it)[1].str(), static_cast<size_t>(it->position()), &spans,
            "span category");
      if ((*it)[3].matched) {
        check((*it)[3].str(), static_cast<size_t>(it->position()), &spans,
              "span name");
      }
    }
  }
  (void)any_site;

  if (registry != nullptr) {
    for (const auto& [name, entry] : metrics) {
      if (!entry.used) {
        Emit(out, *registry, entry.line, "D8",
             "dead registry entry: metric '" + name +
                 "' is emitted nowhere — delete it or restore the series");
      }
    }
    for (const auto& [name, entry] : spans) {
      if (!entry.used) {
        Emit(out, *registry, entry.line, "D8",
             "dead registry entry: span '" + name +
                 "' is emitted nowhere — delete it or restore the span");
      }
    }
  }
}

}  // namespace

void CheckProtocolRules(const std::vector<PreparedFile>& files,
                        const std::vector<FileStructure>& structures,
                        std::vector<Diagnostic>* out) {
  CheckAnnotationHygiene(files, structures, out);
  CheckMailTotality(files, structures, out);
  CheckRpcLifecycle(files, structures, out);
  CheckStateMachines(files, structures, out);
  CheckMetricRegistry(files, out);
}

}  // namespace prisma::lint
