#include "structure.h"

#include <cctype>
#include <regex>

#include "lint.h"

namespace prisma::lint {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

void SplitLines(const std::string& content, std::vector<std::string>* out) {
  std::string line;
  for (char c : content) {
    if (c == '\n') {
      out->push_back(line);
      line.clear();
    } else if (c != '\r') {
      line.push_back(c);
    }
  }
  if (!line.empty()) out->push_back(line);
}

std::vector<std::string> SplitCommaList(const std::string& args) {
  std::vector<std::string> out;
  std::string piece;
  int depth = 0;
  char prev = '\0';
  for (char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    // "->" is an arrow (transition-table syntax), not a closing bracket.
    if (c == ')' || (c == '>' && prev != '-') || c == ']') --depth;
    prev = c;
    if (c == ',' && depth == 0) {
      if (std::string t = Trim(piece); !t.empty()) out.push_back(t);
      piece.clear();
    } else {
      piece.push_back(c);
    }
  }
  if (std::string t = Trim(piece); !t.empty()) out.push_back(t);
  return out;
}

std::string UnqualifiedName(const std::string& qualified) {
  size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

namespace {

/// Blanks comments and literals, collecting comment text per line and the
/// literal-preserving `text` view. Handles //, /* */, "..." and '...'
/// with escapes; raw strings are not used in this codebase and are
/// treated as plain strings.
void StripCommentsAndLiterals(PreparedFile* file) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  file->code.resize(file->raw.size());
  file->text.resize(file->raw.size());
  file->comment.resize(file->raw.size());
  for (size_t li = 0; li < file->raw.size(); ++li) {
    const std::string& in = file->raw[li];
    std::string& out = file->code[li];
    std::string& text = file->text[li];
    std::string& comment = file->comment[li];
    out.reserve(in.size());
    text.reserve(in.size());
    if (state == State::kLineComment) state = State::kCode;
    for (size_t i = 0; i < in.size(); ++i) {
      char c = in[i];
      char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment += in.substr(i);
            i = in.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            out += "  ";
            text += "  ";
            ++i;
          } else if (c == '"') {
            state = State::kString;
            out += ' ';
            text += c;
          } else if (c == '\'') {
            state = State::kChar;
            out += ' ';
            text += c;
          } else {
            out += c;
            text += c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            out += "  ";
            text += "  ";
            ++i;
          } else {
            out += ' ';
            text += ' ';
          }
          break;
        case State::kString:
          if (c == '\\') {
            out += "  ";
            text += c;
            if (i + 1 < in.size()) text += in[i + 1];
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            out += ' ';
            text += c;
          } else {
            out += ' ';
            text += c;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            out += "  ";
            text += c;
            if (i + 1 < in.size()) text += in[i + 1];
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            out += ' ';
            text += c;
          } else {
            out += ' ';
            text += c;
          }
          break;
        case State::kLineComment:
          break;  // Unreachable: line comments consume the rest of the line.
      }
    }
  }
}

/// Parses "// prisma-lint: tag - reason" annotations and quoted includes.
void ParseAnnotationsAndIncludes(PreparedFile* file) {
  static const std::regex kInclude("^\\s*#\\s*include\\s*\"([^\"]+)\"");
  static const std::regex kAnnotation(
      "//\\s*prisma-lint:\\s*([a-z-]+)(\\s*-\\s*\\S.*)?");
  for (size_t li = 0; li < file->raw.size(); ++li) {
    std::smatch m;
    // Includes are read from the raw line: the quoted path is a string
    // literal, which the code view blanks out.
    if (std::regex_search(file->raw[li], m, kInclude)) {
      file->includes.push_back(m[1].str());
    }
    if (!file->comment[li].empty() &&
        std::regex_search(file->comment[li], m, kAnnotation)) {
      const std::string tag = m[1].str();
      const int line = static_cast<int>(li) + 1;
      file->annotations.push_back({tag, m[2].matched, line});
      file->silenced[tag].insert(line);
      file->silenced[tag].insert(line + 1);
    }
  }
}

bool IsControlKeyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",   "while",    "switch", "catch", "return",
      "sizeof", "else",  "do",       "new",    "delete"};
  return kKeywords.contains(name);
}

/// Scans backwards from `pos` (exclusive) over whitespace and returns the
/// identifier ending there, or "" when the preceding token is not one.
std::string IdentifierBefore(const std::string& s, size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(s[pos - 1])) != 0) {
    --pos;
  }
  size_t end = pos;
  while (pos > 0 && IsIdentChar(s[pos - 1])) --pos;
  return s.substr(pos, end - pos);
}

/// Function extraction: walks the code view tracking brace depth. When a
/// '{' opens, the statement header accumulated since the last ';', '{' or
/// '}' is inspected: a parenthesized group whose preceding token is an
/// identifier (and not a control keyword) makes the brace a function body
/// whose extent runs to the matching '}'.
void ExtractFunctions(const PreparedFile& file, FileStructure* out) {
  struct Open {
    bool is_function = false;
    size_t index = 0;  // Into out->functions when is_function.
  };
  std::vector<Open> stack;
  std::string header;
  int header_line = 1;

  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == ';') {
        header.clear();
        header_line = static_cast<int>(li) + 1;
        continue;
      }
      if (c == '{') {
        Open open;
        // Find the parenthesized group closest to the brace. Anything
        // between its ')' and the '{' (const, override, noexcept, ctor
        // initializer lists) is tolerated as long as no ';' intervened.
        size_t close = header.rfind(')');
        if (close != std::string::npos) {
          // Balance backwards to this group's '('.
          int depth = 0;
          size_t openp = std::string::npos;
          for (size_t j = close + 1; j-- > 0;) {
            if (header[j] == ')') ++depth;
            if (header[j] == '(') {
              if (--depth == 0) {
                openp = j;
                break;
              }
            }
          }
          if (openp != std::string::npos) {
            // Constructor initializer lists repeat "name(...)" groups;
            // walk left past ": member(init), member(init)" chains so the
            // parameter list (the first group of the statement) names the
            // function.
            size_t group_open = openp;
            while (true) {
              std::string name = IdentifierBefore(header, group_open);
              if (name.empty()) break;
              size_t before_name = group_open;
              while (before_name > 0 &&
                     std::isspace(static_cast<unsigned char>(
                         header[before_name - 1])) != 0) {
                --before_name;
              }
              before_name -= name.size();
              // Skip whitespace before the identifier.
              size_t k = before_name;
              while (k > 0 && std::isspace(static_cast<unsigned char>(
                                  header[k - 1])) != 0) {
                --k;
              }
              if (k >= 1 && (header[k - 1] == ',' || header[k - 1] == ':')) {
                // Part of an initializer chain: find the previous group.
                int d = 0;
                size_t prev = std::string::npos;
                for (size_t j = k; j-- > 0;) {
                  if (header[j] == ')') ++d;
                  if (header[j] == '(') {
                    if (d == 0) break;
                    if (--d == 0) {
                      prev = j;
                      break;
                    }
                  }
                }
                if (prev == std::string::npos) break;
                group_open = prev;
                continue;
              }
              break;
            }
            std::string name = IdentifierBefore(header, group_open);
            if (!name.empty() && !IsControlKeyword(name) &&
                std::isdigit(static_cast<unsigned char>(name[0])) == 0) {
              open.is_function = true;
              open.index = out->functions.size();
              FunctionDef fn;
              fn.name = name;
              fn.first_line = static_cast<int>(li) + 1;
              out->functions.push_back(fn);
            }
          }
        }
        stack.push_back(open);
        header.clear();
        header_line = static_cast<int>(li) + 1;
        continue;
      }
      if (c == '}') {
        if (!stack.empty()) {
          if (stack.back().is_function) {
            out->functions[stack.back().index].last_line =
                static_cast<int>(li) + 1;
          }
          stack.pop_back();
        }
        header.clear();
        header_line = static_cast<int>(li) + 1;
        continue;
      }
      header.push_back(c);
    }
    header.push_back(' ');  // Line break separates tokens.
  }
  (void)header_line;  // Kept for symmetry; extents key off brace lines.
}

void ExtractEnums(const PreparedFile& file, FileStructure* out) {
  static const std::regex kEnum(
      "\\benum\\s+(?:class\\s+|struct\\s+)?([A-Za-z_]\\w*)");
  for (size_t li = 0; li < file.code.size(); ++li) {
    std::smatch m;
    if (!std::regex_search(file.code[li], m, kEnum)) continue;
    EnumDef def;
    def.name = m[1].str();
    def.first_line = static_cast<int>(li) + 1;
    // Collect the brace body, possibly spanning lines.
    std::string body;
    bool in_body = false;
    bool done = false;
    size_t start =
        static_cast<size_t>(m.position()) + static_cast<size_t>(m.length());
    for (size_t lj = li; lj < file.code.size() && !done; ++lj) {
      const std::string& line = file.code[lj];
      for (size_t i = (lj == li ? start : 0); i < line.size(); ++i) {
        const char c = line[i];
        if (!in_body) {
          if (c == '{') {
            in_body = true;
          } else if (c == ';') {
            done = true;  // Forward declaration / opaque enum.
            break;
          }
          continue;
        }
        if (c == '}') {
          def.last_line = static_cast<int>(lj) + 1;
          done = true;
          break;
        }
        body.push_back(c);
      }
      body.push_back('\n');
    }
    if (def.last_line == 0) continue;  // Unterminated or forward decl.
    for (const std::string& piece : SplitCommaList(body)) {
      // Each enumerator segment is "Name" or "Name = value".
      size_t e = 0;
      while (e < piece.size() && IsIdentChar(piece[e])) ++e;
      if (e > 0) def.enumerators.push_back(piece.substr(0, e));
    }
    if (!def.enumerators.empty()) out->enums.push_back(def);
  }
}

void ExtractMarkers(const PreparedFile& file, FileStructure* out) {
  // The argument list may wrap onto following comment lines ("// ..."
  // continuations); it ends at the first ')'.
  static const std::regex kOpen("PRISMA_([A-Z_]+)\\s*\\(");
  for (size_t li = 0; li < file.comment.size(); ++li) {
    const std::string& comment = file.comment[li];
    if (comment.empty()) continue;
    for (auto it = std::sregex_iterator(comment.begin(), comment.end(),
                                        kOpen);
         it != std::sregex_iterator(); ++it) {
      Marker marker;
      marker.tag = (*it)[1].str();
      marker.line = static_cast<int>(li) + 1;
      std::string rest = comment.substr(
          static_cast<size_t>(it->position()) + it->length());
      size_t continuation = li + 1;
      while (rest.find(')') == std::string::npos &&
             continuation < file.comment.size() &&
             !file.comment[continuation].empty() &&
             continuation - li < 8) {
        // Strip the continuation line's "//" prefix before joining.
        std::string next = Trim(file.comment[continuation]);
        while (StartsWith(next, "/")) next.erase(0, 1);
        rest += ' ';
        rest += Trim(next);
        ++continuation;
      }
      marker.args = rest.substr(0, rest.find(')'));
      out->markers.push_back(std::move(marker));
    }
  }
}

void ExtractMailConstants(const PreparedFile& file, FileStructure* out) {
  static const std::regex kConstant(
      "\\bconstexpr\\s+char\\s+(kMail\\w+)\\s*\\[\\]");
  for (size_t li = 0; li < file.code.size(); ++li) {
    std::smatch m;
    if (std::regex_search(file.code[li], m, kConstant)) {
      out->mail_constants.emplace_back(m[1].str(),
                                       static_cast<int>(li) + 1);
    }
  }
}

}  // namespace

PreparedFile Prepare(const SourceFile& source) {
  PreparedFile file;
  file.path = source.path;
  SplitLines(source.content, &file.raw);
  StripCommentsAndLiterals(&file);
  ParseAnnotationsAndIncludes(&file);
  return file;
}

const FunctionDef* FileStructure::EnclosingFunction(int line) const {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& fn : functions) {
    if (fn.first_line <= line && line <= fn.last_line) {
      // Innermost wins: later-starting extent is more specific.
      if (best == nullptr || fn.first_line >= best->first_line) best = &fn;
    }
  }
  return best;
}

FileStructure ExtractStructure(const PreparedFile& file) {
  FileStructure out;
  ExtractFunctions(file, &out);
  ExtractEnums(file, &out);
  ExtractMarkers(file, &out);
  ExtractMailConstants(file, &out);
  return out;
}

}  // namespace prisma::lint
