#ifndef PRISMA_TOOLS_PRISMA_LINT_PROTOCOL_H_
#define PRISMA_TOOLS_PRISMA_LINT_PROTOCOL_H_

#include <vector>

#include "lint.h"
#include "structure.h"

// Protocol-aware cross-file rules (see lint.h for the catalogue):
//   D0  annotation hygiene (unknown tags / markers are errors, not
//       silent no-ops).
//   D5  mail-handler totality over the kMail* wire protocol.
//   D6  RPC lifecycle: every outstanding-RPC registration has declared
//       settlement paths for success, exhaustion and shed.
//   D7  state-machine conformance against declared transition tables.
//   D8  metric/span names against the obs/metric_names.h registry.

namespace prisma::lint {

void CheckProtocolRules(const std::vector<PreparedFile>& files,
                        const std::vector<FileStructure>& structures,
                        std::vector<Diagnostic>* out);

}  // namespace prisma::lint

#endif  // PRISMA_TOOLS_PRISMA_LINT_PROTOCOL_H_
