#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <regex>
#include <sstream>

#include "protocol.h"
#include "structure.h"

namespace prisma::lint {
namespace {

// -------------------------------------------------------------- diagnostics

void Emit(std::vector<Diagnostic>* out, const PreparedFile& file, int line,
          const char* rule, std::string message) {
  Diagnostic d;
  d.path = file.path;
  d.line = line;
  d.rule = rule;
  d.message = std::move(message);
  if (line >= 1 && line <= static_cast<int>(file.raw.size())) {
    d.snippet = Trim(file.raw[line - 1]);
  }
  out->push_back(std::move(d));
}

// ------------------------------------------------------------------ rule D1

struct TokenRule {
  std::regex pattern;
  const char* what;
};

/// Files whose whole purpose is to *own* the simulation's determinism: the
/// virtual clock and the seeded PRNG. Everything else must consume time and
/// randomness through them.
bool ExemptFromD1(const std::string& path) {
  return StartsWith(path, "sim/") || path == "common/rng.h";
}

void CheckNondeterminism(const PreparedFile& file,
                         std::vector<Diagnostic>* out) {
  if (ExemptFromD1(file.path)) return;
  // Word-ish boundaries are expressed with a leading character class
  // because std::regex has no lookbehind. `:` stays allowed before
  // time/clock so std::time/std::clock are caught, while `.`/`->`/`_`
  // prefixed member calls (response_time(), t.time()) are not.
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> rules;
    auto add = [&rules](const char* re, const char* what) {
      rules.push_back({std::regex(re), what});
    };
    add("std\\s*::\\s*chrono", "wall-clock time via std::chrono");
    add("\\b(system_clock|steady_clock|high_resolution_clock)\\b",
        "wall-clock time");
    add("\\brandom_device\\b", "hardware entropy (std::random_device)");
    add("std\\s*::\\s*(thread|jthread|async|mutex|shared_mutex|"
        "recursive_mutex|condition_variable)\\b",
        "threading primitive (the simulation is single-threaded)");
    add("\\bthis_thread\\b",
        "threading primitive (the simulation is single-threaded)");
    add("(^|[^A-Za-z0-9_:.>])(rand|srand|rand_r)\\s*\\(",
        "C PRNG (use prisma::Rng with an explicit seed)");
    add("(^|[^A-Za-z0-9_.>])(time|clock|gettimeofday|clock_gettime)\\s*\\(",
        "wall-clock time");
    add("std\\s*::\\s*(map|set|multimap|multiset)\\s*<[^<>,]*\\*[^<>]*[,>]",
        "ordered container keyed by pointer (address-dependent order)");
    return rules;
  }();
  for (size_t li = 0; li < file.code.size(); ++li) {
    const int line = static_cast<int>(li) + 1;
    for (const TokenRule& rule : kRules) {
      if (!std::regex_search(file.code[li], rule.pattern)) continue;
      if (file.IsSilenced("nondet", line)) continue;
      Emit(out, file, line, "D1",
           std::string(rule.what) +
               " outside src/sim — nondeterminism breaks same-seed replay");
      break;  // One D1 diagnostic per line is enough.
    }
  }
}

// ------------------------------------------------------------------ rule D2

/// Headers whose inclusion makes iteration order externally visible:
/// anything reachable from them can order outgoing messages, metric
/// registrations or trace events.
const char* const kObservableSurfaces[] = {
    "pool/runtime.h", "net/network.h",  "net/traffic.h",
    "obs/metrics.h",  "obs/trace.h",    "gdh/messages.h",
    "exec/exchange.h", "gdh/exchange_process.h",
    "exec/fixpoint.h", "gdh/fixpoint_process.h",
    // The columnar batch and its wire encoding (DESIGN.md §12): frame
    // bytes are message payloads, so the order anything is appended to a
    // batch or frame is externally visible timing-wise and byte-wise.
    "common/column_batch.h", "common/serialize.h",
    // Replication (DESIGN.md §13): replica names and states feed failover
    // decisions, resync scheduling, metric labels and Unavailable
    // messages, so iteration order near them is replay-visible.
    "gdh/replication.h",
};

/// Collects names declared with an unordered container type, e.g.
///   std::unordered_map<K, V> name_;   unordered_set<T> seen;
/// The declaration may span lines; template arguments are skipped by
/// balancing angle brackets.
void CollectUnorderedNames(const PreparedFile& file,
                           std::set<std::string>* names) {
  std::string joined;
  for (const std::string& line : file.code) {
    joined += line;
    joined += '\n';
  }
  static const std::regex kDecl("unordered_(map|set|multimap|multiset)\\b");
  for (auto it = std::sregex_iterator(joined.begin(), joined.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    size_t pos = static_cast<size_t>(it->position()) + it->length();
    while (pos < joined.size() && std::isspace(static_cast<unsigned char>(
                                      joined[pos]))) {
      ++pos;
    }
    if (pos >= joined.size() || joined[pos] != '<') continue;
    int depth = 0;
    while (pos < joined.size()) {
      if (joined[pos] == '<') ++depth;
      if (joined[pos] == '>') {
        --depth;
        if (depth == 0) {
          ++pos;
          break;
        }
      }
      ++pos;
    }
    while (pos < joined.size() &&
           std::isspace(static_cast<unsigned char>(joined[pos]))) {
      ++pos;
    }
    std::string name;
    while (pos < joined.size() && IsIdentChar(joined[pos])) {
      name += joined[pos++];
    }
    if (name.empty()) continue;
    while (pos < joined.size() &&
           std::isspace(static_cast<unsigned char>(joined[pos]))) {
      ++pos;
    }
    // Require a declarator context so casts/returns are not recorded.
    if (pos < joined.size() && (joined[pos] == ';' || joined[pos] == '=' ||
                                joined[pos] == '{' || joined[pos] == ',' ||
                                joined[pos] == '(')) {
      names->insert(name);
    }
  }
}

void CheckUnorderedIteration(const PreparedFile& file,
                             const std::set<std::string>& unordered_names,
                             std::vector<Diagnostic>* out) {
  if (unordered_names.empty()) return;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& code = file.code[li];
    if (code.find("for") == std::string::npos &&
        code.find(".begin()") == std::string::npos) {
      continue;
    }
    const int line = static_cast<int>(li) + 1;
    for (const std::string& name : unordered_names) {
      bool hit = false;
      // Range-for over the container, possibly via this->.
      std::regex range_for("for\\s*\\([^)]*:\\s*(this->\\s*)?" + name +
                           "\\s*\\)");
      if (std::regex_search(code, range_for)) hit = true;
      // Iterator loop: `for (auto it = name.begin();` — the begin() call
      // alone is not flagged (copy-then-sort is the sanctioned fix).
      std::regex iter_for("for\\s*\\([^;)]*=\\s*(this->\\s*)?" + name +
                          "\\s*\\.\\s*begin\\s*\\(");
      if (!hit && std::regex_search(code, iter_for)) hit = true;
      if (!hit) continue;
      if (file.IsSilenced("ordered", line)) continue;
      Emit(out, file, line, "D2",
           "iteration over unordered container '" + name +
               "' in a file on the message/metrics surface — order can "
               "escape; sort first or annotate '// prisma-lint: ordered - "
               "<why order cannot escape>'");
    }
  }
}

// ------------------------------------------------------------------ rule D3

/// Classes derived (directly) from pool::Process, collected tree-wide.
void CollectProcessClasses(const std::vector<PreparedFile>& files,
                           std::map<std::string, std::string>* classes) {
  static const std::regex kDerived(
      "class\\s+([A-Za-z_][\\w:]*)\\s*(?:final\\s*)?:\\s*public\\s+"
      "((?:[\\w]+::)*)Process\\b");
  for (const PreparedFile& file : files) {
    for (const std::string& line : file.code) {
      std::smatch m;
      if (std::regex_search(line, m, kDerived)) {
        (*classes)[UnqualifiedName(m[1].str())] = file.path;
      }
    }
  }
}

/// Basename without directory or extension ("gdh/ofm_process.cc" ->
/// "ofm_process"), used to pair a class's header with its .cc.
std::string Stem(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

void CheckCrossProcessPointers(
    const PreparedFile& file,
    const std::map<std::string, std::string>& process_classes,
    std::vector<Diagnostic>* out) {
  for (const auto& [name, home] : process_classes) {
    // A class may mention itself (copy-ctor deletion, self-typed helpers)
    // inside its own header/cc pair.
    if (Stem(home) == Stem(file.path)) continue;
    std::regex ptr_or_ref("\\b" + name + "\\s*[*&]");
    for (size_t li = 0; li < file.code.size(); ++li) {
      if (!std::regex_search(file.code[li], ptr_or_ref)) continue;
      const int line = static_cast<int>(li) + 1;
      if (file.IsSilenced("cross-process", line)) continue;
      Emit(out, file, line, "D3",
           "pointer/reference to process class '" + name + "' (owned by " +
               home +
               ") — POOL-X processes share no memory; exchange state "
               "through Mail");
    }
  }
}

// ------------------------------------------------------------------ rule D4

void CheckVoidDiscards(const PreparedFile& file,
                       std::vector<Diagnostic>* out) {
  static const std::regex kDiscard("^\\s*\\(\\s*void\\s*\\)\\s*[A-Za-z_:(]");
  for (size_t li = 0; li < file.code.size(); ++li) {
    if (!std::regex_search(file.code[li], kDiscard)) continue;
    const int line = static_cast<int>(li) + 1;
    if (file.IsSilenced("unused-status", line)) continue;
    // A trailing comment on the same line counts as the reason.
    if (!file.comment[li].empty()) continue;
    Emit(out, file, line, "D4",
         "result discarded with (void) but no reason — add a trailing "
         "comment or '// prisma-lint: unused-status - <reason>'");
  }
}

// -------------------------------------------------- include closure for D2

/// Which files (by path) transitively include one of the observable-surface
/// headers. Include paths are rooted at src/, so the include string is the
/// file's path key.
std::set<std::string> ComputeObservableFiles(
    const std::vector<PreparedFile>& files) {
  std::map<std::string, const PreparedFile*> by_path;
  for (const PreparedFile& file : files) by_path[file.path] = &file;

  std::map<std::string, bool> memo;
  std::function<bool(const std::string&)> observable =
      [&](const std::string& path) -> bool {
    for (const char* surface : kObservableSurfaces) {
      if (path == surface) return true;
    }
    auto it = by_path.find(path);
    if (it == by_path.end()) return false;
    auto m = memo.find(path);
    if (m != memo.end()) return m->second;
    memo[path] = false;  // Cycle guard.
    for (const std::string& inc : it->second->includes) {
      if (observable(inc)) {
        memo[path] = true;
        return true;
      }
    }
    return false;
  };

  std::set<std::string> result;
  for (const PreparedFile& file : files) {
    if (observable(file.path)) result.insert(file.path);
  }
  return result;
}

/// Minimal JSON string escaping (the diagnostics contain no exotic bytes,
/// but quotes/backslashes from snippets must round-trip).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Diagnostic::Format() const {
  std::ostringstream os;
  os << path << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::vector<AllowlistEntry> ParseAllowlist(const std::string& content,
                                           std::vector<std::string>* errors) {
  std::vector<AllowlistEntry> entries;
  std::vector<std::string> lines;
  SplitLines(content, &lines);
  for (size_t li = 0; li < lines.size(); ++li) {
    std::string line = Trim(lines[li]);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
      size_t bar = line.find('|', start);
      if (bar == std::string::npos) {
        fields.push_back(Trim(line.substr(start)));
        break;
      }
      fields.push_back(Trim(line.substr(start, bar - start)));
      start = bar + 1;
    }
    if (fields.size() != 4 || fields[0].empty() || fields[1].empty() ||
        fields[2].empty() || fields[3].empty()) {
      if (errors != nullptr) {
        errors->push_back(
            "allowlist line " + std::to_string(li + 1) +
            ": expected 'rule | path-suffix | needle | justification'");
      }
      continue;
    }
    AllowlistEntry entry;
    entry.rule = fields[0];
    entry.path_suffix = fields[1];
    entry.needle = fields[2];
    entry.justification = fields[3];
    entry.source_line = static_cast<int>(li) + 1;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<Diagnostic> AnalyzeSources(const std::vector<SourceFile>& files) {
  std::vector<PreparedFile> prepared;
  prepared.reserve(files.size());
  for (const SourceFile& source : files) prepared.push_back(Prepare(source));

  std::vector<FileStructure> structures;
  structures.reserve(prepared.size());
  for (const PreparedFile& file : prepared) {
    structures.push_back(ExtractStructure(file));
  }

  std::map<std::string, std::string> process_classes;
  CollectProcessClasses(prepared, &process_classes);
  const std::set<std::string> observable = ComputeObservableFiles(prepared);

  // Unordered declarations are shared across a header/cc pair: members
  // declared in ofm_process.h are iterated in ofm_process.cc.
  std::map<std::string, std::set<std::string>> decls_by_stem_dir;
  for (const PreparedFile& file : prepared) {
    std::string key = file.path.substr(0, file.path.rfind('.'));
    CollectUnorderedNames(file, &decls_by_stem_dir[key]);
  }

  std::vector<Diagnostic> diagnostics;
  for (const PreparedFile& file : prepared) {
    CheckNondeterminism(file, &diagnostics);
    if (observable.contains(file.path)) {
      std::string key = file.path.substr(0, file.path.rfind('.'));
      CheckUnorderedIteration(file, decls_by_stem_dir[key], &diagnostics);
    }
    CheckCrossProcessPointers(file, process_classes, &diagnostics);
    CheckVoidDiscards(file, &diagnostics);
  }
  CheckProtocolRules(prepared, structures, &diagnostics);
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return diagnostics;
}

LintReport ApplyAllowlist(std::vector<Diagnostic> diagnostics,
                          const std::vector<AllowlistEntry>& allowlist) {
  LintReport report;
  std::vector<bool> used(allowlist.size(), false);
  for (Diagnostic& d : diagnostics) {
    for (size_t i = 0; i < allowlist.size(); ++i) {
      const AllowlistEntry& entry = allowlist[i];
      if (entry.rule != d.rule) continue;
      if (!EndsWith(d.path, entry.path_suffix)) continue;
      if (d.snippet.find(entry.needle) == std::string::npos) continue;
      d.allowlisted = true;
      d.justification = entry.justification;
      used[i] = true;
      break;
    }
    if (!d.allowlisted) ++report.violations;
  }
  for (size_t i = 0; i < allowlist.size(); ++i) {
    if (!used[i]) report.unused_allowlist.push_back(allowlist[i]);
  }
  report.diagnostics = std::move(diagnostics);
  return report;
}

std::string ReportToJson(const LintReport& report, size_t file_count) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"files_scanned\": " << file_count << ",\n";
  os << "  \"violations\": " << report.violations << ",\n";
  os << "  \"clean\": " << (report.clean() ? "true" : "false") << ",\n";
  os << "  \"diagnostics\": [";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"path\": \"" << JsonEscape(d.path) << "\", \"line\": "
       << d.line << ", \"rule\": \"" << JsonEscape(d.rule)
       << "\", \"allowlisted\": " << (d.allowlisted ? "true" : "false")
       << ", \"message\": \"" << JsonEscape(d.message)
       << "\", \"snippet\": \"" << JsonEscape(d.snippet) << "\"";
    if (d.allowlisted) {
      os << ", \"justification\": \"" << JsonEscape(d.justification) << "\"";
    }
    os << "}";
  }
  os << (report.diagnostics.empty() ? "" : "\n  ") << "],\n";
  os << "  \"unused_allowlist\": [";
  for (size_t i = 0; i < report.unused_allowlist.size(); ++i) {
    const AllowlistEntry& e = report.unused_allowlist[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"rule\": \"" << JsonEscape(e.rule) << "\", \"path_suffix\": \""
       << JsonEscape(e.path_suffix) << "\", \"needle\": \""
       << JsonEscape(e.needle) << "\", \"allowlist_line\": " << e.source_line
       << "}";
  }
  os << (report.unused_allowlist.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

bool LoadTree(const std::string& root, std::vector<SourceFile>* files,
              std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    if (error != nullptr) *error = "not a directory: " + root;
    return false;
  }
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
      paths.push_back(it->path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + path.string();
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    SourceFile source;
    source.path = fs::relative(path, root).generic_string();
    source.content = buffer.str();
    files->push_back(std::move(source));
  }
  return true;
}

}  // namespace prisma::lint
