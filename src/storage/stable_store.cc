#include "storage/stable_store.h"

namespace prisma::storage {

sim::SimTime StableStore::Append(const std::string& stream,
                                 std::string record) {
  const size_t bytes = record.size();
  streams_[stream].push_back(std::move(record));
  stream_sizes_[stream] += bytes;
  return model_.IoNs(bytes);
}

sim::SimTime StableStore::AppendBatch(const std::string& stream,
                                      std::vector<std::string> records) {
  size_t total = 0;
  auto& target = streams_[stream];
  for (std::string& record : records) {
    total += record.size();
    target.push_back(std::move(record));
  }
  stream_sizes_[stream] += total;
  return model_.IoNs(total);
}

const std::vector<std::string>& StableStore::ReadStream(
    const std::string& stream) const {
  static const std::vector<std::string>* empty =
      new std::vector<std::string>();
  auto it = streams_.find(stream);
  if (it == streams_.end()) return *empty;
  return it->second;
}

sim::SimTime StableStore::StreamReadNs(const std::string& stream) const {
  return model_.IoNs(stream_bytes(stream));
}

void StableStore::TruncateStream(const std::string& stream) {
  streams_.erase(stream);
  stream_sizes_.erase(stream);
}

sim::SimTime StableStore::WriteSnapshot(const std::string& name,
                                        std::string bytes) {
  const size_t n = bytes.size();
  snapshots_[name] = std::move(bytes);
  return model_.IoNs(n);
}

StatusOr<std::string> StableStore::ReadSnapshot(const std::string& name) const {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return NotFoundError("no snapshot named " + name);
  }
  return it->second;
}

sim::SimTime StableStore::SnapshotReadNs(const std::string& name) const {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) return model_.IoNs(0);
  return model_.IoNs(it->second.size());
}

size_t StableStore::stream_bytes(const std::string& stream) const {
  auto it = stream_sizes_.find(stream);
  return it == stream_sizes_.end() ? 0 : it->second;
}

size_t StableStore::total_bytes() const {
  size_t n = 0;
  for (const auto& [_, bytes] : stream_sizes_) n += bytes;
  for (const auto& [_, snap] : snapshots_) n += snap.size();
  return n;
}

}  // namespace prisma::storage
