#ifndef PRISMA_STORAGE_BTREE_INDEX_H_
#define PRISMA_STORAGE_BTREE_INDEX_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "storage/relation.h"

namespace prisma::storage {

/// Ordered secondary index: an in-memory B+-tree keyed on a subset of a
/// relation's columns, supporting equality probes and range scans in key
/// order. This is the OFM's ordered "storage structure" (§2.5), used for
/// range selections, ORDER BY and merge joins.
///
/// Keys are the projected key-column tuples (compared with Tuple::Compare);
/// duplicates share one key entry carrying all matching RowIds. Deletion is
/// by unlinking (no node merging): leaves may become underfull but never
/// violate ordering, which is the classic main-memory simplification —
/// occupancy is restored by Rebuild after Relation::Compact.
class BTreeIndex {
 public:
  /// `order` = maximum keys per node (>= 4, even recommended).
  BTreeIndex(std::string name, std::vector<size_t> key_columns, int order = 32);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  void OnInsert(RowId row, const Tuple& tuple);
  void OnDelete(RowId row, const Tuple& tuple);

  /// RowIds whose key equals `key` (arity = key_columns).
  std::vector<RowId> Probe(const Tuple& key) const;

  /// Visits entries with lo <= key <= hi in ascending key order (open
  /// bounds when a limit is std::nullopt); `fn` returns false to stop.
  void ScanRange(
      const std::optional<Tuple>& lo, bool lo_inclusive,
      const std::optional<Tuple>& hi, bool hi_inclusive,
      const std::function<bool(const Tuple& key, RowId row)>& fn) const;

  /// Visits every entry in ascending key order.
  void ScanAll(const std::function<bool(const Tuple&, RowId)>& fn) const {
    ScanRange(std::nullopt, true, std::nullopt, true, fn);
  }

  /// Rebuilds from a relation's live tuples.
  void Rebuild(const Relation& relation);

  size_t num_entries() const { return num_entries_; }
  size_t num_keys() const { return num_keys_; }
  int height() const;
  void Clear();

  /// Checks structural invariants (ordering, uniform leaf depth, child
  /// counts, separator placement); used by property tests.
  Status Validate() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  Tuple ExtractKey(const Tuple& tuple) const;
  LeafNode* FindLeaf(const Tuple& key) const;
  const LeafNode* LeftmostLeaf() const;

  /// Result of inserting into a subtree: set when the child split and a
  /// (separator, new right sibling) must be added to the parent.
  struct SplitResult {
    Tuple separator;
    std::unique_ptr<Node> right;
  };
  std::optional<SplitResult> InsertInto(Node* node, const Tuple& key,
                                        RowId row);

  Status ValidateNode(const Node* node, const Tuple* lo, const Tuple* hi,
                      int depth, int leaf_depth) const;
  int LeafDepth() const;

  std::string name_;
  std::vector<size_t> key_columns_;
  size_t max_keys_;
  std::unique_ptr<Node> root_;
  size_t num_entries_ = 0;  // (key, RowId) pairs.
  size_t num_keys_ = 0;     // Distinct keys.
};

}  // namespace prisma::storage

#endif  // PRISMA_STORAGE_BTREE_INDEX_H_
