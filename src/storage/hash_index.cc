#include "storage/hash_index.h"

#include <algorithm>

#include "common/logging.h"

namespace prisma::storage {

void HashIndex::OnInsert(RowId row, const Tuple& tuple) {
  buckets_[KeyHashOfRow(tuple)].push_back(row);
  ++num_entries_;
}

void HashIndex::OnDelete(RowId row, const Tuple& tuple) {
  auto it = buckets_.find(KeyHashOfRow(tuple));
  if (it == buckets_.end()) return;
  auto& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), row);
  if (pos == rows.end()) return;
  rows.erase(pos);
  --num_entries_;
  if (rows.empty()) buckets_.erase(it);
}

std::vector<RowId> HashIndex::Probe(const Tuple& key) const {
  PRISMA_CHECK(key.size() == key_columns_.size())
      << "probe arity mismatch on index " << name_;
  // Key tuples hash with identity column positions (0..k-1).
  std::vector<size_t> identity(key.size());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  auto it = buckets_.find(HashTupleColumns(key, identity));
  if (it == buckets_.end()) return {};
  return it->second;
}

void HashIndex::Rebuild(const Relation& relation) {
  Clear();
  relation.Scan([this](RowId row, const Tuple& tuple) {
    OnInsert(row, tuple);
    return true;
  });
}

}  // namespace prisma::storage
