#include "storage/memory_tracker.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::storage {

Status MemoryTracker::Reserve(size_t bytes) {
  if (used_ + bytes > capacity_) {
    return ResourceExhaustedError(
        StrFormat("PE memory exhausted: need %zu, available %zu of %zu",
                  bytes, available(), capacity_));
  }
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  return Status::OK();
}

void MemoryTracker::Release(size_t bytes) {
  PRISMA_CHECK(bytes <= used_) << "releasing " << bytes << " with only "
                               << used_ << " reserved";
  used_ -= bytes;
}

}  // namespace prisma::storage
