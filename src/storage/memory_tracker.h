#ifndef PRISMA_STORAGE_MEMORY_TRACKER_H_
#define PRISMA_STORAGE_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace prisma::storage {

/// The paper's prototype gives every PE 16 MByte of local main memory
/// (§3.2).
constexpr size_t kDefaultPeMemoryBytes = 16 * 1024 * 1024;

/// Accounts main-memory consumption of one PE against its capacity.
///
/// Main memory is the *primary* store in PRISMA, so running out is a hard
/// allocation failure (kResourceExhausted), not a spill trigger. All
/// fragments and indexes resident on a PE share its tracker.
class MemoryTracker {
 public:
  explicit MemoryTracker(size_t capacity_bytes = kDefaultPeMemoryBytes)
      : capacity_(capacity_bytes) {}

  /// Reserves `bytes`; fails without side effects if it would exceed
  /// capacity.
  Status Reserve(size_t bytes);

  /// Returns previously reserved bytes to the pool.
  void Release(size_t bytes);

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  size_t available() const { return capacity_ - used_; }
  /// Largest `used` value ever observed (for reporting).
  size_t high_water() const { return high_water_; }

 private:
  size_t capacity_;
  size_t used_ = 0;
  size_t high_water_ = 0;
};

}  // namespace prisma::storage

#endif  // PRISMA_STORAGE_MEMORY_TRACKER_H_
