#ifndef PRISMA_STORAGE_STABLE_STORE_H_
#define PRISMA_STORAGE_STABLE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace prisma::storage {

/// Latency model of the disk attached to a disk-equipped PE (§3.2: "some
/// of the processing elements will also be connected to secondary storage").
/// Defaults model a late-1980s Winchester drive; the point of experiment E3
/// is the orders-of-magnitude gap to main memory, not the absolute values.
struct DiskModel {
  /// Average positioning time (seek + rotational latency) per operation.
  sim::SimTime access_ns = 25 * sim::kNanosPerMilli;
  /// Sequential transfer rate.
  int64_t bandwidth_bytes_per_sec = 1'000'000;
  /// Cost of transferring `bytes` after positioning.
  sim::SimTime TransferNs(size_t bytes) const {
    return static_cast<sim::SimTime>(bytes) * sim::kNanosPerSecond /
           bandwidth_bytes_per_sec;
  }
  /// Full cost of one random I/O of `bytes`.
  sim::SimTime IoNs(size_t bytes) const { return access_ns + TransferNs(bytes); }
};

/// Crash-surviving storage of one disk-equipped PE: named append-only
/// streams (write-ahead logs) and named overwritable snapshots
/// (checkpoints). Contents survive PE process crashes in the simulation —
/// a "crash" kills the POOL-X processes but not this object, exactly like
/// a machine losing memory but not its disk.
///
/// Every mutating or reading call returns the simulated I/O duration so
/// the caller can charge it to its PE's virtual clock; the store itself is
/// passive and does not touch the simulator.
class StableStore {
 public:
  explicit StableStore(DiskModel model = {}) : model_(model) {}

  const DiskModel& model() const { return model_; }

  /// Appends a record to the stream, creating it if needed.
  /// Returns the simulated duration of the synchronous write.
  sim::SimTime Append(const std::string& stream, std::string record);

  /// Appends several records as one group-committed physical write: a
  /// single positioning delay plus the combined transfer (how the OFM
  /// forces a transaction's redo records at prepare time).
  sim::SimTime AppendBatch(const std::string& stream,
                           std::vector<std::string> records);

  /// All records of a stream in append order (empty if absent).
  const std::vector<std::string>& ReadStream(const std::string& stream) const;

  /// Simulated duration of sequentially reading the whole stream.
  sim::SimTime StreamReadNs(const std::string& stream) const;

  /// Drops all records of a stream (log truncation after checkpoint).
  void TruncateStream(const std::string& stream);

  /// Overwrites a named snapshot; returns the simulated write duration.
  sim::SimTime WriteSnapshot(const std::string& name, std::string bytes);

  /// Reads a snapshot; kNotFound if absent. Duration via SnapshotReadNs.
  StatusOr<std::string> ReadSnapshot(const std::string& name) const;
  sim::SimTime SnapshotReadNs(const std::string& name) const;

  size_t stream_bytes(const std::string& stream) const;
  size_t total_bytes() const;

 private:
  DiskModel model_;
  std::map<std::string, std::vector<std::string>> streams_;
  std::map<std::string, size_t> stream_sizes_;
  std::map<std::string, std::string> snapshots_;
};

}  // namespace prisma::storage

#endif  // PRISMA_STORAGE_STABLE_STORE_H_
