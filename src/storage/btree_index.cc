#include "storage/btree_index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::storage {

struct BTreeIndex::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  bool is_leaf;
};

struct BTreeIndex::LeafNode : Node {
  LeafNode() : Node(true) {}
  std::vector<Tuple> keys;               // Sorted, unique.
  std::vector<std::vector<RowId>> rows;  // rows[i] belongs to keys[i].
  LeafNode* next = nullptr;              // Right sibling for range scans.
};

struct BTreeIndex::InternalNode : Node {
  InternalNode() : Node(false) {}
  // children.size() == keys.size() + 1; keys[i] is the smallest key in the
  // subtree of children[i + 1].
  std::vector<Tuple> keys;
  std::vector<std::unique_ptr<Node>> children;
};

namespace {

/// Index of the first element in `keys` that is >= `key`.
size_t LowerBound(const std::vector<Tuple>& keys, const Tuple& key) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child slot to descend into for `key`: first separator > key.
size_t ChildSlot(const std::vector<Tuple>& keys, const Tuple& key) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BTreeIndex::BTreeIndex(std::string name, std::vector<size_t> key_columns,
                       int order)
    : name_(std::move(name)),
      key_columns_(std::move(key_columns)),
      max_keys_(static_cast<size_t>(order)),
      root_(std::make_unique<LeafNode>()) {
  PRISMA_CHECK(order >= 4) << "B-tree order must be >= 4";
}

BTreeIndex::~BTreeIndex() = default;

Tuple BTreeIndex::ExtractKey(const Tuple& tuple) const {
  std::vector<Value> vals;
  vals.reserve(key_columns_.size());
  for (size_t c : key_columns_) vals.push_back(tuple.at(c));
  return Tuple(std::move(vals));
}

BTreeIndex::LeafNode* BTreeIndex::FindLeaf(const Tuple& key) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    auto* in = static_cast<InternalNode*>(node);
    node = in->children[ChildSlot(in->keys, key)].get();
  }
  return static_cast<LeafNode*>(node);
}

const BTreeIndex::LeafNode* BTreeIndex::LeftmostLeaf() const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children.front().get();
  }
  return static_cast<const LeafNode*>(node);
}

std::optional<BTreeIndex::SplitResult> BTreeIndex::InsertInto(
    Node* node, const Tuple& key, RowId row) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    const size_t pos = LowerBound(leaf->keys, key);
    if (pos < leaf->keys.size() && leaf->keys[pos].Compare(key) == 0) {
      leaf->rows[pos].push_back(row);
      ++num_entries_;
      return std::nullopt;
    }
    leaf->keys.insert(leaf->keys.begin() + pos, key);
    leaf->rows.insert(leaf->rows.begin() + pos, std::vector<RowId>{row});
    ++num_entries_;
    ++num_keys_;
    if (leaf->keys.size() <= max_keys_) return std::nullopt;

    // Split the leaf in half; the separator is the right half's first key.
    const size_t mid = leaf->keys.size() / 2;
    auto right = std::make_unique<LeafNode>();
    right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                       std::make_move_iterator(leaf->keys.end()));
    right->rows.assign(std::make_move_iterator(leaf->rows.begin() + mid),
                       std::make_move_iterator(leaf->rows.end()));
    leaf->keys.resize(mid);
    leaf->rows.resize(mid);
    right->next = leaf->next;
    leaf->next = right.get();
    SplitResult result{right->keys.front(), std::move(right)};
    return result;
  }

  auto* in = static_cast<InternalNode*>(node);
  const size_t slot = ChildSlot(in->keys, key);
  auto split = InsertInto(in->children[slot].get(), key, row);
  if (!split.has_value()) return std::nullopt;

  in->keys.insert(in->keys.begin() + slot, std::move(split->separator));
  in->children.insert(in->children.begin() + slot + 1,
                      std::move(split->right));
  if (in->keys.size() <= max_keys_) return std::nullopt;

  // Split the internal node; the middle separator moves up.
  const size_t mid = in->keys.size() / 2;
  auto right = std::make_unique<InternalNode>();
  Tuple up = std::move(in->keys[mid]);
  right->keys.assign(std::make_move_iterator(in->keys.begin() + mid + 1),
                     std::make_move_iterator(in->keys.end()));
  right->children.assign(
      std::make_move_iterator(in->children.begin() + mid + 1),
      std::make_move_iterator(in->children.end()));
  in->keys.resize(mid);
  in->children.resize(mid + 1);
  SplitResult result{std::move(up), std::move(right)};
  return result;
}

void BTreeIndex::OnInsert(RowId row, const Tuple& tuple) {
  const Tuple key = ExtractKey(tuple);
  auto split = InsertInto(root_.get(), key, row);
  if (!split.has_value()) return;
  auto new_root = std::make_unique<InternalNode>();
  new_root->keys.push_back(std::move(split->separator));
  new_root->children.push_back(std::move(root_));
  new_root->children.push_back(std::move(split->right));
  root_ = std::move(new_root);
}

void BTreeIndex::OnDelete(RowId row, const Tuple& tuple) {
  const Tuple key = ExtractKey(tuple);
  LeafNode* leaf = FindLeaf(key);
  const size_t pos = LowerBound(leaf->keys, key);
  if (pos >= leaf->keys.size() || leaf->keys[pos].Compare(key) != 0) return;
  auto& rows = leaf->rows[pos];
  auto it = std::find(rows.begin(), rows.end(), row);
  if (it == rows.end()) return;
  rows.erase(it);
  --num_entries_;
  if (rows.empty()) {
    // Unlink the key; underfull leaves are tolerated (see class comment).
    leaf->keys.erase(leaf->keys.begin() + pos);
    leaf->rows.erase(leaf->rows.begin() + pos);
    --num_keys_;
  }
}

std::vector<RowId> BTreeIndex::Probe(const Tuple& key) const {
  PRISMA_CHECK(key.size() == key_columns_.size())
      << "probe arity mismatch on index " << name_;
  const LeafNode* leaf = FindLeaf(key);
  const size_t pos = LowerBound(leaf->keys, key);
  if (pos >= leaf->keys.size() || leaf->keys[pos].Compare(key) != 0) {
    return {};
  }
  return leaf->rows[pos];
}

void BTreeIndex::ScanRange(
    const std::optional<Tuple>& lo, bool lo_inclusive,
    const std::optional<Tuple>& hi, bool hi_inclusive,
    const std::function<bool(const Tuple&, RowId)>& fn) const {
  const LeafNode* leaf;
  size_t pos = 0;
  if (lo.has_value()) {
    leaf = FindLeaf(*lo);
    pos = LowerBound(leaf->keys, *lo);
    if (!lo_inclusive && pos < leaf->keys.size() &&
        leaf->keys[pos].Compare(*lo) == 0) {
      ++pos;
    }
  } else {
    leaf = LeftmostLeaf();
  }
  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      const Tuple& key = leaf->keys[pos];
      if (hi.has_value()) {
        const int c = key.Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      for (const RowId row : leaf->rows[pos]) {
        if (!fn(key, row)) return;
      }
    }
    leaf = leaf->next;
    pos = 0;
  }
}

void BTreeIndex::Rebuild(const Relation& relation) {
  Clear();
  relation.Scan([this](RowId row, const Tuple& tuple) {
    OnInsert(row, tuple);
    return true;
  });
}

int BTreeIndex::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children.front().get();
    ++h;
  }
  return h;
}

void BTreeIndex::Clear() {
  root_ = std::make_unique<LeafNode>();
  num_entries_ = 0;
  num_keys_ = 0;
}

int BTreeIndex::LeafDepth() const { return height(); }

Status BTreeIndex::ValidateNode(const Node* node, const Tuple* lo,
                                const Tuple* hi, int depth,
                                int leaf_depth) const {
  auto in_bounds = [&](const Tuple& k) {
    if (lo != nullptr && k.Compare(*lo) < 0) return false;
    if (hi != nullptr && k.Compare(*hi) >= 0) return false;
    return true;
  };
  if (node->is_leaf) {
    if (depth != leaf_depth) {
      return InternalError("leaf at wrong depth in " + name_);
    }
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (leaf->keys.size() != leaf->rows.size()) {
      return InternalError("leaf keys/rows size mismatch in " + name_);
    }
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (i > 0 && leaf->keys[i - 1].Compare(leaf->keys[i]) >= 0) {
        return InternalError("unsorted leaf keys in " + name_);
      }
      if (!in_bounds(leaf->keys[i])) {
        return InternalError("leaf key outside separator bounds in " + name_);
      }
      if (leaf->rows[i].empty()) {
        return InternalError("empty RowId list in " + name_);
      }
    }
    return Status::OK();
  }
  const auto* in = static_cast<const InternalNode*>(node);
  if (in->children.size() != in->keys.size() + 1) {
    return InternalError("internal child count mismatch in " + name_);
  }
  for (size_t i = 0; i < in->keys.size(); ++i) {
    if (i > 0 && in->keys[i - 1].Compare(in->keys[i]) >= 0) {
      return InternalError("unsorted internal keys in " + name_);
    }
    if (!in_bounds(in->keys[i])) {
      return InternalError("separator outside bounds in " + name_);
    }
  }
  for (size_t i = 0; i < in->children.size(); ++i) {
    const Tuple* clo = (i == 0) ? lo : &in->keys[i - 1];
    const Tuple* chi = (i == in->keys.size()) ? hi : &in->keys[i];
    RETURN_IF_ERROR(
        ValidateNode(in->children[i].get(), clo, chi, depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status BTreeIndex::Validate() const {
  return ValidateNode(root_.get(), nullptr, nullptr, 1, LeafDepth());
}

}  // namespace prisma::storage
