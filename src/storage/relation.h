#ifndef PRISMA_STORAGE_RELATION_H_
#define PRISMA_STORAGE_RELATION_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/column_batch.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "storage/memory_tracker.h"

namespace prisma::storage {

/// Stable identifier of a tuple within one Relation; survives unrelated
/// deletes (slots are tombstoned, not reused until Compact).
using RowId = uint64_t;

/// An in-memory, row-oriented relation (or relation fragment).
///
/// This is the primary storage structure of a One-Fragment Manager: tuples
/// live in main memory only (§2.1); durability is layered on top by the
/// recovery component. Inserts validate tuple arity and column types
/// against the schema (with NULL and INT->DOUBLE coercion).
class Relation {
 public:
  /// `memory` may be null (untracked, for tests and transient results).
  Relation(std::string name, Schema schema, MemoryTracker* memory = nullptr);
  ~Relation();

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Validates and stores a tuple; returns its RowId.
  StatusOr<RowId> Insert(Tuple tuple);

  /// Removes a live tuple; kNotFound for unknown or already deleted rows.
  Status Delete(RowId row);

  /// Replaces a live tuple, revalidating against the schema.
  Status Update(RowId row, Tuple tuple);

  /// Re-occupies the tombstoned slot `row` with `tuple` (transaction undo
  /// of a delete, WAL replay). Fails if the slot is live or out of range.
  Status RestoreRow(RowId row, Tuple tuple);

  /// Appends one slot verbatim during recovery: a live tuple or a
  /// tombstone (std::nullopt), preserving the checkpointed RowId space.
  Status RestoreSlot(std::optional<Tuple> slot);

  /// Returns the tuple at `row` if live.
  StatusOr<Tuple> Get(RowId row) const;
  bool IsLive(RowId row) const {
    return row < rows_.size() && rows_[row].has_value();
  }

  /// Invokes `fn(row_id, tuple)` for every live tuple in RowId order;
  /// stops early if `fn` returns false.
  void Scan(const std::function<bool(RowId, const Tuple&)>& fn) const;

  /// Slot-preserving iteration: invokes `fn(row_id, tuple_or_null)` for
  /// every slot in RowId order, tombstones included (tuple == nullptr).
  /// The snapshot hook of checkpointing and replica resync — consumers
  /// that must reproduce the exact RowId space iterate slots, not tuples.
  void ScanSlots(const std::function<void(RowId, const Tuple*)>& fn) const;

  /// All live tuples in RowId order (convenience for small results).
  std::vector<Tuple> AllTuples() const;

  /// All live tuples in RowId order, chunked into ColumnBatches of at most
  /// `batch_rows` rows (the vectorized scan entry point; same tuples in
  /// the same order as AllTuples).
  std::vector<ColumnBatch> ScanBatches(size_t batch_rows) const;

  size_t num_tuples() const { return live_count_; }
  /// Approximate bytes held, including tombstoned slots until Compact.
  size_t byte_size() const { return byte_size_; }
  /// Total slots including tombstones (the RowId space).
  size_t num_slots() const { return rows_.size(); }

  /// Drops all tuples.
  void Clear();

  /// Reclaims tombstoned slots. Invalidates all previously returned
  /// RowIds; callers (index maintenance) must rebuild afterwards.
  void Compact();

 private:
  Status Validate(Tuple& tuple) const;
  Status TrackReserve(size_t bytes);
  void TrackRelease(size_t bytes);

  std::string name_;
  Schema schema_;
  MemoryTracker* memory_;
  std::vector<std::optional<Tuple>> rows_;
  size_t live_count_ = 0;
  size_t byte_size_ = 0;
};

}  // namespace prisma::storage

#endif  // PRISMA_STORAGE_RELATION_H_
