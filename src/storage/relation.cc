#include "storage/relation.h"

#include <utility>

#include "common/str_util.h"

namespace prisma::storage {

Relation::Relation(std::string name, Schema schema, MemoryTracker* memory)
    : name_(std::move(name)), schema_(std::move(schema)), memory_(memory) {}

Relation::~Relation() {
  if (memory_ != nullptr) memory_->Release(byte_size_);
}

Status Relation::Validate(Tuple& tuple) const {
  if (tuple.size() != schema_.num_columns()) {
    return InvalidArgumentError(StrFormat(
        "relation %s expects %zu columns, got %zu", name_.c_str(),
        schema_.num_columns(), tuple.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    const DataType want = schema_.column(i).type;
    // A kNull column type is a wildcard (untyped Datalog relations).
    if (want == DataType::kNull) continue;
    if (tuple.at(i).type() == want || tuple.at(i).is_null()) continue;
    ASSIGN_OR_RETURN(Value coerced, CoerceValue(tuple.at(i), want));
    tuple.at(i) = std::move(coerced);
  }
  return Status::OK();
}

Status Relation::TrackReserve(size_t bytes) {
  if (memory_ != nullptr) RETURN_IF_ERROR(memory_->Reserve(bytes));
  byte_size_ += bytes;
  return Status::OK();
}

void Relation::TrackRelease(size_t bytes) {
  if (memory_ != nullptr) memory_->Release(bytes);
  byte_size_ -= bytes;
}

StatusOr<RowId> Relation::Insert(Tuple tuple) {
  RETURN_IF_ERROR(Validate(tuple));
  RETURN_IF_ERROR(TrackReserve(tuple.ByteSize()));
  rows_.emplace_back(std::move(tuple));
  ++live_count_;
  return rows_.size() - 1;
}

Status Relation::Delete(RowId row) {
  if (!IsLive(row)) {
    return NotFoundError(StrFormat("row %llu not found in %s",
                                   static_cast<unsigned long long>(row),
                                   name_.c_str()));
  }
  TrackRelease(rows_[row]->ByteSize());
  rows_[row].reset();
  --live_count_;
  return Status::OK();
}

Status Relation::Update(RowId row, Tuple tuple) {
  if (!IsLive(row)) {
    return NotFoundError(StrFormat("row %llu not found in %s",
                                   static_cast<unsigned long long>(row),
                                   name_.c_str()));
  }
  RETURN_IF_ERROR(Validate(tuple));
  RETURN_IF_ERROR(TrackReserve(tuple.ByteSize()));
  TrackRelease(rows_[row]->ByteSize());
  rows_[row] = std::move(tuple);
  return Status::OK();
}

Status Relation::RestoreRow(RowId row, Tuple tuple) {
  if (row >= rows_.size() || rows_[row].has_value()) {
    return FailedPreconditionError(
        StrFormat("slot %llu of %s is not restorable",
                  static_cast<unsigned long long>(row), name_.c_str()));
  }
  RETURN_IF_ERROR(Validate(tuple));
  RETURN_IF_ERROR(TrackReserve(tuple.ByteSize()));
  rows_[row] = std::move(tuple);
  ++live_count_;
  return Status::OK();
}

Status Relation::RestoreSlot(std::optional<Tuple> slot) {
  if (!slot.has_value()) {
    rows_.emplace_back(std::nullopt);
    return Status::OK();
  }
  RETURN_IF_ERROR(Validate(*slot));
  RETURN_IF_ERROR(TrackReserve(slot->ByteSize()));
  rows_.emplace_back(std::move(*slot));
  ++live_count_;
  return Status::OK();
}

StatusOr<Tuple> Relation::Get(RowId row) const {
  if (!IsLive(row)) {
    return NotFoundError(StrFormat("row %llu not found in %s",
                                   static_cast<unsigned long long>(row),
                                   name_.c_str()));
  }
  return *rows_[row];
}

void Relation::Scan(const std::function<bool(RowId, const Tuple&)>& fn) const {
  for (RowId r = 0; r < rows_.size(); ++r) {
    if (!rows_[r].has_value()) continue;
    if (!fn(r, *rows_[r])) return;
  }
}

void Relation::ScanSlots(
    const std::function<void(RowId, const Tuple*)>& fn) const {
  for (RowId r = 0; r < rows_.size(); ++r) {
    fn(r, rows_[r].has_value() ? &*rows_[r] : nullptr);
  }
}

std::vector<Tuple> Relation::AllTuples() const {
  std::vector<Tuple> out;
  out.reserve(live_count_);
  for (const auto& r : rows_) {
    if (r.has_value()) out.push_back(*r);
  }
  return out;
}

std::vector<ColumnBatch> Relation::ScanBatches(size_t batch_rows) const {
  if (batch_rows == 0) batch_rows = ColumnBatch::kDefaultBatchRows;
  std::vector<ColumnBatch> batches;
  ColumnBatch batch(schema_.num_columns());
  for (const auto& r : rows_) {
    if (!r.has_value()) continue;
    batch.AppendTuple(*r);
    if (batch.num_rows() >= batch_rows) {
      batches.push_back(std::move(batch));
      batch = ColumnBatch(schema_.num_columns());
    }
  }
  if (batch.num_rows() > 0) batches.push_back(std::move(batch));
  return batches;
}

void Relation::Clear() {
  TrackRelease(byte_size_);
  rows_.clear();
  live_count_ = 0;
}

void Relation::Compact() {
  std::vector<std::optional<Tuple>> packed;
  packed.reserve(live_count_);
  for (auto& r : rows_) {
    if (r.has_value()) packed.emplace_back(std::move(r));
  }
  rows_ = std::move(packed);
}

}  // namespace prisma::storage
