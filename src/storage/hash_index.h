#ifndef PRISMA_STORAGE_HASH_INDEX_H_
#define PRISMA_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/tuple.h"
#include "storage/relation.h"

namespace prisma::storage {

/// Unordered secondary index on a subset of a relation's columns,
/// supporting equality probes. The OFM's local optimizer picks it for
/// selections and as the build side of local hash joins (§2.5 "various
/// storage structures").
///
/// Duplicate keys are allowed; a probe returns every matching RowId. The
/// index does not observe the relation automatically — the OFM calls
/// OnInsert/OnDelete as part of its write path.
class HashIndex {
 public:
  /// `key_columns` are positions in the relation's schema.
  HashIndex(std::string name, std::vector<size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  void OnInsert(RowId row, const Tuple& tuple);
  void OnDelete(RowId row, const Tuple& tuple);

  /// RowIds whose key columns equal `key` (same arity as key_columns).
  /// Hash collisions are resolved by the caller re-checking the tuple; the
  /// returned ids are a superset only in the (vanishingly rare) case of a
  /// 64-bit hash collision, so the OFM always re-verifies equality.
  std::vector<RowId> Probe(const Tuple& key) const;

  /// Rebuilds from scratch (after Relation::Compact).
  void Rebuild(const Relation& relation);

  size_t num_entries() const { return num_entries_; }
  void Clear() {
    buckets_.clear();
    num_entries_ = 0;
  }

 private:
  uint64_t KeyHashOfRow(const Tuple& tuple) const {
    return HashTupleColumns(tuple, key_columns_);
  }

  std::string name_;
  std::vector<size_t> key_columns_;
  std::unordered_map<uint64_t, std::vector<RowId>> buckets_;
  size_t num_entries_ = 0;
};

}  // namespace prisma::storage

#endif  // PRISMA_STORAGE_HASH_INDEX_H_
