#ifndef PRISMA_OBS_TRACE_H_
#define PRISMA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.h"

namespace prisma::obs {

/// Virtual-time tracer: records spans and instant events on the
/// deterministic simulation clock and exports Chrome trace_event JSON
/// (load the dump in chrome://tracing or Perfetto).
///
/// pid maps to the PE and tid to the POOL-X process id, so the trace UI
/// groups work exactly like the machine does. All timestamps are virtual
/// nanoseconds from the simulator; the export uses pure integer formatting,
/// so two runs with the same seed serialize byte-identically on any host.
///
/// Tracing is off by default (recording every handler and message of a
/// large bench costs real memory); components must check enabled() before
/// doing work to assemble an event.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Complete span (ph "X"): work on (pid, tid) over [start_ns, end_ns].
  /// An optional single argument shows up under "args" in the viewer.
  void Span(std::string_view category, std::string_view name,
            sim::SimTime start_ns, sim::SimTime end_ns, int64_t pid,
            int64_t tid, std::string_view arg_key = {},
            std::string_view arg_value = {});

  /// Instant event (ph "i", thread scope).
  void Instant(std::string_view category, std::string_view name,
               sim::SimTime at_ns, int64_t pid, int64_t tid,
               std::string_view arg_key = {}, std::string_view arg_value = {});

  size_t num_events() const { return events_.size(); }
  void Clear() { events_.clear(); }

  /// Chrome trace_event JSON ({"traceEvents":[...]}), events in record
  /// order (which is itself deterministic under the virtual clock).
  std::string DumpJson() const;

 private:
  struct Event {
    char ph;  // 'X' or 'i'.
    std::string category;
    std::string name;
    sim::SimTime ts_ns;
    sim::SimTime dur_ns;  // Spans only.
    int64_t pid;
    int64_t tid;
    std::string arg_key;
    std::string arg_value;
  };

  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace prisma::obs

#endif  // PRISMA_OBS_TRACE_H_
