#include "obs/trace.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::obs {

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

/// Chrome's ts/dur unit is microseconds; emit ns as fixed-point micros
/// ("1234.567") with integer math only, so output never depends on
/// floating-point formatting.
void AppendMicros(std::string* out, sim::SimTime ns) {
  *out += StrFormat("%lld.%03lld", static_cast<long long>(ns / 1000),
                    static_cast<long long>(ns % 1000));
}

}  // namespace

void Tracer::Span(std::string_view category, std::string_view name,
                  sim::SimTime start_ns, sim::SimTime end_ns, int64_t pid,
                  int64_t tid, std::string_view arg_key,
                  std::string_view arg_value) {
  if (!enabled_) return;
  PRISMA_CHECK(end_ns >= start_ns);
  events_.push_back(Event{'X', std::string(category), std::string(name),
                          start_ns, end_ns - start_ns, pid, tid,
                          std::string(arg_key), std::string(arg_value)});
}

void Tracer::Instant(std::string_view category, std::string_view name,
                     sim::SimTime at_ns, int64_t pid, int64_t tid,
                     std::string_view arg_key, std::string_view arg_value) {
  if (!enabled_) return;
  events_.push_back(Event{'i', std::string(category), std::string(name), at_ns,
                          0, pid, tid, std::string(arg_key),
                          std::string(arg_value)});
}

std::string Tracer::DumpJson() const {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i > 0) out += ',';
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"cat\":";
    AppendJsonString(&out, e.category);
    out += ",\"name\":";
    AppendJsonString(&out, e.name);
    out += ",\"ts\":";
    AppendMicros(&out, e.ts_ns);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      AppendMicros(&out, e.dur_ns);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += StrFormat(",\"pid\":%lld,\"tid\":%lld",
                     static_cast<long long>(e.pid),
                     static_cast<long long>(e.tid));
    if (!e.arg_key.empty()) {
      out += ",\"args\":{";
      AppendJsonString(&out, e.arg_key);
      out += ':';
      AppendJsonString(&out, e.arg_value);
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace prisma::obs
