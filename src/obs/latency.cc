#include "obs/latency.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace prisma::obs {

void LatencyHistogram::Record(int64_t sample_ns) {
  ++samples_[sample_ns];
  ++count_;
  sum_ += sample_ns;
}

int64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the ceil(q*n)-th smallest sample (1-based); rank 0 maps
  // to the minimum so Quantile(0) is still a real sample.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (const auto& [value, occurrences] : samples_) {
    seen += occurrences;
    if (seen >= rank) return value;
  }
  return samples_.rbegin()->first;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (const auto& [value, occurrences] : other.samples_) {
    samples_[value] += occurrences;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string LatencyHistogram::DumpLine() const {
  return StrFormat("count=%llu sum=%lld p50=%lld p99=%lld p999=%lld",
                   static_cast<unsigned long long>(count_),
                   static_cast<long long>(sum_),
                   static_cast<long long>(P50()),
                   static_cast<long long>(P99()),
                   static_cast<long long>(P999()));
}

}  // namespace prisma::obs
