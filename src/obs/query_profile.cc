#include "obs/query_profile.h"

#include <algorithm>

#include "common/str_util.h"

namespace prisma::obs {

void MergeProfile(OperatorProfile* into, const OperatorProfile& from) {
  into->rows += from.rows;
  into->bytes += from.bytes;
  into->batches += from.batches;
  into->total_ns += from.total_ns;
  into->invocations += from.invocations;
  const size_t common = std::min(into->children.size(), from.children.size());
  for (size_t i = 0; i < common; ++i) {
    MergeProfile(&into->children[i], from.children[i]);
  }
}

std::string FormatNs(sim::SimTime ns) {
  const long long v = static_cast<long long>(ns);
  if (v < 1'000) return StrFormat("%lldns", v);
  if (v < 1'000'000) {
    return StrFormat("%lld.%03lldus", v / 1'000, v % 1'000);
  }
  if (v < 1'000'000'000) {
    return StrFormat("%lld.%03lldms", v / 1'000'000, (v / 1'000) % 1'000);
  }
  return StrFormat("%lld.%03llds", v / 1'000'000'000,
                   (v / 1'000'000) % 1'000);
}

void RenderProfile(const OperatorProfile& profile, int indent,
                   std::vector<std::string>* lines) {
  sim::SimTime children_ns = 0;
  for (const OperatorProfile& child : profile.children) {
    children_ns += child.total_ns;
  }
  const sim::SimTime self_ns = std::max<sim::SimTime>(
      0, profile.total_ns - children_ns);
  std::string line(static_cast<size_t>(indent) * 2, ' ');
  line += StrFormat("%s rows=%llu bytes=%llu total=%s self=%s",
                    profile.op.c_str(),
                    static_cast<unsigned long long>(profile.rows),
                    static_cast<unsigned long long>(profile.bytes),
                    FormatNs(profile.total_ns).c_str(),
                    FormatNs(self_ns).c_str());
  if (profile.batches > 0) {
    line += StrFormat(" batches=%llu",
                      static_cast<unsigned long long>(profile.batches));
  }
  if (profile.invocations > 1) {
    line += StrFormat(" x%llu",
                      static_cast<unsigned long long>(profile.invocations));
  }
  lines->push_back(std::move(line));
  for (const OperatorProfile& child : profile.children) {
    RenderProfile(child, indent + 1, lines);
  }
}

}  // namespace prisma::obs
