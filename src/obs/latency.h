#ifndef PRISMA_OBS_LATENCY_H_
#define PRISMA_OBS_LATENCY_H_

#include <cstdint>
#include <map>
#include <string>

namespace prisma::obs {

/// Exact latency distribution for the serving layer (DESIGN.md §15.3).
///
/// The registry Histogram's power-of-two buckets are fine for byte-stable
/// dumps but too coarse for tail latencies: at 1 ms a bucket spans ~0.5 ms,
/// which swallows the p99/p999 story entirely. This histogram keeps an
/// exact sample->count map instead. Serving runs record at most a few
/// thousand distinct virtual-time latencies, so memory stays small, and
/// the sorted map makes every quantile deterministic and order-independent
/// (same samples in any order -> same quantiles, same rendering).
class LatencyHistogram {
 public:
  void Record(int64_t sample_ns);

  /// Nearest-rank quantile: the smallest recorded value v such that at
  /// least ceil(q * count) samples are <= v. Exact, not interpolated; for
  /// an empty histogram returns 0. q is clamped to [0, 1].
  int64_t Quantile(double q) const;

  int64_t P50() const { return Quantile(0.50); }
  int64_t P99() const { return Quantile(0.99); }
  int64_t P999() const { return Quantile(0.999); }

  /// Adds every sample of `other` into this histogram (count-wise; exact).
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : samples_.begin()->first; }
  int64_t max() const { return count_ == 0 ? 0 : samples_.rbegin()->first; }
  int64_t mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<int64_t>(count_);
  }

  /// One-line byte-stable rendering used by same-seed replay diffs:
  /// "count=5 sum=150 p50=30 p99=50 p999=50".
  std::string DumpLine() const;

 private:
  std::map<int64_t, uint64_t> samples_;  // value -> occurrences (sorted).
  uint64_t count_ = 0;
  int64_t sum_ = 0;
};

}  // namespace prisma::obs

#endif  // PRISMA_OBS_LATENCY_H_
