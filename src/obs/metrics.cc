#include "obs/metrics.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::obs {

void Histogram::Record(int64_t sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  int bucket = 0;
  if (sample > 1) {
    // Index of the highest set bit, +1: sample in [2^(b-1), 2^b).
    bucket = 64 - __builtin_clzll(static_cast<uint64_t>(sample) - 1);
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets_[bucket];
}

int64_t Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) return 0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      return i == 0 ? 1 : (int64_t{1} << i);
    }
  }
  return max_;
}

std::string MetricsRegistry::Key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (!labels.empty()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    key += '{';
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) key += ',';
      key += sorted[i].first;
      key += '=';
      key += sorted[i].second;
    }
    key += '}';
  }
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(std::string_view name,
                                                  const Labels& labels,
                                                  Kind kind) {
  auto [it, inserted] = entries_.try_emplace(Key(name, labels));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  PRISMA_CHECK(entry.kind == kind)
      << "metric " << it->first << " re-registered with a different kind";
  return entry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  return GetEntry(name, labels, Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  return GetEntry(name, labels, Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const Labels& labels) {
  return GetEntry(name, labels, Kind::kHistogram).histogram.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name,
                                       const Labels& labels) const {
  auto it = entries_.find(Key(name, labels));
  if (it == entries_.end() || it->second.kind != Kind::kCounter) return 0;
  return it->second.counter->value();
}

int64_t MetricsRegistry::GaugeValue(std::string_view name,
                                    const Labels& labels) const {
  auto it = entries_.find(Key(name, labels));
  if (it == entries_.end() || it->second.kind != Kind::kGauge) return 0;
  return it->second.gauge->value();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name,
                                                const Labels& labels) const {
  auto it = entries_.find(Key(name, labels));
  if (it == entries_.end() || it->second.kind != Kind::kHistogram) {
    return nullptr;
  }
  return it->second.histogram.get();
}

uint64_t MetricsRegistry::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.kind != Kind::kCounter) continue;
    // Match "name" exactly or "name{...}".
    if (key.size() < name.size() ||
        std::string_view(key).substr(0, name.size()) != name) {
      continue;
    }
    if (key.size() != name.size() && key[name.size()] != '{') continue;
    total += entry.counter->value();
  }
  return total;
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  for (const auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat("counter %s %llu\n", key.c_str(),
                         static_cast<unsigned long long>(
                             entry.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("gauge %s %lld\n", key.c_str(),
                         static_cast<long long>(entry.gauge->value()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += StrFormat(
            "histogram %s count=%llu sum=%lld min=%lld max=%lld p50=%lld "
            "p99=%lld\n",
            key.c_str(), static_cast<unsigned long long>(h.count()),
            static_cast<long long>(h.sum()), static_cast<long long>(h.min()),
            static_cast<long long>(h.max()),
            static_cast<long long>(h.ApproxQuantile(0.5)),
            static_cast<long long>(h.ApproxQuantile(0.99)));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{";
  bool first = true;
  auto emit_key = [&](const std::string& key) {
    if (!first) out += ',';
    first = false;
    out += '"';
    for (const char c : key) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\":";
  };
  for (const auto& [key, entry] : entries_) {
    emit_key(key);
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat("%llu", static_cast<unsigned long long>(
                                     entry.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("%lld",
                         static_cast<long long>(entry.gauge->value()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += StrFormat(
            "{\"count\":%llu,\"sum\":%lld,\"min\":%lld,\"max\":%lld}",
            static_cast<unsigned long long>(h.count()),
            static_cast<long long>(h.sum()), static_cast<long long>(h.min()),
            static_cast<long long>(h.max()));
        break;
      }
    }
  }
  out += '}';
  return out;
}

}  // namespace prisma::obs
