#ifndef PRISMA_OBS_METRICS_H_
#define PRISMA_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prisma::obs {

/// Label set attached to a metric instance ({"pe","3"}, {"fragment","emp#1"},
/// {"query","42"}, ...). Kept sorted by key so the same logical scope always
/// canonicalizes to the same registry entry.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count (messages sent, tuples scanned, WAL records, ...).
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time level (PE busy ns, pending events, resident tuples, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Distribution of int64 samples (latencies in ns, message sizes in bits)
/// over exponential power-of-two buckets. Bucket i counts samples in
/// [2^(i-1), 2^i); bucket 0 counts samples <= 0 or == 1. The fixed bucket
/// layout keeps dumps byte-stable regardless of sample order.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t sample);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  int64_t mean() const { return count_ == 0 ? 0 : sum_ / static_cast<int64_t>(count_); }
  /// Upper bound of the bucket holding the q-th quantile (q in [0,1]),
  /// deterministic because buckets are fixed.
  int64_t ApproxQuantile(double q) const;

  const uint64_t* buckets() const { return buckets_; }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Registry of named metric instances. Every component of the simulated
/// machine registers its counters here (per-PE, per-OFM and per-query
/// scopes via labels); DumpText/DumpJson walk entries in canonical-name
/// order so two identical runs produce byte-identical output.
///
/// Get* calls are idempotent: the first call creates the instance, later
/// calls return the same pointer, which stays valid for the registry's
/// lifetime (components cache it off the hot path).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  Histogram* GetHistogram(std::string_view name, const Labels& labels = {});

  /// Value of a counter/gauge if it exists, else 0 (test convenience).
  uint64_t CounterValue(std::string_view name, const Labels& labels = {}) const;
  int64_t GaugeValue(std::string_view name, const Labels& labels = {}) const;
  const Histogram* FindHistogram(std::string_view name,
                                 const Labels& labels = {}) const;

  /// Sum of all counters with this name across label sets (e.g. total
  /// tuples scanned over every OFM scope).
  uint64_t CounterTotal(std::string_view name) const;

  /// Canonical key: name{k=v,k=v} with labels sorted by key.
  static std::string Key(std::string_view name, const Labels& labels);

  /// One line per metric, sorted by canonical key.
  /// counter net.messages_sent 1234
  std::string DumpText() const;
  /// Same content as a deterministic JSON object.
  std::string DumpJson() const;

  size_t size() const { return entries_.size(); }
  void Reset() { entries_.clear(); }

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& GetEntry(std::string_view name, const Labels& labels, Kind kind);

  std::map<std::string, Entry> entries_;
};

}  // namespace prisma::obs

#endif  // PRISMA_OBS_METRICS_H_
