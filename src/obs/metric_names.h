#ifndef PRISMA_OBS_METRIC_NAMES_H_
#define PRISMA_OBS_METRIC_NAMES_H_

// Registry of every metric series and tracer span name the simulator may
// emit (lint rule D8, DESIGN.md §9). The lint cross-checks both ways:
// a GetCounter/LazyCounter/Span literal missing here fails (a typo'd name
// would silently start a new series), and an entry no call site uses
// fails (deleted metrics may not leave ghost entries behind).
//
// Names use "<subsystem>.<measure>" with snake_case measures. Only string
// literals are checked — a computed name cannot be registered and is
// therefore banned from these call sites by construction.

namespace prisma::obs {

/// Counter series (GetCounter / LazyCounter literals).
inline constexpr const char* kRegisteredMetricNames[] = {
    // PRISMA_METRICS_BEGIN
    "exchange.batches_received",
    "exchange.batches_sent",
    "exchange.bytes",
    "exchange.dup_batches",
    "exchange.retransmits",
    "exchange.stalls",
    "exchange.wire_bits",
    "fixpoint.batches_received",
    "fixpoint.batches_sent",
    "fixpoint.delta_tuples",
    "fixpoint.dup_batches",
    "fixpoint.retransmits",
    "fixpoint.wire_bits",
    "gdh.2pc_rounds",
    "gdh.coords_reaped",
    "gdh.deadlock_aborts",
    "gdh.decisions_deferred",
    "gdh.dup_replies",
    "gdh.rpc_failures",
    "gdh.rpc_retries",
    "gdh.selects_spawned",
    "gdh.statements",
    "gdh.txns_aborted",
    "gdh.txns_begun",
    "gdh.txns_committed",
    "gdh.txns_doomed",
    "gdh.write_ops_sent",
    "net.backpressure",
    "net.delayed_ns",
    "net.dropped",
    "net.duplicated",
    "net.link_bits",
    "net.messages_delivered",
    "net.messages_sent",
    "net.no_receiver",
    "net.packets_sent",
    "ofm.dup_requests",
    "ofm.full_scans",
    "ofm.index_selections",
    "ofm.plans_executed",
    "ofm.recoveries",
    "ofm.redo_applied",
    "ofm.tuples_scanned",
    "ofm.txn_aborts",
    "ofm.txn_commits",
    "ofm.wal_records",
    "ofm.write_ops",
    "olap.gather_bits",
    "olap.parts",
    "olap.sample_rows",
    "olap.shuffle_bits",
    "pe.cpu_ns",
    "pe.crashes",
    "pool.handlers_executed",
    "pool.mail_bits",
    "pool.mail_dropped",
    "pool.mail_sent",
    "query.fragments_contacted",
    "query.plan_cache.hit",
    "query.plan_cache.invalidate",
    "query.plan_cache.miss",
    "query.tuples_gathered",
    "query.unavailable",
    "replica.failovers",
    "replica.resync_bulk_tuples",
    "replica.resync_delta_records",
    "replica.resync_rounds",
    "replica.resync_wire_bits",
    "replica.resyncs_aborted",
    "replica.resyncs_completed",
    "replica.resyncs_started",
    "replica.stale_marks",
    "serve.admitted",
    "serve.completed",
    "serve.shed",
    // PRISMA_METRICS_END
};

/// Tracer span categories and literal span names (Tracer::Span/Instant).
/// Handler spans in pool/runtime.cc use the process's debug name, which is
/// dynamic and thus outside the literal-only rule.
inline constexpr const char* kRegisteredSpanNames[] = {
    // PRISMA_SPANS_BEGIN
    "2pc.decision",
    "2pc.prepare",
    "gdh",
    "msg",
    "net",
    "pool",
    // PRISMA_SPANS_END
};

}  // namespace prisma::obs

#endif  // PRISMA_OBS_METRIC_NAMES_H_
