#ifndef PRISMA_OBS_QUERY_PROFILE_H_
#define PRISMA_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace prisma::obs {

/// Per-operator execution profile of one plan (sub)tree, filled by the
/// executor when profiling is on and attached to EXPLAIN ANALYZE results.
///
/// total_ns is inclusive of children (the virtual CPU charged while the
/// operator and everything below it ran); renderers derive self time as
/// total_ns minus the children's totals.
struct OperatorProfile {
  std::string op;  // "Scan(emp#3)", "Join", ...
  uint64_t rows = 0;
  uint64_t bytes = 0;  // Byte size of the operator's output tuples.
  uint64_t batches = 0;  // ColumnBatches produced (vectorized mode only).
  sim::SimTime total_ns = 0;
  uint64_t invocations = 1;  // > 1 after merging fragment profiles.
  std::vector<OperatorProfile> children;
};

/// Sums `from` into `into` node by node. The trees must have the same
/// shape (fragment-local plans of one part are structurally identical);
/// mismatched shapes merge the common prefix and keep `into`'s labels.
void MergeProfile(OperatorProfile* into, const OperatorProfile& from);

/// Renders the tree as indented text lines:
///   Join rows=12 bytes=480 total=1.234ms self=0.200ms x4
void RenderProfile(const OperatorProfile& profile, int indent,
                   std::vector<std::string>* lines);

/// Formats virtual ns compactly and deterministically (integer math):
/// "875ns", "12.345us", "3.210ms", "1.500s".
std::string FormatNs(sim::SimTime ns);

}  // namespace prisma::obs

#endif  // PRISMA_OBS_QUERY_PROFILE_H_
