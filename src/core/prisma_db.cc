#include "core/prisma_db.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "gdh/messages.h"

namespace prisma::core {

/// The client endpoint: a POOL-X process through which sessions submit
/// statements and receive replies. One shared instance multiplexes all
/// outstanding requests by id.
class PrismaDb::ClientProcess : public pool::Process {
 public:
  explicit ClientProcess(pool::ProcessId* gdh_pid) : gdh_pid_(gdh_pid) {}

  std::string debug_name() const override { return "client"; }

  // Handler contract (D5): the client shim consumes only statement replies.
  // PRISMA_HANDLES(kMailClientReply)
  void OnMail(const pool::Mail& mail) override {
    if (mail.kind != gdh::kMailClientReply) return;
    auto reply = std::any_cast<std::shared_ptr<gdh::ClientReply>>(mail.body);
    auto it = pending_->find(reply->request_id);
    if (it == pending_->end()) return;
    Pending pending = std::move(it->second);
    pending_->erase(it);
    pending.callback(*reply,
                     runtime()->simulator()->now() - pending.submitted_at);
  }

  /// Called from outside the simulation: registers the request and sends
  /// the statement to the GDH at the current instant. This runs on the
  /// control plane (no handler active), so the ownership check passes.
  void SubmitNow(uint64_t id, std::shared_ptr<gdh::ClientStatement> statement,
                 ReplyCallback callback) {
    (*pending_)[id] =
        Pending{runtime()->simulator()->now(), std::move(callback)};
    pool::Mail mail;
    mail.from = self();
    mail.to = *gdh_pid_;
    mail.kind = gdh::kMailClientStatement;
    mail.size_bits =
        gdh::kControlBits + static_cast<int64_t>(statement->text.size()) * 8;
    mail.body = std::move(statement);
    runtime()->Send(std::move(mail));
  }

 private:
  struct Pending {
    sim::SimTime submitted_at = 0;
    ReplyCallback callback;
  };
  pool::ProcessId* gdh_pid_;
  // Process-local state wrapped in the ownership checker (pool/owned.h).
  pool::Owned<std::map<uint64_t, Pending>> pending_;
};

net::Topology PrismaDb::MakeTopology(const MachineConfig& config) {
  const int n = config.pes;
  switch (config.topology) {
    case TopologyKind::kMesh:
    case TopologyKind::kTorus: {
      // Most square factorization of n.
      int rows = static_cast<int>(std::sqrt(static_cast<double>(n)));
      while (rows > 1 && n % rows != 0) --rows;
      const int cols = n / rows;
      return config.topology == TopologyKind::kMesh
                 ? net::Topology::Mesh(rows, cols)
                 : net::Topology::Torus(rows, cols);
    }
    case TopologyKind::kChordalRing:
      return net::Topology::ChordalRing(n, config.chord);
    case TopologyKind::kRing:
      return net::Topology::Ring(n);
    case TopologyKind::kFullyConnected:
      return net::Topology::FullyConnected(n);
  }
  return net::Topology::Mesh(1, n);
}

PrismaDb::PrismaDb(MachineConfig config)
    : config_(std::move(config)), plan_cache_(config_.plan_cache_capacity) {
  PRISMA_CHECK(config_.pes >= 1);
  tracer_.set_enabled(config_.enable_tracing);
  plan_cache_.AttachMetrics(&metrics_);
  network_ = std::make_unique<net::Network>(&sim_, MakeTopology(config_),
                                            config_.link);
  network_->AttachObservability(&metrics_, &tracer_);
  const bool faults = config_.fault_plan.active() ||
                      !config_.fault_plan.pe_crashes.empty();
  if (faults) {
    network_->SetFaultPlan(config_.fault_plan);
  }
  runtime_ =
      std::make_unique<pool::Runtime>(&sim_, network_.get(), config_.costs);
  runtime_->AttachObservability(&metrics_, &tracer_);

  const int n = network_->topology().num_nodes();
  for (int pe = 0; pe < n; ++pe) {
    memory_.push_back(
        std::make_unique<storage::MemoryTracker>(config_.pe_memory_bytes));
    stable_.push_back(std::make_unique<storage::StableStore>(config_.disk));
  }

  gdh::GdhProcess::Config gdh_config;
  // The GDH lives on PE 0; fragments prefer the other PEs, coordinators
  // use every PE ("possibly running at its own processor", §2.2).
  for (int pe = (n > 1 ? 1 : 0); pe < n; ++pe) {
    gdh_config.fragment_pes.push_back(pe);
  }
  if (config_.coordinator_pes.empty()) {
    for (int pe = 0; pe < n; ++pe) gdh_config.coordinator_pes.push_back(pe);
  } else {
    for (int pe : config_.coordinator_pes) {
      PRISMA_CHECK(pe >= 0 && pe < n);
      gdh_config.coordinator_pes.push_back(pe);
    }
  }
  for (int pe = 0; pe < n; ++pe) {
    gdh_config.resources[pe] = gdh::GdhProcess::PeResources{
        memory_[pe].get(), stable_[pe].get()};
  }
  gdh_config.replicate_fragments = config_.replicate_fragments;
  PRISMA_CHECK(!config_.replicate_fragments ||
               gdh_config.fragment_pes.size() >= 2);
  gdh_config.costs = config_.costs;
  gdh_config.rules = config_.rules;
  gdh_config.expr_mode = config_.expr_mode;
  gdh_config.exec_mode = config_.exec_mode;
  gdh_config.base_ofm_type = config_.base_ofm_type;
  gdh_config.placement = config_.placement;
  gdh_config.registry = &registry_;
  gdh_config.plan_cache = &plan_cache_;
  // Auto timeouts (see MachineConfig): effectively silent when fault-free,
  // snappy when messages can actually be lost.
  gdh_config.rpc_timeout_ns =
      config_.rpc_timeout_ns > 0
          ? config_.rpc_timeout_ns
          : (faults ? 250 * sim::kNanosPerMilli : 10 * sim::kNanosPerSecond);
  gdh_config.rpc_backoff_cap_ns =
      config_.rpc_backoff_cap_ns > 0
          ? config_.rpc_backoff_cap_ns
          : (faults ? 2 * sim::kNanosPerSecond : 10 * sim::kNanosPerSecond);
  gdh_config.rpc_attempts = config_.rpc_attempts;
  gdh_config.query_timeout_ns = config_.query_timeout_ns;
  gdh_config.exchange_batch_rows = config_.exchange_batch_rows;
  gdh_config.exchange_credit_window = config_.exchange_credit_window;
  gdh_config.distributed_fixpoint = config_.distributed_fixpoint;
  gdh_config.fixpoint_algorithm = config_.fixpoint_algorithm;
  if (faults) {
    // Under a faulty interconnect the stmt_done report and the
    // coordinator itself can be lost; the resend and supervision timers
    // guarantee statements terminate anyway. They stay off in fault-free
    // runs so behaviour and metrics are unchanged.
    gdh_config.stmt_done_resend_ns = 200 * sim::kNanosPerMilli;
    gdh_config.coord_check_ns = sim::kNanosPerSecond;
  }
  gdh_config.metrics = &metrics_;
  gdh_config.tracer = &tracer_;

  auto gdh = std::make_unique<gdh::GdhProcess>(std::move(gdh_config));
  gdh_ = gdh.get();
  gdh_pid_ = runtime_->Spawn(0, std::move(gdh));

  auto client = std::make_unique<ClientProcess>(&gdh_pid_);
  client_ = client.get();
  client_pid_ = runtime_->Spawn(0, std::move(client));
  if (faults) {
    // The client link models the host interface, not the interconnect:
    // statements and their replies are never faulted (the DBMS-internal
    // traffic they trigger is).
    const pool::ProcessId client_pid = client_pid_;
    network_->SetFaultExempt([client_pid](const net::Message& message) {
      const auto* mail =
          std::any_cast<std::shared_ptr<pool::Mail>>(&message.payload);
      if (mail == nullptr) return false;
      return (*mail)->from == client_pid || (*mail)->to == client_pid;
    });
  }
  sim_.Run();  // Let OnStart handlers settle.
  // Scheduled PE crash/restart events from the fault plan.
  for (const net::PeCrashEvent& event : config_.fault_plan.pe_crashes) {
    PRISMA_CHECK(event.pe != 0);  // PE 0 hosts the GDH and the client.
    PRISMA_CHECK(event.pe < network_->topology().num_nodes());
    sim_.ScheduleAt(event.at_ns, [this, pe = event.pe] { CrashPe(pe); });
    if (event.restart_at_ns >= 0) {
      PRISMA_CHECK(event.restart_at_ns >= event.at_ns);
      sim_.ScheduleAt(event.restart_at_ns, [this, pe = event.pe] {
        PRISMA_CHECK_OK(gdh_->RecoverPe(pe));
      });
    }
  }
}

size_t PrismaDb::CrashPe(net::NodeId pe) {
  PRISMA_CHECK(pe != 0);  // PE 0 hosts the GDH and the client endpoint.
  return runtime_->CrashPe(pe);
}

PrismaDb::~PrismaDb() = default;

std::string PrismaDb::DumpMetrics() {
  // Derived levels are pulled into gauges at dump time rather than being
  // pushed on every change; counters owned by components are already live.
  const int n = network_->topology().num_nodes();
  for (int pe = 0; pe < n; ++pe) {
    metrics_.GetGauge("pe.busy_ns", {{"pe", std::to_string(pe)}})
        ->Set(runtime_->pe_busy_ns(pe));
  }
  metrics_.GetGauge("sim.now_ns")->Set(sim_.now());
  metrics_.GetGauge("sim.events_scheduled")
      ->Set(static_cast<int64_t>(sim_.events_scheduled()));
  metrics_.GetGauge("sim.events_cancelled")
      ->Set(static_cast<int64_t>(sim_.events_cancelled()));
  metrics_.GetGauge("sim.tombstones_pending")
      ->Set(static_cast<int64_t>(sim_.tombstones_pending()));
  const gdh::LockManager& locks = gdh_->locks();
  metrics_.GetGauge("lock.granted")
      ->Set(static_cast<int64_t>(locks.locks_granted()));
  metrics_.GetGauge("lock.waits")->Set(static_cast<int64_t>(locks.waits()));
  metrics_.GetGauge("lock.deadlocks_detected")
      ->Set(static_cast<int64_t>(locks.deadlocks_detected()));
  return metrics_.DumpText();
}

uint64_t PrismaDb::Submit(const std::string& text, bool prismalog,
                          exec::TxnId txn, ReplyCallback callback,
                          sim::SimTime delay,
                          std::optional<exec::ExecMode> mode) {
  const uint64_t id = next_request_id_++;
  auto statement = std::make_shared<gdh::ClientStatement>();
  statement->request_id = id;
  statement->text = text;
  statement->is_prismalog = prismalog;
  statement->txn = txn;
  statement->exec_mode = mode;
  sim_.Schedule(delay, [this, id, statement = std::move(statement),
                        callback = std::move(callback)]() mutable {
    client_->SubmitNow(id, std::move(statement), std::move(callback));
  });
  return id;
}

StatusOr<QueryResult> PrismaDb::ExecuteInternal(
    const std::string& text, bool prismalog, exec::TxnId txn,
    std::optional<exec::ExecMode> mode) {
  bool got_reply = false;
  QueryResult result;
  Status status;
  Submit(text, prismalog, txn,
         [&](const gdh::ClientReply& reply, sim::SimTime response_ns) {
           got_reply = true;
           status = reply.status;
           result.schema = reply.schema;
           if (reply.tuples != nullptr) result.tuples = *reply.tuples;
           result.affected_rows = reply.affected_rows;
           result.txn = reply.txn;
           result.response_time_ns = response_ns;
         },
         /*delay=*/0, mode);
  sim_.Run();
  if (!got_reply) {
    return InternalError("statement produced no reply: " + text);
  }
  RETURN_IF_ERROR(status);
  return result;
}

StatusOr<QueryResult> PrismaDb::Execute(const std::string& sql) {
  return ExecuteInternal(sql, /*prismalog=*/false, exec::kAutoCommit);
}

StatusOr<QueryResult> PrismaDb::Execute(const std::string& sql,
                                        exec::ExecMode mode) {
  return ExecuteInternal(sql, /*prismalog=*/false, exec::kAutoCommit, mode);
}

StatusOr<QueryResult> PrismaDb::ExecutePrismalog(const std::string& program) {
  return ExecuteInternal(program, /*prismalog=*/true, exec::kAutoCommit);
}

StatusOr<QueryResult> PrismaDb::ExecutePrismalog(const std::string& program,
                                                 exec::ExecMode mode) {
  return ExecuteInternal(program, /*prismalog=*/true, exec::kAutoCommit, mode);
}

StatusOr<QueryResult> PrismaDb::Session::Execute(const std::string& sql) {
  auto result = db_->ExecuteInternal(sql, /*prismalog=*/false, txn_);
  if (result.ok() && result->txn != exec::kAutoCommit) {
    txn_ = result->txn;  // BEGIN handed us a transaction.
  }
  // COMMIT/ABORT (and deadlock aborts) end the session transaction.
  if (txn_ != exec::kAutoCommit) {
    const std::string upper = AsciiLower(std::string(StripWhitespace(sql)));
    if (upper.rfind("commit", 0) == 0 || upper.rfind("abort", 0) == 0 ||
        upper.rfind("rollback", 0) == 0) {
      txn_ = exec::kAutoCommit;
    } else if (!result.ok() &&
               result.status().code() == StatusCode::kAborted) {
      txn_ = exec::kAutoCommit;  // Deadlock victim: transaction is gone.
    }
  }
  return result;
}

}  // namespace prisma::core
