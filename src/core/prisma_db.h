#ifndef PRISMA_CORE_PRISMA_DB_H_
#define PRISMA_CORE_PRISMA_DB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "exec/executor.h"
#include "exec/ofm.h"
#include "exec/transitive_closure.h"
#include "gdh/gdh_process.h"
#include "net/network.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pool/runtime.h"
#include "sim/simulator.h"
#include "storage/memory_tracker.h"
#include "storage/stable_store.h"

namespace prisma::core {

/// Interconnect families supported by the machine (§3.2: "mesh-like or a
/// variant of a chordal ring").
enum class TopologyKind : uint8_t {
  kMesh,
  kTorus,
  kChordalRing,
  kRing,
  kFullyConnected,
};

/// Configuration of one simulated PRISMA machine. The defaults are the
/// paper's prototype: 64 PEs, 16 MB each, 10 Mbit/s links, mesh topology.
struct MachineConfig {
  int pes = 64;
  TopologyKind topology = TopologyKind::kMesh;
  /// Chord stride for kChordalRing.
  int chord = 8;
  net::LinkParams link;
  pool::CostModel costs;
  gdh::OptimizerRules rules;
  exec::ExprMode expr_mode = exec::ExprMode::kCompiled;
  /// Machine-default execution mode. kVectorized runs plans over
  /// ColumnBatches and column-encodes exchange frames (DESIGN.md §12);
  /// results are equivalent to kRow (tests/vectorized_diff_test.cc).
  exec::ExecMode exec_mode = exec::ExecMode::kRow;
  exec::OfmType base_ofm_type = exec::OfmType::kFull;
  gdh::PlacementPolicy placement = gdh::PlacementPolicy::kAligned;
  /// Place every permanent fragment on two distinct PEs (primary home +
  /// backup), route writes to both through 2PC, and fail reads over to the
  /// surviving replica when one PE is down (DESIGN.md §13). Requires at
  /// least two fragment PEs; kFull base OFMs only.
  bool replicate_fragments = false;
  /// PEs eligible to host query coordinators. Empty = every PE. Pinning
  /// coordinators to PE 0 (which never crashes) isolates replica-failover
  /// behaviour from coordinator loss in availability experiments.
  std::vector<int> coordinator_pes;
  storage::DiskModel disk;
  size_t pe_memory_bytes = storage::kDefaultPeMemoryBytes;
  /// GDH<->OFM request retransmission: first resend delay, backoff cap
  /// and total attempts before an operation degrades to kUnavailable.
  /// 0 = auto: a fault-free machine uses 10 s (WAL and checkpoint flushes
  /// cost tens of virtual milliseconds, so an aggressive timer would
  /// retransmit spuriously; 10 s never fires in practice and preserves
  /// pre-retransmission behaviour), while a machine with an active fault
  /// plan uses 250 ms / 2 s so lost messages are recovered promptly.
  sim::SimTime rpc_timeout_ns = 0;
  sim::SimTime rpc_backoff_cap_ns = 0;
  int rpc_attempts = 6;
  sim::SimTime query_timeout_ns = 30 * sim::kNanosPerSecond;
  /// Streaming exchange framing (DESIGN.md §10): max tuples per batch of
  /// a shuffle channel, and batches in flight per channel before the
  /// producer stalls on acks.
  uint64_t exchange_batch_rows = 64;
  uint64_t exchange_credit_window = 4;
  /// Evaluate PRISMAlog linear recursion over a fragmented edge relation
  /// as a distributed semi-naive fixpoint (DESIGN.md §11) instead of
  /// gathering the edges to the coordinator. `fixpoint_algorithm` picks
  /// the per-round join strategy of the partitions.
  bool distributed_fixpoint = true;
  exec::TcAlgorithm fixpoint_algorithm = exec::TcAlgorithm::kSeminaive;
  /// Entry bound of the machine-wide shared plan cache (DESIGN.md §15.4):
  /// repeated parameterized SELECTs skip parse/bind/optimize/split and
  /// reuse the cached DistributedPlan. 0 disables the cache (every
  /// statement planned from scratch — the PR-9 behaviour).
  size_t plan_cache_capacity = 256;
  /// Deterministic fault injection (message drops/duplicates/jitter, link
  /// outages, PE crash/restart schedule). An inert (default) plan leaves
  /// the machine's behaviour and metrics byte-identical to a build without
  /// fault injection. When the plan is active, the statement-done and
  /// coordinator supervision timers are enabled automatically so every
  /// statement still terminates under message loss.
  net::FaultPlan fault_plan;
  /// Record virtual-time spans/events for DumpTrace. Off by default:
  /// long soaks would otherwise accumulate unbounded event buffers.
  bool enable_tracing = false;
};

/// Result of one statement.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> tuples;
  uint64_t affected_rows = 0;
  /// Transaction id (BEGIN statements).
  exec::TxnId txn = exec::kAutoCommit;
  /// Virtual time from submission to the client receiving the reply.
  sim::SimTime response_time_ns = 0;
};

/// The PRISMA database machine: a 64-PE (configurable) multi-computer in
/// a discrete-event simulation, running the Global Data Handler plus
/// One-Fragment Managers as POOL-X processes, with SQL and PRISMAlog
/// interfaces (§2.2).
///
/// Synchronous calls (Execute/ExecutePrismalog and Session::Execute) run
/// the simulation until the statement's reply arrives. The asynchronous
/// Submit/Run pair drives multi-client experiments; all timings are in
/// virtual nanoseconds and deterministic.
class PrismaDb {
 public:
  explicit PrismaDb(MachineConfig config = MachineConfig());
  ~PrismaDb();

  PrismaDb(const PrismaDb&) = delete;
  PrismaDb& operator=(const PrismaDb&) = delete;

  // ------------------------------------------------------ Synchronous API

  /// Executes one auto-commit SQL statement.
  StatusOr<QueryResult> Execute(const std::string& sql);

  /// Executes one auto-commit SQL statement under an explicit execution
  /// mode, overriding MachineConfig::exec_mode for this statement only.
  StatusOr<QueryResult> Execute(const std::string& sql, exec::ExecMode mode);

  /// Evaluates a PRISMAlog program ending in a query.
  StatusOr<QueryResult> ExecutePrismalog(const std::string& program);

  /// PRISMAlog with an explicit per-statement execution mode.
  StatusOr<QueryResult> ExecutePrismalog(const std::string& program,
                                         exec::ExecMode mode);

  /// A session carries an explicit transaction across statements:
  /// BEGIN binds it, COMMIT/ABORT clears it.
  class Session {
   public:
    StatusOr<QueryResult> Execute(const std::string& sql);
    exec::TxnId txn() const { return txn_; }
    bool in_transaction() const { return txn_ != exec::kAutoCommit; }

   private:
    friend class PrismaDb;
    explicit Session(PrismaDb* db) : db_(db) {}
    PrismaDb* db_;
    exec::TxnId txn_ = exec::kAutoCommit;
  };
  Session OpenSession() { return Session(this); }

  // ----------------------------------------------------- Asynchronous API

  using ReplyCallback = std::function<void(const gdh::ClientReply&,
                                           sim::SimTime response_ns)>;

  /// Schedules a statement submission `delay` virtual ns from now; the
  /// callback fires when the reply reaches the client process. `mode`
  /// overrides the machine's execution mode for this statement.
  uint64_t Submit(const std::string& text, bool prismalog, exec::TxnId txn,
                  ReplyCallback callback, sim::SimTime delay = 0,
                  std::optional<exec::ExecMode> mode = std::nullopt);

  /// Runs the simulation until the event queue drains.
  void Run() { sim_.Run(); }

  // -------------------------------------------------------- Control plane

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *network_; }
  pool::Runtime& runtime() { return *runtime_; }
  // Control-plane accessor for tests/benches, called between simulation
  // events only — never from a process handler.
  // prisma-lint: cross-process - harness-side accessor, not handler state
  gdh::GdhProcess& gdh() { return *gdh_; }
  const MachineConfig& config() const { return config_; }

  // -------------------------------------------------------- Observability

  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  /// Machine-wide shared plan cache (control-plane view: hit/miss/epoch
  /// counters for benches and tests).
  gdh::PlanCache& plan_cache() { return plan_cache_; }

  /// Text dump of every metric, after syncing derived gauges (per-PE busy
  /// time, simulator event counts, lock-manager counters). Byte-identical
  /// across same-seed runs.
  std::string DumpMetrics();

  /// Chrome trace_event JSON of everything recorded so far (empty trace
  /// unless MachineConfig::enable_tracing or tracer().set_enabled(true)).
  std::string DumpTrace() const { return tracer_.DumpJson(); }

  /// Kills / restores one fragment's OFM (failure injection).
  Status CrashFragment(const std::string& table, int fragment) {
    return gdh_->CrashFragment(table, fragment);
  }
  Status RecoverFragment(const std::string& table, int fragment) {
    return gdh_->RecoverFragment(table, fragment);
  }

  /// Kills every process on `pe` (fragment managers AND query
  /// coordinators) — a whole-PE crash. PE 0 hosts the GDH and the client
  /// endpoint and must not be crashed. Returns the victim count.
  size_t CrashPe(net::NodeId pe);
  /// Restarts `pe`: respawns its dead fragment managers, which recover
  /// from the PE's stable store and resolve in-doubt transactions with
  /// the GDH.
  Status RecoverPe(net::NodeId pe) { return gdh_->RecoverPe(pe); }

  /// Per-PE CPU busy time and stable stores, for reporting.
  sim::SimTime PeBusyNs(net::NodeId pe) const {
    return runtime_->pe_busy_ns(pe);
  }
  storage::StableStore& stable_store(net::NodeId pe) {
    return *stable_[pe];
  }
  storage::MemoryTracker& memory_tracker(net::NodeId pe) {
    return *memory_[pe];
  }

 private:
  class ClientProcess;

  static net::Topology MakeTopology(const MachineConfig& config);

  /// Blocks (runs the simulation) until request `id` completes.
  StatusOr<QueryResult> Await(uint64_t id);
  StatusOr<QueryResult> ExecuteInternal(
      const std::string& text, bool prismalog, exec::TxnId txn,
      std::optional<exec::ExecMode> mode = std::nullopt);

  MachineConfig config_;
  sim::Simulator sim_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  // Declaration order matters: the runtime's processes (OFMs) release
  // memory into the trackers, touch stable stores and unregister from the
  // fragment registry on destruction, so all of these must outlive
  // runtime_.
  std::vector<std::unique_ptr<storage::MemoryTracker>> memory_;
  std::vector<std::unique_ptr<storage::StableStore>> stable_;
  gdh::PeLocalRegistry registry_;
  /// Machine-level shared structure like registry_: probed/filled by
  /// query coordinators, invalidated by the GDH (DESIGN.md §15.4).
  gdh::PlanCache plan_cache_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<pool::Runtime> runtime_;
  // PrismaDb is the simulation harness, not a POOL-X process; it drives
  // the GDH between events and owns the machine the processes live in.
  // prisma-lint: cross-process - harness owns the runtime, shares no events
  gdh::GdhProcess* gdh_ = nullptr;  // Owned by the runtime.
  ClientProcess* client_ = nullptr;  // Owned by the runtime.
  pool::ProcessId gdh_pid_ = pool::kNoProcess;
  pool::ProcessId client_pid_ = pool::kNoProcess;
  uint64_t next_request_id_ = 1;
};

}  // namespace prisma::core

#endif  // PRISMA_CORE_PRISMA_DB_H_
