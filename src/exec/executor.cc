#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <utility>

#include "common/logging.h"
#include "exec/expr_eval.h"
#include "exec/join.h"
#include "exec/transitive_closure.h"

namespace prisma::exec {

using algebra::AggFunc;
using algebra::AggregatePlan;
using algebra::JoinPlan;
using algebra::LimitPlan;
using algebra::Plan;
using algebra::PlanKind;
using algebra::ProjectPlan;
using algebra::ScanPlan;
using algebra::SelectPlan;
using algebra::SortPlan;
using algebra::ValuesPlan;

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kRow:
      return "row";
    case ExecMode::kVectorized:
      return "vectorized";
  }
  return "?";
}

StatusOr<const storage::Relation*> MapTableResolver::Resolve(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return NotFoundError("no resident relation named " + table);
  }
  return it->second;
}

const storage::HashIndex* MapTableResolver::FindHashIndex(
    const std::string& table, const std::vector<size_t>& columns) const {
  auto it = hash_indexes_.find(table);
  if (it == hash_indexes_.end()) return nullptr;
  for (const storage::HashIndex* index : it->second) {
    if (index->key_columns() == columns) return index;
  }
  return nullptr;
}

const storage::BTreeIndex* MapTableResolver::FindBTreeIndex(
    const std::string& table, const std::vector<size_t>& columns) const {
  auto it = btree_indexes_.find(table);
  if (it == btree_indexes_.end()) return nullptr;
  for (const storage::BTreeIndex* index : it->second) {
    if (index->key_columns() == columns) return index;
  }
  return nullptr;
}

// ------------------------------------------------------------ PreparedExpr

StatusOr<Executor::PreparedExpr> Executor::PreparedExpr::Make(
    const algebra::Expr& expr, const ExecOptions& options) {
  PreparedExpr p;
  if (options.expr_mode == ExprMode::kCompiled) {
    ASSIGN_OR_RETURN(CompiledExpr compiled, CompileExpr(expr));
    p.compiled_ = std::make_shared<CompiledExpr>(std::move(compiled));
    p.cost_ns_ = static_cast<sim::SimTime>(p.compiled_->num_instructions()) *
                 options.costs.compiled_instr_ns;
    p.vrow_cost_ns_ =
        static_cast<sim::SimTime>(p.compiled_->num_instructions()) *
        options.costs.vector_instr_ns;
    p.vbatch_cost_ns_ =
        static_cast<sim::SimTime>(p.compiled_->num_instructions()) *
        options.costs.vector_batch_ns;
  } else {
    p.interpreted_ = &expr;
    p.cost_ns_ = static_cast<sim::SimTime>(expr.TreeSize()) *
                 options.costs.interpreted_node_ns;
  }
  return p;
}

StatusOr<Value> Executor::PreparedExpr::Eval(const Tuple& tuple) const {
  if (compiled_ != nullptr) return compiled_->Eval(tuple);
  return EvalExpr(*interpreted_, tuple);
}

StatusOr<bool> Executor::PreparedExpr::EvalPredicate(const Tuple& tuple) const {
  if (compiled_ != nullptr) return compiled_->EvalPredicate(tuple);
  return exec::EvalPredicate(*interpreted_, tuple);
}

StatusOr<ColumnBatch::Column> Executor::PreparedExpr::EvalBatch(
    const ColumnBatch& batch) const {
  if (compiled_ == nullptr) {
    return InternalError("vectorized evaluation requires compiled mode");
  }
  return compiled_->EvalBatch(batch);
}

Status Executor::PreparedExpr::EvalPredicateBatch(
    const ColumnBatch& batch, std::vector<uint8_t>* keep) const {
  if (compiled_ == nullptr) {
    return InternalError("vectorized evaluation requires compiled mode");
  }
  return compiled_->EvalPredicateBatch(batch, keep);
}

// ---------------------------------------------------------------- Executor

Executor::Executor(const TableResolver* resolver, ExecOptions options)
    : resolver_(resolver), options_(std::move(options)) {
  vectorized_ = options_.exec_mode == ExecMode::kVectorized &&
                options_.expr_mode == ExprMode::kCompiled;
}

void Executor::Charge(sim::SimTime ns) {
  stats_.charged_ns += ns;
  if (options_.charge) options_.charge(ns);
}

namespace {

std::vector<Tuple> FlattenBatches(const std::vector<ColumnBatch>& batches) {
  size_t total = 0;
  for (const ColumnBatch& b : batches) total += b.num_rows();
  std::vector<Tuple> out;
  out.reserve(total);
  for (const ColumnBatch& b : batches) {
    for (size_t r = 0; r < b.num_rows(); ++r) out.push_back(b.RowAt(r));
  }
  return out;
}

}  // namespace

StatusOr<std::vector<Tuple>> Executor::Execute(const Plan& plan) {
  profile_root_.reset();
  std::vector<Tuple> out;
  if (vectorized_) {
    ASSIGN_OR_RETURN(std::vector<ColumnBatch> batches, RunBatches(plan));
    out = FlattenBatches(batches);
  } else {
    ASSIGN_OR_RETURN(out, Run(plan));
  }
  stats_.tuples_output = out.size();
  return out;
}

namespace {

/// Only expensive nodes are worth memoizing under the subtree cache.
bool CacheableKind(PlanKind kind) {
  switch (kind) {
    case PlanKind::kJoin:
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kTransitiveClosure:
      return true;
    default:
      return false;
  }
}

}  // namespace

namespace {

/// Display label of a plan node in profiles ("Scan(emp#3)", "Join", ...).
std::string OperatorLabel(const Plan& plan) {
  std::string label = PlanKindName(plan.kind());
  if (plan.kind() == PlanKind::kScan) {
    label += '(';
    label += static_cast<const ScanPlan&>(plan).table();
    label += ')';
  }
  return label;
}

}  // namespace

StatusOr<std::vector<Tuple>> Executor::Run(const Plan& plan) {
  if (!options_.profile) return RunCached(plan);
  // Build this operator's profile node around the actual execution; the
  // charged-ns delta is inclusive of children (renderers derive self time).
  obs::OperatorProfile node;
  node.op = OperatorLabel(plan);
  obs::OperatorProfile* parent = current_profile_;
  current_profile_ = &node;
  const sim::SimTime before_ns = stats_.charged_ns;
  auto result = RunCached(plan);
  current_profile_ = parent;
  node.total_ns = stats_.charged_ns - before_ns;
  if (result.ok()) {
    node.rows = result->size();
    for (const Tuple& t : *result) {
      node.bytes += static_cast<uint64_t>(t.ByteSize());
    }
  }
  if (parent != nullptr) {
    parent->children.push_back(std::move(node));
  } else {
    profile_root_ = std::move(node);
  }
  return result;
}

StatusOr<std::vector<Tuple>> Executor::RunCached(const Plan& plan) {
  if (options_.enable_subtree_cache && CacheableKind(plan.kind())) {
    const std::string key = plan.ToString();
    auto it = subtree_cache_.find(key);
    if (it != subtree_cache_.end()) {
      ++stats_.subtree_cache_hits;
      return it->second;
    }
    ASSIGN_OR_RETURN(std::vector<Tuple> out, RunUncached(plan));
    subtree_cache_[key] = out;
    return out;
  }
  return RunUncached(plan);
}

StatusOr<std::vector<Tuple>> Executor::RunUncached(const Plan& plan) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return RunScan(static_cast<const ScanPlan&>(plan));
    case PlanKind::kValues:
      return static_cast<const ValuesPlan&>(plan).rows();
    case PlanKind::kSelect:
      return RunSelect(static_cast<const SelectPlan&>(plan));
    case PlanKind::kProject:
      return RunProject(static_cast<const ProjectPlan&>(plan));
    case PlanKind::kJoin:
      return RunJoin(static_cast<const JoinPlan&>(plan));
    case PlanKind::kUnion:
      return RunUnion(plan);
    case PlanKind::kDifference:
      return RunDifference(plan);
    case PlanKind::kDistinct:
      return RunDistinct(plan);
    case PlanKind::kAggregate:
      return RunAggregate(static_cast<const AggregatePlan&>(plan));
    case PlanKind::kSort:
      return RunSort(static_cast<const SortPlan&>(plan));
    case PlanKind::kLimit:
      return RunLimit(static_cast<const LimitPlan&>(plan));
    case PlanKind::kTransitiveClosure:
      return RunTransitiveClosure(plan);
    case PlanKind::kExchange:
      // Repartitioning is a mail-layer affair (DESIGN.md §10); within one
      // local executor an Exchange moves nothing and is a pass-through.
      return RunCached(*plan.child());
    case PlanKind::kFixpoint:
      // Degenerate single-node form of the distributed fixpoint
      // (DESIGN.md §11): with every partition local, the rounds collapse
      // to the in-memory closure operator.
      return RunTransitiveClosure(plan);
  }
  return InternalError("corrupt plan kind");
}

StatusOr<std::vector<Tuple>> Executor::RunScan(const ScanPlan& plan) {
  ASSIGN_OR_RETURN(const storage::Relation* rel,
                   resolver_->Resolve(plan.table()));
  std::vector<Tuple> out = rel->AllTuples();
  stats_.tuples_scanned += out.size();
  Charge(static_cast<sim::SimTime>(out.size()) * options_.costs.tuple_ns);
  return out;
}

namespace {

/// A per-column restriction extracted from a conjunct: column OP literal.
struct ColumnBound {
  size_t column;
  algebra::BinaryOp op;
  Value literal;
};

/// Matches `conjunct` as (ColumnRef OP Literal) or (Literal OP ColumnRef),
/// normalizing so the column is on the left.
std::optional<ColumnBound> MatchColumnBound(const algebra::Expr& conjunct) {
  if (conjunct.kind() != algebra::ExprKind::kBinary) return std::nullopt;
  algebra::BinaryOp op = conjunct.binary_op();
  const algebra::Expr* l = conjunct.left();
  const algebra::Expr* r = conjunct.right();
  if (l->kind() == algebra::ExprKind::kLiteral &&
      r->kind() == algebra::ExprKind::kColumnRef) {
    std::swap(l, r);
    switch (op) {  // Mirror the comparison.
      case algebra::BinaryOp::kLt: op = algebra::BinaryOp::kGt; break;
      case algebra::BinaryOp::kLe: op = algebra::BinaryOp::kGe; break;
      case algebra::BinaryOp::kGt: op = algebra::BinaryOp::kLt; break;
      case algebra::BinaryOp::kGe: op = algebra::BinaryOp::kLe; break;
      default: break;
    }
  }
  if (l->kind() != algebra::ExprKind::kColumnRef || !l->bound() ||
      r->kind() != algebra::ExprKind::kLiteral) {
    return std::nullopt;
  }
  switch (op) {
    case algebra::BinaryOp::kEq:
    case algebra::BinaryOp::kLt:
    case algebra::BinaryOp::kLe:
    case algebra::BinaryOp::kGt:
    case algebra::BinaryOp::kGe:
      return ColumnBound{l->column_index(), op, r->literal()};
    default:
      return std::nullopt;
  }
}

}  // namespace

StatusOr<std::optional<std::vector<Tuple>>> Executor::TryIndexSelect(
    const SelectPlan& plan) {
  if (plan.child()->kind() != PlanKind::kScan) return std::optional<std::vector<Tuple>>();
  const auto& scan = static_cast<const ScanPlan&>(*plan.child());
  ASSIGN_OR_RETURN(const storage::Relation* rel,
                   resolver_->Resolve(scan.table()));

  std::vector<ColumnBound> bounds;
  for (const auto& conjunct : algebra::SplitConjuncts(plan.predicate())) {
    auto bound = MatchColumnBound(*conjunct);
    if (bound.has_value()) bounds.push_back(std::move(*bound));
  }

  ASSIGN_OR_RETURN(PreparedExpr pred,
                   PreparedExpr::Make(plan.predicate(), options_));
  // Candidate rows are re-checked against the *full* predicate, so the
  // access path only needs to be a superset of the answer.
  auto filter_rows =
      [&](const std::vector<storage::RowId>& rows)
      -> StatusOr<std::vector<Tuple>> {
    std::vector<Tuple> out;
    for (const storage::RowId row : rows) {
      auto tuple = rel->Get(row);
      if (!tuple.ok()) continue;  // Row vanished (not possible locally).
      ASSIGN_OR_RETURN(bool keep, pred.EvalPredicate(*tuple));
      ++stats_.expr_evaluations;
      if (keep) out.push_back(std::move(*tuple));
    }
    Charge(static_cast<sim::SimTime>(rows.size()) *
           (options_.costs.hash_ns + pred.cost_ns()));
    return out;
  };

  // Equality on a hash-indexed column: probe.
  for (const ColumnBound& bound : bounds) {
    if (bound.op != algebra::BinaryOp::kEq) continue;
    const storage::HashIndex* hash =
        resolver_->FindHashIndex(scan.table(), {bound.column});
    if (hash == nullptr) continue;
    ++stats_.index_selections;
    ASSIGN_OR_RETURN(std::vector<Tuple> out,
                     filter_rows(hash->Probe(Tuple({bound.literal}))));
    return std::optional<std::vector<Tuple>>(std::move(out));
  }

  // Range (or equality) on an ordered-indexed column: bounded scan.
  for (const ColumnBound& first : bounds) {
    const storage::BTreeIndex* btree =
        resolver_->FindBTreeIndex(scan.table(), {first.column});
    if (btree == nullptr) continue;
    // Combine every bound on this column into one [lo, hi] window.
    std::optional<Tuple> lo;
    std::optional<Tuple> hi;
    bool lo_inclusive = true;
    bool hi_inclusive = true;
    auto tighten_lo = [&](const Value& v, bool inclusive) {
      Tuple key({v});
      if (!lo || key.Compare(*lo) > 0 ||
          (key.Compare(*lo) == 0 && !inclusive)) {
        lo = std::move(key);
        lo_inclusive = inclusive;
      }
    };
    auto tighten_hi = [&](const Value& v, bool inclusive) {
      Tuple key({v});
      if (!hi || key.Compare(*hi) < 0 ||
          (key.Compare(*hi) == 0 && !inclusive)) {
        hi = std::move(key);
        hi_inclusive = inclusive;
      }
    };
    for (const ColumnBound& bound : bounds) {
      if (bound.column != first.column) continue;
      switch (bound.op) {
        case algebra::BinaryOp::kEq:
          tighten_lo(bound.literal, true);
          tighten_hi(bound.literal, true);
          break;
        case algebra::BinaryOp::kGt:
          tighten_lo(bound.literal, false);
          break;
        case algebra::BinaryOp::kGe:
          tighten_lo(bound.literal, true);
          break;
        case algebra::BinaryOp::kLt:
          tighten_hi(bound.literal, false);
          break;
        case algebra::BinaryOp::kLe:
          tighten_hi(bound.literal, true);
          break;
        default:
          break;
      }
    }
    if (!lo && !hi) continue;  // No usable window on this column.
    ++stats_.index_selections;
    std::vector<storage::RowId> rows;
    btree->ScanRange(lo, lo_inclusive, hi, hi_inclusive,
                     [&](const Tuple&, storage::RowId row) {
                       rows.push_back(row);
                       return true;
                     });
    Charge(static_cast<sim::SimTime>(rows.size()) * options_.costs.compare_ns);
    ASSIGN_OR_RETURN(std::vector<Tuple> out, filter_rows(rows));
    return std::optional<std::vector<Tuple>>(std::move(out));
  }
  return std::optional<std::vector<Tuple>>();
}

StatusOr<std::vector<Tuple>> Executor::RunSelect(const SelectPlan& plan) {
  // Local access-path selection (§2.5): try an index before scanning.
  ASSIGN_OR_RETURN(std::optional<std::vector<Tuple>> via_index,
                   TryIndexSelect(plan));
  if (via_index.has_value()) return std::move(*via_index);

  ASSIGN_OR_RETURN(std::vector<Tuple> in, RunChildRows(*plan.child()));
  ASSIGN_OR_RETURN(PreparedExpr pred,
                   PreparedExpr::Make(plan.predicate(), options_));
  std::vector<Tuple> out;
  for (Tuple& t : in) {
    ASSIGN_OR_RETURN(bool keep, pred.EvalPredicate(t));
    ++stats_.expr_evaluations;
    if (keep) out.push_back(std::move(t));
  }
  Charge(static_cast<sim::SimTime>(in.size()) *
         (options_.costs.tuple_ns + pred.cost_ns()));
  return out;
}

StatusOr<std::vector<Tuple>> Executor::RunProject(const ProjectPlan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> in, RunChildRows(*plan.child()));
  std::vector<PreparedExpr> exprs;
  sim::SimTime per_tuple = options_.costs.tuple_ns;
  for (const auto& e : plan.exprs()) {
    ASSIGN_OR_RETURN(PreparedExpr p, PreparedExpr::Make(*e, options_));
    per_tuple += p.cost_ns();
    exprs.push_back(std::move(p));
  }
  std::vector<Tuple> out;
  out.reserve(in.size());
  for (const Tuple& t : in) {
    std::vector<Value> values;
    values.reserve(exprs.size());
    for (const PreparedExpr& e : exprs) {
      ASSIGN_OR_RETURN(Value v, e.Eval(t));
      ++stats_.expr_evaluations;
      values.push_back(std::move(v));
    }
    out.push_back(Tuple(std::move(values)));
  }
  Charge(static_cast<sim::SimTime>(in.size()) * per_tuple);
  return out;
}

StatusOr<std::vector<Tuple>> Executor::RunJoin(const JoinPlan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> left, RunChildRows(*plan.child(0)));
  ASSIGN_OR_RETURN(std::vector<Tuple> right, RunChildRows(*plan.child(1)));

  JoinFilter filter;
  sim::SimTime filter_cost = 0;
  std::optional<PreparedExpr> pred;
  if (plan.predicate() != nullptr) {
    ASSIGN_OR_RETURN(PreparedExpr p,
                     PreparedExpr::Make(*plan.predicate(), options_));
    filter_cost = p.cost_ns();
    pred = std::move(p);
    filter = [this, &pred](const Tuple& t) {
      ++stats_.expr_evaluations;
      return pred->EvalPredicate(t);
    };
  }

  const auto keys = plan.EquiKeys();
  JoinCounters counters;
  StatusOr<std::vector<Tuple>> out =
      keys.empty()
          ? NestedLoopJoin(left, right, filter, &counters)
          : HashJoin(left, right, keys, filter, &counters);
  RETURN_IF_ERROR(out.status());
  Charge(static_cast<sim::SimTime>(counters.hash_ops) *
             options_.costs.hash_ns +
         static_cast<sim::SimTime>(counters.compare_ops) *
             options_.costs.compare_ns +
         static_cast<sim::SimTime>(counters.pairs_examined) *
             (options_.costs.tuple_ns + filter_cost));
  return out;
}

StatusOr<std::vector<Tuple>> Executor::RunUnion(const Plan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> left, RunChildRows(*plan.child(0)));
  ASSIGN_OR_RETURN(std::vector<Tuple> right, RunChildRows(*plan.child(1)));
  Charge(static_cast<sim::SimTime>(right.size()) * options_.costs.tuple_ns);
  for (Tuple& t : right) left.push_back(std::move(t));
  return left;
}

StatusOr<std::vector<Tuple>> Executor::RunDifference(const Plan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> left, RunChildRows(*plan.child(0)));
  ASSIGN_OR_RETURN(std::vector<Tuple> right, RunChildRows(*plan.child(1)));
  // Anti-semi by whole-tuple equality; left duplicates surviving together.
  std::set<Tuple> reject(right.begin(), right.end());
  Charge(static_cast<sim::SimTime>(left.size() + right.size()) *
         options_.costs.hash_ns);
  std::vector<Tuple> out;
  for (Tuple& t : left) {
    if (!reject.contains(t)) out.push_back(std::move(t));
  }
  return out;
}

StatusOr<std::vector<Tuple>> Executor::RunDistinct(const Plan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> in, RunChildRows(*plan.child()));
  Charge(static_cast<sim::SimTime>(in.size()) * options_.costs.hash_ns);
  std::set<Tuple> seen;
  std::vector<Tuple> out;
  for (Tuple& t : in) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  return out;
}

namespace {

/// Running state of one aggregate over one group.
struct AggState {
  uint64_t count = 0;        // Non-null inputs (or all rows for COUNT(*)).
  int64_t sum_i = 0;
  double sum_d = 0;
  bool sum_is_double = false;
  std::optional<Value> min;
  std::optional<Value> max;

  void Add(const Value& v, AggFunc func, bool count_star) {
    if (count_star) {
      ++count;
      return;
    }
    if (v.is_null()) return;  // SQL aggregates ignore NULLs.
    ++count;
    switch (func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == DataType::kDouble) {
          sum_is_double = true;
          sum_d += v.double_value();
        } else {
          sum_i += v.int_value();
          sum_d += static_cast<double>(v.int_value());
        }
        break;
      case AggFunc::kMin:
        if (!min.has_value() || v < *min) min = v;
        break;
      case AggFunc::kMax:
        if (!max.has_value() || *max < v) max = v;
        break;
    }
  }

  Value Result(AggFunc func, DataType out_type) const {
    switch (func) {
      case AggFunc::kCount:
        return Value::Int(static_cast<int64_t>(count));
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        if (out_type == DataType::kDouble || sum_is_double) {
          return Value::Double(sum_d);
        }
        return Value::Int(sum_i);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum_d / static_cast<double>(count));
      case AggFunc::kMin:
        return min.has_value() ? *min : Value::Null();
      case AggFunc::kMax:
        return max.has_value() ? *max : Value::Null();
    }
    return Value::Null();
  }
};

}  // namespace

StatusOr<std::vector<Tuple>> Executor::RunAggregate(const AggregatePlan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> in, RunChildRows(*plan.child()));

  std::vector<PreparedExpr> group_exprs;
  sim::SimTime per_tuple = options_.costs.hash_ns;
  for (const auto& g : plan.group_by()) {
    ASSIGN_OR_RETURN(PreparedExpr p, PreparedExpr::Make(*g, options_));
    per_tuple += p.cost_ns();
    group_exprs.push_back(std::move(p));
  }
  std::vector<PreparedExpr> agg_args(plan.aggs().size());
  std::vector<bool> has_arg(plan.aggs().size(), false);
  for (size_t i = 0; i < plan.aggs().size(); ++i) {
    if (plan.aggs()[i].arg != nullptr) {
      ASSIGN_OR_RETURN(PreparedExpr p,
                       PreparedExpr::Make(*plan.aggs()[i].arg, options_));
      per_tuple += p.cost_ns();
      agg_args[i] = std::move(p);
      has_arg[i] = true;
    }
  }

  // Grouped accumulation; std::map keeps output deterministic in group
  // order. A grand total (no GROUP BY) always emits exactly one row.
  std::map<Tuple, std::vector<AggState>> groups;
  for (const Tuple& t : in) {
    std::vector<Value> key_vals;
    key_vals.reserve(group_exprs.size());
    for (const PreparedExpr& g : group_exprs) {
      ASSIGN_OR_RETURN(Value v, g.Eval(t));
      ++stats_.expr_evaluations;
      key_vals.push_back(std::move(v));
    }
    auto [it, inserted] =
        groups.try_emplace(Tuple(std::move(key_vals)),
                           std::vector<AggState>(plan.aggs().size()));
    for (size_t i = 0; i < plan.aggs().size(); ++i) {
      Value v;
      if (has_arg[i]) {
        ASSIGN_OR_RETURN(v, agg_args[i].Eval(t));
        ++stats_.expr_evaluations;
      }
      it->second[i].Add(v, plan.aggs()[i].func, !has_arg[i]);
    }
  }
  if (groups.empty() && plan.group_by().empty()) {
    groups.try_emplace(Tuple(), std::vector<AggState>(plan.aggs().size()));
  }
  Charge(static_cast<sim::SimTime>(in.size()) * per_tuple);

  std::vector<Tuple> out;
  out.reserve(groups.size());
  const size_t num_groups = plan.group_by().size();
  for (const auto& [key, states] : groups) {
    std::vector<Value> row = key.values();
    for (size_t i = 0; i < states.size(); ++i) {
      row.push_back(states[i].Result(
          plan.aggs()[i].func, plan.schema().column(num_groups + i).type));
    }
    out.push_back(Tuple(std::move(row)));
  }
  return out;
}

StatusOr<std::vector<Tuple>> Executor::RunSort(const SortPlan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> in, RunChildRows(*plan.child()));

  std::vector<PreparedExpr> keys;
  sim::SimTime key_cost = 0;
  for (const auto& k : plan.keys()) {
    ASSIGN_OR_RETURN(PreparedExpr p, PreparedExpr::Make(*k.expr, options_));
    key_cost += p.cost_ns();
    keys.push_back(std::move(p));
  }
  // Evaluate sort keys once per tuple.
  std::vector<Tuple> key_tuples;
  key_tuples.reserve(in.size());
  for (const Tuple& t : in) {
    std::vector<Value> vals;
    vals.reserve(keys.size());
    for (const PreparedExpr& k : keys) {
      ASSIGN_OR_RETURN(Value v, k.Eval(t));
      ++stats_.expr_evaluations;
      vals.push_back(std::move(v));
    }
    key_tuples.push_back(Tuple(std::move(vals)));
  }

  std::vector<size_t> order(in.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const int c = key_tuples[a].at(i).Compare(key_tuples[b].at(i));
      if (c != 0) return plan.keys()[i].descending ? c > 0 : c < 0;
    }
    return false;
  });

  const double n = static_cast<double>(std::max<size_t>(in.size(), 2));
  Charge(static_cast<sim::SimTime>(n * std::log2(n)) *
             options_.costs.compare_ns +
         static_cast<sim::SimTime>(in.size()) * key_cost);

  std::vector<Tuple> out;
  out.reserve(in.size());
  for (const size_t i : order) out.push_back(std::move(in[i]));
  return out;
}

StatusOr<std::vector<Tuple>> Executor::RunLimit(const LimitPlan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> in, RunChildRows(*plan.child()));
  if (in.size() > plan.limit()) in.resize(plan.limit());
  return in;
}

StatusOr<std::vector<Tuple>> Executor::RunTransitiveClosure(const Plan& plan) {
  ASSIGN_OR_RETURN(std::vector<Tuple> edges, RunChildRows(*plan.child()));
  TcStats tc_stats;
  ASSIGN_OR_RETURN(
      std::vector<Tuple> out,
      TransitiveClosure(edges, TcAlgorithm::kSeminaive, &tc_stats));
  Charge(static_cast<sim::SimTime>(tc_stats.pairs_derived) *
         options_.costs.hash_ns);
  return out;
}

// ---------------------------------------------------- vectorized spine

StatusOr<std::vector<Tuple>> Executor::RunChildRows(const Plan& child) {
  if (!vectorized_) return Run(child);
  ASSIGN_OR_RETURN(std::vector<ColumnBatch> batches, RunBatches(child));
  return FlattenBatches(batches);
}

StatusOr<std::vector<ColumnBatch>> Executor::RunBatches(const Plan& plan) {
  if (!options_.profile) {
    auto result = RunBatchesCached(plan);
    if (result.ok()) stats_.batches += result->size();
    return result;
  }
  obs::OperatorProfile node;
  node.op = OperatorLabel(plan);
  obs::OperatorProfile* parent = current_profile_;
  current_profile_ = &node;
  const sim::SimTime before_ns = stats_.charged_ns;
  auto result = RunBatchesCached(plan);
  current_profile_ = parent;
  node.total_ns = stats_.charged_ns - before_ns;
  if (result.ok()) {
    stats_.batches += result->size();
    node.batches = result->size();
    for (const ColumnBatch& b : *result) {
      node.rows += b.num_rows();
      node.bytes += static_cast<uint64_t>(b.ByteSize());
    }
  }
  if (parent != nullptr) {
    parent->children.push_back(std::move(node));
  } else {
    profile_root_ = std::move(node);
  }
  return result;
}

StatusOr<std::vector<ColumnBatch>> Executor::RunBatchesCached(
    const Plan& plan) {
  if (options_.enable_subtree_cache && CacheableKind(plan.kind())) {
    const std::string key = plan.ToString();
    auto it = subtree_cache_.find(key);
    if (it != subtree_cache_.end()) {
      ++stats_.subtree_cache_hits;
      return ColumnBatch::Chunk(it->second, options_.batch_rows);
    }
    ASSIGN_OR_RETURN(std::vector<ColumnBatch> out, RunBatchesUncached(plan));
    subtree_cache_[key] = FlattenBatches(out);
    return out;
  }
  return RunBatchesUncached(plan);
}

StatusOr<std::vector<ColumnBatch>> Executor::RunBatchesUncached(
    const Plan& plan) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return RunScanBatches(static_cast<const ScanPlan&>(plan));
    case PlanKind::kSelect:
      return RunSelectBatches(static_cast<const SelectPlan&>(plan));
    case PlanKind::kProject:
      return RunProjectBatches(static_cast<const ProjectPlan&>(plan));
    case PlanKind::kJoin:
      return RunJoinBatches(static_cast<const JoinPlan&>(plan));
    case PlanKind::kAggregate:
      return RunAggregateBatches(static_cast<const AggregatePlan&>(plan));
    case PlanKind::kExchange:
      // Pass-through locally, exactly like the row path.
      return RunBatchesCached(*plan.child());
    default: {
      // Operators without a batch kernel run their row logic (over batched
      // children, via RunChildRows) and re-chunk the output.
      ASSIGN_OR_RETURN(std::vector<Tuple> rows, RunUncached(plan));
      return ColumnBatch::Chunk(rows, options_.batch_rows);
    }
  }
}

StatusOr<std::vector<ColumnBatch>> Executor::RunScanBatches(
    const ScanPlan& plan) {
  ASSIGN_OR_RETURN(const storage::Relation* rel,
                   resolver_->Resolve(plan.table()));
  std::vector<ColumnBatch> out = rel->ScanBatches(options_.batch_rows);
  size_t rows = 0;
  for (const ColumnBatch& b : out) rows += b.num_rows();
  stats_.tuples_scanned += rows;
  Charge(static_cast<sim::SimTime>(rows) * options_.costs.batch_row_ns +
         static_cast<sim::SimTime>(out.size()) *
             options_.costs.vector_batch_ns);
  return out;
}

StatusOr<std::vector<ColumnBatch>> Executor::RunSelectBatches(
    const SelectPlan& plan) {
  // Index access paths return rows; re-chunk them.
  ASSIGN_OR_RETURN(std::optional<std::vector<Tuple>> via_index,
                   TryIndexSelect(plan));
  if (via_index.has_value()) {
    return ColumnBatch::Chunk(*via_index, options_.batch_rows);
  }

  ASSIGN_OR_RETURN(std::vector<ColumnBatch> in, RunBatches(*plan.child()));
  ASSIGN_OR_RETURN(PreparedExpr pred,
                   PreparedExpr::Make(plan.predicate(), options_));
  std::vector<ColumnBatch> out;
  std::vector<uint8_t> keep;
  std::vector<uint32_t> idx;
  for (const ColumnBatch& b : in) {
    RETURN_IF_ERROR(pred.EvalPredicateBatch(b, &keep));
    stats_.expr_evaluations += b.num_rows();
    Charge(static_cast<sim::SimTime>(b.num_rows()) *
               (options_.costs.batch_row_ns + pred.vrow_cost_ns()) +
           pred.vbatch_cost_ns());
    idx.clear();
    for (size_t r = 0; r < b.num_rows(); ++r) {
      if (keep[r]) idx.push_back(static_cast<uint32_t>(r));
    }
    if (idx.empty()) continue;
    out.push_back(b.TakeRows(idx));
  }
  return out;
}

StatusOr<std::vector<ColumnBatch>> Executor::RunProjectBatches(
    const ProjectPlan& plan) {
  ASSIGN_OR_RETURN(std::vector<ColumnBatch> in, RunBatches(*plan.child()));
  std::vector<PreparedExpr> exprs;
  sim::SimTime per_row = options_.costs.batch_row_ns;
  sim::SimTime per_batch = 0;
  for (const auto& e : plan.exprs()) {
    ASSIGN_OR_RETURN(PreparedExpr p, PreparedExpr::Make(*e, options_));
    per_row += p.vrow_cost_ns();
    per_batch += p.vbatch_cost_ns();
    exprs.push_back(std::move(p));
  }
  std::vector<ColumnBatch> out;
  out.reserve(in.size());
  for (const ColumnBatch& b : in) {
    std::vector<ColumnBatch::Column> cols;
    cols.reserve(exprs.size());
    for (const PreparedExpr& e : exprs) {
      StatusOr<ColumnBatch::Column> col = e.EvalBatch(b);
      if (!col.ok()) {
        // Surface the same first error as the row path: re-evaluate this
        // batch row-major (row-then-expression order).
        for (size_t r = 0; r < b.num_rows(); ++r) {
          const Tuple row = b.RowAt(r);
          for (const PreparedExpr& re : exprs) {
            RETURN_IF_ERROR(re.Eval(row).status());
          }
        }
        return col.status();
      }
      cols.push_back(std::move(*col));
    }
    stats_.expr_evaluations += b.num_rows() * exprs.size();
    Charge(static_cast<sim::SimTime>(b.num_rows()) * per_row + per_batch);
    out.push_back(ColumnBatch::FromColumns(std::move(cols), b.num_rows()));
  }
  return out;
}

StatusOr<std::vector<ColumnBatch>> Executor::RunJoinBatches(
    const JoinPlan& plan) {
  ASSIGN_OR_RETURN(std::vector<ColumnBatch> left, RunBatches(*plan.child(0)));
  ASSIGN_OR_RETURN(std::vector<ColumnBatch> right, RunBatches(*plan.child(1)));

  JoinFilter filter;
  sim::SimTime filter_cost = 0;
  std::optional<PreparedExpr> pred;
  if (plan.predicate() != nullptr) {
    ASSIGN_OR_RETURN(PreparedExpr p,
                     PreparedExpr::Make(*plan.predicate(), options_));
    filter_cost = p.cost_ns();
    pred = std::move(p);
    filter = [this, &pred](const Tuple& t) {
      ++stats_.expr_evaluations;
      return pred->EvalPredicate(t);
    };
  }

  const auto keys = plan.EquiKeys();
  JoinCounters counters;
  StatusOr<std::vector<ColumnBatch>> out =
      keys.empty() ? VectorizedNestedLoopJoin(left, right, options_.batch_rows,
                                              filter, &counters)
                   : VectorizedHashJoin(left, right, keys, options_.batch_rows,
                                        filter, &counters);
  RETURN_IF_ERROR(out.status());
  Charge(static_cast<sim::SimTime>(counters.hash_ops) *
             options_.costs.hash_ns +
         static_cast<sim::SimTime>(counters.compare_ops) *
             options_.costs.compare_ns +
         static_cast<sim::SimTime>(counters.pairs_examined) *
             (options_.costs.batch_row_ns + filter_cost));
  return out;
}

StatusOr<std::vector<ColumnBatch>> Executor::RunAggregateBatches(
    const AggregatePlan& plan) {
  ASSIGN_OR_RETURN(std::vector<ColumnBatch> in, RunBatches(*plan.child()));

  std::vector<PreparedExpr> group_exprs;
  sim::SimTime per_row = options_.costs.hash_ns;
  sim::SimTime per_batch = 0;
  for (const auto& g : plan.group_by()) {
    ASSIGN_OR_RETURN(PreparedExpr p, PreparedExpr::Make(*g, options_));
    per_row += p.vrow_cost_ns();
    per_batch += p.vbatch_cost_ns();
    group_exprs.push_back(std::move(p));
  }
  std::vector<PreparedExpr> agg_args(plan.aggs().size());
  std::vector<bool> has_arg(plan.aggs().size(), false);
  for (size_t i = 0; i < plan.aggs().size(); ++i) {
    if (plan.aggs()[i].arg != nullptr) {
      ASSIGN_OR_RETURN(PreparedExpr p,
                       PreparedExpr::Make(*plan.aggs()[i].arg, options_));
      per_row += p.vrow_cost_ns();
      per_batch += p.vbatch_cost_ns();
      agg_args[i] = std::move(p);
      has_arg[i] = true;
    }
  }

  std::map<Tuple, std::vector<AggState>> groups;
  for (const ColumnBatch& b : in) {
    // Evaluate all key and argument expressions column-wise; on any error,
    // re-run this batch row-major to surface the row path's first error.
    auto row_major_error = [&]() -> Status {
      for (size_t r = 0; r < b.num_rows(); ++r) {
        const Tuple row = b.RowAt(r);
        for (const PreparedExpr& g : group_exprs) {
          RETURN_IF_ERROR(g.Eval(row).status());
        }
        for (size_t i = 0; i < plan.aggs().size(); ++i) {
          if (has_arg[i]) RETURN_IF_ERROR(agg_args[i].Eval(row).status());
        }
      }
      return Status::OK();
    };
    std::vector<ColumnBatch::Column> key_cols;
    key_cols.reserve(group_exprs.size());
    for (const PreparedExpr& g : group_exprs) {
      StatusOr<ColumnBatch::Column> col = g.EvalBatch(b);
      if (!col.ok()) {
        RETURN_IF_ERROR(row_major_error());
        return col.status();
      }
      key_cols.push_back(std::move(*col));
    }
    std::vector<ColumnBatch::Column> arg_cols(plan.aggs().size());
    for (size_t i = 0; i < plan.aggs().size(); ++i) {
      if (!has_arg[i]) continue;
      StatusOr<ColumnBatch::Column> col = agg_args[i].EvalBatch(b);
      if (!col.ok()) {
        RETURN_IF_ERROR(row_major_error());
        return col.status();
      }
      arg_cols[i] = std::move(*col);
    }
    for (size_t r = 0; r < b.num_rows(); ++r) {
      std::vector<Value> key_vals;
      key_vals.reserve(key_cols.size());
      for (const ColumnBatch::Column& c : key_cols) {
        key_vals.push_back(c.ValueAt(r));
      }
      auto [it, inserted] =
          groups.try_emplace(Tuple(std::move(key_vals)),
                             std::vector<AggState>(plan.aggs().size()));
      for (size_t i = 0; i < plan.aggs().size(); ++i) {
        Value v;
        if (has_arg[i]) v = arg_cols[i].ValueAt(r);
        it->second[i].Add(v, plan.aggs()[i].func, !has_arg[i]);
      }
    }
    stats_.expr_evaluations +=
        b.num_rows() * (group_exprs.size() +
                        static_cast<size_t>(std::count(
                            has_arg.begin(), has_arg.end(), true)));
    Charge(static_cast<sim::SimTime>(b.num_rows()) * per_row + per_batch);
  }
  if (groups.empty() && plan.group_by().empty()) {
    groups.try_emplace(Tuple(), std::vector<AggState>(plan.aggs().size()));
  }

  std::vector<Tuple> rows;
  rows.reserve(groups.size());
  const size_t num_groups = plan.group_by().size();
  for (const auto& [key, states] : groups) {
    std::vector<Value> row = key.values();
    for (size_t i = 0; i < states.size(); ++i) {
      row.push_back(states[i].Result(
          plan.aggs()[i].func, plan.schema().column(num_groups + i).type));
    }
    rows.push_back(Tuple(std::move(row)));
  }
  return ColumnBatch::Chunk(rows, options_.batch_rows);
}

}  // namespace prisma::exec
