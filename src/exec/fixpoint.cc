#include "exec/fixpoint.h"

#include <utility>

namespace prisma::exec {

FixpointPartition::FixpointPartition(TcAlgorithm algorithm,
                                     size_t num_partitions, size_t my_index)
    : algorithm_(algorithm),
      num_partitions_(num_partitions == 0 ? 1 : num_partitions),
      my_index_(my_index) {}

Status FixpointPartition::AddEdge(const Tuple& tuple) {
  if (tuple.size() != 2) {
    return InvalidArgumentError(
        "transitive closure input must be a binary relation");
  }
  if (tuple.at(0).is_null() || tuple.at(1).is_null()) {
    ++stats_.null_edges_ignored;
    return Status::OK();
  }
  if (edges_[tuple.at(0)].insert(tuple.at(1)).second) ++edge_count_;
  return Status::OK();
}

void FixpointPartition::Route(const Value& from, const Value& to,
                              RoutedPairs* owner_out, RoutedPairs* index_out) {
  (*owner_out)[PartitionOf(to)].insert(Tuple({from, to}));
  if (algorithm_ == TcAlgorithm::kSmart) {
    (*index_out)[PartitionOf(from)].insert(Tuple({from, to}));
  }
}

void FixpointPartition::Seed(RoutedPairs* owner_out, RoutedPairs* index_out) {
  owner_out->assign(num_partitions_, {});
  index_out->assign(num_partitions_, {});
  for (const auto& [from, succs] : edges_) {
    for (const Value& to : succs) Route(from, to, owner_out, index_out);
  }
}

uint64_t FixpointPartition::JoinRound(RoutedPairs* owner_out,
                                      RoutedPairs* index_out) {
  owner_out->assign(num_partitions_, {});
  index_out->assign(num_partitions_, {});
  uint64_t products = 0;

  // Derivations are shipped to their home partitions and deduplicated
  // there; locally we only count the join products (the cost term).
  switch (algorithm_) {
    case TcAlgorithm::kSeminaive: {
      // delta(x, y) ⋈ E(y, z): the pending delta is partitioned by y
      // (ownership by second endpoint), E by its first — co-located.
      std::set<Tuple> delta = std::move(pending_delta_);
      pending_delta_.clear();
      for (const Tuple& pair : delta) {
        auto it = edges_.find(pair.at(1));
        if (it == edges_.end()) continue;
        for (const Value& to : it->second) {
          ++products;
          Route(pair.at(0), to, owner_out, index_out);
        }
      }
      break;
    }
    case TcAlgorithm::kNaive: {
      // T(x, y) ⋈ E(y, z) over the *entire* owned slice each round —
      // naive re-derivation, now paid for in wire bits too.
      pending_delta_.clear();
      for (const Tuple& pair : owned_) {
        auto it = edges_.find(pair.at(1));
        if (it == edges_.end()) continue;
        for (const Value& to : it->second) {
          ++products;
          Route(pair.at(0), to, owner_out, index_out);
        }
      }
      break;
    }
    case TcAlgorithm::kSmart: {
      // T(x, y) ⋈ T(y, z): owned pairs (by second endpoint) join the
      // index copy (by first endpoint) — both hash(y), both local.
      pending_delta_.clear();
      for (const Tuple& pair : owned_) {
        auto it = index_.find(pair.at(1));
        if (it == index_.end()) continue;
        for (const Value& to : it->second) {
          ++products;
          Route(pair.at(0), to, owner_out, index_out);
        }
      }
      break;
    }
  }
  stats_.pairs_derived += products;
  return products;
}

uint64_t FixpointPartition::AbsorbOwned(const std::vector<Tuple>& tuples,
                                        std::vector<Tuple>* fresh_out) {
  uint64_t fresh = 0;
  for (const Tuple& t : tuples) {
    if (owned_.insert(t).second) {
      pending_delta_.insert(t);
      if (fresh_out != nullptr) fresh_out->push_back(t);
      ++fresh;
    }
  }
  stats_.result_size = owned_.size();
  return fresh;
}

void FixpointPartition::AbsorbIndex(const std::vector<Tuple>& tuples) {
  for (const Tuple& t : tuples) index_[t.at(0)].insert(t.at(1));
}

std::vector<Tuple> FixpointPartition::OwnedSorted() const {
  return std::vector<Tuple>(owned_.begin(), owned_.end());
}

}  // namespace prisma::exec
