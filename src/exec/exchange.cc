#include "exec/exchange.h"

#include <algorithm>

#include "common/logging.h"

namespace prisma::exec {
namespace {

bool HasNullKey(const Tuple& t, const std::vector<size_t>& cols) {
  for (size_t c : cols) {
    if (t.at(c).is_null()) return true;
  }
  return false;
}

/// Pairwise key equality with SQL NULL semantics (mirrors join.cc).
bool KeysEqual(const Tuple& a, const std::vector<size_t>& acols,
               const Tuple& b, const std::vector<size_t>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    const Value& va = a.at(acols[i]);
    const Value& vb = b.at(bcols[i]);
    if (va.is_null() || vb.is_null()) return false;
    if (va.Compare(vb) != 0) return false;
  }
  return true;
}

}  // namespace

bool InboundChannel::Offer(TupleBatch batch) {
  if (batch.seq < next_seq_) {
    ++duplicates_;
    return false;
  }
  auto [it, inserted] = pending_.try_emplace(batch.seq, std::move(batch));
  if (!inserted) {
    ++duplicates_;
    return false;
  }
  return true;
}

std::vector<TupleBatch> InboundChannel::TakeReady() {
  std::vector<TupleBatch> ready;
  // prisma-lint: ordered - std::map drains in ascending seq order.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_seq_;) {
    if (it->second.eos) finished_ = true;
    ready.push_back(std::move(it->second));
    it = pending_.erase(it);
    ++next_seq_;
  }
  return ready;
}

OutboundChannel::OutboundChannel(std::vector<Tuple> tuples, size_t batch_rows,
                                 uint64_t window)
    : window_(window) {
  PRISMA_CHECK(batch_rows > 0);
  PRISMA_CHECK(window > 0);
  size_t i = 0;
  do {
    TupleBatch batch;
    batch.seq = batches_.size() + 1;
    const size_t end = std::min(tuples.size(), i + batch_rows);
    for (; i < end; ++i) batch.tuples.push_back(std::move(tuples[i]));
    batch.eos = i >= tuples.size();
    batches_.push_back(std::move(batch));
  } while (i < tuples.size());
}

const TupleBatch* OutboundChannel::TakeNextToSend() {
  if (next_unsent() == 0 || Stalled()) return nullptr;
  const TupleBatch* batch = &batches_[next_send_ - 1];
  ++next_send_;
  return batch;
}

const TupleBatch* OutboundChannel::BatchAt(uint64_t seq) const {
  if (seq == 0 || seq > batches_.size()) return nullptr;
  return &batches_[seq - 1];
}

uint64_t OutboundChannel::credit() const {
  const uint64_t limit = std::min(acked_ + window_, last_seq());
  return limit >= next_send_ ? limit - next_send_ + 1 : 0;
}

bool OutboundChannel::OnAck(uint64_t ack) {
  if (ack <= acked_) return false;  // Stale or duplicate ack.
  acked_ = std::min(ack, last_seq());
  return true;
}

PipelinedHashJoin::PipelinedHashJoin(Options options)
    : options_(std::move(options)) {
  PRISMA_CHECK(!options_.build_cols.empty());
  PRISMA_CHECK(options_.build_cols.size() == options_.probe_cols.size());
}

void PipelinedHashJoin::AddBuild(Tuple tuple) {
  PRISMA_CHECK(!build_finished_) << "AddBuild after FinishBuild";
  if (HasNullKey(tuple, options_.build_cols)) return;  // Never joins.
  build_.push_back(std::move(tuple));
  table_[HashTupleColumns(build_.back(), options_.build_cols)].push_back(
      build_.size() - 1);
  ++counters_.hash_ops;
}

Status PipelinedHashJoin::Probe(const Tuple& probe, std::vector<Tuple>* out) {
  PRISMA_CHECK(build_finished_) << "Probe before FinishBuild";
  if (HasNullKey(probe, options_.probe_cols)) return Status::OK();
  ++counters_.hash_ops;
  auto it = table_.find(HashTupleColumns(probe, options_.probe_cols));
  if (it == table_.end()) return Status::OK();
  for (const size_t bi : it->second) {
    ++counters_.compare_ops;
    const Tuple& b = build_[bi];
    // Re-verify (hash collisions) with real comparisons.
    if (!KeysEqual(b, options_.build_cols, probe, options_.probe_cols)) {
      continue;
    }
    ++counters_.pairs_examined;
    const Tuple& l = options_.build_is_left ? b : probe;
    const Tuple& r = options_.build_is_left ? probe : b;
    Tuple joined = Tuple::Concat(l, r);
    if (options_.filter != nullptr) {
      ASSIGN_OR_RETURN(bool keep, options_.filter(joined));
      if (!keep) continue;
    }
    out->push_back(std::move(joined));
  }
  return Status::OK();
}

}  // namespace prisma::exec
