#ifndef PRISMA_EXEC_EXPR_COMPILER_H_
#define PRISMA_EXEC_EXPR_COMPILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/column_batch.h"
#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace prisma::exec {

/// Opcodes of the OFM expression VM. Every opcode is *type-specialized*:
/// the compiler resolves all type dispatch statically from the bound
/// expression, so the inner loop performs no type checks — only null-flag
/// propagation. This reproduces the paper's "expression compiler to
/// generate routines dynamically" (§2.5), whose point is removing
/// per-tuple interpretation overhead; instead of 1988-style machine-code
/// generation we emit flat bytecode for a register VM (see DESIGN.md).
enum class OpCode : uint8_t {
  kConst,    // reg[dst] = constant_pool[aux]
  kLoadCol,  // reg[dst] = tuple column aux (type known statically)
  kI2D,      // reg[dst] = double(reg[a])
  kNegI,
  kNegD,
  kNot,
  kIsNull,
  kAddI,
  kSubI,
  kMulI,
  kDivI,  // Fails on zero divisor.
  kModI,  // Fails on zero divisor.
  kAddD,
  kSubD,
  kMulD,
  kDivD,  // Fails on zero divisor.
  kConcat,  // String concatenation into scratch slot aux.
  kEqI,
  kNeI,
  kLtI,
  kLeI,
  kGtI,
  kGeI,
  kEqD,
  kNeD,
  kLtD,
  kLeD,
  kGtD,
  kGeD,
  kEqS,
  kNeS,
  kLtS,
  kLeS,
  kGtS,
  kGeS,
  kEqB,
  kNeB,
  kAnd,  // Kleene three-valued AND.
  kOr,   // Kleene three-valued OR.
};

/// One VM instruction: dst <- op(a, b); `aux` addresses the constant pool,
/// tuple column, or scratch slot depending on the opcode.
struct Instruction {
  OpCode op;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint32_t aux = 0;
};

/// A compiled, immediately executable scalar expression.
///
/// Obtained from CompileExpr on a bound algebra::Expr. Evaluation runs the
/// flat instruction sequence over a register file; there is no recursion
/// and no dynamic type dispatch. Not thread-safe (the register file and
/// string scratch are reused across calls).
class CompiledExpr {
 public:
  /// Evaluates against `tuple`, boxing the result.
  StatusOr<Value> Eval(const Tuple& tuple) const;

  /// Predicate fast path: NULL and non-BOOL results map to false.
  /// (The compiler guarantees a BOOL static type when compiled from a
  /// type-checked predicate.)
  StatusOr<bool> EvalPredicate(const Tuple& tuple) const;

  /// Vectorized evaluation (DESIGN.md §12): runs the same instruction
  /// sequence column-major over all rows of `batch` at once, returning a
  /// row-aligned result column. Errors (division by zero) reproduce the
  /// per-tuple path exactly: the Status of the first failing row, and
  /// within it the first failing instruction in program order.
  StatusOr<ColumnBatch::Column> EvalBatch(const ColumnBatch& batch) const;

  /// Vectorized predicate: fills `keep` (one byte per row; 1 = the
  /// predicate is true) with exactly the rows EvalPredicate would accept.
  Status EvalPredicateBatch(const ColumnBatch& batch,
                            std::vector<uint8_t>* keep) const;

  size_t num_instructions() const { return code_.size(); }
  DataType result_type() const { return result_type_; }

  /// Disassembly for debugging and tests.
  std::string ToString() const;

 private:
  friend StatusOr<CompiledExpr> CompileExpr(const algebra::Expr& expr);

  /// Unboxed register. Exactly one of b/i/d/s is meaningful, fixed
  /// statically per register by the compiler.
  struct Reg {
    bool null = true;
    bool b = false;
    int64_t i = 0;
    double d = 0;
    const std::string* s = nullptr;
  };

  /// Vector register: one value lane per batch row. As with Reg, exactly
  /// one of b/i/d/s is meaningful per register, fixed statically.
  struct VReg {
    std::vector<uint8_t> null;
    std::vector<uint8_t> b;
    std::vector<int64_t> i;
    std::vector<double> d;
    std::vector<const std::string*> s;
  };

  Status Run(const Tuple& tuple) const;
  Status RunBatch(const ColumnBatch& batch) const;

  std::vector<Instruction> code_;
  std::vector<Value> constants_;
  DataType result_type_ = DataType::kNull;
  uint16_t result_reg_ = 0;
  uint16_t num_regs_ = 0;
  // Mutable execution state reused across Eval calls (single-threaded).
  mutable std::vector<Reg> regs_;
  mutable std::vector<std::string> scratch_;
  mutable std::vector<VReg> vregs_;
  mutable std::vector<std::vector<std::string>> vscratch_;
};

/// Compiles a bound expression. Fails only on internal inconsistencies
/// (unbound input); all type errors were caught at Bind time.
StatusOr<CompiledExpr> CompileExpr(const algebra::Expr& expr);

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_EXPR_COMPILER_H_
