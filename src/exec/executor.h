#ifndef PRISMA_EXEC_EXECUTOR_H_
#define PRISMA_EXEC_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "common/status.h"
#include "common/tuple.h"
#include "exec/expr_compiler.h"
#include "obs/query_profile.h"
#include "pool/runtime.h"
#include "sim/simulator.h"
#include "storage/btree_index.h"
#include "storage/hash_index.h"
#include "storage/relation.h"

namespace prisma::exec {

/// Resolves base-table names in Scan nodes to resident relations. Inside
/// an OFM the resolver maps the fragment's qualified name to its local
/// fragment; in tests it is a simple map.
///
/// A resolver may also expose secondary indexes; the executor's local
/// access-path selection (the OFM's "local query optimizer", §2.5) uses
/// them for selections pinning or bounding an indexed column.
class TableResolver {
 public:
  virtual ~TableResolver() = default;
  virtual StatusOr<const storage::Relation*> Resolve(
      const std::string& table) const = 0;

  /// Hash index of `table` on exactly `columns`, or null.
  virtual const storage::HashIndex* FindHashIndex(
      const std::string& /*table*/,
      const std::vector<size_t>& /*columns*/) const {
    return nullptr;
  }
  /// Ordered index of `table` on exactly `columns`, or null.
  virtual const storage::BTreeIndex* FindBTreeIndex(
      const std::string& /*table*/,
      const std::vector<size_t>& /*columns*/) const {
    return nullptr;
  }
};

/// Map-backed resolver (does not own the relations or indexes).
class MapTableResolver : public TableResolver {
 public:
  void Register(const std::string& name, const storage::Relation* relation) {
    tables_[name] = relation;
  }
  void RegisterHashIndex(const std::string& table,
                         const storage::HashIndex* index) {
    hash_indexes_[table].push_back(index);
  }
  void RegisterBTreeIndex(const std::string& table,
                          const storage::BTreeIndex* index) {
    btree_indexes_[table].push_back(index);
  }

  StatusOr<const storage::Relation*> Resolve(
      const std::string& table) const override;
  const storage::HashIndex* FindHashIndex(
      const std::string& table,
      const std::vector<size_t>& columns) const override;
  const storage::BTreeIndex* FindBTreeIndex(
      const std::string& table,
      const std::vector<size_t>& columns) const override;

 private:
  std::map<std::string, const storage::Relation*> tables_;
  std::map<std::string, std::vector<const storage::HashIndex*>> hash_indexes_;
  std::map<std::string, std::vector<const storage::BTreeIndex*>> btree_indexes_;
};

/// How the executor evaluates scalar expressions — the E4 ablation switch.
enum class ExprMode : uint8_t {
  kInterpreted,  // Tree-walking EvalExpr (the 1988 baseline to beat).
  kCompiled,     // CompiledExpr bytecode (the OFM's generative approach).
};

/// How operators move tuples — the row/vectorized ablation switch
/// (DESIGN.md §12). Both modes produce byte-identical answers; the
/// differential harness in tests/vectorized_diff_test.cc enforces it.
enum class ExecMode : uint8_t {
  kRow,         // Tuple-at-a-time over boxed Values (the baseline).
  kVectorized,  // ColumnBatch-at-a-time kernels.
};

const char* ExecModeName(ExecMode mode);

struct ExecOptions {
  ExprMode expr_mode = ExprMode::kCompiled;
  /// Vectorized execution needs the compiled expression path; with
  /// expr_mode == kInterpreted the executor silently stays on the row
  /// path (there is no batch form of the tree-walking evaluator).
  ExecMode exec_mode = ExecMode::kRow;
  /// Rows per ColumnBatch on the local vectorized path.
  size_t batch_rows = ColumnBatch::kDefaultBatchRows;
  /// Virtual-time unit costs; see pool::CostModel.
  pool::CostModel costs;
  /// Invoked with virtual nanoseconds as work is performed; may be null.
  /// Inside an OFM process this forwards to Process::ChargeCpu.
  std::function<void(sim::SimTime)> charge;
  /// Memoize results of structurally identical expensive subtrees (joins,
  /// aggregates, sorts, closures) within one Execute call — the execution
  /// side of the optimizer's common-subexpression detection (§2.4).
  bool enable_subtree_cache = false;
  /// Build a per-operator profile tree (rows, bytes, charged ns) during
  /// Execute; read it back via Executor::profile(). EXPLAIN ANALYZE mode.
  bool profile = false;
};

struct ExecStats {
  uint64_t tuples_scanned = 0;
  /// Selections answered through an index instead of a scan.
  uint64_t index_selections = 0;
  uint64_t tuples_output = 0;
  uint64_t expr_evaluations = 0;
  /// ColumnBatches produced by operators (vectorized mode only).
  uint64_t batches = 0;
  /// Subtree-cache hits (common subexpressions evaluated once).
  uint64_t subtree_cache_hits = 0;
  /// Total virtual CPU time charged for the last Execute call tree.
  sim::SimTime charged_ns = 0;
};

/// Materializing executor for (fragment-local) plans of the extended
/// relational algebra. One Executor per plan execution; it charges the
/// virtual cost model as it goes, so the same code path produces both
/// results and simulated response times.
class Executor {
 public:
  explicit Executor(const TableResolver* resolver, ExecOptions options = {});

  /// Runs the plan to completion and returns all result tuples.
  StatusOr<std::vector<Tuple>> Execute(const algebra::Plan& plan);

  const ExecStats& stats() const { return stats_; }

  /// Per-operator profile of the last Execute (set when options.profile).
  const std::optional<obs::OperatorProfile>& profile() const {
    return profile_root_;
  }

 private:
  /// Expression prepared for per-tuple evaluation in the selected mode,
  /// with its precomputed per-evaluation virtual cost.
  class PreparedExpr {
   public:
    static StatusOr<PreparedExpr> Make(const algebra::Expr& expr,
                                       const ExecOptions& options);
    StatusOr<Value> Eval(const Tuple& tuple) const;
    StatusOr<bool> EvalPredicate(const Tuple& tuple) const;
    StatusOr<ColumnBatch::Column> EvalBatch(const ColumnBatch& batch) const;
    Status EvalPredicateBatch(const ColumnBatch& batch,
                              std::vector<uint8_t>* keep) const;
    sim::SimTime cost_ns() const { return cost_ns_; }
    /// Vectorized costs: per-row tight-loop work and the per-batch kernel
    /// dispatch (compiled path only).
    sim::SimTime vrow_cost_ns() const { return vrow_cost_ns_; }
    sim::SimTime vbatch_cost_ns() const { return vbatch_cost_ns_; }

   private:
    const algebra::Expr* interpreted_ = nullptr;  // Borrowed from the plan.
    std::shared_ptr<CompiledExpr> compiled_;
    sim::SimTime cost_ns_ = 0;
    sim::SimTime vrow_cost_ns_ = 0;
    sim::SimTime vbatch_cost_ns_ = 0;
  };

  void Charge(sim::SimTime ns);

  StatusOr<std::vector<Tuple>> Run(const algebra::Plan& plan);
  /// Run minus the profiling wrapper (subtree-cache lookup + dispatch).
  StatusOr<std::vector<Tuple>> RunCached(const algebra::Plan& plan);
  StatusOr<std::vector<Tuple>> RunUncached(const algebra::Plan& plan);
  StatusOr<std::vector<Tuple>> RunScan(const algebra::ScanPlan& plan);
  StatusOr<std::vector<Tuple>> RunSelect(const algebra::SelectPlan& plan);
  /// Index fast path for Select-over-Scan; returns nullopt when no usable
  /// access path exists (caller falls back to scan + filter).
  StatusOr<std::optional<std::vector<Tuple>>> TryIndexSelect(
      const algebra::SelectPlan& plan);
  StatusOr<std::vector<Tuple>> RunProject(const algebra::ProjectPlan& plan);
  StatusOr<std::vector<Tuple>> RunJoin(const algebra::JoinPlan& plan);
  StatusOr<std::vector<Tuple>> RunUnion(const algebra::Plan& plan);
  StatusOr<std::vector<Tuple>> RunDifference(const algebra::Plan& plan);
  StatusOr<std::vector<Tuple>> RunDistinct(const algebra::Plan& plan);
  StatusOr<std::vector<Tuple>> RunAggregate(const algebra::AggregatePlan& plan);
  StatusOr<std::vector<Tuple>> RunSort(const algebra::SortPlan& plan);
  StatusOr<std::vector<Tuple>> RunLimit(const algebra::LimitPlan& plan);
  StatusOr<std::vector<Tuple>> RunTransitiveClosure(const algebra::Plan& plan);

  /// Child input for the row-logic operators: Run(child) on the row path,
  /// flattened RunBatches(child) in vectorized mode (so e.g. a Sort over a
  /// Scan still scans in batches).
  StatusOr<std::vector<Tuple>> RunChildRows(const algebra::Plan& child);

  // Vectorized twin of the Run/RunCached/RunUncached spine; only the
  // batch-kernel operators have dedicated entries, everything else runs
  // the row logic over batched children and re-chunks its output.
  StatusOr<std::vector<ColumnBatch>> RunBatches(const algebra::Plan& plan);
  StatusOr<std::vector<ColumnBatch>> RunBatchesCached(
      const algebra::Plan& plan);
  StatusOr<std::vector<ColumnBatch>> RunBatchesUncached(
      const algebra::Plan& plan);
  StatusOr<std::vector<ColumnBatch>> RunScanBatches(
      const algebra::ScanPlan& plan);
  StatusOr<std::vector<ColumnBatch>> RunSelectBatches(
      const algebra::SelectPlan& plan);
  StatusOr<std::vector<ColumnBatch>> RunProjectBatches(
      const algebra::ProjectPlan& plan);
  StatusOr<std::vector<ColumnBatch>> RunJoinBatches(
      const algebra::JoinPlan& plan);
  StatusOr<std::vector<ColumnBatch>> RunAggregateBatches(
      const algebra::AggregatePlan& plan);

  const TableResolver* resolver_;
  ExecOptions options_;
  /// True when this execution actually runs the batched path (vectorized
  /// mode requested and compiled expressions available).
  bool vectorized_ = false;
  ExecStats stats_;
  std::map<std::string, std::vector<Tuple>> subtree_cache_;
  // Profiling state (options_.profile): node currently being built and the
  // finished root of the last Execute.
  obs::OperatorProfile* current_profile_ = nullptr;
  std::optional<obs::OperatorProfile> profile_root_;
};

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_EXECUTOR_H_
