#ifndef PRISMA_EXEC_OFM_H_
#define PRISMA_EXEC_OFM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/serialize.h"
#include "common/tuple.h"
#include "exec/executor.h"
#include "storage/btree_index.h"
#include "storage/hash_index.h"
#include "storage/memory_tracker.h"
#include "storage/relation.h"
#include "storage/stable_store.h"

namespace prisma::exec {

/// Transaction identifier; kAutoCommit marks single-operation transactions
/// that commit immediately.
using TxnId = int64_t;
constexpr TxnId kAutoCommit = 0;

/// OFM flavours (§2.5): "Several OFM types are envisioned, each equipped
/// with the right amount of tools. For example, OFMs needed for query
/// processing only do not require extensive crash recovery facilities."
enum class OfmType : uint8_t {
  kFull,       // Base fragments: write-ahead logging + checkpoint/recover.
  kQueryOnly,  // Intermediate results: no durability machinery at all.
};

const char* OfmTypeName(OfmType type);

/// One-Fragment Manager: the per-fragment database system at the heart of
/// the PRISMA architecture (§2.5). It owns exactly one relation fragment
/// in main memory together with its access structures, and provides every
/// local DBMS function: query execution over the fragment (with the
/// expression compiler), cursor/marking maintenance, transactional writes
/// with undo, write-ahead logging, checkpointing, and restart recovery.
///
/// The OFM itself is machine-agnostic; the distributed layer wraps it in a
/// POOL-X process and talks to it with messages.
class Ofm {
 public:
  struct Options {
    OfmType type = OfmType::kFull;
    /// Memory budget of the hosting PE (may be null: untracked).
    storage::MemoryTracker* memory = nullptr;
    /// Stable storage of the hosting (or nearest disk-equipped) PE.
    /// Required for kFull, ignored for kQueryOnly.
    storage::StableStore* stable = nullptr;
    /// Execution options (expression mode, cost model, charge hook).
    ExecOptions exec;
  };

  /// `fragment_name` is the globally unique name ("emp#3") under which
  /// Scan nodes address this fragment.
  Ofm(std::string fragment_name, Schema schema, Options options);

  Ofm(const Ofm&) = delete;
  Ofm& operator=(const Ofm&) = delete;

  const std::string& fragment_name() const { return fragment_name_; }
  const Schema& schema() const { return relation_.schema(); }
  OfmType type() const { return options_.type; }
  const storage::Relation& relation() const { return relation_; }
  size_t num_tuples() const { return relation_.num_tuples(); }

  // ------------------------------------------------------------- Indexes

  Status CreateHashIndex(const std::string& index_name,
                         std::vector<size_t> key_columns);
  Status CreateBTreeIndex(const std::string& index_name,
                          std::vector<size_t> key_columns);
  const storage::HashIndex* FindHashIndex(
      const std::vector<size_t>& key_columns) const;
  const storage::BTreeIndex* FindBTreeIndex(
      const std::vector<size_t>& key_columns) const;
  size_t num_indexes() const {
    return hash_indexes_.size() + btree_indexes_.size();
  }

  // ---------------------------------------------------------- Write path

  /// Transactional writes. With txn == kAutoCommit the operation is
  /// durable immediately; otherwise it joins `txn`'s undo scope and its
  /// redo record is buffered until Prepare.
  StatusOr<storage::RowId> Insert(TxnId txn, Tuple tuple);
  Status Delete(TxnId txn, storage::RowId row);
  Status Update(TxnId txn, storage::RowId row, Tuple tuple);

  /// Deletes every tuple satisfying `predicate` (bound to the schema);
  /// returns the count. Null predicate deletes everything.
  StatusOr<size_t> DeleteWhere(TxnId txn, const algebra::Expr* predicate);

  /// SET column = expr assignments applied to tuples matching `predicate`.
  StatusOr<size_t> UpdateWhere(
      TxnId txn, const algebra::Expr* predicate,
      const std::vector<std::pair<size_t, const algebra::Expr*>>& assignments);

  // -------------------------------------------------- Transaction control

  /// Phase 1 of 2PC: force-logs the transaction's redo records and a
  /// prepare marker; after OK the OFM guarantees it can commit.
  Status Prepare(TxnId txn);
  /// Phase 2: logs the commit marker and discards undo state.
  Status Commit(TxnId txn);
  /// Undoes the transaction's local effects (reverse order).
  Status Abort(TxnId txn);
  /// True if `txn` has touched this fragment and is still open.
  bool HasTransaction(TxnId txn) const;

  // ------------------------------------------------------------ Querying

  /// Executes a local plan; Scan nodes naming this fragment resolve to the
  /// resident relation. Index selection and expression compilation happen
  /// here — the OFM is a complete little query processor. Scans of other
  /// names fall back to `colocated` when provided (co-located join
  /// execution; see gdh::PeLocalRegistry). A non-null `profile` turns on
  /// per-operator profiling and receives the plan's profile tree
  /// (EXPLAIN ANALYZE). `exec_mode` overrides the OFM's configured
  /// execution mode for this one plan — OFM processes are long-lived
  /// while the mode is chosen per statement.
  StatusOr<std::vector<Tuple>> ExecutePlan(
      const algebra::Plan& plan, const TableResolver* colocated = nullptr,
      obs::OperatorProfile* profile = nullptr,
      std::optional<ExecMode> exec_mode = std::nullopt);

  /// Stats of the most recent ExecutePlan.
  const ExecStats& last_exec_stats() const { return last_exec_stats_; }

  /// Cursor with marking support ("markings and cursor maintenance",
  /// §2.5): iterates live tuples in RowId order; a mark can be taken and
  /// later restored. Deletions of not-yet-visited rows are skipped
  /// naturally (tombstones).
  class Cursor {
   public:
    explicit Cursor(const storage::Relation* relation)
        : relation_(relation) {}
    /// Returns the next live tuple, or nullopt at the end.
    std::optional<Tuple> Next();
    /// Marks the current position.
    void Mark() { mark_ = position_; }
    /// Rewinds to the last mark (start if none was taken).
    void ResetToMark() { position_ = mark_; }

   private:
    const storage::Relation* relation_;
    storage::RowId position_ = 0;
    storage::RowId mark_ = 0;
  };
  Cursor OpenCursor() const { return Cursor(&relation_); }

  // ------------------------------------------------------------ Recovery

  /// Writes a fragment snapshot to stable storage and truncates the WAL.
  Status Checkpoint();

  /// Rebuilds the fragment from the last checkpoint plus the WAL suffix,
  /// applying only committed (or auto-committed) transactions. Called
  /// after a crash replaces the OFM process.
  ///
  /// Transactions that were *prepared* but neither committed nor aborted
  /// are in-doubt: their effects are withheld and their ids reported by
  /// recovered_undecided(); the coordinator must ResolveRecovered() each.
  Status Recover();

  /// In-doubt transactions found by the last Recover.
  const std::vector<TxnId>& recovered_undecided() const {
    return undecided_order_;
  }

  /// Applies (commit) or discards (abort) an in-doubt transaction's
  /// logged effects and writes the outcome marker.
  Status ResolveRecovered(TxnId txn, bool commit);

  // ---------------------------------------------- Replica resync hooks
  //
  // The replication layer (DESIGN.md §13) rebuilds a stale replica from a
  // surviving one: the *source* streams a snapshot of its live rows (with
  // RowIds, so the target mirrors the slot layout) followed by committed
  // WAL-delta rounds; the *target* starts empty, absorbs both, then
  // rebuilds indexes and checkpoints at the 2PC-consistent cutover.

  /// Source: committed WAL data records at stream positions >= *cursor,
  /// advancing *cursor past every record whose transaction outcome is
  /// already decided. Markers are skipped; a record of a still-deciding
  /// transaction stops the scan (a later round ships it once its
  /// commit/abort marker lands, and the cutover's exclusive lock
  /// guarantees the final round finds everything decided).
  StatusOr<std::vector<std::string>> CommittedWalSince(size_t* cursor);

  /// Source: the fragment's committed contents — live rows with the
  /// effects of still-open (undecided) transactions undone from their
  /// undo records, keyed by RowId so the target mirrors the slot layout.
  /// Paired with a CommittedWalSince cursor taken in the same simulation
  /// event this is an exact snapshot/delta boundary: fragment-level
  /// exclusive locks admit at most one writer transaction at a time.
  std::vector<std::pair<storage::RowId, Tuple>> CommittedRows();

  /// Target: drops all contents so a superseding bulk stream can restart.
  void ResyncReset();

  /// Target: restores one snapshot row at `row`, padding tombstoned slots
  /// in between (bulk rows arrive in increasing RowId order).
  Status ResyncRestoreRow(storage::RowId row, Tuple tuple);

  /// Target: applies one shipped committed WAL data record.
  Status ResyncApplyRecord(const std::string& record);

  /// Target: index rebuild + checkpoint after the final delta; the
  /// replica's stable state is now self-sufficient for normal Recover().
  /// Pads trailing tombstoned slots up to `source_slots` first — the bulk
  /// snapshot ships live rows only, so rows deleted at the end of the
  /// source's RowId space would otherwise be lost and later inserts would
  /// diverge the replicas' RowId assignment (and checkpoint bytes).
  Status FinishResync(uint64_t source_slots);

  /// Number of WAL records written over this OFM's lifetime.
  uint64_t wal_records() const { return wal_records_; }

  /// Number of WAL data records redone (applied) by Recover and
  /// ResolveRecovered over this OFM's lifetime.
  uint64_t redo_records_applied() const { return redo_applied_; }

 private:
  struct UndoRecord {
    enum class Op : uint8_t { kInsert, kDelete, kUpdate } op;
    storage::RowId row;
    Tuple before;  // kDelete/kUpdate.
  };
  struct OpenTxn {
    std::vector<UndoRecord> undo;
    std::vector<std::string> pending_redo;  // Buffered until Prepare.
    bool prepared = false;
  };

  std::string WalStream() const { return fragment_name_ + ".wal"; }
  std::string SnapshotName() const { return fragment_name_ + ".ckpt"; }

  /// Appends (or buffers) a redo record; charges disk time when forced.
  Status LogRedo(TxnId txn, std::string record);
  /// Applies one WAL data record during recovery/decision resolution;
  /// `reader` is positioned just past the (op, txn) header.
  Status ApplyWalData(uint8_t op, BinaryReader* reader);
  Status LogMarker(TxnId txn, uint8_t op);
  void ChargeCpu(sim::SimTime ns);

  void IndexInsert(storage::RowId row, const Tuple& tuple);
  void IndexDelete(storage::RowId row, const Tuple& tuple);

  std::string fragment_name_;
  Options options_;
  storage::Relation relation_;
  std::vector<std::unique_ptr<storage::HashIndex>> hash_indexes_;
  std::vector<std::unique_ptr<storage::BTreeIndex>> btree_indexes_;
  std::map<TxnId, OpenTxn> open_txns_;
  // In-doubt transactions from the last Recover: their WAL data records,
  // awaiting the coordinator's decision.
  std::map<TxnId, std::vector<std::string>> undecided_records_;
  std::vector<TxnId> undecided_order_;
  ExecStats last_exec_stats_;
  uint64_t wal_records_ = 0;
  uint64_t redo_applied_ = 0;
};

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_OFM_H_
