#ifndef PRISMA_EXEC_FIXPOINT_H_
#define PRISMA_EXEC_FIXPOINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"
#include "exec/transitive_closure.h"

namespace prisma::exec {

/// Pairs routed to destination partitions by one fixpoint activity.
/// Element i is the (sorted, distinct) set of pairs owed to partition i,
/// so batch contents are deterministic regardless of mail arrival order.
using RoutedPairs = std::vector<std::set<Tuple>>;

/// One partition's share of a distributed transitive-closure fixpoint
/// (DESIGN.md §11). This is the pure, mail-free kernel: the surrounding
/// POOL-X process (gdh::FixpointPeProcess) feeds it edge tuples and
/// absorbed delta batches and ships whatever it routes.
///
/// Partitioning scheme (N partitions, hash = Value::Hash() % N):
///   - The edge relation E arrives partitioned by hash(first column) —
///     exactly what the OFM shuffle producers emit for partition_column 0.
///   - A closure pair (x, z) is *owned* by partition hash(z): ownership
///     by second endpoint means an owned pair (x, y) is co-located with
///     every edge (y, ·) it can extend, so delta ⋈ E is purely local.
///   - The smart (squaring) strategy additionally keeps an *index* copy
///     of every pair partitioned by first endpoint, so T ⋈ T is local
///     too; every derivation is routed to both homes.
///
/// Stats follow the single-node conventions of TransitiveClosure():
/// distinct non-NULL edges only, pairs_derived counts join products
/// before duplicate elimination, and summing pairs_derived across
/// partitions reproduces the single-node figure exactly.
class FixpointPartition {
 public:
  FixpointPartition(TcAlgorithm algorithm, size_t num_partitions,
                    size_t my_index);

  /// Ingests one local edge tuple (from the side-0 shuffle). Tuples with
  /// a NULL endpoint are counted in stats().null_edges_ignored and
  /// dropped, matching the single-node operator; duplicates collapse.
  Status AddEdge(const Tuple& tuple);

  /// Routes this partition's distinct local edges to their closure homes
  /// (round 0). `index_out` is filled only for the smart strategy; both
  /// outputs are resized to num_partitions.
  void Seed(RoutedPairs* owner_out, RoutedPairs* index_out);

  /// Runs join round `round` (1-based) over the state absorbed so far
  /// and routes the derived pairs. Seminaive consumes the pending delta;
  /// naive/smart rejoin their full sets. Returns the number of join
  /// products (also accumulated into stats().pairs_derived).
  uint64_t JoinRound(RoutedPairs* owner_out, RoutedPairs* index_out);

  /// Absorbs owned-copy pairs shipped to this partition; returns how
  /// many were new (deduplicated against the known set). New pairs also
  /// enter the pending delta consumed by the next JoinRound, and are
  /// appended to `fresh_out` when given (so the caller can mirror them
  /// into its intermediate-result store without re-deduplicating).
  uint64_t AbsorbOwned(const std::vector<Tuple>& tuples,
                       std::vector<Tuple>* fresh_out = nullptr);

  /// Absorbs index-copy pairs (smart strategy only).
  void AbsorbIndex(const std::vector<Tuple>& tuples);

  /// True when no new owned pairs have been absorbed since the last
  /// JoinRound (the per-partition "delta empty" vote).
  bool delta_empty() const { return pending_delta_.empty(); }

  /// This partition's share of the closure, in Tuple::Compare order.
  /// Partitions hold disjoint slices, so concatenating and sorting the
  /// shares reproduces the single-node sorted output byte for byte.
  std::vector<Tuple> OwnedSorted() const;

  size_t PartitionOf(const Value& v) const {
    return static_cast<size_t>(v.Hash() % num_partitions_);
  }

  TcAlgorithm algorithm() const { return algorithm_; }
  size_t num_partitions() const { return num_partitions_; }
  const TcStats& stats() const { return stats_; }
  uint64_t owned_size() const { return static_cast<uint64_t>(owned_.size()); }
  uint64_t edge_count() const { return edge_count_; }

 private:
  void Route(const Value& from, const Value& to, RoutedPairs* owner_out,
             RoutedPairs* index_out);

  const TcAlgorithm algorithm_;
  const size_t num_partitions_;
  const size_t my_index_;

  /// Local slice of E as an adjacency map: first endpoint -> distinct
  /// successors. Ordered containers keep every iteration deterministic
  /// (this header is on the lint D2 observable surface).
  std::map<Value, std::set<Value>> edges_;
  uint64_t edge_count_ = 0;

  /// Owned closure pairs (partitioned by second endpoint).
  std::set<Tuple> owned_;
  /// Owned pairs absorbed since the last join round (the delta).
  std::set<Tuple> pending_delta_;
  /// Smart only: index copy keyed by first endpoint.
  std::map<Value, std::set<Value>> index_;

  TcStats stats_;
};

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_FIXPOINT_H_
