#include "exec/join.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace prisma::exec {
namespace {

std::vector<size_t> LeftCols(const std::vector<std::pair<size_t, size_t>>& keys) {
  std::vector<size_t> out;
  out.reserve(keys.size());
  for (const auto& [l, _] : keys) out.push_back(l);
  return out;
}

std::vector<size_t> RightCols(
    const std::vector<std::pair<size_t, size_t>>& keys) {
  std::vector<size_t> out;
  out.reserve(keys.size());
  for (const auto& [_, r] : keys) out.push_back(r);
  return out;
}

/// True if the key columns of `l` and `r` are pairwise equal (NULL keys
/// never join, as in SQL).
bool KeysEqual(const Tuple& l, const std::vector<size_t>& lcols,
               const Tuple& r, const std::vector<size_t>& rcols) {
  for (size_t i = 0; i < lcols.size(); ++i) {
    const Value& a = l.at(lcols[i]);
    const Value& b = r.at(rcols[i]);
    if (a.is_null() || b.is_null()) return false;
    if (a.Compare(b) != 0) return false;
  }
  return true;
}

bool HasNullKey(const Tuple& t, const std::vector<size_t>& cols) {
  for (size_t c : cols) {
    if (t.at(c).is_null()) return true;
  }
  return false;
}

Status EmitIfPassing(const Tuple& l, const Tuple& r, const JoinFilter& filter,
                     std::vector<Tuple>* out) {
  Tuple joined = Tuple::Concat(l, r);
  if (filter != nullptr) {
    ASSIGN_OR_RETURN(bool keep, filter(joined));
    if (!keep) return Status::OK();
  }
  out->push_back(std::move(joined));
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<Tuple>> HashJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const JoinFilter& filter, JoinCounters* counters) {
  if (keys.empty()) {
    return InvalidArgumentError("hash join requires equi-join keys");
  }
  JoinCounters local;
  JoinCounters& c = counters != nullptr ? *counters : local;
  const std::vector<size_t> lcols = LeftCols(keys);
  const std::vector<size_t> rcols = RightCols(keys);

  // Build on the smaller side.
  const bool build_left = left.size() <= right.size();
  const std::vector<Tuple>& build = build_left ? left : right;
  const std::vector<Tuple>& probe = build_left ? right : left;
  const std::vector<size_t>& bcols = build_left ? lcols : rcols;
  const std::vector<size_t>& pcols = build_left ? rcols : lcols;

  std::unordered_map<uint64_t, std::vector<size_t>> table;
  table.reserve(build.size());
  for (size_t i = 0; i < build.size(); ++i) {
    if (HasNullKey(build[i], bcols)) continue;  // NULL keys never join.
    table[HashTupleColumns(build[i], bcols)].push_back(i);
    ++c.hash_ops;
  }

  std::vector<Tuple> out;
  for (const Tuple& p : probe) {
    if (HasNullKey(p, pcols)) continue;
    ++c.hash_ops;
    auto it = table.find(HashTupleColumns(p, pcols));
    if (it == table.end()) continue;
    for (const size_t bi : it->second) {
      ++c.compare_ops;
      const Tuple& b = build[bi];
      // Re-verify (hash collisions) with real comparisons.
      const bool match = build_left ? KeysEqual(b, bcols, p, pcols)
                                    : KeysEqual(p, pcols, b, bcols);
      if (!match) continue;
      ++c.pairs_examined;
      const Tuple& l = build_left ? b : p;
      const Tuple& r = build_left ? p : b;
      RETURN_IF_ERROR(EmitIfPassing(l, r, filter, &out));
    }
  }
  return out;
}

StatusOr<std::vector<Tuple>> NestedLoopJoin(const std::vector<Tuple>& left,
                                            const std::vector<Tuple>& right,
                                            const JoinFilter& filter,
                                            JoinCounters* counters) {
  JoinCounters local;
  JoinCounters& c = counters != nullptr ? *counters : local;
  std::vector<Tuple> out;
  for (const Tuple& l : left) {
    for (const Tuple& r : right) {
      ++c.pairs_examined;
      RETURN_IF_ERROR(EmitIfPassing(l, r, filter, &out));
    }
  }
  return out;
}

namespace {

/// Flattened view over a run of batches: global row index -> (batch, row).
struct BatchedSide {
  std::vector<const ColumnBatch*> batch_of;  // Per global row.
  std::vector<uint32_t> row_of;
  /// Per global row: HashTupleColumns over `cols` (valid when the null
  /// mask is clear) and whether any key column is NULL.
  std::vector<uint64_t> key_hash;
  std::vector<uint8_t> null_key;

  size_t size() const { return batch_of.size(); }
  Tuple RowTuple(size_t i) const { return batch_of[i]->RowAt(row_of[i]); }
};

/// Column-wise key preparation: one pass per key column per batch,
/// reproducing HashTupleColumns (seed then per-column combine) exactly.
BatchedSide PrepareSide(const std::vector<ColumnBatch>& batches,
                        const std::vector<size_t>& cols) {
  BatchedSide side;
  size_t total = 0;
  for (const ColumnBatch& b : batches) total += b.num_rows();
  side.batch_of.reserve(total);
  side.row_of.reserve(total);
  side.key_hash.assign(total, kHashTupleColumnsSeed);
  side.null_key.assign(total, 0);
  size_t at = 0;
  for (const ColumnBatch& b : batches) {
    const size_t rows = b.num_rows();
    for (uint32_t r = 0; r < rows; ++r) {
      side.batch_of.push_back(&b);
      side.row_of.push_back(r);
    }
    for (const size_t c : cols) {
      const ColumnBatch::Column& col = b.column(c);
      for (size_t r = 0; r < rows; ++r) {
        if (col.IsNull(r)) {
          side.null_key[at + r] = 1;
        } else {
          side.key_hash[at + r] = CombineTupleHash(side.key_hash[at + r],
                                                   col.ValueAt(r).Hash());
        }
      }
    }
    at += rows;
  }
  return side;
}

/// KeysEqual over batched rows: pairwise column comparison with NULL
/// rejection, identical to the tuple form.
bool BatchKeysEqual(const BatchedSide& l, size_t li,
                    const std::vector<size_t>& lcols, const BatchedSide& r,
                    size_t ri, const std::vector<size_t>& rcols) {
  for (size_t i = 0; i < lcols.size(); ++i) {
    const ColumnBatch::Column& lc = l.batch_of[li]->column(lcols[i]);
    const ColumnBatch::Column& rc = r.batch_of[ri]->column(rcols[i]);
    if (lc.IsNull(l.row_of[li]) || rc.IsNull(r.row_of[ri])) return false;
    if (lc.ValueAt(l.row_of[li]).Compare(rc.ValueAt(r.row_of[ri])) != 0) {
      return false;
    }
  }
  return true;
}

/// Appends a joined row to the open output batch, flushing at batch_rows.
struct BatchEmitter {
  size_t batch_rows;
  size_t arity;
  std::vector<ColumnBatch> out;
  ColumnBatch open;

  explicit BatchEmitter(size_t batch_rows, size_t arity)
      : batch_rows(batch_rows == 0 ? ColumnBatch::kDefaultBatchRows
                                   : batch_rows),
        arity(arity),
        open(arity) {}

  Status Emit(const Tuple& l, const Tuple& r, const JoinFilter& filter) {
    Tuple joined = Tuple::Concat(l, r);
    if (filter != nullptr) {
      ASSIGN_OR_RETURN(bool keep, filter(joined));
      if (!keep) return Status::OK();
    }
    open.AppendTuple(joined);
    if (open.num_rows() >= batch_rows) {
      out.push_back(std::move(open));
      open = ColumnBatch(arity);
    }
    return Status::OK();
  }

  std::vector<ColumnBatch> Take() {
    if (open.num_rows() > 0) out.push_back(std::move(open));
    return std::move(out);
  }
};

size_t BatchArity(const std::vector<ColumnBatch>& batches) {
  return batches.empty() ? 0 : batches[0].num_columns();
}

}  // namespace

StatusOr<std::vector<ColumnBatch>> VectorizedHashJoin(
    const std::vector<ColumnBatch>& left,
    const std::vector<ColumnBatch>& right,
    const std::vector<std::pair<size_t, size_t>>& keys, size_t batch_rows,
    const JoinFilter& filter, JoinCounters* counters) {
  if (keys.empty()) {
    return InvalidArgumentError("hash join requires equi-join keys");
  }
  JoinCounters local;
  JoinCounters& c = counters != nullptr ? *counters : local;
  const std::vector<size_t> lcols = LeftCols(keys);
  const std::vector<size_t> rcols = RightCols(keys);

  BatchedSide lside = PrepareSide(left, lcols);
  BatchedSide rside = PrepareSide(right, rcols);

  // Build on the smaller side, as HashJoin does.
  const bool build_left = lside.size() <= rside.size();
  const BatchedSide& build = build_left ? lside : rside;
  const BatchedSide& probe = build_left ? rside : lside;
  const std::vector<size_t>& bcols = build_left ? lcols : rcols;
  const std::vector<size_t>& pcols = build_left ? rcols : lcols;

  std::unordered_map<uint64_t, std::vector<size_t>> table;
  table.reserve(build.size());
  for (size_t i = 0; i < build.size(); ++i) {
    if (build.null_key[i] != 0) continue;  // NULL keys never join.
    table[build.key_hash[i]].push_back(i);
    ++c.hash_ops;
  }

  BatchEmitter emit(batch_rows, BatchArity(left) + BatchArity(right));
  for (size_t pi = 0; pi < probe.size(); ++pi) {
    if (probe.null_key[pi] != 0) continue;
    ++c.hash_ops;
    auto it = table.find(probe.key_hash[pi]);
    if (it == table.end()) continue;
    for (const size_t bi : it->second) {
      ++c.compare_ops;
      // Re-verify (hash collisions) with real comparisons.
      const bool match =
          build_left ? BatchKeysEqual(build, bi, bcols, probe, pi, pcols)
                     : BatchKeysEqual(probe, pi, pcols, build, bi, bcols);
      if (!match) continue;
      ++c.pairs_examined;
      const Tuple l = build_left ? build.RowTuple(bi) : probe.RowTuple(pi);
      const Tuple r = build_left ? probe.RowTuple(pi) : build.RowTuple(bi);
      RETURN_IF_ERROR(emit.Emit(l, r, filter));
    }
  }
  return emit.Take();
}

StatusOr<std::vector<ColumnBatch>> VectorizedNestedLoopJoin(
    const std::vector<ColumnBatch>& left,
    const std::vector<ColumnBatch>& right, size_t batch_rows,
    const JoinFilter& filter, JoinCounters* counters) {
  JoinCounters local;
  JoinCounters& c = counters != nullptr ? *counters : local;
  BatchEmitter emit(batch_rows, BatchArity(left) + BatchArity(right));
  for (const ColumnBatch& lb : left) {
    for (size_t lr = 0; lr < lb.num_rows(); ++lr) {
      const Tuple l = lb.RowAt(lr);
      for (const ColumnBatch& rb : right) {
        for (size_t rr = 0; rr < rb.num_rows(); ++rr) {
          ++c.pairs_examined;
          RETURN_IF_ERROR(emit.Emit(l, rb.RowAt(rr), filter));
        }
      }
    }
  }
  return emit.Take();
}

StatusOr<std::vector<Tuple>> MergeJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const JoinFilter& filter, JoinCounters* counters) {
  if (keys.empty()) {
    return InvalidArgumentError("merge join requires equi-join keys");
  }
  JoinCounters local;
  JoinCounters& c = counters != nullptr ? *counters : local;
  const std::vector<size_t> lcols = LeftCols(keys);
  const std::vector<size_t> rcols = RightCols(keys);

  auto key_less = [&c](const Tuple& a, const std::vector<size_t>& acols,
                       const Tuple& b, const std::vector<size_t>& bcols) {
    for (size_t i = 0; i < acols.size(); ++i) {
      ++c.compare_ops;
      const int cmp = a.at(acols[i]).Compare(b.at(bcols[i]));
      if (cmp != 0) return cmp < 0;
    }
    return false;
  };

  std::vector<Tuple> ls = left;
  std::vector<Tuple> rs = right;
  std::sort(ls.begin(), ls.end(), [&](const Tuple& a, const Tuple& b) {
    return key_less(a, lcols, b, lcols);
  });
  std::sort(rs.begin(), rs.end(), [&](const Tuple& a, const Tuple& b) {
    return key_less(a, rcols, b, rcols);
  });

  std::vector<Tuple> out;
  size_t i = 0;
  size_t j = 0;
  while (i < ls.size() && j < rs.size()) {
    if (HasNullKey(ls[i], lcols)) {
      ++i;
      continue;
    }
    if (HasNullKey(rs[j], rcols)) {
      ++j;
      continue;
    }
    if (key_less(ls[i], lcols, rs[j], rcols)) {
      ++i;
    } else if (key_less(rs[j], rcols, ls[i], lcols)) {
      ++j;
    } else {
      // Equal-key groups; emit the cross product of the two runs.
      size_t i_end = i + 1;
      while (i_end < ls.size() && !key_less(ls[i], lcols, ls[i_end], lcols)) {
        ++i_end;
      }
      size_t j_end = j + 1;
      while (j_end < rs.size() && !key_less(rs[j], rcols, rs[j_end], rcols)) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          ++c.pairs_examined;
          RETURN_IF_ERROR(EmitIfPassing(ls[a], rs[b], filter, &out));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

}  // namespace prisma::exec
