#ifndef PRISMA_EXEC_TRANSITIVE_CLOSURE_H_
#define PRISMA_EXEC_TRANSITIVE_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"

namespace prisma::exec {

/// Evaluation strategies for the OFM's transitive-closure operator (§2.5),
/// the extension that gives PRISMAlog its recursive power (§2.3).
enum class TcAlgorithm {
  /// Naive fixpoint: recompute T := E ∪ (T ⋈ E) until no growth.
  /// O(diameter) iterations, re-deriving every known pair each round.
  kNaive,
  /// Seminaive (differential) fixpoint: join only the newly derived
  /// delta with E each round. The standard Datalog evaluation.
  kSeminaive,
  /// "Smart" squaring: T := T ∪ (T ⋈ T), doubling path lengths each
  /// round; O(log diameter) iterations of bigger joins.
  kSmart,
};

const char* TcAlgorithmName(TcAlgorithm algorithm);

/// Work statistics of one transitive-closure evaluation.
///
/// Stats are a function of the *distinct, non-NULL* edge set: duplicate
/// input edges and NULL-endpoint tuples are removed before the fixpoint
/// runs, so all three algorithms report identical stats for inputs that
/// differ only in duplicates or NULLs (the NULLs are accounted
/// separately in `null_edges_ignored`).
struct TcStats {
  uint64_t iterations = 0;
  /// Pairs produced by joins before duplicate elimination — the dominant
  /// cost term; naive re-derives massively, seminaive does not.
  uint64_t pairs_derived = 0;
  uint64_t result_size = 0;
  /// Input tuples dropped because an endpoint was NULL (cannot join).
  uint64_t null_edges_ignored = 0;
};

/// Computes the (irreflexive) transitive closure of the binary relation
/// `edges`, each tuple being a (from, to) pair. Output pairs are distinct
/// and sorted. Fails on tuples whose arity is not 2. NULL endpoints are
/// ignored (they cannot join).
StatusOr<std::vector<Tuple>> TransitiveClosure(const std::vector<Tuple>& edges,
                                               TcAlgorithm algorithm,
                                               TcStats* stats = nullptr);

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_TRANSITIVE_CLOSURE_H_
