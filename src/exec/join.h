#ifndef PRISMA_EXEC_JOIN_H_
#define PRISMA_EXEC_JOIN_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/column_batch.h"
#include "common/status.h"
#include "common/tuple.h"

namespace prisma::exec {

/// Per-tuple residual filter applied to a joined (left ++ right) tuple;
/// null means accept everything.
using JoinFilter = std::function<StatusOr<bool>(const Tuple&)>;

/// Work counters reported by the join kernels, used by the virtual-time
/// cost model and the optimizer's calibration tests.
struct JoinCounters {
  uint64_t hash_ops = 0;      // Hash-table inserts + probes.
  uint64_t compare_ops = 0;   // Key or tuple comparisons.
  uint64_t pairs_examined = 0;  // Candidate pairs fed to the filter.
};

/// Hash equi-join: builds on the smaller input, probes with the larger.
/// `keys` pairs (left column, right column); must be non-empty.
StatusOr<std::vector<Tuple>> HashJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const JoinFilter& filter = nullptr, JoinCounters* counters = nullptr);

/// Nested-loop join on an arbitrary filter (cross product when null).
StatusOr<std::vector<Tuple>> NestedLoopJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    const JoinFilter& filter = nullptr, JoinCounters* counters = nullptr);

/// Sort-merge equi-join; sorts copies of both inputs by the key columns.
StatusOr<std::vector<Tuple>> MergeJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const JoinFilter& filter = nullptr, JoinCounters* counters = nullptr);

/// Vectorized hash equi-join over ColumnBatch inputs (DESIGN.md §12): key
/// hashes and null-key masks are computed column-wise per batch, then the
/// build/probe protocol of HashJoin runs over the precomputed lanes.
/// Output, counters and error behavior are identical to HashJoin on the
/// flattened inputs — build on the smaller side, NULL keys never join,
/// probe-order output with insertion-order match lists. `batch_rows`
/// bounds output batch sizes.
StatusOr<std::vector<ColumnBatch>> VectorizedHashJoin(
    const std::vector<ColumnBatch>& left,
    const std::vector<ColumnBatch>& right,
    const std::vector<std::pair<size_t, size_t>>& keys, size_t batch_rows,
    const JoinFilter& filter = nullptr, JoinCounters* counters = nullptr);

/// Vectorized nested-loop join; equivalent to NestedLoopJoin on the
/// flattened inputs.
StatusOr<std::vector<ColumnBatch>> VectorizedNestedLoopJoin(
    const std::vector<ColumnBatch>& left,
    const std::vector<ColumnBatch>& right, size_t batch_rows,
    const JoinFilter& filter = nullptr, JoinCounters* counters = nullptr);

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_JOIN_H_
