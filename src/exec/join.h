#ifndef PRISMA_EXEC_JOIN_H_
#define PRISMA_EXEC_JOIN_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"

namespace prisma::exec {

/// Per-tuple residual filter applied to a joined (left ++ right) tuple;
/// null means accept everything.
using JoinFilter = std::function<StatusOr<bool>(const Tuple&)>;

/// Work counters reported by the join kernels, used by the virtual-time
/// cost model and the optimizer's calibration tests.
struct JoinCounters {
  uint64_t hash_ops = 0;      // Hash-table inserts + probes.
  uint64_t compare_ops = 0;   // Key or tuple comparisons.
  uint64_t pairs_examined = 0;  // Candidate pairs fed to the filter.
};

/// Hash equi-join: builds on the smaller input, probes with the larger.
/// `keys` pairs (left column, right column); must be non-empty.
StatusOr<std::vector<Tuple>> HashJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const JoinFilter& filter = nullptr, JoinCounters* counters = nullptr);

/// Nested-loop join on an arbitrary filter (cross product when null).
StatusOr<std::vector<Tuple>> NestedLoopJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    const JoinFilter& filter = nullptr, JoinCounters* counters = nullptr);

/// Sort-merge equi-join; sorts copies of both inputs by the key columns.
StatusOr<std::vector<Tuple>> MergeJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const JoinFilter& filter = nullptr, JoinCounters* counters = nullptr);

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_JOIN_H_
