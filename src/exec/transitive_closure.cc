#include "exec/transitive_closure.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/value.h"

namespace prisma::exec {
namespace {

/// Dense-id encoding of the node domain so the fixpoint loops run on
/// integers; ids are positions in `nodes`.
struct Domain {
  std::vector<Value> nodes;
  std::map<Value, int32_t> ids;

  int32_t Intern(const Value& v) {
    auto [it, inserted] = ids.try_emplace(v, static_cast<int32_t>(nodes.size()));
    if (inserted) nodes.push_back(v);
    return it->second;
  }
};

uint64_t PairKey(int32_t a, int32_t b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

using PairSet = std::unordered_set<uint64_t>;

/// Adjacency list: succ[a] = all b with (a, b) in the relation.
using Adjacency = std::vector<std::vector<int32_t>>;

std::vector<Tuple> MaterializeSorted(const PairSet& pairs,
                                     const Domain& domain) {
  std::vector<std::pair<int32_t, int32_t>> flat;
  flat.reserve(pairs.size());
  for (const uint64_t key : pairs) {
    flat.push_back({static_cast<int32_t>(key >> 32),
                    static_cast<int32_t>(key & 0xffffffffu)});
  }
  std::sort(flat.begin(), flat.end(), [&](const auto& x, const auto& y) {
    const int cx = domain.nodes[x.first].Compare(domain.nodes[y.first]);
    if (cx != 0) return cx < 0;
    return domain.nodes[x.second].Compare(domain.nodes[y.second]) < 0;
  });
  std::vector<Tuple> out;
  out.reserve(flat.size());
  for (const auto& [a, b] : flat) {
    out.push_back(Tuple({domain.nodes[a], domain.nodes[b]}));
  }
  return out;
}

void RunNaive(const std::vector<std::pair<int32_t, int32_t>>& edges,
              const Adjacency& succ, PairSet* closure, TcStats* stats) {
  for (const auto& [a, b] : edges) closure->insert(PairKey(a, b));
  while (true) {
    ++stats->iterations;
    // Recompute T ⋈ E over the *entire* closure so far — the naive
    // algorithm's signature inefficiency.
    PairSet next = *closure;
    for (const uint64_t key : *closure) {
      const int32_t mid = static_cast<int32_t>(key & 0xffffffffu);
      const int32_t from = static_cast<int32_t>(key >> 32);
      if (static_cast<size_t>(mid) >= succ.size()) continue;
      for (const int32_t to : succ[mid]) {
        ++stats->pairs_derived;
        next.insert(PairKey(from, to));
      }
    }
    if (next.size() == closure->size()) break;
    *closure = std::move(next);
  }
}

void RunSeminaive(const std::vector<std::pair<int32_t, int32_t>>& edges,
                  const Adjacency& succ, PairSet* closure, TcStats* stats) {
  std::vector<std::pair<int32_t, int32_t>> delta;
  for (const auto& [a, b] : edges) {
    if (closure->insert(PairKey(a, b)).second) delta.push_back({a, b});
  }
  while (!delta.empty()) {
    ++stats->iterations;
    std::vector<std::pair<int32_t, int32_t>> next_delta;
    // Only the newly derived pairs join with E.
    for (const auto& [from, mid] : delta) {
      if (static_cast<size_t>(mid) >= succ.size()) continue;
      for (const int32_t to : succ[mid]) {
        ++stats->pairs_derived;
        if (closure->insert(PairKey(from, to)).second) {
          next_delta.push_back({from, to});
        }
      }
    }
    delta = std::move(next_delta);
  }
}

void RunSmart(const std::vector<std::pair<int32_t, int32_t>>& edges,
              size_t num_nodes, PairSet* closure, TcStats* stats) {
  for (const auto& [a, b] : edges) closure->insert(PairKey(a, b));
  while (true) {
    ++stats->iterations;
    // T ⋈ T doubles reachable path length each round.
    Adjacency succ(num_nodes);
    for (const uint64_t key : *closure) {
      succ[key >> 32].push_back(static_cast<int32_t>(key & 0xffffffffu));
    }
    const size_t before = closure->size();
    PairSet next = *closure;
    for (const uint64_t key : *closure) {
      const int32_t from = static_cast<int32_t>(key >> 32);
      const int32_t mid = static_cast<int32_t>(key & 0xffffffffu);
      for (const int32_t to : succ[mid]) {
        ++stats->pairs_derived;
        next.insert(PairKey(from, to));
      }
    }
    *closure = std::move(next);
    if (closure->size() == before) break;
  }
}

}  // namespace

const char* TcAlgorithmName(TcAlgorithm algorithm) {
  switch (algorithm) {
    case TcAlgorithm::kNaive:
      return "naive";
    case TcAlgorithm::kSeminaive:
      return "seminaive";
    case TcAlgorithm::kSmart:
      return "smart";
  }
  return "?";
}

StatusOr<std::vector<Tuple>> TransitiveClosure(const std::vector<Tuple>& edges,
                                               TcAlgorithm algorithm,
                                               TcStats* stats) {
  TcStats local;
  TcStats& s = stats != nullptr ? *stats : local;
  s = TcStats();

  Domain domain;
  std::vector<std::pair<int32_t, int32_t>> e;
  e.reserve(edges.size());
  for (const Tuple& t : edges) {
    if (t.size() != 2) {
      return InvalidArgumentError(
          "transitive closure input must be a binary relation");
    }
    if (t.at(0).is_null() || t.at(1).is_null()) {
      ++s.null_edges_ignored;
      continue;
    }
    e.push_back({domain.Intern(t.at(0)), domain.Intern(t.at(1))});
  }
  // Deduplicate so stats are a function of the distinct edge set. Smart
  // rebuilds its adjacency from the (set-valued) closure each round and
  // so never saw duplicates; naive/seminaive joined against the raw edge
  // list and silently inflated pairs_derived per duplicate.
  std::sort(e.begin(), e.end());
  e.erase(std::unique(e.begin(), e.end()), e.end());

  Adjacency succ(domain.nodes.size());
  for (const auto& [a, b] : e) succ[a].push_back(b);

  PairSet closure;
  switch (algorithm) {
    case TcAlgorithm::kNaive:
      RunNaive(e, succ, &closure, &s);
      break;
    case TcAlgorithm::kSeminaive:
      RunSeminaive(e, succ, &closure, &s);
      break;
    case TcAlgorithm::kSmart:
      RunSmart(e, domain.nodes.size(), &closure, &s);
      break;
  }
  s.result_size = closure.size();
  return MaterializeSorted(closure, domain);
}

}  // namespace prisma::exec
