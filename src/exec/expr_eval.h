#ifndef PRISMA_EXEC_EXPR_EVAL_H_
#define PRISMA_EXEC_EXPR_EVAL_H_

#include "algebra/expr.h"
#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace prisma::exec {

/// Tree-walking evaluation of a bound expression against one input tuple.
///
/// This is the *interpretive* baseline the paper's OFM expression compiler
/// exists to beat (§2.5: dynamic routine generation "avoids the otherwise
/// excessive interpretation overhead"); experiment E4 contrasts it with
/// CompiledExpr.
///
/// NULL semantics: arithmetic and comparisons with a NULL operand yield
/// NULL; AND/OR follow Kleene three-valued logic; IS NULL never yields
/// NULL. Division or modulo by zero is an kInvalidArgument error.
StatusOr<Value> EvalExpr(const algebra::Expr& expr, const Tuple& tuple);

/// Evaluates a predicate, mapping NULL to false (SQL WHERE semantics).
StatusOr<bool> EvalPredicate(const algebra::Expr& expr, const Tuple& tuple);

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_EXPR_EVAL_H_
