#include "exec/ofm.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/str_util.h"
#include "exec/expr_eval.h"

namespace prisma::exec {
namespace {

// WAL record opcodes.
constexpr uint8_t kWalInsert = 1;
constexpr uint8_t kWalDelete = 2;
constexpr uint8_t kWalUpdate = 3;
constexpr uint8_t kWalCommit = 4;
constexpr uint8_t kWalAbort = 5;
constexpr uint8_t kWalPrepare = 6;

std::string EncodeDataRecord(uint8_t op, TxnId txn, storage::RowId row,
                             const Tuple* tuple) {
  BinaryWriter w;
  w.PutU8(op);
  w.PutI64(txn);
  w.PutU64(row);
  if (tuple != nullptr) w.PutTuple(*tuple);
  return w.Take();
}

std::string EncodeMarker(uint8_t op, TxnId txn) {
  BinaryWriter w;
  w.PutU8(op);
  w.PutI64(txn);
  return w.Take();
}

}  // namespace

const char* OfmTypeName(OfmType type) {
  switch (type) {
    case OfmType::kFull:
      return "full";
    case OfmType::kQueryOnly:
      return "query_only";
  }
  return "?";
}

Ofm::Ofm(std::string fragment_name, Schema schema, Options options)
    : fragment_name_(std::move(fragment_name)),
      options_(std::move(options)),
      relation_(fragment_name_, std::move(schema), options_.memory) {
  PRISMA_CHECK(options_.type == OfmType::kQueryOnly ||
               options_.stable != nullptr)
      << "full OFM " << fragment_name_ << " requires stable storage";
}

void Ofm::ChargeCpu(sim::SimTime ns) {
  if (options_.exec.charge) options_.exec.charge(ns);
}

// ------------------------------------------------------------------ Indexes

Status Ofm::CreateHashIndex(const std::string& index_name,
                            std::vector<size_t> key_columns) {
  for (size_t c : key_columns) {
    if (c >= schema().num_columns()) {
      return InvalidArgumentError("index column out of range");
    }
  }
  auto idx = std::make_unique<storage::HashIndex>(index_name,
                                                  std::move(key_columns));
  idx->Rebuild(relation_);
  ChargeCpu(static_cast<sim::SimTime>(relation_.num_tuples()) *
            options_.exec.costs.hash_ns);
  hash_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Ofm::CreateBTreeIndex(const std::string& index_name,
                             std::vector<size_t> key_columns) {
  for (size_t c : key_columns) {
    if (c >= schema().num_columns()) {
      return InvalidArgumentError("index column out of range");
    }
  }
  auto idx = std::make_unique<storage::BTreeIndex>(index_name,
                                                   std::move(key_columns));
  idx->Rebuild(relation_);
  ChargeCpu(static_cast<sim::SimTime>(relation_.num_tuples()) *
            options_.exec.costs.compare_ns * 4);
  btree_indexes_.push_back(std::move(idx));
  return Status::OK();
}

const storage::HashIndex* Ofm::FindHashIndex(
    const std::vector<size_t>& key_columns) const {
  for (const auto& idx : hash_indexes_) {
    if (idx->key_columns() == key_columns) return idx.get();
  }
  return nullptr;
}

const storage::BTreeIndex* Ofm::FindBTreeIndex(
    const std::vector<size_t>& key_columns) const {
  for (const auto& idx : btree_indexes_) {
    if (idx->key_columns() == key_columns) return idx.get();
  }
  return nullptr;
}

void Ofm::IndexInsert(storage::RowId row, const Tuple& tuple) {
  for (const auto& idx : hash_indexes_) idx->OnInsert(row, tuple);
  for (const auto& idx : btree_indexes_) idx->OnInsert(row, tuple);
  ChargeCpu(static_cast<sim::SimTime>(hash_indexes_.size() +
                                      btree_indexes_.size()) *
            options_.exec.costs.hash_ns);
}

void Ofm::IndexDelete(storage::RowId row, const Tuple& tuple) {
  for (const auto& idx : hash_indexes_) idx->OnDelete(row, tuple);
  for (const auto& idx : btree_indexes_) idx->OnDelete(row, tuple);
  ChargeCpu(static_cast<sim::SimTime>(hash_indexes_.size() +
                                      btree_indexes_.size()) *
            options_.exec.costs.hash_ns);
}

// --------------------------------------------------------------- Write path

Status Ofm::LogRedo(TxnId txn, std::string record) {
  if (options_.type == OfmType::kQueryOnly) return Status::OK();
  if (txn == kAutoCommit) {
    ++wal_records_;
    ChargeCpu(options_.stable->Append(WalStream(), std::move(record)));
    return Status::OK();
  }
  open_txns_[txn].pending_redo.push_back(std::move(record));
  return Status::OK();
}

Status Ofm::LogMarker(TxnId txn, uint8_t op) {
  if (options_.type == OfmType::kQueryOnly) return Status::OK();
  ++wal_records_;
  ChargeCpu(options_.stable->Append(WalStream(), EncodeMarker(op, txn)));
  return Status::OK();
}

StatusOr<storage::RowId> Ofm::Insert(TxnId txn, Tuple tuple) {
  ASSIGN_OR_RETURN(storage::RowId row, relation_.Insert(std::move(tuple)));
  ChargeCpu(options_.exec.costs.tuple_ns);
  // Validated/coerced tuple re-read for the log and the indexes.
  ASSIGN_OR_RETURN(Tuple stored, relation_.Get(row));
  IndexInsert(row, stored);
  if (txn != kAutoCommit) {
    open_txns_[txn].undo.push_back(
        UndoRecord{UndoRecord::Op::kInsert, row, Tuple()});
  }
  RETURN_IF_ERROR(LogRedo(txn, EncodeDataRecord(kWalInsert, txn, row, &stored)));
  return row;
}

Status Ofm::Delete(TxnId txn, storage::RowId row) {
  ASSIGN_OR_RETURN(Tuple before, relation_.Get(row));
  RETURN_IF_ERROR(relation_.Delete(row));
  ChargeCpu(options_.exec.costs.tuple_ns);
  IndexDelete(row, before);
  if (txn != kAutoCommit) {
    open_txns_[txn].undo.push_back(
        UndoRecord{UndoRecord::Op::kDelete, row, before});
  }
  return LogRedo(txn, EncodeDataRecord(kWalDelete, txn, row, nullptr));
}

Status Ofm::Update(TxnId txn, storage::RowId row, Tuple tuple) {
  ASSIGN_OR_RETURN(Tuple before, relation_.Get(row));
  RETURN_IF_ERROR(relation_.Update(row, std::move(tuple)));
  ChargeCpu(options_.exec.costs.tuple_ns);
  ASSIGN_OR_RETURN(Tuple after, relation_.Get(row));
  IndexDelete(row, before);
  IndexInsert(row, after);
  if (txn != kAutoCommit) {
    open_txns_[txn].undo.push_back(
        UndoRecord{UndoRecord::Op::kUpdate, row, before});
  }
  return LogRedo(txn, EncodeDataRecord(kWalUpdate, txn, row, &after));
}

StatusOr<size_t> Ofm::DeleteWhere(TxnId txn, const algebra::Expr* predicate) {
  std::vector<storage::RowId> victims;
  Status eval_status;
  relation_.Scan([&](storage::RowId row, const Tuple& tuple) {
    if (predicate == nullptr) {
      victims.push_back(row);
      return true;
    }
    auto keep = EvalPredicate(*predicate, tuple);
    if (!keep.ok()) {
      eval_status = keep.status();
      return false;
    }
    if (*keep) victims.push_back(row);
    return true;
  });
  RETURN_IF_ERROR(eval_status);
  ChargeCpu(static_cast<sim::SimTime>(relation_.num_tuples()) *
            options_.exec.costs.tuple_ns);
  for (const storage::RowId row : victims) {
    RETURN_IF_ERROR(Delete(txn, row));
  }
  return victims.size();
}

StatusOr<size_t> Ofm::UpdateWhere(
    TxnId txn, const algebra::Expr* predicate,
    const std::vector<std::pair<size_t, const algebra::Expr*>>& assignments) {
  for (const auto& [col, expr] : assignments) {
    if (col >= schema().num_columns()) {
      return InvalidArgumentError("assignment column out of range");
    }
    if (expr == nullptr) return InvalidArgumentError("null assignment");
  }
  std::vector<std::pair<storage::RowId, Tuple>> updates;
  Status eval_status;
  relation_.Scan([&](storage::RowId row, const Tuple& tuple) {
    bool matches = true;
    if (predicate != nullptr) {
      auto keep = EvalPredicate(*predicate, tuple);
      if (!keep.ok()) {
        eval_status = keep.status();
        return false;
      }
      matches = *keep;
    }
    if (!matches) return true;
    Tuple updated = tuple;
    for (const auto& [col, expr] : assignments) {
      auto v = EvalExpr(*expr, tuple);  // RHS sees the *old* tuple.
      if (!v.ok()) {
        eval_status = v.status();
        return false;
      }
      updated.at(col) = std::move(v).value();
    }
    updates.push_back({row, std::move(updated)});
    return true;
  });
  RETURN_IF_ERROR(eval_status);
  ChargeCpu(static_cast<sim::SimTime>(relation_.num_tuples()) *
            options_.exec.costs.tuple_ns);
  for (auto& [row, tuple] : updates) {
    RETURN_IF_ERROR(Update(txn, row, std::move(tuple)));
  }
  return updates.size();
}

// ------------------------------------------------------- Transaction control

bool Ofm::HasTransaction(TxnId txn) const {
  return open_txns_.contains(txn);
}

Status Ofm::Prepare(TxnId txn) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) {
    // A transaction that never touched this fragment can trivially commit.
    return Status::OK();
  }
  if (options_.type == OfmType::kFull) {
    // Group-commit: force all redo records and the prepare marker as one
    // physical write.
    std::vector<std::string> records = std::move(it->second.pending_redo);
    it->second.pending_redo.clear();
    records.push_back(EncodeMarker(kWalPrepare, txn));
    wal_records_ += records.size();
    ChargeCpu(options_.stable->AppendBatch(WalStream(), std::move(records)));
  }
  it->second.prepared = true;
  return Status::OK();
}

Status Ofm::Commit(TxnId txn) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) return Status::OK();
  if (options_.type == OfmType::kFull) {
    std::vector<std::string> records = std::move(it->second.pending_redo);
    it->second.pending_redo.clear();
    records.push_back(EncodeMarker(kWalCommit, txn));
    wal_records_ += records.size();
    ChargeCpu(options_.stable->AppendBatch(WalStream(), std::move(records)));
  }
  open_txns_.erase(it);
  return Status::OK();
}

Status Ofm::Abort(TxnId txn) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) return Status::OK();
  // Undo in reverse order.
  auto& undo = it->second.undo;
  for (auto rit = undo.rbegin(); rit != undo.rend(); ++rit) {
    switch (rit->op) {
      case UndoRecord::Op::kInsert: {
        ASSIGN_OR_RETURN(Tuple current, relation_.Get(rit->row));
        RETURN_IF_ERROR(relation_.Delete(rit->row));
        IndexDelete(rit->row, current);
        break;
      }
      case UndoRecord::Op::kDelete: {
        // Tombstoned slots are never reused, so the row can be restored
        // in place.
        RETURN_IF_ERROR(relation_.RestoreRow(rit->row, rit->before));
        IndexInsert(rit->row, rit->before);
        break;
      }
      case UndoRecord::Op::kUpdate: {
        ASSIGN_OR_RETURN(Tuple current, relation_.Get(rit->row));
        RETURN_IF_ERROR(relation_.Update(rit->row, rit->before));
        IndexDelete(rit->row, current);
        IndexInsert(rit->row, rit->before);
        break;
      }
    }
  }
  if (options_.type == OfmType::kFull && it->second.prepared) {
    RETURN_IF_ERROR(LogMarker(txn, kWalAbort));
  }
  open_txns_.erase(txn);
  return Status::OK();
}

// ------------------------------------------------------------------ Querying

namespace {

/// Resolver handed to the OFM's executor: the single resident fragment
/// plus its secondary indexes, enabling local access-path selection.
class OfmResolver : public TableResolver {
 public:
  OfmResolver(const std::string& fragment, const storage::Relation* relation,
              const std::vector<std::unique_ptr<storage::HashIndex>>* hash,
              const std::vector<std::unique_ptr<storage::BTreeIndex>>* btree,
              const TableResolver* colocated)
      : fragment_(fragment),
        relation_(relation),
        hash_(hash),
        btree_(btree),
        colocated_(colocated) {}

  StatusOr<const storage::Relation*> Resolve(
      const std::string& table) const override {
    if (table == fragment_) return relation_;
    if (colocated_ != nullptr) return colocated_->Resolve(table);
    return NotFoundError("OFM " + fragment_ + " cannot resolve " + table);
  }
  const storage::HashIndex* FindHashIndex(
      const std::string& table,
      const std::vector<size_t>& columns) const override {
    if (table != fragment_) {
      return colocated_ == nullptr ? nullptr
                                   : colocated_->FindHashIndex(table, columns);
    }
    for (const auto& index : *hash_) {
      if (index->key_columns() == columns) return index.get();
    }
    return nullptr;
  }
  const storage::BTreeIndex* FindBTreeIndex(
      const std::string& table,
      const std::vector<size_t>& columns) const override {
    if (table != fragment_) {
      return colocated_ == nullptr
                 ? nullptr
                 : colocated_->FindBTreeIndex(table, columns);
    }
    for (const auto& index : *btree_) {
      if (index->key_columns() == columns) return index.get();
    }
    return nullptr;
  }

 private:
  const std::string& fragment_;
  const storage::Relation* relation_;
  const std::vector<std::unique_ptr<storage::HashIndex>>* hash_;
  const std::vector<std::unique_ptr<storage::BTreeIndex>>* btree_;
  const TableResolver* colocated_;
};

}  // namespace

StatusOr<std::vector<Tuple>> Ofm::ExecutePlan(const algebra::Plan& plan,
                                              const TableResolver* colocated,
                                              obs::OperatorProfile* profile,
                                              std::optional<ExecMode> exec_mode) {
  OfmResolver resolver(fragment_name_, &relation_, &hash_indexes_,
                       &btree_indexes_, colocated);
  ExecOptions exec_options = options_.exec;
  exec_options.profile = profile != nullptr;
  if (exec_mode.has_value()) exec_options.exec_mode = *exec_mode;
  Executor executor(&resolver, exec_options);
  auto result = executor.Execute(plan);
  last_exec_stats_ = executor.stats();
  if (profile != nullptr && executor.profile().has_value()) {
    *profile = *executor.profile();
  }
  return result;
}

std::optional<Tuple> Ofm::Cursor::Next() {
  while (position_ < relation_->num_slots()) {
    const storage::RowId row = position_++;
    if (relation_->IsLive(row)) {
      auto t = relation_->Get(row);
      if (t.ok()) return std::move(t).value();
    }
  }
  return std::nullopt;
}

// ------------------------------------------------------------------ Recovery

Status Ofm::Checkpoint() {
  if (options_.type == OfmType::kQueryOnly) {
    return FailedPreconditionError("query-only OFM has no stable storage");
  }
  if (!open_txns_.empty()) {
    return FailedPreconditionError(
        "cannot checkpoint with open transactions on " + fragment_name_);
  }
  // The snapshot preserves the whole slot array (tombstones included) so
  // RowIds in the WAL suffix stay valid.
  BinaryWriter w;
  w.PutSchema(relation_.schema());
  w.PutU64(relation_.num_slots());
  relation_.ScanSlots([&w](storage::RowId, const Tuple* t) {
    if (t != nullptr) {
      w.PutU8(1);
      w.PutTuple(*t);
    } else {
      w.PutU8(0);
    }
  });
  ChargeCpu(options_.stable->WriteSnapshot(SnapshotName(), w.Take()));
  options_.stable->TruncateStream(WalStream());
  return Status::OK();
}

Status Ofm::ApplyWalData(uint8_t op, BinaryReader* r) {
  ++redo_applied_;
  switch (op) {
    case kWalInsert: {
      ASSIGN_OR_RETURN(uint64_t row, r->GetU64());
      ASSIGN_OR_RETURN(Tuple t, r->GetTuple());
      // Replay must reproduce the original RowId space.
      while (relation_.num_slots() < row) {
        RETURN_IF_ERROR(relation_.RestoreSlot(std::nullopt));
      }
      if (relation_.num_slots() == row) {
        ASSIGN_OR_RETURN(storage::RowId got, relation_.Insert(std::move(t)));
        if (got != row) {
          return InternalError("WAL replay row id mismatch");
        }
      } else {
        RETURN_IF_ERROR(relation_.RestoreRow(row, std::move(t)));
      }
      return Status::OK();
    }
    case kWalDelete: {
      ASSIGN_OR_RETURN(uint64_t row, r->GetU64());
      return relation_.Delete(row);
    }
    case kWalUpdate: {
      ASSIGN_OR_RETURN(uint64_t row, r->GetU64());
      ASSIGN_OR_RETURN(Tuple t, r->GetTuple());
      return relation_.Update(row, std::move(t));
    }
    default:
      return InternalError("unexpected WAL record opcode " +
                           std::to_string(op));
  }
}

Status Ofm::ResolveRecovered(TxnId txn, bool commit) {
  auto it = undecided_records_.find(txn);
  if (it == undecided_records_.end()) {
    return NotFoundError("transaction " + std::to_string(txn) +
                         " is not in doubt");
  }
  if (commit) {
    for (const std::string& record : it->second) {
      BinaryReader r(record);
      ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
      ASSIGN_OR_RETURN(TxnId rec_txn, r.GetI64());
      PRISMA_CHECK(rec_txn == txn);
      RETURN_IF_ERROR(ApplyWalData(op, &r));
    }
    for (const auto& idx : hash_indexes_) idx->Rebuild(relation_);
    for (const auto& idx : btree_indexes_) idx->Rebuild(relation_);
  }
  RETURN_IF_ERROR(LogMarker(txn, commit ? kWalCommit : kWalAbort));
  undecided_records_.erase(it);
  undecided_order_.erase(
      std::find(undecided_order_.begin(), undecided_order_.end(), txn));
  return Status::OK();
}

// --------------------------------------------------------- Replica resync

StatusOr<std::vector<std::string>> Ofm::CommittedWalSince(size_t* cursor) {
  if (options_.type == OfmType::kQueryOnly) {
    return FailedPreconditionError("query-only OFM has no WAL");
  }
  const auto& wal = options_.stable->ReadStream(WalStream());
  ChargeCpu(options_.stable->StreamReadNs(WalStream()));
  // Outcomes are scanned over the whole stream: a record flushed at
  // prepare position p is decided by a marker at some position > p.
  std::set<TxnId> committed;
  std::set<TxnId> aborted;
  committed.insert(kAutoCommit);
  for (const std::string& record : wal) {
    BinaryReader r(record);
    ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    ASSIGN_OR_RETURN(TxnId txn, r.GetI64());
    if (op == kWalCommit) committed.insert(txn);
    if (op == kWalAbort) aborted.insert(txn);
  }
  std::vector<std::string> out;
  size_t i = *cursor;
  for (; i < wal.size(); ++i) {
    BinaryReader r(wal[i]);
    ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    ASSIGN_OR_RETURN(TxnId txn, r.GetI64());
    if (op == kWalCommit || op == kWalAbort || op == kWalPrepare) continue;
    if (!committed.contains(txn) && !aborted.contains(txn)) break;
    if (committed.contains(txn)) out.push_back(wal[i]);
  }
  *cursor = i;
  return out;
}

std::vector<std::pair<storage::RowId, Tuple>> Ofm::CommittedRows() {
  // Undo overlay: walking the open transactions newest-first and each undo
  // log last-to-first, plain assignment leaves every touched slot at its
  // oldest before-image — the committed state. kInsert rows committed-away
  // to "did not exist" map to an empty slot.
  std::map<storage::RowId, std::optional<Tuple>> overlay;
  for (auto txn = open_txns_.rbegin(); txn != open_txns_.rend(); ++txn) {
    const std::vector<UndoRecord>& undo = txn->second.undo;
    for (auto u = undo.rbegin(); u != undo.rend(); ++u) {
      switch (u->op) {
        case UndoRecord::Op::kInsert:
          overlay[u->row] = std::nullopt;
          break;
        case UndoRecord::Op::kDelete:
        case UndoRecord::Op::kUpdate:
          overlay[u->row] = u->before;
          break;
      }
    }
  }
  std::vector<std::pair<storage::RowId, Tuple>> rows;
  relation_.ScanSlots([&](storage::RowId row, const Tuple* t) {
    auto it = overlay.find(row);
    if (it != overlay.end()) {
      if (it->second.has_value()) rows.push_back({row, *it->second});
      return;
    }
    if (t != nullptr) rows.push_back({row, *t});
  });
  ChargeCpu(static_cast<sim::SimTime>(rows.size()) *
            options_.exec.costs.tuple_ns);
  return rows;
}

void Ofm::ResyncReset() {
  relation_.Clear();
  open_txns_.clear();
  undecided_records_.clear();
  undecided_order_.clear();
}

Status Ofm::ResyncRestoreRow(storage::RowId row, Tuple tuple) {
  if (relation_.num_slots() > row) {
    return InternalError("resync bulk rows arrived out of order on " +
                         fragment_name_);
  }
  while (relation_.num_slots() < row) {
    RETURN_IF_ERROR(relation_.RestoreSlot(std::nullopt));
  }
  RETURN_IF_ERROR(relation_.RestoreSlot(std::move(tuple)));
  ChargeCpu(options_.exec.costs.tuple_ns);
  return Status::OK();
}

Status Ofm::ResyncApplyRecord(const std::string& record) {
  BinaryReader r(record);
  ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
  ASSIGN_OR_RETURN(TxnId txn, r.GetI64());
  (void)txn;  // prisma-lint: unused-status - outcome was decided at the source.
  return ApplyWalData(op, &r);
}

Status Ofm::FinishResync(uint64_t source_slots) {
  if (relation_.num_slots() > source_slots) {
    return InternalError("resync target of " + fragment_name_ + " has " +
                         std::to_string(relation_.num_slots()) +
                         " slots, more than the source's " +
                         std::to_string(source_slots));
  }
  while (relation_.num_slots() < source_slots) {
    RETURN_IF_ERROR(relation_.RestoreSlot(std::nullopt));
  }
  for (const auto& idx : hash_indexes_) idx->Rebuild(relation_);
  for (const auto& idx : btree_indexes_) idx->Rebuild(relation_);
  ChargeCpu(static_cast<sim::SimTime>(relation_.num_tuples()) *
            options_.exec.costs.hash_ns *
            static_cast<sim::SimTime>(hash_indexes_.size() +
                                      btree_indexes_.size()));
  return Checkpoint();
}

Status Ofm::Recover() {
  if (options_.type == OfmType::kQueryOnly) {
    return FailedPreconditionError("query-only OFM cannot recover");
  }
  relation_.Clear();
  open_txns_.clear();

  // Load the checkpoint image, if any.
  auto snapshot = options_.stable->ReadSnapshot(SnapshotName());
  if (snapshot.ok()) {
    ChargeCpu(options_.stable->SnapshotReadNs(SnapshotName()));
    BinaryReader r(*snapshot);
    ASSIGN_OR_RETURN(Schema schema, r.GetSchema());
    if (!(schema == relation_.schema())) {
      return InternalError("checkpoint schema mismatch for " + fragment_name_);
    }
    ASSIGN_OR_RETURN(uint64_t slots, r.GetU64());
    for (uint64_t i = 0; i < slots; ++i) {
      ASSIGN_OR_RETURN(uint8_t live, r.GetU8());
      if (live != 0) {
        ASSIGN_OR_RETURN(Tuple t, r.GetTuple());
        RETURN_IF_ERROR(relation_.RestoreSlot(std::move(t)));
      } else {
        RETURN_IF_ERROR(relation_.RestoreSlot(std::nullopt));
      }
    }
  }

  // Scan the WAL once to classify transactions: committed work replays;
  // prepared-but-undecided work is withheld for the coordinator.
  const auto& wal = options_.stable->ReadStream(WalStream());
  ChargeCpu(options_.stable->StreamReadNs(WalStream()));
  std::set<TxnId> committed;
  std::set<TxnId> aborted;
  std::set<TxnId> prepared;
  committed.insert(kAutoCommit);
  for (const std::string& record : wal) {
    BinaryReader r(record);
    ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    ASSIGN_OR_RETURN(TxnId txn, r.GetI64());
    if (op == kWalCommit) committed.insert(txn);
    if (op == kWalAbort) aborted.insert(txn);
    if (op == kWalPrepare) prepared.insert(txn);
  }
  undecided_records_.clear();
  undecided_order_.clear();
  for (const TxnId txn : prepared) {
    if (!committed.contains(txn) && !aborted.contains(txn)) {
      undecided_records_[txn] = {};
      undecided_order_.push_back(txn);
    }
  }

  // Replay committed work in order; buffer in-doubt records.
  for (const std::string& record : wal) {
    BinaryReader r(record);
    ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    ASSIGN_OR_RETURN(TxnId txn, r.GetI64());
    if (op == kWalCommit || op == kWalAbort || op == kWalPrepare) continue;
    auto in_doubt = undecided_records_.find(txn);
    if (in_doubt != undecided_records_.end()) {
      in_doubt->second.push_back(record);
      continue;
    }
    if (!committed.contains(txn)) continue;
    RETURN_IF_ERROR(ApplyWalData(op, &r));
  }

  for (const auto& idx : hash_indexes_) idx->Rebuild(relation_);
  for (const auto& idx : btree_indexes_) idx->Rebuild(relation_);
  ChargeCpu(static_cast<sim::SimTime>(relation_.num_tuples()) *
            options_.exec.costs.hash_ns *
            static_cast<sim::SimTime>(hash_indexes_.size() +
                                      btree_indexes_.size()));
  return Status::OK();
}

}  // namespace prisma::exec
