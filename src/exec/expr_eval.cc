#include "exec/expr_eval.h"

#include <cmath>

#include "common/logging.h"

namespace prisma::exec {

using algebra::BinaryOp;
using algebra::Expr;
using algebra::ExprKind;
using algebra::UnaryOp;

namespace {

StatusOr<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // String concatenation rides on kAdd.
  if (op == BinaryOp::kAdd && l.type() == DataType::kString) {
    return Value::String(l.string_value() + r.string_value());
  }
  if (op == BinaryOp::kMod) {
    if (r.int_value() == 0) return InvalidArgumentError("modulo by zero");
    return Value::Int(l.int_value() % r.int_value());
  }
  const bool as_double =
      l.type() == DataType::kDouble || r.type() == DataType::kDouble;
  if (as_double) {
    const double a = l.AsDouble();
    const double b = r.AsDouble();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Double(a + b);
      case BinaryOp::kSub:
        return Value::Double(a - b);
      case BinaryOp::kMul:
        return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return InvalidArgumentError("division by zero");
        return Value::Double(a / b);
      default:
        break;
    }
  } else {
    const int64_t a = l.int_value();
    const int64_t b = r.int_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(a + b);
      case BinaryOp::kSub:
        return Value::Int(a - b);
      case BinaryOp::kMul:
        return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return InvalidArgumentError("division by zero");
        return Value::Int(a / b);
      default:
        break;
    }
  }
  return InternalError("bad arithmetic op");
}

Value EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  const int c = l.Compare(r);
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(c == 0);
    case BinaryOp::kNe:
      return Value::Bool(c != 0);
    case BinaryOp::kLt:
      return Value::Bool(c < 0);
    case BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case BinaryOp::kGt:
      return Value::Bool(c > 0);
    case BinaryOp::kGe:
      return Value::Bool(c >= 0);
    default:
      break;
  }
  return Value::Null();
}

}  // namespace

StatusOr<Value> EvalExpr(const Expr& expr, const Tuple& tuple) {
  PRISMA_CHECK(expr.bound()) << "evaluating unbound expression";
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return expr.literal();
    case ExprKind::kColumnRef:
      if (expr.column_index() >= tuple.size()) {
        return InternalError("column index beyond tuple width");
      }
      return tuple.at(expr.column_index());
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.operand(), tuple));
      switch (expr.unary_op()) {
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.type() == DataType::kDouble) {
            return Value::Double(-v.double_value());
          }
          return Value::Int(-v.int_value());
        case UnaryOp::kNot:
          if (v.is_null()) return Value::Null();
          return Value::Bool(!v.bool_value());
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
      }
      return InternalError("bad unary op");
    }
    case ExprKind::kBinary: {
      const BinaryOp op = expr.binary_op();
      // AND/OR need Kleene logic with short-circuiting.
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.left(), tuple));
        if (!l.is_null()) {
          const bool lb = l.bool_value();
          if (op == BinaryOp::kAnd && !lb) return Value::Bool(false);
          if (op == BinaryOp::kOr && lb) return Value::Bool(true);
        }
        ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.right(), tuple));
        if (!r.is_null()) {
          const bool rb = r.bool_value();
          if (op == BinaryOp::kAnd && !rb) return Value::Bool(false);
          if (op == BinaryOp::kOr && rb) return Value::Bool(true);
        }
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(op == BinaryOp::kAnd);
      }
      ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.left(), tuple));
      ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.right(), tuple));
      switch (op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArithmetic(op, l, r);
        default:
          return EvalComparison(op, l, r);
      }
    }
  }
  return InternalError("corrupt expression kind");
}

StatusOr<bool> EvalPredicate(const Expr& expr, const Tuple& tuple) {
  ASSIGN_OR_RETURN(Value v, EvalExpr(expr, tuple));
  if (v.is_null()) return false;
  if (v.type() != DataType::kBool) {
    return InvalidArgumentError("predicate did not evaluate to BOOL");
  }
  return v.bool_value();
}

}  // namespace prisma::exec
