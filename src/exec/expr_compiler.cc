#include "exec/expr_compiler.h"

#include <utility>

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::exec {

using algebra::BinaryOp;
using algebra::Expr;
using algebra::ExprKind;
using algebra::UnaryOp;

namespace {

/// Builder state threaded through compilation.
struct Compiler {
  std::vector<Instruction> code;
  std::vector<Value> constants;
  uint16_t next_reg = 0;
  uint32_t next_scratch = 0;

  uint16_t AllocReg() { return next_reg++; }

  uint16_t EmitConst(Value v) {
    const uint16_t dst = AllocReg();
    constants.push_back(std::move(v));
    code.push_back(Instruction{OpCode::kConst, dst, 0, 0,
                               static_cast<uint32_t>(constants.size() - 1)});
    return dst;
  }

  uint16_t Emit(OpCode op, uint16_t a, uint16_t b = 0, uint32_t aux = 0) {
    const uint16_t dst = AllocReg();
    code.push_back(Instruction{op, dst, a, b, aux});
    return dst;
  }
};

/// Result of compiling a subtree: its register and static type.
struct Slot {
  uint16_t reg;
  DataType type;
};

bool NumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

/// Comparison opcode family base for a given operand type.
OpCode CmpOp(BinaryOp op, DataType t) {
  const int off = [&] {
    switch (op) {
      case BinaryOp::kEq:
        return 0;
      case BinaryOp::kNe:
        return 1;
      case BinaryOp::kLt:
        return 2;
      case BinaryOp::kLe:
        return 3;
      case BinaryOp::kGt:
        return 4;
      case BinaryOp::kGe:
        return 5;
      default:
        PRISMA_CHECK(false) << "not a comparison";
        return 0;
    }
  }();
  OpCode base = OpCode::kEqI;
  switch (t) {
    case DataType::kInt64:
      base = OpCode::kEqI;
      break;
    case DataType::kDouble:
      base = OpCode::kEqD;
      break;
    case DataType::kString:
      base = OpCode::kEqS;
      break;
    case DataType::kBool:
      PRISMA_CHECK(op == BinaryOp::kEq || op == BinaryOp::kNe)
          << "ordering comparison on BOOL";
      base = OpCode::kEqB;
      break;
    default:
      PRISMA_CHECK(false) << "bad comparison type";
  }
  return static_cast<OpCode>(static_cast<int>(base) + off);
}

StatusOr<Slot> CompileNode(const Expr& expr, Compiler& c);

/// Widens an INT slot to DOUBLE when the sibling is DOUBLE.
Slot Widen(Slot s, Compiler& c) {
  if (s.type == DataType::kInt64) {
    return Slot{c.Emit(OpCode::kI2D, s.reg), DataType::kDouble};
  }
  return s;
}

StatusOr<Slot> CompileBinary(const Expr& expr, Compiler& c) {
  const BinaryOp op = expr.binary_op();
  ASSIGN_OR_RETURN(Slot l, CompileNode(*expr.left(), c));
  ASSIGN_OR_RETURN(Slot r, CompileNode(*expr.right(), c));

  // A statically-NULL operand makes arithmetic and comparisons NULL.
  const bool static_null =
      l.type == DataType::kNull || r.type == DataType::kNull;

  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      // Kleene logic handles NULL operands at runtime.
      const OpCode oc = (op == BinaryOp::kAnd) ? OpCode::kAnd : OpCode::kOr;
      return Slot{c.Emit(oc, l.reg, r.reg), DataType::kBool};
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (static_null) {
        return Slot{c.EmitConst(Value::Null()), DataType::kNull};
      }
      if (NumericType(l.type) && NumericType(r.type) && l.type != r.type) {
        l = Widen(l, c);
        r = Widen(r, c);
      }
      if (l.type != r.type) {
        return InternalError("compiler: incomparable operand types");
      }
      return Slot{c.Emit(CmpOp(op, l.type), l.reg, r.reg), DataType::kBool};
    }
    case BinaryOp::kAdd:
      if (l.type == DataType::kString && r.type == DataType::kString) {
        return Slot{c.Emit(OpCode::kConcat, l.reg, r.reg, c.next_scratch++),
                    DataType::kString};
      }
      [[fallthrough]];
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (static_null) {
        return Slot{c.EmitConst(Value::Null()), DataType::kNull};
      }
      const bool dbl =
          l.type == DataType::kDouble || r.type == DataType::kDouble;
      if (dbl) {
        l = Widen(l, c);
        r = Widen(r, c);
      }
      OpCode oc;
      switch (op) {
        case BinaryOp::kAdd:
          oc = dbl ? OpCode::kAddD : OpCode::kAddI;
          break;
        case BinaryOp::kSub:
          oc = dbl ? OpCode::kSubD : OpCode::kSubI;
          break;
        case BinaryOp::kMul:
          oc = dbl ? OpCode::kMulD : OpCode::kMulI;
          break;
        default:
          oc = dbl ? OpCode::kDivD : OpCode::kDivI;
          break;
      }
      return Slot{c.Emit(oc, l.reg, r.reg),
                  dbl ? DataType::kDouble : DataType::kInt64};
    }
    case BinaryOp::kMod:
      if (static_null) {
        return Slot{c.EmitConst(Value::Null()), DataType::kNull};
      }
      return Slot{c.Emit(OpCode::kModI, l.reg, r.reg), DataType::kInt64};
  }
  return InternalError("compiler: bad binary op");
}

StatusOr<Slot> CompileNode(const Expr& expr, Compiler& c) {
  if (!expr.bound()) return InternalError("compiling unbound expression");
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return Slot{c.EmitConst(expr.literal()), expr.literal().type()};
    case ExprKind::kColumnRef:
      return Slot{c.Emit(OpCode::kLoadCol, 0, 0,
                         static_cast<uint32_t>(expr.column_index())),
                  expr.result_type()};
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(Slot a, CompileNode(*expr.operand(), c));
      switch (expr.unary_op()) {
        case UnaryOp::kNeg:
          if (a.type == DataType::kNull) {
            return Slot{c.EmitConst(Value::Null()), DataType::kNull};
          }
          return Slot{c.Emit(a.type == DataType::kDouble ? OpCode::kNegD
                                                         : OpCode::kNegI,
                             a.reg),
                      a.type};
        case UnaryOp::kNot:
          return Slot{c.Emit(OpCode::kNot, a.reg), DataType::kBool};
        case UnaryOp::kIsNull:
          return Slot{c.Emit(OpCode::kIsNull, a.reg), DataType::kBool};
      }
      return InternalError("compiler: bad unary op");
    }
    case ExprKind::kBinary:
      return CompileBinary(expr, c);
  }
  return InternalError("compiler: corrupt expression");
}

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kConst: return "const";
    case OpCode::kLoadCol: return "loadcol";
    case OpCode::kI2D: return "i2d";
    case OpCode::kNegI: return "negi";
    case OpCode::kNegD: return "negd";
    case OpCode::kNot: return "not";
    case OpCode::kIsNull: return "isnull";
    case OpCode::kAddI: return "addi";
    case OpCode::kSubI: return "subi";
    case OpCode::kMulI: return "muli";
    case OpCode::kDivI: return "divi";
    case OpCode::kModI: return "modi";
    case OpCode::kAddD: return "addd";
    case OpCode::kSubD: return "subd";
    case OpCode::kMulD: return "muld";
    case OpCode::kDivD: return "divd";
    case OpCode::kConcat: return "concat";
    case OpCode::kEqI: return "eqi";
    case OpCode::kNeI: return "nei";
    case OpCode::kLtI: return "lti";
    case OpCode::kLeI: return "lei";
    case OpCode::kGtI: return "gti";
    case OpCode::kGeI: return "gei";
    case OpCode::kEqD: return "eqd";
    case OpCode::kNeD: return "ned";
    case OpCode::kLtD: return "ltd";
    case OpCode::kLeD: return "led";
    case OpCode::kGtD: return "gtd";
    case OpCode::kGeD: return "ged";
    case OpCode::kEqS: return "eqs";
    case OpCode::kNeS: return "nes";
    case OpCode::kLtS: return "lts";
    case OpCode::kLeS: return "les";
    case OpCode::kGtS: return "gts";
    case OpCode::kGeS: return "ges";
    case OpCode::kEqB: return "eqb";
    case OpCode::kNeB: return "neb";
    case OpCode::kAnd: return "and";
    case OpCode::kOr: return "or";
  }
  return "?";
}

}  // namespace

StatusOr<CompiledExpr> CompileExpr(const Expr& expr) {
  Compiler c;
  ASSIGN_OR_RETURN(Slot root, CompileNode(expr, c));
  CompiledExpr compiled;
  compiled.code_ = std::move(c.code);
  compiled.constants_ = std::move(c.constants);
  compiled.result_type_ = root.type;
  compiled.result_reg_ = root.reg;
  compiled.num_regs_ = c.next_reg;
  compiled.regs_.resize(c.next_reg);
  compiled.scratch_.resize(c.next_scratch);
  return compiled;
}

Status CompiledExpr::Run(const Tuple& tuple) const {
  Reg* regs = regs_.data();
  for (const Instruction& in : code_) {
    Reg& d = regs[in.dst];
    switch (in.op) {
      case OpCode::kConst: {
        const Value& v = constants_[in.aux];
        d.null = v.is_null();
        if (!d.null) {
          switch (v.type()) {
            case DataType::kBool:
              d.b = v.bool_value();
              break;
            case DataType::kInt64:
              d.i = v.int_value();
              break;
            case DataType::kDouble:
              d.d = v.double_value();
              break;
            case DataType::kString:
              d.s = &v.string_value();
              break;
            default:
              break;
          }
        }
        break;
      }
      case OpCode::kLoadCol: {
        if (in.aux >= tuple.size()) {
          return InternalError("column index beyond tuple width");
        }
        const Value& v = tuple.at(in.aux);
        d.null = v.is_null();
        if (!d.null) {
          switch (v.type()) {
            case DataType::kBool:
              d.b = v.bool_value();
              break;
            case DataType::kInt64:
              d.i = v.int_value();
              break;
            case DataType::kDouble:
              d.d = v.double_value();
              break;
            case DataType::kString:
              d.s = &v.string_value();
              break;
            default:
              break;
          }
        }
        break;
      }
      case OpCode::kI2D: {
        const Reg& a = regs[in.a];
        d.null = a.null;
        d.d = static_cast<double>(a.i);
        break;
      }
      case OpCode::kNegI: {
        const Reg& a = regs[in.a];
        d.null = a.null;
        d.i = -a.i;
        break;
      }
      case OpCode::kNegD: {
        const Reg& a = regs[in.a];
        d.null = a.null;
        d.d = -a.d;
        break;
      }
      case OpCode::kNot: {
        const Reg& a = regs[in.a];
        d.null = a.null;
        d.b = !a.b;
        break;
      }
      case OpCode::kIsNull: {
        d.null = false;
        d.b = regs[in.a].null;
        break;
      }
#define PRISMA_ARITH(OP, FIELD, EXPR_)                       \
  {                                                          \
    const Reg& a = regs[in.a];                               \
    const Reg& b = regs[in.b];                               \
    d.null = a.null || b.null;                               \
    if (!d.null) d.FIELD = (EXPR_);                          \
    break;                                                   \
  }
      case OpCode::kAddI:
        PRISMA_ARITH(kAddI, i, a.i + b.i)
      case OpCode::kSubI:
        PRISMA_ARITH(kSubI, i, a.i - b.i)
      case OpCode::kMulI:
        PRISMA_ARITH(kMulI, i, a.i * b.i)
      case OpCode::kDivI: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        d.null = a.null || b.null;
        if (!d.null) {
          if (b.i == 0) return InvalidArgumentError("division by zero");
          d.i = a.i / b.i;
        }
        break;
      }
      case OpCode::kModI: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        d.null = a.null || b.null;
        if (!d.null) {
          if (b.i == 0) return InvalidArgumentError("modulo by zero");
          d.i = a.i % b.i;
        }
        break;
      }
      case OpCode::kAddD:
        PRISMA_ARITH(kAddD, d, a.d + b.d)
      case OpCode::kSubD:
        PRISMA_ARITH(kSubD, d, a.d - b.d)
      case OpCode::kMulD:
        PRISMA_ARITH(kMulD, d, a.d * b.d)
      case OpCode::kDivD: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        d.null = a.null || b.null;
        if (!d.null) {
          if (b.d == 0.0) return InvalidArgumentError("division by zero");
          d.d = a.d / b.d;
        }
        break;
      }
      case OpCode::kConcat: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        d.null = a.null || b.null;
        if (!d.null) {
          std::string& slot = scratch_[in.aux];
          slot.assign(*a.s);
          slot.append(*b.s);
          d.s = &slot;
        }
        break;
      }
      case OpCode::kEqI:
        PRISMA_ARITH(kEqI, b, a.i == b.i)
      case OpCode::kNeI:
        PRISMA_ARITH(kNeI, b, a.i != b.i)
      case OpCode::kLtI:
        PRISMA_ARITH(kLtI, b, a.i < b.i)
      case OpCode::kLeI:
        PRISMA_ARITH(kLeI, b, a.i <= b.i)
      case OpCode::kGtI:
        PRISMA_ARITH(kGtI, b, a.i > b.i)
      case OpCode::kGeI:
        PRISMA_ARITH(kGeI, b, a.i >= b.i)
      case OpCode::kEqD:
        PRISMA_ARITH(kEqD, b, a.d == b.d)
      case OpCode::kNeD:
        PRISMA_ARITH(kNeD, b, a.d != b.d)
      case OpCode::kLtD:
        PRISMA_ARITH(kLtD, b, a.d < b.d)
      case OpCode::kLeD:
        PRISMA_ARITH(kLeD, b, a.d <= b.d)
      case OpCode::kGtD:
        PRISMA_ARITH(kGtD, b, a.d > b.d)
      case OpCode::kGeD:
        PRISMA_ARITH(kGeD, b, a.d >= b.d)
      case OpCode::kEqS:
        PRISMA_ARITH(kEqS, b, *a.s == *b.s)
      case OpCode::kNeS:
        PRISMA_ARITH(kNeS, b, *a.s != *b.s)
      case OpCode::kLtS:
        PRISMA_ARITH(kLtS, b, *a.s < *b.s)
      case OpCode::kLeS:
        PRISMA_ARITH(kLeS, b, *a.s <= *b.s)
      case OpCode::kGtS:
        PRISMA_ARITH(kGtS, b, *a.s > *b.s)
      case OpCode::kGeS:
        PRISMA_ARITH(kGeS, b, *a.s >= *b.s)
      case OpCode::kEqB:
        PRISMA_ARITH(kEqB, b, a.b == b.b)
      case OpCode::kNeB:
        PRISMA_ARITH(kNeB, b, a.b != b.b)
#undef PRISMA_ARITH
      case OpCode::kAnd: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        // Kleene: false dominates NULL.
        if ((!a.null && !a.b) || (!b.null && !b.b)) {
          d.null = false;
          d.b = false;
        } else if (a.null || b.null) {
          d.null = true;
        } else {
          d.null = false;
          d.b = true;
        }
        break;
      }
      case OpCode::kOr: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        // Kleene: true dominates NULL.
        if ((!a.null && a.b) || (!b.null && b.b)) {
          d.null = false;
          d.b = true;
        } else if (a.null || b.null) {
          d.null = true;
        } else {
          d.null = false;
          d.b = false;
        }
        break;
      }
    }
  }
  return Status::OK();
}

StatusOr<Value> CompiledExpr::Eval(const Tuple& tuple) const {
  RETURN_IF_ERROR(Run(tuple));
  const Reg& r = regs_[result_reg_];
  if (r.null) return Value::Null();
  switch (result_type_) {
    case DataType::kBool:
      return Value::Bool(r.b);
    case DataType::kInt64:
      return Value::Int(r.i);
    case DataType::kDouble:
      return Value::Double(r.d);
    case DataType::kString:
      return Value::String(*r.s);
    case DataType::kNull:
      return Value::Null();
  }
  return InternalError("bad result type");
}

StatusOr<bool> CompiledExpr::EvalPredicate(const Tuple& tuple) const {
  RETURN_IF_ERROR(Run(tuple));
  const Reg& r = regs_[result_reg_];
  return !r.null && result_type_ == DataType::kBool && r.b;
}

std::string CompiledExpr::ToString() const {
  std::string out;
  for (const Instruction& in : code_) {
    out += StrFormat("r%u = %s r%u r%u aux=%u", in.dst, OpName(in.op), in.a,
                     in.b, in.aux);
    if (in.op == OpCode::kConst) {
      out += " ; " + constants_[in.aux].ToString();
    }
    out += "\n";
  }
  out += StrFormat("result: r%u (%s)\n", result_reg_,
                   DataTypeName(result_type_));
  return out;
}

}  // namespace prisma::exec
