#include "exec/expr_compiler.h"

#include <utility>

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::exec {

using algebra::BinaryOp;
using algebra::Expr;
using algebra::ExprKind;
using algebra::UnaryOp;

namespace {

/// Builder state threaded through compilation.
struct Compiler {
  std::vector<Instruction> code;
  std::vector<Value> constants;
  uint16_t next_reg = 0;
  uint32_t next_scratch = 0;

  uint16_t AllocReg() { return next_reg++; }

  uint16_t EmitConst(Value v) {
    const uint16_t dst = AllocReg();
    constants.push_back(std::move(v));
    code.push_back(Instruction{OpCode::kConst, dst, 0, 0,
                               static_cast<uint32_t>(constants.size() - 1)});
    return dst;
  }

  uint16_t Emit(OpCode op, uint16_t a, uint16_t b = 0, uint32_t aux = 0) {
    const uint16_t dst = AllocReg();
    code.push_back(Instruction{op, dst, a, b, aux});
    return dst;
  }
};

/// Result of compiling a subtree: its register and static type.
struct Slot {
  uint16_t reg;
  DataType type;
};

bool NumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

/// Comparison opcode family base for a given operand type.
OpCode CmpOp(BinaryOp op, DataType t) {
  const int off = [&] {
    switch (op) {
      case BinaryOp::kEq:
        return 0;
      case BinaryOp::kNe:
        return 1;
      case BinaryOp::kLt:
        return 2;
      case BinaryOp::kLe:
        return 3;
      case BinaryOp::kGt:
        return 4;
      case BinaryOp::kGe:
        return 5;
      default:
        PRISMA_CHECK(false) << "not a comparison";
        return 0;
    }
  }();
  OpCode base = OpCode::kEqI;
  switch (t) {
    case DataType::kInt64:
      base = OpCode::kEqI;
      break;
    case DataType::kDouble:
      base = OpCode::kEqD;
      break;
    case DataType::kString:
      base = OpCode::kEqS;
      break;
    case DataType::kBool:
      PRISMA_CHECK(op == BinaryOp::kEq || op == BinaryOp::kNe)
          << "ordering comparison on BOOL";
      base = OpCode::kEqB;
      break;
    default:
      PRISMA_CHECK(false) << "bad comparison type";
  }
  return static_cast<OpCode>(static_cast<int>(base) + off);
}

StatusOr<Slot> CompileNode(const Expr& expr, Compiler& c);

/// Widens an INT slot to DOUBLE when the sibling is DOUBLE.
Slot Widen(Slot s, Compiler& c) {
  if (s.type == DataType::kInt64) {
    return Slot{c.Emit(OpCode::kI2D, s.reg), DataType::kDouble};
  }
  return s;
}

StatusOr<Slot> CompileBinary(const Expr& expr, Compiler& c) {
  const BinaryOp op = expr.binary_op();
  ASSIGN_OR_RETURN(Slot l, CompileNode(*expr.left(), c));
  ASSIGN_OR_RETURN(Slot r, CompileNode(*expr.right(), c));

  // A statically-NULL operand makes arithmetic and comparisons NULL.
  const bool static_null =
      l.type == DataType::kNull || r.type == DataType::kNull;

  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      // Kleene logic handles NULL operands at runtime.
      const OpCode oc = (op == BinaryOp::kAnd) ? OpCode::kAnd : OpCode::kOr;
      return Slot{c.Emit(oc, l.reg, r.reg), DataType::kBool};
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (static_null) {
        return Slot{c.EmitConst(Value::Null()), DataType::kNull};
      }
      if (NumericType(l.type) && NumericType(r.type) && l.type != r.type) {
        l = Widen(l, c);
        r = Widen(r, c);
      }
      if (l.type != r.type) {
        return InternalError("compiler: incomparable operand types");
      }
      return Slot{c.Emit(CmpOp(op, l.type), l.reg, r.reg), DataType::kBool};
    }
    case BinaryOp::kAdd:
      if (l.type == DataType::kString && r.type == DataType::kString) {
        return Slot{c.Emit(OpCode::kConcat, l.reg, r.reg, c.next_scratch++),
                    DataType::kString};
      }
      [[fallthrough]];
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (static_null) {
        return Slot{c.EmitConst(Value::Null()), DataType::kNull};
      }
      const bool dbl =
          l.type == DataType::kDouble || r.type == DataType::kDouble;
      if (dbl) {
        l = Widen(l, c);
        r = Widen(r, c);
      }
      OpCode oc;
      switch (op) {
        case BinaryOp::kAdd:
          oc = dbl ? OpCode::kAddD : OpCode::kAddI;
          break;
        case BinaryOp::kSub:
          oc = dbl ? OpCode::kSubD : OpCode::kSubI;
          break;
        case BinaryOp::kMul:
          oc = dbl ? OpCode::kMulD : OpCode::kMulI;
          break;
        default:
          oc = dbl ? OpCode::kDivD : OpCode::kDivI;
          break;
      }
      return Slot{c.Emit(oc, l.reg, r.reg),
                  dbl ? DataType::kDouble : DataType::kInt64};
    }
    case BinaryOp::kMod:
      if (static_null) {
        return Slot{c.EmitConst(Value::Null()), DataType::kNull};
      }
      return Slot{c.Emit(OpCode::kModI, l.reg, r.reg), DataType::kInt64};
  }
  return InternalError("compiler: bad binary op");
}

StatusOr<Slot> CompileNode(const Expr& expr, Compiler& c) {
  if (!expr.bound()) return InternalError("compiling unbound expression");
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return Slot{c.EmitConst(expr.literal()), expr.literal().type()};
    case ExprKind::kColumnRef:
      return Slot{c.Emit(OpCode::kLoadCol, 0, 0,
                         static_cast<uint32_t>(expr.column_index())),
                  expr.result_type()};
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(Slot a, CompileNode(*expr.operand(), c));
      switch (expr.unary_op()) {
        case UnaryOp::kNeg:
          if (a.type == DataType::kNull) {
            return Slot{c.EmitConst(Value::Null()), DataType::kNull};
          }
          return Slot{c.Emit(a.type == DataType::kDouble ? OpCode::kNegD
                                                         : OpCode::kNegI,
                             a.reg),
                      a.type};
        case UnaryOp::kNot:
          return Slot{c.Emit(OpCode::kNot, a.reg), DataType::kBool};
        case UnaryOp::kIsNull:
          return Slot{c.Emit(OpCode::kIsNull, a.reg), DataType::kBool};
      }
      return InternalError("compiler: bad unary op");
    }
    case ExprKind::kBinary:
      return CompileBinary(expr, c);
  }
  return InternalError("compiler: corrupt expression");
}

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kConst: return "const";
    case OpCode::kLoadCol: return "loadcol";
    case OpCode::kI2D: return "i2d";
    case OpCode::kNegI: return "negi";
    case OpCode::kNegD: return "negd";
    case OpCode::kNot: return "not";
    case OpCode::kIsNull: return "isnull";
    case OpCode::kAddI: return "addi";
    case OpCode::kSubI: return "subi";
    case OpCode::kMulI: return "muli";
    case OpCode::kDivI: return "divi";
    case OpCode::kModI: return "modi";
    case OpCode::kAddD: return "addd";
    case OpCode::kSubD: return "subd";
    case OpCode::kMulD: return "muld";
    case OpCode::kDivD: return "divd";
    case OpCode::kConcat: return "concat";
    case OpCode::kEqI: return "eqi";
    case OpCode::kNeI: return "nei";
    case OpCode::kLtI: return "lti";
    case OpCode::kLeI: return "lei";
    case OpCode::kGtI: return "gti";
    case OpCode::kGeI: return "gei";
    case OpCode::kEqD: return "eqd";
    case OpCode::kNeD: return "ned";
    case OpCode::kLtD: return "ltd";
    case OpCode::kLeD: return "led";
    case OpCode::kGtD: return "gtd";
    case OpCode::kGeD: return "ged";
    case OpCode::kEqS: return "eqs";
    case OpCode::kNeS: return "nes";
    case OpCode::kLtS: return "lts";
    case OpCode::kLeS: return "les";
    case OpCode::kGtS: return "gts";
    case OpCode::kGeS: return "ges";
    case OpCode::kEqB: return "eqb";
    case OpCode::kNeB: return "neb";
    case OpCode::kAnd: return "and";
    case OpCode::kOr: return "or";
  }
  return "?";
}

}  // namespace

StatusOr<CompiledExpr> CompileExpr(const Expr& expr) {
  Compiler c;
  ASSIGN_OR_RETURN(Slot root, CompileNode(expr, c));
  CompiledExpr compiled;
  compiled.code_ = std::move(c.code);
  compiled.constants_ = std::move(c.constants);
  compiled.result_type_ = root.type;
  compiled.result_reg_ = root.reg;
  compiled.num_regs_ = c.next_reg;
  compiled.regs_.resize(c.next_reg);
  compiled.scratch_.resize(c.next_scratch);
  return compiled;
}

Status CompiledExpr::Run(const Tuple& tuple) const {
  Reg* regs = regs_.data();
  for (const Instruction& in : code_) {
    Reg& d = regs[in.dst];
    switch (in.op) {
      case OpCode::kConst: {
        const Value& v = constants_[in.aux];
        d.null = v.is_null();
        if (!d.null) {
          switch (v.type()) {
            case DataType::kBool:
              d.b = v.bool_value();
              break;
            case DataType::kInt64:
              d.i = v.int_value();
              break;
            case DataType::kDouble:
              d.d = v.double_value();
              break;
            case DataType::kString:
              d.s = &v.string_value();
              break;
            default:
              break;
          }
        }
        break;
      }
      case OpCode::kLoadCol: {
        if (in.aux >= tuple.size()) {
          return InternalError("column index beyond tuple width");
        }
        const Value& v = tuple.at(in.aux);
        d.null = v.is_null();
        if (!d.null) {
          switch (v.type()) {
            case DataType::kBool:
              d.b = v.bool_value();
              break;
            case DataType::kInt64:
              d.i = v.int_value();
              break;
            case DataType::kDouble:
              d.d = v.double_value();
              break;
            case DataType::kString:
              d.s = &v.string_value();
              break;
            default:
              break;
          }
        }
        break;
      }
      case OpCode::kI2D: {
        const Reg& a = regs[in.a];
        d.null = a.null;
        d.d = static_cast<double>(a.i);
        break;
      }
      case OpCode::kNegI: {
        const Reg& a = regs[in.a];
        d.null = a.null;
        d.i = -a.i;
        break;
      }
      case OpCode::kNegD: {
        const Reg& a = regs[in.a];
        d.null = a.null;
        d.d = -a.d;
        break;
      }
      case OpCode::kNot: {
        const Reg& a = regs[in.a];
        d.null = a.null;
        d.b = !a.b;
        break;
      }
      case OpCode::kIsNull: {
        d.null = false;
        d.b = regs[in.a].null;
        break;
      }
#define PRISMA_ARITH(OP, FIELD, EXPR_)                       \
  {                                                          \
    const Reg& a = regs[in.a];                               \
    const Reg& b = regs[in.b];                               \
    d.null = a.null || b.null;                               \
    if (!d.null) d.FIELD = (EXPR_);                          \
    break;                                                   \
  }
      case OpCode::kAddI:
        PRISMA_ARITH(kAddI, i, a.i + b.i)
      case OpCode::kSubI:
        PRISMA_ARITH(kSubI, i, a.i - b.i)
      case OpCode::kMulI:
        PRISMA_ARITH(kMulI, i, a.i * b.i)
      case OpCode::kDivI: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        d.null = a.null || b.null;
        if (!d.null) {
          if (b.i == 0) return InvalidArgumentError("division by zero");
          d.i = a.i / b.i;
        }
        break;
      }
      case OpCode::kModI: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        d.null = a.null || b.null;
        if (!d.null) {
          if (b.i == 0) return InvalidArgumentError("modulo by zero");
          d.i = a.i % b.i;
        }
        break;
      }
      case OpCode::kAddD:
        PRISMA_ARITH(kAddD, d, a.d + b.d)
      case OpCode::kSubD:
        PRISMA_ARITH(kSubD, d, a.d - b.d)
      case OpCode::kMulD:
        PRISMA_ARITH(kMulD, d, a.d * b.d)
      case OpCode::kDivD: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        d.null = a.null || b.null;
        if (!d.null) {
          if (b.d == 0.0) return InvalidArgumentError("division by zero");
          d.d = a.d / b.d;
        }
        break;
      }
      case OpCode::kConcat: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        d.null = a.null || b.null;
        if (!d.null) {
          std::string& slot = scratch_[in.aux];
          slot.assign(*a.s);
          slot.append(*b.s);
          d.s = &slot;
        }
        break;
      }
      case OpCode::kEqI:
        PRISMA_ARITH(kEqI, b, a.i == b.i)
      case OpCode::kNeI:
        PRISMA_ARITH(kNeI, b, a.i != b.i)
      case OpCode::kLtI:
        PRISMA_ARITH(kLtI, b, a.i < b.i)
      case OpCode::kLeI:
        PRISMA_ARITH(kLeI, b, a.i <= b.i)
      case OpCode::kGtI:
        PRISMA_ARITH(kGtI, b, a.i > b.i)
      case OpCode::kGeI:
        PRISMA_ARITH(kGeI, b, a.i >= b.i)
      case OpCode::kEqD:
        PRISMA_ARITH(kEqD, b, a.d == b.d)
      case OpCode::kNeD:
        PRISMA_ARITH(kNeD, b, a.d != b.d)
      case OpCode::kLtD:
        PRISMA_ARITH(kLtD, b, a.d < b.d)
      case OpCode::kLeD:
        PRISMA_ARITH(kLeD, b, a.d <= b.d)
      case OpCode::kGtD:
        PRISMA_ARITH(kGtD, b, a.d > b.d)
      case OpCode::kGeD:
        PRISMA_ARITH(kGeD, b, a.d >= b.d)
      case OpCode::kEqS:
        PRISMA_ARITH(kEqS, b, *a.s == *b.s)
      case OpCode::kNeS:
        PRISMA_ARITH(kNeS, b, *a.s != *b.s)
      case OpCode::kLtS:
        PRISMA_ARITH(kLtS, b, *a.s < *b.s)
      case OpCode::kLeS:
        PRISMA_ARITH(kLeS, b, *a.s <= *b.s)
      case OpCode::kGtS:
        PRISMA_ARITH(kGtS, b, *a.s > *b.s)
      case OpCode::kGeS:
        PRISMA_ARITH(kGeS, b, *a.s >= *b.s)
      case OpCode::kEqB:
        PRISMA_ARITH(kEqB, b, a.b == b.b)
      case OpCode::kNeB:
        PRISMA_ARITH(kNeB, b, a.b != b.b)
#undef PRISMA_ARITH
      case OpCode::kAnd: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        // Kleene: false dominates NULL.
        if ((!a.null && !a.b) || (!b.null && !b.b)) {
          d.null = false;
          d.b = false;
        } else if (a.null || b.null) {
          d.null = true;
        } else {
          d.null = false;
          d.b = true;
        }
        break;
      }
      case OpCode::kOr: {
        const Reg& a = regs[in.a];
        const Reg& b = regs[in.b];
        // Kleene: true dominates NULL.
        if ((!a.null && a.b) || (!b.null && b.b)) {
          d.null = false;
          d.b = true;
        } else if (a.null || b.null) {
          d.null = true;
        } else {
          d.null = false;
          d.b = false;
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status CompiledExpr::RunBatch(const ColumnBatch& batch) const {
  const size_t rows = batch.num_rows();
  if (vregs_.size() != num_regs_) vregs_.resize(num_regs_);
  if (vscratch_.size() != scratch_.size()) vscratch_.resize(scratch_.size());
  // First failing row (and its message); mirrors the per-tuple path, whose
  // outer loop is rows: the error surfaced is the one of the smallest
  // failing row, and within that row the first failing instruction in
  // program order — which is how instructions are visited here, so a
  // same-row later failure never overwrites an earlier one.
  size_t fail_row = SIZE_MAX;
  const char* fail_msg = nullptr;
  auto fail = [&](size_t row, const char* msg) {
    if (row < fail_row) {
      fail_row = row;
      fail_msg = msg;
    }
  };
  for (const Instruction& in : code_) {
    VReg& d = vregs_[in.dst];
    switch (in.op) {
      case OpCode::kConst: {
        const Value& v = constants_[in.aux];
        d.null.assign(rows, v.is_null() ? 1 : 0);
        if (!v.is_null()) {
          switch (v.type()) {
            case DataType::kBool:
              d.b.assign(rows, v.bool_value() ? 1 : 0);
              break;
            case DataType::kInt64:
              d.i.assign(rows, v.int_value());
              break;
            case DataType::kDouble:
              d.d.assign(rows, v.double_value());
              break;
            case DataType::kString:
              d.s.assign(rows, &v.string_value());
              break;
            default:
              break;
          }
        }
        break;
      }
      case OpCode::kLoadCol: {
        if (in.aux >= batch.num_columns()) {
          return InternalError("column index beyond batch width");
        }
        const ColumnBatch::Column& col = batch.column(in.aux);
        d.null.resize(rows);
        if (col.boxed) {
          // Mixed-type column: unbox per row, as the per-tuple path does.
          d.b.resize(rows);
          d.i.resize(rows);
          d.d.resize(rows);
          d.s.assign(rows, nullptr);
          for (size_t r = 0; r < rows; ++r) {
            const Value& v = col.values[r];
            d.null[r] = v.is_null() ? 1 : 0;
            if (v.is_null()) continue;
            switch (v.type()) {
              case DataType::kBool:
                d.b[r] = v.bool_value() ? 1 : 0;
                break;
              case DataType::kInt64:
                d.i[r] = v.int_value();
                break;
              case DataType::kDouble:
                d.d[r] = v.double_value();
                break;
              case DataType::kString:
                d.s[r] = &v.string_value();
                break;
              default:
                break;
            }
          }
          break;
        }
        d.null = col.nulls;
        switch (col.type) {
          case DataType::kNull:
            break;
          case DataType::kBool:
            d.b = col.bools;
            break;
          case DataType::kInt64:
            d.i = col.ints;
            break;
          case DataType::kDouble:
            d.d = col.doubles;
            break;
          case DataType::kString:
            d.s.resize(rows);
            for (size_t r = 0; r < rows; ++r) d.s[r] = &col.strings[r];
            break;
        }
        break;
      }
      case OpCode::kI2D: {
        const VReg& a = vregs_[in.a];
        d.null = a.null;
        d.d.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          if (a.null[r] == 0) d.d[r] = static_cast<double>(a.i[r]);
        }
        break;
      }
      case OpCode::kNegI: {
        const VReg& a = vregs_[in.a];
        d.null = a.null;
        d.i.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          if (a.null[r] == 0) d.i[r] = -a.i[r];
        }
        break;
      }
      case OpCode::kNegD: {
        const VReg& a = vregs_[in.a];
        d.null = a.null;
        d.d.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          if (a.null[r] == 0) d.d[r] = -a.d[r];
        }
        break;
      }
      case OpCode::kNot: {
        const VReg& a = vregs_[in.a];
        d.null = a.null;
        d.b.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          if (a.null[r] == 0) d.b[r] = a.b[r] != 0 ? 0 : 1;
        }
        break;
      }
      case OpCode::kIsNull: {
        const VReg& a = vregs_[in.a];
        d.null.assign(rows, 0);
        d.b = a.null;
        break;
      }
#define PRISMA_VARITH(FIELD, EXPR_)                          \
  {                                                          \
    const VReg& a = vregs_[in.a];                            \
    const VReg& b = vregs_[in.b];                            \
    d.null.resize(rows);                                     \
    d.FIELD.resize(rows);                                    \
    for (size_t r = 0; r < rows; ++r) {                      \
      const bool n = a.null[r] != 0 || b.null[r] != 0;       \
      d.null[r] = n ? 1 : 0;                                 \
      if (!n) d.FIELD[r] = (EXPR_);                          \
    }                                                        \
    break;                                                   \
  }
      case OpCode::kAddI:
        PRISMA_VARITH(i, a.i[r] + b.i[r])
      case OpCode::kSubI:
        PRISMA_VARITH(i, a.i[r] - b.i[r])
      case OpCode::kMulI:
        PRISMA_VARITH(i, a.i[r] * b.i[r])
      case OpCode::kDivI: {
        const VReg& a = vregs_[in.a];
        const VReg& b = vregs_[in.b];
        d.null.resize(rows);
        d.i.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          bool n = a.null[r] != 0 || b.null[r] != 0;
          if (!n && b.i[r] == 0) {
            // Poison the lane so downstream instructions skip it; the
            // recorded error supersedes all of this row's output anyway.
            fail(r, "division by zero");
            n = true;
          }
          d.null[r] = n ? 1 : 0;
          if (!n) d.i[r] = a.i[r] / b.i[r];
        }
        break;
      }
      case OpCode::kModI: {
        const VReg& a = vregs_[in.a];
        const VReg& b = vregs_[in.b];
        d.null.resize(rows);
        d.i.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          bool n = a.null[r] != 0 || b.null[r] != 0;
          if (!n && b.i[r] == 0) {
            fail(r, "modulo by zero");
            n = true;
          }
          d.null[r] = n ? 1 : 0;
          if (!n) d.i[r] = a.i[r] % b.i[r];
        }
        break;
      }
      case OpCode::kAddD:
        PRISMA_VARITH(d, a.d[r] + b.d[r])
      case OpCode::kSubD:
        PRISMA_VARITH(d, a.d[r] - b.d[r])
      case OpCode::kMulD:
        PRISMA_VARITH(d, a.d[r] * b.d[r])
      case OpCode::kDivD: {
        const VReg& a = vregs_[in.a];
        const VReg& b = vregs_[in.b];
        d.null.resize(rows);
        d.d.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          bool n = a.null[r] != 0 || b.null[r] != 0;
          if (!n && b.d[r] == 0.0) {
            fail(r, "division by zero");
            n = true;
          }
          d.null[r] = n ? 1 : 0;
          if (!n) d.d[r] = a.d[r] / b.d[r];
        }
        break;
      }
      case OpCode::kConcat: {
        const VReg& a = vregs_[in.a];
        const VReg& b = vregs_[in.b];
        std::vector<std::string>& slot = vscratch_[in.aux];
        slot.resize(rows);
        d.null.resize(rows);
        d.s.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          const bool n = a.null[r] != 0 || b.null[r] != 0;
          d.null[r] = n ? 1 : 0;
          if (!n) {
            slot[r].assign(*a.s[r]);
            slot[r].append(*b.s[r]);
            d.s[r] = &slot[r];
          }
        }
        break;
      }
      case OpCode::kEqI:
        PRISMA_VARITH(b, a.i[r] == b.i[r])
      case OpCode::kNeI:
        PRISMA_VARITH(b, a.i[r] != b.i[r])
      case OpCode::kLtI:
        PRISMA_VARITH(b, a.i[r] < b.i[r])
      case OpCode::kLeI:
        PRISMA_VARITH(b, a.i[r] <= b.i[r])
      case OpCode::kGtI:
        PRISMA_VARITH(b, a.i[r] > b.i[r])
      case OpCode::kGeI:
        PRISMA_VARITH(b, a.i[r] >= b.i[r])
      case OpCode::kEqD:
        PRISMA_VARITH(b, a.d[r] == b.d[r])
      case OpCode::kNeD:
        PRISMA_VARITH(b, a.d[r] != b.d[r])
      case OpCode::kLtD:
        PRISMA_VARITH(b, a.d[r] < b.d[r])
      case OpCode::kLeD:
        PRISMA_VARITH(b, a.d[r] <= b.d[r])
      case OpCode::kGtD:
        PRISMA_VARITH(b, a.d[r] > b.d[r])
      case OpCode::kGeD:
        PRISMA_VARITH(b, a.d[r] >= b.d[r])
      case OpCode::kEqS:
        PRISMA_VARITH(b, *a.s[r] == *b.s[r])
      case OpCode::kNeS:
        PRISMA_VARITH(b, *a.s[r] != *b.s[r])
      case OpCode::kLtS:
        PRISMA_VARITH(b, *a.s[r] < *b.s[r])
      case OpCode::kLeS:
        PRISMA_VARITH(b, *a.s[r] <= *b.s[r])
      case OpCode::kGtS:
        PRISMA_VARITH(b, *a.s[r] > *b.s[r])
      case OpCode::kGeS:
        PRISMA_VARITH(b, *a.s[r] >= *b.s[r])
      case OpCode::kEqB:
        PRISMA_VARITH(b, a.b[r] == b.b[r])
      case OpCode::kNeB:
        PRISMA_VARITH(b, a.b[r] != b.b[r])
#undef PRISMA_VARITH
      case OpCode::kAnd: {
        const VReg& a = vregs_[in.a];
        const VReg& b = vregs_[in.b];
        d.null.resize(rows);
        d.b.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          // Kleene: false dominates NULL.
          if ((a.null[r] == 0 && a.b[r] == 0) ||
              (b.null[r] == 0 && b.b[r] == 0)) {
            d.null[r] = 0;
            d.b[r] = 0;
          } else if (a.null[r] != 0 || b.null[r] != 0) {
            d.null[r] = 1;
          } else {
            d.null[r] = 0;
            d.b[r] = 1;
          }
        }
        break;
      }
      case OpCode::kOr: {
        const VReg& a = vregs_[in.a];
        const VReg& b = vregs_[in.b];
        d.null.resize(rows);
        d.b.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          // Kleene: true dominates NULL.
          if ((a.null[r] == 0 && a.b[r] != 0) ||
              (b.null[r] == 0 && b.b[r] != 0)) {
            d.null[r] = 0;
            d.b[r] = 1;
          } else if (a.null[r] != 0 || b.null[r] != 0) {
            d.null[r] = 1;
          } else {
            d.null[r] = 0;
            d.b[r] = 0;
          }
        }
        break;
      }
    }
  }
  if (fail_row != SIZE_MAX) return InvalidArgumentError(fail_msg);
  return Status::OK();
}

StatusOr<ColumnBatch::Column> CompiledExpr::EvalBatch(
    const ColumnBatch& batch) const {
  RETURN_IF_ERROR(RunBatch(batch));
  const size_t rows = batch.num_rows();
  const VReg& res = vregs_[result_reg_];
  ColumnBatch::Column col;
  col.type = result_type_;
  if (result_type_ == DataType::kNull) {
    col.nulls.assign(rows, 1);
    return col;
  }
  col.nulls = res.null;
  switch (result_type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      col.bools.resize(rows);
      for (size_t r = 0; r < rows; ++r) {
        col.bools[r] = res.null[r] == 0 ? res.b[r] : 0;
      }
      break;
    case DataType::kInt64:
      col.ints.resize(rows);
      for (size_t r = 0; r < rows; ++r) {
        col.ints[r] = res.null[r] == 0 ? res.i[r] : 0;
      }
      break;
    case DataType::kDouble:
      col.doubles.resize(rows);
      for (size_t r = 0; r < rows; ++r) {
        col.doubles[r] = res.null[r] == 0 ? res.d[r] : 0.0;
      }
      break;
    case DataType::kString:
      col.strings.resize(rows);
      for (size_t r = 0; r < rows; ++r) {
        if (res.null[r] == 0) col.strings[r] = *res.s[r];
      }
      break;
  }
  return col;
}

Status CompiledExpr::EvalPredicateBatch(const ColumnBatch& batch,
                                        std::vector<uint8_t>* keep) const {
  RETURN_IF_ERROR(RunBatch(batch));
  const size_t rows = batch.num_rows();
  keep->assign(rows, 0);
  if (result_type_ != DataType::kBool) return Status::OK();
  const VReg& res = vregs_[result_reg_];
  for (size_t r = 0; r < rows; ++r) {
    (*keep)[r] = (res.null[r] == 0 && res.b[r] != 0) ? 1 : 0;
  }
  return Status::OK();
}

StatusOr<Value> CompiledExpr::Eval(const Tuple& tuple) const {
  RETURN_IF_ERROR(Run(tuple));
  const Reg& r = regs_[result_reg_];
  if (r.null) return Value::Null();
  switch (result_type_) {
    case DataType::kBool:
      return Value::Bool(r.b);
    case DataType::kInt64:
      return Value::Int(r.i);
    case DataType::kDouble:
      return Value::Double(r.d);
    case DataType::kString:
      return Value::String(*r.s);
    case DataType::kNull:
      return Value::Null();
  }
  return InternalError("bad result type");
}

StatusOr<bool> CompiledExpr::EvalPredicate(const Tuple& tuple) const {
  RETURN_IF_ERROR(Run(tuple));
  const Reg& r = regs_[result_reg_];
  return !r.null && result_type_ == DataType::kBool && r.b;
}

std::string CompiledExpr::ToString() const {
  std::string out;
  for (const Instruction& in : code_) {
    out += StrFormat("r%u = %s r%u r%u aux=%u", in.dst, OpName(in.op), in.a,
                     in.b, in.aux);
    if (in.op == OpCode::kConst) {
      out += " ; " + constants_[in.aux].ToString();
    }
    out += "\n";
  }
  out += StrFormat("result: r%u (%s)\n", result_reg_,
                   DataTypeName(result_type_));
  return out;
}

}  // namespace prisma::exec
