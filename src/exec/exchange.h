#ifndef PRISMA_EXEC_EXCHANGE_H_
#define PRISMA_EXEC_EXCHANGE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "exec/join.h"

namespace prisma::exec {

/// One framed batch of a streaming exchange channel (DESIGN.md §10). A
/// channel is a single-producer/single-consumer tuple stream; batches carry
/// 1-based per-channel sequence numbers, and the final batch of a stream
/// sets `eos`. An empty stream is a single empty batch with seq 1 and eos.
struct TupleBatch {
  uint64_t seq = 0;
  bool eos = false;
  std::vector<Tuple> tuples;
};

/// Receiver side of one exchange channel: reorders out-of-order batches,
/// discards duplicates, and releases the in-order prefix. The consumer
/// acknowledges cumulatively (`ack()` = highest seq delivered in order) and
/// grants credit on top of that, so a lost batch or ack only ever costs a
/// retransmission, never a protocol violation.
class InboundChannel {
 public:
  /// Offers a received batch. Returns false when the batch is a duplicate
  /// (seq already delivered or already buffered) and was discarded.
  bool Offer(TupleBatch batch);

  /// Removes and returns the deliverable in-order prefix. Batches come out
  /// exactly once, in sequence order.
  std::vector<TupleBatch> TakeReady();

  /// Cumulative acknowledgement: highest seq handed out by TakeReady.
  uint64_t ack() const { return next_seq_ - 1; }

  /// True once the eos batch has been delivered in order.
  bool done() const { return finished_; }

  /// Duplicate batches discarded (retransmissions that were not needed).
  uint64_t duplicates() const { return duplicates_; }

 private:
  uint64_t next_seq_ = 1;  // Next seq TakeReady will release.
  bool finished_ = false;
  uint64_t duplicates_ = 0;
  // Reorder buffer keyed by seq; ordered so TakeReady drains the prefix
  // deterministically.
  std::map<uint64_t, TupleBatch> pending_;
};

/// Sender side of one exchange channel. The producer materializes its
/// partition once, frames it into batches of at most `batch_rows` tuples,
/// and then sends under a credit window: batch `s` may be sent only while
/// `s <= acked + window`. Acks are cumulative; a stale ack never moves the
/// window backwards.
class OutboundChannel {
 public:
  /// Frames `tuples` into batches. Always produces at least one batch (an
  /// empty stream is one empty eos batch), so the consumer can detect
  /// completion uniformly.
  OutboundChannel(std::vector<Tuple> tuples, size_t batch_rows,
                  uint64_t window);

  /// Seq of the next batch to transmit for the first time, or 0 when every
  /// batch has been handed out at least once.
  uint64_t next_unsent() const {
    return next_send_ > last_seq() ? 0 : next_send_;
  }

  /// True when the next unsent batch exists but is outside the credit
  /// window — the channel is stalled waiting for an ack.
  bool Stalled() const {
    return next_unsent() != 0 && next_send_ > acked_ + window_;
  }

  /// Hands out the next unsent in-window batch and advances the send
  /// cursor; null when drained or stalled.
  const TupleBatch* TakeNextToSend();

  /// The batch with sequence `seq` (for retransmission); null if out of
  /// range.
  const TupleBatch* BatchAt(uint64_t seq) const;

  /// Applies a cumulative ack; returns true if the window advanced.
  bool OnAck(uint64_t ack);

  /// True when batch `seq` has been handed out at least once — i.e. a
  /// retransmission (not Pump) is responsible for it if it was lost.
  bool Sent(uint64_t seq) const { return seq >= 1 && seq < next_send_; }

  /// Unused send credit: in-window batches not yet transmitted.
  uint64_t credit() const;

  /// Adopts the credit window granted by the consumer's latest ack (the
  /// window rides on every BatchAckMsg); zero grants are ignored so a
  /// malformed ack cannot wedge the channel.
  void set_window(uint64_t window) {
    if (window > 0) window_ = window;
  }

  uint64_t acked() const { return acked_; }
  uint64_t last_seq() const { return batches_.size(); }
  bool done() const { return acked_ >= last_seq(); }

 private:
  std::vector<TupleBatch> batches_;  // Batch with seq s lives at index s-1.
  uint64_t window_;
  uint64_t acked_ = 0;
  uint64_t next_send_ = 1;  // Seq of the next first-transmission.
};

/// Streaming variant of exec::HashJoin (join.cc): the build side arrives
/// incrementally via AddBuild, and once FinishBuild is called each probe
/// tuple is matched immediately — so a consumer can join inbound batches as
/// they arrive instead of materializing both inputs. Matches HashJoin's
/// semantics exactly: NULL keys never join, hash collisions are re-verified
/// by key comparison, and output is Concat(left, right) regardless of which
/// side builds.
class PipelinedHashJoin {
 public:
  struct Options {
    std::vector<size_t> build_cols;  // Key columns in the build schema.
    std::vector<size_t> probe_cols;  // Key columns in the probe schema.
    bool build_is_left = true;       // Which input is the left of Concat.
    JoinFilter filter;               // Residual predicate; null = accept.
  };

  explicit PipelinedHashJoin(Options options);

  /// Inserts one build-side tuple into the hash table.
  void AddBuild(Tuple tuple);

  /// Seals the build side; probes are only valid afterwards.
  void FinishBuild() { build_finished_ = true; }
  bool build_finished() const { return build_finished_; }

  /// Probes with one tuple, appending join results to `out`.
  Status Probe(const Tuple& probe, std::vector<Tuple>* out);

  const JoinCounters& counters() const { return counters_; }
  size_t build_rows() const { return build_.size(); }

 private:
  Options options_;
  bool build_finished_ = false;
  std::vector<Tuple> build_;
  // Hash-bucket index into build_; only ever accessed by .find(), never
  // iterated, so bucket order cannot leak into results.
  std::unordered_map<uint64_t, std::vector<size_t>> table_;
  JoinCounters counters_;
};

}  // namespace prisma::exec

#endif  // PRISMA_EXEC_EXCHANGE_H_
