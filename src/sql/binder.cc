#include "sql/binder.h"

#include <utility>

#include "common/str_util.h"
#include "exec/expr_eval.h"
#include "sql/parser.h"

namespace prisma::sql {
namespace {

using algebra::AggFunc;
using algebra::AggregatePlan;
using algebra::AggSpec;
using algebra::DistinctPlan;
using algebra::Expr;
using algebra::JoinPlan;
using algebra::LimitPlan;
using algebra::Plan;
using algebra::ProjectPlan;
using algebra::ScanPlan;
using algebra::SelectPlan;
using algebra::SortKey;
using algebra::SortPlan;

/// Lowers a surface expression to an algebra expression. Aggregate calls
/// are rejected here; the SELECT binder peels them off beforehand.
StatusOr<std::unique_ptr<Expr>> Lower(const SqlExpr& e) {
  switch (e.kind) {
    case SqlExpr::Kind::kLiteral:
      return Expr::Literal(e.literal);
    case SqlExpr::Kind::kColumn:
      return Expr::ColumnRef(e.name);
    case SqlExpr::Kind::kUnary: {
      ASSIGN_OR_RETURN(auto operand, Lower(*e.left));
      return Expr::Unary(e.unary_op, std::move(operand));
    }
    case SqlExpr::Kind::kBinary: {
      ASSIGN_OR_RETURN(auto l, Lower(*e.left));
      ASSIGN_OR_RETURN(auto r, Lower(*e.right));
      return Expr::Binary(e.binary_op, std::move(l), std::move(r));
    }
    case SqlExpr::Kind::kFuncCall:
      return InvalidArgumentError(
          "aggregate " + e.name +
          "() is only allowed as a direct select item");
  }
  return InternalError("corrupt SqlExpr");
}

StatusOr<AggFunc> AggFuncByName(const std::string& name) {
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "avg") return AggFunc::kAvg;
  return InvalidArgumentError("unknown function " + name);
}

/// Output column name for an item without an explicit alias.
std::string DeriveName(const SqlExpr& e) {
  if (e.kind == SqlExpr::Kind::kColumn) {
    const size_t dot = e.name.rfind('.');
    return dot == std::string::npos ? e.name : e.name.substr(dot + 1);
  }
  if (e.kind == SqlExpr::Kind::kFuncCall) {
    return e.name + "(" + (e.left ? e.left->ToString() : "*") + ")";
  }
  return e.ToString();
}

/// Builds the FROM subtree: scans qualified by alias, chained with joins.
StatusOr<std::unique_ptr<Plan>> BindFrom(const SelectStmt& stmt,
                                         const CatalogReader& catalog) {
  if (stmt.from.empty()) {
    return InvalidArgumentError("SELECT requires a FROM clause");
  }
  std::unique_ptr<Plan> plan;
  for (const TableRef& ref : stmt.from) {
    ASSIGN_OR_RETURN(Schema schema, catalog.GetTableSchema(ref.table));
    auto scan = ScanPlan::Create(ref.table, schema.Qualified(ref.alias));
    if (plan == nullptr) {
      plan = std::move(scan);
      continue;
    }
    std::unique_ptr<Expr> condition;
    if (ref.join_condition != nullptr) {
      ASSIGN_OR_RETURN(condition, Lower(*ref.join_condition));
    }
    ASSIGN_OR_RETURN(
        plan, JoinPlan::Create(std::move(plan), std::move(scan),
                               std::move(condition)));
  }
  return plan;
}

StatusOr<std::unique_ptr<Plan>> BindSelect(const SelectStmt& stmt,
                                           const CatalogReader& catalog) {
  ASSIGN_OR_RETURN(std::unique_ptr<Plan> plan, BindFrom(stmt, catalog));

  if (stmt.where != nullptr) {
    ASSIGN_OR_RETURN(auto predicate, Lower(*stmt.where));
    ASSIGN_OR_RETURN(plan,
                     SelectPlan::Create(std::move(plan), std::move(predicate)));
  }

  const bool has_agg_item = [&] {
    for (const SelectItem& item : stmt.items) {
      if (!item.star && item.expr->kind == SqlExpr::Kind::kFuncCall) {
        return true;
      }
    }
    return false;
  }();
  const bool aggregating = has_agg_item || !stmt.group_by.empty();

  if (aggregating) {
    // GROUP BY expressions, bound to the FROM/WHERE output.
    std::vector<std::unique_ptr<Expr>> group_exprs;
    std::vector<std::string> group_names;
    for (const auto& g : stmt.group_by) {
      ASSIGN_OR_RETURN(auto e, Lower(*g));
      group_exprs.push_back(std::move(e));
      group_names.push_back(DeriveName(*g));
    }
    // Select items: aggregates become AggSpecs; plain expressions must
    // match a GROUP BY expression structurally.
    std::vector<AggSpec> aggs;
    struct OutputRef {
      std::string column;  // Name in the aggregate output schema.
      std::string alias;   // Final output name.
    };
    std::vector<OutputRef> outputs;
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        return InvalidArgumentError("SELECT * cannot be combined with "
                                    "aggregation");
      }
      const std::string out_name =
          item.alias.empty() ? DeriveName(*item.expr) : item.alias;
      if (item.expr->kind == SqlExpr::Kind::kFuncCall) {
        ASSIGN_OR_RETURN(AggFunc func, AggFuncByName(item.expr->name));
        AggSpec spec;
        spec.func = func;
        if (item.expr->left != nullptr) {
          ASSIGN_OR_RETURN(spec.arg, Lower(*item.expr->left));
        } else if (func != AggFunc::kCount) {
          return InvalidArgumentError("only COUNT accepts '*'");
        }
        spec.output_name = out_name;
        aggs.push_back(std::move(spec));
        outputs.push_back({out_name, out_name});
      } else {
        ASSIGN_OR_RETURN(auto lowered, Lower(*item.expr));
        // Must match one of the group-by expressions.
        size_t match = group_exprs.size();
        for (size_t i = 0; i < group_exprs.size(); ++i) {
          if (group_exprs[i]->Equals(*lowered)) {
            match = i;
            break;
          }
        }
        if (match == group_exprs.size()) {
          return InvalidArgumentError(
              "select item " + item.expr->ToString() +
              " is neither aggregated nor in GROUP BY");
        }
        outputs.push_back({group_names[match], out_name});
      }
    }
    ASSIGN_OR_RETURN(
        plan, AggregatePlan::Create(std::move(plan), std::move(group_exprs),
                                    group_names, std::move(aggs)));
    // Final projection reorders/renames aggregate output to select order.
    std::vector<std::unique_ptr<Expr>> proj;
    std::vector<std::string> names;
    for (const OutputRef& out : outputs) {
      proj.push_back(Expr::ColumnRef(out.column));
      names.push_back(out.alias);
    }
    ASSIGN_OR_RETURN(plan, ProjectPlan::Create(std::move(plan),
                                               std::move(proj), names));
  } else {
    // Plain projection; star expands the child schema.
    std::vector<std::unique_ptr<Expr>> proj;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        for (size_t i = 0; i < plan->schema().num_columns(); ++i) {
          const Column& col = plan->schema().column(i);
          proj.push_back(Expr::ColumnIndex(i, col.type));
          const size_t dot = col.name.rfind('.');
          names.push_back(dot == std::string::npos ? col.name
                                                   : col.name.substr(dot + 1));
        }
        continue;
      }
      ASSIGN_OR_RETURN(auto e, Lower(*item.expr));
      proj.push_back(std::move(e));
      names.push_back(item.alias.empty() ? DeriveName(*item.expr)
                                         : item.alias);
    }
    ASSIGN_OR_RETURN(
        plan, ProjectPlan::Create(std::move(plan), std::move(proj), names));
  }

  if (stmt.distinct) {
    plan = DistinctPlan::Create(std::move(plan));
  }

  if (!stmt.order_by.empty()) {
    // Probe whether every key resolves against the output schema.
    bool output_ok = true;
    for (const OrderItem& item : stmt.order_by) {
      ASSIGN_OR_RETURN(auto probe, Lower(*item.expr));
      if (!probe->Bind(plan->schema()).ok()) {
        output_ok = false;
        break;
      }
    }
    if (output_ok) {
      std::vector<SortKey> keys;
      for (const OrderItem& item : stmt.order_by) {
        ASSIGN_OR_RETURN(auto e, Lower(*item.expr));
        keys.push_back(SortKey{std::move(e), item.descending});
      }
      ASSIGN_OR_RETURN(plan,
                       SortPlan::Create(std::move(plan), std::move(keys)));
    } else if (!aggregating) {
      // Resolve against the FROM scope and sort below the projection
      // (descending through a Distinct, which is order-preserving here).
      Plan* host = plan.get();
      while (host->kind() == algebra::PlanKind::kDistinct) {
        host = host->mutable_child();
      }
      if (host->kind() != algebra::PlanKind::kProject) {
        return InvalidArgumentError("cannot resolve ORDER BY columns");
      }
      std::vector<SortKey> keys;
      for (const OrderItem& item : stmt.order_by) {
        ASSIGN_OR_RETURN(auto e, Lower(*item.expr));
        keys.push_back(SortKey{std::move(e), item.descending});
      }
      ASSIGN_OR_RETURN(
          auto sorted, SortPlan::Create(host->TakeChild(0), std::move(keys)));
      host->SetChild(0, std::move(sorted));
    } else {
      return InvalidArgumentError(
          "ORDER BY of an aggregating query must reference select outputs");
    }
  }

  if (stmt.limit.has_value()) {
    plan = LimitPlan::Create(std::move(plan), *stmt.limit);
  }
  return plan;
}

/// Evaluates a constant expression (INSERT values).
StatusOr<Value> EvalConstant(const SqlExpr& e) {
  ASSIGN_OR_RETURN(auto lowered, Lower(e));
  if (!lowered->IsConstant()) {
    return InvalidArgumentError("INSERT values must be constants, got " +
                                e.ToString());
  }
  RETURN_IF_ERROR(lowered->Bind(Schema()));
  return exec::EvalExpr(*lowered, Tuple());
}

StatusOr<BoundStatement> BindInsert(const InsertStmt& stmt,
                                    const CatalogReader& catalog) {
  BoundStatement bound;
  bound.kind = Statement::Kind::kInsert;
  bound.table = stmt.table;
  ASSIGN_OR_RETURN(Schema schema, catalog.GetTableSchema(stmt.table));

  // Map the statement's column list to schema positions.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
  } else {
    for (const std::string& col : stmt.columns) {
      ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
      positions.push_back(idx);
    }
  }
  for (const auto& row : stmt.rows) {
    if (row.size() != positions.size()) {
      return InvalidArgumentError(
          StrFormat("INSERT row has %zu values, expected %zu", row.size(),
                    positions.size()));
    }
    std::vector<Value> values(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < row.size(); ++i) {
      ASSIGN_OR_RETURN(Value v, EvalConstant(*row[i]));
      ASSIGN_OR_RETURN(values[positions[i]],
                       CoerceValue(v, schema.column(positions[i]).type));
    }
    bound.insert_rows.push_back(Tuple(std::move(values)));
  }
  return bound;
}

}  // namespace

StatusOr<BoundStatement> BindStatement(const Statement& stmt,
                                       const CatalogReader& catalog) {
  BoundStatement bound;
  bound.kind = stmt.kind;
  switch (stmt.kind) {
    case Statement::Kind::kCheckpoint:
      return bound;
    case Statement::Kind::kSelect: {
      ASSIGN_OR_RETURN(bound.plan, BindSelect(*stmt.select, catalog));
      return bound;
    }
    case Statement::Kind::kInsert:
      return BindInsert(*stmt.insert, catalog);
    case Statement::Kind::kDelete: {
      bound.table = stmt.del->table;
      ASSIGN_OR_RETURN(Schema schema, catalog.GetTableSchema(bound.table));
      if (stmt.del->where != nullptr) {
        ASSIGN_OR_RETURN(bound.where, Lower(*stmt.del->where));
        RETURN_IF_ERROR(bound.where->Bind(schema));
        if (bound.where->result_type() != DataType::kBool &&
            bound.where->result_type() != DataType::kNull) {
          return InvalidArgumentError("WHERE must be BOOL");
        }
      }
      return bound;
    }
    case Statement::Kind::kUpdate: {
      bound.table = stmt.update->table;
      ASSIGN_OR_RETURN(Schema schema, catalog.GetTableSchema(bound.table));
      for (const auto& [col, expr] : stmt.update->assignments) {
        ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
        ASSIGN_OR_RETURN(auto lowered, Lower(*expr));
        RETURN_IF_ERROR(lowered->Bind(schema));
        if (!IsCoercible(lowered->result_type(), schema.column(idx).type)) {
          return InvalidArgumentError(
              StrFormat("cannot assign %s to column %s %s",
                        DataTypeName(lowered->result_type()), col.c_str(),
                        DataTypeName(schema.column(idx).type)));
        }
        bound.assignments.push_back({idx, std::move(lowered)});
      }
      if (stmt.update->where != nullptr) {
        ASSIGN_OR_RETURN(bound.where, Lower(*stmt.update->where));
        RETURN_IF_ERROR(bound.where->Bind(schema));
        if (bound.where->result_type() != DataType::kBool &&
            bound.where->result_type() != DataType::kNull) {
          return InvalidArgumentError("WHERE must be BOOL");
        }
      }
      return bound;
    }
    case Statement::Kind::kCreateTable: {
      bound.table = stmt.create_table->table;
      Schema schema;
      for (const ColumnDef& col : stmt.create_table->columns) {
        if (schema.HasColumn(col.name)) {
          return InvalidArgumentError("duplicate column " + col.name);
        }
        schema.AddColumn(col.name, col.type);
      }
      bound.create_schema = std::move(schema);
      bound.fragmentation = stmt.create_table->fragmentation;
      if (bound.fragmentation.strategy == FragmentStrategy::kHash ||
          bound.fragmentation.strategy == FragmentStrategy::kRange) {
        ASSIGN_OR_RETURN(bound.fragment_column,
                         bound.create_schema.ColumnIndex(
                             bound.fragmentation.column));
      }
      return bound;
    }
    case Statement::Kind::kDropTable: {
      bound.table = stmt.drop_table->table;
      // Existence is checked by the data dictionary at execution time.
      return bound;
    }
    case Statement::Kind::kCreateIndex: {
      bound.table = stmt.create_index->table;
      bound.index_name = stmt.create_index->index;
      bound.index_ordered = stmt.create_index->ordered;
      ASSIGN_OR_RETURN(Schema schema, catalog.GetTableSchema(bound.table));
      for (const std::string& col : stmt.create_index->columns) {
        ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
        bound.index_columns.push_back(idx);
      }
      return bound;
    }
    case Statement::Kind::kTxnControl:
      bound.txn_control = stmt.txn_control;
      return bound;
  }
  return InternalError("corrupt statement kind");
}

StatusOr<BoundStatement> ParseAndBind(const std::string& sql,
                                      const CatalogReader& catalog) {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  return BindStatement(stmt, catalog);
}

}  // namespace prisma::sql
