#include "sql/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace prisma::sql {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool Token::IsSymbol(const char* s) const {
  return kind == TokenKind::kSymbol && text == s;
}

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- to end of line (SQL) and % (PRISMAlog).
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      t.kind = TokenKind::kIdentifier;
      t.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      const std::string num = input.substr(i, j - i);
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.double_value = std::stod(num);
      } else {
        t.kind = TokenKind::kIntLiteral;
        t.int_value = std::stoll(num);
      }
      t.text = num;
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // Escaped quote.
            value += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value += input[j];
        ++j;
      }
      if (!closed) {
        return InvalidArgumentError(
            StrFormat("unterminated string literal at offset %zu", i));
      }
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(value);
      i = j;
    } else {
      // Multi-character symbols first.
      static const char* kTwoChar[] = {"<>", "!=", "<=", ">=", ":-"};
      t.kind = TokenKind::kSymbol;
      bool matched = false;
      for (const char* sym : kTwoChar) {
        if (i + 1 < n && input[i] == sym[0] && input[i + 1] == sym[1]) {
          t.text = sym;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kOneChar = "=<>+-*/%(),.;?";
        if (kOneChar.find(c) == std::string::npos) {
          return InvalidArgumentError(
              StrFormat("unexpected character '%c' at offset %zu", c, i));
        }
        t.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace prisma::sql
