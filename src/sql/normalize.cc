#include "sql/normalize.h"

#include <cctype>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace prisma::sql {

StatusOr<NormalizedStatement> NormalizeStatement(const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  NormalizedStatement out;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kEnd) break;
    if (!out.fingerprint.empty()) out.fingerprint += ' ';
    switch (token.kind) {
      case TokenKind::kIdentifier: {
        // Identifiers are case-insensitive throughout the binder; fold so
        // "select Name" and "SELECT name" share a plan.
        for (char c : token.text) {
          out.fingerprint +=
              static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        break;
      }
      case TokenKind::kIntLiteral:
        out.fingerprint += '?';
        out.params.push_back(StrFormat("%lld",
                                       static_cast<long long>(token.int_value)));
        break;
      case TokenKind::kDoubleLiteral:
        out.fingerprint += '?';
        out.params.push_back(StrFormat("%.17g", token.double_value));
        break;
      case TokenKind::kStringLiteral:
        out.fingerprint += '?';
        // Quote prefix keeps '1' (string) distinct from 1 (int).
        out.params.push_back("'" + token.text);
        break;
      case TokenKind::kSymbol:
        out.fingerprint += token.text;
        break;
      case TokenKind::kEnd:
        break;
    }
  }
  return out;
}

}  // namespace prisma::sql
