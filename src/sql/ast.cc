#include "sql/ast.h"

namespace prisma::sql {

std::unique_ptr<SqlExpr> MakeLiteral(Value v) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<SqlExpr> MakeColumn(std::string name) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kColumn;
  e->name = std::move(name);
  return e;
}

std::unique_ptr<SqlExpr> MakeUnary(algebra::UnaryOp op,
                                   std::unique_ptr<SqlExpr> operand) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

std::unique_ptr<SqlExpr> MakeBinary(algebra::BinaryOp op,
                                    std::unique_ptr<SqlExpr> l,
                                    std::unique_ptr<SqlExpr> r) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::string SqlExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumn:
      return name;
    case Kind::kUnary:
      if (unary_op == algebra::UnaryOp::kIsNull) {
        return "(" + left->ToString() + " IS NULL)";
      }
      return std::string(algebra::UnaryOpName(unary_op)) + "(" +
             left->ToString() + ")";
    case Kind::kBinary:
      return "(" + left->ToString() + " " +
             algebra::BinaryOpName(binary_op) + " " + right->ToString() + ")";
    case Kind::kFuncCall:
      return name + "(" + (left ? left->ToString() : "*") + ")";
  }
  return "?";
}

}  // namespace prisma::sql
