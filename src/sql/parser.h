#ifndef PRISMA_SQL_PARSER_H_
#define PRISMA_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace prisma::sql {

/// Parses one SQL statement (an optional trailing ';' is accepted).
///
/// Supported grammar (§2.2's SQL interface):
///   SELECT [DISTINCT] item, ... FROM t [alias] [JOIN t2 [a2] ON cond]...
///     [WHERE expr] [GROUP BY expr, ...] [ORDER BY expr [ASC|DESC], ...]
///     [LIMIT n]
///   CREATE TABLE t (col TYPE, ...)
///     [FRAGMENTED BY HASH(col)|RANGE(col)|ROUNDROBIN INTO n FRAGMENTS]
///   DROP TABLE t
///   CREATE [ORDERED] INDEX i ON t (col, ...)
///   INSERT INTO t [(col, ...)] VALUES (expr, ...), ...
///   DELETE FROM t [WHERE expr]
///   UPDATE t SET col = expr, ... [WHERE expr]
///   BEGIN | COMMIT | ABORT (also ROLLBACK)
///   EXPLAIN SELECT ...   (returns the distributed plan as text)
///   CHECKPOINT           (snapshots every fragment, truncates the WALs)
///
/// Aggregates (COUNT/SUM/MIN/MAX/AVG) are parsed as function calls; the
/// binder restricts where they may appear.
StatusOr<Statement> ParseSql(const std::string& sql);

}  // namespace prisma::sql

#endif  // PRISMA_SQL_PARSER_H_
