#ifndef PRISMA_SQL_AST_H_
#define PRISMA_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/value.h"

namespace prisma::sql {

/// Surface-syntax expression. Distinct from algebra::Expr because SQL has
/// constructs (aggregate function calls) that are lowered structurally by
/// the binder rather than evaluated per tuple.
struct SqlExpr {
  enum class Kind : uint8_t {
    kLiteral,
    kColumn,    // Possibly qualified ("e.salary").
    kUnary,
    kBinary,
    kFuncCall,  // COUNT/SUM/MIN/MAX/AVG; arg null means '*'.
  };

  Kind kind;
  Value literal;                       // kLiteral.
  std::string name;                    // kColumn: column; kFuncCall: func.
  algebra::UnaryOp unary_op{};         // kUnary.
  algebra::BinaryOp binary_op{};       // kBinary.
  std::unique_ptr<SqlExpr> left;       // kUnary operand / kBinary lhs /
                                       // kFuncCall argument (may be null).
  std::unique_ptr<SqlExpr> right;      // kBinary rhs.

  std::string ToString() const;
};

std::unique_ptr<SqlExpr> MakeLiteral(Value v);
std::unique_ptr<SqlExpr> MakeColumn(std::string name);
std::unique_ptr<SqlExpr> MakeUnary(algebra::UnaryOp op,
                                   std::unique_ptr<SqlExpr> operand);
std::unique_ptr<SqlExpr> MakeBinary(algebra::BinaryOp op,
                                    std::unique_ptr<SqlExpr> l,
                                    std::unique_ptr<SqlExpr> r);

/// One SELECT output: expression plus optional alias, or the star.
struct SelectItem {
  bool star = false;
  std::unique_ptr<SqlExpr> expr;  // Null when star.
  std::string alias;              // Empty = derive from expression.
};

/// One FROM entry: base table with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // Empty = table name itself.
  /// INNER JOIN ... ON condition with the *previous* table in the list;
  /// null for the first table and for comma-listed cross joins.
  std::unique_ptr<SqlExpr> join_condition;
};

struct OrderItem {
  std::unique_ptr<SqlExpr> expr;
  bool descending = false;
};

/// SELECT [DISTINCT] items FROM refs [WHERE w] [GROUP BY g,...]
/// [ORDER BY o,...] [LIMIT n]
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<SqlExpr> where;
  std::vector<std::unique_ptr<SqlExpr>> group_by;
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
};

/// How a new table is split over the machine — PRISMA's data-allocation
/// clause (§2.2): FRAGMENTED BY HASH(col) | RANGE(col) | ROUNDROBIN
/// INTO n FRAGMENTS.
enum class FragmentStrategy : uint8_t { kNone, kHash, kRange, kRoundRobin };

struct FragmentClause {
  FragmentStrategy strategy = FragmentStrategy::kNone;
  std::string column;   // kHash / kRange.
  int num_fragments = 1;
};

struct ColumnDef {
  std::string name;
  DataType type;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  FragmentClause fragmentation;
};

struct DropTableStmt {
  std::string table;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool ordered = false;  // CREATE [ORDERED] INDEX: B-tree vs hash.
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // Empty = schema order.
  /// Rows of constant expressions.
  std::vector<std::vector<std::unique_ptr<SqlExpr>>> rows;
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<SqlExpr> where;  // Null = all rows.
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<SqlExpr>>> assignments;
  std::unique_ptr<SqlExpr> where;
};

/// Explicit transaction control.
enum class TxnControl : uint8_t { kBegin, kCommit, kAbort };

/// A parsed SQL statement (exactly one member is set, per `kind`).
struct Statement {
  enum class Kind : uint8_t {
    kSelect,
    kCreateTable,
    kDropTable,
    kCreateIndex,
    kInsert,
    kDelete,
    kUpdate,
    kTxnControl,
    kCheckpoint,
  };
  Kind kind;
  /// EXPLAIN SELECT ...: plan the query and return the distributed plan
  /// instead of executing it.
  bool explain = false;
  /// EXPLAIN ANALYZE SELECT ...: execute the query and return the
  /// per-operator profile (rows, simulated ns, bytes) instead of its rows.
  bool analyze = false;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<UpdateStmt> update;
  TxnControl txn_control = TxnControl::kBegin;
};

}  // namespace prisma::sql

#endif  // PRISMA_SQL_AST_H_
