#ifndef PRISMA_SQL_BINDER_H_
#define PRISMA_SQL_BINDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "sql/ast.h"

namespace prisma::sql {

/// Read access to the data dictionary, implemented by gdh::DataDictionary.
class CatalogReader {
 public:
  virtual ~CatalogReader() = default;
  /// Logical schema of a base table (unqualified column names).
  virtual StatusOr<Schema> GetTableSchema(const std::string& table) const = 0;
};

/// A statement resolved against the catalog and lowered into executable
/// form: SELECTs become logical plans; DML becomes typed commands.
struct BoundStatement {
  Statement::Kind kind = Statement::Kind::kSelect;

  // kSelect.
  std::unique_ptr<algebra::Plan> plan;

  // kInsert: full-width tuples in schema order.
  std::string table;
  std::vector<Tuple> insert_rows;

  // kDelete / kUpdate: predicate bound to the table schema (null = all).
  std::unique_ptr<algebra::Expr> where;
  // kUpdate: (column index, value expression bound to the table schema).
  std::vector<std::pair<size_t, std::unique_ptr<algebra::Expr>>> assignments;

  // kCreateTable.
  Schema create_schema;
  FragmentClause fragmentation;
  /// Index of the fragmentation column in create_schema (kHash/kRange).
  size_t fragment_column = 0;

  // kCreateIndex.
  std::string index_name;
  std::vector<size_t> index_columns;
  bool index_ordered = false;

  // kTxnControl.
  TxnControl txn_control = TxnControl::kBegin;
};

/// Resolves names, checks types and lowers a parsed statement.
///
/// SELECT restrictions (documented in README): aggregates may appear only
/// as direct select items `FUNC(expr) [AS name]`; every non-aggregate
/// select item of an aggregating query must also appear in GROUP BY;
/// ORDER BY refers to the select output columns.
StatusOr<BoundStatement> BindStatement(const Statement& stmt,
                                       const CatalogReader& catalog);

/// Convenience: parse + bind.
StatusOr<BoundStatement> ParseAndBind(const std::string& sql,
                                      const CatalogReader& catalog);

}  // namespace prisma::sql

#endif  // PRISMA_SQL_BINDER_H_
