#ifndef PRISMA_SQL_NORMALIZE_H_
#define PRISMA_SQL_NORMALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace prisma::sql {

/// A statement reduced to its parameterized shape (DESIGN.md §15.4).
///
/// `fingerprint` is the token stream rendered with canonical single-space
/// separation, identifiers upper-cased and every literal replaced by `?`;
/// `params` holds the literals in order of appearance, rendered exactly
/// (ints as decimal, doubles via %.17g, strings with a quote prefix so
/// ': 1' and 1 cannot collide). Two statements with the same fingerprint
/// differ only in literals and formatting:
///
///   "select  name FROM emp WHERE dept = 'sales'"
///   "SELECT name FROM emp WHERE dept='eng'"
///
/// both fingerprint to "SELECT NAME FROM EMP WHERE DEPT = ?". The plan
/// cache keys on fingerprint + params (constants are embedded in the
/// optimized plan — fragment pruning depends on them — so equal params are
/// required for a hit; the fingerprint still buys formatting insensitivity
/// and gives the cache its statement-shape identity).
struct NormalizedStatement {
  std::string fingerprint;
  std::vector<std::string> params;
};

/// Tokenizes and normalizes `text`; fails only if the lexer does.
StatusOr<NormalizedStatement> NormalizeStatement(const std::string& text);

}  // namespace prisma::sql

#endif  // PRISMA_SQL_NORMALIZE_H_
