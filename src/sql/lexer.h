#ifndef PRISMA_SQL_LEXER_H_
#define PRISMA_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace prisma::sql {

enum class TokenKind : uint8_t {
  kIdentifier,  // Unquoted name; keywords are identifiers until matched.
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // '...' with '' escaping.
  kSymbol,         // Operators and punctuation, text holds the lexeme.
  kEnd,
};

/// One lexical token. `text` is upper-cased for identifiers when compared
/// against keywords by the parser; literals keep their exact value.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // Identifier/symbol lexeme (original case).
  int64_t int_value = 0;   // kIntLiteral.
  double double_value = 0; // kDoubleLiteral.
  size_t offset = 0;       // Byte offset in the input, for error messages.

  bool IsSymbol(const char* s) const;
  /// Case-insensitive keyword test on identifiers.
  bool IsKeyword(const char* kw) const;
};

/// Splits a SQL (or PRISMAlog) statement into tokens; fails on unknown
/// characters and unterminated strings.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace prisma::sql

#endif  // PRISMA_SQL_LEXER_H_
