#include "sql/parser.h"

#include <utility>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace prisma::sql {
namespace {

using algebra::BinaryOp;
using algebra::UnaryOp;

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement();

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool TryKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool TrySymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!TryKeyword(kw)) {
      return InvalidArgumentError(StrFormat("expected %s near offset %zu", kw,
                                            Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!TrySymbol(s)) {
      return InvalidArgumentError(StrFormat("expected '%s' near offset %zu",
                                            s, Peek().offset));
    }
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return InvalidArgumentError(
          StrFormat("expected identifier near offset %zu", Peek().offset));
    }
    return Advance().text;
  }
  Status ExpectEnd() {
    TrySymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return InvalidArgumentError(StrFormat(
          "unexpected trailing input near offset %zu", Peek().offset));
    }
    return Status::OK();
  }

  StatusOr<std::unique_ptr<SelectStmt>> ParseSelect();
  StatusOr<std::unique_ptr<CreateTableStmt>> ParseCreateTable();
  StatusOr<std::unique_ptr<CreateIndexStmt>> ParseCreateIndex(bool ordered);
  StatusOr<std::unique_ptr<InsertStmt>> ParseInsert();
  StatusOr<std::unique_ptr<DeleteStmt>> ParseDelete();
  StatusOr<std::unique_ptr<UpdateStmt>> ParseUpdate();

  StatusOr<std::unique_ptr<SqlExpr>> ParseExpr() { return ParseOr(); }
  StatusOr<std::unique_ptr<SqlExpr>> ParseOr();
  StatusOr<std::unique_ptr<SqlExpr>> ParseAnd();
  StatusOr<std::unique_ptr<SqlExpr>> ParseNot();
  StatusOr<std::unique_ptr<SqlExpr>> ParseComparison();
  StatusOr<std::unique_ptr<SqlExpr>> ParseAdditive();
  StatusOr<std::unique_ptr<SqlExpr>> ParseMultiplicative();
  StatusOr<std::unique_ptr<SqlExpr>> ParseUnary();
  StatusOr<std::unique_ptr<SqlExpr>> ParsePrimary();

  StatusOr<DataType> ParseType();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  // Whether the FROM-list entry being parsed came via JOIN (needs ON).
  bool expect_on_ = false;
};

StatusOr<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (TryKeyword("EXPLAIN")) {
    stmt.analyze = TryKeyword("ANALYZE");
    if (!Peek().IsKeyword("SELECT")) {
      return InvalidArgumentError(stmt.analyze
                                      ? "EXPLAIN ANALYZE supports SELECT only"
                                      : "EXPLAIN supports SELECT only");
    }
    stmt.explain = true;
  }
  if (Peek().IsKeyword("SELECT")) {
    stmt.kind = Statement::Kind::kSelect;
    ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  } else if (TryKeyword("CREATE")) {
    if (TryKeyword("TABLE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
    } else if (TryKeyword("ORDERED")) {
      RETURN_IF_ERROR(ExpectKeyword("INDEX"));
      stmt.kind = Statement::Kind::kCreateIndex;
      ASSIGN_OR_RETURN(stmt.create_index, ParseCreateIndex(true));
    } else if (TryKeyword("INDEX")) {
      stmt.kind = Statement::Kind::kCreateIndex;
      ASSIGN_OR_RETURN(stmt.create_index, ParseCreateIndex(false));
    } else {
      return InvalidArgumentError("expected TABLE or INDEX after CREATE");
    }
  } else if (TryKeyword("DROP")) {
    RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    stmt.kind = Statement::Kind::kDropTable;
    stmt.drop_table = std::make_unique<DropTableStmt>();
    ASSIGN_OR_RETURN(stmt.drop_table->table, ExpectIdentifier());
  } else if (TryKeyword("INSERT")) {
    stmt.kind = Statement::Kind::kInsert;
    ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
  } else if (TryKeyword("DELETE")) {
    stmt.kind = Statement::Kind::kDelete;
    ASSIGN_OR_RETURN(stmt.del, ParseDelete());
  } else if (TryKeyword("UPDATE")) {
    stmt.kind = Statement::Kind::kUpdate;
    ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
  } else if (TryKeyword("CHECKPOINT")) {
    stmt.kind = Statement::Kind::kCheckpoint;
  } else if (TryKeyword("BEGIN")) {
    stmt.kind = Statement::Kind::kTxnControl;
    stmt.txn_control = TxnControl::kBegin;
  } else if (TryKeyword("COMMIT")) {
    stmt.kind = Statement::Kind::kTxnControl;
    stmt.txn_control = TxnControl::kCommit;
  } else if (TryKeyword("ABORT") || TryKeyword("ROLLBACK")) {
    stmt.kind = Statement::Kind::kTxnControl;
    stmt.txn_control = TxnControl::kAbort;
  } else {
    return InvalidArgumentError(StrFormat(
        "unrecognized statement near offset %zu", Peek().offset));
  }
  RETURN_IF_ERROR(ExpectEnd());
  return stmt;
}

StatusOr<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto select = std::make_unique<SelectStmt>();
  select->distinct = TryKeyword("DISTINCT");

  // Select list.
  do {
    SelectItem item;
    if (TrySymbol("*")) {
      item.star = true;
    } else {
      ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (TryKeyword("AS")) {
        ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      }
    }
    select->items.push_back(std::move(item));
  } while (TrySymbol(","));

  RETURN_IF_ERROR(ExpectKeyword("FROM"));
  // FROM list with optional aliases; JOIN ... ON attaches to the previous.
  bool first = true;
  while (true) {
    TableRef ref;
    ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    // Optional alias (an identifier that is not a clause keyword).
    if (Peek().kind == TokenKind::kIdentifier && !Peek().IsKeyword("WHERE") &&
        !Peek().IsKeyword("GROUP") && !Peek().IsKeyword("ORDER") &&
        !Peek().IsKeyword("LIMIT") && !Peek().IsKeyword("JOIN") &&
        !Peek().IsKeyword("INNER") && !Peek().IsKeyword("ON")) {
      ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    }
    if (ref.alias.empty()) ref.alias = ref.table;
    if (!first && expect_on_) {
      RETURN_IF_ERROR(ExpectKeyword("ON"));
      ASSIGN_OR_RETURN(ref.join_condition, ParseExpr());
    }
    select->from.push_back(std::move(ref));
    first = false;
    if (TrySymbol(",")) {
      expect_on_ = false;
      continue;
    }
    if (TryKeyword("INNER")) {
      RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      expect_on_ = true;
      continue;
    }
    if (TryKeyword("JOIN")) {
      expect_on_ = true;
      continue;
    }
    break;
  }

  if (TryKeyword("WHERE")) {
    ASSIGN_OR_RETURN(select->where, ParseExpr());
  }
  if (TryKeyword("GROUP")) {
    RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      ASSIGN_OR_RETURN(auto g, ParseExpr());
      select->group_by.push_back(std::move(g));
    } while (TrySymbol(","));
  }
  if (TryKeyword("ORDER")) {
    RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (TryKeyword("DESC")) {
        item.descending = true;
      } else {
        TryKeyword("ASC");
      }
      select->order_by.push_back(std::move(item));
    } while (TrySymbol(","));
  }
  if (TryKeyword("LIMIT")) {
    if (Peek().kind != TokenKind::kIntLiteral) {
      return InvalidArgumentError("LIMIT expects an integer");
    }
    select->limit = static_cast<uint64_t>(Advance().int_value);
  }
  return select;
}

StatusOr<DataType> Parser::ParseType() {
  ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
  if (EqualsIgnoreCase(name, "INT") || EqualsIgnoreCase(name, "INTEGER") ||
      EqualsIgnoreCase(name, "BIGINT")) {
    return DataType::kInt64;
  }
  if (EqualsIgnoreCase(name, "DOUBLE") || EqualsIgnoreCase(name, "FLOAT") ||
      EqualsIgnoreCase(name, "REAL")) {
    return DataType::kDouble;
  }
  if (EqualsIgnoreCase(name, "STRING") || EqualsIgnoreCase(name, "TEXT") ||
      EqualsIgnoreCase(name, "VARCHAR") || EqualsIgnoreCase(name, "CHAR")) {
    // Optional length (ignored): VARCHAR(20).
    if (TrySymbol("(")) {
      if (Peek().kind == TokenKind::kIntLiteral) Advance();
      RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    return DataType::kString;
  }
  if (EqualsIgnoreCase(name, "BOOL") || EqualsIgnoreCase(name, "BOOLEAN")) {
    return DataType::kBool;
  }
  return InvalidArgumentError("unknown type " + name);
}

StatusOr<std::unique_ptr<CreateTableStmt>> Parser::ParseCreateTable() {
  auto stmt = std::make_unique<CreateTableStmt>();
  ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    ColumnDef col;
    ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
    ASSIGN_OR_RETURN(col.type, ParseType());
    stmt->columns.push_back(std::move(col));
  } while (TrySymbol(","));
  RETURN_IF_ERROR(ExpectSymbol(")"));

  if (TryKeyword("FRAGMENTED")) {
    RETURN_IF_ERROR(ExpectKeyword("BY"));
    if (TryKeyword("HASH")) {
      stmt->fragmentation.strategy = FragmentStrategy::kHash;
      RETURN_IF_ERROR(ExpectSymbol("("));
      ASSIGN_OR_RETURN(stmt->fragmentation.column, ExpectIdentifier());
      RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (TryKeyword("RANGE")) {
      stmt->fragmentation.strategy = FragmentStrategy::kRange;
      RETURN_IF_ERROR(ExpectSymbol("("));
      ASSIGN_OR_RETURN(stmt->fragmentation.column, ExpectIdentifier());
      RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (TryKeyword("ROUNDROBIN")) {
      stmt->fragmentation.strategy = FragmentStrategy::kRoundRobin;
    } else {
      return InvalidArgumentError("expected HASH, RANGE or ROUNDROBIN");
    }
    RETURN_IF_ERROR(ExpectKeyword("INTO"));
    if (Peek().kind != TokenKind::kIntLiteral) {
      return InvalidArgumentError("expected fragment count");
    }
    stmt->fragmentation.num_fragments =
        static_cast<int>(Advance().int_value);
    RETURN_IF_ERROR(ExpectKeyword("FRAGMENTS"));
    if (stmt->fragmentation.num_fragments < 1) {
      return InvalidArgumentError("fragment count must be positive");
    }
  }
  return stmt;
}

StatusOr<std::unique_ptr<CreateIndexStmt>> Parser::ParseCreateIndex(
    bool ordered) {
  auto stmt = std::make_unique<CreateIndexStmt>();
  stmt->ordered = ordered;
  ASSIGN_OR_RETURN(stmt->index, ExpectIdentifier());
  RETURN_IF_ERROR(ExpectKeyword("ON"));
  ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    stmt->columns.push_back(std::move(col));
  } while (TrySymbol(","));
  RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

StatusOr<std::unique_ptr<InsertStmt>> Parser::ParseInsert() {
  RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStmt>();
  ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  if (TrySymbol("(")) {
    do {
      ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt->columns.push_back(std::move(col));
    } while (TrySymbol(","));
    RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::unique_ptr<SqlExpr>> row;
    do {
      ASSIGN_OR_RETURN(auto e, ParseExpr());
      row.push_back(std::move(e));
    } while (TrySymbol(","));
    RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt->rows.push_back(std::move(row));
  } while (TrySymbol(","));
  return stmt;
}

StatusOr<std::unique_ptr<DeleteStmt>> Parser::ParseDelete() {
  RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStmt>();
  ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  if (TryKeyword("WHERE")) {
    ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

StatusOr<std::unique_ptr<UpdateStmt>> Parser::ParseUpdate() {
  auto stmt = std::make_unique<UpdateStmt>();
  ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    RETURN_IF_ERROR(ExpectSymbol("="));
    ASSIGN_OR_RETURN(auto e, ParseExpr());
    stmt->assignments.push_back({std::move(col), std::move(e)});
  } while (TrySymbol(","));
  if (TryKeyword("WHERE")) {
    ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

// ------------------------------------------------------------- Expressions

StatusOr<std::unique_ptr<SqlExpr>> Parser::ParseOr() {
  ASSIGN_OR_RETURN(auto left, ParseAnd());
  while (TryKeyword("OR")) {
    ASSIGN_OR_RETURN(auto right, ParseAnd());
    left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<std::unique_ptr<SqlExpr>> Parser::ParseAnd() {
  ASSIGN_OR_RETURN(auto left, ParseNot());
  while (TryKeyword("AND")) {
    ASSIGN_OR_RETURN(auto right, ParseNot());
    left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<std::unique_ptr<SqlExpr>> Parser::ParseNot() {
  if (TryKeyword("NOT")) {
    ASSIGN_OR_RETURN(auto operand, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

StatusOr<std::unique_ptr<SqlExpr>> Parser::ParseComparison() {
  ASSIGN_OR_RETURN(auto left, ParseAdditive());
  // Postfix IS [NOT] NULL.
  if (TryKeyword("IS")) {
    const bool negated = TryKeyword("NOT");
    RETURN_IF_ERROR(ExpectKeyword("NULL"));
    auto test = MakeUnary(UnaryOp::kIsNull, std::move(left));
    if (negated) return MakeUnary(UnaryOp::kNot, std::move(test));
    return test;
  }
  struct Cmp {
    const char* sym;
    BinaryOp op;
  };
  static const Cmp kCmps[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                              {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
                              {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
                              {">", BinaryOp::kGt}};
  for (const Cmp& cmp : kCmps) {
    if (TrySymbol(cmp.sym)) {
      ASSIGN_OR_RETURN(auto right, ParseAdditive());
      return MakeBinary(cmp.op, std::move(left), std::move(right));
    }
  }
  return left;
}

StatusOr<std::unique_ptr<SqlExpr>> Parser::ParseAdditive() {
  ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
  while (true) {
    if (TrySymbol("+")) {
      ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
      left = MakeBinary(BinaryOp::kAdd, std::move(left), std::move(right));
    } else if (TrySymbol("-")) {
      ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
      left = MakeBinary(BinaryOp::kSub, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

StatusOr<std::unique_ptr<SqlExpr>> Parser::ParseMultiplicative() {
  ASSIGN_OR_RETURN(auto left, ParseUnary());
  while (true) {
    if (TrySymbol("*")) {
      ASSIGN_OR_RETURN(auto right, ParseUnary());
      left = MakeBinary(BinaryOp::kMul, std::move(left), std::move(right));
    } else if (TrySymbol("/")) {
      ASSIGN_OR_RETURN(auto right, ParseUnary());
      left = MakeBinary(BinaryOp::kDiv, std::move(left), std::move(right));
    } else if (TrySymbol("%")) {
      ASSIGN_OR_RETURN(auto right, ParseUnary());
      left = MakeBinary(BinaryOp::kMod, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

StatusOr<std::unique_ptr<SqlExpr>> Parser::ParseUnary() {
  if (TrySymbol("-")) {
    ASSIGN_OR_RETURN(auto operand, ParseUnary());
    return MakeUnary(UnaryOp::kNeg, std::move(operand));
  }
  return ParsePrimary();
}

StatusOr<std::unique_ptr<SqlExpr>> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kIntLiteral:
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    case TokenKind::kDoubleLiteral:
      Advance();
      return MakeLiteral(Value::Double(t.double_value));
    case TokenKind::kStringLiteral:
      Advance();
      return MakeLiteral(Value::String(t.text));
    case TokenKind::kSymbol:
      if (TrySymbol("(")) {
        ASSIGN_OR_RETURN(auto inner, ParseExpr());
        RETURN_IF_ERROR(ExpectSymbol(")"));
        return inner;
      }
      return InvalidArgumentError(StrFormat(
          "unexpected symbol '%s' at offset %zu", t.text.c_str(), t.offset));
    case TokenKind::kIdentifier: {
      if (t.IsKeyword("NULL")) {
        Advance();
        return MakeLiteral(Value::Null());
      }
      if (t.IsKeyword("TRUE")) {
        Advance();
        return MakeLiteral(Value::Bool(true));
      }
      if (t.IsKeyword("FALSE")) {
        Advance();
        return MakeLiteral(Value::Bool(false));
      }
      std::string name = Advance().text;
      // Function call?
      if (TrySymbol("(")) {
        auto call = std::make_unique<SqlExpr>();
        call->kind = SqlExpr::Kind::kFuncCall;
        call->name = AsciiLower(name);
        if (TrySymbol("*")) {
          // COUNT(*): no argument.
        } else {
          ASSIGN_OR_RETURN(call->left, ParseExpr());
        }
        RETURN_IF_ERROR(ExpectSymbol(")"));
        return call;
      }
      // Qualified column "alias.col".
      if (TrySymbol(".")) {
        ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        return MakeColumn(name + "." + col);
      }
      return MakeColumn(std::move(name));
    }
    case TokenKind::kEnd:
      return InvalidArgumentError("unexpected end of statement");
  }
  return InvalidArgumentError("unparsable expression");
}

}  // namespace

StatusOr<Statement> ParseSql(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace prisma::sql
