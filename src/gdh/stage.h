#ifndef PRISMA_GDH_STAGE_H_
#define PRISMA_GDH_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>

namespace prisma::gdh {

/// Termination barrier for one stage of a multi-stage distributed plan
/// (DESIGN.md §14.1). Each participant votes at most once per (stage,
/// voter) pair; duplicate votes — retransmitted mail is at-least-once —
/// are absorbed without advancing the count. The barrier opens when all
/// `expected` participants of the current stage have voted, at which
/// point the coordinator advances the stage counter and the old stage's
/// votes become stale (votes carrying an old stage id are ignored, so a
/// straggler retransmission from stage n cannot tear through the stage
/// n+1 barrier). This generalizes the fixpoint round barrier (§11): a
/// fixpoint round is a stage whose id is the round number.
class StageBarrier {
 public:
  /// Starts (or restarts) a stage expecting `expected` distinct voters.
  void Begin(uint64_t stage, size_t expected) {
    stage_ = stage;
    expected_ = expected;
    votes_.clear();
  }

  /// Records a vote; returns true iff it was admitted (right stage, not
  /// a duplicate, barrier not already open) — the caller may then fold in
  /// the vote's payload and check complete().
  bool Vote(uint64_t stage, int voter) {
    if (stage != stage_ || complete()) return false;
    return votes_.insert(voter).second;
  }

  uint64_t stage() const { return stage_; }
  size_t votes() const { return votes_.size(); }
  size_t expected() const { return expected_; }
  bool complete() const { return expected_ > 0 && votes_.size() >= expected_; }

 private:
  uint64_t stage_ = 0;
  size_t expected_ = 0;
  std::set<int> votes_;  // Deterministic iteration (D2).
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_STAGE_H_
