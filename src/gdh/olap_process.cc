#include "gdh/olap_process.h"

#include <any>

#include "common/logging.h"
#include "gdh/distributed_plan.h"

namespace prisma::gdh {

OlapMergeProcess::OlapMergeProcess(Config config)
    : config_(std::move(config)) {
  PRISMA_CHECK(config_.merge_plan != nullptr);
  PRISMA_CHECK(config_.producers > 0);
}

void OlapMergeProcess::OnStart() {
  channels_->resize(config_.producers);
  if (config_.metrics != nullptr) {
    // Shares the exchange consumer's data-plane counters: the shuffle
    // machinery underneath is the same.
    m_batches_received_ = config_.metrics->GetCounter(
        "exchange.batches_received", {{"fragment", config_.fragment}});
  }
}

// Handler contract (D5): the merge consumer owns the shuffle data plane.
// PRISMA_HANDLES(kMailTupleBatch, kMailExchangeReplyResend)
void OlapMergeProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailTupleBatch) {
    HandleBatch(mail);
    return;
  }
  if (mail.kind == kMailExchangeReplyResend) {
    if (!replied_ || reply_resends_left_ <= 0) return;
    --reply_resends_left_;
    SendMail(config_.coordinator, kMailExecPlanReply, *reply_,
             (*reply_)->WireBits());
    if (reply_resends_left_ > 0) {
      SendSelfAfter(config_.reply_resend_ns, kMailExchangeReplyResend);
    }
    return;
  }
  // Unknown kinds are ignored (forward compatibility).
}

void OlapMergeProcess::HandleBatch(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<TupleBatchMsg>>(mail.body);
  if (msg->exchange_id != config_.exchange_id) return;
  if (msg->producer >= channels_->size()) return;
  exec::InboundChannel& channel = (*channels_)[msg->producer];

  exec::TupleBatch batch;
  batch.seq = msg->seq;
  batch.eos = msg->eos;
  auto rows_or = TupleBatchRows(*msg);
  if (!rows_or.ok()) {
    // A frame that fails to decode can never become deliverable; fail the
    // query instead of stalling the producer into its retry budget.
    SendReply(rows_or.status());
    return;
  }
  batch.tuples = std::move(rows_or).value();
  const size_t rows = batch.tuples.size();
  if (channel.Offer(std::move(batch))) {
    ChargeCpu(static_cast<sim::SimTime>(rows) * config_.costs.tuple_ns);
    if (m_batches_received_ != nullptr) m_batches_received_->Increment();
  } else if (config_.metrics != nullptr) {
    if (m_dup_batches_ == nullptr) {
      m_dup_batches_ = config_.metrics->GetCounter(
          "exchange.dup_batches", {{"fragment", config_.fragment}});
    }
    m_dup_batches_->Increment();
  }

  // Advance before acking: TakeReady inside Pump moves the cumulative ack
  // point, so the ack below covers this very batch.
  Pump();

  // Always (re-)acknowledge, even duplicates: a lost ack would otherwise
  // stall the producer's credit window forever.
  auto ack = std::make_shared<BatchAckMsg>();
  ack->shuffle_token = msg->shuffle_token;
  ack->consumer = config_.index;
  ack->ack = channel.ack();
  ack->credit = config_.credit_window;
  SendMail(mail.from, kMailBatchAck, std::move(ack), kControlBits);
}

void OlapMergeProcess::Pump() {
  if (replied_) return;
  bool all_done = true;
  // Fixed channel order keeps the materialized input deterministic given
  // the (deterministic) simulated delivery schedule.
  for (exec::InboundChannel& channel : *channels_) {
    for (exec::TupleBatch& batch : channel.TakeReady()) {
      for (Tuple& tuple : batch.tuples) {
        rows_->push_back(std::move(tuple));
      }
    }
    if (!channel.done()) all_done = false;
  }
  if (all_done) RunMerge();
}

void OlapMergeProcess::RunMerge() {
  // Materialize the shuffled-in slice under the sentinel input name and
  // run the merge plan over it (combining aggregation / slice sort).
  storage::Relation input(OlapInputName(), config_.input_schema);
  for (Tuple& tuple : *rows_) {
    StatusOr<storage::RowId> row = input.Insert(std::move(tuple));
    if (!row.ok()) {
      SendReply(row.status());
      return;
    }
  }
  rows_->clear();
  exec::MapTableResolver resolver;
  resolver.Register(OlapInputName(), &input);
  exec::ExecOptions options;
  options.expr_mode = config_.expr_mode;
  options.exec_mode = config_.exec_mode;
  options.costs = config_.costs;
  options.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  exec::Executor executor(&resolver, std::move(options));
  StatusOr<std::vector<Tuple>> result = executor.Execute(*config_.merge_plan);
  if (!result.ok()) {
    SendReply(result.status());
    return;
  }
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = config_.reply_request_id;
  reply->status = Status::OK();
  reply->fragment = config_.fragment;
  reply->tuples =
      std::make_shared<std::vector<Tuple>>(std::move(result).value());
  if (replied_) return;
  replied_ = true;
  *reply_ = reply;
  SendMail(config_.coordinator, kMailExecPlanReply, reply, reply->WireBits());
  if (config_.reply_resend_ns > 0 && config_.reply_resend_attempts > 0) {
    reply_resends_left_ = config_.reply_resend_attempts;
    SendSelfAfter(config_.reply_resend_ns, kMailExchangeReplyResend);
  }
}

void OlapMergeProcess::SendReply(Status status) {
  if (replied_) return;
  replied_ = true;
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = config_.reply_request_id;
  reply->status = std::move(status);
  reply->fragment = config_.fragment;
  *reply_ = reply;
  SendMail(config_.coordinator, kMailExecPlanReply, reply, reply->WireBits());
  if (config_.reply_resend_ns > 0 && config_.reply_resend_attempts > 0) {
    reply_resends_left_ = config_.reply_resend_attempts;
    SendSelfAfter(config_.reply_resend_ns, kMailExchangeReplyResend);
  }
}

}  // namespace prisma::gdh
