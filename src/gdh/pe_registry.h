#ifndef PRISMA_GDH_PE_REGISTRY_H_
#define PRISMA_GDH_PE_REGISTRY_H_

#include <map>
#include <string>
#include <utility>

#include "exec/ofm.h"
#include "net/topology.h"

namespace prisma::gdh {

/// Directory of the OFMs resident on each PE, enabling *co-located*
/// fragment access: when two co-partitioned fragments share a PE, a join
/// between them can run inside that PE, shipping only results over the
/// interconnect.
///
/// Access through the registry models same-PE POOL-X processes exchanging
/// tuples at local-message cost (zero link traffic); the per-tuple CPU is
/// still charged by the executor. Only OFMs on the *same* PE as the
/// requester are visible.
class PeLocalRegistry {
 public:
  PeLocalRegistry() = default;
  PeLocalRegistry(const PeLocalRegistry&) = delete;
  PeLocalRegistry& operator=(const PeLocalRegistry&) = delete;

  void Register(net::NodeId pe, const std::string& fragment,
                const exec::Ofm* ofm) {
    ofms_[{pe, fragment}] = ofm;
  }
  void Unregister(net::NodeId pe, const std::string& fragment) {
    ofms_.erase({pe, fragment});
  }

  /// The OFM hosting `fragment` on `pe`, or null.
  const exec::Ofm* Find(net::NodeId pe, const std::string& fragment) const {
    auto it = ofms_.find({pe, fragment});
    return it == ofms_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::pair<net::NodeId, std::string>, const exec::Ofm*> ofms_;
};

/// Resolver over the co-located OFMs of one PE (used as the fallback of a
/// fragment's own resolver during co-located join execution).
class PeLocalResolver : public exec::TableResolver {
 public:
  PeLocalResolver(const PeLocalRegistry* registry, net::NodeId pe)
      : registry_(registry), pe_(pe) {}

  StatusOr<const storage::Relation*> Resolve(
      const std::string& table) const override {
    const exec::Ofm* ofm = registry_->Find(pe_, table);
    if (ofm == nullptr) {
      return NotFoundError("no co-located fragment " + table);
    }
    return &ofm->relation();
  }
  const storage::HashIndex* FindHashIndex(
      const std::string& table,
      const std::vector<size_t>& columns) const override {
    const exec::Ofm* ofm = registry_->Find(pe_, table);
    return ofm == nullptr ? nullptr : ofm->FindHashIndex(columns);
  }
  const storage::BTreeIndex* FindBTreeIndex(
      const std::string& table,
      const std::vector<size_t>& columns) const override {
    const exec::Ofm* ofm = registry_->Find(pe_, table);
    return ofm == nullptr ? nullptr : ofm->FindBTreeIndex(columns);
  }

 private:
  const PeLocalRegistry* registry_;
  net::NodeId pe_;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_PE_REGISTRY_H_
