#ifndef PRISMA_GDH_LOCK_MANAGER_H_
#define PRISMA_GDH_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/ofm.h"

namespace prisma::gdh {

using exec::TxnId;

enum class LockMode : uint8_t { kShared, kExclusive };

/// The GDH's concurrency-control unit (§2.2): strict two-phase locking at
/// fragment granularity with waits-for deadlock detection.
///
/// Acquire is asynchronous: the callback fires immediately when the lock
/// is compatible, later when it becomes available, or with kAborted when
/// granting would close a waits-for cycle (the requester is the victim,
/// matching "evaluation ... in parallel, except for accesses to the same
/// copy of base fragments", §2.2). All of a transaction's locks are
/// released together (strictness).
class LockManager {
 public:
  using GrantCallback = std::function<void(Status)>;

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `mode` on `resource` for `txn`. Re-acquiring a held lock
  /// (or upgrading S->X when alone) succeeds immediately.
  void Acquire(TxnId txn, const std::string& resource, LockMode mode,
               GrantCallback callback);

  /// Releases everything `txn` holds or waits for; grants unblocked
  /// waiters (their callbacks fire inside this call).
  void ReleaseAll(TxnId txn);

  /// True if `txn` currently holds a lock on `resource`.
  bool Holds(TxnId txn, const std::string& resource) const;

  /// Number of resources with at least one holder or waiter.
  size_t num_locked_resources() const;

  /// Deadlock victims so far (for experiment E8's abort-rate metric).
  uint64_t deadlocks_detected() const { return deadlocks_detected_; }
  uint64_t locks_granted() const { return locks_granted_; }
  uint64_t waits() const { return waits_; }

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    GrantCallback callback;
  };
  struct ResourceState {
    // Holders (all kShared, or exactly one kExclusive).
    std::map<TxnId, LockMode> holders;
    std::deque<Request> waiters;
  };

  /// True if `txn` could hold `mode` on the resource right now.
  static bool Compatible(const ResourceState& state, TxnId txn, LockMode mode);

  /// Would `waiter` (blocked on `resource`) create a waits-for cycle?
  bool WouldDeadlock(TxnId waiter, const std::string& resource) const;

  /// Grants queued waiters that became compatible.
  void GrantWaiters(const std::string& resource);

  std::map<std::string, ResourceState> resources_;
  uint64_t deadlocks_detected_ = 0;
  uint64_t locks_granted_ = 0;
  uint64_t waits_ = 0;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_LOCK_MANAGER_H_
