#include "gdh/optimizer.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace prisma::gdh {

using algebra::BinaryOp;
using algebra::Expr;
using algebra::ExprKind;
using algebra::JoinPlan;
using algebra::Plan;
using algebra::PlanKind;
using algebra::ProjectPlan;
using algebra::ScanPlan;
using algebra::SelectPlan;

Optimizer::Optimizer(const DataDictionary* dictionary, OptimizerRules rules)
    : dictionary_(dictionary), rules_(rules) {}

// ------------------------------------------------------------- Estimation

double Optimizer::SelectivityOf(const Expr& predicate) const {
  switch (predicate.kind()) {
    case ExprKind::kLiteral:
      return 1.0;
    case ExprKind::kColumnRef:
      return 0.5;
    case ExprKind::kUnary:
      if (predicate.unary_op() == algebra::UnaryOp::kIsNull) return 0.1;
      if (predicate.unary_op() == algebra::UnaryOp::kNot) {
        return std::max(0.0, 1.0 - SelectivityOf(*predicate.operand()));
      }
      return 0.5;
    case ExprKind::kBinary:
      switch (predicate.binary_op()) {
        case BinaryOp::kEq:
          return kEqSelectivity;
        case BinaryOp::kNe:
          return 1.0 - kEqSelectivity;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return kRangeSelectivity;
        case BinaryOp::kAnd:
          return SelectivityOf(*predicate.left()) *
                 SelectivityOf(*predicate.right());
        case BinaryOp::kOr:
          return std::min(1.0, SelectivityOf(*predicate.left()) +
                                   SelectivityOf(*predicate.right()));
        default:
          return 0.5;
      }
  }
  return 0.5;
}

double Optimizer::EstimateRows(const Plan& plan) const {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      const auto& table = static_cast<const ScanPlan&>(plan).table();
      if (dictionary_ != nullptr) {
        auto info = dictionary_->GetTable(table);
        if (info.ok()) {
          return std::max<double>(1.0, static_cast<double>((*info)->TotalRows()));
        }
      }
      return kDefaultScanRows;
    }
    case PlanKind::kValues:
      return static_cast<double>(
          static_cast<const algebra::ValuesPlan&>(plan).rows().size());
    case PlanKind::kSelect:
      return EstimateRows(*plan.child()) *
             SelectivityOf(static_cast<const SelectPlan&>(plan).predicate());
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
      return EstimateRows(*plan.child());
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinPlan&>(plan);
      const double l = EstimateRows(*plan.child(0));
      const double r = EstimateRows(*plan.child(1));
      if (!join.EquiKeys().empty()) {
        return l * r / std::max({l, r, 1.0});
      }
      if (join.predicate() != nullptr) {
        return l * r * SelectivityOf(*join.predicate());
      }
      return l * r;
    }
    case PlanKind::kUnion:
      return EstimateRows(*plan.child(0)) + EstimateRows(*plan.child(1));
    case PlanKind::kDifference:
      return EstimateRows(*plan.child(0));
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const algebra::AggregatePlan&>(plan);
      if (agg.group_by().empty()) return 1.0;
      return EstimateRows(*plan.child()) * 0.1 + 1.0;
    }
    case PlanKind::kLimit:
      return std::min(
          EstimateRows(*plan.child()),
          static_cast<double>(static_cast<const algebra::LimitPlan&>(plan).limit()));
    case PlanKind::kTransitiveClosure:
      return EstimateRows(*plan.child()) * 4.0 + 1.0;
  }
  return kDefaultScanRows;
}

double Optimizer::EstimateFlow(const Plan& plan) const {
  double flow = EstimateRows(plan);
  for (size_t i = 0; i < plan.num_children(); ++i) {
    flow += EstimateFlow(*plan.child(i));
  }
  return flow;
}

// ------------------------------------------------------ Selection pushdown

namespace {

/// Sinks a positional conjunct into `plan`, tracking whether it crossed an
/// operator boundary on the way down.
std::unique_ptr<Plan> Sink(std::unique_ptr<Plan> plan,
                           std::unique_ptr<Expr> conjunct, bool* moved) {
  switch (plan->kind()) {
    case PlanKind::kJoin: {
      const size_t left_width = plan->child(0)->schema().num_columns();
      const size_t total = plan->schema().num_columns();
      std::vector<size_t> cols;
      conjunct->CollectColumnIndexes(&cols);
      const bool all_left = std::all_of(
          cols.begin(), cols.end(), [&](size_t c) { return c < left_width; });
      const bool all_right = !cols.empty() &&
                             std::all_of(cols.begin(), cols.end(),
                                         [&](size_t c) { return c >= left_width; });
      if (all_left && !cols.empty()) {
        *moved = true;
        plan->SetChild(0, Sink(plan->TakeChild(0), std::move(conjunct), moved));
        return plan;
      }
      if (all_right) {
        std::vector<size_t> mapping(total, SIZE_MAX);
        for (size_t i = left_width; i < total; ++i) mapping[i] = i - left_width;
        *moved = true;
        plan->SetChild(1, Sink(plan->TakeChild(1),
                               algebra::RemapColumns(*conjunct, mapping),
                               moved));
        return plan;
      }
      // References both sides: merge into the join predicate (equality
      // conjuncts become hash-join keys).
      const auto& join = static_cast<const JoinPlan&>(*plan);
      std::vector<std::unique_ptr<Expr>> conjuncts;
      if (join.predicate() != nullptr) {
        conjuncts = algebra::SplitConjuncts(*join.predicate());
      }
      conjuncts.push_back(std::move(conjunct));
      *moved = true;
      auto rebuilt = JoinPlan::Create(
          plan->TakeChild(0), plan->TakeChild(1),
          algebra::CombineConjuncts(std::move(conjuncts)));
      PRISMA_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
      return std::move(rebuilt).value();
    }
    case PlanKind::kSelect:
    case PlanKind::kDistinct:
    case PlanKind::kSort: {
      *moved = true;
      plan->SetChild(0, Sink(plan->TakeChild(0), std::move(conjunct), moved));
      return plan;
    }
    case PlanKind::kUnion: {
      *moved = true;
      auto copy = conjunct->Clone();
      plan->SetChild(0, Sink(plan->TakeChild(0), std::move(conjunct), moved));
      plan->SetChild(1, Sink(plan->TakeChild(1), std::move(copy), moved));
      return plan;
    }
    case PlanKind::kDifference: {
      // Filtering the left input preserves the difference.
      *moved = true;
      plan->SetChild(0, Sink(plan->TakeChild(0), std::move(conjunct), moved));
      return plan;
    }
    default: {
      auto wrapped = SelectPlan::Create(std::move(plan), std::move(conjunct));
      PRISMA_CHECK(wrapped.ok()) << wrapped.status().ToString();
      return std::move(wrapped).value();
    }
  }
}

}  // namespace

std::unique_ptr<Plan> Optimizer::SinkConjunct(std::unique_ptr<Plan> plan,
                                              std::unique_ptr<Expr> conjunct,
                                              OptimizerReport* report) {
  bool moved = false;
  plan = Sink(std::move(plan), std::move(conjunct), &moved);
  if (moved && report != nullptr) ++report->selections_pushed;
  return plan;
}

std::unique_ptr<Plan> Optimizer::PushSelections(std::unique_ptr<Plan> plan,
                                                OptimizerReport* report) {
  for (size_t i = 0; i < plan->num_children(); ++i) {
    plan->SetChild(i, PushSelections(plan->TakeChild(i), report));
  }
  if (plan->kind() != PlanKind::kSelect) return plan;

  auto& select = static_cast<SelectPlan&>(*plan);
  auto conjuncts = algebra::SplitConjuncts(select.predicate());
  std::unique_ptr<Plan> child = plan->TakeChild(0);
  for (auto& conjunct : conjuncts) {
    child = SinkConjunct(std::move(child), algebra::ToPositional(*conjunct),
                         report);
  }
  return child;
}

// ----------------------------------------------------------- Join reorder

namespace {

struct FlatJoin {
  std::vector<std::unique_ptr<Plan>> leaves;   // In original order.
  std::vector<size_t> leaf_offset;             // Global start column.
  std::vector<std::unique_ptr<Expr>> conjuncts;  // Positional, global.
};

/// Flattens a maximal join subtree; `offset` is the global start column of
/// this subtree in the flattened output.
void Flatten(std::unique_ptr<Plan> plan, size_t offset, FlatJoin* out) {
  if (plan->kind() != PlanKind::kJoin) {
    out->leaf_offset.push_back(offset);
    out->leaves.push_back(std::move(plan));
    return;
  }
  auto& join = static_cast<JoinPlan&>(*plan);
  const size_t left_width = plan->child(0)->schema().num_columns();
  if (join.predicate() != nullptr) {
    // Shift this node's predicate columns by the subtree's global offset.
    const size_t total = plan->schema().num_columns();
    std::vector<size_t> mapping(total);
    for (size_t i = 0; i < total; ++i) mapping[i] = i + offset;
    for (auto& c : algebra::SplitConjuncts(*join.predicate())) {
      out->conjuncts.push_back(
          algebra::RemapColumns(*algebra::ToPositional(*c), mapping));
    }
  }
  std::unique_ptr<Plan> left = plan->TakeChild(0);
  std::unique_ptr<Plan> right = plan->TakeChild(1);
  Flatten(std::move(left), offset, out);
  Flatten(std::move(right), offset + left_width, out);
}

}  // namespace

std::unique_ptr<Plan> Optimizer::ReorderJoins(std::unique_ptr<Plan> plan,
                                              OptimizerReport* report) {
  // Recurse below non-join nodes; reorder each maximal join subtree.
  if (plan->kind() != PlanKind::kJoin) {
    for (size_t i = 0; i < plan->num_children(); ++i) {
      plan->SetChild(i, ReorderJoins(plan->TakeChild(i), report));
    }
    return plan;
  }

  const Schema original_schema = plan->schema();
  FlatJoin flat;
  Flatten(std::move(plan), 0, &flat);
  // Leaves themselves may contain joins further down (e.g. under selects).
  for (auto& leaf : flat.leaves) {
    for (size_t i = 0; i < leaf->num_children(); ++i) {
      leaf->SetChild(i, ReorderJoins(leaf->TakeChild(i), report));
    }
  }
  const size_t n = flat.leaves.size();
  if (n < 3) {
    // Nothing to reorder: rebuild verbatim (left-deep in original order).
    std::unique_ptr<Plan> rebuilt = std::move(flat.leaves[0]);
    for (size_t i = 1; i < n; ++i) {
      // All conjuncts are attachable at the top join for n == 2.
      std::unique_ptr<Expr> pred;
      if (i == n - 1) {
        pred = algebra::CombineConjuncts(std::move(flat.conjuncts));
      }
      auto join = JoinPlan::Create(std::move(rebuilt),
                                   std::move(flat.leaves[i]), std::move(pred));
      PRISMA_CHECK(join.ok()) << join.status().ToString();
      rebuilt = std::move(join).value();
    }
    return rebuilt;
  }

  // Which leaf does each global column belong to?
  std::vector<size_t> leaf_width(n);
  size_t total_width = 0;
  for (size_t i = 0; i < n; ++i) {
    leaf_width[i] = flat.leaves[i]->schema().num_columns();
    total_width += leaf_width[i];
  }
  auto leaf_of_col = [&](size_t col) {
    for (size_t i = 0; i < n; ++i) {
      if (col >= flat.leaf_offset[i] && col < flat.leaf_offset[i] + leaf_width[i]) {
        return i;
      }
    }
    PRISMA_CHECK(false) << "column beyond join width";
    return n;
  };

  struct ConjunctInfo {
    std::unique_ptr<Expr> expr;
    std::set<size_t> leaves;
    bool attached = false;
  };
  std::vector<ConjunctInfo> conjuncts;
  for (auto& c : flat.conjuncts) {
    ConjunctInfo info;
    std::vector<size_t> cols;
    c->CollectColumnIndexes(&cols);
    for (const size_t col : cols) info.leaves.insert(leaf_of_col(col));
    info.expr = std::move(c);
    conjuncts.push_back(std::move(info));
  }

  std::vector<double> leaf_rows(n);
  for (size_t i = 0; i < n; ++i) leaf_rows[i] = EstimateRows(*flat.leaves[i]);

  // Greedy order: smallest leaf first, then the smallest leaf connected to
  // the chosen set by some conjunct (cross products only as a last resort).
  std::vector<bool> chosen(n, false);
  std::vector<size_t> order;
  order.push_back(static_cast<size_t>(
      std::min_element(leaf_rows.begin(), leaf_rows.end()) - leaf_rows.begin()));
  chosen[order[0]] = true;
  while (order.size() < n) {
    size_t best = n;
    bool best_connected = false;
    for (size_t cand = 0; cand < n; ++cand) {
      if (chosen[cand]) continue;
      bool connected = false;
      for (const ConjunctInfo& c : conjuncts) {
        if (!c.leaves.contains(cand)) continue;
        bool others_chosen = true;
        for (const size_t l : c.leaves) {
          if (l != cand && !chosen[l]) {
            others_chosen = false;
            break;
          }
        }
        if (others_chosen) {
          connected = true;
          break;
        }
      }
      if (best == n || (connected && !best_connected) ||
          (connected == best_connected && leaf_rows[cand] < leaf_rows[best])) {
        best = cand;
        best_connected = connected;
      }
    }
    chosen[best] = true;
    order.push_back(best);
  }

  const bool changed = !std::is_sorted(order.begin(), order.end());
  if (changed && report != nullptr) ++report->joins_reordered;

  // New global index of each old global column.
  std::vector<size_t> new_index(total_width, SIZE_MAX);
  size_t cursor = 0;
  for (const size_t leaf : order) {
    for (size_t c = 0; c < leaf_width[leaf]; ++c) {
      new_index[flat.leaf_offset[leaf] + c] = cursor++;
    }
  }

  // Rebuild left-deep, attaching each conjunct at the first join where all
  // its leaves are available.
  std::set<size_t> placed{order[0]};
  std::unique_ptr<Plan> rebuilt = std::move(flat.leaves[order[0]]);
  for (size_t step = 1; step < n; ++step) {
    const size_t leaf = order[step];
    placed.insert(leaf);
    std::vector<std::unique_ptr<Expr>> attach;
    for (ConjunctInfo& c : conjuncts) {
      if (c.attached) continue;
      bool ready = true;
      for (const size_t l : c.leaves) {
        if (!placed.contains(l)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      c.attached = true;
      attach.push_back(algebra::RemapColumns(*c.expr, new_index));
    }
    auto join = JoinPlan::Create(std::move(rebuilt),
                                 std::move(flat.leaves[leaf]),
                                 algebra::CombineConjuncts(std::move(attach)));
    PRISMA_CHECK(join.ok()) << join.status().ToString();
    rebuilt = std::move(join).value();
  }

  // Restore the original column order and names for the parent.
  std::vector<std::unique_ptr<Expr>> proj;
  std::vector<std::string> names;
  for (size_t i = 0; i < total_width; ++i) {
    proj.push_back(Expr::ColumnIndex(new_index[i],
                                     original_schema.column(i).type));
    names.push_back(original_schema.column(i).name);
  }
  auto projected =
      ProjectPlan::Create(std::move(rebuilt), std::move(proj), names);
  PRISMA_CHECK(projected.ok()) << projected.status().ToString();
  return std::move(projected).value();
}

// ------------------------------------------------------------------- CSE

void Optimizer::CountCommonSubtrees(const Plan& plan,
                                    OptimizerReport* report) const {
  std::map<std::string, int> shapes;
  std::function<void(const Plan&)> walk = [&](const Plan& node) {
    switch (node.kind()) {
      case PlanKind::kJoin:
      case PlanKind::kAggregate:
      case PlanKind::kSort:
      case PlanKind::kDistinct:
      case PlanKind::kTransitiveClosure:
        ++shapes[node.ToString()];
        break;
      default:
        break;
    }
    for (size_t i = 0; i < node.num_children(); ++i) walk(*node.child(i));
  };
  walk(plan);
  for (const auto& [_, count] : shapes) {
    if (count > 1) report->common_subtrees += count - 1;
  }
  report->enable_subtree_cache = report->common_subtrees > 0;
}

// ------------------------------------------------------------------ Drive

StatusOr<std::unique_ptr<Plan>> Optimizer::Optimize(
    std::unique_ptr<Plan> plan, OptimizerReport* report) {
  OptimizerReport local;
  OptimizerReport& r = report != nullptr ? *report : local;
  r = OptimizerReport();
  r.estimated_flow_before = EstimateFlow(*plan);

  if (rules_.push_selections) {
    plan = PushSelections(std::move(plan), &r);
  }
  if (rules_.reorder_joins) {
    plan = ReorderJoins(std::move(plan), &r);
  }
  if (rules_.detect_common_subexpressions) {
    CountCommonSubtrees(*plan, &r);
  }
  r.estimated_flow_after = EstimateFlow(*plan);
  return plan;
}

}  // namespace prisma::gdh
