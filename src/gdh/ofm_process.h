#ifndef PRISMA_GDH_OFM_PROCESS_H_
#define PRISMA_GDH_OFM_PROCESS_H_

#include <any>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/exchange.h"
#include "exec/ofm.h"
#include "gdh/data_dictionary.h"
#include "gdh/messages.h"
#include "gdh/pe_registry.h"
#include "obs/metrics.h"
#include "pool/owned.h"
#include "pool/runtime.h"

namespace prisma::gdh {

/// POOL-X process hosting one One-Fragment Manager on its PE. Handles
/// plan execution, write, 2PC and index requests from the GDH and query
/// coordinators, charging all work to its PE.
///
/// The interconnect may drop or duplicate messages (see net::FaultPlan),
/// so every request is identified by (sender, request_id): a repeated
/// non-idempotent request (write, 2PC control, checkpoint, index build)
/// replays the cached reply instead of re-executing, making
/// retransmission-based senders safe against duplicates. Plan executions
/// are idempotent reads and simply run again when duplicated.
///
/// On start it recovers from its PE's stable store when `recover` is set
/// (crash replacement) and asks the GDH to decide any in-doubt prepared
/// transactions, retrying the inquiry on a timer. Until the last in-doubt
/// transaction is resolved, data-plane requests are stalled and replayed
/// afterwards, so no statement observes withheld effects.
class OfmProcess : public pool::Process {
 public:
  struct Config {
    std::string fragment_name;
    Schema schema;
    exec::Ofm::Options ofm;
    /// Run restart recovery in OnStart (crash replacement).
    bool recover = false;
    /// Nonzero marks a replica-resync target (DESIGN.md §13): the OFM
    /// starts empty (no WAL recovery — the stale stable state is behind
    /// the surviving replica) and is refilled by a snapshot bulk-copy
    /// plus WAL-delta rounds; inbound resync traffic is matched on this
    /// id so frames of superseded attempts are ignored.
    uint64_t resync_id = 0;
    /// Coordinator to consult for in-doubt transactions.
    pool::ProcessId gdh = pool::kNoProcess;
    /// Retry period of the in-doubt decision inquiry.
    sim::SimTime decision_retry_ns = 100 * sim::kNanosPerMilli;
    /// Dedup horizon: cached replies and terminated-transaction records
    /// are kept at least this long (virtual time). The spawner sizes it
    /// past the senders' worst-case retransmission window
    /// (GdhProcess::DedupRetentionNs), so no entry is evicted while a
    /// duplicate request or a delayed write can still arrive.
    sim::SimTime dedup_retention_ns = 120 * sim::kNanosPerSecond;
    /// Directory of co-located fragments (may be null); this OFM
    /// registers itself and resolves co-located scans through it.
    PeLocalRegistry* registry = nullptr;
    /// Secondary indexes to create at start: (name, columns, ordered).
    std::vector<IndexInfo> indexes;
    /// Shuffle-producer retransmission: period of the per-shuffle resend
    /// timer, its exponential-backoff cap, and the attempts budget (an
    /// attempt is a timer firing with no window progress since the last
    /// one; exhaustion fails the shuffle with Unavailable).
    sim::SimTime batch_retry_ns = 250 * sim::kNanosPerMilli;
    sim::SimTime batch_backoff_cap_ns = 2 * sim::kNanosPerSecond;
    int batch_attempts = 10;
    /// Per-fragment counters land here when set (ofm.* metric family).
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit OfmProcess(Config config);
  ~OfmProcess() override;

  void OnStart() override;
  void OnMail(const pool::Mail& mail) override;

  std::string debug_name() const override {
    return "ofm:" + config_.fragment_name;
  }

  /// Control-plane view for tests; fine between simulation events, checked
  /// by the ownership guard when called from another process's handler.
  exec::Ofm& ofm() { return *ofm_; }

  /// Requests answered from the reply cache (duplicate deliveries).
  uint64_t dup_requests() const { return dup_requests_; }

 private:
  void HandleExecPlan(const pool::Mail& mail);
  void HandleShufflePlan(const pool::Mail& mail);
  void HandleBatchAck(const pool::Mail& mail);
  void HandleBatchResend(const pool::Mail& mail);
  void HandleWrite(const pool::Mail& mail);
  void HandleTxnControl(const pool::Mail& mail);
  void HandleDecisionReply(const pool::Mail& mail);
  void HandleCheckpoint(const pool::Mail& mail);
  void HandleCreateIndex(const pool::Mail& mail);
  // Resync source side (DESIGN.md §13).
  void HandleResync(const pool::Mail& mail);
  void HandleResyncDeltaAck(const pool::Mail& mail);
  // Resync target side.
  void HandleResyncBatch(const pool::Mail& mail);
  void HandleResyncDelta(const pool::Mail& mail);

  /// True while recovered in-doubt transactions await the coordinator's
  /// decision; data-plane mail is queued until then.
  bool Stalled() const {
    return !ofm_.null() && !ofm_->recovered_undecided().empty();
  }
  bool InDoubt(exec::TxnId txn) const;
  void SendDecisionRequest();

  /// Records a transaction this OFM has terminated (commit or abort,
  /// including control for transactions it never saw). A faulty network
  /// can reorder an abort before a delayed write of the same transaction;
  /// without this record the late write would silently re-open the
  /// transaction and leak uncommitted effects.
  void NoteFinished(exec::TxnId txn);
  bool Finished(exec::TxnId txn) const { return finished_->contains(txn); }

  /// Caches the reply under (to, request_id) and sends it. Duplicate
  /// requests replay the cached reply through ReplayCached.
  void Respond(pool::ProcessId to, uint64_t request_id, const char* kind,
               std::any body, int64_t size_bits);
  /// Replays the cached reply for a duplicate request; false if the
  /// request was never answered (i.e. it is not a duplicate).
  bool ReplayCached(pool::ProcessId from, uint64_t request_id);

  /// Re-dispatches deferred data-plane mail once the last in-doubt
  /// transaction is resolved.
  void MaybeReplayStalled();

  /// Drops cached replies and terminated-transaction records older than
  /// the dedup retention horizon (no sender retransmits that long).
  void EvictExpiredDedupState();

  /// Pushes the WAL / redo deltas accumulated since the last sync into the
  /// registry counters. Cheap; called at the end of mutating handlers.
  void SyncDurabilityMetrics();

  /// One outbound channel of an active shuffle: the framed partition for
  /// one consumer, plus its credit gauge.
  struct ShuffleChannel {
    exec::OutboundChannel channel;
    pool::ProcessId consumer = pool::kNoProcess;
    obs::Gauge* credit_gauge = nullptr;
  };

  /// One in-flight shuffle this OFM is producing (keyed by token). The
  /// coordinator sees a shuffle as a plain hardened RPC: the producer
  /// answers (via Respond, so the reply is cached) once every channel is
  /// fully acknowledged, or with Unavailable when the attempts budget runs
  /// out without window progress.
  struct ShuffleState {
    pool::ProcessId coordinator = pool::kNoProcess;
    uint64_t request_id = 0;
    uint64_t token = 0;
    uint64_t exchange_id = 0;
    int side = 0;
    size_t producer = 0;
    /// Frame batches in the column-encoded wire format (DESIGN.md §12)
    /// instead of row-encoded tuples (vectorized statements).
    bool columnar = false;
    std::vector<ShuffleChannel> channels;
    int attempts = 0;           // Timer firings without window progress.
    sim::SimTime retry_delay = 0;
    /// Pending kMailBatchResend timer; cancelled when the shuffle settles
    /// so a finished statement leaves no event-queue tail behind.
    sim::EventId resend_timer = 0;
    /// First-transmission data-plane bits (retransmissions excluded);
    /// reported to the coordinator in the settling reply so olap.* wire
    /// accounting reflects the modelled payload, not retry luck.
    uint64_t wire_bits = 0;
  };

  /// Transmits every sendable batch on every channel of `state`, counting
  /// stalls when a channel runs out of credit mid-drain.
  void PumpShuffle(ShuffleState& state);
  /// Returns the modelled wire bits of the transmitted batch.
  int64_t SendBatch(const ShuffleState& state, const ShuffleChannel& channel,
                    const exec::TupleBatch& batch);
  /// Answers the coordinator (cached) and discards the shuffle state.
  void FinishShuffle(uint64_t token, Status status);
  void RegisterExchangeMetrics();

  /// One resync this OFM is sourcing (keyed by session token): the bulk
  /// snapshot stream to the target plus the stop-and-wait WAL-delta
  /// rounds, under the same retransmission discipline as a shuffle.
  struct ResyncSource {
    pool::ProcessId gdh = pool::kNoProcess;    // Requester (reply target).
    pool::ProcessId target = pool::kNoProcess;
    uint64_t request_id = 0;
    uint64_t resync_id = 0;
    uint64_t token = 0;
    uint64_t credit_window = 4;
    bool columnar = true;
    bool cutover = false;
    bool bulk_done = false;
    std::unique_ptr<exec::OutboundChannel> bulk;  // Null in cutover phase.
    uint64_t delta_seq = 0;
    std::shared_ptr<ResyncDeltaMsg> pending_delta;  // Awaiting its ack.
    // Transfer accounting for the ResyncReply.
    uint64_t bulk_tuples = 0;
    uint64_t delta_records = 0;
    uint64_t delta_rounds = 0;
    uint64_t wire_bits = 0;
    int attempts = 0;
    sim::SimTime retry_delay = 0;
  };

  void PumpResyncBulk(ResyncSource& source);
  void SendResyncBatch(ResyncSource& source, const exec::TupleBatch& batch);
  /// Ships the next committed-WAL round (or finishes the phase when the
  /// log is drained); the cutover phase always ships exactly one final
  /// round so the target completes even if nothing changed.
  void SendNextResyncDelta(ResyncSource& source);
  void HandleResyncPump(const pool::Mail& mail);
  /// Answers the GDH (cached) and discards the source state.
  void FinishResyncSource(uint64_t token, Status status);

  Config config_;
  // Process-local state below is wrapped in the ownership checker: only
  // this process's handlers (or control-plane code between events) may
  // touch it; see pool/owned.h.
  pool::OwnedPtr<exec::Ofm> ofm_;

  // Receiver-side dedup: replies already sent, keyed by (sender,
  // request_id). Entries are evicted only once they age past the dedup
  // retention horizon — an eviction inside the sender's retry window
  // would let a retransmission re-execute a non-idempotent write. Plan
  // executions are idempotent reads and are NOT cached (their replies
  // carry result tuples; a duplicate simply re-executes), so every cached
  // entry is control-sized and the time-based retention stays cheap.
  struct CachedReply {
    std::string kind;
    std::any body;
    int64_t size_bits = 0;
  };
  pool::Owned<std::map<std::pair<pool::ProcessId, uint64_t>, CachedReply>>
      replies_;
  std::deque<std::pair<sim::SimTime, std::pair<pool::ProcessId, uint64_t>>>
      reply_order_;
  uint64_t dup_requests_ = 0;

  // Data-plane mail held back while in-doubt transactions are unresolved.
  pool::Owned<std::vector<pool::Mail>> stalled_;
  uint64_t next_request_id_ = 1;

  // Terminated transactions (evicted past the same retention horizon):
  // late writes for these are refused instead of re-opening the
  // transaction.
  pool::Owned<std::set<exec::TxnId>> finished_;
  std::deque<std::pair<sim::SimTime, exec::TxnId>> finished_order_;
  // Transactions this process incarnation received writes for (erased at
  // commit/abort). A prepare for a transaction absent from this set AND
  // not in doubt means a crash replacement lost its writes: vote no. A
  // no-op write (zero rows matched) still registers here, so it votes yes.
  pool::Owned<std::set<exec::TxnId>> seen_txns_;

  // Producer-side shuffle state. `active_shuffles_` maps the coordinator's
  // (sender, request_id) onto the running shuffle's token so a
  // retransmitted shuffle plan that races its own in-flight execution is
  // ignored instead of double-streaming.
  pool::Owned<std::map<uint64_t, ShuffleState>> shuffles_;
  pool::Owned<std::map<std::pair<pool::ProcessId, uint64_t>, uint64_t>>
      active_shuffles_;
  uint64_t next_shuffle_token_ = 1;

  // Resync source sessions by token, with the same racing-duplicate guard
  // as shuffles. The committed-WAL cursor per resync id outlives the phase
  // A session (the cutover request resumes from it); while any cursor is
  // outstanding, checkpoints are acknowledged but deferred so the WAL is
  // not truncated under the cursor.
  pool::Owned<std::map<uint64_t, ResyncSource>> resync_sources_;
  pool::Owned<std::map<std::pair<pool::ProcessId, uint64_t>, uint64_t>>
      active_resync_requests_;
  pool::Owned<std::map<uint64_t, size_t>> resync_cursors_;

  // Resync target state (resync-mode processes only): the inbound bulk
  // channel, the adopted source session token and the stop-and-wait delta
  // cursor.
  pool::Owned<exec::InboundChannel> resync_in_;
  uint64_t resync_token_ = 0;
  uint64_t resync_delta_applied_ = 0;
  bool resync_finished_ = false;

  // Cached registry counters (null when no registry was configured).
  obs::Counter* m_tuples_scanned_ = nullptr;
  obs::Counter* m_index_selections_ = nullptr;
  obs::Counter* m_full_scans_ = nullptr;
  obs::Counter* m_plans_executed_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_aborts_ = nullptr;
  obs::Counter* m_wal_records_ = nullptr;
  obs::Counter* m_redo_applied_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  obs::Counter* m_dup_requests_ = nullptr;
  // Exchange-producer metrics, registered lazily on the first shuffle so
  // fragments that never shuffle keep their metric dumps unchanged.
  obs::Counter* m_batches_sent_ = nullptr;
  obs::Counter* m_exchange_bytes_ = nullptr;
  obs::Counter* m_exchange_stalls_ = nullptr;
  obs::Counter* m_wire_bits_ = nullptr;  // Modelled bits put on the wire.
  obs::Counter* m_batch_retransmits_ = nullptr;  // Lazy: fault paths only.
  uint64_t wal_synced_ = 0;
  uint64_t redo_synced_ = 0;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_OFM_PROCESS_H_
