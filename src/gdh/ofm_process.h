#ifndef PRISMA_GDH_OFM_PROCESS_H_
#define PRISMA_GDH_OFM_PROCESS_H_

#include <memory>
#include <string>

#include "exec/ofm.h"
#include "gdh/data_dictionary.h"
#include "gdh/messages.h"
#include "gdh/pe_registry.h"
#include "obs/metrics.h"
#include "pool/runtime.h"

namespace prisma::gdh {

/// POOL-X process hosting one One-Fragment Manager on its PE. Handles
/// plan execution, write, 2PC and index requests from the GDH and query
/// coordinators, charging all work to its PE.
///
/// On start it recovers from its PE's stable store when `recover` is set
/// (crash replacement) and asks the GDH to decide any in-doubt prepared
/// transactions.
class OfmProcess : public pool::Process {
 public:
  struct Config {
    std::string fragment_name;
    Schema schema;
    exec::Ofm::Options ofm;
    /// Run restart recovery in OnStart (crash replacement).
    bool recover = false;
    /// Coordinator to consult for in-doubt transactions.
    pool::ProcessId gdh = pool::kNoProcess;
    /// Directory of co-located fragments (may be null); this OFM
    /// registers itself and resolves co-located scans through it.
    PeLocalRegistry* registry = nullptr;
    /// Secondary indexes to create at start: (name, columns, ordered).
    std::vector<IndexInfo> indexes;
    /// Per-fragment counters land here when set (ofm.* metric family).
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit OfmProcess(Config config);
  ~OfmProcess() override;

  void OnStart() override;
  void OnMail(const pool::Mail& mail) override;

  exec::Ofm& ofm() { return *ofm_; }

 private:
  void HandleExecPlan(const pool::Mail& mail);
  void HandleWrite(const pool::Mail& mail);
  void HandleTxnControl(const pool::Mail& mail);
  void HandleDecisionReply(const pool::Mail& mail);

  /// Pushes the WAL / redo deltas accumulated since the last sync into the
  /// registry counters. Cheap; called at the end of mutating handlers.
  void SyncDurabilityMetrics();

  Config config_;
  std::unique_ptr<exec::Ofm> ofm_;

  // Cached registry counters (null when no registry was configured).
  obs::Counter* m_tuples_scanned_ = nullptr;
  obs::Counter* m_index_selections_ = nullptr;
  obs::Counter* m_full_scans_ = nullptr;
  obs::Counter* m_plans_executed_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_aborts_ = nullptr;
  obs::Counter* m_wal_records_ = nullptr;
  obs::Counter* m_redo_applied_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  uint64_t wal_synced_ = 0;
  uint64_t redo_synced_ = 0;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_OFM_PROCESS_H_
