#include "gdh/fragmentation.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::gdh {

Fragmenter::Fragmenter(FragmentationSpec spec) : spec_(std::move(spec)) {
  PRISMA_CHECK(spec_.num_fragments >= 1);
  if (spec_.strategy == sql::FragmentStrategy::kRange &&
      spec_.boundaries.empty() && spec_.num_fragments > 1) {
    // Equal-width INT boundaries over the default domain.
    const int64_t width = kDefaultRangeDomain / spec_.num_fragments;
    for (int i = 1; i < spec_.num_fragments; ++i) {
      spec_.boundaries.push_back(Value::Int(i * width));
    }
  }
}

int Fragmenter::HashFragment(const Value& key) const {
  return static_cast<int>(key.Hash() % static_cast<uint64_t>(spec_.num_fragments));
}

int Fragmenter::RangeFragment(const Value& key) const {
  for (size_t i = 0; i < spec_.boundaries.size(); ++i) {
    if (key.Compare(spec_.boundaries[i]) < 0) return static_cast<int>(i);
  }
  return static_cast<int>(spec_.boundaries.size());
}

StatusOr<int> Fragmenter::FragmentOf(const Tuple& tuple) {
  switch (spec_.strategy) {
    case sql::FragmentStrategy::kNone:
      return 0;
    case sql::FragmentStrategy::kRoundRobin: {
      const int f = rr_cursor_;
      rr_cursor_ = (rr_cursor_ + 1) % spec_.num_fragments;
      return f;
    }
    case sql::FragmentStrategy::kHash: {
      if (spec_.column >= tuple.size()) {
        return InternalError("fragmentation column out of range");
      }
      const Value& key = tuple.at(spec_.column);
      if (key.is_null()) return 0;
      return HashFragment(key);
    }
    case sql::FragmentStrategy::kRange: {
      if (spec_.column >= tuple.size()) {
        return InternalError("fragmentation column out of range");
      }
      const Value& key = tuple.at(spec_.column);
      if (key.is_null()) return 0;
      return RangeFragment(key);
    }
  }
  return InternalError("corrupt fragmentation strategy");
}

std::vector<int> Fragmenter::FragmentsForKey(const Value& key) const {
  if (!key.is_null()) {
    if (spec_.strategy == sql::FragmentStrategy::kHash) {
      return {HashFragment(key)};
    }
    if (spec_.strategy == sql::FragmentStrategy::kRange) {
      return {RangeFragment(key)};
    }
  }
  std::vector<int> all(spec_.num_fragments);
  for (int i = 0; i < spec_.num_fragments; ++i) all[i] = i;
  return all;
}

std::string FragmentName(const std::string& table, int index) {
  return StrFormat("%s#%d", table.c_str(), index);
}

}  // namespace prisma::gdh
