#include "gdh/distributed_plan.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::gdh {

using algebra::AggFunc;
using algebra::AggregatePlan;
using algebra::AggSpec;
using algebra::DistinctPlan;
using algebra::Expr;
using algebra::Plan;
using algebra::PlanKind;
using algebra::ProjectPlan;
using algebra::ScanPlan;

std::string PartName(size_t index) {
  return StrFormat("\x02part:%zu", index);
}

std::string OlapInputName() { return "\x02olap:in"; }

const char* ExchangeStrategyName(ExchangeStrategy strategy) {
  switch (strategy) {
    case ExchangeStrategy::kShuffleBoth:
      return "shuffle-both";
    case ExchangeStrategy::kShuffleLeft:
      return "shuffle-left";
    case ExchangeStrategy::kShuffleRight:
      return "shuffle-right";
    case ExchangeStrategy::kBroadcastLeft:
      return "broadcast-left";
    case ExchangeStrategy::kBroadcastRight:
      return "broadcast-right";
  }
  return "?";
}

bool ExchangeSideMoves(ExchangeStrategy strategy, int side) {
  switch (strategy) {
    case ExchangeStrategy::kShuffleBoth:
      return true;
    case ExchangeStrategy::kShuffleLeft:
    case ExchangeStrategy::kBroadcastLeft:
      return side == 0;
    case ExchangeStrategy::kShuffleRight:
    case ExchangeStrategy::kBroadcastRight:
      return side == 1;
  }
  return false;
}

std::unique_ptr<Plan> CloneWithScanRenamed(const Plan& plan,
                                           const std::string& from,
                                           const std::string& to) {
  if (plan.kind() == PlanKind::kScan) {
    const auto& scan = static_cast<const ScanPlan&>(plan);
    return ScanPlan::Create(scan.table() == from ? to : scan.table(),
                            scan.schema());
  }
  std::unique_ptr<Plan> clone = plan.Clone();
  for (size_t i = 0; i < plan.num_children(); ++i) {
    clone->SetChild(i, CloneWithScanRenamed(*plan.child(i), from, to));
  }
  return clone;
}

void CollectScanTables(const Plan& plan, std::vector<std::string>* tables) {
  if (plan.kind() == PlanKind::kScan) {
    tables->push_back(static_cast<const ScanPlan&>(plan).table());
    return;
  }
  for (size_t i = 0; i < plan.num_children(); ++i) {
    CollectScanTables(*plan.child(i), tables);
  }
}

namespace {

/// Collects Select nodes whose predicates are bound to the base scan
/// schema (i.e. only Selects between them and the Scan). Returns true if
/// `plan`'s own output schema is still the scan schema.
bool CollectBasePredicates(const Plan& plan,
                           std::vector<const algebra::SelectPlan*>* out) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return true;
    case PlanKind::kSelect: {
      const bool base = CollectBasePredicates(*plan.child(), out);
      if (base) out->push_back(static_cast<const algebra::SelectPlan*>(&plan));
      return base;
    }
    case PlanKind::kProject:
    case PlanKind::kDistinct:
      // Selects further down still qualify; anything above here does not.
      CollectBasePredicates(*plan.child(), out);
      return false;
    default:
      return false;
  }
}

}  // namespace

std::vector<int> PruneFragmentsForPart(const TableInfo& info,
                                       const Plan& part_plan) {
  std::vector<int> all(info.fragments.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  const auto strategy = info.fragmentation.strategy;
  if (strategy != sql::FragmentStrategy::kHash &&
      strategy != sql::FragmentStrategy::kRange) {
    return all;
  }
  std::vector<const algebra::SelectPlan*> selects;
  CollectBasePredicates(part_plan, &selects);
  for (const algebra::SelectPlan* select : selects) {
    for (const auto& conjunct : algebra::SplitConjuncts(select->predicate())) {
      if (conjunct->kind() != algebra::ExprKind::kBinary ||
          conjunct->binary_op() != algebra::BinaryOp::kEq) {
        continue;
      }
      const algebra::Expr* l = conjunct->left();
      const algebra::Expr* r = conjunct->right();
      if (l->kind() == algebra::ExprKind::kLiteral) std::swap(l, r);
      if (l->kind() == algebra::ExprKind::kColumnRef && l->bound() &&
          l->column_index() == info.fragmentation.column &&
          r->kind() == algebra::ExprKind::kLiteral) {
        return info.fragmenter->FragmentsForKey(r->literal());
      }
    }
  }
  return all;
}

namespace {

/// True if `plan` is Select*/Project*/Distinct* over one dictionary-known
/// base-table Scan. Sets the table name and whether a Distinct occurs.
bool IsLocalCandidate(const Plan& plan, const DataDictionary& dictionary,
                      std::string* table, bool* has_distinct) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanPlan&>(plan);
      if (!dictionary.HasTable(scan.table())) return false;
      *table = scan.table();
      return true;
    }
    case PlanKind::kSelect:
    case PlanKind::kProject:
      return IsLocalCandidate(*plan.child(), dictionary, table, has_distinct);
    case PlanKind::kDistinct:
      *has_distinct = true;
      return IsLocalCandidate(*plan.child(), dictionary, table, has_distinct);
    default:
      return false;
  }
}

/// Registers `subtree` as a local part and returns the global-side
/// replacement scan (re-Distinct-ed when the part deduplicates locally,
/// since fragments may still share duplicates across the machine).
std::unique_ptr<Plan> MakePart(std::unique_ptr<Plan> subtree,
                               const std::string& table, bool has_distinct,
                               DistributedPlan* out,
                               const std::string& second_table = "") {
  const size_t index = out->parts.size();
  const Schema schema = subtree->schema();
  out->parts.push_back(
      LocalPart{table, second_table, std::move(subtree), nullptr, nullptr});
  std::unique_ptr<Plan> scan = ScanPlan::Create(PartName(index), schema);
  if (has_distinct) scan = DistinctPlan::Create(std::move(scan));
  return scan;
}

/// Detects Join(candidateA, candidateB) where A and B are hash-fragmented
/// on the join key with equal fragment counts and aligned placement. Such
/// a join decomposes exactly into per-fragment-pair joins executed where
/// the two fragments live. Returns the replacement part scan or null.
std::unique_ptr<Plan> TryColocatedJoin(std::unique_ptr<Plan>& plan,
                                       const DataDictionary& dictionary,
                                       DistributedPlan* out) {
  auto& join = static_cast<algebra::JoinPlan&>(*plan);
  // Both children must keep the base scan schema (Selects only), so join
  // key indexes map directly onto base columns.
  std::vector<const algebra::SelectPlan*> ignored;
  if (!CollectBasePredicates(*plan.get()->child(0), &ignored) ||
      !CollectBasePredicates(*plan.get()->child(1), &ignored)) {
    return nullptr;
  }
  std::string table_a;
  std::string table_b;
  bool distinct_a = false;
  bool distinct_b = false;
  if (!IsLocalCandidate(*plan->child(0), dictionary, &table_a, &distinct_a) ||
      !IsLocalCandidate(*plan->child(1), dictionary, &table_b, &distinct_b) ||
      table_a == table_b) {
    return nullptr;
  }
  auto info_a = dictionary.GetTable(table_a);
  auto info_b = dictionary.GetTable(table_b);
  if (!info_a.ok() || !info_b.ok()) return nullptr;
  const TableInfo& a = **info_a;
  const TableInfo& b = **info_b;
  if (a.fragmentation.strategy != sql::FragmentStrategy::kHash ||
      b.fragmentation.strategy != sql::FragmentStrategy::kHash ||
      a.fragmentation.num_fragments != b.fragmentation.num_fragments) {
    return nullptr;
  }
  // The join key must be the fragmentation key on both sides.
  bool keyed = false;
  for (const auto& [l, r] : join.EquiKeys()) {
    if (l == a.fragmentation.column && r == b.fragmentation.column) {
      keyed = true;
      break;
    }
  }
  if (!keyed) return nullptr;
  // Aligned placement: fragment i of both tables on one PE.
  for (size_t i = 0; i < a.fragments.size(); ++i) {
    if (a.fragments[i].pe != b.fragments[i].pe) return nullptr;
  }
  ++out->colocated_joins;
  return MakePart(std::move(plan), table_a, false, out, table_b);
}

/// Lowers Join(candidateA, candidateB) — any equi-join of two distinct
/// dictionary tables — to a streaming exchange part (DESIGN.md §10). The
/// strategy is chosen by modeled shipped tuples from dictionary
/// cardinalities:
///   shuffle-one   moves only the non-aligned side (|moving| tuples);
///                 eligible when the stationary side keeps its base scan
///                 schema and is hash-fragmented on its join-key column,
///                 so hash routing lands movers exactly on their partners;
///   broadcast     replicates one side to every fragment of the other
///                 (|moving| x fragments tuples), eligible always;
///   shuffle-both  hash-co-partitions both sides (|left| + |right|),
///                 eligible always.
/// Returns the replacement part scan, or null when not applicable.
StatusOr<std::unique_ptr<Plan>> TryExchangeJoin(std::unique_ptr<Plan>& plan,
                                                const DataDictionary& dictionary,
                                                DistributedPlan* out) {
  auto& join = static_cast<algebra::JoinPlan&>(*plan);
  std::string table_l;
  std::string table_r;
  bool distinct_l = false;
  bool distinct_r = false;
  if (!IsLocalCandidate(*plan->child(0), dictionary, &table_l, &distinct_l) ||
      !IsLocalCandidate(*plan->child(1), dictionary, &table_r, &distinct_r) ||
      table_l == table_r || distinct_l || distinct_r) {
    return std::unique_ptr<Plan>();
  }
  const std::vector<std::pair<size_t, size_t>> keys = join.EquiKeys();
  if (keys.empty()) return std::unique_ptr<Plan>();
  auto info_l = dictionary.GetTable(table_l);
  auto info_r = dictionary.GetTable(table_r);
  if (!info_l.ok() || !info_r.ok()) return std::unique_ptr<Plan>();
  const TableInfo& l = **info_l;
  const TableInfo& r = **info_r;
  if (l.fragments.empty() || r.fragments.empty()) {
    return std::unique_ptr<Plan>();
  }

  // Shuffle-one alignment check: see doc comment above.
  std::vector<const algebra::SelectPlan*> ignored;
  const bool base_l = CollectBasePredicates(*plan->child(0), &ignored);
  const bool base_r = CollectBasePredicates(*plan->child(1), &ignored);
  auto hash_keyed = [&keys](const TableInfo& t, bool left_side,
                            size_t* route) {
    if (t.fragmentation.strategy != sql::FragmentStrategy::kHash) {
      return false;
    }
    for (size_t k = 0; k < keys.size(); ++k) {
      const size_t col = left_side ? keys[k].first : keys[k].second;
      if (col == t.fragmentation.column) {
        *route = k;
        return true;
      }
    }
    return false;
  };

  const double rows_l = l.TotalRows();
  const double rows_r = r.TotalRows();
  struct Candidate {
    ExchangeStrategy strategy;
    double cost;
    size_t route;
  };
  // Listed in tie-break preference order; the scan below keeps the first
  // of equal cost.
  std::vector<Candidate> candidates;
  size_t route = 0;
  if (base_l && hash_keyed(l, /*left_side=*/true, &route)) {
    candidates.push_back({ExchangeStrategy::kShuffleRight, rows_r, route});
  }
  if (base_r && hash_keyed(r, /*left_side=*/false, &route)) {
    candidates.push_back({ExchangeStrategy::kShuffleLeft, rows_l, route});
  }
  candidates.push_back({ExchangeStrategy::kBroadcastLeft,
                        rows_l * static_cast<double>(r.fragments.size()), 0});
  candidates.push_back({ExchangeStrategy::kBroadcastRight,
                        rows_r * static_cast<double>(l.fragments.size()), 0});
  candidates.push_back({ExchangeStrategy::kShuffleBoth, rows_l + rows_r, 0});
  const Candidate* best = &candidates[0];
  for (const Candidate& c : candidates) {
    if (c.cost < best->cost) best = &c;
  }

  auto spec = std::make_shared<ExchangeJoinSpec>();
  spec->strategy = best->strategy;
  spec->left_table = table_l;
  spec->right_table = table_r;
  spec->keys = keys;
  spec->route_key = best->route;
  spec->schema = join.schema();
  spec->moved_rows = best->cost;
  if (join.predicate() != nullptr) {
    spec->predicate =
        std::shared_ptr<const Expr>(join.predicate()->Clone());
  }
  switch (best->strategy) {
    case ExchangeStrategy::kShuffleRight:
    case ExchangeStrategy::kBroadcastRight:
      spec->anchor_table = table_l;
      spec->build_side = 1;
      break;
    case ExchangeStrategy::kShuffleLeft:
    case ExchangeStrategy::kBroadcastLeft:
      spec->anchor_table = table_r;
      spec->build_side = 0;
      break;
    case ExchangeStrategy::kShuffleBoth:
      // Anchor where there is the most parallelism; build the smaller side.
      spec->anchor_table =
          l.fragments.size() >= r.fragments.size() ? table_l : table_r;
      spec->build_side = rows_l <= rows_r ? 0 : 1;
      break;
  }
  spec->left_plan = std::shared_ptr<const Plan>(plan->child(0)->Clone());
  spec->right_plan = std::shared_ptr<const Plan>(plan->child(1)->Clone());

  // EXPLAIN rendering: the join with Exchange nodes marking moving sides.
  const bool broadcast =
      best->strategy == ExchangeStrategy::kBroadcastLeft ||
      best->strategy == ExchangeStrategy::kBroadcastRight;
  std::unique_ptr<Plan> shown_l = plan->TakeChild(0);
  std::unique_ptr<Plan> shown_r = plan->TakeChild(1);
  if (ExchangeSideMoves(best->strategy, 0)) {
    shown_l = algebra::ExchangePlan::Create(
        std::move(shown_l),
        broadcast ? algebra::ExchangePlan::Mode::kBroadcast
                  : algebra::ExchangePlan::Mode::kHashPartition,
        broadcast ? std::vector<size_t>{}
                  : std::vector<size_t>{keys[best->route].first});
  }
  if (ExchangeSideMoves(best->strategy, 1)) {
    shown_r = algebra::ExchangePlan::Create(
        std::move(shown_r),
        broadcast ? algebra::ExchangePlan::Mode::kBroadcast
                  : algebra::ExchangePlan::Mode::kHashPartition,
        broadcast ? std::vector<size_t>{}
                  : std::vector<size_t>{keys[best->route].second});
  }
  ASSIGN_OR_RETURN(
      std::unique_ptr<algebra::JoinPlan> shown,
      algebra::JoinPlan::Create(std::move(shown_l), std::move(shown_r),
                                join.predicate() != nullptr
                                    ? join.predicate()->Clone()
                                    : nullptr));

  const size_t index = out->parts.size();
  const Schema schema = shown->schema();
  LocalPart part;
  part.table = spec->anchor_table;
  part.plan = std::shared_ptr<const Plan>(std::move(shown));
  part.exchange = std::move(spec);
  out->parts.push_back(std::move(part));
  ++out->exchange_joins;
  return std::unique_ptr<Plan>(ScanPlan::Create(PartName(index), schema));
}

// For each original aggregate: indexes of its partial column(s) within
// the partial-agg output (offset by the group count).
struct CombineInfo {
  AggFunc func;
  size_t first;   // Partial column (sum for AVG).
  size_t second;  // AVG only: partial count column.
};

struct PartialAggregate {
  std::unique_ptr<Plan> plan;  // Partial aggregate over the given child.
  std::vector<CombineInfo> combine;
};

/// Builds the partial (per-fragment / per-producer) half of the
/// distributive aggregate decomposition over `child`: group columns
/// g0..gk-1 followed by partial state columns p0.. (AVG splits into
/// SUM(x*1.0) + COUNT(x); the combine step re-folds it).
StatusOr<PartialAggregate> BuildPartialAggregate(const AggregatePlan& agg,
                                                 std::unique_ptr<Plan> child) {
  std::vector<std::unique_ptr<Expr>> partial_groups;
  std::vector<std::string> partial_group_names;
  for (size_t i = 0; i < agg.group_by().size(); ++i) {
    partial_groups.push_back(agg.group_by()[i]->Clone());
    partial_group_names.push_back(StrFormat("g%zu", i));
  }
  std::vector<AggSpec> partial_aggs;
  std::vector<CombineInfo> combine;
  for (const AggSpec& spec : agg.aggs()) {
    CombineInfo info{spec.func, partial_aggs.size(), 0};
    switch (spec.func) {
      case AggFunc::kCount:
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        partial_aggs.push_back(
            AggSpec{spec.func, spec.arg ? spec.arg->Clone() : nullptr,
                    StrFormat("p%zu", partial_aggs.size())});
        break;
      case AggFunc::kAvg: {
        // AVG = SUM(x * 1.0) / COUNT(x), combined globally.
        auto as_double = Expr::Binary(algebra::BinaryOp::kMul,
                                      spec.arg->Clone(),
                                      Expr::Literal(Value::Double(1.0)));
        partial_aggs.push_back(AggSpec{AggFunc::kSum, std::move(as_double),
                                       StrFormat("p%zu", partial_aggs.size())});
        info.second = partial_aggs.size();
        partial_aggs.push_back(AggSpec{AggFunc::kCount, spec.arg->Clone(),
                                       StrFormat("p%zu", partial_aggs.size())});
        break;
      }
    }
    combine.push_back(info);
  }
  PartialAggregate out;
  out.combine = std::move(combine);
  ASSIGN_OR_RETURN(auto partial_plan,
                   AggregatePlan::Create(std::move(child),
                                         std::move(partial_groups),
                                         partial_group_names,
                                         std::move(partial_aggs)));
  out.plan = std::move(partial_plan);
  return out;
}

/// Builds the combining half over `child` (which produces partial-schema
/// rows): a second aggregation merging partial states per group, then a
/// final projection restoring the original output (folding AVG pairs).
StatusOr<std::unique_ptr<Plan>> BuildCombineAggregate(
    const AggregatePlan& agg, const Schema& partial_schema,
    const std::vector<CombineInfo>& combine, std::unique_ptr<Plan> child) {
  const size_t group_count = agg.group_by().size();
  std::vector<std::unique_ptr<Expr>> global_groups;
  std::vector<std::string> global_group_names;
  for (size_t i = 0; i < group_count; ++i) {
    global_groups.push_back(
        Expr::ColumnIndex(i, partial_schema.column(i).type));
    global_group_names.push_back(agg.schema().column(i).name);
  }
  std::vector<AggSpec> global_aggs;
  for (const CombineInfo& info : combine) {
    auto col = [&](size_t partial_index) {
      const size_t c = group_count + partial_index;
      return Expr::ColumnIndex(c, partial_schema.column(c).type);
    };
    switch (info.func) {
      case AggFunc::kCount:
      case AggFunc::kSum:
        global_aggs.push_back(AggSpec{AggFunc::kSum, col(info.first),
                                      StrFormat("c%zu", global_aggs.size())});
        break;
      case AggFunc::kMin:
        global_aggs.push_back(AggSpec{AggFunc::kMin, col(info.first),
                                      StrFormat("c%zu", global_aggs.size())});
        break;
      case AggFunc::kMax:
        global_aggs.push_back(AggSpec{AggFunc::kMax, col(info.first),
                                      StrFormat("c%zu", global_aggs.size())});
        break;
      case AggFunc::kAvg:
        global_aggs.push_back(AggSpec{AggFunc::kSum, col(info.first),
                                      StrFormat("c%zu", global_aggs.size())});
        global_aggs.push_back(AggSpec{AggFunc::kSum, col(info.second),
                                      StrFormat("c%zu", global_aggs.size())});
        break;
    }
  }
  ASSIGN_OR_RETURN(std::unique_ptr<Plan> combined,
                   AggregatePlan::Create(std::move(child),
                                         std::move(global_groups),
                                         global_group_names,
                                         std::move(global_aggs)));

  const Schema& combined_schema = combined->schema();
  std::vector<std::unique_ptr<Expr>> proj;
  std::vector<std::string> names;
  for (size_t i = 0; i < group_count; ++i) {
    proj.push_back(Expr::ColumnIndex(i, combined_schema.column(i).type));
    names.push_back(agg.schema().column(i).name);
  }
  size_t combined_col = group_count;
  for (size_t i = 0; i < combine.size(); ++i) {
    if (combine[i].func == AggFunc::kAvg) {
      auto sum = Expr::ColumnIndex(combined_col,
                                   combined_schema.column(combined_col).type);
      auto count = Expr::ColumnIndex(
          combined_col + 1, combined_schema.column(combined_col + 1).type);
      proj.push_back(Expr::Binary(algebra::BinaryOp::kDiv, std::move(sum),
                                  std::move(count)));
      combined_col += 2;
    } else {
      proj.push_back(Expr::ColumnIndex(
          combined_col, combined_schema.column(combined_col).type));
      combined_col += 1;
    }
    names.push_back(agg.schema().column(group_count + i).name);
  }
  ASSIGN_OR_RETURN(std::unique_ptr<ProjectPlan> final_proj,
                   ProjectPlan::Create(std::move(combined), std::move(proj),
                                       std::move(names)));
  return std::unique_ptr<Plan>(std::move(final_proj));
}

/// Decomposes Aggregate(local-candidate) into per-fragment partials plus
/// a global combine + final projection. Returns null when the shape does
/// not apply (caller falls back to gathering raw rows).
StatusOr<std::unique_ptr<Plan>> TryAggregatePushdown(
    std::unique_ptr<Plan>& plan, const DataDictionary& dictionary,
    DistributedPlan* out) {
  auto& agg = static_cast<AggregatePlan&>(*plan);
  std::string table;
  bool has_distinct = false;
  if (!IsLocalCandidate(*plan->child(), dictionary, &table, &has_distinct) ||
      has_distinct) {
    return std::unique_ptr<Plan>();  // Distinct under aggregate: bail out.
  }
  ASSIGN_OR_RETURN(PartialAggregate partial,
                   BuildPartialAggregate(agg, plan->TakeChild(0)));
  const Schema partial_schema = partial.plan->schema();
  std::unique_ptr<Plan> gathered =
      MakePart(std::move(partial.plan), table, false, out);
  ASSIGN_OR_RETURN(std::unique_ptr<Plan> final_plan,
                   BuildCombineAggregate(agg, partial_schema, partial.combine,
                                         std::move(gathered)));
  out->pushed_aggregate = true;
  return final_plan;
}

/// Deep-copies `plan`, substituting `replacement` for the (single) Scan
/// of `name` — used to render OLAP merge plans with an Exchange-marked
/// producer in place of their runtime input scan.
std::unique_ptr<Plan> ReplaceScan(const Plan& plan, const std::string& name,
                                  std::unique_ptr<Plan>& replacement) {
  if (plan.kind() == PlanKind::kScan &&
      static_cast<const ScanPlan&>(plan).table() == name) {
    PRISMA_CHECK(replacement != nullptr);
    return std::move(replacement);
  }
  std::unique_ptr<Plan> clone = plan.Clone();
  for (size_t i = 0; i < plan.num_children(); ++i) {
    clone->SetChild(i, ReplaceScan(*plan.child(i), name, replacement));
  }
  return clone;
}

/// Registers a multi-stage OLAP part and returns its global replacement
/// scan. The display plan is the merge plan with its input scan replaced
/// by an Exchange over the producer.
std::unique_ptr<Plan> MakeOlapPart(std::shared_ptr<OlapSpec> spec,
                                   std::unique_ptr<Plan> producer,
                                   std::unique_ptr<Plan> merge,
                                   algebra::ExchangePlan::Mode mode,
                                   std::vector<size_t> exchange_keys,
                                   DistributedPlan* out) {
  spec->schema = merge->schema();
  std::unique_ptr<Plan> marked = algebra::ExchangePlan::Create(
      producer->Clone(), mode, std::move(exchange_keys));
  std::unique_ptr<Plan> display =
      ReplaceScan(*merge, OlapInputName(), marked);
  spec->producer_plan = std::shared_ptr<const Plan>(std::move(producer));
  spec->merge_plan = std::shared_ptr<const Plan>(std::move(merge));
  const size_t index = out->parts.size();
  const Schema schema = spec->schema;
  LocalPart part;
  part.table = spec->table;
  part.plan = std::shared_ptr<const Plan>(std::move(display));
  part.olap = std::move(spec);
  out->parts.push_back(std::move(part));
  ++out->olap_parts;
  return ScanPlan::Create(PartName(index), schema);
}

/// Lowers Aggregate(local-candidate) with a non-empty GROUP BY onto the
/// exchange layer (DESIGN.md §14.2): producers pre-aggregate per fragment
/// (or ship base rows, when the cost model expects nearly one group per
/// row) and shuffle by group key into one merge consumer per fragment;
/// consumers combine partial states and reply with final disjoint group
/// slices. Scalar aggregates (no GROUP BY) keep the gather-based
/// pushdown: one partial row per fragment is already optimal. Returns the
/// replacement part scan or null when the shape does not apply.
StatusOr<std::unique_ptr<Plan>> TryOlapGroupBy(std::unique_ptr<Plan>& plan,
                                               const DataDictionary& dictionary,
                                               const OptimizerRules& rules,
                                               DistributedPlan* out) {
  auto& agg = static_cast<AggregatePlan&>(*plan);
  if (agg.group_by().empty()) return std::unique_ptr<Plan>();
  std::string table;
  bool has_distinct = false;
  if (!IsLocalCandidate(*plan->child(), dictionary, &table, &has_distinct) ||
      has_distinct) {
    return std::unique_ptr<Plan>();
  }
  auto info = dictionary.GetTable(table);
  if (!info.ok() || (*info)->fragments.size() < 2) {
    // One fragment has nothing to merge across; the pushdown path ships
    // one partial slice and finishes at the coordinator.
    return std::unique_ptr<Plan>();
  }
  const double fragments = static_cast<double>((*info)->fragments.size());
  const double rows =
      std::max(1.0, static_cast<double>((*info)->TotalRows()));
  // No per-column NDV statistics exist in the dictionary; sqrt(rows) is
  // the classic distinct-count guess, overridable per statement via
  // rules.olap_agg_strategy.
  const double est_groups = std::sqrt(rows);

  bool pre_aggregate = true;
  switch (rules.olap_agg_strategy) {
    case OptimizerRules::OlapAggStrategy::kPreAggregate:
      pre_aggregate = true;
      break;
    case OptimizerRules::OlapAggStrategy::kDirect:
      pre_aggregate = false;
      break;
    case OptimizerRules::OlapAggStrategy::kAuto:
      // Pre-aggregation ships <= fragments * groups partial rows; direct
      // ships every base row once.
      pre_aggregate = fragments * est_groups < rows;
      break;
  }
  // Direct mode routes base rows by the first group column, so it needs
  // that key to be a plain column of the producer output.
  const Expr& g0 = *agg.group_by()[0];
  const bool g0_is_column =
      g0.kind() == algebra::ExprKind::kColumnRef && g0.bound();
  if (!pre_aggregate && !g0_is_column) pre_aggregate = true;

  auto spec = std::make_shared<OlapSpec>();
  spec->kind = OlapSpec::Kind::kGroupBy;
  spec->table = table;
  spec->pre_aggregate = pre_aggregate;
  spec->est_groups = est_groups;

  std::unique_ptr<Plan> producer;
  std::unique_ptr<Plan> merge;
  if (pre_aggregate) {
    ASSIGN_OR_RETURN(PartialAggregate partial,
                     BuildPartialAggregate(agg, plan->TakeChild(0)));
    const Schema partial_schema = partial.plan->schema();
    producer = std::move(partial.plan);
    spec->partition_column = 0;  // First group column of the partial rows.
    ASSIGN_OR_RETURN(
        merge, BuildCombineAggregate(
                   agg, partial_schema, partial.combine,
                   ScanPlan::Create(OlapInputName(), partial_schema)));
    out->pushed_aggregate = true;
  } else {
    producer = plan->TakeChild(0);
    spec->partition_column = g0.column_index();
    // The merge consumer runs the original aggregate over its slice of
    // base rows: same group key -> same consumer, so slices are disjoint
    // and complete.
    std::vector<std::unique_ptr<Expr>> groups;
    std::vector<std::string> group_names;
    for (size_t i = 0; i < agg.group_by().size(); ++i) {
      groups.push_back(agg.group_by()[i]->Clone());
      group_names.push_back(agg.schema().column(i).name);
    }
    std::vector<AggSpec> aggs;
    aggs.reserve(agg.aggs().size());
    for (const AggSpec& s : agg.aggs()) aggs.push_back(s.Clone());
    ASSIGN_OR_RETURN(
        auto merged,
        AggregatePlan::Create(
            ScanPlan::Create(OlapInputName(), producer->schema()),
            std::move(groups), group_names, std::move(aggs)));
    merge = std::move(merged);
  }
  std::vector<size_t> route = {spec->partition_column};
  return MakeOlapPart(std::move(spec), std::move(producer), std::move(merge),
                      algebra::ExchangePlan::Mode::kHashPartition,
                      std::move(route), out);
}

/// Lowers Sort(local-candidate) with plain-column keys onto the exchange
/// layer as a sample-based range-partitioned sort (DESIGN.md §14.3):
/// stage 1 samples per-fragment quantiles, stage 2 range-shuffles base
/// rows so consumer c receives exactly slice c of the global order, stage
/// 3 sorts each slice locally; the coordinator stitches slices in order.
/// Returns the replacement part scan or null when the shape does not
/// apply.
StatusOr<std::unique_ptr<Plan>> TryOlapSort(std::unique_ptr<Plan>& plan,
                                            const DataDictionary& dictionary,
                                            DistributedPlan* out) {
  auto& sort = static_cast<algebra::SortPlan&>(*plan);
  std::string table;
  bool has_distinct = false;
  if (!IsLocalCandidate(*plan->child(), dictionary, &table, &has_distinct) ||
      has_distinct) {
    // Distinct deduplicates per fragment only; a range shuffle would
    // reunite duplicates by key, but proving that for every key shape is
    // the global Distinct's job — keep it at the coordinator.
    return std::unique_ptr<Plan>();
  }
  auto info = dictionary.GetTable(table);
  if (!info.ok() || (*info)->fragments.size() < 2) {
    return std::unique_ptr<Plan>();
  }
  std::vector<size_t> sort_columns;
  std::vector<bool> sort_desc;
  for (const algebra::SortKey& key : sort.keys()) {
    if (key.expr->kind() != algebra::ExprKind::kColumnRef ||
        !key.expr->bound()) {
      return std::unique_ptr<Plan>();  // Computed keys: sort globally.
    }
    sort_columns.push_back(key.expr->column_index());
    sort_desc.push_back(key.descending);
  }
  if (sort_columns.empty()) return std::unique_ptr<Plan>();

  auto clone_keys = [&sort]() {
    std::vector<algebra::SortKey> keys;
    keys.reserve(sort.keys().size());
    for (const algebra::SortKey& key : sort.keys()) {
      keys.push_back(key.Clone());
    }
    return keys;
  };

  auto spec = std::make_shared<OlapSpec>();
  spec->kind = OlapSpec::Kind::kSort;
  spec->table = table;
  spec->sort_columns = sort_columns;
  spec->sort_desc = sort_desc;
  spec->ordered = true;

  std::unique_ptr<Plan> producer = plan->TakeChild(0);
  // Sampling stage: the locally *sorted* candidate, so the OFM's evenly
  // spaced thinning yields per-fragment quantiles.
  ASSIGN_OR_RETURN(auto sample,
                   algebra::SortPlan::Create(producer->Clone(), clone_keys()));
  spec->sample_plan = std::shared_ptr<const Plan>(std::move(sample));
  ASSIGN_OR_RETURN(
      auto merge,
      algebra::SortPlan::Create(
          ScanPlan::Create(OlapInputName(), producer->schema()),
          clone_keys()));
  return MakeOlapPart(std::move(spec), std::move(producer), std::move(merge),
                      algebra::ExchangePlan::Mode::kRange, sort_columns, out);
}

StatusOr<std::unique_ptr<Plan>> SplitNode(std::unique_ptr<Plan> plan,
                                          const DataDictionary& dictionary,
                                          const OptimizerRules& rules,
                                          DistributedPlan* out) {
  if (plan->kind() == PlanKind::kAggregate) {
    if (rules.distributed_olap) {
      ASSIGN_OR_RETURN(std::unique_ptr<Plan> lowered,
                       TryOlapGroupBy(plan, dictionary, rules, out));
      if (lowered != nullptr) return lowered;
    }
    if (rules.aggregate_pushdown) {
      ASSIGN_OR_RETURN(std::unique_ptr<Plan> pushed,
                       TryAggregatePushdown(plan, dictionary, out));
      if (pushed != nullptr) return pushed;
    }
  }
  if (plan->kind() == PlanKind::kSort && rules.distributed_olap) {
    ASSIGN_OR_RETURN(std::unique_ptr<Plan> lowered,
                     TryOlapSort(plan, dictionary, out));
    if (lowered != nullptr) return lowered;
  }
  if (plan->kind() == PlanKind::kJoin) {
    // Co-located beats exchange: it decomposes with zero shipped tuples.
    if (rules.colocated_joins) {
      std::unique_ptr<Plan> part = TryColocatedJoin(plan, dictionary, out);
      if (part != nullptr) return part;
    }
    if (rules.exchange_joins) {
      ASSIGN_OR_RETURN(std::unique_ptr<Plan> part,
                       TryExchangeJoin(plan, dictionary, out));
      if (part != nullptr) return part;
    }
  }
  std::string table;
  bool has_distinct = false;
  if (IsLocalCandidate(*plan, dictionary, &table, &has_distinct)) {
    return MakePart(std::move(plan), table, has_distinct, out);
  }
  for (size_t i = 0; i < plan->num_children(); ++i) {
    ASSIGN_OR_RETURN(auto child, SplitNode(plan->TakeChild(i), dictionary,
                                           rules, out));
    plan->SetChild(i, std::move(child));
  }
  return plan;
}

}  // namespace

StatusOr<DistributedPlan> SplitPlanForFragments(
    std::unique_ptr<Plan> plan, const DataDictionary& dictionary,
    bool colocated_joins, bool exchange_joins) {
  OptimizerRules rules;
  rules.colocated_joins = colocated_joins;
  rules.exchange_joins = exchange_joins;
  rules.distributed_olap = false;
  return SplitPlanForFragments(std::move(plan), dictionary, rules);
}

StatusOr<DistributedPlan> SplitPlanForFragments(
    std::unique_ptr<Plan> plan, const DataDictionary& dictionary,
    const OptimizerRules& rules) {
  DistributedPlan out;
  ASSIGN_OR_RETURN(out.global,
                   SplitNode(std::move(plan), dictionary, rules, &out));
  return out;
}

}  // namespace prisma::gdh
