#ifndef PRISMA_GDH_DISTRIBUTED_PLAN_H_
#define PRISMA_GDH_DISTRIBUTED_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/status.h"
#include "gdh/data_dictionary.h"
#include "gdh/optimizer.h"

namespace prisma::gdh {

/// Scan name used by the global plan to reference the gathered result of
/// local part `i`.
std::string PartName(size_t index);

/// Scan name by which an OLAP merge plan references its shuffled-in rows
/// (the merge consumer materializes its inbound channels under this name;
/// DESIGN.md §14).
std::string OlapInputName();

/// How the streaming exchange layer (DESIGN.md §10) executes one
/// non-colocated equi-join: which side(s) leave their producing PEs, and
/// how their tuples are routed onto the consumer fragments.
enum class ExchangeStrategy : uint8_t {
  kShuffleBoth,      // Hash-repartition both inputs on the join key.
  kShuffleLeft,      // Ship the left input to the right table's fragments.
  kShuffleRight,     // Ship the right input to the left table's fragments.
  kBroadcastLeft,    // Replicate the left input to every right fragment.
  kBroadcastRight,   // Replicate the right input to every left fragment.
};

const char* ExchangeStrategyName(ExchangeStrategy strategy);

/// True if the given join input moves (is produced into exchange
/// channels) under `strategy`; side 0 = left, 1 = right.
bool ExchangeSideMoves(ExchangeStrategy strategy, int side);

/// Everything the coordinator needs to run one exchange-lowered join:
/// the per-table producer plans (Scan nodes name the base table and are
/// retargeted per fragment), the consumer anchor, and the join shape.
struct ExchangeJoinSpec {
  ExchangeStrategy strategy = ExchangeStrategy::kShuffleBoth;
  std::string left_table;
  std::string right_table;
  std::shared_ptr<const algebra::Plan> left_plan;
  std::shared_ptr<const algebra::Plan> right_plan;
  /// Consumers run co-located with this table's fragments, one each: the
  /// stationary side, or the more-fragmented side for shuffle-both.
  std::string anchor_table;
  int build_side = 0;  // 0 = left input builds the hash table.
  /// Equi-key pairs (left input column, right input column).
  std::vector<std::pair<size_t, size_t>> keys;
  /// Index into `keys` of the pair used for hash routing (shuffles).
  size_t route_key = 0;
  /// Full join predicate, bound over concat(left, right).
  std::shared_ptr<const algebra::Expr> predicate;
  Schema schema;  // Join output schema.
  /// Modeled tuples shipped by the chosen strategy (cost/EXPLAIN).
  double moved_rows = 0;
};

/// Everything the coordinator needs to run one exchange-lowered OLAP
/// operator (global group-by or ORDER BY, DESIGN.md §14) as a multi-stage
/// plan: producers at every fragment of `table` run `producer_plan` and
/// shuffle its rows — by group key (kGroupBy) or by sampled range
/// boundaries (kSort) — into one merge consumer per fragment; each
/// consumer materializes its inbound slice under OlapInputName() and runs
/// `merge_plan` over it, replying with final rows only. The coordinator
/// never sees a base tuple.
struct OlapSpec {
  enum class Kind : uint8_t { kGroupBy, kSort };
  Kind kind = Kind::kGroupBy;
  std::string table;
  /// Per-fragment producer plan (its Scan names the base table).
  std::shared_ptr<const algebra::Plan> producer_plan;
  /// Consumer-side merge plan (its Scan names OlapInputName()).
  std::shared_ptr<const algebra::Plan> merge_plan;
  /// kGroupBy: producers aggregate locally before the shuffle (the
  /// partial/combine decomposition), vs shipping base rows directly.
  bool pre_aggregate = false;
  /// kGroupBy: column of the producer output hashed for routing. NULL
  /// keys route to consumer 0 (a NULL group is still a group).
  size_t partition_column = 0;
  /// kSort: sort-key columns and per-key descending flags of the
  /// producer output; also the comparator for boundary routing.
  std::vector<size_t> sort_columns;
  std::vector<bool> sort_desc;
  /// kSort: per-fragment sampling plan (the sorted candidate; the OFM
  /// thins its result to `ExecPlanRequest::sample_rows` quantiles).
  std::shared_ptr<const algebra::Plan> sample_plan;
  Schema schema;          // Part output schema (merge plan output).
  double est_groups = 0;  // Cost-model estimate behind the strategy pick.
  /// kSort: gathered slices, stitched in consumer order, are globally
  /// ordered — the coordinator must preserve arrival-slice order.
  bool ordered = false;
};

/// One fragment-parallel unit of a distributed query: a plan to run at
/// every fragment of `table`, with its Scan node naming the *table* — the
/// coordinator clones it per fragment and renames the scan.
///
/// When `second_table` is set the part is a *co-located join*: the plan
/// scans both tables and runs at the PE hosting fragment i of each
/// (tables are co-partitioned on the join key and placement-aligned).
///
/// When `exchange` is set the part is an *exchange join*: `plan` is only
/// the EXPLAIN rendering (Join over Exchange-marked inputs); execution is
/// driven by the spec — producers at each moving fragment, pipelined
/// consumers at the anchor fragments.
struct LocalPart {
  std::string table;
  std::string second_table;  // Empty for single-table parts.
  std::shared_ptr<const algebra::Plan> plan;
  std::shared_ptr<const ExchangeJoinSpec> exchange;
  /// Set for a multi-stage OLAP part (group-by / sort over the exchange
  /// layer); `plan` is then only the EXPLAIN rendering.
  std::shared_ptr<const OlapSpec> olap;
};

/// A SELECT plan split for fragment-parallel execution (§2.2): the local
/// parts run inside the OFMs, the global plan merges their gathered
/// results at the coordinator (its Scan nodes use PartName(i)).
struct DistributedPlan {
  std::vector<LocalPart> parts;
  std::unique_ptr<algebra::Plan> global;
  /// True if an aggregate was decomposed into per-fragment partials plus
  /// a global combine step.
  bool pushed_aggregate = false;
  /// Number of joins distributed to co-located fragment pairs.
  int colocated_joins = 0;
  /// Number of joins lowered to streaming exchanges.
  int exchange_joins = 0;
  /// Number of group-by / sort operators lowered to multi-stage plans.
  int olap_parts = 0;
};

/// Splits a logical plan. Maximal subtrees of the form
/// Select*/Project*/Distinct over a single base-table Scan become local
/// parts; an Aggregate directly above such a subtree is decomposed into
/// partial aggregation at the fragments and a combining aggregation in
/// the global plan (COUNT/SUM/MIN/MAX/AVG). Everything else stays global.
StatusOr<DistributedPlan> SplitPlanForFragments(
    std::unique_ptr<algebra::Plan> plan, const DataDictionary& dictionary,
    bool colocated_joins = true, bool exchange_joins = true);

/// Rule-driven overload: additionally lowers global group-by and ORDER BY
/// onto the exchange layer as multi-stage OLAP parts when
/// `rules.distributed_olap` is set (DESIGN.md §14).
StatusOr<DistributedPlan> SplitPlanForFragments(
    std::unique_ptr<algebra::Plan> plan, const DataDictionary& dictionary,
    const OptimizerRules& rules);

/// Deep-copies `plan`, renaming every Scan of `from` to `to` (used to
/// retarget a local part at one fragment).
std::unique_ptr<algebra::Plan> CloneWithScanRenamed(const algebra::Plan& plan,
                                                    const std::string& from,
                                                    const std::string& to);

/// Base tables referenced by Scan nodes (for lock acquisition).
void CollectScanTables(const algebra::Plan& plan,
                       std::vector<std::string>* tables);

/// Fragment indexes of `info` that can hold rows surviving the local
/// part's selections: when a selection conjunct sitting directly over the
/// scan pins the fragmentation key to a constant, only the matching
/// fragment needs to run the part (the coordinator-side counterpart of
/// the GDH's DML pruning). Returns all fragments otherwise.
std::vector<int> PruneFragmentsForPart(const TableInfo& info,
                                       const algebra::Plan& part_plan);

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_DISTRIBUTED_PLAN_H_
