#ifndef PRISMA_GDH_MESSAGES_H_
#define PRISMA_GDH_MESSAGES_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "exec/ofm.h"
#include "obs/query_profile.h"
#include "pool/runtime.h"

namespace prisma::gdh {

// Mail kinds exchanged between the GDH, query coordinators, OFM processes
// and clients. Payloads (std::any) hold std::shared_ptr of the structs
// below; plans and expressions are shared by pointer inside the simulated
// machine while the modelled wire size reflects their serialized form.

inline constexpr char kMailClientStatement[] = "client_stmt";
inline constexpr char kMailClientReply[] = "client_reply";
inline constexpr char kMailExecPlan[] = "exec_plan";
inline constexpr char kMailExecPlanReply[] = "exec_plan_reply";
inline constexpr char kMailWrite[] = "write";
inline constexpr char kMailWriteReply[] = "write_reply";
inline constexpr char kMailTxnControl[] = "txn_control";
inline constexpr char kMailTxnControlReply[] = "txn_control_reply";
inline constexpr char kMailLockBatch[] = "lock_batch";
inline constexpr char kMailLockBatchReply[] = "lock_batch_reply";
inline constexpr char kMailStatementDone[] = "stmt_done";
inline constexpr char kMailCreateIndex[] = "create_index";
inline constexpr char kMailCheckpoint[] = "checkpoint";
inline constexpr char kMailDecisionRequest[] = "decision_request";
inline constexpr char kMailDecisionReply[] = "decision_reply";
inline constexpr char kMailQueryTimeout[] = "query_timeout";
// Self-mail timers of the hardened RPC layer: per-request retransmission
// (GDH and query coordinators), coordinator liveness supervision (GDH),
// stmt_done retransmission (coordinators) and decision-inquiry retry
// (recovering OFMs).
inline constexpr char kMailRpcTimeout[] = "rpc_timeout";
inline constexpr char kMailCoordCheck[] = "coord_check";
inline constexpr char kMailStmtDoneResend[] = "stmt_done_resend";
inline constexpr char kMailDecisionRetry[] = "decision_retry";
// Streaming exchange layer (DESIGN.md §10). A shuffle plan turns an OFM
// into a batch *producer* for one side of a distributed join; tuple
// batches flow producer -> consumer under credit-based flow control, acks
// flow back. The two trailing kinds are self-mail timers: per-shuffle
// batch retransmission (producers) and final-reply retransmission
// (consumers).
inline constexpr char kMailShufflePlan[] = "shuffle_plan";
inline constexpr char kMailTupleBatch[] = "tuple_batch";
inline constexpr char kMailBatchAck[] = "batch_ack";
inline constexpr char kMailBatchResend[] = "batch_resend";
inline constexpr char kMailExchangeReplyResend[] = "exchange_reply_resend";
// Distributed fixpoint (DESIGN.md §11). The coordinator starts one
// fixpoint PE process per edge fragment, then drives lock-step join
// rounds: round directives fan out, per-PE "delta empty" votes flow
// back, and a harvest directive collects the partitioned closure. Delta
// shuffles between fixpoint PEs reuse kMailTupleBatch/kMailBatchAck with
// round-scoped channel ids. The trailing kinds are self-mail timers:
// per-round-stream batch retransmission, vote retransmission, and the
// coordinator's control-plane rebroadcast (fault configurations only).
inline constexpr char kMailFixpointStart[] = "fixpoint_start";
inline constexpr char kMailFixpointRound[] = "fixpoint_round";
inline constexpr char kMailFixpointVote[] = "fixpoint_vote";
inline constexpr char kMailFixpointBatchResend[] = "fixpoint_batch_resend";
inline constexpr char kMailFixpointVoteResend[] = "fixpoint_vote_resend";
inline constexpr char kMailFixpointCtrlResend[] = "fixpoint_ctrl_resend";
// Replica resync (DESIGN.md §13). The GDH asks the surviving replica (the
// *source*) to refill a freshly spawned empty replica (the *target*): a
// snapshot bulk-copy streamed as kMailTupleBatch frames, then committed
// WAL-delta rounds (kMailResyncDelta / kMailResyncDeltaAck, stop-and-wait)
// until caught up; a second request under the GDH's cutover lock ships the
// final delta. kMailResyncPump is the source's retransmission self-timer.
inline constexpr char kMailResync[] = "resync";
inline constexpr char kMailResyncReply[] = "resync_reply";
inline constexpr char kMailResyncDelta[] = "resync_delta";
inline constexpr char kMailResyncDeltaAck[] = "resync_delta_ack";
inline constexpr char kMailResyncPump[] = "resync_pump";

/// Serialized-size model: tuples count their byte size, plans a fixed
/// budget per node, expressions per tree node.
constexpr int64_t kPlanNodeBits = 512;
constexpr int64_t kExprNodeBits = 128;
constexpr int64_t kControlBits = 256;

int64_t TuplesBits(const std::vector<Tuple>& tuples);

/// Modelled wire size of a serialized operator-profile tree.
int64_t ProfileBits(const obs::OperatorProfile& profile);

/// A SQL or PRISMAlog statement submitted by a client session.
struct ClientStatement {
  uint64_t request_id = 0;
  std::string text;
  bool is_prismalog = false;
  /// Session transaction (kAutoCommit when outside BEGIN/COMMIT).
  exec::TxnId txn = exec::kAutoCommit;
  /// Per-statement execution-mode override; unset = the machine default.
  std::optional<exec::ExecMode> exec_mode;
};

/// Reply to a client statement: result rows for queries, affected count
/// for DML, the new transaction id for BEGIN.
struct ClientReply {
  uint64_t request_id = 0;
  Status status;
  Schema schema;
  std::shared_ptr<std::vector<Tuple>> tuples;
  uint64_t affected_rows = 0;
  exec::TxnId txn = exec::kAutoCommit;

  int64_t WireBits() const {
    return kControlBits + (tuples ? TuplesBits(*tuples) : 0);
  }
};

/// Coordinator -> OFM: execute a fragment-local plan.
struct ExecPlanRequest {
  uint64_t request_id = 0;
  std::shared_ptr<const algebra::Plan> plan;
  /// EXPLAIN ANALYZE: return a per-operator profile with the tuples.
  bool profile = false;
  /// Fragment-local execution mode (row-at-a-time or vectorized).
  exec::ExecMode exec_mode = exec::ExecMode::kRow;
  /// Non-zero: a *sampling* request (distributed sort, DESIGN.md §14.3).
  /// The OFM thins the plan's result to at most this many evenly spaced
  /// rows before replying, so the coordinator sees bounded per-fragment
  /// quantiles instead of a base-tuple gather.
  uint64_t sample_rows = 0;

  int64_t WireBits() const {
    return kControlBits +
           static_cast<int64_t>(plan->TreeSize()) * kPlanNodeBits;
  }
};

struct ExecPlanReply {
  uint64_t request_id = 0;
  Status status;
  std::string fragment;
  std::shared_ptr<std::vector<Tuple>> tuples;
  /// Set when the request asked for profiling.
  std::shared_ptr<obs::OperatorProfile> profile;
  /// Shuffle producers: first-transmission data-plane bits of the shuffle
  /// this reply settles (feeds olap.shuffle_bits; zero for plain plans).
  uint64_t shuffle_wire_bits = 0;

  int64_t WireBits() const {
    return kControlBits + (tuples ? TuplesBits(*tuples) : 0) +
           (profile ? ProfileBits(*profile) : 0);
  }
};

/// GDH -> OFM: one write operation (insert / predicated delete / update).
struct WriteRequest {
  enum class Op : uint8_t { kInsert, kDeleteWhere, kUpdateWhere };
  uint64_t request_id = 0;
  Op op = Op::kInsert;
  exec::TxnId txn = exec::kAutoCommit;
  Tuple tuple;  // kInsert.
  std::shared_ptr<const algebra::Expr> predicate;  // May be null (all rows).
  std::vector<std::pair<size_t, std::shared_ptr<const algebra::Expr>>>
      assignments;  // kUpdateWhere.

  int64_t WireBits() const {
    int64_t bits = kControlBits + static_cast<int64_t>(tuple.ByteSize()) * 8;
    if (predicate) {
      bits += static_cast<int64_t>(predicate->TreeSize()) * kExprNodeBits;
    }
    for (const auto& [_, e] : assignments) {
      bits += static_cast<int64_t>(e->TreeSize()) * kExprNodeBits;
    }
    return bits;
  }
};

struct WriteReply {
  uint64_t request_id = 0;
  Status status;
  uint64_t affected_rows = 0;
  /// Row-count delta of the fragment (insert: +1; delete: -n).
  int64_t row_delta = 0;
  std::string fragment;
};

/// Coordinator -> OFM: run `plan` against the local fragment and stream
/// the result — hash-partitioned on `keys[0]` of the output schema, or
/// replicated (kBroadcast) — to the exchange consumers as flow-controlled
/// tuple batches. The OFM answers the coordinator with an (empty, control-
/// sized) ExecPlanReply once every consumer has acknowledged its stream,
/// so the coordinator's hardened-RPC machinery (retransmit, dedup,
/// degrade-to-Unavailable) covers shuffles exactly like plain plans.
struct ShufflePlanRequest {
  enum class Mode : uint8_t { kHash, kBroadcast, kRange };
  uint64_t request_id = 0;
  /// Identifies the exchange (one per lowered join part) and this
  /// producer's role in it; consumers use these to route batches onto the
  /// right channel.
  uint64_t exchange_id = 0;
  int side = 0;            // 0 = left input of the join, 1 = right.
  size_t producer = 0;     // Index of this producer within its side.
  std::shared_ptr<const algebra::Plan> plan;
  Mode mode = Mode::kHash;
  /// Hash mode: column of the plan's output schema to partition on.
  size_t partition_column = 0;
  /// Hash mode: route NULL partition keys to consumer 0 instead of
  /// dropping them. Join shuffles drop NULLs (they can never match an
  /// equi-join); group-by shuffles must keep them (NULL is a real group,
  /// DESIGN.md §14.2).
  bool keep_nulls = false;
  /// Range mode (distributed sort, DESIGN.md §14.3): the sort key —
  /// columns of the plan's output schema with per-key descending flags —
  /// and `consumers.size() - 1` boundary key-tuples splitting the key
  /// space into consecutive slices. Row r routes to the number of
  /// boundaries <= r's key (binary search with the query's comparator).
  std::vector<size_t> sort_columns;
  std::vector<bool> sort_desc;
  std::shared_ptr<const std::vector<Tuple>> boundaries;
  std::vector<pool::ProcessId> consumers;
  uint64_t batch_rows = 64;     // Max tuples per batch.
  uint64_t credit_window = 4;   // Batches in flight per channel.
  /// Producer-side execution mode. kVectorized additionally switches the
  /// tuple-batch frames of this shuffle to the column-encoded wire format
  /// (DESIGN.md §12), shrinking the modelled wire bits.
  exec::ExecMode exec_mode = exec::ExecMode::kRow;

  int64_t WireBits() const {
    int64_t bits = kControlBits +
                   static_cast<int64_t>(plan->TreeSize()) * kPlanNodeBits;
    if (boundaries != nullptr) bits += TuplesBits(*boundaries);
    return bits;
  }
};

/// Producer -> consumer: one framed batch of an exchange channel. The
/// channel is identified by (exchange_id, side, producer); `shuffle_token`
/// names the producer-side shuffle instance so acks for a superseded
/// execution of the same shuffle are ignored.
struct TupleBatchMsg {
  uint64_t exchange_id = 0;
  int side = 0;
  size_t producer = 0;
  uint64_t shuffle_token = 0;
  uint64_t seq = 0;   // 1-based per-channel sequence number.
  bool eos = false;   // Final batch of this channel.
  /// Row-encoded payload (exactly one of tuples / column_frame is set on
  /// a non-empty batch; empty batches may carry neither).
  std::shared_ptr<std::vector<Tuple>> tuples;
  /// Column-encoded payload: a serialized ColumnBatch frame (DESIGN.md
  /// §12). Its *actual byte length* is the modelled wire size, so the
  /// exchange.wire_bits savings of the columnar format are measured, not
  /// assumed.
  std::shared_ptr<const std::string> column_frame;

  int64_t WireBits() const {
    if (column_frame != nullptr) {
      return kControlBits + static_cast<int64_t>(column_frame->size()) * 8;
    }
    return kControlBits + (tuples ? TuplesBits(*tuples) : 0);
  }
};

/// Decodes the payload of a tuple-batch frame into rows, whichever
/// encoding it carries. Both exchange decode sites (consumer processes
/// and fixpoint partitions) funnel through this helper so the two wire
/// formats stay interchangeable.
StatusOr<std::vector<Tuple>> TupleBatchRows(const TupleBatchMsg& msg);

/// Lexicographic comparison of two already-projected sort-key tuples
/// under per-key descending flags — exactly the ordering exec::Executor's
/// Sort operator uses (Value::Compare per key, sign flipped for DESC), so
/// range routing, boundary selection and the merged output all agree.
int CompareSortKeyTuples(const Tuple& a, const Tuple& b,
                         const std::vector<bool>& desc);

/// Projects `row` onto the sort-key columns.
Tuple SortKeyOf(const Tuple& row, const std::vector<size_t>& columns);

/// Range-partition routing (DESIGN.md §14.3): the slice index of `row`
/// among `boundaries.size() + 1` consecutive key slices = the number of
/// boundary keys <= the row's key (binary search).
size_t RangeSliceOf(const Tuple& row, const std::vector<size_t>& columns,
                    const std::vector<bool>& desc,
                    const std::vector<Tuple>& boundaries);

/// Consumer -> producer: cumulative acknowledgement for one channel.
/// `ack` is the highest sequence number delivered in order; the producer
/// may have batches up to `ack + credit` in flight.
struct BatchAckMsg {
  uint64_t shuffle_token = 0;
  size_t consumer = 0;  // Consumer index within the exchange.
  uint64_t ack = 0;
  uint64_t credit = 0;
};

/// Coordinator -> fixpoint PE: peer roster for one distributed fixpoint.
/// Sent once after all PEs are spawned (pids are unknown until then) and
/// rebroadcast by the control-plane timer under faults; idempotent.
struct FixpointStartMsg {
  uint64_t fixpoint_id = 0;
  std::vector<pool::ProcessId> peers;  // All fixpoint PEs, by index.
};

/// Coordinator -> fixpoint PE: run join round `round` (1-based), or — with
/// `harvest` set — ship the owned closure slice back as an ExecPlanReply.
/// PEs deduplicate by round counter / replied flag, so retransmitted or
/// duplicated directives are harmless.
struct FixpointRoundMsg {
  uint64_t fixpoint_id = 0;
  uint64_t round = 0;
  bool harvest = false;
};

/// Fixpoint PE -> coordinator: "I sent my round-`round` delta streams and
/// absorbed all inbound round-`round` streams". The coordinator's barrier
/// admits each (round, pe) vote once; duplicates from retransmission are
/// dropped, so the aggregated stats stay exact.
struct FixpointVoteMsg {
  uint64_t fixpoint_id = 0;
  uint64_t round = 0;
  size_t pe = 0;            // Voter's partition index.
  bool delta_empty = false; // No new owned pairs absorbed this round.
  uint64_t absorbed_new = 0;   // New owned pairs deduplicated in.
  uint64_t pairs_derived = 0;  // Join products of this round's JoinRound.
  uint64_t wire_bits = 0;      // First-transmission bits of round streams.
};

/// GDH -> OFM two-phase-commit control; OFM replies with the same id.
struct TxnControlRequest {
  enum class Op : uint8_t { kPrepare, kCommit, kAbort };
  uint64_t request_id = 0;
  Op op = Op::kPrepare;
  exec::TxnId txn = exec::kAutoCommit;
};

struct TxnControlReply {
  uint64_t request_id = 0;
  Status status;
  std::string fragment;
};

/// GDH -> OFM: snapshot the fragment and truncate its WAL.
struct CheckpointRequest {
  uint64_t request_id = 0;
};

/// GDH -> OFM: build a secondary index on the fragment.
struct CreateIndexRequest {
  uint64_t request_id = 0;
  std::string index_name;
  std::vector<size_t> columns;
  bool ordered = false;
};

/// Coordinator -> GDH: acquire shared locks on a set of fragments.
struct LockBatchRequest {
  uint64_t request_id = 0;
  exec::TxnId txn = exec::kAutoCommit;  // Statement txn for autocommit reads.
  std::vector<std::string> resources;
  bool exclusive = false;
};

struct LockBatchReply {
  uint64_t request_id = 0;
  Status status;
};

/// Coordinator -> GDH: statement finished (releases statement locks).
struct StatementDone {
  exec::TxnId txn = exec::kAutoCommit;
};

/// GDH -> source OFM: refill `target` (the resync-mode OFM of the peer
/// replica). Phase 1 (`cutover` false): snapshot bulk-copy + WAL-delta
/// rounds until drained, then reply. Phase 2 (`cutover` true, sent while
/// the GDH holds the fragment's exclusive lock, so every 2PC touching the
/// fragment has completed): ship the final committed delta, wait for the
/// target to finish (index rebuild + checkpoint), then reply. Both phases
/// ride the hardened RPC layer (request ids, retransmission, reply cache).
struct ResyncRequest {
  uint64_t request_id = 0;
  /// GDH-chosen id of this resync attempt; frames and deltas carry it so
  /// the target ignores traffic from superseded attempts.
  uint64_t resync_id = 0;
  pool::ProcessId target = pool::kNoProcess;
  std::string target_fragment;
  uint64_t batch_rows = 64;
  uint64_t credit_window = 4;
  /// Column-encode the bulk frames (DESIGN.md §12).
  bool columnar = true;
  bool cutover = false;
};

/// Source OFM -> GDH: phase outcome plus transfer accounting (feeds the
/// replica.* metric family).
struct ResyncReply {
  uint64_t request_id = 0;
  Status status;
  std::string fragment;       // Source replica name.
  uint64_t bulk_tuples = 0;   // Snapshot rows shipped this phase.
  uint64_t delta_records = 0; // WAL records shipped this phase.
  uint64_t delta_rounds = 0;  // Catch-up rounds this phase.
  uint64_t wire_bits = 0;     // Modelled bits of bulk frames + deltas.
};

/// Source -> target: one stop-and-wait round of committed WAL records
/// (encoded in the OFM's WAL record format). `seq` is 1-based within the
/// source session identified by `session_token`; `final` marks the cutover
/// delta — applying it makes the target rebuild its indexes, checkpoint,
/// and become a normal replica.
struct ResyncDeltaMsg {
  uint64_t resync_id = 0;
  uint64_t session_token = 0;
  uint64_t seq = 0;
  bool final_delta = false;
  /// Source relation's total slot count, trailing tombstones included.
  /// The bulk snapshot ships live rows only, so on the final delta the
  /// target pads to this count — checkpoints serialize the whole slot
  /// array and must stay byte-identical across replicas.
  uint64_t source_slots = 0;
  std::vector<std::string> records;

  int64_t WireBits() const {
    int64_t bits = kControlBits;
    for (const std::string& r : records) {
      bits += static_cast<int64_t>(r.size()) * 8;
    }
    return bits;
  }
};

/// Target -> source: cumulative delta acknowledgement.
struct ResyncDeltaAck {
  uint64_t resync_id = 0;
  uint64_t session_token = 0;
  uint64_t ack = 0;
};

/// Recovering OFM -> GDH: what happened to these in-doubt transactions?
/// Retransmitted on a timer until every transaction is resolved.
struct DecisionRequest {
  uint64_t request_id = 0;
  std::vector<exec::TxnId> transactions;
};

/// GDH -> OFM: commit flags for the echoed transaction ids (presumed
/// abort: the coordinator only remembers logged commit decisions, so any
/// transaction it does not recognise aborts). The echo lets the OFM apply
/// a late or duplicated reply to exactly the transactions it asked about.
struct DecisionReply {
  uint64_t request_id = 0;
  std::vector<exec::TxnId> transactions;
  std::vector<bool> commit;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_MESSAGES_H_
