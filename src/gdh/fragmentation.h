#ifndef PRISMA_GDH_FRAGMENTATION_H_
#define PRISMA_GDH_FRAGMENTATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"
#include "sql/ast.h"

namespace prisma::gdh {

/// How a relation is split into the one-fragment units managed by OFMs —
/// the data-allocation manager's placement function (§2.2).
struct FragmentationSpec {
  sql::FragmentStrategy strategy = sql::FragmentStrategy::kNone;
  /// Column driving kHash / kRange placement.
  size_t column = 0;
  int num_fragments = 1;
  /// kRange: num_fragments - 1 ascending split values; fragment i holds
  /// keys < boundaries[i] (last fragment holds the rest). When empty, the
  /// dictionary synthesizes equal-width INT boundaries over
  /// [0, kDefaultRangeDomain).
  std::vector<Value> boundaries;
};

/// Upper end of the default INT key domain assumed for RANGE
/// fragmentation when no explicit boundaries are given (see README).
constexpr int64_t kDefaultRangeDomain = 1'000'000;

/// Routes tuples to fragments according to a spec. Stateless except for
/// the round-robin cursor.
class Fragmenter {
 public:
  explicit Fragmenter(FragmentationSpec spec);

  const FragmentationSpec& spec() const { return spec_; }

  /// Fragment index for a tuple. NULL keys go to fragment 0. Round-robin
  /// advances an internal cursor.
  StatusOr<int> FragmentOf(const Tuple& tuple);

  /// Fragments that could hold a tuple whose fragmentation-column value
  /// equals `key` (a single fragment for kHash/kRange; all for others).
  std::vector<int> FragmentsForKey(const Value& key) const;

 private:
  int HashFragment(const Value& key) const;
  int RangeFragment(const Value& key) const;

  FragmentationSpec spec_;
  int rr_cursor_ = 0;
};

/// Canonical name of fragment `index` of `table` ("emp#3").
std::string FragmentName(const std::string& table, int index);

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_FRAGMENTATION_H_
