#include "gdh/exchange_process.h"

#include <any>

#include "common/logging.h"
#include "exec/expr_eval.h"

namespace prisma::gdh {

ExchangeConsumerProcess::ExchangeConsumerProcess(Config config)
    : config_(std::move(config)) {
  PRISMA_CHECK(config_.build_side == 0 || config_.build_side == 1);
  // The build side is fully received before probing starts, so it must be
  // a moving side; a stationary input can always stream into the probe.
  PRISMA_CHECK(Side(config_.build_side).moving);
  const SideSpec& probe = Side(1 - config_.build_side);
  PRISMA_CHECK(probe.moving || probe.local_plan != nullptr);
  PRISMA_CHECK(!config_.keys.empty());
}

void ExchangeConsumerProcess::OnStart() {
  exec::PipelinedHashJoin::Options options;
  const bool build_left = config_.build_side == 0;
  options.build_is_left = build_left;
  for (const auto& [l, r] : config_.keys) {
    options.build_cols.push_back(build_left ? l : r);
    options.probe_cols.push_back(build_left ? r : l);
  }
  if (config_.predicate != nullptr) {
    if (config_.expr_mode == exec::ExprMode::kCompiled) {
      auto compiled = exec::CompileExpr(*config_.predicate);
      if (compiled.ok()) {
        compiled_predicate_ = std::make_shared<exec::CompiledExpr>(
            std::move(compiled).value());
        predicate_cost_ns_ =
            static_cast<sim::SimTime>(
                compiled_predicate_->num_instructions()) *
            config_.costs.compiled_instr_ns;
      }
    }
    if (compiled_predicate_ == nullptr) {
      predicate_cost_ns_ =
          static_cast<sim::SimTime>(config_.predicate->TreeSize()) *
          config_.costs.interpreted_node_ns;
    }
    options.filter = [this](const Tuple& tuple) -> StatusOr<bool> {
      ChargeCpu(predicate_cost_ns_);
      return compiled_predicate_ != nullptr
                 ? compiled_predicate_->EvalPredicate(tuple)
                 : exec::EvalPredicate(*config_.predicate, tuple);
    };
  }
  join_ = std::make_unique<exec::PipelinedHashJoin>(std::move(options));
  build_channels_->resize(Side(config_.build_side).producers);
  const SideSpec& probe = Side(1 - config_.build_side);
  if (probe.moving) probe_channels_->resize(probe.producers);
  if (config_.metrics != nullptr) {
    m_batches_received_ = config_.metrics->GetCounter(
        "exchange.batches_received", {{"fragment", config_.fragment}});
  }
}

// Handler contract (D5): the exchange consumer owns the shuffle data plane.
// PRISMA_HANDLES(kMailTupleBatch, kMailExchangeReplyResend)
void ExchangeConsumerProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailTupleBatch) {
    HandleBatch(mail);
    return;
  }
  if (mail.kind == kMailExchangeReplyResend) {
    if (!replied_ || reply_resends_left_ <= 0) return;
    --reply_resends_left_;
    SendMail(config_.coordinator, kMailExecPlanReply, *reply_,
             (*reply_)->WireBits());
    if (reply_resends_left_ > 0) {
      SendSelfAfter(config_.reply_resend_ns, kMailExchangeReplyResend);
    }
    return;
  }
  // Unknown kinds are ignored (forward compatibility).
}

void ExchangeConsumerProcess::HandleBatch(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<TupleBatchMsg>>(mail.body);
  if (msg->exchange_id != config_.exchange_id) return;
  const bool is_build = msg->side == config_.build_side;
  auto& channels = is_build ? build_channels_ : probe_channels_;
  if (msg->producer >= channels->size()) return;
  exec::InboundChannel& channel = (*channels)[msg->producer];

  exec::TupleBatch batch;
  batch.seq = msg->seq;
  batch.eos = msg->eos;
  auto rows_or = TupleBatchRows(*msg);
  if (!rows_or.ok()) {
    // A frame that fails to decode can never become deliverable; fail the
    // query instead of stalling the producer into its retry budget.
    SendReply(rows_or.status());
    return;
  }
  batch.tuples = std::move(rows_or).value();
  const size_t rows = batch.tuples.size();
  if (channel.Offer(std::move(batch))) {
    // Unmarshalling cost of a fresh batch, as for gathered reply tuples.
    ChargeCpu(static_cast<sim::SimTime>(rows) * config_.costs.tuple_ns);
    if (m_batches_received_ != nullptr) m_batches_received_->Increment();
  } else if (config_.metrics != nullptr) {
    if (m_dup_batches_ == nullptr) {
      m_dup_batches_ = config_.metrics->GetCounter(
          "exchange.dup_batches", {{"fragment", config_.fragment}});
    }
    m_dup_batches_->Increment();
  }

  // Advance the pipeline first: TakeReady inside Pump is what moves the
  // channel's cumulative ack point, so acking afterwards covers this very
  // batch (acking before it would leave the stream's last batch
  // permanently unacknowledged, stalling the producer into its
  // retransmission timer).
  Pump();

  // Always (re-)acknowledge, even duplicates: a lost ack would otherwise
  // stall the producer's credit window forever.
  auto ack = std::make_shared<BatchAckMsg>();
  ack->shuffle_token = msg->shuffle_token;
  ack->consumer = config_.index;
  ack->ack = channel.ack();
  ack->credit = config_.credit_window;
  SendMail(mail.from, kMailBatchAck, std::move(ack), kControlBits);
}

void ExchangeConsumerProcess::Pump() {
  if (replied_) return;

  // Build phase: insert in-order build batches into the hash table.
  bool build_channels_done = true;
  for (exec::InboundChannel& channel : *build_channels_) {
    for (exec::TupleBatch& batch : channel.TakeReady()) {
      if (failed_) continue;
      for (Tuple& tuple : batch.tuples) join_->AddBuild(std::move(tuple));
    }
    if (!channel.done()) build_channels_done = false;
  }
  if (!build_done_ && build_channels_done) {
    build_done_ = true;
    join_->FinishBuild();
    ChargeJoinDelta();
  }

  // Probe phase. Moving probe tuples arriving before the build is sealed
  // are buffered; everything after streams straight through the join.
  const SideSpec& probe = Side(1 - config_.build_side);
  if (probe.moving) {
    bool probe_channels_done = true;
    for (exec::InboundChannel& channel : *probe_channels_) {
      for (exec::TupleBatch& batch : channel.TakeReady()) {
        if (failed_) continue;
        if (!build_done_) {
          for (Tuple& tuple : batch.tuples) {
            probe_buffer_->push_back(std::move(tuple));
          }
        } else {
          const Status status = ProbeTuples(batch.tuples);
          if (!status.ok()) SendReply(status);
        }
      }
      if (!channel.done()) probe_channels_done = false;
    }
    if (build_done_ && !failed_) {
      if (!probe_buffer_->empty()) {
        std::vector<Tuple> buffered = std::move(*probe_buffer_);
        probe_buffer_->clear();
        const Status status = ProbeTuples(buffered);
        if (!status.ok()) SendReply(status);
      }
      if (probe_channels_done && !replied_) SendReply(Status::OK());
    }
  } else if (build_done_ && !probe_drained_ && !failed_) {
    probe_drained_ = true;
    RunLocalProbe();
  }
}

Status ExchangeConsumerProcess::ProbeTuples(const std::vector<Tuple>& tuples) {
  for (const Tuple& tuple : tuples) {
    RETURN_IF_ERROR(join_->Probe(tuple, &results_.get()));
  }
  ChargeJoinDelta();
  return Status::OK();
}

void ExchangeConsumerProcess::RunLocalProbe() {
  const SideSpec& probe = Side(1 - config_.build_side);
  exec::ExecOptions options;
  options.expr_mode = config_.expr_mode;
  options.exec_mode = config_.exec_mode;
  options.costs = config_.costs;
  options.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  PeLocalResolver resolver(config_.registry, pe());
  exec::Executor executor(&resolver, std::move(options));
  StatusOr<std::vector<Tuple>> rows = executor.Execute(*probe.local_plan);
  if (!rows.ok()) {
    SendReply(rows.status());
    return;
  }
  const Status status = ProbeTuples(*rows);
  if (!status.ok()) {
    SendReply(status);
    return;
  }
  SendReply(Status::OK());
}

void ExchangeConsumerProcess::SendReply(Status status) {
  if (replied_) return;
  replied_ = true;
  failed_ = !status.ok();
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = config_.reply_request_id;
  reply->status = std::move(status);
  reply->fragment = config_.fragment;
  if (!failed_) {
    reply->tuples =
        std::make_shared<std::vector<Tuple>>(std::move(*results_));
  }
  *reply_ = reply;
  SendMail(config_.coordinator, kMailExecPlanReply, reply,
           reply->WireBits());
  // Retransmit until the coordinator kills us at statement completion: the
  // reply may be lost, and the coordinator's reply-side dedup (SettleRpc)
  // makes duplicates harmless.
  if (config_.reply_resend_ns > 0 && config_.reply_resend_attempts > 0) {
    reply_resends_left_ = config_.reply_resend_attempts;
    SendSelfAfter(config_.reply_resend_ns, kMailExchangeReplyResend);
  }
}

void ExchangeConsumerProcess::ChargeJoinDelta() {
  const exec::JoinCounters& counters = join_->counters();
  ChargeCpu(static_cast<sim::SimTime>(counters.hash_ops - charged_.hash_ops) *
                config_.costs.hash_ns +
            static_cast<sim::SimTime>(counters.compare_ops -
                                      charged_.compare_ops) *
                config_.costs.compare_ns +
            static_cast<sim::SimTime>(counters.pairs_examined -
                                      charged_.pairs_examined) *
                config_.costs.tuple_ns);
  charged_ = counters;
}

}  // namespace prisma::gdh
