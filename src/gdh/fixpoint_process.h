#ifndef PRISMA_GDH_FIXPOINT_PROCESS_H_
#define PRISMA_GDH_FIXPOINT_PROCESS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "exec/exchange.h"
#include "exec/fixpoint.h"
#include "exec/ofm.h"
#include "gdh/messages.h"
#include "obs/metrics.h"
#include "pool/owned.h"
#include "pool/runtime.h"

namespace prisma::gdh {

/// One partition of a distributed transitive-closure fixpoint
/// (DESIGN.md §11): a short-lived POOL-X process spawned by the query
/// coordinator on the PE of one edge fragment. It ingests its slice of
/// the hash-partitioned edge relation from the OFM shuffle producers,
/// then alternates coordinator-driven join rounds with all-to-all delta
/// shuffles over the streaming exchange channels until every partition's
/// delta is empty, and finally ships its owned closure slice back as an
/// ExecPlanReply.
///
/// The known set additionally lives in a recovery-free kQueryOnly
/// exec::Ofm (§2.5: "OFMs needed for query processing only do not
/// require extensive crash recovery facilities") — intermediate fixpoint
/// state is rebuilt by re-running the query, never recovered.
///
/// Fault tolerance composes from the exchange layer's guarantees plus
/// idempotent control handling: inbound delta batches are seq-
/// deduplicated per round-scoped channel, outbound streams retransmit
/// under the producer backoff discipline, duplicated round directives
/// are dropped by the round counter, votes are retransmitted on a timer
/// until the coordinator advances, and the final reply retransmits until
/// the coordinator kills this process at statement completion.
class FixpointPeProcess : public pool::Process {
 public:
  struct Config {
    /// Exchange id shared by every channel of this fixpoint (edge
    /// shuffle and inter-PE rounds alike).
    uint64_t fixpoint_id = 0;
    size_t index = 0;    // This partition's index.
    size_t num_pes = 1;  // Total fixpoint partitions.
    exec::TcAlgorithm algorithm = exec::TcAlgorithm::kSeminaive;
    /// Edge-relation producers (one shuffle channel per edge fragment).
    size_t edge_producers = 0;
    Schema edge_schema;
    pool::ProcessId coordinator = pool::kNoProcess;
    /// The coordinator registered this id for our ExecPlanReply.
    uint64_t reply_request_id = 0;
    uint64_t batch_rows = 64;
    uint64_t credit_window = 4;
    /// Frame outbound delta streams in the column-encoded wire format
    /// (DESIGN.md §12) — set for vectorized statements. The per-round
    /// wire_bits reported on votes then measure the columnar frames.
    bool columnar = false;
    /// Outbound-stream retransmission discipline (mirrors the OFM
    /// producer's knobs).
    sim::SimTime batch_retry_ns = 250'000'000;
    sim::SimTime batch_backoff_cap_ns = 2'000'000'000;
    int batch_attempts = 10;
    /// Vote/reply retransmission period; 0 disables (fault-free runs).
    sim::SimTime vote_resend_ns = 0;
    sim::SimTime reply_resend_ns = 0;
    /// Budget that stops an orphaned process (dead coordinator) from
    /// ticking forever.
    int resend_attempts = 240;
    pool::CostModel costs;
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit FixpointPeProcess(Config config);

  void OnStart() override;
  void OnMail(const pool::Mail& mail) override;

  std::string debug_name() const override {
    return "fixpoint:" + std::to_string(config_.index);
  }

 private:
  /// One outbound round stream to one peer, keyed by its token so acks
  /// and resend timers for superseded or finished streams fall through.
  struct OutStream {
    exec::OutboundChannel channel;
    pool::ProcessId peer = pool::kNoProcess;
    int side = 0;
    uint64_t round = 0;
    int attempts = 0;
    sim::SimTime retry_delay = 0;
  };

  /// Channel side for round `round`'s owner (copy 0) or smart-index
  /// (copy 1) streams; side 0 is reserved for the edge shuffle.
  static int SideFor(uint64_t round, int copy) {
    return 1 + static_cast<int>(round) * 2 + copy;
  }

  void HandleStart(const pool::Mail& mail);
  void HandleRound(const pool::Mail& mail);
  void HandleBatch(const pool::Mail& mail);
  void HandleAck(const pool::Mail& mail);
  void HandleBatchResend(const pool::Mail& mail);
  void HandleHarvest();

  /// Drains whatever became ready (edge channels, current-round delta
  /// channels), seeds once the edge relation is complete, and votes once
  /// the current round is fully absorbed and fully first-transmitted.
  void Advance();
  void DrainEdges();
  void DrainRounds();
  void Seed();
  void SendRoundStreams(uint64_t round, exec::RoutedPairs owner,
                        exec::RoutedPairs index);
  void PumpOut(uint64_t token, OutStream& out);
  void SendBatchMsg(uint64_t token, OutStream& out,
                    const exec::TupleBatch& batch, bool first);
  bool InboundComplete(uint64_t round);
  bool OutboundSentComplete(uint64_t round) const;
  void MaybeVote();
  void SendReply(Status status);
  void Fail(Status status);

  Config config_;
  // Process-local state below is wrapped in the ownership checker.
  pool::OwnedPtr<exec::FixpointPartition> kernel_;
  /// Recovery-free intermediate-result store mirroring the owned set.
  pool::OwnedPtr<exec::Ofm> known_ofm_;
  pool::Owned<std::vector<pool::ProcessId>> peers_;
  pool::Owned<std::vector<exec::InboundChannel>> edge_channels_;
  /// Inter-PE round channels keyed by side, one channel per peer.
  pool::Owned<std::map<int, std::vector<exec::InboundChannel>>> inbound_;
  pool::Owned<std::map<uint64_t, OutStream>> outbound_;
  /// First-transmission bits per round (retransmissions excluded), the
  /// shipping-cost axis reported on each vote.
  pool::Owned<std::map<uint64_t, uint64_t>> wire_bits_by_round_;
  pool::Owned<std::shared_ptr<FixpointVoteMsg>> last_vote_;
  pool::Owned<std::shared_ptr<ExecPlanReply>> reply_;

  bool started_ = false;
  bool edges_done_ = false;
  bool seeded_ = false;
  bool replied_ = false;
  bool failed_ = false;
  uint64_t current_round_ = 0;  // Valid once seeded_ (round 0 = seed).
  int64_t voted_round_ = -1;
  uint64_t absorbed_new_current_ = 0;  // New owned pairs this round.
  uint64_t round_products_ = 0;        // Join products this round.
  uint64_t next_token_ = 1;
  bool vote_timer_armed_ = false;
  int vote_resends_left_ = 0;
  int reply_resends_left_ = 0;

  obs::Counter* m_batches_received_ = nullptr;
  obs::Counter* m_batches_sent_ = nullptr;
  obs::Counter* m_dup_batches_ = nullptr;     // Lazy: fault paths only.
  obs::Counter* m_retransmits_ = nullptr;     // Lazy: fault paths only.
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_FIXPOINT_PROCESS_H_
