#ifndef PRISMA_GDH_GDH_PROCESS_H_
#define PRISMA_GDH_GDH_PROCESS_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gdh/data_dictionary.h"
#include "gdh/lock_manager.h"
#include "gdh/messages.h"
#include "gdh/optimizer.h"
#include "gdh/pe_registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pool/runtime.h"
#include "sql/binder.h"
#include "storage/memory_tracker.h"
#include "storage/stable_store.h"

namespace prisma::gdh {

/// How the data-allocation manager places fragments on PEs.
enum class PlacementPolicy : uint8_t {
  /// Fragment i of every table lands on the i-th fragment PE, so equal
  /// fragment indexes of co-partitioned tables share a PE.
  kAligned,
  /// Fragments take consecutive PEs from a global cursor (spreads load,
  /// destroys co-location) — the E9 contrast.
  kRoundRobin,
};

/// The Global Data Handler (§2.2): data dictionary, query optimizer
/// configuration, transaction manager, concurrency-control unit, recovery
/// coordinator and data-allocation manager, running as one POOL-X process
/// (conventionally on PE 0). SELECTs are delegated to per-query
/// coordinator processes; DDL, DML and transaction control are handled
/// here.
class GdhProcess : public pool::Process {
 public:
  struct PeResources {
    storage::MemoryTracker* memory = nullptr;
    storage::StableStore* stable = nullptr;
  };
  struct Config {
    /// PEs eligible to host fragments (the allocation pool).
    std::vector<net::NodeId> fragment_pes;
    /// PEs eligible to host per-query coordinators.
    std::vector<net::NodeId> coordinator_pes;
    std::map<net::NodeId, PeResources> resources;
    pool::CostModel costs;
    OptimizerRules rules;
    exec::ExprMode expr_mode = exec::ExprMode::kCompiled;
    /// Base-fragment OFM flavour (kQueryOnly disables durability — E7).
    exec::OfmType base_ofm_type = exec::OfmType::kFull;
    PlacementPolicy placement = PlacementPolicy::kAligned;
    /// Directory of co-located fragments for distributed joins (owned by
    /// the machine; may be null to disable co-located execution).
    PeLocalRegistry* registry = nullptr;
    sim::SimTime op_timeout_ns = 10 * sim::kNanosPerSecond;
    sim::SimTime query_timeout_ns = 30 * sim::kNanosPerSecond;
    /// Observability sinks (both may be null: no instrumentation). They
    /// are forwarded to every OFM process and query coordinator spawned.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  explicit GdhProcess(Config config);

  void OnMail(const pool::Mail& mail) override;

  // --- Control plane, used by core::PrismaDb and tests between events ---

  DataDictionary& dictionary() { return dictionary_; }
  const LockManager& locks() const { return locks_; }

  /// Kills the OFM process of one fragment (simulated PE crash).
  Status CrashFragment(const std::string& table, int fragment);
  /// Spawns a replacement OFM that recovers from stable storage and
  /// resolves in-doubt transactions with this coordinator.
  Status RecoverFragment(const std::string& table, int fragment);

  struct Stats {
    uint64_t statements = 0;
    uint64_t selects_spawned = 0;
    uint64_t txns_begun = 0;
    uint64_t txns_committed = 0;
    uint64_t txns_aborted = 0;
    uint64_t deadlock_aborts = 0;
    uint64_t write_ops_sent = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Transaction bookkeeping.
  struct TxnState {
    bool explicit_txn = false;  // Created by BEGIN (vs statement/implicit).
    std::set<std::string> involved;  // Fragments with writes.
    pool::ProcessId coordinator = pool::kNoProcess;  // Statement-scoped.
  };

  /// One scatter/await-all interaction with a set of OFMs.
  struct Multicast {
    size_t expected = 0;
    size_t received = 0;
    Status first_error;
    uint64_t affected = 0;
    bool done_called = false;
    sim::EventId timeout_event = 0;
    std::function<void(Multicast&)> done;
  };

  void HandleClientStatement(const pool::Mail& mail);
  void HandleLockBatch(const pool::Mail& mail);
  void HandleStatementDone(const pool::Mail& mail);
  void HandleWriteReply(const pool::Mail& mail);
  void HandleTxnControlReply(const pool::Mail& mail);
  void HandleDecisionRequest(const pool::Mail& mail);
  void HandleOpTimeout(const pool::Mail& mail);

  void SpawnCoordinator(const std::shared_ptr<ClientStatement>& stmt,
                        pool::ProcessId client);
  void ExecuteDdl(const sql::BoundStatement& bound,
                  const std::shared_ptr<ClientStatement>& stmt,
                  pool::ProcessId client);
  void ExecuteWrite(std::shared_ptr<sql::BoundStatement> bound,
                    const std::shared_ptr<ClientStatement>& stmt,
                    pool::ProcessId client);
  void ExecuteTxnControl(const sql::BoundStatement& bound,
                         const std::shared_ptr<ClientStatement>& stmt,
                         pool::ProcessId client);
  /// CHECKPOINT: every fragment snapshots and truncates its WAL.
  void ExecuteCheckpoint(const std::shared_ptr<ClientStatement>& stmt,
                         pool::ProcessId client);

  /// Acquires X locks on `resources` one by one, then calls `then` with
  /// OK or the deadlock abort status.
  void AcquireExclusive(exec::TxnId txn, std::vector<std::string> resources,
                        size_t index, std::function<void(Status)> then);

  /// Two-phase commit over `txn`'s involved fragments, then release +
  /// `then(decision_status)`.
  void RunTwoPhaseCommit(exec::TxnId txn, std::function<void(Status)> then);
  /// Aborts `txn` everywhere, releases locks, then `then`.
  void AbortEverywhere(exec::TxnId txn, std::function<void(Status)> then);

  void ReplyToClient(pool::ProcessId client, uint64_t request_id,
                     Status status, uint64_t affected, exec::TxnId txn);

  /// Sends `kind` to the OFMs of `fragments` and runs `done` when all
  /// replied (or the op times out with kUnavailable).
  template <typename Request>
  void MulticastToFragments(const std::vector<std::string>& fragments,
                            const char* kind,
                            std::function<std::shared_ptr<Request>(uint64_t)>
                                make_request,
                            std::function<void(Multicast&)> done);

  StatusOr<pool::ProcessId> OfmOf(const std::string& fragment) const;
  /// Fragments of `table` possibly matching `where` (pruned via the
  /// fragmentation key when the predicate pins it to one value).
  StatusOr<std::vector<std::string>> TargetFragments(
      const std::string& table, const algebra::Expr* where) const;
  void UpdateRowCount(const std::string& fragment, int64_t delta);

  exec::TxnId NewTxn(bool explicit_txn);
  void FinishMulticast(uint64_t batch_id, Multicast& batch);

  /// Null-safe counter bump (registry may be absent).
  static void Inc(obs::Counter* c, uint64_t delta = 1) {
    if (c != nullptr) c->Increment(delta);
  }

  Config config_;
  DataDictionary dictionary_;
  LockManager locks_;
  Stats stats_;

  // Cached registry counters mirroring Stats (null without a registry).
  obs::Counter* m_statements_ = nullptr;
  obs::Counter* m_selects_ = nullptr;
  obs::Counter* m_txns_begun_ = nullptr;
  obs::Counter* m_txns_committed_ = nullptr;
  obs::Counter* m_txns_aborted_ = nullptr;
  obs::Counter* m_deadlock_aborts_ = nullptr;
  obs::Counter* m_write_ops_ = nullptr;
  obs::Counter* m_2pc_rounds_ = nullptr;

  exec::TxnId next_txn_ = 1;
  std::map<exec::TxnId, TxnState> txns_;
  std::map<exec::TxnId, bool> decisions_;  // 2PC outcomes, for recovery.

  uint64_t next_request_id_ = 1;
  uint64_t next_batch_id_ = 1;
  std::map<uint64_t, Multicast> batches_;
  std::map<uint64_t, uint64_t> request_batch_;  // request id -> batch id.

  size_t coordinator_cursor_ = 0;
  size_t placement_cursor_ = 0;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_GDH_PROCESS_H_
