#ifndef PRISMA_GDH_GDH_PROCESS_H_
#define PRISMA_GDH_GDH_PROCESS_H_

#include <any>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/transitive_closure.h"
#include "gdh/data_dictionary.h"
#include "gdh/lock_manager.h"
#include "gdh/messages.h"
#include "gdh/optimizer.h"
#include "gdh/pe_registry.h"
#include "gdh/plan_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pool/owned.h"
#include "pool/runtime.h"
#include "sql/binder.h"
#include "storage/memory_tracker.h"
#include "storage/stable_store.h"

namespace prisma::gdh {

/// How the data-allocation manager places fragments on PEs.
enum class PlacementPolicy : uint8_t {
  /// Fragment i of every table lands on the i-th fragment PE, so equal
  /// fragment indexes of co-partitioned tables share a PE.
  kAligned,
  /// Fragments take consecutive PEs from a global cursor (spreads load,
  /// destroys co-location) — the E9 contrast.
  kRoundRobin,
};

/// The Global Data Handler (§2.2): data dictionary, query optimizer
/// configuration, transaction manager, concurrency-control unit, recovery
/// coordinator and data-allocation manager, running as one POOL-X process
/// (conventionally on PE 0). SELECTs are delegated to per-query
/// coordinator processes; DDL, DML and transaction control are handled
/// here.
///
/// GDH<->OFM messaging tolerates a faulty interconnect: every request is
/// retransmitted with capped exponential backoff until it is answered or
/// its retry budget runs out, at which point the operation degrades to a
/// typed kUnavailable instead of hanging. Commits follow presumed-abort
/// 2PC: only commit decisions are forced to the GDH's stable store, so a
/// restarted GDH (or an inquiring OFM) resolves in-doubt participants
/// correctly while aborts need no log record at all.
class GdhProcess : public pool::Process {
 public:
  struct PeResources {
    storage::MemoryTracker* memory = nullptr;
    storage::StableStore* stable = nullptr;
  };
  struct Config {
    /// PEs eligible to host fragments (the allocation pool).
    std::vector<net::NodeId> fragment_pes;
    /// PEs eligible to host per-query coordinators.
    std::vector<net::NodeId> coordinator_pes;
    std::map<net::NodeId, PeResources> resources;
    pool::CostModel costs;
    OptimizerRules rules;
    exec::ExprMode expr_mode = exec::ExprMode::kCompiled;
    /// Machine-default execution mode (row-at-a-time or vectorized);
    /// statements may override it per query (ClientStatement::exec_mode).
    exec::ExecMode exec_mode = exec::ExecMode::kRow;
    /// Base-fragment OFM flavour (kQueryOnly disables durability — E7).
    exec::OfmType base_ofm_type = exec::OfmType::kFull;
    PlacementPolicy placement = PlacementPolicy::kAligned;
    /// Place each permanent fragment on two distinct PEs (DESIGN.md §13):
    /// the data-allocation manager pairs every fragment with a backup on
    /// the next fragment PE, writes 2PC to both replicas, and reads fail
    /// over to the surviving replica when one PE is down. Requires at
    /// least two fragment PEs and kFull base OFMs.
    bool replicate_fragments = false;
    /// Directory of co-located fragments for distributed joins (owned by
    /// the machine; may be null to disable co-located execution).
    PeLocalRegistry* registry = nullptr;
    /// Machine-wide shared plan cache (owned by the machine; may be null
    /// to plan every statement from scratch). The GDH invalidates it on
    /// DDL, replica failover and resync cutover; coordinators probe and
    /// fill it (DESIGN.md §15.4).
    PlanCache* plan_cache = nullptr;
    /// Streaming exchange framing, handed to every query coordinator:
    /// max tuples per batch and batches in flight per channel.
    uint64_t exchange_batch_rows = 64;
    uint64_t exchange_credit_window = 4;
    /// Route PRISMAlog linear recursion over fragmented relations to the
    /// distributed fixpoint (DESIGN.md §11), with this join strategy.
    bool distributed_fixpoint = true;
    exec::TcAlgorithm fixpoint_algorithm = exec::TcAlgorithm::kSeminaive;
    /// First retransmission delay of an unanswered OFM request; doubles
    /// per attempt up to rpc_backoff_cap_ns.
    sim::SimTime rpc_timeout_ns = 10 * sim::kNanosPerSecond;
    sim::SimTime rpc_backoff_cap_ns = 10 * sim::kNanosPerSecond;
    /// Send attempts (first send included) before an RPC degrades to
    /// kUnavailable. Decision-phase RPCs get extra headroom on top.
    int rpc_attempts = 6;
    sim::SimTime query_timeout_ns = 30 * sim::kNanosPerSecond;
    /// Coordinators retransmit stmt_done at this period until reaped
    /// (0 disables — the fault-free configuration).
    sim::SimTime stmt_done_resend_ns = 0;
    /// The GDH probes spawned coordinators at this period and fails their
    /// statement with kUnavailable if the process died (0 disables).
    sim::SimTime coord_check_ns = 0;
    /// Observability sinks (both may be null: no instrumentation). They
    /// are forwarded to every OFM process and query coordinator spawned.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  explicit GdhProcess(Config config);

  void OnStart() override;
  void OnMail(const pool::Mail& mail) override;

  std::string debug_name() const override { return "gdh"; }

  // --- Control plane, used by core::PrismaDb and tests between events ---

  DataDictionary& dictionary() { return *dictionary_; }
  const LockManager& locks() const { return *locks_; }

  /// Kills the OFM process of one fragment (simulated PE crash).
  Status CrashFragment(const std::string& table, int fragment);
  /// Spawns a replacement OFM that recovers from stable storage and
  /// resolves in-doubt transactions with this coordinator. Active
  /// transactions that had written to the fragment are doomed: their
  /// unprepared writes died with the old process, so they must abort.
  Status RecoverFragment(const std::string& table, int fragment);
  /// Recovers every dead fragment placed on `pe` (PE restart).
  Status RecoverPe(net::NodeId pe);

  /// Logged commit decisions not yet fully acknowledged (tests).
  const std::set<exec::TxnId>& committed_decisions() const {
    return *committed_;
  }

  /// Next transaction id to hand out (tests: id-reuse after restart).
  exec::TxnId next_txn() const { return next_txn_; }

  struct Stats {
    uint64_t statements = 0;
    uint64_t selects_spawned = 0;
    uint64_t txns_begun = 0;
    uint64_t txns_committed = 0;
    uint64_t txns_aborted = 0;
    uint64_t deadlock_aborts = 0;
    uint64_t write_ops_sent = 0;
    /// Hardened-RPC outcomes.
    uint64_t rpc_retries = 0;    // Retransmissions sent.
    uint64_t rpc_failures = 0;   // Requests degraded to kUnavailable.
    uint64_t dup_replies = 0;    // Replies for already-settled requests.
    uint64_t txns_doomed = 0;    // Doomed by a participant's crash.
    uint64_t coords_reaped = 0;  // Dead coordinators detected.
    /// Decision inquiries withheld because the transaction was still being
    /// decided (answered on the inquirer's next retry).
    uint64_t decisions_deferred = 0;
    /// Replication (DESIGN.md §13).
    uint64_t failovers = 0;          // Primary role moved to the peer.
    uint64_t stale_marks = 0;        // Replicas shed from the write set.
    uint64_t resyncs_started = 0;
    uint64_t resyncs_completed = 0;
    uint64_t resyncs_aborted = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Coordinator-side 2PC lifecycle of one transaction. Terminal phases
  /// are assigned just before the TxnState is erased, so the declared
  /// machine covers the full lifetime.
  ///
  /// Transition table (D7): every assignment site carries a matching
  /// PRISMA_TRANSITION annotation; the lint cross-checks both directions.
  /// PRISMA_STATE_MACHINE(TxnPhase: init->kActive, kActive->kPreparing,
  ///                      kActive->kAborting, kActive->kCommitted,
  ///                      kActive->kAborted, kPreparing->kCommitting,
  ///                      kPreparing->kAborting, kCommitting->kCommitted,
  ///                      kAborting->kAborted)
  enum class TxnPhase : uint8_t {
    kActive,      // Accepting statements; nothing globally decided.
    kPreparing,   // Phase 1 prepare round in flight.
    kCommitting,  // Decision logged commit; phase 2 in flight.
    kAborting,    // Abort round in flight (vetoed, doomed, or explicit).
    kCommitted,   // Terminal: outcome surfaced as OK.
    kAborted,     // Terminal: outcome surfaced as an abort.
  };

  // Transaction bookkeeping.
  struct TxnState {
    bool explicit_txn = false;  // Created by BEGIN (vs statement/implicit).
    std::set<std::string> involved;  // Fragments with writes.
    pool::ProcessId coordinator = pool::kNoProcess;  // Statement-scoped.
    /// A fragment this transaction wrote to was respawned: the writes are
    /// gone, so commit must be refused.
    bool doomed = false;
    // PRISMA_TRANSITION(init, kActive, every transaction starts active)
    TxnPhase phase = TxnPhase::kActive;
  };

  /// One scatter/await-all interaction with a set of OFMs. Completion is
  /// guaranteed: every member request either gets a reply or exhausts its
  /// retry budget and is settled as kUnavailable.
  struct Multicast {
    size_t expected = 0;
    size_t received = 0;
    Status first_error;
    uint64_t affected = 0;
    bool done_called = false;
    std::function<void(Multicast&)> done;
  };

  /// An unanswered request to an OFM, retransmitted on a timer.
  struct PendingRpc {
    /// Fragment whose OFM is the target; the pid is re-resolved on every
    /// retry so retransmissions chase a respawned process.
    std::string fragment;
    std::string kind;
    std::any body;
    int64_t size_bits = kControlBits;
    int attempts = 1;
    int max_attempts = 1;
    sim::SimTime delay = 0;  // Next retransmission delay.
    sim::EventId timer = 0;
  };

  /// A spawned query coordinator being supervised.
  struct CoordWatch {
    pool::ProcessId client = pool::kNoProcess;
    uint64_t request_id = 0;
    exec::TxnId lock_txn = exec::kAutoCommit;
    net::NodeId pe = 0;
    sim::EventId timer = 0;
  };

  /// Shared accounting of one logical write scattered to both replicas of
  /// a fragment: exactly one of the two member replies contributes the
  /// affected-row count and the dictionary row delta, whichever lands (or
  /// benignly settles) first — so statistics stay single-copy no matter
  /// which replica survives.
  struct DualWrite {
    bool counted = false;
  };

  /// One in-flight resync of a stale replica (DESIGN.md §13), coordinated
  /// here: phase A asks the surviving replica to bulk-copy its committed
  /// snapshot and stream WAL-delta rounds into a fresh resync-mode OFM;
  /// phase B repeats under an exclusive lock on the fragment (a cutover
  /// transaction), shipping the final delta 2PC-consistently.
  struct ResyncState {
    std::string table;
    int fragment = 0;
    int replica = 0;  // The replica being rebuilt.
    uint64_t resync_id = 0;
    uint64_t request_id = 0;  // Current phase's RPC.
    exec::TxnId cutover_txn = exec::kAutoCommit;
  };

  void HandleClientStatement(const pool::Mail& mail);
  void HandleLockBatch(const pool::Mail& mail);
  void HandleStatementDone(const pool::Mail& mail);
  void HandleWriteReply(const pool::Mail& mail);
  void HandleTxnControlReply(const pool::Mail& mail);
  void HandleDecisionRequest(const pool::Mail& mail);
  void HandleRpcTimeout(const pool::Mail& mail);
  void HandleCoordCheck(const pool::Mail& mail);
  void HandleResyncReply(const pool::Mail& mail);

  void SpawnCoordinator(const std::shared_ptr<ClientStatement>& stmt,
                        pool::ProcessId client);
  void ExecuteDdl(const sql::BoundStatement& bound,
                  const std::shared_ptr<ClientStatement>& stmt,
                  pool::ProcessId client);
  void ExecuteWrite(std::shared_ptr<sql::BoundStatement> bound,
                    const std::shared_ptr<ClientStatement>& stmt,
                    pool::ProcessId client);
  void ExecuteTxnControl(const sql::BoundStatement& bound,
                         const std::shared_ptr<ClientStatement>& stmt,
                         pool::ProcessId client);
  /// CHECKPOINT: every fragment snapshots and truncates its WAL.
  void ExecuteCheckpoint(const std::shared_ptr<ClientStatement>& stmt,
                         pool::ProcessId client);

  /// Acquires X locks on `resources` one by one, then calls `then` with
  /// OK or the deadlock abort status.
  void AcquireExclusive(exec::TxnId txn, std::vector<std::string> resources,
                        size_t index, std::function<void(Status)> then);

  /// Presumed-abort two-phase commit over `txn`'s involved fragments,
  /// then release + `then(decision_status)`.
  void RunTwoPhaseCommit(exec::TxnId txn, std::function<void(Status)> then);
  /// Aborts `txn` everywhere, releases locks, then `then`.
  void AbortEverywhere(exec::TxnId txn, std::function<void(Status)> then);

  void ReplyToClient(pool::ProcessId client, uint64_t request_id,
                     Status status, uint64_t affected, exec::TxnId txn);

  // ----------------------------------------------------- Hardened RPCs

  /// Registers the request under `batch_id`, sends it to `fragment`'s OFM
  /// and arms the retransmission timer. A currently unresolvable target
  /// (crashed fragment) is retried like a lost message.
  void SendRpc(uint64_t request_id, uint64_t batch_id, std::string fragment,
               const char* kind, std::any body, int64_t size_bits,
               int max_attempts);
  /// Cancels the retransmission state of an answered request; false if
  /// the request was already settled (duplicate reply).
  bool SettleRpc(uint64_t request_id);
  /// Feeds one settled member (reply or failure) into its batch.
  void AccountBatchMember(uint64_t request_id, const Status& status,
                          uint64_t affected);

  /// Marks active transactions that wrote to `fragment` as doomed.
  void DoomTxnsInvolving(const std::string& fragment);

  /// Remembers a write RPC that degraded to kUnavailable, so a late reply
  /// (the OFM did execute it) still feeds the row-count statistics.
  void NoteDegradedWrite(uint64_t request_id);

  /// How long OFMs must keep dedup state (cached replies, terminated-txn
  /// records): past the worst-case sender retransmission window, so no
  /// entry is dropped while a duplicate can still arrive.
  sim::SimTime DedupRetentionNs() const;

  // ------------------------------------------- Presumed-abort decisions

  storage::StableStore* DecisionStore() const;
  /// Forces "C <txn>" to the decision log before phase 2 of a commit.
  void LogCommitDecision(exec::TxnId txn);
  /// Forces "E <txn>" once every participant acknowledged the commit; the
  /// decision can then be forgotten.
  void LogCommitEnd(exec::TxnId txn);
  /// Rebuilds committed_ (and next_txn_) from the decision log.
  void ReplayDecisionLog();

  StatusOr<pool::ProcessId> OfmOf(const std::string& fragment) const;
  /// Fragments of `table` possibly matching `where` (pruned via the
  /// fragmentation key when the predicate pins it to one value).
  StatusOr<std::vector<std::string>> TargetFragments(
      const std::string& table, const algebra::Expr* where) const;
  void UpdateRowCount(const std::string& fragment, int64_t delta);

  // ------------------------------------------- Replication (DESIGN.md §13)

  /// Resolves a replica name ("emp#3" or "emp#3~b") to its FragmentInfo
  /// and replica index; null if unknown.
  FragmentInfo* FindFragment(const std::string& replica_name, int* replica);
  /// Replica names a write to `frag` must reach: every in-sync replica,
  /// after shedding dead ones whose peer can carry on alone.
  std::vector<std::string> WriteTargets(FragmentInfo& frag);
  /// Sheds replica `dead` from the write set (marks it kStale and flips
  /// the primary role to the peer if needed). Only succeeds when the peer
  /// is in-sync and alive — the failover decision rule: never shed the
  /// last healthy copy. Returns true if the replica is (now) shed.
  bool TryFailover(FragmentInfo& frag, int dead);
  /// `txn`'s involved replica names minus shed (non-in-sync) replicas:
  /// what 2PC phases actually need to reach.
  std::vector<std::string> ActiveInvolved(const TxnState& state);
  /// Respawns one dead replica: WAL recovery for in-sync replicas (plus
  /// dooming transactions that lost writes with the old process), a fresh
  /// resync from the peer for stale ones (their WAL is behind the
  /// survivor and cannot be trusted).
  Status RecoverReplica(const std::string& table, TableInfo* info,
                        int fragment, int replica);
  /// Starts a resync for a stale replica of the fragment if its peer is
  /// alive and in-sync; no-op otherwise (retried from recovery events).
  void MaybeStartResync(const std::string& table, int fragment);
  void StartResync(const std::string& table, int fragment, int replica);
  /// Advances a resync after a phase RPC settles: phase A success leads
  /// into the cutover lock + phase B; phase B success marks the replica
  /// in-sync; any failure aborts the attempt.
  void OnResyncPhaseDone(uint64_t resync_id, bool cutover,
                         const Status& status);
  void SendResyncPhase(uint64_t resync_id, bool cutover);
  /// Kills the resync target, marks the replica stale again and releases
  /// the cutover transaction, then retries if the source is healthy.
  void AbortResync(uint64_t resync_id);
  /// Spawns one replica OFM process.
  pool::ProcessId SpawnReplicaOfm(const TableInfo& info,
                                  const std::string& replica_name,
                                  net::NodeId pe, bool recover,
                                  uint64_t resync_id);
  /// Typed-unavailability accounting (degradation reporting): bumps the
  /// labeled query.unavailable{pe,table} counter.
  void CountUnavailable(net::NodeId pe, const std::string& table);

  exec::TxnId NewTxn(bool explicit_txn);
  void FinishMulticast(uint64_t batch_id, Multicast& batch);

  /// Drops supervision and cached lock replies of a finished coordinator.
  void ForgetCoordinator(pool::ProcessId coordinator);

  /// Null-safe counter bump (registry may be absent).
  static void Inc(obs::Counter* c, uint64_t delta = 1) {
    if (c != nullptr) c->Increment(delta);
  }
  /// Registers fault-path counters on first use so fault-free metric
  /// dumps are unchanged.
  obs::Counter* LazyCounter(obs::Counter** slot, const char* name);

  Config config_;
  // Process-local state below is wrapped in the ownership checker: only
  // this process's handlers (or control-plane code between events) may
  // touch it; see pool/owned.h.
  pool::Owned<DataDictionary> dictionary_;
  pool::Owned<LockManager> locks_;
  Stats stats_;

  // Cached registry counters mirroring Stats (null without a registry).
  obs::Counter* m_statements_ = nullptr;
  obs::Counter* m_selects_ = nullptr;
  obs::Counter* m_txns_begun_ = nullptr;
  obs::Counter* m_txns_committed_ = nullptr;
  obs::Counter* m_txns_aborted_ = nullptr;
  obs::Counter* m_deadlock_aborts_ = nullptr;
  obs::Counter* m_write_ops_ = nullptr;
  obs::Counter* m_2pc_rounds_ = nullptr;
  // Fault-path counters, registered lazily on first event.
  obs::Counter* m_rpc_retries_ = nullptr;
  obs::Counter* m_rpc_failures_ = nullptr;
  obs::Counter* m_dup_replies_ = nullptr;
  obs::Counter* m_txns_doomed_ = nullptr;
  obs::Counter* m_coords_reaped_ = nullptr;
  obs::Counter* m_decisions_deferred_ = nullptr;
  // Replication counters (replica.*), registered lazily so fault-free
  // unreplicated dumps are unchanged.
  obs::Counter* m_failovers_ = nullptr;
  obs::Counter* m_stale_marks_ = nullptr;
  obs::Counter* m_resyncs_started_ = nullptr;
  obs::Counter* m_resyncs_completed_ = nullptr;
  obs::Counter* m_resyncs_aborted_ = nullptr;
  obs::Counter* m_resync_bulk_tuples_ = nullptr;
  obs::Counter* m_resync_delta_records_ = nullptr;
  obs::Counter* m_resync_rounds_ = nullptr;
  obs::Counter* m_resync_wire_bits_ = nullptr;

  exec::TxnId next_txn_ = 1;
  /// Ids below this are covered by a persisted reservation record, so a
  /// restarted GDH never re-hands out an id this incarnation allocated
  /// (aborted and read-only transactions leave no decision record).
  exec::TxnId txn_id_hwm_ = 1;
  pool::Owned<std::map<exec::TxnId, TxnState>> txns_;
  /// Commit decisions whose end record has not been logged yet. Aborts
  /// are never recorded (presumed abort).
  pool::Owned<std::set<exec::TxnId>> committed_;

  uint64_t next_request_id_ = 1;
  uint64_t next_batch_id_ = 1;
  std::map<uint64_t, Multicast> batches_;
  std::map<uint64_t, uint64_t> request_batch_;  // request id -> batch id.
  // Settlement contract (D6): replies settle via SettleRpc, retry-budget
  // exhaustion via HandleRpcTimeout, and a dead replica's in-flight RPCs
  // are swept onto the survivor by TryFailover.
  // PRISMA_SETTLES(rpcs_: success=SettleRpc, exhaustion=HandleRpcTimeout,
  //                shed=TryFailover)
  std::map<uint64_t, PendingRpc> rpcs_;         // request id -> retry state.
  /// Write requests settled as kUnavailable whose late reply has not
  /// arrived (FIFO-capped; only row-count statistics depend on it).
  static constexpr size_t kDegradedWriteCap = 1024;
  std::set<uint64_t> degraded_writes_;
  std::deque<uint64_t> degraded_writes_order_;

  /// Dual-replica write accounting, keyed by each member's request id
  /// (both ids of a logical op share one entry). Erased as members settle.
  std::map<uint64_t, std::shared_ptr<DualWrite>> dual_writes_;
  /// Active resyncs by resync id.
  std::map<uint64_t, ResyncState> resyncs_;
  uint64_t next_resync_id_ = 1;

  /// Spawned coordinators under supervision (coord_check_ns > 0).
  std::map<pool::ProcessId, CoordWatch> coords_;
  /// Lock-batch dedup: (requester, request_id) -> reply once computed
  /// (null while acquisition is in flight).
  std::map<std::pair<pool::ProcessId, uint64_t>,
           std::shared_ptr<LockBatchReply>>
      lock_replies_;

  size_t coordinator_cursor_ = 0;
  size_t placement_cursor_ = 0;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_GDH_PROCESS_H_
