#include "gdh/query_process.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "gdh/exchange_process.h"
#include "gdh/fixpoint_process.h"
#include "gdh/olap_process.h"
#include "prismalog/engine.h"
#include "prismalog/parser.h"
#include "sql/binder.h"
#include "common/str_util.h"
#include "sql/normalize.h"
#include "sql/parser.h"

namespace prisma::gdh {

namespace {

/// Structural key of a local part, insensitive to schema qualifiers
/// ("a.cid" vs "b.cid") so that self-join sides compare equal: node kinds
/// plus positional predicate/projection text plus scan column types.
std::string PartShapeKey(const algebra::Plan& plan) {
  std::string out;
  const algebra::Plan* node = &plan;
  while (true) {
    out += algebra::PlanKindName(node->kind());
    if (node->kind() == algebra::PlanKind::kScan) {
      for (const Column& c : node->schema().columns()) {
        out += ':';
        out += DataTypeName(c.type);
      }
      return out;
    }
    if (node->kind() == algebra::PlanKind::kSelect) {
      out += '[';
      out += static_cast<const algebra::SelectPlan*>(node)
                 ->predicate()
                 .ToString();
      out += ']';
    } else if (node->kind() == algebra::PlanKind::kProject) {
      out += '[';
      for (const auto& e :
           static_cast<const algebra::ProjectPlan*>(node)->exprs()) {
        out += e->ToString();
        out += ',';
      }
      out += ']';
    } else if (node->kind() == algebra::PlanKind::kAggregate) {
      out += '[';
      out += node->ToString();
      out += ']';
    }
    out += '/';
    node = node->child();
  }
}

}  // namespace

QueryProcess::QueryProcess(Config config) : config_(std::move(config)) {}

void QueryProcess::OnStart() {
  start_time_ = runtime()->simulator()->now();
  // Guard against lost fragments / crashed OFMs.
  timeout_event_ = SendSelfAfter(config_.timeout_ns, kMailQueryTimeout);
  if (config_.statement->is_prismalog) {
    StartPrismalog();
  } else {
    StartSql();
  }
}

// ----------------------------------------------------------- Hardened RPC

void QueryProcess::SendRpc(uint64_t request_id, const char* kind,
                           std::any body, int64_t size_bits,
                           size_t work_index) {
  PendingRpc rpc;
  rpc.kind = kind;
  rpc.body = std::move(body);
  rpc.size_bits = size_bits;
  rpc.work_index = work_index;
  rpc.max_attempts = config_.rpc_attempts;
  rpc.delay = config_.rpc_timeout_ns;
  const pool::ProcessId target = ResolveTarget(work_index);
  if (target != pool::kNoProcess) {
    SendMail(target, rpc.kind, rpc.body, rpc.size_bits);
  }
  rpc.timer = SendSelfAfter(rpc.delay, kMailRpcTimeout,
                            std::make_shared<uint64_t>(request_id));
  (*rpcs_)[request_id] = std::move(rpc);
}

bool QueryProcess::SettleRpc(uint64_t request_id) {
  auto it = rpcs_->find(request_id);
  if (it == rpcs_->end()) return false;
  runtime()->simulator()->Cancel(it->second.timer);
  rpcs_->erase(it);
  return true;
}

pool::ProcessId QueryProcess::ResolveTarget(size_t work_index) const {
  if (work_index == SIZE_MAX) return config_.gdh;
  const FragmentWork& w = (*work_)[work_index];
  // Fragment names are stable across respawns, pids are not: resolve
  // through the dictionary so retransmissions chase a replacement OFM.
  auto info = config_.dictionary->GetTable(w.table);
  if (!info.ok()) return w.ofm;
  for (const FragmentInfo& frag : (*info)->fragments) {
    if (frag.name == w.fragment) return frag.ReplicaOfm(w.replica);
  }
  return w.ofm;
}

int QueryProcess::ChooseReadReplica(const FragmentInfo& frag) const {
  if (!frag.replicated) return 0;
  const int primary = frag.primary_replica;
  if (frag.replica_state(primary) == ReplicaState::kInSync &&
      runtime()->IsAlive(frag.ReplicaOfm(primary))) {
    return primary;
  }
  const int peer = 1 - primary;
  if (frag.replica_state(peer) == ReplicaState::kInSync &&
      runtime()->IsAlive(frag.ReplicaOfm(peer))) {
    return peer;
  }
  // Both replicas down or stale: address the primary and let the RPC
  // layer degrade to a typed Unavailable — never a wrong answer.
  return primary;
}

std::string QueryProcess::DescribeWorkTarget(const FragmentWork& w,
                                             net::NodeId* pe) const {
  std::string name = w.fragment;
  auto info = config_.dictionary->GetTable(w.table);
  if (info.ok()) {
    for (const FragmentInfo& frag : (*info)->fragments) {
      if (frag.name != w.fragment) continue;
      name = frag.ReplicaName(w.replica);
      *pe = frag.ReplicaPe(w.replica);
      break;
    }
  }
  return "fragment " + name + " on PE " + std::to_string(*pe);
}

void QueryProcess::CountUnavailable(net::NodeId pe, const std::string& table) {
  // Registered only when a query actually degrades, so fault-free metric
  // dumps are unchanged.
  if (config_.metrics == nullptr) return;
  config_.metrics
      ->GetCounter("query.unavailable",
                   {{"pe", std::to_string(pe)}, {"table", table}})
      ->Increment();
}

void QueryProcess::MaybeFailover(size_t work_index, PendingRpc& rpc) {
  FragmentWork& w = (*work_)[work_index];
  auto info = config_.dictionary->GetTable(w.table);
  if (!info.ok()) return;
  const FragmentInfo* frag = nullptr;
  for (const FragmentInfo& f : (*info)->fragments) {
    if (f.name == w.fragment) {
      frag = &f;
      break;
    }
  }
  if (frag == nullptr || !frag->replicated) return;
  const int choice = ChooseReadReplica(*frag);
  if (choice == w.replica) return;
  // Crash failover: rebuild the request around the surviving replica,
  // renaming the plan's scans. The request id is kept — a late reply
  // from the old target settles the same RPC, and both replicas answer
  // identically (the statement's shared lock on the base fragment name
  // blocks new commits machine-wide).
  const std::string old_name = frag->ReplicaName(w.replica);
  const std::string new_name = frag->ReplicaName(choice);
  std::unique_ptr<algebra::Plan> plan =
      CloneWithScanRenamed(*w.plan, old_name, new_name);
  if (!w.second_fragment.empty()) {
    auto second = config_.dictionary->GetTable(w.second_table);
    if (second.ok()) {
      for (const FragmentInfo& f : (*second)->fragments) {
        if (f.name != w.second_fragment) continue;
        // The co-located partner moves with the anchor: aligned
        // placement puts equal replica slots on equal PEs.
        plan = CloneWithScanRenamed(*plan, f.ReplicaName(w.replica),
                                    f.ReplicaName(choice));
        break;
      }
    }
  }
  w.plan = std::shared_ptr<const algebra::Plan>(std::move(plan));
  if (std::string_view(rpc.kind) == kMailShufflePlan && w.shuffle != nullptr) {
    auto request = std::make_shared<ShufflePlanRequest>(*w.shuffle);
    request->plan = w.plan;
    w.shuffle = request;
    rpc.body = request;
  } else if (std::string_view(rpc.kind) == kMailExecPlan) {
    auto old_request =
        std::any_cast<std::shared_ptr<ExecPlanRequest>>(rpc.body);
    auto request = std::make_shared<ExecPlanRequest>(*old_request);
    request->plan = w.plan;
    rpc.body = request;
  } else {
    return;  // Not a fragment read; nothing to re-aim.
  }
  w.replica = choice;
  w.ofm = frag->ReplicaOfm(choice);
}

void QueryProcess::HandleRpcTimeout(const pool::Mail& mail) {
  if (finished_) return;
  const uint64_t request_id =
      *std::any_cast<std::shared_ptr<uint64_t>>(mail.body);
  auto it = rpcs_->find(request_id);
  if (it == rpcs_->end()) return;  // Answered in the meantime.
  PendingRpc& rpc = it->second;
  // GDH-bound RPCs are never abandoned: the GDH lives on PE 0, which no
  // fault plan crashes, and it answers lock requests only once granted —
  // so a quiet GDH means a queued lock behind a failover-stalled writer,
  // not a crash. Keep retransmitting; the query watchdog bounds the wait.
  if (rpc.attempts >= rpc.max_attempts && rpc.work_index != SIZE_MAX) {
    // Degradation report (DESIGN.md §13): name the unreachable replica
    // and its PE, and count the failure under query.unavailable{pe,table}.
    std::string target = "the GDH";
    net::NodeId target_pe = 0;
    std::string table = "(gdh)";
    if (rpc.work_index != SIZE_MAX) {
      const FragmentWork& w = (*work_)[rpc.work_index];
      table = w.table;
      target = DescribeWorkTarget(w, &target_pe);
    }
    rpcs_->erase(it);
    CountUnavailable(target_pe, table);
    Reply(UnavailableError(target + " did not answer after repeated "
                           "retransmissions (crashed PE?)"),
          Schema(), nullptr);
    return;
  }
  ++rpc.attempts;
  // Crash failover happens at retransmission time: if the addressed
  // replica died after scatter, re-aim at the surviving one first.
  if (rpc.work_index != SIZE_MAX) MaybeFailover(rpc.work_index, rpc);
  const pool::ProcessId target = ResolveTarget(rpc.work_index);
  if (target != pool::kNoProcess) {
    SendMail(target, rpc.kind, rpc.body, rpc.size_bits);
  }
  rpc.delay = std::min(rpc.delay * 2, config_.rpc_backoff_cap_ns);
  rpc.timer = SendSelfAfter(rpc.delay, kMailRpcTimeout,
                            std::make_shared<uint64_t>(request_id));
}

// ------------------------------------------------------------------ Reply

void QueryProcess::Reply(Status status, Schema schema,
                         std::shared_ptr<std::vector<Tuple>> tuples) {
  if (finished_) return;
  finished_ = true;
  runtime()->simulator()->Cancel(timeout_event_);
  for (auto& [id, rpc] : *rpcs_) {
    runtime()->simulator()->Cancel(rpc.timer);
  }
  rpcs_->clear();
  // Exchange consumers live exactly as long as their statement: killing
  // them here also stops their reply-retransmission timers.
  for (const pool::ProcessId pid : consumer_pids_) {
    runtime()->Kill(pid);
  }
  consumer_pids_.clear();
  const sim::SimTime now = runtime()->simulator()->now();
  if (config_.metrics != nullptr) {
    const obs::Labels q = {
        {"query", std::to_string(config_.statement->request_id)}};
    config_.metrics->GetCounter("query.tuples_gathered", q)
        ->Increment(tuples_gathered_);
    config_.metrics->GetCounter("query.fragments_contacted", q)
        ->Increment(completed_);
    config_.metrics->GetGauge("query.response_ns", q)->Set(now - start_time_);
    config_.metrics->GetGauge("query.last_gather_bits")->Set(gather_bits_);
    if (!olap_work_.empty()) {
      // Wire accounting of the multi-stage OLAP path (DESIGN.md §14.4):
      // shuffle = producer -> merge first transmissions, gather = merge
      // -> coordinator final rows, sample = quantile rows of sort parts.
      config_.metrics->GetCounter("olap.parts", q)
          ->Increment(olap_work_.size());
      config_.metrics->GetCounter("olap.shuffle_bits", q)
          ->Increment(olap_shuffle_bits_);
      config_.metrics->GetCounter("olap.gather_bits", q)
          ->Increment(olap_gather_bits_);
      config_.metrics->GetCounter("olap.sample_rows", q)
          ->Increment(olap_sample_rows_);
      // Unlabeled "last query" figures for benches and tests.
      config_.metrics->GetGauge("olap.last_shuffle_bits")
          ->Set(olap_shuffle_bits_);
      config_.metrics->GetGauge("olap.last_gather_bits")
          ->Set(olap_gather_bits_);
    }
  }
  if (config_.tracer != nullptr && config_.tracer->enabled()) {
    config_.tracer->Span(
        "gdh", config_.statement->is_prismalog ? "prismalog" : "query",
        start_time_, now, pe(), self(), "request",
        std::to_string(config_.statement->request_id));
  }
  auto reply = std::make_shared<ClientReply>();
  reply->request_id = config_.statement->request_id;
  reply->status = std::move(status);
  reply->schema = std::move(schema);
  reply->tuples = std::move(tuples);
  SendMail(config_.client, kMailClientReply, reply, reply->WireBits());
  auto done = std::make_shared<StatementDone>();
  done->txn = config_.lock_txn;
  SendMail(config_.gdh, kMailStatementDone, done, kControlBits);
  if (config_.stmt_done_resend_ns > 0) {
    // The stmt_done may be dropped by a faulty interconnect, leaving the
    // GDH holding this statement's locks forever. Retransmit until the
    // GDH reaps this process (the timer dies with it).
    done_msg_ = done;
    SendSelfAfter(config_.stmt_done_resend_ns, kMailStmtDoneResend);
  }
}

// ------------------------------------------------------------------- SQL

void QueryProcess::StartSql() {
  // Probe the shared plan cache first (DESIGN.md §15.4): a repeated
  // parameterized statement reuses the immutable split plan and skips the
  // per-query parser/optimizer instance entirely. Only plain SELECTs are
  // cached — EXPLAIN [ANALYZE] are diagnostics of the planning work
  // itself, so they always run it.
  PlanCache::Key cache_key;
  bool cacheable = false;
  if (config_.plan_cache != nullptr) {
    auto normalized = sql::NormalizeStatement(config_.statement->text);
    if (normalized.ok() && normalized->fingerprint.rfind("SELECT", 0) == 0) {
      cacheable = true;
      cache_key.fingerprint = std::move(normalized->fingerprint);
      cache_key.params = std::move(normalized->params);
      cache_key.exec_mode = config_.exec_mode;
      ChargeCpu(config_.costs.plan_cache_probe_ns);
      if (auto hit = config_.plan_cache->Lookup(cache_key); hit != nullptr) {
        split_ = hit->split;
        optimizer_report_ = hit->optimizer_report;
        AcquireSelectLocks();
        return;
      }
    }
  }

  // Parsing + optimizing burns this coordinator's PE — the per-query
  // "instance of the parser and optimizer" of §2.2.
  ChargeCpu(config_.costs.optimize_ns);
  auto parsed = sql::ParseSql(config_.statement->text);
  if (!parsed.ok()) {
    Reply(parsed.status(), Schema(), nullptr);
    return;
  }
  explain_ = parsed->explain;
  analyze_ = parsed->analyze;
  auto bound = sql::BindStatement(*parsed, *config_.dictionary);
  if (!bound.ok()) {
    Reply(bound.status(), Schema(), nullptr);
    return;
  }
  if (bound->kind != sql::Statement::Kind::kSelect) {
    Reply(InternalError("query coordinator received non-SELECT"), Schema(),
          nullptr);
    return;
  }

  Optimizer optimizer(config_.dictionary, config_.rules);
  auto optimized =
      optimizer.Optimize(std::move(bound->plan), &optimizer_report_);
  if (!optimized.ok()) {
    Reply(optimized.status(), Schema(), nullptr);
    return;
  }

  OptimizerRules split_rules = config_.rules;
  if (analyze_) {
    // EXPLAIN ANALYZE measures per-fragment operator profiles, which only
    // the plain gather path reports (streamed OLAP stages reply with
    // final rows, no profile); measure the gather-based decomposition.
    split_rules.distributed_olap = false;
  }
  auto split = SplitPlanForFragments(std::move(optimized).value(),
                                     *config_.dictionary, split_rules);
  if (!split.ok()) {
    Reply(split.status(), Schema(), nullptr);
    return;
  }
  split_ = std::make_shared<const DistributedPlan>(std::move(split).value());
  if (cacheable) {
    auto entry = std::make_shared<PlanCache::Entry>();
    entry->split = split_;
    entry->optimizer_report = optimizer_report_;
    config_.plan_cache->Insert(cache_key, std::move(entry));
  }

  if (explain_ && !analyze_) {
    ReplyExplain();
    return;
  }

  AcquireSelectLocks();
}

void QueryProcess::AcquireSelectLocks() {
  // Shared locks on the fragments this statement can actually touch
  // (selections pinning the fragmentation key prune the rest).
  std::set<std::string> resources;
  part_fragments_.clear();
  for (const LocalPart& part : split_->parts) {
    if (part.exchange != nullptr) {
      // Exchange join: every fragment of both inputs is read on its own
      // PE, so lock all of them; the part's fragment list is the anchor
      // table's (one consumer per anchor fragment).
      const TableInfo* anchor = nullptr;
      for (const std::string& table :
           {part.exchange->left_table, part.exchange->right_table}) {
        auto info = config_.dictionary->GetTable(table);
        if (!info.ok()) {
          Reply(info.status(), Schema(), nullptr);
          return;
        }
        for (const FragmentInfo& frag : (*info)->fragments) {
          resources.insert(frag.name);
        }
        if (table == part.exchange->anchor_table) anchor = *info;
      }
      PRISMA_CHECK(anchor != nullptr);
      std::vector<int> all;
      all.reserve(anchor->fragments.size());
      for (size_t f = 0; f < anchor->fragments.size(); ++f) {
        all.push_back(static_cast<int>(f));
      }
      part_fragments_.push_back(std::move(all));
      continue;
    }
    if (part.olap != nullptr) {
      // Multi-stage OLAP part: producers run at every fragment of the
      // table and a merge consumer anchors on each, so lock them all.
      auto info = config_.dictionary->GetTable(part.olap->table);
      if (!info.ok()) {
        Reply(info.status(), Schema(), nullptr);
        return;
      }
      std::vector<int> all;
      all.reserve((*info)->fragments.size());
      for (size_t f = 0; f < (*info)->fragments.size(); ++f) {
        resources.insert((*info)->fragments[f].name);
        all.push_back(static_cast<int>(f));
      }
      part_fragments_.push_back(std::move(all));
      continue;
    }
    auto info = config_.dictionary->GetTable(part.table);
    if (!info.ok()) {
      Reply(info.status(), Schema(), nullptr);
      return;
    }
    std::vector<int> pruned = PruneFragmentsForPart(**info, *part.plan);
    for (const int f : pruned) {
      resources.insert((*info)->fragments[f].name);
    }
    if (!part.second_table.empty()) {
      // Co-located join: the partner's aligned fragments are read too.
      auto second = config_.dictionary->GetTable(part.second_table);
      if (!second.ok()) {
        Reply(second.status(), Schema(), nullptr);
        return;
      }
      for (const int f : pruned) {
        resources.insert((*second)->fragments[f].name);
      }
    }
    part_fragments_.push_back(std::move(pruned));
  }
  RequestLocks({resources.begin(), resources.end()});
}

void QueryProcess::RequestLocks(std::vector<std::string> resources) {
  auto request = std::make_shared<LockBatchRequest>();
  request->request_id = next_request_id_++;
  request->txn = config_.lock_txn;
  request->resources = std::move(resources);
  request->exclusive = false;
  SendRpc(request->request_id, kMailLockBatch, request, kControlBits,
          SIZE_MAX);
}

void QueryProcess::Scatter() {
  // Build the per-fragment work list.
  gathered_->assign(
      is_prismalog_phase_ ? plog_tables_.size() : split_->parts.size(), {});
  duplicate_of_.assign(gathered_->size(), SIZE_MAX);
  part_profiles_.assign(gathered_->size(), std::nullopt);
  work_->clear();
  size_t consumer_replies = 0;
  if (is_prismalog_phase_) {
    for (size_t i = 0; i < plog_tables_.size(); ++i) {
      auto info = config_.dictionary->GetTable(plog_tables_[i]);
      PRISMA_CHECK(info.ok());
      std::shared_ptr<const algebra::Plan> scan =
          algebra::ScanPlan::Create(plog_tables_[i], (*info)->schema);
      for (const FragmentInfo& frag : (*info)->fragments) {
        const int replica = ChooseReadReplica(frag);
        FragmentWork w;
        w.ofm = frag.ReplicaOfm(replica);
        w.plan = std::shared_ptr<const algebra::Plan>(CloneWithScanRenamed(
            *scan, plog_tables_[i], frag.ReplicaName(replica)));
        w.part = i;
        w.table = plog_tables_[i];
        w.fragment = frag.name;
        w.replica = replica;
        work_->push_back(std::move(w));
      }
    }
  } else {
    // Identical parts (common subexpressions, e.g. self-joins) are
    // scattered once and their gathered result shared (§2.4).
    std::map<std::string, size_t> part_shapes;
    duplicate_of_.assign(split_->parts.size(), SIZE_MAX);
    for (size_t i = 0; i < split_->parts.size(); ++i) {
      const LocalPart& part = split_->parts[i];
      if (part.exchange != nullptr) {
        // Exchange parts bypass CSE: their rendered plan is not the
        // executed artifact, and their gather is fed by dedicated
        // consumers rather than a shareable per-fragment scan.
        consumer_replies += ScatterExchangePart(i);
        continue;
      }
      if (part.olap != nullptr) {
        // OLAP parts bypass CSE for the same reason.
        consumer_replies += ScatterOlapPart(i);
        continue;
      }
      if (config_.rules.detect_common_subexpressions) {
        const std::string key = part.table + "\n" + PartShapeKey(*part.plan);
        auto [it, inserted] = part_shapes.try_emplace(key, i);
        if (!inserted) {
          duplicate_of_[i] = it->second;
          continue;
        }
      }
      auto info = config_.dictionary->GetTable(part.table);
      PRISMA_CHECK(info.ok());
      const TableInfo* second = nullptr;
      if (!part.second_table.empty()) {
        auto second_or = config_.dictionary->GetTable(part.second_table);
        PRISMA_CHECK(second_or.ok());
        second = *second_or;
      }
      for (const int f : part_fragments_[i]) {
        const FragmentInfo& frag = (*info)->fragments[f];
        // Read routing: address the fragment's primary replica, or the
        // surviving backup when the primary's PE is down (DESIGN.md §13).
        const int replica = ChooseReadReplica(frag);
        std::unique_ptr<algebra::Plan> local = CloneWithScanRenamed(
            *part.plan, part.table, frag.ReplicaName(replica));
        FragmentWork w;
        if (second != nullptr) {
          // The co-located partner reads the SAME replica slot: aligned
          // placement keeps equal slots of aligned fragments on one PE.
          const FragmentInfo& sfrag = second->fragments[f];
          local = CloneWithScanRenamed(*local, part.second_table,
                                       sfrag.ReplicaName(replica));
          w.second_table = part.second_table;
          w.second_fragment = sfrag.name;
        }
        w.ofm = frag.ReplicaOfm(replica);
        w.plan = std::shared_ptr<const algebra::Plan>(std::move(local));
        w.part = i;
        w.table = part.table;
        w.fragment = frag.name;
        w.replica = replica;
        work_->push_back(std::move(w));
      }
    }
  }
  next_work_ = 0;
  outstanding_ = 0;
  completed_ = 0;
  expected_replies_ = work_->size() + consumer_replies;
  if (expected_replies_ == 0) {
    FinishGather();
    return;
  }
  if (config_.rules.parallel_fragments) {
    // Scatter everything at once — fragment parallelism (§2.2).
    while (next_work_ < work_->size()) SendNextFragmentPlan();
  } else if (!work_->empty()) {
    // Ablation: one fragment at a time.
    SendNextFragmentPlan();
  }
}

size_t QueryProcess::ScatterExchangePart(size_t part_index) {
  const LocalPart& part = split_->parts[part_index];
  const ExchangeJoinSpec& ex = *part.exchange;
  auto anchor_or = config_.dictionary->GetTable(ex.anchor_table);
  auto left_or = config_.dictionary->GetTable(ex.left_table);
  auto right_or = config_.dictionary->GetTable(ex.right_table);
  PRISMA_CHECK(anchor_or.ok() && left_or.ok() && right_or.ok());
  const TableInfo* anchor = *anchor_or;
  const TableInfo* sides[2] = {*left_or, *right_or};
  const std::string side_tables[2] = {ex.left_table, ex.right_table};
  const std::shared_ptr<const algebra::Plan> side_plans[2] = {ex.left_plan,
                                                              ex.right_plan};

  // Statement-unique exchange id: batches of another statement's exchange
  // can never be mistaken for this one's.
  const uint64_t exchange_id = (config_.statement->request_id << 16) |
                               static_cast<uint64_t>(part_index);
  const bool broadcast = ex.strategy == ExchangeStrategy::kBroadcastLeft ||
                         ex.strategy == ExchangeStrategy::kBroadcastRight;

  // One consumer per anchor fragment, co-located with it. Consumers are
  // not RPC targets (nothing is retransmitted *to* them); their replies
  // are counted into the gather via request_part_, and a lost reply is
  // repaired by the consumer's own resend timer.
  std::vector<pool::ProcessId> consumers;
  consumers.reserve(anchor->fragments.size());
  for (size_t c = 0; c < anchor->fragments.size(); ++c) {
    const FragmentInfo& frag = anchor->fragments[c];
    // Read routing: the consumer co-locates with whichever anchor replica
    // currently serves reads, and rescans that replica's fragment.
    const int replica = ChooseReadReplica(frag);
    const std::string anchor_name = frag.ReplicaName(replica);
    ExchangeConsumerProcess::Config cc;
    cc.exchange_id = exchange_id;
    cc.index = c;
    cc.fragment = anchor_name;
    cc.coordinator = self();
    cc.reply_request_id = next_request_id_++;
    for (int s = 0; s < 2; ++s) {
      ExchangeConsumerProcess::SideSpec& spec = s == 0 ? cc.left : cc.right;
      spec.moving = ExchangeSideMoves(ex.strategy, s);
      if (spec.moving) {
        spec.producers = sides[s]->fragments.size();
      } else {
        // The stationary side is the anchor table: this consumer rescans
        // its own co-located fragment.
        spec.local_plan =
            std::shared_ptr<const algebra::Plan>(CloneWithScanRenamed(
                *side_plans[s], side_tables[s], anchor_name));
      }
    }
    cc.build_side = ex.build_side;
    cc.keys = ex.keys;
    cc.predicate = ex.predicate;
    cc.expr_mode = config_.expr_mode;
    cc.exec_mode = config_.exec_mode;
    cc.costs = config_.costs;
    cc.registry = config_.registry;
    cc.credit_window = config_.exchange_credit_window;
    cc.reply_resend_ns = config_.stmt_done_resend_ns;
    cc.metrics = config_.metrics;
    request_part_[cc.reply_request_id] = part_index;
    const pool::ProcessId pid = runtime()->Spawn(
        frag.ReplicaPe(replica),
        std::make_unique<ExchangeConsumerProcess>(std::move(cc)));
    consumer_pids_.push_back(pid);
    consumers.push_back(pid);
  }

  // One producer work entry per fragment of each moving side; these go
  // through the hardened-RPC path like plain fragment plans.
  for (int s = 0; s < 2; ++s) {
    if (!ExchangeSideMoves(ex.strategy, s)) continue;
    for (size_t f = 0; f < sides[s]->fragments.size(); ++f) {
      const FragmentInfo& frag = sides[s]->fragments[f];
      const int replica = ChooseReadReplica(frag);
      auto request = std::make_shared<ShufflePlanRequest>();
      request->request_id = next_request_id_++;
      request->exchange_id = exchange_id;
      request->side = s;
      request->producer = f;
      request->plan =
          std::shared_ptr<const algebra::Plan>(CloneWithScanRenamed(
              *side_plans[s], side_tables[s], frag.ReplicaName(replica)));
      request->mode = broadcast ? ShufflePlanRequest::Mode::kBroadcast
                                : ShufflePlanRequest::Mode::kHash;
      request->partition_column =
          s == 0 ? ex.keys[ex.route_key].first : ex.keys[ex.route_key].second;
      request->consumers = consumers;
      request->batch_rows = config_.exchange_batch_rows;
      request->credit_window = config_.exchange_credit_window;
      request->exec_mode = config_.exec_mode;
      FragmentWork w;
      w.ofm = frag.ReplicaOfm(replica);
      w.plan = request->plan;
      w.part = part_index;
      w.table = side_tables[s];
      w.fragment = frag.name;
      w.replica = replica;
      w.shuffle = request;
      work_->push_back(std::move(w));
    }
  }
  return consumers.size();
}

size_t QueryProcess::ScatterOlapPart(size_t part_index) {
  const LocalPart& part = split_->parts[part_index];
  const OlapSpec& olap = *part.olap;
  auto info_or = config_.dictionary->GetTable(olap.table);
  PRISMA_CHECK(info_or.ok());
  const TableInfo& table = **info_or;
  const size_t fragments = table.fragments.size();
  OlapPartWork& state = olap_work_[part_index];
  state.slices.assign(fragments, {});

  if (olap.kind == OlapSpec::Kind::kSort) {
    // Stage 1 (DESIGN.md §14.3): every fragment runs the sorted candidate
    // thinned to `olap_sample_rows` quantiles — plain hardened-RPC reads
    // whose replies vote the sample barrier instead of joining the
    // gather buffer. Stage 2 (producers + merges) launches at the
    // barrier, so the gather waits for 2 * fragments replies beyond the
    // sampling work entries appended here.
    state.samples.Begin(1, fragments);
    for (size_t f = 0; f < fragments; ++f) {
      const FragmentInfo& frag = table.fragments[f];
      const int replica = ChooseReadReplica(frag);
      FragmentWork w;
      w.ofm = frag.ReplicaOfm(replica);
      w.plan = std::shared_ptr<const algebra::Plan>(CloneWithScanRenamed(
          *olap.sample_plan, olap.table, frag.ReplicaName(replica)));
      w.part = part_index;
      w.table = olap.table;
      w.fragment = frag.name;
      w.replica = replica;
      w.sample_rows = std::max<uint64_t>(1, config_.rules.olap_sample_rows);
      w.sample_slice = f;
      work_->push_back(std::move(w));
    }
    return 2 * fragments;
  }
  // Group-by: no sampling stage — consumers and producers start at once.
  // The producers become ordinary work entries (counted by the caller);
  // only the merge replies are extra.
  LaunchOlapShuffle(part_index, nullptr, /*send_now=*/false);
  return fragments;
}

void QueryProcess::LaunchOlapShuffle(
    size_t part_index, std::shared_ptr<const std::vector<Tuple>> boundaries,
    bool send_now) {
  const LocalPart& part = split_->parts[part_index];
  const OlapSpec& olap = *part.olap;
  auto info_or = config_.dictionary->GetTable(olap.table);
  PRISMA_CHECK(info_or.ok());
  const TableInfo& table = **info_or;
  const size_t fragments = table.fragments.size();
  // Statement-unique exchange id, same convention as exchange joins.
  const uint64_t exchange_id = (config_.statement->request_id << 16) |
                               static_cast<uint64_t>(part_index);

  // One merge consumer per fragment, co-located with whichever replica
  // currently serves reads (the input arrives over channels; co-location
  // just spreads merge CPU across the machine).
  std::vector<pool::ProcessId> consumers;
  consumers.reserve(fragments);
  const Schema input_schema = olap.producer_plan->schema();
  for (size_t c = 0; c < fragments; ++c) {
    const FragmentInfo& frag = table.fragments[c];
    const int replica = ChooseReadReplica(frag);
    OlapMergeProcess::Config cc;
    cc.exchange_id = exchange_id;
    cc.index = c;
    cc.fragment = frag.ReplicaName(replica);
    cc.coordinator = self();
    cc.reply_request_id = next_request_id_++;
    cc.producers = fragments;
    cc.input_schema = input_schema;
    cc.merge_plan = olap.merge_plan;
    cc.expr_mode = config_.expr_mode;
    cc.exec_mode = config_.exec_mode;
    cc.costs = config_.costs;
    cc.credit_window = config_.exchange_credit_window;
    cc.reply_resend_ns = config_.stmt_done_resend_ns;
    cc.metrics = config_.metrics;
    request_part_[cc.reply_request_id] = part_index;
    olap_merge_of_[cc.reply_request_id] = {part_index, c};
    const pool::ProcessId pid = runtime()->Spawn(
        frag.ReplicaPe(replica),
        std::make_unique<OlapMergeProcess>(std::move(cc)));
    consumer_pids_.push_back(pid);
    consumers.push_back(pid);
  }

  // One shuffle producer per fragment, through the hardened-RPC path.
  for (size_t f = 0; f < fragments; ++f) {
    const FragmentInfo& frag = table.fragments[f];
    const int replica = ChooseReadReplica(frag);
    auto request = std::make_shared<ShufflePlanRequest>();
    request->request_id = next_request_id_++;
    request->exchange_id = exchange_id;
    request->side = 0;
    request->producer = f;
    request->plan = std::shared_ptr<const algebra::Plan>(CloneWithScanRenamed(
        *olap.producer_plan, olap.table, frag.ReplicaName(replica)));
    if (olap.kind == OlapSpec::Kind::kSort) {
      request->mode = ShufflePlanRequest::Mode::kRange;
      request->sort_columns = olap.sort_columns;
      request->sort_desc = olap.sort_desc;
      request->boundaries = boundaries;
    } else {
      request->mode = ShufflePlanRequest::Mode::kHash;
      request->partition_column = olap.partition_column;
      // A NULL group key is still a group (unlike a join key, which can
      // never match): route NULLs to consumer 0 instead of dropping.
      request->keep_nulls = true;
    }
    request->consumers = consumers;
    request->batch_rows = config_.exchange_batch_rows;
    request->credit_window = config_.exchange_credit_window;
    request->exec_mode = config_.exec_mode;
    olap_producer_ids_.insert(request->request_id);
    FragmentWork w;
    w.ofm = frag.ReplicaOfm(replica);
    w.plan = request->plan;
    w.part = part_index;
    w.table = olap.table;
    w.fragment = frag.name;
    w.replica = replica;
    w.shuffle = request;
    work_->push_back(std::move(w));
  }
  if (send_now && config_.rules.parallel_fragments) {
    while (next_work_ < work_->size()) SendNextFragmentPlan();
  }
  // Sequential mode picks the new entries up through the reply-driven
  // cursor in HandlePlanReply.
}

void QueryProcess::HandleOlapSample(size_t part_index, size_t slice,
                                    const ExecPlanReply& reply) {
  auto it = olap_work_.find(part_index);
  if (it == olap_work_.end()) return;
  OlapPartWork& state = it->second;
  const OlapSpec& olap = *split_->parts[part_index].olap;
  if (!state.samples.Vote(1, static_cast<int>(slice))) return;
  if (reply.tuples != nullptr) {
    olap_sample_rows_ += reply.tuples->size();
    for (const Tuple& row : *reply.tuples) {
      state.sample_keys.push_back(SortKeyOf(row, olap.sort_columns));
    }
  }
  if (!state.samples.complete()) return;

  // Stage boundary: pool the per-fragment quantiles into K-1 range
  // boundaries splitting the key space into roughly equal slices.
  // Producers route a row to the count of boundaries <= its key, so
  // consumer c receives exactly slice c of the global order.
  std::sort(state.sample_keys.begin(), state.sample_keys.end(),
            [&olap](const Tuple& a, const Tuple& b) {
              return CompareSortKeyTuples(a, b, olap.sort_desc) < 0;
            });
  ChargeCpu(static_cast<sim::SimTime>(state.sample_keys.size()) *
            config_.costs.compare_ns);
  const size_t consumers = state.slices.size();
  auto bounds = std::make_shared<std::vector<Tuple>>();
  if (!state.sample_keys.empty()) {
    for (size_t c = 1; c < consumers; ++c) {
      bounds->push_back(
          state.sample_keys[c * state.sample_keys.size() / consumers]);
    }
  }
  state.sample_keys.clear();
  LaunchOlapShuffle(part_index, std::move(bounds), /*send_now=*/true);
}

void QueryProcess::SendNextFragmentPlan() {
  const size_t index = next_work_++;
  const FragmentWork& w = (*work_)[index];
  if (w.shuffle != nullptr) {
    request_part_[w.shuffle->request_id] = w.part;
    ++outstanding_;
    SendRpc(w.shuffle->request_id, kMailShufflePlan, w.shuffle,
            w.shuffle->WireBits(), index);
    return;
  }
  auto request = std::make_shared<ExecPlanRequest>();
  request->request_id = next_request_id_++;
  request->plan = w.plan;
  request->profile = analyze_;
  request->exec_mode = config_.exec_mode;
  request->sample_rows = w.sample_rows;
  if (w.sample_rows > 0) {
    olap_sample_of_[request->request_id] = {w.part, w.sample_slice};
  }
  request_part_[request->request_id] = w.part;
  ++outstanding_;
  SendRpc(request->request_id, kMailExecPlan, request, request->WireBits(),
          index);
}

void QueryProcess::HandlePlanReply(const pool::Mail& mail) {
  if (finished_) return;
  auto reply = std::any_cast<std::shared_ptr<ExecPlanReply>>(mail.body);
  SettleRpc(reply->request_id);
  auto it = request_part_.find(reply->request_id);
  if (it == request_part_.end()) return;  // Stale or duplicate.
  const size_t part = it->second;
  request_part_.erase(it);
  --outstanding_;
  ++completed_;
  if (!reply->status.ok()) {
    Reply(reply->status, Schema(), nullptr);
    return;
  }
  if (olap_producer_ids_.erase(reply->request_id) > 0) {
    // OLAP shuffle producer settled: attribute its first-transmission
    // data-plane bits (retransmissions excluded by the OFM).
    olap_shuffle_bits_ += reply->shuffle_wire_bits;
  }
  if (auto sample = olap_sample_of_.find(reply->request_id);
      sample != olap_sample_of_.end()) {
    const auto [p, slice] = sample->second;
    olap_sample_of_.erase(sample);
    HandleOlapSample(p, slice, *reply);
  } else if (auto merge = olap_merge_of_.find(reply->request_id);
             merge != olap_merge_of_.end()) {
    const auto [p, slice] = merge->second;
    olap_merge_of_.erase(merge);
    if (reply->tuples != nullptr) {
      ChargeCpu(static_cast<sim::SimTime>(reply->tuples->size()) *
                config_.costs.tuple_ns);
      tuples_gathered_ += reply->tuples->size();
      olap_gather_bits_ += static_cast<uint64_t>(reply->WireBits());
      auto it_state = olap_work_.find(p);
      if (it_state != olap_work_.end() &&
          slice < it_state->second.slices.size()) {
        it_state->second.slices[slice] = *reply->tuples;
      }
    }
  } else if (reply->tuples != nullptr) {
    // Merging gathered tuples costs coordinator CPU.
    ChargeCpu(static_cast<sim::SimTime>(reply->tuples->size()) *
              config_.costs.tuple_ns);
    tuples_gathered_ += reply->tuples->size();
    gather_bits_ += static_cast<uint64_t>(reply->WireBits());
    auto& sink = (*gathered_)[part];
    sink.insert(sink.end(), reply->tuples->begin(), reply->tuples->end());
  }
  if (reply->profile != nullptr && part < part_profiles_.size()) {
    if (part_profiles_[part].has_value()) {
      obs::MergeProfile(&*part_profiles_[part], *reply->profile);
    } else {
      part_profiles_[part] = *reply->profile;
    }
  }
  if (completed_ == expected_replies_) {
    FinishGather();
    return;
  }
  if (!config_.rules.parallel_fragments && next_work_ < work_->size()) {
    SendNextFragmentPlan();
  }
}

void QueryProcess::FinishGather() {
  // Stitch OLAP merge slices into their parts' gather buffers. Sort
  // slices concatenate in consumer order (consumer c holds range slice c
  // of the global order). Group-by slices are disjoint group sets whose
  // keys interleave across consumers; sorting the concatenation restores
  // the single-node aggregate's output order (its group map iterates in
  // ascending key order, group rows are unique on their leading key
  // columns, so whole-tuple order IS group-key order).
  for (auto& [part, state] : olap_work_) {
    auto& sink = (*gathered_)[part];
    for (std::vector<Tuple>& slice : state.slices) {
      sink.insert(sink.end(), std::make_move_iterator(slice.begin()),
                  std::make_move_iterator(slice.end()));
      slice.clear();
    }
    if (split_->parts[part].olap->kind == OlapSpec::Kind::kGroupBy) {
      std::sort(sink.begin(), sink.end());
      ChargeCpu(static_cast<sim::SimTime>(sink.size()) *
                config_.costs.compare_ns);
    }
  }
  // Materialize shared results for deduplicated parts.
  for (size_t i = 0; i < duplicate_of_.size(); ++i) {
    if (duplicate_of_[i] != SIZE_MAX) {
      (*gathered_)[i] = (*gathered_)[duplicate_of_[i]];
    }
  }
  if (is_fixpoint_) {
    RunFixpointPhase();
  } else if (is_prismalog_phase_) {
    RunPrismalogPhase();
  } else {
    RunGlobalPhase();
  }
}

void QueryProcess::RunGlobalPhase() {
  // Materialize each gathered part as a resident relation and execute the
  // global plan over them.
  std::vector<std::unique_ptr<storage::Relation>> relations;
  exec::MapTableResolver resolver;
  for (size_t i = 0; i < split_->parts.size(); ++i) {
    auto rel = std::make_unique<storage::Relation>(
        PartName(i), split_->parts[i].plan->schema());
    for (Tuple& t : (*gathered_)[i]) {
      auto row = rel->Insert(std::move(t));
      if (!row.ok()) {
        Reply(row.status(), Schema(), nullptr);
        return;
      }
    }
    resolver.Register(PartName(i), rel.get());
    relations.push_back(std::move(rel));
  }
  exec::ExecOptions exec_opts;
  exec_opts.expr_mode = config_.expr_mode;
  exec_opts.exec_mode = config_.exec_mode;
  exec_opts.costs = config_.costs;
  exec_opts.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  exec_opts.enable_subtree_cache = optimizer_report_.enable_subtree_cache;
  exec_opts.profile = analyze_;
  exec::Executor executor(&resolver, exec_opts);
  auto result = executor.Execute(*split_->global);
  if (!result.ok()) {
    Reply(result.status(), Schema(), nullptr);
    return;
  }
  if (analyze_ && executor.profile().has_value()) {
    ReplyAnalyze(*executor.profile());
    return;
  }
  Reply(Status::OK(), split_->global->schema(),
        std::make_shared<std::vector<Tuple>>(std::move(result).value()));
}

void QueryProcess::ReplyExplain() {
  // One STRING row per output line: optimizer summary, the global plan,
  // then each local part and its fragment fan-out.
  auto lines = std::make_shared<std::vector<Tuple>>();
  auto emit = [&](const std::string& text) {
    lines->push_back(Tuple({Value::String(text)}));
  };
  emit(StrFormat("optimizer: %d selection(s) pushed, %d join reorder(s), "
                 "%d common subtree(s), aggregate pushdown: %s, "
                 "co-located joins: %d, exchange joins: %d, "
                 "olap parts: %d",
                 optimizer_report_.selections_pushed,
                 optimizer_report_.joins_reordered,
                 optimizer_report_.common_subtrees,
                 split_->pushed_aggregate ? "yes" : "no",
                 split_->colocated_joins, split_->exchange_joins,
                 split_->olap_parts));
  emit("global plan (runs at the query coordinator):");
  for (const std::string& line :
       Split(split_->global->ToString(), '\n')) {
    if (!line.empty()) emit("  " + line);
  }
  for (size_t i = 0; i < split_->parts.size(); ++i) {
    const LocalPart& part = split_->parts[i];
    if (part.olap != nullptr) {
      const OlapSpec& olap = *part.olap;
      auto info = config_.dictionary->GetTable(olap.table);
      const size_t fan = info.ok() ? (*info)->fragments.size() : 0;
      if (olap.kind == OlapSpec::Kind::kGroupBy) {
        emit(StrFormat(
            "part %zu (olap group-by over %s, %s + shuffle-by-key, "
            "%zu fragment(s), %zu merge consumer(s), ~%.0f group(s)):",
            i, olap.table.c_str(),
            olap.pre_aggregate ? "pre-aggregate" : "direct",
            fan, fan, olap.est_groups));
      } else {
        emit(StrFormat(
            "part %zu (olap sort over %s, sample-based range partition, "
            "%zu fragment(s), %zu merge consumer(s), %llu sample "
            "row(s)/fragment):",
            i, olap.table.c_str(), fan, fan,
            static_cast<unsigned long long>(config_.rules.olap_sample_rows)));
      }
      for (const std::string& line : Split(part.plan->ToString(), '\n')) {
        if (!line.empty()) emit("  " + line);
      }
      continue;
    }
    if (part.exchange != nullptr) {
      const ExchangeJoinSpec& ex = *part.exchange;
      auto anchor = config_.dictionary->GetTable(ex.anchor_table);
      emit(StrFormat("part %zu (exchange join %s x %s, %s, %zu "
                     "consumer(s), ~%.0f row(s) on the wire):",
                     i, ex.left_table.c_str(), ex.right_table.c_str(),
                     ExchangeStrategyName(ex.strategy),
                     anchor.ok() ? (*anchor)->fragments.size() : 0,
                     ex.moved_rows));
      for (const std::string& line : Split(part.plan->ToString(), '\n')) {
        if (!line.empty()) emit("  " + line);
      }
      continue;
    }
    auto info = config_.dictionary->GetTable(part.table);
    const size_t fan_out =
        info.ok() ? PruneFragmentsForPart(**info, *part.plan).size() : 0;
    if (part.second_table.empty()) {
      emit(StrFormat("part %zu (table %s, %zu fragment(s)):", i,
                     part.table.c_str(), fan_out));
    } else {
      emit(StrFormat("part %zu (co-located join %s x %s, %zu fragment "
                     "pair(s)):",
                     i, part.table.c_str(), part.second_table.c_str(),
                     fan_out));
    }
    for (const std::string& line : Split(part.plan->ToString(), '\n')) {
      if (!line.empty()) emit("  " + line);
    }
  }
  Schema schema;
  schema.AddColumn("plan", DataType::kString);
  Reply(Status::OK(), std::move(schema), std::move(lines));
}

void QueryProcess::ReplyAnalyze(const obs::OperatorProfile& global) {
  // Same single-column shape as EXPLAIN, but with measured figures: the
  // executed global plan plus each part's fragment profiles merged
  // node-wise (invocations = fragments that ran the plan).
  auto lines = std::make_shared<std::vector<Tuple>>();
  auto emit = [&](const std::string& text) {
    lines->push_back(Tuple({Value::String(text)}));
  };
  emit(StrFormat("optimizer: %d selection(s) pushed, %d join reorder(s), "
                 "%d common subtree(s), aggregate pushdown: %s, "
                 "co-located joins: %d, exchange joins: %d, "
                 "olap parts: %d",
                 optimizer_report_.selections_pushed,
                 optimizer_report_.joins_reordered,
                 optimizer_report_.common_subtrees,
                 split_->pushed_aggregate ? "yes" : "no",
                 split_->colocated_joins, split_->exchange_joins,
                 split_->olap_parts));
  emit("global plan (ran at the query coordinator):");
  std::vector<std::string> rendered;
  obs::RenderProfile(global, 1, &rendered);
  for (const std::string& line : rendered) emit(line);
  for (size_t i = 0; i < split_->parts.size(); ++i) {
    const LocalPart& part = split_->parts[i];
    if (duplicate_of_[i] != SIZE_MAX) {
      emit(StrFormat("part %zu (table %s): reuses part %zu "
                     "(common subexpression)",
                     i, part.table.c_str(), duplicate_of_[i]));
      continue;
    }
    if (part.exchange != nullptr) {
      const ExchangeJoinSpec& ex = *part.exchange;
      emit(StrFormat("part %zu (exchange join %s x %s, %s, %zu "
                     "consumer(s)): streamed, no fragment profile",
                     i, ex.left_table.c_str(), ex.right_table.c_str(),
                     ExchangeStrategyName(ex.strategy),
                     part_fragments_[i].size()));
      continue;
    }
    if (part.olap != nullptr) {
      const OlapSpec& olap = *part.olap;
      emit(StrFormat("part %zu (olap %s over %s, %zu merge "
                     "consumer(s)): streamed, no fragment profile",
                     i,
                     olap.kind == OlapSpec::Kind::kGroupBy ? "group-by"
                                                           : "sort",
                     olap.table.c_str(), part_fragments_[i].size()));
      continue;
    }
    if (part.second_table.empty()) {
      emit(StrFormat("part %zu (table %s, %zu fragment(s)):", i,
                     part.table.c_str(), part_fragments_[i].size()));
    } else {
      emit(StrFormat("part %zu (co-located join %s x %s, %zu fragment "
                     "pair(s)):",
                     i, part.table.c_str(), part.second_table.c_str(),
                     part_fragments_[i].size()));
    }
    if (part_profiles_[i].has_value()) {
      rendered.clear();
      obs::RenderProfile(*part_profiles_[i], 1, &rendered);
      for (const std::string& line : rendered) emit(line);
    } else {
      emit("  (no fragments executed)");
    }
  }
  Schema schema;
  schema.AddColumn("plan", DataType::kString);
  Reply(Status::OK(), std::move(schema), std::move(lines));
}

// -------------------------------------------------------------- PRISMAlog

void QueryProcess::StartPrismalog() {
  ChargeCpu(config_.costs.optimize_ns);
  // A leading EXPLAIN keyword asks for the evaluation strategy instead of
  // the answers (mirroring the SQL front end).
  plog_text_ = config_.statement->text;
  {
    size_t i = 0;
    while (i < plog_text_.size() &&
           isspace(static_cast<unsigned char>(plog_text_[i]))) {
      ++i;
    }
    constexpr std::string_view kExplain = "explain";
    if (plog_text_.size() > i + kExplain.size() &&
        EqualsIgnoreCase(plog_text_.substr(i, kExplain.size()), kExplain) &&
        isspace(static_cast<unsigned char>(plog_text_[i + kExplain.size()]))) {
      explain_ = true;
      plog_text_ = plog_text_.substr(i + kExplain.size());
    }
  }
  auto program = prismalog::ParsePrismalog(plog_text_);
  if (!program.ok()) {
    Reply(program.status(), Schema(), nullptr);
    return;
  }

  // Linear-recursion programs whose goal is the full closure of one
  // fragmented, dictionary-resident edge relation run as a distributed
  // semi-naive fixpoint (DESIGN.md §11) instead of gathering the edges
  // here: the recursion executes where the data lives.
  if (config_.distributed_fixpoint && program->query.has_value()) {
    auto tc = prismalog::DetectLinearTc(*program);
    if (tc.has_value() && program->query->predicate == tc->closure_pred &&
        program->query->args.size() == 2 &&
        config_.dictionary->HasTable(tc->edge_pred) &&
        !config_.dictionary->HasTable(tc->closure_pred)) {
      auto info = config_.dictionary->GetTable(tc->edge_pred);
      if (info.ok() && (*info)->schema.columns().size() == 2) {
        is_fixpoint_ = true;
        fx_edge_table_ = tc->edge_pred;
        fx_num_pes_ = (*info)->fragments.size();
        if (explain_) {
          ReplyFixpointExplain();
          return;
        }
        std::set<std::string> resources;
        for (const FragmentInfo& frag : (*info)->fragments) {
          resources.insert(frag.name);
        }
        RequestLocks({resources.begin(), resources.end()});
        return;
      }
    }
  }
  if (explain_) {
    // Non-recursive (or non-fixpoint) programs: the stratified engine at
    // the coordinator is the only strategy; say so.
    auto lines = std::make_shared<std::vector<Tuple>>();
    lines->push_back(Tuple({Value::String(
        "prismalog: stratified semi-naive evaluation at the coordinator "
        "(no distributed fixpoint pattern detected)")}));
    Schema schema;
    schema.AddColumn("plan", DataType::kString);
    Reply(Status::OK(), std::move(schema), std::move(lines));
    return;
  }
  // Base tables = every predicate present in the dictionary.
  std::set<std::string> tables;
  auto consider = [&](const std::string& pred) {
    if (config_.dictionary->HasTable(pred)) tables.insert(pred);
  };
  for (const prismalog::Rule& rule : program->rules) {
    consider(rule.head.predicate);
    for (const prismalog::BodyElem& elem : rule.body) {
      if (elem.kind == prismalog::BodyElem::Kind::kAtom) {
        consider(elem.atom.predicate);
      }
    }
  }
  if (program->query.has_value()) consider(program->query->predicate);

  is_prismalog_phase_ = true;
  plog_tables_.assign(tables.begin(), tables.end());
  for (size_t i = 0; i < plog_tables_.size(); ++i) {
    plog_part_of_table_[plog_tables_[i]] = i;
  }

  std::set<std::string> resources;
  for (const std::string& table : plog_tables_) {
    auto info = config_.dictionary->GetTable(table);
    PRISMA_CHECK(info.ok());
    for (const FragmentInfo& frag : (*info)->fragments) {
      resources.insert(frag.name);
    }
  }
  if (resources.empty()) {
    // Program over in-program facts only.
    RequestLocks({});
    return;
  }
  RequestLocks({resources.begin(), resources.end()});
}

void QueryProcess::RunPrismalogPhase() {
  std::vector<std::unique_ptr<storage::Relation>> relations;
  exec::MapTableResolver resolver;
  for (size_t i = 0; i < plog_tables_.size(); ++i) {
    auto info = config_.dictionary->GetTable(plog_tables_[i]);
    PRISMA_CHECK(info.ok());
    auto rel = std::make_unique<storage::Relation>(plog_tables_[i],
                                                   (*info)->schema);
    for (Tuple& t : (*gathered_)[i]) {
      auto row = rel->Insert(std::move(t));
      if (!row.ok()) {
        Reply(row.status(), Schema(), nullptr);
        return;
      }
    }
    resolver.Register(plog_tables_[i], rel.get());
    relations.push_back(std::move(rel));
  }
  prismalog::EngineOptions options;
  options.costs = config_.costs;
  options.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  options.tc_algorithm = config_.tc_algorithm;
  prismalog::Engine engine(&resolver, config_.dictionary, options);
  auto program = prismalog::ParsePrismalog(plog_text_);
  PRISMA_CHECK(program.ok());
  auto result = engine.Run(*program);
  if (!result.ok()) {
    Reply(result.status(), Schema(), nullptr);
    return;
  }
  Reply(Status::OK(), result->schema,
        std::make_shared<std::vector<Tuple>>(std::move(result->tuples)));
}

// ---------------------------------------------------- Distributed fixpoint

void QueryProcess::ScatterFixpoint() {
  auto info_or = config_.dictionary->GetTable(fx_edge_table_);
  PRISMA_CHECK(info_or.ok());
  const TableInfo& table = **info_or;
  fx_num_pes_ = table.fragments.size();
  gathered_->assign(1, {});
  duplicate_of_.assign(1, SIZE_MAX);
  part_profiles_.assign(1, std::nullopt);
  work_->clear();
  if (fx_num_pes_ == 0) {
    // Nothing to recurse over; answer from an empty extension.
    RunFixpointPhase();
    return;
  }
  // The low request-id bits distinguish exchange parts; a fixpoint query
  // has exactly one "part", so the id space cannot collide.
  fixpoint_id_ = config_.statement->request_id << 16;

  // One fixpoint partition per edge fragment, co-located with it: its
  // slice of E (hash-partitioned on the first column) stays local, and
  // so does the delta ⋈ E join (pairs are owned by their second
  // endpoint's hash).
  std::vector<pool::ProcessId> pids;
  pids.reserve(fx_num_pes_);
  for (size_t i = 0; i < fx_num_pes_; ++i) {
    FixpointPeProcess::Config fc;
    fc.fixpoint_id = fixpoint_id_;
    fc.index = i;
    fc.num_pes = fx_num_pes_;
    fc.algorithm = config_.tc_algorithm;
    fc.edge_producers = fx_num_pes_;
    fc.edge_schema = table.schema;
    fc.coordinator = self();
    fc.reply_request_id = next_request_id_++;
    fc.batch_rows = config_.exchange_batch_rows;
    fc.credit_window = config_.exchange_credit_window;
    fc.columnar = config_.exec_mode == exec::ExecMode::kVectorized;
    fc.vote_resend_ns = config_.stmt_done_resend_ns;
    fc.reply_resend_ns = config_.stmt_done_resend_ns;
    fc.costs = config_.costs;
    fc.metrics = config_.metrics;
    request_part_[fc.reply_request_id] = 0;
    const pool::ProcessId pid = runtime()->Spawn(
        table.fragments[i].pe,
        std::make_unique<FixpointPeProcess>(std::move(fc)));
    consumer_pids_.push_back(pid);  // Reaped in Reply(), like consumers.
    pids.push_back(pid);
  }
  fx_pids_ = pids;
  fx_round_ = 0;
  fx_barrier_.Begin(0, fx_num_pes_);
  fx_any_new_ = false;
  fx_start_msg_ = std::make_shared<FixpointStartMsg>();
  fx_start_msg_->fixpoint_id = fixpoint_id_;
  fx_start_msg_->peers = pids;
  for (const pool::ProcessId pid : pids) {
    SendMail(pid, kMailFixpointStart, fx_start_msg_, kControlBits);
  }

  // Edge shuffle (side 0): every fragment OFM streams its slice to every
  // partition through the ordinary shuffle-producer path, hardened-RPC
  // and all.
  std::shared_ptr<const algebra::Plan> scan =
      algebra::ScanPlan::Create(fx_edge_table_, table.schema);
  for (size_t f = 0; f < fx_num_pes_; ++f) {
    const FragmentInfo& frag = table.fragments[f];
    auto request = std::make_shared<ShufflePlanRequest>();
    request->request_id = next_request_id_++;
    request->exchange_id = fixpoint_id_;
    request->side = 0;
    request->producer = f;
    request->plan = std::shared_ptr<const algebra::Plan>(
        CloneWithScanRenamed(*scan, fx_edge_table_, frag.name));
    request->mode = ShufflePlanRequest::Mode::kHash;
    request->partition_column = 0;
    request->consumers = pids;
    request->batch_rows = config_.exchange_batch_rows;
    request->credit_window = config_.exchange_credit_window;
    request->exec_mode = config_.exec_mode;
    FragmentWork w;
    w.ofm = frag.ofm;
    w.plan = request->plan;
    w.part = 0;
    w.table = fx_edge_table_;
    w.fragment = frag.name;
    w.shuffle = request;
    work_->push_back(std::move(w));
  }
  next_work_ = 0;
  outstanding_ = 0;
  completed_ = 0;
  // The gather waits for every shuffle producer plus every partition's
  // harvest reply.
  expected_replies_ = work_->size() + fx_num_pes_;
  if (config_.rules.parallel_fragments) {
    while (next_work_ < work_->size()) SendNextFragmentPlan();
  } else {
    SendNextFragmentPlan();
  }
  if (config_.stmt_done_resend_ns > 0) {
    // Faulty interconnect: start/round/harvest directives can be lost,
    // so rebroadcast the current ones until the query finishes (every
    // handler at the PEs is idempotent).
    SendSelfAfter(config_.stmt_done_resend_ns, kMailFixpointCtrlResend);
  }
}

void QueryProcess::HandleFixpointVote(const pool::Mail& mail) {
  if (finished_ || !is_fixpoint_) return;
  auto msg = std::any_cast<std::shared_ptr<FixpointVoteMsg>>(mail.body);
  if (msg->fixpoint_id != fixpoint_id_) return;
  if (msg->pe >= fx_num_pes_) return;
  // One admitted vote per (round, PE): the barrier rejects late votes of
  // finished rounds and retransmitted votes of the current one.
  if (!fx_barrier_.Vote(msg->round, static_cast<int>(msg->pe))) return;
  if (msg->absorbed_new > 0) fx_any_new_ = true;
  fx_delta_total_ += msg->absorbed_new;
  fx_pairs_total_ += msg->pairs_derived;
  fx_wire_total_ += msg->wire_bits;
  if (config_.metrics != nullptr) {
    const obs::Labels q = {
        {"query", std::to_string(config_.statement->request_id)}};
    config_.metrics->GetCounter("fixpoint.delta_tuples", q)
        ->Increment(msg->absorbed_new);
    config_.metrics->GetCounter("fixpoint.wire_bits", q)
        ->Increment(msg->wire_bits);
  }
  if (!fx_barrier_.complete()) return;

  // Termination barrier: every partition finished round fx_round_. If any
  // of them absorbed a new pair the global delta is non-empty — run
  // another round; otherwise the fixpoint is reached — harvest (the
  // barrier is left open: further round-`fx_round_` votes are stale).
  const bool advance = fx_any_new_;
  fx_any_new_ = false;
  fx_round_msg_ = std::make_shared<FixpointRoundMsg>();
  fx_round_msg_->fixpoint_id = fixpoint_id_;
  if (advance) {
    ++fx_round_;
    fx_barrier_.Begin(fx_round_, fx_num_pes_);
    fx_round_msg_->round = fx_round_;
  } else {
    fx_round_msg_->harvest = true;
    if (config_.metrics != nullptr) {
      const obs::Labels q = {
          {"query", std::to_string(config_.statement->request_id)}};
      config_.metrics->GetGauge("fixpoint.rounds", q)->Set(fx_round_);
      // Unlabeled "last query" figures for benches and tests.
      config_.metrics->GetGauge("fixpoint.last_rounds")->Set(fx_round_);
      config_.metrics->GetGauge("fixpoint.last_delta_tuples")
          ->Set(fx_delta_total_);
      config_.metrics->GetGauge("fixpoint.last_pairs_derived")
          ->Set(fx_pairs_total_);
      config_.metrics->GetGauge("fixpoint.last_wire_bits")
          ->Set(fx_wire_total_);
    }
  }
  for (const pool::ProcessId pid : fx_pids_) {
    SendMail(pid, kMailFixpointRound, fx_round_msg_, kControlBits);
  }
}

void QueryProcess::BroadcastFixpointCtrl() {
  if (finished_ || !is_fixpoint_ || config_.stmt_done_resend_ns <= 0) return;
  for (const pool::ProcessId pid : fx_pids_) {
    if (fx_start_msg_ != nullptr) {
      SendMail(pid, kMailFixpointStart, fx_start_msg_, kControlBits);
    }
    if (fx_round_msg_ != nullptr) {
      SendMail(pid, kMailFixpointRound, fx_round_msg_, kControlBits);
    }
  }
  SendSelfAfter(config_.stmt_done_resend_ns, kMailFixpointCtrlResend);
}

void QueryProcess::RunFixpointPhase() {
  // Partitions own disjoint slices, each already in Tuple order; merging
  // and sorting reproduces the single-node operator's output exactly.
  std::vector<Tuple> merged = std::move((*gathered_)[0]);
  std::sort(merged.begin(), merged.end());
  ChargeCpu(static_cast<sim::SimTime>(merged.size()) *
            config_.costs.compare_ns);
  auto program = prismalog::ParsePrismalog(plog_text_);
  PRISMA_CHECK(program.ok() && program->query.has_value());
  prismalog::QueryResult result =
      prismalog::AnswerGoal(*program->query, merged);
  Reply(Status::OK(), std::move(result.schema),
        std::make_shared<std::vector<Tuple>>(std::move(result.tuples)));
}

void QueryProcess::ReplyFixpointExplain() {
  auto info_or = config_.dictionary->GetTable(fx_edge_table_);
  PRISMA_CHECK(info_or.ok());
  const TableInfo& table = **info_or;
  auto lines = std::make_shared<std::vector<Tuple>>();
  auto emit = [&](const std::string& text) {
    lines->push_back(Tuple({Value::String(text)}));
  };
  emit(StrFormat("prismalog: linear recursion over %s detected, evaluated "
                 "as a distributed fixpoint",
                 fx_edge_table_.c_str()));
  std::unique_ptr<algebra::Plan> scan =
      algebra::ScanPlan::Create(fx_edge_table_, table.schema);
  auto plan = algebra::FixpointPlan::Create(
      std::move(scan), TcAlgorithmName(config_.tc_algorithm),
      std::max<size_t>(table.fragments.size(), 1));
  PRISMA_CHECK(plan.ok());
  for (const std::string& line : Split((*plan)->ToString(), '\n')) {
    if (!line.empty()) emit("  " + line);
  }
  emit(StrFormat("  edge relation: %zu fragment(s), shuffled by "
                 "hash(column 0); pairs owned by hash(second endpoint); "
                 "per-round all-to-all delta streams over exchange "
                 "channels; coordinator barrier ends when all deltas are "
                 "empty",
                 table.fragments.size()));
  Schema schema;
  schema.AddColumn("plan", DataType::kString);
  Reply(Status::OK(), std::move(schema), std::move(lines));
}

// ------------------------------------------------------------------ Mail
//
// Handler contract (D5): a query coordinator consumes replies to the RPCs
// it fans out (locks, plans, fixpoint votes) plus its own timeout mail.
// PRISMA_HANDLES(kMailLockBatchReply, kMailExecPlanReply, kMailFixpointVote)
// PRISMA_HANDLES(kMailFixpointCtrlResend, kMailRpcTimeout)
// PRISMA_HANDLES(kMailStmtDoneResend, kMailQueryTimeout)

void QueryProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailLockBatchReply) {
    auto reply = std::any_cast<std::shared_ptr<LockBatchReply>>(mail.body);
    if (!SettleRpc(reply->request_id)) return;  // Duplicate.
    if (!reply->status.ok()) {
      Reply(reply->status, Schema(), nullptr);
      return;
    }
    if (is_fixpoint_) {
      ScatterFixpoint();
    } else {
      Scatter();
    }
  } else if (mail.kind == kMailExecPlanReply) {
    HandlePlanReply(mail);
  } else if (mail.kind == kMailFixpointVote) {
    HandleFixpointVote(mail);
  } else if (mail.kind == kMailFixpointCtrlResend) {
    BroadcastFixpointCtrl();
  } else if (mail.kind == kMailRpcTimeout) {
    HandleRpcTimeout(mail);
  } else if (mail.kind == kMailStmtDoneResend) {
    if (done_msg_ != nullptr) {
      SendMail(config_.gdh, kMailStatementDone, done_msg_, kControlBits);
      SendSelfAfter(config_.stmt_done_resend_ns, kMailStmtDoneResend);
    }
  } else if (mail.kind == kMailQueryTimeout) {
    // Degradation report: name a fragment the gather is still waiting on,
    // if any RPC is outstanding (otherwise the stall is elsewhere, e.g. a
    // consumer that lost its PE).
    std::string detail = "query timed out (fragment unreachable?)";
    net::NodeId target_pe = 0;
    std::string table = "(unknown)";
    for (const auto& [id, rpc] : *rpcs_) {
      if (rpc.work_index == SIZE_MAX) continue;
      const FragmentWork& w = (*work_)[rpc.work_index];
      table = w.table;
      detail = "query timed out awaiting " +
               DescribeWorkTarget(w, &target_pe) + " (crashed PE?)";
      break;
    }
    CountUnavailable(target_pe, table);
    Reply(UnavailableError(std::move(detail)), Schema(), nullptr);
  }
}

}  // namespace prisma::gdh
