#include "gdh/lock_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace prisma::gdh {

bool LockManager::Compatible(const ResourceState& state, TxnId txn,
                             LockMode mode) {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

void LockManager::Acquire(TxnId txn, const std::string& resource,
                          LockMode mode, GrantCallback callback) {
  ResourceState& state = resources_[resource];

  auto held = state.holders.find(txn);
  if (held != state.holders.end()) {
    if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
      // Already strong enough.
      ++locks_granted_;
      callback(Status::OK());
      return;
    }
    // S -> X upgrade.
    if (Compatible(state, txn, LockMode::kExclusive)) {
      held->second = LockMode::kExclusive;
      ++locks_granted_;
      callback(Status::OK());
      return;
    }
    // Upgrade must wait like any other request (and can deadlock).
  }

  if (held == state.holders.end() && state.waiters.empty() &&
      Compatible(state, txn, mode)) {
    state.holders[txn] = mode;
    ++locks_granted_;
    callback(Status::OK());
    return;
  }

  // Must wait: check for a waits-for cycle first; the requester is the
  // victim if granting the wait would close one.
  if (WouldDeadlock(txn, resource)) {
    ++deadlocks_detected_;
    callback(AbortedError("deadlock detected; transaction " +
                          std::to_string(txn) + " chosen as victim"));
    return;
  }
  ++waits_;
  state.waiters.push_back(Request{txn, mode, std::move(callback)});
}

bool LockManager::WouldDeadlock(TxnId waiter,
                                const std::string& resource) const {
  // Direct blockers of the hypothetical wait.
  std::vector<TxnId> frontier;
  auto it = resources_.find(resource);
  if (it != resources_.end()) {
    for (const auto& [holder, _] : it->second.holders) {
      if (holder != waiter) frontier.push_back(holder);
    }
    for (const Request& r : it->second.waiters) {
      if (r.txn != waiter) frontier.push_back(r.txn);
    }
  }
  // DFS over the waits-for graph: blocked txn -> holders and earlier
  // waiters of the resource it waits on.
  std::set<TxnId> visited;
  while (!frontier.empty()) {
    const TxnId t = frontier.back();
    frontier.pop_back();
    if (t == waiter) return true;
    if (!visited.insert(t).second) continue;
    for (const auto& [_, state] : resources_) {
      for (size_t i = 0; i < state.waiters.size(); ++i) {
        if (state.waiters[i].txn != t) continue;
        for (const auto& [holder, __] : state.holders) {
          frontier.push_back(holder);
        }
        for (size_t j = 0; j < i; ++j) {
          frontier.push_back(state.waiters[j].txn);
        }
      }
    }
  }
  return false;
}

void LockManager::GrantWaiters(const std::string& resource) {
  auto it = resources_.find(resource);
  if (it == resources_.end()) return;
  ResourceState& state = it->second;
  // FIFO with shared batching: grant the head while compatible.
  std::vector<Request> granted;
  while (!state.waiters.empty()) {
    Request& head = state.waiters.front();
    // An upgrade request holds S already; treat specially.
    auto held = state.holders.find(head.txn);
    const bool ok = Compatible(state, head.txn, head.mode);
    if (!ok) break;
    if (held != state.holders.end()) {
      held->second = head.mode;
    } else {
      state.holders[head.txn] = head.mode;
    }
    ++locks_granted_;
    granted.push_back(std::move(head));
    state.waiters.pop_front();
  }
  if (state.holders.empty() && state.waiters.empty()) {
    resources_.erase(it);
  }
  for (Request& r : granted) r.callback(Status::OK());
}

void LockManager::ReleaseAll(TxnId txn) {
  std::vector<std::string> touched;
  for (auto& [name, state] : resources_) {
    const bool held = state.holders.erase(txn) > 0;
    const size_t before = state.waiters.size();
    state.waiters.erase(
        std::remove_if(state.waiters.begin(), state.waiters.end(),
                       [txn](const Request& r) { return r.txn == txn; }),
        state.waiters.end());
    if (held || before != state.waiters.size()) touched.push_back(name);
  }
  for (const std::string& name : touched) GrantWaiters(name);
  // Drop fully idle resources.
  for (auto it = resources_.begin(); it != resources_.end();) {
    if (it->second.holders.empty() && it->second.waiters.empty()) {
      it = resources_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockManager::Holds(TxnId txn, const std::string& resource) const {
  auto it = resources_.find(resource);
  return it != resources_.end() && it->second.holders.contains(txn);
}

size_t LockManager::num_locked_resources() const { return resources_.size(); }

}  // namespace prisma::gdh
