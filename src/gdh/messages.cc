#include "gdh/messages.h"

#include "common/column_batch.h"
#include "common/serialize.h"

namespace prisma::gdh {

StatusOr<std::vector<Tuple>> TupleBatchRows(const TupleBatchMsg& msg) {
  if (msg.column_frame != nullptr) {
    ASSIGN_OR_RETURN(ColumnBatch batch,
                     DeserializeColumnBatch(*msg.column_frame));
    return batch.ToTuples();
  }
  if (msg.tuples != nullptr) return *msg.tuples;
  return std::vector<Tuple>();
}

int64_t TuplesBits(const std::vector<Tuple>& tuples) {
  int64_t bytes = 16;
  for (const Tuple& t : tuples) bytes += static_cast<int64_t>(t.ByteSize());
  return bytes * 8;
}

int64_t ProfileBits(const obs::OperatorProfile& profile) {
  int64_t bits = kControlBits + static_cast<int64_t>(profile.op.size()) * 8;
  for (const obs::OperatorProfile& child : profile.children) {
    bits += ProfileBits(child);
  }
  return bits;
}

}  // namespace prisma::gdh
