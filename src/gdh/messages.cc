#include "gdh/messages.h"

namespace prisma::gdh {

int64_t TuplesBits(const std::vector<Tuple>& tuples) {
  int64_t bytes = 16;
  for (const Tuple& t : tuples) bytes += static_cast<int64_t>(t.ByteSize());
  return bytes * 8;
}

}  // namespace prisma::gdh
