#include "gdh/messages.h"

namespace prisma::gdh {

int64_t TuplesBits(const std::vector<Tuple>& tuples) {
  int64_t bytes = 16;
  for (const Tuple& t : tuples) bytes += static_cast<int64_t>(t.ByteSize());
  return bytes * 8;
}

int64_t ProfileBits(const obs::OperatorProfile& profile) {
  int64_t bits = kControlBits + static_cast<int64_t>(profile.op.size()) * 8;
  for (const obs::OperatorProfile& child : profile.children) {
    bits += ProfileBits(child);
  }
  return bits;
}

}  // namespace prisma::gdh
