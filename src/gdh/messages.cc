#include "gdh/messages.h"

#include "common/column_batch.h"
#include "common/serialize.h"

namespace prisma::gdh {

StatusOr<std::vector<Tuple>> TupleBatchRows(const TupleBatchMsg& msg) {
  if (msg.column_frame != nullptr) {
    ASSIGN_OR_RETURN(ColumnBatch batch,
                     DeserializeColumnBatch(*msg.column_frame));
    return batch.ToTuples();
  }
  if (msg.tuples != nullptr) return *msg.tuples;
  return std::vector<Tuple>();
}

int CompareSortKeyTuples(const Tuple& a, const Tuple& b,
                         const std::vector<bool>& desc) {
  for (size_t k = 0; k < a.size() && k < b.size(); ++k) {
    int c = a.at(k).Compare(b.at(k));
    if (k < desc.size() && desc[k]) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

Tuple SortKeyOf(const Tuple& row, const std::vector<size_t>& columns) {
  std::vector<Value> key;
  key.reserve(columns.size());
  for (size_t col : columns) key.push_back(row.at(col));
  return Tuple(std::move(key));
}

size_t RangeSliceOf(const Tuple& row, const std::vector<size_t>& columns,
                    const std::vector<bool>& desc,
                    const std::vector<Tuple>& boundaries) {
  const Tuple key = SortKeyOf(row, columns);
  // Count of boundaries <= key: lower_bound over "boundary < key is not
  // enough, boundary <= key advances" — i.e. first boundary with
  // boundary > key.
  size_t lo = 0;
  size_t hi = boundaries.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareSortKeyTuples(boundaries[mid], key, desc) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int64_t TuplesBits(const std::vector<Tuple>& tuples) {
  int64_t bytes = 16;
  for (const Tuple& t : tuples) bytes += static_cast<int64_t>(t.ByteSize());
  return bytes * 8;
}

int64_t ProfileBits(const obs::OperatorProfile& profile) {
  int64_t bits = kControlBits + static_cast<int64_t>(profile.op.size()) * 8;
  for (const obs::OperatorProfile& child : profile.children) {
    bits += ProfileBits(child);
  }
  return bits;
}

}  // namespace prisma::gdh
