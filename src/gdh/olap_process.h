#ifndef PRISMA_GDH_OLAP_PROCESS_H_
#define PRISMA_GDH_OLAP_PROCESS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/exchange.h"
#include "exec/executor.h"
#include "gdh/messages.h"
#include "obs/metrics.h"
#include "pool/owned.h"
#include "pool/runtime.h"
#include "storage/relation.h"

namespace prisma::gdh {

/// Merge consumer of one multi-stage OLAP plan (DESIGN.md §14): a
/// short-lived POOL-X process spawned by the query coordinator, one per
/// fragment of the anchor table. It receives flow-controlled tuple
/// batches from every producer fragment — partial aggregates or base rows
/// routed by group key, or a range slice of the global sort order —
/// materializes them under OlapInputName(), runs the merge plan
/// (combining aggregation or local sort) over that input, and answers
/// the coordinator with a normal ExecPlanReply carrying final rows only.
///
/// Fault tolerance is the exchange consumer's recipe: per-channel seq
/// dedup, cumulative acks on every arrival (even duplicates), and reply
/// retransmission until the coordinator kills this process.
class OlapMergeProcess : public pool::Process {
 public:
  struct Config {
    uint64_t exchange_id = 0;
    size_t index = 0;        // Consumer index within the shuffle.
    std::string fragment;    // Anchor fragment (labels, reply attribution).
    pool::ProcessId coordinator = pool::kNoProcess;
    /// The coordinator registered this id for our ExecPlanReply.
    uint64_t reply_request_id = 0;
    size_t producers = 0;    // Inbound channel count (side 0 only).
    Schema input_schema;     // Schema of the shuffled-in rows.
    /// Merge plan; its Scan names OlapInputName().
    std::shared_ptr<const algebra::Plan> merge_plan;
    exec::ExprMode expr_mode = exec::ExprMode::kCompiled;
    exec::ExecMode exec_mode = exec::ExecMode::kRow;
    pool::CostModel costs;
    uint64_t credit_window = 4;
    /// Reply retransmission period; 0 disables (fault-free runs).
    sim::SimTime reply_resend_ns = 0;
    /// Retransmission budget; only stops an orphaned consumer.
    int reply_resend_attempts = 240;
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit OlapMergeProcess(Config config);

  void OnStart() override;
  void OnMail(const pool::Mail& mail) override;

  std::string debug_name() const override {
    return "olap:" + config_.fragment;
  }

 private:
  void HandleBatch(const pool::Mail& mail);
  /// Drains in-order batches into the input buffer; on EOS of every
  /// channel, runs the merge plan and replies.
  void Pump();
  void RunMerge();
  void SendReply(Status status);

  Config config_;
  // Process-local state below is wrapped in the ownership checker.
  pool::Owned<std::vector<exec::InboundChannel>> channels_;
  pool::Owned<std::vector<Tuple>> rows_;  // Materialized shuffle input.
  pool::Owned<std::shared_ptr<ExecPlanReply>> reply_;

  int reply_resends_left_ = 0;
  bool replied_ = false;

  obs::Counter* m_batches_received_ = nullptr;
  obs::Counter* m_dup_batches_ = nullptr;  // Lazy: fault paths only.
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_OLAP_PROCESS_H_
