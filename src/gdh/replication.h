#ifndef PRISMA_GDH_REPLICATION_H_
#define PRISMA_GDH_REPLICATION_H_

#include <string>

namespace prisma::gdh {

/// Lifecycle of one fragment replica (DESIGN.md §13).
///
///   kInSync    — holds every committed write; eligible to serve reads and
///                participate in 2PC as a write target.
///   kStale     — observed dead while its peer carried on accepting writes;
///                its contents are behind and must be rebuilt before it can
///                serve anything.
///   kResyncing — a fresh OFM process is being refilled from the surviving
///                replica (snapshot bulk-copy + WAL-delta catch-up); flips
///                back to kInSync at the 2PC-consistent cutover.
///
/// Transition table (D7): every assignment site carries a matching
/// PRISMA_TRANSITION annotation; the lint cross-checks both directions.
/// PRISMA_STATE_MACHINE(ReplicaState: init->kInSync, kInSync->kStale,
///                      kStale->kResyncing, kResyncing->kInSync,
///                      kResyncing->kStale)
enum class ReplicaState : uint8_t { kInSync, kStale, kResyncing };

const char* ReplicaStateName(ReplicaState state);

/// Suffix distinguishing the backup replica's fragment (and thus its OFM
/// process, WAL stream "emp#3~b.wal", reply-cache identity and registry
/// entry) from the home copy "emp#3". Reusing the fragment-name keyed
/// machinery end-to-end is what lets a backup ride the existing RPC
/// hardening and presumed-abort 2PC unchanged.
inline constexpr char kBackupSuffix[] = "~b";

inline bool IsBackupFragmentName(const std::string& fragment) {
  return fragment.size() >= 2 &&
         fragment.compare(fragment.size() - 2, 2, kBackupSuffix) == 0;
}

inline std::string BackupFragmentName(const std::string& base) {
  return base + kBackupSuffix;
}

/// Strips the backup suffix if present: both replicas of "emp#3" share the
/// base name, which is what locks and the dictionary key on.
inline std::string BaseFragmentName(const std::string& fragment) {
  if (!IsBackupFragmentName(fragment)) return fragment;
  return fragment.substr(0, fragment.size() - 2);
}

/// "emp#3~b" -> "emp"; empty if `fragment` is not a fragment name.
inline std::string TableOfFragment(const std::string& fragment) {
  const std::string base = BaseFragmentName(fragment);
  const size_t hash = base.rfind('#');
  return hash == std::string::npos ? std::string() : base.substr(0, hash);
}

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_REPLICATION_H_
