#ifndef PRISMA_GDH_EXCHANGE_PROCESS_H_
#define PRISMA_GDH_EXCHANGE_PROCESS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/exchange.h"
#include "exec/executor.h"
#include "gdh/messages.h"
#include "gdh/pe_registry.h"
#include "obs/metrics.h"
#include "pool/owned.h"
#include "pool/runtime.h"

namespace prisma::gdh {

/// Consumer endpoint of one streaming exchange (DESIGN.md §10): a
/// short-lived POOL-X process spawned by the query coordinator on the PE
/// of one anchor fragment. It receives flow-controlled tuple batches from
/// the moving side(s) of an exchange-lowered join, pipelines them into the
/// build and probe phases of a hash join (no full-input materialization),
/// and answers the coordinator with a normal ExecPlanReply carrying its
/// share of the join result.
///
/// Fault tolerance composes from three pieces: inbound batches are
/// seq-deduplicated per channel (duplicated or re-executed producers are
/// harmless), every batch is cumulatively acknowledged (lost acks are
/// repaired by the producer's retransmission), and the final reply is
/// retransmitted on a timer until the coordinator kills this process at
/// statement completion.
class ExchangeConsumerProcess : public pool::Process {
 public:
  /// One join input as seen by a consumer. A *moving* side arrives as
  /// `producers` batch channels; a stationary side is executed locally
  /// (`local_plan`, its Scan already retargeted at this PE's fragment)
  /// against co-located fragments once the build side is complete.
  struct SideSpec {
    bool moving = false;
    size_t producers = 0;
    std::shared_ptr<const algebra::Plan> local_plan;
  };

  struct Config {
    uint64_t exchange_id = 0;
    size_t index = 0;        // Consumer index within the exchange.
    std::string fragment;    // Anchor fragment (labels, reply attribution).
    pool::ProcessId coordinator = pool::kNoProcess;
    /// The coordinator registered this id for our ExecPlanReply.
    uint64_t reply_request_id = 0;
    SideSpec left;
    SideSpec right;
    /// Which input builds the hash table (0 = left). The build side is
    /// always a moving side; a stationary side is always probed.
    int build_side = 0;
    std::vector<std::pair<size_t, size_t>> keys;
    std::shared_ptr<const algebra::Expr> predicate;
    exec::ExprMode expr_mode = exec::ExprMode::kCompiled;
    /// Execution mode for the stationary-side local probe plan; the
    /// moving sides additionally arrive column-framed when vectorized.
    exec::ExecMode exec_mode = exec::ExecMode::kRow;
    pool::CostModel costs;
    const PeLocalRegistry* registry = nullptr;  // Stationary-side scans.
    uint64_t credit_window = 4;
    /// Reply retransmission period; 0 disables (fault-free runs).
    sim::SimTime reply_resend_ns = 0;
    /// Retransmission budget: normally the coordinator kills this process
    /// long before it runs out; the cap only stops an orphaned consumer
    /// (crashed coordinator) from ticking forever.
    int reply_resend_attempts = 240;
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit ExchangeConsumerProcess(Config config);

  void OnStart() override;
  void OnMail(const pool::Mail& mail) override;

  std::string debug_name() const override {
    return "exch:" + config_.fragment;
  }

 private:
  void HandleBatch(const pool::Mail& mail);
  /// Advances the pipeline: drains in-order build batches into the hash
  /// table, seals the build on EOS, then probes (buffered + streaming
  /// moving batches, or the local stationary input).
  void Pump();
  Status ProbeTuples(const std::vector<Tuple>& tuples);
  void RunLocalProbe();
  void SendReply(Status status);
  /// Charges this PE for the join work performed since the last call
  /// (same cost formula as Executor::RunJoin).
  void ChargeJoinDelta();

  const SideSpec& Side(int side) const {
    return side == 0 ? config_.left : config_.right;
  }

  Config config_;
  // Process-local state below is wrapped in the ownership checker.
  pool::OwnedPtr<exec::PipelinedHashJoin> join_;
  pool::Owned<std::vector<exec::InboundChannel>> build_channels_;
  pool::Owned<std::vector<exec::InboundChannel>> probe_channels_;
  pool::Owned<std::vector<Tuple>> probe_buffer_;  // Pre-build-EOS arrivals.
  pool::Owned<std::vector<Tuple>> results_;
  pool::Owned<std::shared_ptr<ExecPlanReply>> reply_;

  int reply_resends_left_ = 0;
  bool build_done_ = false;
  bool probe_drained_ = false;  // Stationary probe executed (if any).
  bool replied_ = false;
  bool failed_ = false;
  exec::JoinCounters charged_;  // Counter snapshot of the last charge.

  // Prepared residual predicate (full join predicate re-checked per pair,
  // as in Executor::RunJoin).
  std::shared_ptr<exec::CompiledExpr> compiled_predicate_;
  sim::SimTime predicate_cost_ns_ = 0;

  obs::Counter* m_batches_received_ = nullptr;
  obs::Counter* m_dup_batches_ = nullptr;  // Lazy: fault paths only.
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_EXCHANGE_PROCESS_H_
