#include "gdh/gdh_process.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "gdh/ofm_process.h"
#include "gdh/query_process.h"
#include "sql/parser.h"

namespace prisma::gdh {

using sql::BoundStatement;
using sql::Statement;

GdhProcess::GdhProcess(Config config) : config_(std::move(config)) {
  PRISMA_CHECK(!config_.fragment_pes.empty());
  PRISMA_CHECK(!config_.coordinator_pes.empty());
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m_statements_ = m.GetCounter("gdh.statements");
    m_selects_ = m.GetCounter("gdh.selects_spawned");
    m_txns_begun_ = m.GetCounter("gdh.txns_begun");
    m_txns_committed_ = m.GetCounter("gdh.txns_committed");
    m_txns_aborted_ = m.GetCounter("gdh.txns_aborted");
    m_deadlock_aborts_ = m.GetCounter("gdh.deadlock_aborts");
    m_write_ops_ = m.GetCounter("gdh.write_ops_sent");
    m_2pc_rounds_ = m.GetCounter("gdh.2pc_rounds");
  }
}

// --------------------------------------------------------------- Plumbing

void GdhProcess::ReplyToClient(pool::ProcessId client, uint64_t request_id,
                               Status status, uint64_t affected,
                               exec::TxnId txn) {
  auto reply = std::make_shared<ClientReply>();
  reply->request_id = request_id;
  reply->status = std::move(status);
  reply->affected_rows = affected;
  reply->txn = txn;
  SendMail(client, kMailClientReply, reply, reply->WireBits());
}

StatusOr<pool::ProcessId> GdhProcess::OfmOf(const std::string& fragment) const {
  const size_t hash_pos = fragment.rfind('#');
  if (hash_pos == std::string::npos) {
    return InvalidArgumentError("malformed fragment name " + fragment);
  }
  const std::string table = fragment.substr(0, hash_pos);
  ASSIGN_OR_RETURN(const TableInfo* info, dictionary_.GetTable(table));
  for (const FragmentInfo& frag : info->fragments) {
    if (frag.name == fragment) return frag.ofm;
  }
  return NotFoundError("no fragment " + fragment);
}

void GdhProcess::UpdateRowCount(const std::string& fragment, int64_t delta) {
  const size_t hash_pos = fragment.rfind('#');
  if (hash_pos == std::string::npos) return;
  auto info = dictionary_.GetTable(fragment.substr(0, hash_pos));
  if (!info.ok()) return;
  for (FragmentInfo& frag : (*info)->fragments) {
    if (frag.name != fragment) continue;
    if (delta < 0 && frag.row_count < static_cast<uint64_t>(-delta)) {
      frag.row_count = 0;
    } else {
      frag.row_count += delta;
    }
    return;
  }
}

exec::TxnId GdhProcess::NewTxn(bool explicit_txn) {
  const exec::TxnId txn = next_txn_++;
  txns_[txn].explicit_txn = explicit_txn;
  return txn;
}

void GdhProcess::FinishMulticast(uint64_t batch_id, Multicast& batch) {
  if (batch.done_called) return;
  batch.done_called = true;
  runtime()->simulator()->Cancel(batch.timeout_event);
  auto done = std::move(batch.done);
  Multicast snapshot = std::move(batch);
  batches_.erase(batch_id);
  done(snapshot);
}

// ----------------------------------------------------------------- Locks

void GdhProcess::AcquireExclusive(exec::TxnId txn,
                                  std::vector<std::string> resources,
                                  size_t index,
                                  std::function<void(Status)> then) {
  if (index >= resources.size()) {
    then(Status::OK());
    return;
  }
  const std::string resource = resources[index];
  locks_.Acquire(
      txn, resource, LockMode::kExclusive,
      [this, txn, resources = std::move(resources), index,
       then = std::move(then)](Status status) mutable {
        if (!status.ok()) {
          ++stats_.deadlock_aborts;
          Inc(m_deadlock_aborts_);
          then(std::move(status));
          return;
        }
        AcquireExclusive(txn, std::move(resources), index + 1,
                         std::move(then));
      });
}

void GdhProcess::HandleLockBatch(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<LockBatchRequest>>(mail.body);
  ChargeCpu(config_.costs.message_handling_ns);
  std::sort(request->resources.begin(), request->resources.end());
  const pool::ProcessId requester = mail.from;
  const exec::TxnId txn = request->txn;
  const uint64_t request_id = request->request_id;
  // Sequentially acquire shared locks; callback-chained like the X path.
  auto respond = [this, requester, request_id, txn](Status status) {
    if (!status.ok()) {
      ++stats_.deadlock_aborts;
      Inc(m_deadlock_aborts_);
      // A deadlock aborts the whole transaction (the SELECT's statement
      // txn, or the enclosing explicit transaction).
      AbortEverywhere(txn, [this, requester, request_id,
                            status](Status) mutable {
        auto reply = std::make_shared<LockBatchReply>();
        reply->request_id = request_id;
        reply->status = std::move(status);
        SendMail(requester, kMailLockBatchReply, reply, kControlBits);
      });
      return;
    }
    auto reply = std::make_shared<LockBatchReply>();
    reply->request_id = request_id;
    SendMail(requester, kMailLockBatchReply, reply, kControlBits);
  };

  // Recursive shared acquisition.
  auto resources = std::make_shared<std::vector<std::string>>(
      std::move(request->resources));
  auto step = std::make_shared<std::function<void(size_t)>>();
  // The stored closure must hold itself only weakly: a strong `step`
  // capture would make the shared_ptr own its own control block and leak.
  // Each pending Acquire callback keeps a strong reference, so the chain
  // stays alive exactly until the last lock resolves.
  std::weak_ptr<std::function<void(size_t)>> weak_step = step;
  *step = [this, resources, txn, respond, weak_step](size_t index) {
    if (index >= resources->size()) {
      respond(Status::OK());
      return;
    }
    locks_.Acquire(txn, (*resources)[index], LockMode::kShared,
                   [respond, step = weak_step.lock(), index](Status status) {
                     if (!status.ok()) {
                       respond(std::move(status));
                       return;
                     }
                     (*step)(index + 1);
                   });
  };
  (*step)(0);
}

// ------------------------------------------------------------------- 2PC

void GdhProcess::RunTwoPhaseCommit(exec::TxnId txn,
                                   std::function<void(Status)> then) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    then(NotFoundError("unknown transaction " + std::to_string(txn)));
    return;
  }
  std::vector<std::string> involved(it->second.involved.begin(),
                                    it->second.involved.end());
  if (involved.empty()) {
    decisions_[txn] = true;
    locks_.ReleaseAll(txn);
    txns_.erase(txn);
    ++stats_.txns_committed;
    Inc(m_txns_committed_);
    then(Status::OK());
    return;
  }

  // Phase 1: prepare.
  Inc(m_2pc_rounds_);
  const sim::SimTime phase1_start = runtime()->simulator()->now();
  const uint64_t batch_id = next_batch_id_++;
  Multicast& batch = batches_[batch_id];
  batch.expected = involved.size();
  batch.done = [this, txn, involved, phase1_start,
                then = std::move(then)](Multicast& m) {
    const bool commit = m.first_error.ok();
    decisions_[txn] = commit;
    if (config_.tracer != nullptr && config_.tracer->enabled()) {
      config_.tracer->Span("gdh", "2pc.prepare", phase1_start,
                           runtime()->simulator()->now(), pe(), self(),
                           "txn", std::to_string(txn));
    }
    // Phase 2: decision.
    const sim::SimTime phase2_start = runtime()->simulator()->now();
    const uint64_t batch2 = next_batch_id_++;
    Multicast& second = batches_[batch2];
    second.expected = involved.size();
    Status outcome = commit ? Status::OK()
                            : AbortedError("transaction " +
                                           std::to_string(txn) +
                                           " aborted during prepare: " +
                                           m.first_error.message());
    second.done = [this, txn, outcome, phase2_start, then](Multicast&) {
      locks_.ReleaseAll(txn);
      txns_.erase(txn);
      if (outcome.ok()) {
        ++stats_.txns_committed;
        Inc(m_txns_committed_);
      } else {
        ++stats_.txns_aborted;
        Inc(m_txns_aborted_);
      }
      if (config_.tracer != nullptr && config_.tracer->enabled()) {
        config_.tracer->Span("gdh", "2pc.decision", phase2_start,
                             runtime()->simulator()->now(), pe(), self(),
                             "txn", std::to_string(txn));
      }
      then(outcome);
    };
    for (const std::string& fragment : involved) {
      auto ofm = OfmOf(fragment);
      auto request = std::make_shared<TxnControlRequest>();
      request->request_id = next_request_id_++;
      request->op = commit ? TxnControlRequest::Op::kCommit
                           : TxnControlRequest::Op::kAbort;
      request->txn = txn;
      request_batch_[request->request_id] = batch2;
      if (ofm.ok()) {
        SendMail(*ofm, kMailTxnControl, request, kControlBits);
      }
    }
    batches_[batch2].timeout_event = SendSelfAfter(
        config_.op_timeout_ns, kMailOpTimeout,
        std::make_shared<uint64_t>(batch2));
  };
  for (const std::string& fragment : involved) {
    auto ofm = OfmOf(fragment);
    auto request = std::make_shared<TxnControlRequest>();
    request->request_id = next_request_id_++;
    request->op = TxnControlRequest::Op::kPrepare;
    request->txn = txn;
    request_batch_[request->request_id] = batch_id;
    if (ofm.ok()) {
      SendMail(*ofm, kMailTxnControl, request, kControlBits);
    }
  }
  batches_[batch_id].timeout_event = SendSelfAfter(
      config_.op_timeout_ns, kMailOpTimeout,
      std::make_shared<uint64_t>(batch_id));
}

void GdhProcess::AbortEverywhere(exec::TxnId txn,
                                 std::function<void(Status)> then) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    then(Status::OK());
    return;
  }
  std::vector<std::string> involved(it->second.involved.begin(),
                                    it->second.involved.end());
  decisions_[txn] = false;
  if (involved.empty()) {
    locks_.ReleaseAll(txn);
    txns_.erase(txn);
    then(Status::OK());
    return;
  }
  const uint64_t batch_id = next_batch_id_++;
  Multicast& batch = batches_[batch_id];
  batch.expected = involved.size();
  batch.done = [this, txn, then = std::move(then)](Multicast&) {
    locks_.ReleaseAll(txn);
    txns_.erase(txn);
    ++stats_.txns_aborted;
    Inc(m_txns_aborted_);
    then(Status::OK());
  };
  for (const std::string& fragment : involved) {
    auto ofm = OfmOf(fragment);
    auto request = std::make_shared<TxnControlRequest>();
    request->request_id = next_request_id_++;
    request->op = TxnControlRequest::Op::kAbort;
    request->txn = txn;
    request_batch_[request->request_id] = batch_id;
    if (ofm.ok()) {
      SendMail(*ofm, kMailTxnControl, request, kControlBits);
    }
  }
  batches_[batch_id].timeout_event = SendSelfAfter(
      config_.op_timeout_ns, kMailOpTimeout,
      std::make_shared<uint64_t>(batch_id));
}

// ------------------------------------------------------------------- DDL

void GdhProcess::ExecuteDdl(const BoundStatement& bound,
                            const std::shared_ptr<ClientStatement>& stmt,
                            pool::ProcessId client) {
  switch (bound.kind) {
    case Statement::Kind::kCreateTable: {
      FragmentationSpec spec;
      spec.strategy = bound.fragmentation.strategy;
      spec.column = bound.fragment_column;
      spec.num_fragments = bound.fragmentation.num_fragments;
      auto info_or =
          dictionary_.CreateTable(bound.table, bound.create_schema, spec);
      if (!info_or.ok()) {
        ReplyToClient(client, stmt->request_id, info_or.status(), 0, 0);
        return;
      }
      TableInfo* info = *info_or;
      const size_t pool = config_.fragment_pes.size();
      for (size_t i = 0; i < info->fragments.size(); ++i) {
        const net::NodeId pe =
            config_.placement == PlacementPolicy::kAligned
                ? config_.fragment_pes[i % pool]
                : config_.fragment_pes[placement_cursor_++ % pool];
        OfmProcess::Config ofm_config;
        ofm_config.fragment_name = info->fragments[i].name;
        ofm_config.schema = info->schema;
        ofm_config.ofm.type = config_.base_ofm_type;
        auto res = config_.resources.find(pe);
        if (res != config_.resources.end()) {
          ofm_config.ofm.memory = res->second.memory;
          ofm_config.ofm.stable = res->second.stable;
        }
        ofm_config.ofm.exec.expr_mode = config_.expr_mode;
        ofm_config.ofm.exec.costs = config_.costs;
        ofm_config.gdh = self();
        ofm_config.registry = config_.registry;
        ofm_config.metrics = config_.metrics;
        info->fragments[i].pe = pe;
        info->fragments[i].ofm =
            runtime()->Spawn(pe, std::make_unique<OfmProcess>(
                                     std::move(ofm_config)));
      }
      ReplyToClient(client, stmt->request_id, Status::OK(), 0, 0);
      return;
    }
    case Statement::Kind::kDropTable: {
      auto info = dictionary_.GetTable(bound.table);
      if (!info.ok()) {
        ReplyToClient(client, stmt->request_id, info.status(), 0, 0);
        return;
      }
      for (const FragmentInfo& frag : (*info)->fragments) {
        runtime()->Kill(frag.ofm);
      }
      PRISMA_CHECK_OK(dictionary_.DropTable(bound.table));
      ReplyToClient(client, stmt->request_id, Status::OK(), 0, 0);
      return;
    }
    case Statement::Kind::kCreateIndex: {
      IndexInfo index;
      index.name = bound.index_name;
      index.columns = bound.index_columns;
      index.ordered = bound.index_ordered;
      Status added = dictionary_.AddIndex(bound.table, index);
      if (!added.ok()) {
        ReplyToClient(client, stmt->request_id, added, 0, 0);
        return;
      }
      auto info = dictionary_.GetTable(bound.table);
      PRISMA_CHECK(info.ok());
      const uint64_t batch_id = next_batch_id_++;
      Multicast& batch = batches_[batch_id];
      batch.expected = (*info)->fragments.size();
      const uint64_t request_id = stmt->request_id;
      batch.done = [this, client, request_id](Multicast& m) {
        ReplyToClient(client, request_id, m.first_error, 0, 0);
      };
      for (const FragmentInfo& frag : (*info)->fragments) {
        auto request = std::make_shared<CreateIndexRequest>();
        request->request_id = next_request_id_++;
        request->index_name = index.name;
        request->columns = index.columns;
        request->ordered = index.ordered;
        request_batch_[request->request_id] = batch_id;
        SendMail(frag.ofm, kMailCreateIndex, request, kControlBits);
      }
      batches_[batch_id].timeout_event = SendSelfAfter(
          config_.op_timeout_ns, kMailOpTimeout,
          std::make_shared<uint64_t>(batch_id));
      return;
    }
    default:
      ReplyToClient(client, stmt->request_id,
                    InternalError("not a DDL statement"), 0, 0);
  }
}

// ------------------------------------------------------------------- DML

StatusOr<std::vector<std::string>> GdhProcess::TargetFragments(
    const std::string& table, const algebra::Expr* where) const {
  ASSIGN_OR_RETURN(const TableInfo* info, dictionary_.GetTable(table));
  // Prune to one fragment when the predicate pins the fragmentation key.
  if (where != nullptr &&
      (info->fragmentation.strategy == sql::FragmentStrategy::kHash ||
       info->fragmentation.strategy == sql::FragmentStrategy::kRange)) {
    for (const auto& conjunct : algebra::SplitConjuncts(*where)) {
      if (conjunct->kind() != algebra::ExprKind::kBinary ||
          conjunct->binary_op() != algebra::BinaryOp::kEq) {
        continue;
      }
      const algebra::Expr* l = conjunct->left();
      const algebra::Expr* r = conjunct->right();
      if (l->kind() == algebra::ExprKind::kLiteral) std::swap(l, r);
      if (l->kind() == algebra::ExprKind::kColumnRef && l->bound() &&
          l->column_index() == info->fragmentation.column &&
          r->kind() == algebra::ExprKind::kLiteral) {
        std::vector<std::string> out;
        for (const int f :
             info->fragmenter->FragmentsForKey(r->literal())) {
          out.push_back(info->fragments[f].name);
        }
        return out;
      }
    }
  }
  std::vector<std::string> all;
  for (const FragmentInfo& frag : info->fragments) all.push_back(frag.name);
  return all;
}

void GdhProcess::ExecuteWrite(std::shared_ptr<BoundStatement> bound,
                              const std::shared_ptr<ClientStatement>& stmt,
                              pool::ProcessId client) {
  auto info_or = dictionary_.GetTable(bound->table);
  if (!info_or.ok()) {
    ReplyToClient(client, stmt->request_id, info_or.status(), 0, 0);
    return;
  }
  TableInfo* info = *info_or;

  // Build the per-fragment operation list.
  struct Op {
    std::string fragment;
    std::shared_ptr<WriteRequest> request;
  };
  auto ops = std::make_shared<std::vector<Op>>();
  switch (bound->kind) {
    case Statement::Kind::kInsert: {
      for (const Tuple& row : bound->insert_rows) {
        auto frag_or = info->fragmenter->FragmentOf(row);
        if (!frag_or.ok()) {
          ReplyToClient(client, stmt->request_id, frag_or.status(), 0, 0);
          return;
        }
        auto request = std::make_shared<WriteRequest>();
        request->op = WriteRequest::Op::kInsert;
        request->tuple = row;
        ops->push_back(Op{info->fragments[*frag_or].name, std::move(request)});
      }
      break;
    }
    case Statement::Kind::kDelete:
    case Statement::Kind::kUpdate: {
      auto targets = TargetFragments(bound->table, bound->where.get());
      if (!targets.ok()) {
        ReplyToClient(client, stmt->request_id, targets.status(), 0, 0);
        return;
      }
      for (const std::string& fragment : *targets) {
        auto request = std::make_shared<WriteRequest>();
        request->op = bound->kind == Statement::Kind::kDelete
                          ? WriteRequest::Op::kDeleteWhere
                          : WriteRequest::Op::kUpdateWhere;
        if (bound->where != nullptr) {
          request->predicate = std::shared_ptr<const algebra::Expr>(
              bound, bound->where.get());
        }
        for (const auto& [col, expr] : bound->assignments) {
          request->assignments.push_back(
              {col, std::shared_ptr<const algebra::Expr>(bound, expr.get())});
        }
        ops->push_back(Op{fragment, std::move(request)});
      }
      break;
    }
    default:
      ReplyToClient(client, stmt->request_id,
                    InternalError("not a write statement"), 0, 0);
      return;
  }

  // Transaction scope: the session transaction or an implicit one that
  // two-phase-commits at the end of the statement.
  exec::TxnId txn = stmt->txn;
  bool implicit = false;
  if (txn == exec::kAutoCommit) {
    txn = NewTxn(false);
    implicit = true;
  } else if (txns_.count(txn) == 0) {
    ReplyToClient(client, stmt->request_id,
                  NotFoundError("unknown transaction " + std::to_string(txn)),
                  0, 0);
    return;
  }

  std::vector<std::string> resources;
  for (const Op& op : *ops) resources.push_back(op.fragment);
  std::sort(resources.begin(), resources.end());
  resources.erase(std::unique(resources.begin(), resources.end()),
                  resources.end());

  const uint64_t client_request = stmt->request_id;
  AcquireExclusive(
      txn, resources, 0,
      [this, txn, implicit, ops, bound, client,
       client_request](Status lock_status) {
        if (!lock_status.ok()) {
          AbortEverywhere(txn, [this, client, client_request,
                                lock_status](Status) {
            ReplyToClient(client, client_request, lock_status, 0, 0);
          });
          return;
        }
        // Locks held: scatter the writes.
        auto& txn_state = txns_[txn];
        const uint64_t batch_id = next_batch_id_++;
        Multicast& batch = batches_[batch_id];
        batch.expected = ops->size();
        batch.done = [this, txn, implicit, client,
                      client_request](Multicast& m) {
          if (!m.first_error.ok()) {
            Status error = m.first_error;
            AbortEverywhere(txn, [this, client, client_request,
                                  error](Status) {
              ReplyToClient(client, client_request, error, 0, 0);
            });
            return;
          }
          const uint64_t affected = m.affected;
          if (implicit) {
            RunTwoPhaseCommit(txn, [this, client, client_request,
                                    affected](Status status) {
              ReplyToClient(client, client_request, status, affected, 0);
            });
          } else {
            ReplyToClient(client, client_request, Status::OK(), affected, 0);
          }
        };
        for (Op& op : *ops) {
          txn_state.involved.insert(op.fragment);
          op.request->request_id = next_request_id_++;
          op.request->txn = txn;
          request_batch_[op.request->request_id] = batch_id;
          auto ofm = OfmOf(op.fragment);
          ++stats_.write_ops_sent;
          Inc(m_write_ops_);
          if (ofm.ok()) {
            SendMail(*ofm, kMailWrite, op.request, op.request->WireBits());
          }
        }
        batches_[batch_id].timeout_event = SendSelfAfter(
            config_.op_timeout_ns, kMailOpTimeout,
            std::make_shared<uint64_t>(batch_id));
      });
}

// --------------------------------------------------------------- Txn ctl

void GdhProcess::ExecuteTxnControl(const BoundStatement& bound,
                                   const std::shared_ptr<ClientStatement>& stmt,
                                   pool::ProcessId client) {
  switch (bound.txn_control) {
    case sql::TxnControl::kBegin: {
      const exec::TxnId txn = NewTxn(true);
      ++stats_.txns_begun;
      Inc(m_txns_begun_);
      ReplyToClient(client, stmt->request_id, Status::OK(), 0, txn);
      return;
    }
    case sql::TxnControl::kCommit: {
      const uint64_t request_id = stmt->request_id;
      RunTwoPhaseCommit(stmt->txn,
                        [this, client, request_id](Status status) {
                          ReplyToClient(client, request_id, status, 0, 0);
                        });
      return;
    }
    case sql::TxnControl::kAbort: {
      const uint64_t request_id = stmt->request_id;
      AbortEverywhere(stmt->txn, [this, client, request_id](Status status) {
        ReplyToClient(client, request_id, status, 0, 0);
      });
      return;
    }
  }
}

// ----------------------------------------------------------- Coordinators

void GdhProcess::SpawnCoordinator(const std::shared_ptr<ClientStatement>& stmt,
                                  pool::ProcessId client) {
  exec::TxnId lock_txn = stmt->txn;
  if (lock_txn == exec::kAutoCommit) {
    lock_txn = NewTxn(false);
  } else if (txns_.count(lock_txn) == 0) {
    ReplyToClient(client, stmt->request_id,
                  NotFoundError("unknown transaction " +
                                std::to_string(lock_txn)),
                  0, 0);
    return;
  }
  QueryProcess::Config config;
  config.dictionary = &dictionary_;
  config.rules = config_.rules;
  config.costs = config_.costs;
  config.expr_mode = config_.expr_mode;
  config.gdh = self();
  config.client = client;
  config.statement = stmt;
  config.lock_txn = lock_txn;
  config.timeout_ns = config_.query_timeout_ns;
  config.metrics = config_.metrics;
  config.tracer = config_.tracer;
  const net::NodeId pe = config_.coordinator_pes[coordinator_cursor_++ %
                                                 config_.coordinator_pes.size()];
  runtime()->Spawn(pe, std::make_unique<QueryProcess>(std::move(config)));
  ++stats_.selects_spawned;
  Inc(m_selects_);
}

void GdhProcess::HandleStatementDone(const pool::Mail& mail) {
  auto done = std::any_cast<std::shared_ptr<StatementDone>>(mail.body);
  auto it = txns_.find(done->txn);
  if (it != txns_.end() && !it->second.explicit_txn &&
      it->second.involved.empty()) {
    // Statement-scoped read locks.
    locks_.ReleaseAll(done->txn);
    txns_.erase(it);
  }
  // The per-query coordinator instance has served its purpose (§2.2).
  runtime()->Kill(mail.from);
}

// ---------------------------------------------------------------- Replies

void GdhProcess::HandleWriteReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<WriteReply>>(mail.body);
  auto it = request_batch_.find(reply->request_id);
  if (it == request_batch_.end()) return;
  const uint64_t batch_id = it->second;
  request_batch_.erase(it);
  auto batch_it = batches_.find(batch_id);
  if (batch_it == batches_.end()) return;
  Multicast& batch = batch_it->second;
  ++batch.received;
  if (!reply->status.ok() && batch.first_error.ok()) {
    batch.first_error = reply->status;
  }
  batch.affected += reply->affected_rows;
  if (reply->row_delta != 0) UpdateRowCount(reply->fragment, reply->row_delta);
  if (batch.received == batch.expected) FinishMulticast(batch_id, batch);
}

void GdhProcess::HandleTxnControlReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<TxnControlReply>>(mail.body);
  auto it = request_batch_.find(reply->request_id);
  if (it == request_batch_.end()) return;
  const uint64_t batch_id = it->second;
  request_batch_.erase(it);
  auto batch_it = batches_.find(batch_id);
  if (batch_it == batches_.end()) return;
  Multicast& batch = batch_it->second;
  ++batch.received;
  if (!reply->status.ok() && batch.first_error.ok()) {
    batch.first_error = reply->status;
  }
  if (batch.received == batch.expected) FinishMulticast(batch_id, batch);
}

void GdhProcess::HandleDecisionRequest(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<DecisionRequest>>(mail.body);
  auto reply = std::make_shared<DecisionReply>();
  reply->request_id = request->request_id;
  for (const exec::TxnId txn : request->transactions) {
    auto it = decisions_.find(txn);
    // Presumed abort for unknown transactions.
    reply->commit.push_back(it != decisions_.end() && it->second);
  }
  SendMail(mail.from, kMailDecisionReply, reply, kControlBits);
}

void GdhProcess::HandleOpTimeout(const pool::Mail& mail) {
  auto batch_id = std::any_cast<std::shared_ptr<uint64_t>>(mail.body);
  auto it = batches_.find(*batch_id);
  if (it == batches_.end()) return;
  Multicast& batch = it->second;
  if (batch.first_error.ok()) {
    batch.first_error =
        UnavailableError("fragment did not respond (crashed PE?)");
  }
  FinishMulticast(*batch_id, batch);
}

// ------------------------------------------------------------ Statements

void GdhProcess::HandleClientStatement(const pool::Mail& mail) {
  auto stmt = std::any_cast<std::shared_ptr<ClientStatement>>(mail.body);
  const pool::ProcessId client = mail.from;
  ++stats_.statements;
  Inc(m_statements_);
  // Routing parse is cheap; full parse/optimize happens per-query in the
  // coordinator instances.
  ChargeCpu(config_.costs.optimize_ns / 10);

  if (stmt->is_prismalog) {
    SpawnCoordinator(stmt, client);
    return;
  }
  auto parsed = sql::ParseSql(stmt->text);
  if (!parsed.ok()) {
    ReplyToClient(client, stmt->request_id, parsed.status(), 0, 0);
    return;
  }
  switch (parsed->kind) {
    case Statement::Kind::kSelect:
      SpawnCoordinator(stmt, client);
      return;
    case Statement::Kind::kTxnControl: {
      auto bound = sql::BindStatement(*parsed, dictionary_);
      PRISMA_CHECK(bound.ok());
      ExecuteTxnControl(*bound, stmt, client);
      return;
    }
    case Statement::Kind::kCreateTable:
    case Statement::Kind::kDropTable:
    case Statement::Kind::kCreateIndex: {
      auto bound = sql::BindStatement(*parsed, dictionary_);
      if (!bound.ok()) {
        ReplyToClient(client, stmt->request_id, bound.status(), 0, 0);
        return;
      }
      ExecuteDdl(*bound, stmt, client);
      return;
    }
    case Statement::Kind::kCheckpoint: {
      ExecuteCheckpoint(stmt, client);
      return;
    }
    case Statement::Kind::kInsert:
    case Statement::Kind::kDelete:
    case Statement::Kind::kUpdate: {
      auto bound = sql::BindStatement(*parsed, dictionary_);
      if (!bound.ok()) {
        ReplyToClient(client, stmt->request_id, bound.status(), 0, 0);
        return;
      }
      ExecuteWrite(std::make_shared<BoundStatement>(std::move(bound).value()),
                   stmt, client);
      return;
    }
  }
}

void GdhProcess::ExecuteCheckpoint(
    const std::shared_ptr<ClientStatement>& stmt, pool::ProcessId client) {
  std::vector<pool::ProcessId> ofms;
  for (const std::string& table : dictionary_.TableNames()) {
    auto info = dictionary_.GetTable(table);
    PRISMA_CHECK(info.ok());
    for (const FragmentInfo& frag : (*info)->fragments) {
      if (frag.ofm != pool::kNoProcess) ofms.push_back(frag.ofm);
    }
  }
  if (ofms.empty()) {
    ReplyToClient(client, stmt->request_id, Status::OK(), 0, 0);
    return;
  }
  const uint64_t batch_id = next_batch_id_++;
  Multicast& batch = batches_[batch_id];
  batch.expected = ofms.size();
  const uint64_t request_id = stmt->request_id;
  batch.done = [this, client, request_id](Multicast& m) {
    ReplyToClient(client, request_id, m.first_error, m.affected, 0);
  };
  for (const pool::ProcessId ofm : ofms) {
    auto request = std::make_shared<CheckpointRequest>();
    request->request_id = next_request_id_++;
    request_batch_[request->request_id] = batch_id;
    SendMail(ofm, kMailCheckpoint, request, kControlBits);
  }
  batches_[batch_id].timeout_event = SendSelfAfter(
      config_.op_timeout_ns, kMailOpTimeout,
      std::make_shared<uint64_t>(batch_id));
}

// -------------------------------------------------------- Crash / recover

Status GdhProcess::CrashFragment(const std::string& table, int fragment) {
  ASSIGN_OR_RETURN(TableInfo * info, dictionary_.GetTable(table));
  if (fragment < 0 || fragment >= static_cast<int>(info->fragments.size())) {
    return OutOfRangeError("no such fragment");
  }
  runtime()->Kill(info->fragments[fragment].ofm);
  info->fragments[fragment].ofm = pool::kNoProcess;
  return Status::OK();
}

Status GdhProcess::RecoverFragment(const std::string& table, int fragment) {
  ASSIGN_OR_RETURN(TableInfo * info, dictionary_.GetTable(table));
  if (fragment < 0 || fragment >= static_cast<int>(info->fragments.size())) {
    return OutOfRangeError("no such fragment");
  }
  FragmentInfo& frag = info->fragments[fragment];
  if (frag.ofm != pool::kNoProcess && runtime()->IsAlive(frag.ofm)) {
    return FailedPreconditionError(frag.name + " is alive");
  }
  OfmProcess::Config config;
  config.fragment_name = frag.name;
  config.schema = info->schema;
  config.ofm.type = config_.base_ofm_type;
  auto res = config_.resources.find(frag.pe);
  if (res != config_.resources.end()) {
    config.ofm.memory = res->second.memory;
    config.ofm.stable = res->second.stable;
  }
  config.ofm.exec.expr_mode = config_.expr_mode;
  config.ofm.exec.costs = config_.costs;
  config.recover = true;
  config.gdh = self();
  config.registry = config_.registry;
  config.indexes = info->indexes;
  config.metrics = config_.metrics;
  frag.ofm =
      runtime()->Spawn(frag.pe, std::make_unique<OfmProcess>(std::move(config)));
  // The recovered fragment's statistics are rebuilt lazily; reset to keep
  // the estimator sane.
  return Status::OK();
}

// ------------------------------------------------------------------- Mail

void GdhProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailClientStatement) {
    HandleClientStatement(mail);
  } else if (mail.kind == kMailLockBatch) {
    HandleLockBatch(mail);
  } else if (mail.kind == kMailStatementDone) {
    HandleStatementDone(mail);
  } else if (mail.kind == kMailWriteReply) {
    HandleWriteReply(mail);
  } else if (mail.kind == kMailTxnControlReply) {
    HandleTxnControlReply(mail);
  } else if (mail.kind == kMailDecisionRequest) {
    HandleDecisionRequest(mail);
  } else if (mail.kind == kMailOpTimeout) {
    HandleOpTimeout(mail);
  }
}

}  // namespace prisma::gdh
