#include "gdh/gdh_process.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "gdh/ofm_process.h"
#include "gdh/query_process.h"
#include "sql/parser.h"

namespace prisma::gdh {

using sql::BoundStatement;
using sql::Statement;

namespace {

/// Stable-store stream holding the presumed-abort decision log: "C <txn>"
/// when a commit decision is forced, "E <txn>" once every participant
/// acknowledged it. Aborts are never logged.
constexpr char kDecisionStream[] = "gdh.2pc";

/// Stable-store stream of transaction-id reservations: each record is a
/// high-water mark below which every id may already have been handed out.
/// Aborted and read-only transactions leave no trace in the decision log,
/// so without this a restarted GDH could reuse their ids and trip the
/// OFMs' terminated-transaction dedup ("already terminated").
constexpr char kTxnIdStream[] = "gdh.txnids";
constexpr exec::TxnId kTxnIdChunk = 64;

}  // namespace

GdhProcess::GdhProcess(Config config) : config_(std::move(config)) {
  PRISMA_CHECK(!config_.fragment_pes.empty());
  PRISMA_CHECK(!config_.coordinator_pes.empty());
  // Replication needs a distinct PE for the backup (anti-affinity) and a
  // WAL to resync from.
  PRISMA_CHECK(!config_.replicate_fragments ||
               (config_.fragment_pes.size() >= 2 &&
                config_.base_ofm_type == exec::OfmType::kFull));
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m_statements_ = m.GetCounter("gdh.statements");
    m_selects_ = m.GetCounter("gdh.selects_spawned");
    m_txns_begun_ = m.GetCounter("gdh.txns_begun");
    m_txns_committed_ = m.GetCounter("gdh.txns_committed");
    m_txns_aborted_ = m.GetCounter("gdh.txns_aborted");
    m_deadlock_aborts_ = m.GetCounter("gdh.deadlock_aborts");
    m_write_ops_ = m.GetCounter("gdh.write_ops_sent");
    m_2pc_rounds_ = m.GetCounter("gdh.2pc_rounds");
  }
}

void GdhProcess::OnStart() {
  // A restarted GDH re-learns its unforgotten commit decisions so it can
  // answer in-doubt inquiries; everything absent is presumed aborted.
  ReplayDecisionLog();
}

// --------------------------------------------------------------- Plumbing

obs::Counter* GdhProcess::LazyCounter(obs::Counter** slot, const char* name) {
  if (*slot == nullptr && config_.metrics != nullptr) {
    *slot = config_.metrics->GetCounter(name);
  }
  return *slot;
}

void GdhProcess::ReplyToClient(pool::ProcessId client, uint64_t request_id,
                               Status status, uint64_t affected,
                               exec::TxnId txn) {
  auto reply = std::make_shared<ClientReply>();
  reply->request_id = request_id;
  reply->status = std::move(status);
  reply->affected_rows = affected;
  reply->txn = txn;
  SendMail(client, kMailClientReply, reply, reply->WireBits());
}

StatusOr<pool::ProcessId> GdhProcess::OfmOf(const std::string& fragment) const {
  const std::string table = TableOfFragment(fragment);
  if (table.empty()) {
    return InvalidArgumentError("malformed fragment name " + fragment);
  }
  ASSIGN_OR_RETURN(const TableInfo* info, dictionary_->GetTable(table));
  for (const FragmentInfo& frag : info->fragments) {
    for (int r = 0; r < frag.num_replicas(); ++r) {
      if (frag.ReplicaName(r) == fragment) return frag.ReplicaOfm(r);
    }
  }
  return NotFoundError("no fragment " + fragment);
}

FragmentInfo* GdhProcess::FindFragment(const std::string& replica_name,
                                       int* replica) {
  const std::string table = TableOfFragment(replica_name);
  if (table.empty()) return nullptr;
  auto info = dictionary_->GetTable(table);
  if (!info.ok()) return nullptr;
  for (FragmentInfo& frag : (*info)->fragments) {
    for (int r = 0; r < frag.num_replicas(); ++r) {
      if (frag.ReplicaName(r) == replica_name) {
        if (replica != nullptr) *replica = r;
        return &frag;
      }
    }
  }
  return nullptr;
}

void GdhProcess::UpdateRowCount(const std::string& fragment, int64_t delta) {
  // Both replicas hold the same rows: the count lives once, on the base
  // fragment, no matter which replica's reply carried the delta.
  FragmentInfo* frag = FindFragment(fragment, nullptr);
  if (frag == nullptr) return;
  if (delta < 0 && frag->row_count < static_cast<uint64_t>(-delta)) {
    frag->row_count = 0;
  } else {
    frag->row_count += delta;
  }
}

exec::TxnId GdhProcess::NewTxn(bool explicit_txn) {
  if (next_txn_ >= txn_id_hwm_) {
    // Reserve a chunk of ids before handing any of them out.
    txn_id_hwm_ = next_txn_ + kTxnIdChunk;
    if (storage::StableStore* store = DecisionStore()) {
      ChargeCpu(store->Append(kTxnIdStream, std::to_string(txn_id_hwm_)));
    }
  }
  const exec::TxnId txn = next_txn_++;
  (*txns_)[txn].explicit_txn = explicit_txn;
  return txn;
}

void GdhProcess::FinishMulticast(uint64_t batch_id, Multicast& batch) {
  if (batch.done_called) return;
  batch.done_called = true;
  auto done = std::move(batch.done);
  Multicast snapshot = std::move(batch);
  batches_.erase(batch_id);
  done(snapshot);
}

// ----------------------------------------------------------- Hardened RPC

void GdhProcess::SendRpc(uint64_t request_id, uint64_t batch_id,
                         std::string fragment, const char* kind,
                         std::any body, int64_t size_bits,
                         int max_attempts) {
  request_batch_[request_id] = batch_id;
  PendingRpc rpc;
  rpc.fragment = std::move(fragment);
  rpc.kind = kind;
  rpc.body = std::move(body);
  rpc.size_bits = size_bits;
  rpc.max_attempts = max_attempts;
  rpc.delay = config_.rpc_timeout_ns;
  auto ofm = OfmOf(rpc.fragment);
  if (ofm.ok() && *ofm != pool::kNoProcess) {
    SendMail(*ofm, rpc.kind, rpc.body, rpc.size_bits);
  }
  // An unresolvable target (crashed fragment) is treated like a lost
  // message: the timer keeps retrying, chasing a later respawn.
  rpc.timer = SendSelfAfter(rpc.delay, kMailRpcTimeout,
                            std::make_shared<uint64_t>(request_id));
  rpcs_[request_id] = std::move(rpc);
}

bool GdhProcess::SettleRpc(uint64_t request_id) {
  auto it = rpcs_.find(request_id);
  if (it == rpcs_.end()) return false;
  runtime()->simulator()->Cancel(it->second.timer);
  rpcs_.erase(it);
  return true;
}

void GdhProcess::AccountBatchMember(uint64_t request_id, const Status& status,
                                    uint64_t affected) {
  auto it = request_batch_.find(request_id);
  if (it == request_batch_.end()) return;
  const uint64_t batch_id = it->second;
  request_batch_.erase(it);
  auto batch_it = batches_.find(batch_id);
  if (batch_it == batches_.end()) return;
  Multicast& batch = batch_it->second;
  ++batch.received;
  if (!status.ok() && batch.first_error.ok()) batch.first_error = status;
  batch.affected += affected;
  if (batch.received == batch.expected) FinishMulticast(batch_id, batch);
}

void GdhProcess::HandleRpcTimeout(const pool::Mail& mail) {
  const uint64_t request_id =
      *std::any_cast<std::shared_ptr<uint64_t>>(mail.body);
  auto it = rpcs_.find(request_id);
  if (it == rpcs_.end()) return;  // Answered in the meantime.
  PendingRpc& rpc = it->second;
  if (rpc.attempts >= rpc.max_attempts) {
    int replica = 0;
    FragmentInfo* frag = FindFragment(rpc.fragment, &replica);
    // A replicated fragment with a healthy peer sheds the unanswered
    // replica instead of failing the operation: the replica is marked
    // stale (rebuilt by resync before it serves anything again) and this
    // member settles benignly — the surviving replica alone carries the
    // write, the prepare vote or the decision.
    if (frag != nullptr && frag->replicated && rpc.kind != kMailResync &&
        TryFailover(*frag, replica)) {
      // A fresh shed sweeps this RPC from inside TryFailover (it was
      // addressed to the shed replica); an already-shed replica's RPC is
      // settled here instead. `it` may dangle after the sweep.
      if (SettleRpc(request_id)) {
        dual_writes_.erase(request_id);
        AccountBatchMember(request_id, Status::OK(), 0);
      }
      return;
    }
    // Budget exhausted: degrade to a typed kUnavailable so the statement
    // completes instead of hanging. The message names the unreachable
    // fragment and its PE (degradation reporting).
    ++stats_.rpc_failures;
    Inc(LazyCounter(&m_rpc_failures_, "gdh.rpc_failures"));
    const net::NodeId target_pe =
        frag != nullptr ? frag->ReplicaPe(replica) : 0;
    Status failure = UnavailableError(
        "fragment " + rpc.fragment + " on PE " + std::to_string(target_pe) +
        " did not answer " + rpc.kind + " after " +
        std::to_string(rpc.attempts) + " attempts (crashed PE?)");
    CountUnavailable(target_pe, TableOfFragment(rpc.fragment));
    // The OFM may have executed the write and only its reply was lost: a
    // late reply must still feed the row-count statistics.
    if (rpc.kind == kMailWrite) NoteDegradedWrite(request_id);
    rpcs_.erase(it);
    AccountBatchMember(request_id, failure, 0);
    return;
  }
  ++rpc.attempts;
  ++stats_.rpc_retries;
  Inc(LazyCounter(&m_rpc_retries_, "gdh.rpc_retries"));
  // Re-resolve the target: the fragment may have respawned under a new
  // pid since the last attempt.
  auto ofm = OfmOf(rpc.fragment);
  const bool target_dead =
      !ofm.ok() || *ofm == pool::kNoProcess || !runtime()->IsAlive(*ofm);
  if (target_dead && rpc.kind != kMailResync) {
    // The host process is gone, not just slow: a replicated fragment with
    // a healthy peer sheds the replica on the first retry that notices,
    // mirroring the scatter-time shed in WriteTargets. Waiting out the
    // budget would pin decision RPCs (extended budget) for seconds on a
    // target that cannot answer before its PE restarts.
    int replica = 0;
    FragmentInfo* frag = FindFragment(rpc.fragment, &replica);
    if (frag != nullptr && frag->replicated && TryFailover(*frag, replica)) {
      if (SettleRpc(request_id)) {
        dual_writes_.erase(request_id);
        AccountBatchMember(request_id, Status::OK(), 0);
      }
      return;
    }
  }
  if (ofm.ok() && *ofm != pool::kNoProcess) {
    SendMail(*ofm, rpc.kind, rpc.body, rpc.size_bits);
  }
  rpc.delay = std::min(rpc.delay * 2, config_.rpc_backoff_cap_ns);
  rpc.timer = SendSelfAfter(rpc.delay, kMailRpcTimeout,
                            std::make_shared<uint64_t>(request_id));
}

void GdhProcess::NoteDegradedWrite(uint64_t request_id) {
  degraded_writes_.insert(request_id);
  degraded_writes_order_.push_back(request_id);
  if (degraded_writes_order_.size() > kDegradedWriteCap) {
    // Entries whose late reply already arrived were erased from the set;
    // the stale deque slot is simply skipped.
    degraded_writes_.erase(degraded_writes_order_.front());
    degraded_writes_order_.pop_front();
  }
}

sim::SimTime GdhProcess::DedupRetentionNs() const {
  // Worst-case sender retransmission window: decision-phase RPCs make up
  // to rpc_attempts + 4 sends, each gap bounded by the larger of the
  // initial timeout and the backoff cap; doubled for delivery jitter and
  // duplicates the network may hold back.
  const sim::SimTime gap =
      std::max(config_.rpc_timeout_ns, config_.rpc_backoff_cap_ns);
  return 2 * static_cast<sim::SimTime>(config_.rpc_attempts + 5) * gap;
}

void GdhProcess::DoomTxnsInvolving(const std::string& fragment) {
  for (auto& [txn, state] : *txns_) {
    if (state.doomed || !state.involved.contains(fragment)) continue;
    state.doomed = true;
    ++stats_.txns_doomed;
    Inc(LazyCounter(&m_txns_doomed_, "gdh.txns_doomed"));
  }
}

// ------------------------------------------ Replication (DESIGN.md §13)

bool GdhProcess::TryFailover(FragmentInfo& frag, int dead) {
  if (!frag.replicated) return false;
  if (frag.replica_state(dead) != ReplicaState::kInSync) {
    // Already shed (stale or mid-resync): nothing further to decide.
    return true;
  }
  const int peer = 1 - dead;
  const pool::ProcessId peer_ofm = frag.ReplicaOfm(peer);
  // The failover decision rule: a replica may only be shed while its peer
  // is in-sync and alive. With both replicas down (double failure) every
  // operation keeps both as targets and degrades to typed kUnavailable —
  // never a wrong answer served from a stale copy.
  if (frag.replica_state(peer) != ReplicaState::kInSync ||
      peer_ofm == pool::kNoProcess || !runtime()->IsAlive(peer_ofm)) {
    return false;
  }
  // PRISMA_TRANSITION(kInSync, kStale, observed dead; peer carries on alone)
  frag.set_replica_state(dead, ReplicaState::kStale);
  // Replica placement changed under the cached plans; conservatively drop
  // them (reads re-choose replicas at scatter time, but a fresh plan also
  // re-reads fragment liveness for pruning decisions).
  if (config_.plan_cache != nullptr) {
    config_.plan_cache->Invalidate("failover");
  }
  ++stats_.stale_marks;
  Inc(LazyCounter(&m_stale_marks_, "replica.stale_marks"));
  if (frag.primary_replica == dead) {
    frag.primary_replica = peer;
    ++stats_.failovers;
    Inc(LazyCounter(&m_failovers_, "replica.failovers"));
  }
  // Settle every outstanding RPC addressed to the shed replica right
  // away. Decision-phase RPCs carry an extended retry budget; left
  // pending they would pin the transaction (and the locks it holds) on
  // an answer the stale copy can never usefully give — resync rebuilds
  // it from the survivor, so the survivor's ack alone completes each
  // operation.
  const std::string shed_name = frag.ReplicaName(dead);
  std::vector<uint64_t> orphaned;
  for (const auto& [id, rpc] : rpcs_) {
    if (rpc.fragment == shed_name && rpc.kind != kMailResync) {
      orphaned.push_back(id);
    }
  }
  for (uint64_t id : orphaned) {
    SettleRpc(id);
    dual_writes_.erase(id);
    AccountBatchMember(id, Status::OK(), 0);
  }
  // A shed whose victim process is still alive was a reply-path loss (or
  // an exhaustion that outlived the PE's restart), not a crash: its host
  // PE is up and no future recovery event will come for it, so rebuild
  // the replica right away. Crash sheds leave a dead process; their
  // resync waits for the PE's recovery event as usual.
  const pool::ProcessId shed_ofm = frag.ReplicaOfm(dead);
  if (shed_ofm != pool::kNoProcess && runtime()->IsAlive(shed_ofm)) {
    const size_t hash = frag.name.rfind('#');
    if (hash != std::string::npos) {
      MaybeStartResync(frag.name.substr(0, hash),
                       std::stoi(frag.name.substr(hash + 1)));
    }
  }
  return true;
}

std::vector<std::string> GdhProcess::WriteTargets(FragmentInfo& frag) {
  if (!frag.replicated) return {frag.name};
  std::vector<std::string> out;
  for (int r = 0; r < frag.num_replicas(); ++r) {
    if (frag.replica_state(r) != ReplicaState::kInSync) continue;
    const pool::ProcessId ofm = frag.ReplicaOfm(r);
    // Shed known-dead replicas at scatter time instead of burning a full
    // retransmission budget discovering it per write.
    if ((ofm == pool::kNoProcess || !runtime()->IsAlive(ofm)) &&
        TryFailover(frag, r)) {
      continue;
    }
    out.push_back(frag.ReplicaName(r));
  }
  if (out.empty()) {
    // No in-sync replica at all (double failure): target the primary and
    // let the RPC budget surface a typed kUnavailable.
    out.push_back(frag.ReplicaName(frag.primary_replica));
  }
  return out;
}

std::vector<std::string> GdhProcess::ActiveInvolved(const TxnState& state) {
  std::vector<std::string> out;
  for (const std::string& name : state.involved) {
    int replica = 0;
    const FragmentInfo* frag = FindFragment(name, &replica);
    if (frag != nullptr && frag->replicated &&
        frag->replica_state(replica) != ReplicaState::kInSync) {
      // Shed mid-transaction: the survivor alone decides the outcome; the
      // stale copy is rebuilt by resync before serving again.
      continue;
    }
    out.push_back(name);
  }
  return out;
}

void GdhProcess::CountUnavailable(net::NodeId pe, const std::string& table) {
  if (config_.metrics == nullptr) return;
  config_.metrics
      ->GetCounter("query.unavailable", {{"pe", std::to_string(pe)},
                                         {"table", table}})
      ->Increment();
}

// ------------------------------------------------- Presumed-abort journal

storage::StableStore* GdhProcess::DecisionStore() const {
  auto it = config_.resources.find(pe());
  return it == config_.resources.end() ? nullptr : it->second.stable;
}

void GdhProcess::LogCommitDecision(exec::TxnId txn) {
  committed_->insert(txn);
  if (storage::StableStore* store = DecisionStore()) {
    ChargeCpu(store->Append(kDecisionStream, "C " + std::to_string(txn)));
  }
}

void GdhProcess::LogCommitEnd(exec::TxnId txn) {
  committed_->erase(txn);
  if (storage::StableStore* store = DecisionStore()) {
    ChargeCpu(store->Append(kDecisionStream, "E " + std::to_string(txn)));
  }
}

void GdhProcess::ReplayDecisionLog() {
  storage::StableStore* store = DecisionStore();
  if (store == nullptr) return;
  for (const std::string& record : store->ReadStream(kDecisionStream)) {
    if (record.size() < 3 || record[1] != ' ') continue;
    const exec::TxnId txn = std::strtoll(record.c_str() + 2, nullptr, 10);
    if (record[0] == 'C') {
      committed_->insert(txn);
    } else if (record[0] == 'E') {
      committed_->erase(txn);
    }
    if (txn >= next_txn_) next_txn_ = txn + 1;
  }
  for (const std::string& record : store->ReadStream(kTxnIdStream)) {
    const exec::TxnId hwm = std::strtoll(record.c_str(), nullptr, 10);
    if (hwm > next_txn_) next_txn_ = hwm;
  }
  // The first NewTxn after a restart forces a fresh reservation.
  txn_id_hwm_ = next_txn_;
}

// ----------------------------------------------------------------- Locks

void GdhProcess::AcquireExclusive(exec::TxnId txn,
                                  std::vector<std::string> resources,
                                  size_t index,
                                  std::function<void(Status)> then) {
  if (index >= resources.size()) {
    then(Status::OK());
    return;
  }
  const std::string resource = resources[index];
  locks_->Acquire(
      txn, resource, LockMode::kExclusive,
      [this, txn, resources = std::move(resources), index,
       then = std::move(then)](Status status) mutable {
        if (!status.ok()) {
          ++stats_.deadlock_aborts;
          Inc(m_deadlock_aborts_);
          then(std::move(status));
          return;
        }
        AcquireExclusive(txn, std::move(resources), index + 1,
                         std::move(then));
      });
}

void GdhProcess::HandleLockBatch(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<LockBatchRequest>>(mail.body);
  ChargeCpu(config_.costs.message_handling_ns);
  const pool::ProcessId requester = mail.from;
  const uint64_t request_id = request->request_id;
  const auto key = std::make_pair(requester, request_id);
  // Dedup: a retransmitted batch must not acquire the locks twice. While
  // the original acquisition is still in flight the duplicate is simply
  // dropped — the requester retransmits again and eventually finds the
  // cached reply.
  auto [cache_it, inserted] = lock_replies_.try_emplace(key, nullptr);
  if (!inserted) {
    if (cache_it->second != nullptr) {
      ++stats_.dup_replies;
      Inc(LazyCounter(&m_dup_replies_, "gdh.dup_replies"));
      SendMail(requester, kMailLockBatchReply, cache_it->second, kControlBits);
    }
    return;
  }
  std::sort(request->resources.begin(), request->resources.end());
  const exec::TxnId txn = request->txn;
  // Sequentially acquire shared locks; callback-chained like the X path.
  auto respond = [this, requester, request_id, txn, key](Status status) {
    if (!status.ok()) {
      ++stats_.deadlock_aborts;
      Inc(m_deadlock_aborts_);
      // A deadlock aborts the whole transaction (the SELECT's statement
      // txn, or the enclosing explicit transaction).
      AbortEverywhere(txn, [this, requester, request_id, key,
                            status](Status) mutable {
        auto reply = std::make_shared<LockBatchReply>();
        reply->request_id = request_id;
        reply->status = std::move(status);
        auto it = lock_replies_.find(key);
        if (it != lock_replies_.end()) it->second = reply;
        SendMail(requester, kMailLockBatchReply, reply, kControlBits);
      });
      return;
    }
    auto reply = std::make_shared<LockBatchReply>();
    reply->request_id = request_id;
    auto it = lock_replies_.find(key);
    if (it != lock_replies_.end()) it->second = reply;
    SendMail(requester, kMailLockBatchReply, reply, kControlBits);
  };

  // Recursive shared acquisition.
  auto resources = std::make_shared<std::vector<std::string>>(
      std::move(request->resources));
  auto step = std::make_shared<std::function<void(size_t)>>();
  // The stored closure must hold itself only weakly: a strong `step`
  // capture would make the shared_ptr own its own control block and leak.
  // Each pending Acquire callback keeps a strong reference, so the chain
  // stays alive exactly until the last lock resolves.
  std::weak_ptr<std::function<void(size_t)>> weak_step = step;
  *step = [this, resources, txn, respond, weak_step](size_t index) {
    if (index >= resources->size()) {
      respond(Status::OK());
      return;
    }
    locks_->Acquire(txn, (*resources)[index], LockMode::kShared,
                   [respond, step = weak_step.lock(), index](Status status) {
                     if (!status.ok()) {
                       respond(std::move(status));
                       return;
                     }
                     (*step)(index + 1);
                   });
  };
  (*step)(0);
}

// ------------------------------------------------------------------- 2PC

void GdhProcess::RunTwoPhaseCommit(exec::TxnId txn,
                                   std::function<void(Status)> then) {
  auto it = txns_->find(txn);
  if (it == txns_->end()) {
    then(NotFoundError("unknown transaction " + std::to_string(txn)));
    return;
  }
  if (it->second.doomed) {
    // A participant respawned after a crash and lost this transaction's
    // unprepared writes; committing would lose updates, so force abort.
    Status doomed = AbortedError("transaction " + std::to_string(txn) +
                                 " aborted: a participant crashed and lost "
                                 "its writes");
    AbortEverywhere(txn, [then = std::move(then), doomed](Status) {
      then(doomed);
    });
    return;
  }
  // Shed (stale) replicas drop out of the participant set: the surviving
  // replica's vote alone covers the fragment. If filtering somehow empties
  // a non-empty set, keep the originals and let their RPCs settle.
  std::vector<std::string> involved = ActiveInvolved(it->second);
  if (involved.empty() && !it->second.involved.empty()) {
    involved.assign(it->second.involved.begin(), it->second.involved.end());
  }
  if (involved.empty()) {
    // Read-only: nothing was written anywhere, so no participant will
    // ever inquire — no decision record needed (presumed abort is moot).
    // PRISMA_TRANSITION(kActive, kCommitted, read-only; no participants)
    it->second.phase = TxnPhase::kCommitted;
    locks_->ReleaseAll(txn);
    txns_->erase(txn);
    ++stats_.txns_committed;
    Inc(m_txns_committed_);
    then(Status::OK());
    return;
  }

  // Phase 1: prepare.
  // PRISMA_TRANSITION(kActive, kPreparing, prepare round fans out)
  it->second.phase = TxnPhase::kPreparing;
  Inc(m_2pc_rounds_);
  const sim::SimTime phase1_start = runtime()->simulator()->now();
  const uint64_t batch_id = next_batch_id_++;
  Multicast& batch = batches_[batch_id];
  batch.expected = involved.size();
  batch.done = [this, txn, involved, phase1_start,
                then = std::move(then)](Multicast& m) {
    // Re-check the doom flag: a participant may have crashed and respawned
    // WHILE phase 1 was in flight (RecoverFragment mid-2PC). Its yes-vote
    // — sent by the old incarnation, or a "vote stands" answer from the
    // recovering one — no longer covers the writes the crash destroyed,
    // so a unanimous-yes round must still abort.
    auto state_it = txns_->find(txn);
    const bool doomed = state_it == txns_->end() || state_it->second.doomed;
    const bool commit = m.first_error.ok() && !doomed;
    if (commit) {
      // Presumed abort: the commit decision is forced to stable storage
      // BEFORE any participant learns it, so a recovering OFM asking
      // about this transaction always gets the decided answer. Aborts
      // are never logged — "unknown" means abort.
      LogCommitDecision(txn);
      // PRISMA_TRANSITION(kPreparing, kCommitting, unanimous yes logged)
      state_it->second.phase = TxnPhase::kCommitting;
    } else if (state_it != txns_->end()) {
      // PRISMA_TRANSITION(kPreparing, kAborting, veto or doomed writes)
      state_it->second.phase = TxnPhase::kAborting;
    }
    if (config_.tracer != nullptr && config_.tracer->enabled()) {
      config_.tracer->Span("gdh", "2pc.prepare", phase1_start,
                           runtime()->simulator()->now(), pe(), self(),
                           "txn", std::to_string(txn));
    }
    // Phase 2: decision. Re-filter the participant set: a replica shed
    // WHILE phase 1 was in flight (benign settle of its prepare) does not
    // need the decision — skipping it avoids burning a retransmission
    // budget per decision RPC against a dead process.
    std::vector<std::string> decide;
    if (state_it != txns_->end()) decide = ActiveInvolved(state_it->second);
    if (decide.empty()) decide = involved;
    const sim::SimTime phase2_start = runtime()->simulator()->now();
    const uint64_t batch2 = next_batch_id_++;
    Multicast& second = batches_[batch2];
    second.expected = decide.size();
    Status outcome;
    if (commit) {
      outcome = Status::OK();
    } else if (m.first_error.ok()) {
      // Unanimous yes, but doomed: a participant's crash lost its writes.
      outcome = AbortedError("transaction " + std::to_string(txn) +
                             " aborted: a participant crashed and lost "
                             "its writes");
    } else if (m.first_error.code() == StatusCode::kUnavailable) {
      // Surface the typed unavailability: the transaction aborted because
      // a participant was unreachable, not because of a data conflict.
      outcome = m.first_error;
    } else {
      outcome = AbortedError("transaction " + std::to_string(txn) +
                             " aborted during prepare: " +
                             m.first_error.message());
    }
    second.done = [this, txn, commit, outcome, phase2_start,
                   then](Multicast& m2) {
      if (commit && m2.first_error.ok()) {
        // Every participant acknowledged the commit: the decision can be
        // forgotten. If any ack is missing the record stays, so a later
        // inquiry still learns "commit".
        LogCommitEnd(txn);
      }
      auto final_it = txns_->find(txn);
      if (final_it != txns_->end()) {
        if (commit) {
          // PRISMA_TRANSITION(kCommitting, kCommitted, decision delivered)
          final_it->second.phase = TxnPhase::kCommitted;
        } else {
          // PRISMA_TRANSITION(kAborting, kAborted, abort round settled)
          final_it->second.phase = TxnPhase::kAborted;
        }
      }
      locks_->ReleaseAll(txn);
      txns_->erase(txn);
      if (outcome.ok()) {
        ++stats_.txns_committed;
        Inc(m_txns_committed_);
      } else {
        ++stats_.txns_aborted;
        Inc(m_txns_aborted_);
      }
      if (config_.tracer != nullptr && config_.tracer->enabled()) {
        config_.tracer->Span("gdh", "2pc.decision", phase2_start,
                             runtime()->simulator()->now(), pe(), self(),
                             "txn", std::to_string(txn));
      }
      then(outcome);
    };
    for (const std::string& fragment : decide) {
      auto request = std::make_shared<TxnControlRequest>();
      request->request_id = next_request_id_++;
      request->op = commit ? TxnControlRequest::Op::kCommit
                           : TxnControlRequest::Op::kAbort;
      request->txn = txn;
      // Decision delivery gets extra retry headroom: participants must
      // learn the outcome or stay in doubt until they inquire.
      SendRpc(request->request_id, batch2, fragment, kMailTxnControl,
              request, kControlBits, config_.rpc_attempts + 4);
    }
  };
  for (const std::string& fragment : involved) {
    auto request = std::make_shared<TxnControlRequest>();
    request->request_id = next_request_id_++;
    request->op = TxnControlRequest::Op::kPrepare;
    request->txn = txn;
    SendRpc(request->request_id, batch_id, fragment, kMailTxnControl,
            request, kControlBits, config_.rpc_attempts);
  }
}

void GdhProcess::AbortEverywhere(exec::TxnId txn,
                                 std::function<void(Status)> then) {
  auto it = txns_->find(txn);
  if (it == txns_->end()) {
    then(Status::OK());
    return;
  }
  std::vector<std::string> involved = ActiveInvolved(it->second);
  if (involved.empty() && !it->second.involved.empty()) {
    involved.assign(it->second.involved.begin(), it->second.involved.end());
  }
  // Presumed abort: no decision record — participants that never learn
  // the outcome resolve it by inquiry, and "unknown" means abort.
  if (involved.empty()) {
    // PRISMA_TRANSITION(kActive, kAborted, nothing written; presumed abort)
    it->second.phase = TxnPhase::kAborted;
    locks_->ReleaseAll(txn);
    txns_->erase(txn);
    then(Status::OK());
    return;
  }
  // PRISMA_TRANSITION(kActive, kAborting, abort round fans out)
  it->second.phase = TxnPhase::kAborting;
  const uint64_t batch_id = next_batch_id_++;
  Multicast& batch = batches_[batch_id];
  batch.expected = involved.size();
  batch.done = [this, txn, then = std::move(then)](Multicast&) {
    auto state_it = txns_->find(txn);
    if (state_it != txns_->end()) {
      // PRISMA_TRANSITION(kAborting, kAborted, every abort settled)
      state_it->second.phase = TxnPhase::kAborted;
    }
    locks_->ReleaseAll(txn);
    txns_->erase(txn);
    ++stats_.txns_aborted;
    Inc(m_txns_aborted_);
    then(Status::OK());
  };
  for (const std::string& fragment : involved) {
    auto request = std::make_shared<TxnControlRequest>();
    request->request_id = next_request_id_++;
    request->op = TxnControlRequest::Op::kAbort;
    request->txn = txn;
    SendRpc(request->request_id, batch_id, fragment, kMailTxnControl,
            request, kControlBits, config_.rpc_attempts + 4);
  }
}

// ------------------------------------------------------------------- DDL

pool::ProcessId GdhProcess::SpawnReplicaOfm(const TableInfo& info,
                                            const std::string& replica_name,
                                            net::NodeId pe, bool recover,
                                            uint64_t resync_id) {
  OfmProcess::Config ofm_config;
  ofm_config.fragment_name = replica_name;
  ofm_config.schema = info.schema;
  ofm_config.ofm.type = config_.base_ofm_type;
  auto res = config_.resources.find(pe);
  if (res != config_.resources.end()) {
    ofm_config.ofm.memory = res->second.memory;
    ofm_config.ofm.stable = res->second.stable;
  }
  ofm_config.ofm.exec.expr_mode = config_.expr_mode;
  ofm_config.ofm.exec.costs = config_.costs;
  ofm_config.dedup_retention_ns = DedupRetentionNs();
  ofm_config.recover = recover;
  ofm_config.resync_id = resync_id;
  ofm_config.gdh = self();
  ofm_config.registry = config_.registry;
  // Shuffle-producer retransmission mirrors the RPC knobs: tight under
  // fault injection, effectively off when the net is reliable.
  ofm_config.batch_retry_ns = config_.rpc_timeout_ns;
  ofm_config.batch_backoff_cap_ns = config_.rpc_backoff_cap_ns;
  ofm_config.batch_attempts = config_.rpc_attempts;
  ofm_config.indexes = info.indexes;
  ofm_config.metrics = config_.metrics;
  return runtime()->Spawn(pe,
                          std::make_unique<OfmProcess>(std::move(ofm_config)));
}

void GdhProcess::ExecuteDdl(const BoundStatement& bound,
                            const std::shared_ptr<ClientStatement>& stmt,
                            pool::ProcessId client) {
  // Any DDL may change the schema or fragmentation cached plans were
  // split against; drop them all before the catalog mutates.
  if (config_.plan_cache != nullptr) config_.plan_cache->Invalidate("ddl");
  switch (bound.kind) {
    case Statement::Kind::kCreateTable: {
      FragmentationSpec spec;
      spec.strategy = bound.fragmentation.strategy;
      spec.column = bound.fragment_column;
      spec.num_fragments = bound.fragmentation.num_fragments;
      auto info_or =
          dictionary_->CreateTable(bound.table, bound.create_schema, spec);
      if (!info_or.ok()) {
        ReplyToClient(client, stmt->request_id, info_or.status(), 0, 0);
        return;
      }
      TableInfo* info = *info_or;
      const size_t pool = config_.fragment_pes.size();
      for (size_t i = 0; i < info->fragments.size(); ++i) {
        const size_t slot = config_.placement == PlacementPolicy::kAligned
                                ? i
                                : placement_cursor_++;
        FragmentInfo& frag = info->fragments[i];
        frag.pe = config_.fragment_pes[slot % pool];
        frag.ofm = SpawnReplicaOfm(*info, frag.name, frag.pe,
                                   /*recover=*/false, /*resync_id=*/0);
        if (config_.replicate_fragments) {
          // Data allocation with anti-affinity: the backup replica lands
          // on the next fragment PE, so one PE crash never takes out both
          // copies of a fragment.
          frag.replicated = true;
          frag.backup_pe = config_.fragment_pes[(slot + 1) % pool];
          frag.backup_ofm =
              SpawnReplicaOfm(*info, BackupFragmentName(frag.name),
                              frag.backup_pe, /*recover=*/false,
                              /*resync_id=*/0);
        }
      }
      ReplyToClient(client, stmt->request_id, Status::OK(), 0, 0);
      return;
    }
    case Statement::Kind::kDropTable: {
      auto info = dictionary_->GetTable(bound.table);
      if (!info.ok()) {
        ReplyToClient(client, stmt->request_id, info.status(), 0, 0);
        return;
      }
      for (const FragmentInfo& frag : (*info)->fragments) {
        for (int r = 0; r < frag.num_replicas(); ++r) {
          runtime()->Kill(frag.ReplicaOfm(r));
        }
      }
      // Abort in-flight resyncs of the dropped table (their targets were
      // just killed with the rest of the replicas).
      std::vector<uint64_t> dropped;
      for (const auto& [id, rs] : resyncs_) {
        if (rs.table == bound.table) dropped.push_back(id);
      }
      for (const uint64_t id : dropped) AbortResync(id);
      PRISMA_CHECK_OK(dictionary_->DropTable(bound.table));
      ReplyToClient(client, stmt->request_id, Status::OK(), 0, 0);
      return;
    }
    case Statement::Kind::kCreateIndex: {
      IndexInfo index;
      index.name = bound.index_name;
      index.columns = bound.index_columns;
      index.ordered = bound.index_ordered;
      Status added = dictionary_->AddIndex(bound.table, index);
      if (!added.ok()) {
        ReplyToClient(client, stmt->request_id, added, 0, 0);
        return;
      }
      auto info = dictionary_->GetTable(bound.table);
      PRISMA_CHECK(info.ok());
      // Every in-sync replica builds the index now; stale or resyncing
      // replicas pick it up from the dictionary when they are respawned.
      std::vector<std::string> targets;
      for (const FragmentInfo& frag : (*info)->fragments) {
        for (int r = 0; r < frag.num_replicas(); ++r) {
          if (frag.replica_state(r) != ReplicaState::kInSync) continue;
          targets.push_back(frag.ReplicaName(r));
        }
      }
      if (targets.empty()) {
        ReplyToClient(client, stmt->request_id, Status::OK(), 0, 0);
        return;
      }
      const uint64_t batch_id = next_batch_id_++;
      Multicast& batch = batches_[batch_id];
      batch.expected = targets.size();
      const uint64_t request_id = stmt->request_id;
      batch.done = [this, client, request_id](Multicast& m) {
        ReplyToClient(client, request_id, m.first_error, 0, 0);
      };
      for (const std::string& target : targets) {
        auto request = std::make_shared<CreateIndexRequest>();
        request->request_id = next_request_id_++;
        request->index_name = index.name;
        request->columns = index.columns;
        request->ordered = index.ordered;
        SendRpc(request->request_id, batch_id, target, kMailCreateIndex,
                request, kControlBits, config_.rpc_attempts);
      }
      return;
    }
    default:
      ReplyToClient(client, stmt->request_id,
                    InternalError("not a DDL statement"), 0, 0);
  }
}

// ------------------------------------------------------------------- DML

StatusOr<std::vector<std::string>> GdhProcess::TargetFragments(
    const std::string& table, const algebra::Expr* where) const {
  ASSIGN_OR_RETURN(const TableInfo* info, dictionary_->GetTable(table));
  // Prune to one fragment when the predicate pins the fragmentation key.
  if (where != nullptr &&
      (info->fragmentation.strategy == sql::FragmentStrategy::kHash ||
       info->fragmentation.strategy == sql::FragmentStrategy::kRange)) {
    for (const auto& conjunct : algebra::SplitConjuncts(*where)) {
      if (conjunct->kind() != algebra::ExprKind::kBinary ||
          conjunct->binary_op() != algebra::BinaryOp::kEq) {
        continue;
      }
      const algebra::Expr* l = conjunct->left();
      const algebra::Expr* r = conjunct->right();
      if (l->kind() == algebra::ExprKind::kLiteral) std::swap(l, r);
      if (l->kind() == algebra::ExprKind::kColumnRef && l->bound() &&
          l->column_index() == info->fragmentation.column &&
          r->kind() == algebra::ExprKind::kLiteral) {
        std::vector<std::string> out;
        for (const int f :
             info->fragmenter->FragmentsForKey(r->literal())) {
          out.push_back(info->fragments[f].name);
        }
        return out;
      }
    }
  }
  std::vector<std::string> all;
  for (const FragmentInfo& frag : info->fragments) all.push_back(frag.name);
  return all;
}

void GdhProcess::ExecuteWrite(std::shared_ptr<BoundStatement> bound,
                              const std::shared_ptr<ClientStatement>& stmt,
                              pool::ProcessId client) {
  auto info_or = dictionary_->GetTable(bound->table);
  if (!info_or.ok()) {
    ReplyToClient(client, stmt->request_id, info_or.status(), 0, 0);
    return;
  }
  TableInfo* info = *info_or;

  // Build the per-fragment operation list.
  struct Op {
    std::string fragment;
    std::shared_ptr<WriteRequest> request;
  };
  auto ops = std::make_shared<std::vector<Op>>();
  switch (bound->kind) {
    case Statement::Kind::kInsert: {
      for (const Tuple& row : bound->insert_rows) {
        auto frag_or = info->fragmenter->FragmentOf(row);
        if (!frag_or.ok()) {
          ReplyToClient(client, stmt->request_id, frag_or.status(), 0, 0);
          return;
        }
        auto request = std::make_shared<WriteRequest>();
        request->op = WriteRequest::Op::kInsert;
        request->tuple = row;
        ops->push_back(Op{info->fragments[*frag_or].name, std::move(request)});
      }
      break;
    }
    case Statement::Kind::kDelete:
    case Statement::Kind::kUpdate: {
      auto targets = TargetFragments(bound->table, bound->where.get());
      if (!targets.ok()) {
        ReplyToClient(client, stmt->request_id, targets.status(), 0, 0);
        return;
      }
      for (const std::string& fragment : *targets) {
        auto request = std::make_shared<WriteRequest>();
        request->op = bound->kind == Statement::Kind::kDelete
                          ? WriteRequest::Op::kDeleteWhere
                          : WriteRequest::Op::kUpdateWhere;
        if (bound->where != nullptr) {
          request->predicate = std::shared_ptr<const algebra::Expr>(
              bound, bound->where.get());
        }
        for (const auto& [col, expr] : bound->assignments) {
          request->assignments.push_back(
              {col, std::shared_ptr<const algebra::Expr>(bound, expr.get())});
        }
        ops->push_back(Op{fragment, std::move(request)});
      }
      break;
    }
    default:
      ReplyToClient(client, stmt->request_id,
                    InternalError("not a write statement"), 0, 0);
      return;
  }

  // Transaction scope: the session transaction or an implicit one that
  // two-phase-commits at the end of the statement.
  exec::TxnId txn = stmt->txn;
  bool implicit = false;
  if (txn == exec::kAutoCommit) {
    txn = NewTxn(false);
    implicit = true;
  } else if (!txns_->contains(txn)) {
    ReplyToClient(client, stmt->request_id,
                  NotFoundError("unknown transaction " + std::to_string(txn)),
                  0, 0);
    return;
  }

  std::vector<std::string> resources;
  for (const Op& op : *ops) resources.push_back(op.fragment);
  std::sort(resources.begin(), resources.end());
  resources.erase(std::unique(resources.begin(), resources.end()),
                  resources.end());

  const uint64_t client_request = stmt->request_id;
  AcquireExclusive(
      txn, resources, 0,
      [this, txn, implicit, ops, bound, client,
       client_request](Status lock_status) {
        if (!lock_status.ok()) {
          AbortEverywhere(txn, [this, client, client_request,
                                lock_status](Status) {
            ReplyToClient(client, client_request, lock_status, 0, 0);
          });
          return;
        }
        // Locks held: scatter the writes.
        auto& txn_state = (*txns_)[txn];
        const uint64_t batch_id = next_batch_id_++;
        Multicast& batch = batches_[batch_id];
        batch.done = [this, txn, implicit, client,
                      client_request](Multicast& m) {
          if (!m.first_error.ok()) {
            Status error = m.first_error;
            AbortEverywhere(txn, [this, client, client_request,
                                  error](Status) {
              ReplyToClient(client, client_request, error, 0, 0);
            });
            return;
          }
          const uint64_t affected = m.affected;
          if (implicit) {
            RunTwoPhaseCommit(txn, [this, client, client_request,
                                    affected](Status status) {
              ReplyToClient(client, client_request, status, affected, 0);
            });
          } else {
            ReplyToClient(client, client_request, Status::OK(), affected, 0);
          }
        };
        size_t members = 0;
        for (Op& op : *ops) {
          // Each logical op fans out to every in-sync replica of its
          // fragment; a dual-replica op shares one DualWrite entry so the
          // affected count and row delta are charged exactly once.
          std::vector<std::string> targets{op.fragment};
          int replica = 0;
          if (FragmentInfo* frag = FindFragment(op.fragment, &replica);
              frag != nullptr) {
            targets = WriteTargets(*frag);
          }
          std::shared_ptr<DualWrite> dual;
          if (targets.size() > 1) dual = std::make_shared<DualWrite>();
          for (const std::string& target : targets) {
            txn_state.involved.insert(target);
            auto request = std::make_shared<WriteRequest>(*op.request);
            request->request_id = next_request_id_++;
            request->txn = txn;
            if (dual != nullptr) dual_writes_[request->request_id] = dual;
            ++stats_.write_ops_sent;
            Inc(m_write_ops_);
            ++members;
            SendRpc(request->request_id, batch_id, target, kMailWrite,
                    request, request->WireBits(), config_.rpc_attempts);
          }
        }
        batch.expected = members;
      });
}

// --------------------------------------------------------------- Txn ctl

void GdhProcess::ExecuteTxnControl(const BoundStatement& bound,
                                   const std::shared_ptr<ClientStatement>& stmt,
                                   pool::ProcessId client) {
  switch (bound.txn_control) {
    case sql::TxnControl::kBegin: {
      const exec::TxnId txn = NewTxn(true);
      ++stats_.txns_begun;
      Inc(m_txns_begun_);
      ReplyToClient(client, stmt->request_id, Status::OK(), 0, txn);
      return;
    }
    case sql::TxnControl::kCommit: {
      const uint64_t request_id = stmt->request_id;
      RunTwoPhaseCommit(stmt->txn,
                        [this, client, request_id](Status status) {
                          ReplyToClient(client, request_id, status, 0, 0);
                        });
      return;
    }
    case sql::TxnControl::kAbort: {
      const uint64_t request_id = stmt->request_id;
      AbortEverywhere(stmt->txn, [this, client, request_id](Status status) {
        ReplyToClient(client, request_id, status, 0, 0);
      });
      return;
    }
  }
}

// ----------------------------------------------------------- Coordinators

void GdhProcess::SpawnCoordinator(const std::shared_ptr<ClientStatement>& stmt,
                                  pool::ProcessId client) {
  exec::TxnId lock_txn = stmt->txn;
  if (lock_txn == exec::kAutoCommit) {
    lock_txn = NewTxn(false);
  } else if (!txns_->contains(lock_txn)) {
    ReplyToClient(client, stmt->request_id,
                  NotFoundError("unknown transaction " +
                                std::to_string(lock_txn)),
                  0, 0);
    return;
  }
  QueryProcess::Config config;
  config.dictionary = &*dictionary_;
  config.rules = config_.rules;
  config.costs = config_.costs;
  config.expr_mode = config_.expr_mode;
  config.exec_mode = stmt->exec_mode.value_or(config_.exec_mode);
  config.gdh = self();
  config.client = client;
  config.statement = stmt;
  config.lock_txn = lock_txn;
  config.timeout_ns = config_.query_timeout_ns;
  config.rpc_timeout_ns = config_.rpc_timeout_ns;
  config.rpc_backoff_cap_ns = config_.rpc_backoff_cap_ns;
  config.rpc_attempts = config_.rpc_attempts;
  config.stmt_done_resend_ns = config_.stmt_done_resend_ns;
  config.registry = config_.registry;
  config.plan_cache = config_.plan_cache;
  config.exchange_batch_rows = config_.exchange_batch_rows;
  config.exchange_credit_window = config_.exchange_credit_window;
  config.distributed_fixpoint = config_.distributed_fixpoint;
  config.tc_algorithm = config_.fixpoint_algorithm;
  config.metrics = config_.metrics;
  config.tracer = config_.tracer;
  const net::NodeId pe = config_.coordinator_pes[coordinator_cursor_++ %
                                                 config_.coordinator_pes.size()];
  const pool::ProcessId coordinator =
      runtime()->Spawn(pe, std::make_unique<QueryProcess>(std::move(config)));
  (*txns_)[lock_txn].coordinator = coordinator;
  if (config_.coord_check_ns > 0) {
    // Supervise: if the coordinator's PE crashes, the statement must
    // still terminate (locks released, client answered).
    CoordWatch watch;
    watch.client = client;
    watch.request_id = stmt->request_id;
    watch.lock_txn = lock_txn;
    watch.pe = pe;
    watch.timer =
        SendSelfAfter(config_.coord_check_ns, kMailCoordCheck,
                      std::make_shared<pool::ProcessId>(coordinator));
    coords_[coordinator] = watch;
  }
  ++stats_.selects_spawned;
  Inc(m_selects_);
}

void GdhProcess::ForgetCoordinator(pool::ProcessId coordinator) {
  auto it = coords_.find(coordinator);
  if (it != coords_.end()) {
    runtime()->simulator()->Cancel(it->second.timer);
    coords_.erase(it);
  }
  for (auto lit = lock_replies_.begin(); lit != lock_replies_.end();) {
    if (lit->first.first == coordinator) {
      lit = lock_replies_.erase(lit);
    } else {
      ++lit;
    }
  }
}

void GdhProcess::HandleCoordCheck(const pool::Mail& mail) {
  const pool::ProcessId coordinator =
      *std::any_cast<std::shared_ptr<pool::ProcessId>>(mail.body);
  auto it = coords_.find(coordinator);
  if (it == coords_.end()) return;  // Already finished normally.
  if (runtime()->IsAlive(coordinator)) {
    it->second.timer =
        SendSelfAfter(config_.coord_check_ns, kMailCoordCheck,
                      std::make_shared<pool::ProcessId>(coordinator));
    return;
  }
  // The coordinator died without reporting (PE crash): release its
  // statement locks and fail the statement so the client is not left
  // hanging. A reply the coordinator managed to send before dying wins —
  // the client drops this duplicate.
  const CoordWatch watch = it->second;
  ForgetCoordinator(coordinator);
  ++stats_.coords_reaped;
  Inc(LazyCounter(&m_coords_reaped_, "gdh.coords_reaped"));
  auto txn_it = txns_->find(watch.lock_txn);
  if (txn_it != txns_->end() && !txn_it->second.explicit_txn &&
      txn_it->second.involved.empty()) {
    locks_->ReleaseAll(watch.lock_txn);
    txns_->erase(txn_it);
  }
  CountUnavailable(watch.pe, "(coordinator)");
  ReplyToClient(watch.client, watch.request_id,
                UnavailableError("query coordinator on PE " +
                                 std::to_string(watch.pe) +
                                 " died (PE crash)"),
                0, 0);
}

void GdhProcess::HandleStatementDone(const pool::Mail& mail) {
  auto done = std::any_cast<std::shared_ptr<StatementDone>>(mail.body);
  auto it = txns_->find(done->txn);
  if (it != txns_->end() && !it->second.explicit_txn &&
      it->second.involved.empty()) {
    // Statement-scoped read locks.
    locks_->ReleaseAll(done->txn);
    txns_->erase(it);
  }
  ForgetCoordinator(mail.from);
  // The per-query coordinator instance has served its purpose (§2.2).
  runtime()->Kill(mail.from);
}

// ---------------------------------------------------------------- Replies

void GdhProcess::HandleWriteReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<WriteReply>>(mail.body);
  SettleRpc(reply->request_id);
  if (!request_batch_.contains(reply->request_id)) {
    // The request was already settled (duplicate or post-degradation
    // reply). If it was settled by exhausting the retry budget, the OFM
    // did execute the write after all: fold its row delta into the
    // dictionary statistics exactly once before dropping the reply.
    if (degraded_writes_.erase(reply->request_id) > 0 &&
        reply->row_delta != 0) {
      UpdateRowCount(reply->fragment, reply->row_delta);
    }
    ++stats_.dup_replies;
    Inc(LazyCounter(&m_dup_replies_, "gdh.dup_replies"));
    return;
  }
  uint64_t affected = reply->affected_rows;
  auto dual = dual_writes_.find(reply->request_id);
  if (dual != dual_writes_.end()) {
    // Dual-replica op: whichever replica's OK reply lands first carries
    // the affected count and the row delta; the mirror contributes zero.
    const bool count = reply->status.ok() && !dual->second->counted;
    if (count) dual->second->counted = true;
    dual_writes_.erase(dual);
    if (!count) {
      AccountBatchMember(reply->request_id, reply->status, 0);
      return;
    }
  }
  if (reply->row_delta != 0) UpdateRowCount(reply->fragment, reply->row_delta);
  AccountBatchMember(reply->request_id, reply->status, affected);
}

void GdhProcess::HandleTxnControlReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<TxnControlReply>>(mail.body);
  SettleRpc(reply->request_id);
  if (!request_batch_.contains(reply->request_id)) {
    ++stats_.dup_replies;
    Inc(LazyCounter(&m_dup_replies_, "gdh.dup_replies"));
    return;
  }
  AccountBatchMember(reply->request_id, reply->status, 0);
}

void GdhProcess::HandleDecisionRequest(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<DecisionRequest>>(mail.body);
  auto reply = std::make_shared<DecisionReply>();
  reply->request_id = request->request_id;
  for (const exec::TxnId txn : request->transactions) {
    if (committed_->contains(txn)) {
      // A logged (unforgotten) commit decision answers "commit".
      reply->transactions.push_back(txn);
      reply->commit.push_back(true);
    } else if (txns_->contains(txn)) {
      // Still being decided: a yes-vote (or a "vote stands" answer to a
      // retransmitted prepare) may be in flight, so a commit decision can
      // still be logged after an "abort" answer sent now — the inquirer
      // would roll back its prepared state and lose a committed write.
      // Withhold the answer; the inquirer retries on a timer and finds
      // the transaction decided (committed_ or gone) soon: 2PC always
      // terminates, every member RPC settles by reply or retry budget.
      ++stats_.decisions_deferred;
      Inc(LazyCounter(&m_decisions_deferred_, "gdh.decisions_deferred"));
    } else {
      // Presumed abort: no decision record and not active means abort.
      reply->transactions.push_back(txn);
      reply->commit.push_back(false);
    }
  }
  if (!reply->transactions.empty()) {
    SendMail(mail.from, kMailDecisionReply, reply, kControlBits);
  }
}

// ------------------------------------------------------------ Statements

void GdhProcess::HandleClientStatement(const pool::Mail& mail) {
  auto stmt = std::any_cast<std::shared_ptr<ClientStatement>>(mail.body);
  const pool::ProcessId client = mail.from;
  ++stats_.statements;
  Inc(m_statements_);
  // Routing parse is cheap; full parse/optimize happens per-query in the
  // coordinator instances.
  ChargeCpu(config_.costs.optimize_ns / 10);

  if (stmt->is_prismalog) {
    SpawnCoordinator(stmt, client);
    return;
  }
  auto parsed = sql::ParseSql(stmt->text);
  if (!parsed.ok()) {
    ReplyToClient(client, stmt->request_id, parsed.status(), 0, 0);
    return;
  }
  switch (parsed->kind) {
    case Statement::Kind::kSelect:
      SpawnCoordinator(stmt, client);
      return;
    case Statement::Kind::kTxnControl: {
      auto bound = sql::BindStatement(*parsed, *dictionary_);
      PRISMA_CHECK(bound.ok());
      ExecuteTxnControl(*bound, stmt, client);
      return;
    }
    case Statement::Kind::kCreateTable:
    case Statement::Kind::kDropTable:
    case Statement::Kind::kCreateIndex: {
      auto bound = sql::BindStatement(*parsed, *dictionary_);
      if (!bound.ok()) {
        ReplyToClient(client, stmt->request_id, bound.status(), 0, 0);
        return;
      }
      ExecuteDdl(*bound, stmt, client);
      return;
    }
    case Statement::Kind::kCheckpoint: {
      ExecuteCheckpoint(stmt, client);
      return;
    }
    case Statement::Kind::kInsert:
    case Statement::Kind::kDelete:
    case Statement::Kind::kUpdate: {
      auto bound = sql::BindStatement(*parsed, *dictionary_);
      if (!bound.ok()) {
        ReplyToClient(client, stmt->request_id, bound.status(), 0, 0);
        return;
      }
      ExecuteWrite(std::make_shared<BoundStatement>(std::move(bound).value()),
                   stmt, client);
      return;
    }
  }
}

void GdhProcess::ExecuteCheckpoint(
    const std::shared_ptr<ClientStatement>& stmt, pool::ProcessId client) {
  std::vector<std::string> fragments;
  for (const std::string& table : dictionary_->TableNames()) {
    auto info = dictionary_->GetTable(table);
    PRISMA_CHECK(info.ok());
    for (const FragmentInfo& frag : (*info)->fragments) {
      for (int r = 0; r < frag.num_replicas(); ++r) {
        // Stale/resyncing replicas skip the checkpoint: their WAL and
        // snapshot are superseded by the resync rebuild anyway.
        if (frag.replica_state(r) != ReplicaState::kInSync) continue;
        if (frag.ReplicaOfm(r) == pool::kNoProcess) continue;
        fragments.push_back(frag.ReplicaName(r));
      }
    }
  }
  if (fragments.empty()) {
    ReplyToClient(client, stmt->request_id, Status::OK(), 0, 0);
    return;
  }
  const uint64_t batch_id = next_batch_id_++;
  Multicast& batch = batches_[batch_id];
  batch.expected = fragments.size();
  const uint64_t request_id = stmt->request_id;
  batch.done = [this, client, request_id](Multicast& m) {
    ReplyToClient(client, request_id, m.first_error, m.affected, 0);
  };
  for (const std::string& fragment : fragments) {
    auto request = std::make_shared<CheckpointRequest>();
    request->request_id = next_request_id_++;
    SendRpc(request->request_id, batch_id, fragment, kMailCheckpoint,
            request, kControlBits, config_.rpc_attempts);
  }
}

// -------------------------------------------------------- Crash / recover

Status GdhProcess::CrashFragment(const std::string& table, int fragment) {
  ASSIGN_OR_RETURN(TableInfo * info, dictionary_->GetTable(table));
  if (fragment < 0 || fragment >= static_cast<int>(info->fragments.size())) {
    return OutOfRangeError("no such fragment");
  }
  runtime()->Kill(info->fragments[fragment].ofm);
  info->fragments[fragment].ofm = pool::kNoProcess;
  return Status::OK();
}

Status GdhProcess::RecoverReplica(const std::string& table, TableInfo* info,
                                  int fragment, int replica) {
  FragmentInfo& frag = info->fragments[fragment];
  const pool::ProcessId cur = frag.ReplicaOfm(replica);
  if (cur != pool::kNoProcess && runtime()->IsAlive(cur)) {
    return Status::OK();  // Nothing to do.
  }
  if (frag.replicated &&
      frag.replica_state(replica) != ReplicaState::kInSync) {
    // A stale replica's stable state is behind the survivor: its WAL
    // cannot be trusted, so it rejoins via resync, not WAL recovery. A
    // resync whose target just died is torn down first.
    std::vector<uint64_t> aborted;
    for (const auto& [id, rs] : resyncs_) {
      if (rs.table == table && rs.fragment == fragment &&
          rs.replica == replica) {
        aborted.push_back(id);
      }
    }
    for (const uint64_t id : aborted) AbortResync(id);
    frag.SetReplicaOfm(replica, pool::kNoProcess);
    MaybeStartResync(table, fragment);
    return Status::OK();
  }
  // In-sync (or unreplicated) replica: respawn with WAL recovery. Any
  // active transaction that wrote to this replica lost those writes with
  // the old process: it must not commit.
  frag.SetReplicaOfm(
      replica, SpawnReplicaOfm(*info, frag.ReplicaName(replica),
                               frag.ReplicaPe(replica), /*recover=*/true,
                               /*resync_id=*/0));
  DoomTxnsInvolving(frag.ReplicaName(replica));
  // This replica may be the awaited resync source for its stale peer.
  if (frag.replicated) MaybeStartResync(table, fragment);
  return Status::OK();
}

Status GdhProcess::RecoverFragment(const std::string& table, int fragment) {
  ASSIGN_OR_RETURN(TableInfo * info, dictionary_->GetTable(table));
  if (fragment < 0 || fragment >= static_cast<int>(info->fragments.size())) {
    return OutOfRangeError("no such fragment");
  }
  FragmentInfo& frag = info->fragments[fragment];
  bool any_dead = false;
  for (int r = 0; r < frag.num_replicas(); ++r) {
    const pool::ProcessId ofm = frag.ReplicaOfm(r);
    if (ofm == pool::kNoProcess || !runtime()->IsAlive(ofm)) any_dead = true;
  }
  if (!any_dead) return FailedPreconditionError(frag.name + " is alive");
  for (int r = 0; r < frag.num_replicas(); ++r) {
    RETURN_IF_ERROR(RecoverReplica(table, info, fragment, r));
  }
  return Status::OK();
}

Status GdhProcess::RecoverPe(net::NodeId pe) {
  for (const std::string& table : dictionary_->TableNames()) {
    auto info = dictionary_->GetTable(table);
    if (!info.ok()) continue;
    const size_t count = (*info)->fragments.size();
    for (size_t i = 0; i < count; ++i) {
      FragmentInfo& frag = (*info)->fragments[i];
      for (int r = 0; r < frag.num_replicas(); ++r) {
        // Only replicas homed on the restarted PE: recovering a fragment's
        // other replica here would resurrect it on a still-crashed PE.
        if (frag.ReplicaPe(r) != pe) continue;
        const pool::ProcessId ofm = frag.ReplicaOfm(r);
        if (ofm != pool::kNoProcess && runtime()->IsAlive(ofm)) continue;
        RETURN_IF_ERROR(RecoverReplica(table, *info, static_cast<int>(i), r));
      }
      // A replica can go stale with its PE alive all along: under mesh
      // store-and-forward its replies may have routed through the crashed
      // PE, so it exhausted the write-retransmission budget and was shed.
      // Its own PE never "recovers", so sweep every replicated fragment
      // here — this restart is the recovery event that retries it.
      MaybeStartResync(table, static_cast<int>(i));
    }
  }
  return Status::OK();
}

// ------------------------------------------------ Resync (DESIGN.md §13)

void GdhProcess::MaybeStartResync(const std::string& table, int fragment) {
  auto info = dictionary_->GetTable(table);
  if (!info.ok()) return;
  FragmentInfo& frag = (*info)->fragments[fragment];
  if (!frag.replicated) return;
  for (int r = 0; r < frag.num_replicas(); ++r) {
    if (frag.replica_state(r) != ReplicaState::kStale) continue;
    const int peer = 1 - r;
    const pool::ProcessId source = frag.ReplicaOfm(peer);
    // Resync needs a healthy source; if the peer is down too, the next
    // recovery event retries. Bounding retries to recovery events keeps
    // the simulation's event queue drainable.
    if (frag.replica_state(peer) != ReplicaState::kInSync ||
        source == pool::kNoProcess || !runtime()->IsAlive(source)) {
      return;
    }
    StartResync(table, fragment, r);
    return;  // At most one replica of a pair can be stale.
  }
}

void GdhProcess::StartResync(const std::string& table, int fragment,
                             int replica) {
  auto info = dictionary_->GetTable(table);
  PRISMA_CHECK(info.ok());
  FragmentInfo& frag = (*info)->fragments[fragment];
  const uint64_t resync_id = next_resync_id_++;
  // A shed-but-alive target (stale via lost replies, not a crash) is
  // discarded: its contents are untrusted and the fresh OFM below takes
  // over its fragment name.
  const pool::ProcessId old = frag.ReplicaOfm(replica);
  if (old != pool::kNoProcess && runtime()->IsAlive(old)) {
    runtime()->Kill(old);
  }
  // The target starts as a fresh, empty OFM in resync mode (no WAL
  // recovery): it is refilled from the source's committed snapshot.
  frag.SetReplicaOfm(
      replica, SpawnReplicaOfm(**info, frag.ReplicaName(replica),
                               frag.ReplicaPe(replica), /*recover=*/false,
                               resync_id));
  // PRISMA_TRANSITION(kStale, kResyncing, refill from the survivor begins)
  frag.set_replica_state(replica, ReplicaState::kResyncing);
  ResyncState rs;
  rs.table = table;
  rs.fragment = fragment;
  rs.replica = replica;
  rs.resync_id = resync_id;
  resyncs_[resync_id] = rs;
  ++stats_.resyncs_started;
  Inc(LazyCounter(&m_resyncs_started_, "replica.resyncs_started"));
  SendResyncPhase(resync_id, /*cutover=*/false);
}

void GdhProcess::SendResyncPhase(uint64_t resync_id, bool cutover) {
  auto it = resyncs_.find(resync_id);
  PRISMA_CHECK(it != resyncs_.end());
  ResyncState& rs = it->second;
  auto info = dictionary_->GetTable(rs.table);
  PRISMA_CHECK(info.ok());
  FragmentInfo& frag = (*info)->fragments[rs.fragment];
  const int source = 1 - rs.replica;
  auto request = std::make_shared<ResyncRequest>();
  request->request_id = next_request_id_++;
  request->resync_id = resync_id;
  request->target = frag.ReplicaOfm(rs.replica);
  request->target_fragment = frag.ReplicaName(rs.replica);
  request->batch_rows = config_.exchange_batch_rows;
  request->credit_window = config_.exchange_credit_window;
  request->cutover = cutover;
  rs.request_id = request->request_id;
  const uint64_t batch_id = next_batch_id_++;
  Multicast& batch = batches_[batch_id];
  batch.expected = 1;
  batch.done = [this, resync_id, cutover](Multicast& m) {
    OnResyncPhaseDone(resync_id, cutover, m.first_error);
  };
  // The whole phase (bulk stream + delta rounds) runs under one hardened
  // RPC with decision-grade retry headroom.
  SendRpc(request->request_id, batch_id, frag.ReplicaName(source),
          kMailResync, request, kControlBits, config_.rpc_attempts + 4);
}

void GdhProcess::OnResyncPhaseDone(uint64_t resync_id, bool cutover,
                                   const Status& status) {
  auto it = resyncs_.find(resync_id);
  if (it == resyncs_.end()) return;  // Aborted meanwhile.
  if (!status.ok()) {
    AbortResync(resync_id);
    return;
  }
  if (!cutover) {
    // Caught up (modulo writes still in flight): cut over under an
    // exclusive lock on the base fragment. Writers hold their fragment
    // locks until 2PC completes, so once this lock is granted nothing
    // undecided can remain in the source's WAL — the final delta is
    // exact, and the replica re-enters the write set atomically with
    // respect to statements.
    ResyncState& rs = it->second;
    rs.cutover_txn = NewTxn(false);
    auto info = dictionary_->GetTable(rs.table);
    PRISMA_CHECK(info.ok());
    // Writers lock the base fragment name (covering both replicas).
    const std::string base = (*info)->fragments[rs.fragment].name;
    AcquireExclusive(rs.cutover_txn, {base}, 0,
                     [this, resync_id](Status lock_status) {
                       auto it2 = resyncs_.find(resync_id);
                       if (it2 == resyncs_.end()) return;
                       if (!lock_status.ok()) {
                         AbortResync(resync_id);
                         return;
                       }
                       SendResyncPhase(resync_id, /*cutover=*/true);
                     });
    return;
  }
  // Cutover acknowledged: the target holds the source's exact committed
  // contents, rebuilt its indexes and checkpointed. Back to dual-primary-
  // eligible.
  const ResyncState rs = it->second;
  resyncs_.erase(it);
  auto info = dictionary_->GetTable(rs.table);
  if (info.ok()) {
    FragmentInfo& frag = (*info)->fragments[rs.fragment];
    // PRISMA_TRANSITION(kResyncing, kInSync, 2PC-consistent cutover done)
    frag.set_replica_state(rs.replica, ReplicaState::kInSync);
    // The rebuilt replica is read-eligible again: retire plans built
    // while it was shed.
    if (config_.plan_cache != nullptr) {
      config_.plan_cache->Invalidate("resync");
    }
  }
  if (rs.cutover_txn != exec::kAutoCommit) {
    locks_->ReleaseAll(rs.cutover_txn);
    txns_->erase(rs.cutover_txn);
  }
  ++stats_.resyncs_completed;
  Inc(LazyCounter(&m_resyncs_completed_, "replica.resyncs_completed"));
}

void GdhProcess::AbortResync(uint64_t resync_id) {
  auto it = resyncs_.find(resync_id);
  if (it == resyncs_.end()) return;
  const ResyncState rs = it->second;
  resyncs_.erase(it);
  auto info = dictionary_->GetTable(rs.table);
  if (info.ok()) {
    FragmentInfo& frag = (*info)->fragments[rs.fragment];
    const pool::ProcessId target = frag.ReplicaOfm(rs.replica);
    if (target != pool::kNoProcess) runtime()->Kill(target);
    frag.SetReplicaOfm(rs.replica, pool::kNoProcess);
    // PRISMA_TRANSITION(kResyncing, kStale, resync aborted; back to shed)
    frag.set_replica_state(rs.replica, ReplicaState::kStale);
  }
  if (rs.cutover_txn != exec::kAutoCommit) {
    locks_->ReleaseAll(rs.cutover_txn);
    txns_->erase(rs.cutover_txn);
  }
  ++stats_.resyncs_aborted;
  Inc(LazyCounter(&m_resyncs_aborted_, "replica.resyncs_aborted"));
  // Retry right away if the source is still healthy (the failure was
  // transient message loss); a dead source retries from its recovery.
  if (info.ok()) MaybeStartResync(rs.table, rs.fragment);
}

void GdhProcess::HandleResyncReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<ResyncReply>>(mail.body);
  SettleRpc(reply->request_id);
  if (!request_batch_.contains(reply->request_id)) {
    ++stats_.dup_replies;
    Inc(LazyCounter(&m_dup_replies_, "gdh.dup_replies"));
    return;
  }
  // Transfer accounting feeds the replica.* family exactly once per
  // settled phase.
  Inc(LazyCounter(&m_resync_bulk_tuples_, "replica.resync_bulk_tuples"),
      reply->bulk_tuples);
  Inc(LazyCounter(&m_resync_delta_records_, "replica.resync_delta_records"),
      reply->delta_records);
  Inc(LazyCounter(&m_resync_rounds_, "replica.resync_rounds"),
      reply->delta_rounds);
  Inc(LazyCounter(&m_resync_wire_bits_, "replica.resync_wire_bits"),
      reply->wire_bits);
  AccountBatchMember(reply->request_id, reply->status, 0);
}

// ------------------------------------------------------------------- Mail
//
// Handler contract (D5): the GDH consumes coordinator-side protocol mail —
// client statements, lock grants, worker replies, 2PC recovery traffic and
// the failover/resync control plane.
// PRISMA_HANDLES(kMailClientStatement, kMailLockBatch, kMailStatementDone)
// PRISMA_HANDLES(kMailWriteReply, kMailTxnControlReply, kMailDecisionRequest)
// PRISMA_HANDLES(kMailRpcTimeout, kMailCoordCheck, kMailResyncReply)

void GdhProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailClientStatement) {
    HandleClientStatement(mail);
  } else if (mail.kind == kMailLockBatch) {
    HandleLockBatch(mail);
  } else if (mail.kind == kMailStatementDone) {
    HandleStatementDone(mail);
  } else if (mail.kind == kMailWriteReply) {
    HandleWriteReply(mail);
  } else if (mail.kind == kMailTxnControlReply) {
    HandleTxnControlReply(mail);
  } else if (mail.kind == kMailDecisionRequest) {
    HandleDecisionRequest(mail);
  } else if (mail.kind == kMailRpcTimeout) {
    HandleRpcTimeout(mail);
  } else if (mail.kind == kMailCoordCheck) {
    HandleCoordCheck(mail);
  } else if (mail.kind == kMailResyncReply) {
    HandleResyncReply(mail);
  }
}

}  // namespace prisma::gdh
