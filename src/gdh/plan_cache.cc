#include "gdh/plan_cache.h"

#include <utility>

namespace prisma::gdh {

std::shared_ptr<const PlanCache::Entry> PlanCache::Lookup(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("query.plan_cache.miss")->Increment();
    }
    return nullptr;
  }
  ++hits_;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("query.plan_cache.hit")->Increment();
  }
  return it->second;
}

void PlanCache::Insert(const Key& key, std::shared_ptr<const Entry> entry) {
  if (capacity_ == 0 || entry == nullptr || entry->split == nullptr) return;
  if (entries_.count(key) > 0) return;  // A concurrent query already filled it.
  while (entries_.size() >= capacity_) {
    auto oldest = insert_order_.begin();
    entries_.erase(oldest->second);
    insert_order_.erase(oldest);
  }
  entries_.emplace(key, std::move(entry));
  insert_order_.emplace(next_seq_++, key);
}

void PlanCache::Invalidate(const char* reason) {
  ++epoch_;
  if (entries_.empty()) return;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("query.plan_cache.invalidate",
                     {{"reason", reason}})
        ->Increment(entries_.size());
  }
  entries_.clear();
  insert_order_.clear();
}

}  // namespace prisma::gdh
