#ifndef PRISMA_GDH_DATA_DICTIONARY_H_
#define PRISMA_GDH_DATA_DICTIONARY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "gdh/fragmentation.h"
#include "net/topology.h"
#include "pool/runtime.h"
#include "sql/binder.h"

namespace prisma::gdh {

/// Placement of one fragment: which PE hosts it and which POOL-X process
/// is its One-Fragment Manager.
struct FragmentInfo {
  std::string name;  // "emp#3".
  net::NodeId pe = 0;
  pool::ProcessId ofm = pool::kNoProcess;
  /// Live tuple count, maintained by the GDH on writes; the optimizer's
  /// size estimator reads it.
  uint64_t row_count = 0;
};

struct IndexInfo {
  std::string name;
  std::vector<size_t> columns;
  bool ordered = false;
};

/// Catalog entry of one relation.
struct TableInfo {
  std::string name;
  Schema schema;
  FragmentationSpec fragmentation;
  std::vector<FragmentInfo> fragments;
  std::vector<IndexInfo> indexes;
  std::unique_ptr<Fragmenter> fragmenter;

  uint64_t TotalRows() const {
    uint64_t n = 0;
    for (const FragmentInfo& f : fragments) n += f.row_count;
    return n;
  }
};

/// The GDH's data dictionary (§2.2): schemas, fragmentation, placement and
/// statistics for every relation in the machine. Implements the binder's
/// catalog interface.
class DataDictionary : public sql::CatalogReader {
 public:
  DataDictionary() = default;

  DataDictionary(const DataDictionary&) = delete;
  DataDictionary& operator=(const DataDictionary&) = delete;

  // sql::CatalogReader:
  StatusOr<Schema> GetTableSchema(const std::string& table) const override;

  /// Registers a new table; fragment placement (pe/ofm) is filled in by
  /// the caller (the GDH's allocation step).
  StatusOr<TableInfo*> CreateTable(const std::string& table, Schema schema,
                                   FragmentationSpec fragmentation);

  Status DropTable(const std::string& table);

  bool HasTable(const std::string& table) const {
    return tables_.contains(table);
  }

  StatusOr<TableInfo*> GetTable(const std::string& table);
  StatusOr<const TableInfo*> GetTable(const std::string& table) const;

  Status AddIndex(const std::string& table, IndexInfo index);

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_DATA_DICTIONARY_H_
