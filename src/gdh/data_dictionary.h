#ifndef PRISMA_GDH_DATA_DICTIONARY_H_
#define PRISMA_GDH_DATA_DICTIONARY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "gdh/fragmentation.h"
#include "gdh/replication.h"
#include "net/topology.h"
#include "pool/runtime.h"
#include "sql/binder.h"

namespace prisma::gdh {

/// Placement of one fragment: which PE hosts it and which POOL-X process
/// is its One-Fragment Manager.
///
/// With replication on (DESIGN.md §13), the fragment has two replicas:
/// replica 0 is the home copy named `name`, replica 1 the backup named
/// BackupFragmentName(name) on a distinct PE (anti-affinity). Writes go to
/// every in-sync replica through 2PC; reads are served by the replica in
/// the primary role, failing over to the other in-sync replica when the
/// primary's PE is down.
struct FragmentInfo {
  std::string name;  // "emp#3".
  net::NodeId pe = 0;
  pool::ProcessId ofm = pool::kNoProcess;
  /// Live tuple count, maintained by the GDH on writes; the optimizer's
  /// size estimator reads it.
  uint64_t row_count = 0;

  bool replicated = false;
  net::NodeId backup_pe = 0;
  pool::ProcessId backup_ofm = pool::kNoProcess;
  // PRISMA_TRANSITION(init, kInSync, replica 0 (home) is born in sync)
  ReplicaState state = ReplicaState::kInSync;
  // PRISMA_TRANSITION(init, kInSync, replica 1 (backup) is born in sync)
  ReplicaState backup_state = ReplicaState::kInSync;
  /// Which replica serves reads and sources resyncs (0 home, 1 backup).
  /// Flips to the survivor on failover; no automatic failback.
  int primary_replica = 0;

  int num_replicas() const { return replicated ? 2 : 1; }
  std::string ReplicaName(int r) const {
    return r == 0 ? name : BackupFragmentName(name);
  }
  net::NodeId ReplicaPe(int r) const { return r == 0 ? pe : backup_pe; }
  pool::ProcessId ReplicaOfm(int r) const {
    return r == 0 ? ofm : backup_ofm;
  }
  void SetReplicaOfm(int r, pool::ProcessId id) {
    (r == 0 ? ofm : backup_ofm) = id;
  }
  ReplicaState replica_state(int r) const {
    return r == 0 ? state : backup_state;
  }
  // PRISMA_STATE_SETTER(ReplicaState)
  void set_replica_state(int r, ReplicaState s) {
    (r == 0 ? state : backup_state) = s;
  }
};

struct IndexInfo {
  std::string name;
  std::vector<size_t> columns;
  bool ordered = false;
};

/// Catalog entry of one relation.
struct TableInfo {
  std::string name;
  Schema schema;
  FragmentationSpec fragmentation;
  std::vector<FragmentInfo> fragments;
  std::vector<IndexInfo> indexes;
  std::unique_ptr<Fragmenter> fragmenter;

  uint64_t TotalRows() const {
    uint64_t n = 0;
    for (const FragmentInfo& f : fragments) n += f.row_count;
    return n;
  }
};

/// The GDH's data dictionary (§2.2): schemas, fragmentation, placement and
/// statistics for every relation in the machine. Implements the binder's
/// catalog interface.
class DataDictionary : public sql::CatalogReader {
 public:
  DataDictionary() = default;

  DataDictionary(const DataDictionary&) = delete;
  DataDictionary& operator=(const DataDictionary&) = delete;

  // sql::CatalogReader:
  StatusOr<Schema> GetTableSchema(const std::string& table) const override;

  /// Registers a new table; fragment placement (pe/ofm) is filled in by
  /// the caller (the GDH's allocation step).
  StatusOr<TableInfo*> CreateTable(const std::string& table, Schema schema,
                                   FragmentationSpec fragmentation);

  Status DropTable(const std::string& table);

  bool HasTable(const std::string& table) const {
    return tables_.contains(table);
  }

  StatusOr<TableInfo*> GetTable(const std::string& table);
  StatusOr<const TableInfo*> GetTable(const std::string& table) const;

  Status AddIndex(const std::string& table, IndexInfo index);

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_DATA_DICTIONARY_H_
