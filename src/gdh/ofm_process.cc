#include "gdh/ofm_process.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/column_batch.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace prisma::gdh {

OfmProcess::OfmProcess(Config config) : config_(std::move(config)) {}

OfmProcess::~OfmProcess() {
  if (config_.registry != nullptr && !ofm_.null()) {
    config_.registry->Unregister(pe(), config_.fragment_name);
  }
}

void OfmProcess::OnStart() {
  // The charge hook binds to this process so all OFM work lands on the
  // hosting PE's clock.
  config_.ofm.exec.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  ofm_ = std::make_unique<exec::Ofm>(config_.fragment_name, config_.schema,
                                     config_.ofm);
  if (config_.metrics != nullptr) {
    const obs::Labels labels = {{"fragment", config_.fragment_name}};
    m_tuples_scanned_ = config_.metrics->GetCounter("ofm.tuples_scanned", labels);
    m_index_selections_ =
        config_.metrics->GetCounter("ofm.index_selections", labels);
    m_full_scans_ = config_.metrics->GetCounter("ofm.full_scans", labels);
    m_plans_executed_ = config_.metrics->GetCounter("ofm.plans_executed", labels);
    m_writes_ = config_.metrics->GetCounter("ofm.write_ops", labels);
    m_commits_ = config_.metrics->GetCounter("ofm.txn_commits", labels);
    m_aborts_ = config_.metrics->GetCounter("ofm.txn_aborts", labels);
    m_wal_records_ = config_.metrics->GetCounter("ofm.wal_records", labels);
    m_redo_applied_ = config_.metrics->GetCounter("ofm.redo_applied", labels);
    m_recoveries_ = config_.metrics->GetCounter("ofm.recoveries", labels);
  }
  if (config_.recover) {
    PRISMA_CHECK_OK(ofm_->Recover());
    if (m_recoveries_ != nullptr) m_recoveries_->Increment();
    SyncDurabilityMetrics();
    if (Stalled() && config_.gdh != pool::kNoProcess) {
      SendDecisionRequest();
      SendSelfAfter(config_.decision_retry_ns, kMailDecisionRetry);
    }
  }
  for (const IndexInfo& index : config_.indexes) {
    if (index.ordered) {
      PRISMA_CHECK_OK(ofm_->CreateBTreeIndex(index.name, index.columns));
    } else {
      PRISMA_CHECK_OK(ofm_->CreateHashIndex(index.name, index.columns));
    }
  }
  if (config_.registry != nullptr) {
    config_.registry->Register(pe(), config_.fragment_name, ofm_.get());
  }
}

bool OfmProcess::InDoubt(exec::TxnId txn) const {
  const std::vector<exec::TxnId>& undecided = ofm_->recovered_undecided();
  return std::find(undecided.begin(), undecided.end(), txn) !=
         undecided.end();
}

void OfmProcess::NoteFinished(exec::TxnId txn) {
  if (txn == exec::kAutoCommit) return;
  EvictExpiredDedupState();
  if (!finished_->insert(txn).second) return;
  finished_order_.push_back({runtime()->simulator()->now(), txn});
}

void OfmProcess::EvictExpiredDedupState() {
  // Time-based, not count-based: an entry may only be dropped once every
  // sender's retry window (and any delayed duplicate) has lapsed, or a
  // retransmission would re-execute a non-idempotent write.
  const sim::SimTime cutoff =
      runtime()->simulator()->now() - config_.dedup_retention_ns;
  while (!reply_order_.empty() && reply_order_.front().first <= cutoff) {
    replies_->erase(reply_order_.front().second);
    reply_order_.pop_front();
  }
  while (!finished_order_.empty() && finished_order_.front().first <= cutoff) {
    finished_->erase(finished_order_.front().second);
    finished_order_.pop_front();
  }
}

void OfmProcess::SendDecisionRequest() {
  auto request = std::make_shared<DecisionRequest>();
  request->request_id = next_request_id_++;
  request->transactions = ofm_->recovered_undecided();
  SendMail(config_.gdh, kMailDecisionRequest, request, kControlBits);
}

bool OfmProcess::ReplayCached(pool::ProcessId from, uint64_t request_id) {
  auto it = replies_->find({from, request_id});
  if (it == replies_->end()) return false;
  ++dup_requests_;
  if (m_dup_requests_ == nullptr && config_.metrics != nullptr) {
    // Registered on first duplicate so fault-free metric dumps are
    // unchanged.
    m_dup_requests_ = config_.metrics->GetCounter(
        "ofm.dup_requests", {{"fragment", config_.fragment_name}});
  }
  if (m_dup_requests_ != nullptr) m_dup_requests_->Increment();
  SendMail(from, it->second.kind, it->second.body, it->second.size_bits);
  return true;
}

void OfmProcess::Respond(pool::ProcessId to, uint64_t request_id,
                         const char* kind, std::any body,
                         int64_t size_bits) {
  EvictExpiredDedupState();
  const auto key = std::make_pair(to, request_id);
  auto [it, inserted] =
      replies_->try_emplace(key, CachedReply{kind, body, size_bits});
  if (inserted) {
    reply_order_.push_back({runtime()->simulator()->now(), key});
  }
  SendMail(to, kind, std::move(body), size_bits);
}

void OfmProcess::MaybeReplayStalled() {
  if (Stalled() || stalled_->empty()) return;
  std::vector<pool::Mail> replay = std::move(*stalled_);
  stalled_->clear();
  for (pool::Mail& mail : replay) OnMail(mail);
}

void OfmProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailDecisionReply) {
    HandleDecisionReply(mail);
    return;
  }
  if (mail.kind == kMailDecisionRetry) {
    if (Stalled()) {
      SendDecisionRequest();
      SendSelfAfter(config_.decision_retry_ns, kMailDecisionRetry);
    }
    return;
  }
  // Exchange data-plane mail is not a request: acks carry no request_id
  // (a late ack of a finished shuffle is simply ignored) and the resend
  // kind is a local timer.
  if (mail.kind == kMailBatchAck) {
    HandleBatchAck(mail);
    return;
  }
  if (mail.kind == kMailBatchResend) {
    HandleBatchResend(mail);
    return;
  }
  // Everything else is a request carrying a request_id: answer duplicates
  // from the reply cache without re-executing.
  uint64_t request_id = 0;
  if (mail.kind == kMailExecPlan) {
    request_id =
        std::any_cast<std::shared_ptr<ExecPlanRequest>>(mail.body)->request_id;
  } else if (mail.kind == kMailWrite) {
    request_id =
        std::any_cast<std::shared_ptr<WriteRequest>>(mail.body)->request_id;
  } else if (mail.kind == kMailTxnControl) {
    request_id = std::any_cast<std::shared_ptr<TxnControlRequest>>(mail.body)
                     ->request_id;
  } else if (mail.kind == kMailCheckpoint) {
    request_id = std::any_cast<std::shared_ptr<CheckpointRequest>>(mail.body)
                     ->request_id;
  } else if (mail.kind == kMailCreateIndex) {
    request_id = std::any_cast<std::shared_ptr<CreateIndexRequest>>(mail.body)
                     ->request_id;
  } else if (mail.kind == kMailShufflePlan) {
    request_id = std::any_cast<std::shared_ptr<ShufflePlanRequest>>(mail.body)
                     ->request_id;
  } else {
    // Unknown kinds are ignored (forward compatibility).
    return;
  }
  if (ReplayCached(mail.from, request_id)) return;
  if (Stalled()) {
    // In-doubt transactions are unresolved: only 2PC control addressed to
    // them proceeds (the decision may arrive as a direct commit/abort);
    // all other work waits so it cannot observe withheld effects or
    // interleave with the pending decisions.
    bool defer = true;
    if (mail.kind == kMailTxnControl) {
      auto request =
          std::any_cast<std::shared_ptr<TxnControlRequest>>(mail.body);
      defer = !InDoubt(request->txn);
    }
    if (defer) {
      stalled_->push_back(mail);
      return;
    }
  }
  if (mail.kind == kMailExecPlan) {
    HandleExecPlan(mail);
  } else if (mail.kind == kMailWrite) {
    HandleWrite(mail);
  } else if (mail.kind == kMailTxnControl) {
    HandleTxnControl(mail);
  } else if (mail.kind == kMailCheckpoint) {
    HandleCheckpoint(mail);
  } else if (mail.kind == kMailCreateIndex) {
    HandleCreateIndex(mail);
  } else if (mail.kind == kMailShufflePlan) {
    HandleShufflePlan(mail);
  }
}

void OfmProcess::HandleCheckpoint(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<CheckpointRequest>>(mail.body);
  auto reply = std::make_shared<WriteReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  reply->status = ofm_->Checkpoint();
  Respond(mail.from, request->request_id, kMailWriteReply, reply,
          kControlBits);
}

void OfmProcess::HandleCreateIndex(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<CreateIndexRequest>>(mail.body);
  auto reply = std::make_shared<WriteReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  reply->status = request->ordered
                      ? ofm_->CreateBTreeIndex(request->index_name,
                                               request->columns)
                      : ofm_->CreateHashIndex(request->index_name,
                                              request->columns);
  Respond(mail.from, request->request_id, kMailWriteReply, reply,
          kControlBits);
}

void OfmProcess::HandleExecPlan(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<ExecPlanRequest>>(mail.body);
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  std::optional<PeLocalResolver> colocated;
  if (config_.registry != nullptr) {
    colocated.emplace(config_.registry, pe());
  }
  std::optional<obs::OperatorProfile> profile;
  if (request->profile) profile.emplace();
  auto result =
      ofm_->ExecutePlan(*request->plan,
                        colocated.has_value() ? &*colocated : nullptr,
                        profile.has_value() ? &*profile : nullptr,
                        request->exec_mode);
  if (m_plans_executed_ != nullptr) {
    const exec::ExecStats& stats = ofm_->last_exec_stats();
    m_plans_executed_->Increment();
    m_tuples_scanned_->Increment(stats.tuples_scanned);
    m_index_selections_->Increment(stats.index_selections);
    // Plan-level classification: tuples were scanned but no selection went
    // through an index, so at least one full fragment scan happened.
    if (stats.tuples_scanned > 0 && stats.index_selections == 0) {
      m_full_scans_->Increment();
    }
  }
  if (result.ok()) {
    reply->tuples =
        std::make_shared<std::vector<Tuple>>(std::move(result).value());
    if (profile.has_value()) {
      reply->profile =
          std::make_shared<obs::OperatorProfile>(std::move(*profile));
    }
  } else {
    reply->status = result.status();
  }
  // Not cached: plan execution is an idempotent read, and its reply
  // carries result tuples — caching it for the full dedup retention
  // window would pin every result set in memory. A duplicated request
  // simply re-executes; the coordinator drops the surplus reply.
  SendMail(mail.from, kMailExecPlanReply, reply, reply->WireBits());
}

void OfmProcess::RegisterExchangeMetrics() {
  if (config_.metrics == nullptr || m_batches_sent_ != nullptr) return;
  const obs::Labels labels = {{"fragment", config_.fragment_name}};
  m_batches_sent_ =
      config_.metrics->GetCounter("exchange.batches_sent", labels);
  m_exchange_bytes_ = config_.metrics->GetCounter("exchange.bytes", labels);
  m_exchange_stalls_ = config_.metrics->GetCounter("exchange.stalls", labels);
  m_wire_bits_ = config_.metrics->GetCounter("exchange.wire_bits", labels);
}

void OfmProcess::HandleShufflePlan(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<ShufflePlanRequest>>(mail.body);
  // A retransmitted plan racing its own in-flight execution: the running
  // shuffle will answer the coordinator, so a second stream would only
  // duplicate every batch.
  if (active_shuffles_->contains({mail.from, request->request_id})) return;

  std::optional<PeLocalResolver> colocated;
  if (config_.registry != nullptr) colocated.emplace(config_.registry, pe());
  auto result = ofm_->ExecutePlan(
      *request->plan, colocated.has_value() ? &*colocated : nullptr, nullptr,
      request->exec_mode);
  if (m_plans_executed_ != nullptr) {
    const exec::ExecStats& stats = ofm_->last_exec_stats();
    m_plans_executed_->Increment();
    m_tuples_scanned_->Increment(stats.tuples_scanned);
    m_index_selections_->Increment(stats.index_selections);
    if (stats.tuples_scanned > 0 && stats.index_selections == 0) {
      m_full_scans_->Increment();
    }
  }
  if (!result.ok()) {
    auto reply = std::make_shared<ExecPlanReply>();
    reply->request_id = request->request_id;
    reply->fragment = config_.fragment_name;
    reply->status = result.status();
    Respond(mail.from, request->request_id, kMailExecPlanReply, reply,
            kControlBits);
    return;
  }

  std::vector<Tuple> rows = std::move(result).value();
  const size_t consumers = request->consumers.size();
  PRISMA_CHECK(consumers > 0);
  const pool::CostModel& costs = config_.ofm.exec.costs;
  std::vector<std::vector<Tuple>> partitions(consumers);
  if (request->mode == ShufflePlanRequest::Mode::kBroadcast) {
    for (size_t c = 0; c + 1 < consumers; ++c) partitions[c] = rows;
    partitions[consumers - 1] = std::move(rows);
  } else {
    // Same routing function as the stationary hash fragmenter
    // (Fragmenter::HashFragment), so a shuffled side lands on the
    // fragments that already hold the anchor table's matching keys.
    // NULL keys are dropped: they can never satisfy an equi-join.
    ChargeCpu(static_cast<sim::SimTime>(rows.size()) * costs.hash_ns);
    for (Tuple& tuple : rows) {
      const Value& key = tuple.at(request->partition_column);
      if (key.is_null()) continue;
      partitions[key.Hash() % consumers].push_back(std::move(tuple));
    }
  }

  RegisterExchangeMetrics();
  const uint64_t token = next_shuffle_token_++;
  ShuffleState state;
  state.coordinator = mail.from;
  state.request_id = request->request_id;
  state.token = token;
  state.exchange_id = request->exchange_id;
  state.side = request->side;
  state.producer = request->producer;
  state.columnar = request->exec_mode == exec::ExecMode::kVectorized;
  state.retry_delay = config_.batch_retry_ns;
  state.channels.reserve(consumers);
  for (size_t c = 0; c < consumers; ++c) {
    obs::Gauge* gauge = nullptr;
    if (config_.metrics != nullptr) {
      gauge = config_.metrics->GetGauge(
          "exchange.credit", {{"fragment", config_.fragment_name},
                              {"channel", std::to_string(c)}});
    }
    state.channels.push_back(
        {exec::OutboundChannel(std::move(partitions[c]), request->batch_rows,
                               request->credit_window),
         request->consumers[c], gauge});
  }
  (*active_shuffles_)[{mail.from, request->request_id}] = token;
  auto [it, inserted] = shuffles_->emplace(token, std::move(state));
  PRISMA_CHECK(inserted);
  PumpShuffle(it->second);
  SendSelfAfter(it->second.retry_delay, kMailBatchResend,
                std::make_shared<uint64_t>(token));
}

void OfmProcess::PumpShuffle(ShuffleState& state) {
  for (ShuffleChannel& sc : state.channels) {
    bool sent = false;
    while (const exec::TupleBatch* batch = sc.channel.TakeNextToSend()) {
      SendBatch(state, sc, *batch);
      sent = true;
    }
    // A drain that halted at the window edge (rather than running out of
    // batches) is one stall event: the pipeline is now waiting on acks.
    if (sent && sc.channel.Stalled() && m_exchange_stalls_ != nullptr) {
      m_exchange_stalls_->Increment();
    }
    if (sc.credit_gauge != nullptr) {
      sc.credit_gauge->Set(static_cast<int64_t>(sc.channel.credit()));
    }
  }
}

void OfmProcess::SendBatch(const ShuffleState& state,
                           const ShuffleChannel& channel,
                           const exec::TupleBatch& batch) {
  auto msg = std::make_shared<TupleBatchMsg>();
  msg->exchange_id = state.exchange_id;
  msg->side = state.side;
  msg->producer = state.producer;
  msg->shuffle_token = state.token;
  msg->seq = batch.seq;
  msg->eos = batch.eos;
  if (state.columnar) {
    // Column-encoded frame (DESIGN.md §12): the serialized byte length is
    // the modelled payload size, so format savings show up in
    // exchange.wire_bits / exchange.bytes instead of being assumed.
    msg->column_frame = std::make_shared<const std::string>(
        SerializeColumnBatch(ColumnBatch::FromTuples(batch.tuples)));
  } else {
    msg->tuples = std::make_shared<std::vector<Tuple>>(batch.tuples);
  }
  const int64_t bits = msg->WireBits();
  // Marshalling cost, mirroring the consumer's per-tuple unmarshal charge.
  ChargeCpu(static_cast<sim::SimTime>(batch.tuples.size()) *
            config_.ofm.exec.costs.tuple_ns);
  if (m_batches_sent_ != nullptr) {
    m_batches_sent_->Increment();
    m_exchange_bytes_->Increment((bits - kControlBits) / 8);
    m_wire_bits_->Increment(bits);
  }
  SendMail(channel.consumer, kMailTupleBatch, std::move(msg), bits);
}

void OfmProcess::HandleBatchAck(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<BatchAckMsg>>(mail.body);
  auto it = shuffles_->find(msg->shuffle_token);
  if (it == shuffles_->end()) return;  // Finished or superseded shuffle.
  ShuffleState& state = it->second;
  if (msg->consumer >= state.channels.size()) return;
  ShuffleChannel& channel = state.channels[msg->consumer];
  channel.channel.set_window(msg->credit);
  if (channel.channel.OnAck(msg->ack)) {
    // Window progress: the consumer is alive, so the retransmission
    // budget and backoff start over.
    state.attempts = 0;
    state.retry_delay = config_.batch_retry_ns;
  }
  PumpShuffle(state);
  for (const ShuffleChannel& sc : state.channels) {
    if (!sc.channel.done()) return;
  }
  FinishShuffle(state.token, Status::OK());
}

void OfmProcess::HandleBatchResend(const pool::Mail& mail) {
  const uint64_t token = *std::any_cast<std::shared_ptr<uint64_t>>(mail.body);
  auto it = shuffles_->find(token);
  if (it == shuffles_->end()) return;  // Shuffle finished; timer is moot.
  ShuffleState& state = it->second;
  if (++state.attempts > config_.batch_attempts) {
    FinishShuffle(token,
                  UnavailableError("shuffle from fragment " +
                                   config_.fragment_name +
                                   " made no progress after " +
                                   std::to_string(config_.batch_attempts) +
                                   " retransmission windows"));
    return;
  }
  // Retransmit the lowest unacknowledged already-sent batch of every
  // unfinished channel (repairs both a lost batch and a lost ack — the
  // consumer re-acks duplicates), then pump in case credit is free.
  for (ShuffleChannel& sc : state.channels) {
    if (sc.channel.done()) continue;
    const uint64_t seq = sc.channel.acked() + 1;
    if (!sc.channel.Sent(seq)) continue;  // First transmission: Pump's job.
    const exec::TupleBatch* batch = sc.channel.BatchAt(seq);
    if (batch == nullptr) continue;
    if (config_.metrics != nullptr) {
      if (m_batch_retransmits_ == nullptr) {
        // Registered on first retransmission so fault-free metric dumps
        // are unchanged.
        m_batch_retransmits_ = config_.metrics->GetCounter(
            "exchange.retransmits", {{"fragment", config_.fragment_name}});
      }
      m_batch_retransmits_->Increment();
    }
    SendBatch(state, sc, *batch);
  }
  PumpShuffle(state);
  state.retry_delay =
      std::min(state.retry_delay * 2, config_.batch_backoff_cap_ns);
  SendSelfAfter(state.retry_delay, kMailBatchResend,
                std::make_shared<uint64_t>(token));
}

void OfmProcess::FinishShuffle(uint64_t token, Status status) {
  auto it = shuffles_->find(token);
  if (it == shuffles_->end()) return;
  ShuffleState& state = it->second;
  for (ShuffleChannel& sc : state.channels) {
    if (sc.credit_gauge != nullptr) sc.credit_gauge->Set(0);
  }
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = state.request_id;
  reply->fragment = config_.fragment_name;
  reply->status = std::move(status);
  // Cached, unlike plain plan replies: a shuffle completion is control-
  // sized, and re-running the shuffle for a duplicated request would
  // re-stream every batch at the consumers.
  Respond(state.coordinator, state.request_id, kMailExecPlanReply, reply,
          kControlBits);
  active_shuffles_->erase({state.coordinator, state.request_id});
  shuffles_->erase(it);
}

void OfmProcess::HandleWrite(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<WriteRequest>>(mail.body);
  auto reply = std::make_shared<WriteReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  if (Finished(request->txn)) {
    // A delayed or reordered write arriving after its transaction already
    // terminated here: applying it would re-open the transaction and leak
    // uncommitted effects, so refuse it.
    reply->status = AbortedError("transaction " +
                                 std::to_string(request->txn) +
                                 " already terminated on fragment " +
                                 config_.fragment_name);
    Respond(mail.from, request->request_id, kMailWriteReply, reply,
            kControlBits);
    return;
  }
  if (request->txn != exec::kAutoCommit) seen_txns_->insert(request->txn);
  switch (request->op) {
    case WriteRequest::Op::kInsert: {
      auto row = ofm_->Insert(request->txn, request->tuple);
      if (row.ok()) {
        reply->affected_rows = 1;
        reply->row_delta = 1;
      } else {
        reply->status = row.status();
      }
      break;
    }
    case WriteRequest::Op::kDeleteWhere: {
      auto count = ofm_->DeleteWhere(request->txn, request->predicate.get());
      if (count.ok()) {
        reply->affected_rows = *count;
        reply->row_delta = -static_cast<int64_t>(*count);
      } else {
        reply->status = count.status();
      }
      break;
    }
    case WriteRequest::Op::kUpdateWhere: {
      std::vector<std::pair<size_t, const algebra::Expr*>> assignments;
      assignments.reserve(request->assignments.size());
      for (const auto& [col, expr] : request->assignments) {
        assignments.push_back({col, expr.get()});
      }
      auto count =
          ofm_->UpdateWhere(request->txn, request->predicate.get(), assignments);
      if (count.ok()) {
        reply->affected_rows = *count;
      } else {
        reply->status = count.status();
      }
      break;
    }
  }
  if (m_writes_ != nullptr && reply->status.ok()) m_writes_->Increment();
  SyncDurabilityMetrics();
  Respond(mail.from, request->request_id, kMailWriteReply, reply,
          kControlBits);
}

void OfmProcess::HandleTxnControl(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<TxnControlRequest>>(mail.body);
  auto reply = std::make_shared<TxnControlReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  switch (request->op) {
    case TxnControlRequest::Op::kPrepare:
      if (InDoubt(request->txn)) {
        // Prepared before the crash; the vote stands.
        reply->status = Status::OK();
      } else if (!seen_txns_->contains(request->txn)) {
        // This incarnation never received a write of the transaction: a
        // crash replacement lost the writes (the coordinator only sends
        // prepare after every write was acknowledged). Voting yes could
        // commit a partial transaction, so vote no.
        reply->status =
            AbortedError("fragment " + config_.fragment_name +
                         " lost state of transaction " +
                         std::to_string(request->txn) + " (crash?)");
      } else {
        // A transaction whose writes all matched zero rows has no Ofm
        // state; Prepare treats it as a trivial yes.
        reply->status = ofm_->Prepare(request->txn);
      }
      break;
    case TxnControlRequest::Op::kCommit:
      reply->status = InDoubt(request->txn)
                          ? ofm_->ResolveRecovered(request->txn, true)
                          : ofm_->Commit(request->txn);
      // Recorded even when this OFM never saw the transaction: a delayed
      // write of it may still arrive and must find it terminated.
      NoteFinished(request->txn);
      seen_txns_->erase(request->txn);
      break;
    case TxnControlRequest::Op::kAbort:
      reply->status = InDoubt(request->txn)
                          ? ofm_->ResolveRecovered(request->txn, false)
                          : ofm_->Abort(request->txn);
      NoteFinished(request->txn);
      seen_txns_->erase(request->txn);
      break;
  }
  if (reply->status.ok() && m_commits_ != nullptr) {
    if (request->op == TxnControlRequest::Op::kCommit) m_commits_->Increment();
    if (request->op == TxnControlRequest::Op::kAbort) m_aborts_->Increment();
  }
  SyncDurabilityMetrics();
  Respond(mail.from, request->request_id, kMailTxnControlReply, reply,
          kControlBits);
  MaybeReplayStalled();
}

void OfmProcess::HandleDecisionReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<DecisionReply>>(mail.body);
  PRISMA_CHECK(reply->transactions.size() == reply->commit.size());
  // Late and duplicated replies are fine: only transactions still in
  // doubt are resolved, matched through the echoed ids.
  for (size_t i = 0; i < reply->transactions.size(); ++i) {
    if (!InDoubt(reply->transactions[i])) continue;
    PRISMA_CHECK_OK(
        ofm_->ResolveRecovered(reply->transactions[i], reply->commit[i]));
    NoteFinished(reply->transactions[i]);
  }
  SyncDurabilityMetrics();
  MaybeReplayStalled();
}

void OfmProcess::SyncDurabilityMetrics() {
  if (m_wal_records_ == nullptr) return;
  const uint64_t wal = ofm_->wal_records();
  const uint64_t redo = ofm_->redo_records_applied();
  m_wal_records_->Increment(wal - wal_synced_);
  m_redo_applied_->Increment(redo - redo_synced_);
  wal_synced_ = wal;
  redo_synced_ = redo;
}

}  // namespace prisma::gdh
