#include "gdh/ofm_process.h"

#include <optional>
#include <utility>

#include "common/logging.h"

namespace prisma::gdh {

OfmProcess::OfmProcess(Config config) : config_(std::move(config)) {}

OfmProcess::~OfmProcess() {
  if (config_.registry != nullptr && ofm_ != nullptr) {
    config_.registry->Unregister(pe(), config_.fragment_name);
  }
}

void OfmProcess::OnStart() {
  // The charge hook binds to this process so all OFM work lands on the
  // hosting PE's clock.
  config_.ofm.exec.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  ofm_ = std::make_unique<exec::Ofm>(config_.fragment_name, config_.schema,
                                     config_.ofm);
  if (config_.recover) {
    PRISMA_CHECK_OK(ofm_->Recover());
    if (!ofm_->recovered_undecided().empty() &&
        config_.gdh != pool::kNoProcess) {
      auto request = std::make_shared<DecisionRequest>();
      request->transactions = ofm_->recovered_undecided();
      SendMail(config_.gdh, kMailDecisionRequest, request, kControlBits);
    }
  }
  for (const IndexInfo& index : config_.indexes) {
    if (index.ordered) {
      PRISMA_CHECK_OK(ofm_->CreateBTreeIndex(index.name, index.columns));
    } else {
      PRISMA_CHECK_OK(ofm_->CreateHashIndex(index.name, index.columns));
    }
  }
  if (config_.registry != nullptr) {
    config_.registry->Register(pe(), config_.fragment_name, ofm_.get());
  }
}

void OfmProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailExecPlan) {
    HandleExecPlan(mail);
  } else if (mail.kind == kMailWrite) {
    HandleWrite(mail);
  } else if (mail.kind == kMailTxnControl) {
    HandleTxnControl(mail);
  } else if (mail.kind == kMailDecisionReply) {
    HandleDecisionReply(mail);
  } else if (mail.kind == kMailCheckpoint) {
    auto request =
        std::any_cast<std::shared_ptr<CheckpointRequest>>(mail.body);
    auto reply = std::make_shared<WriteReply>();
    reply->request_id = request->request_id;
    reply->fragment = config_.fragment_name;
    reply->status = ofm_->Checkpoint();
    SendMail(mail.from, kMailWriteReply, reply, kControlBits);
  } else if (mail.kind == kMailCreateIndex) {
    auto request =
        std::any_cast<std::shared_ptr<CreateIndexRequest>>(mail.body);
    auto reply = std::make_shared<WriteReply>();
    reply->request_id = request->request_id;
    reply->fragment = config_.fragment_name;
    reply->status = request->ordered
                        ? ofm_->CreateBTreeIndex(request->index_name,
                                                 request->columns)
                        : ofm_->CreateHashIndex(request->index_name,
                                                request->columns);
    SendMail(mail.from, kMailWriteReply, reply, kControlBits);
  }
  // Unknown kinds are ignored (forward compatibility).
}

void OfmProcess::HandleExecPlan(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<ExecPlanRequest>>(mail.body);
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  std::optional<PeLocalResolver> colocated;
  if (config_.registry != nullptr) {
    colocated.emplace(config_.registry, pe());
  }
  auto result = ofm_->ExecutePlan(
      *request->plan, colocated.has_value() ? &*colocated : nullptr);
  if (result.ok()) {
    reply->tuples =
        std::make_shared<std::vector<Tuple>>(std::move(result).value());
  } else {
    reply->status = result.status();
  }
  SendMail(mail.from, kMailExecPlanReply, reply, reply->WireBits());
}

void OfmProcess::HandleWrite(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<WriteRequest>>(mail.body);
  auto reply = std::make_shared<WriteReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  switch (request->op) {
    case WriteRequest::Op::kInsert: {
      auto row = ofm_->Insert(request->txn, request->tuple);
      if (row.ok()) {
        reply->affected_rows = 1;
        reply->row_delta = 1;
      } else {
        reply->status = row.status();
      }
      break;
    }
    case WriteRequest::Op::kDeleteWhere: {
      auto count = ofm_->DeleteWhere(request->txn, request->predicate.get());
      if (count.ok()) {
        reply->affected_rows = *count;
        reply->row_delta = -static_cast<int64_t>(*count);
      } else {
        reply->status = count.status();
      }
      break;
    }
    case WriteRequest::Op::kUpdateWhere: {
      std::vector<std::pair<size_t, const algebra::Expr*>> assignments;
      assignments.reserve(request->assignments.size());
      for (const auto& [col, expr] : request->assignments) {
        assignments.push_back({col, expr.get()});
      }
      auto count =
          ofm_->UpdateWhere(request->txn, request->predicate.get(), assignments);
      if (count.ok()) {
        reply->affected_rows = *count;
      } else {
        reply->status = count.status();
      }
      break;
    }
  }
  SendMail(mail.from, kMailWriteReply, reply, kControlBits);
}

void OfmProcess::HandleTxnControl(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<TxnControlRequest>>(mail.body);
  auto reply = std::make_shared<TxnControlReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  switch (request->op) {
    case TxnControlRequest::Op::kPrepare:
      reply->status = ofm_->Prepare(request->txn);
      break;
    case TxnControlRequest::Op::kCommit:
      reply->status = ofm_->Commit(request->txn);
      break;
    case TxnControlRequest::Op::kAbort:
      reply->status = ofm_->Abort(request->txn);
      break;
  }
  SendMail(mail.from, kMailTxnControlReply, reply, kControlBits);
}

void OfmProcess::HandleDecisionReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<DecisionReply>>(mail.body);
  // The ids were sent in recovered_undecided() order; resolve each.
  const std::vector<exec::TxnId> undecided = ofm_->recovered_undecided();
  PRISMA_CHECK(reply->commit.size() == undecided.size());
  for (size_t i = 0; i < undecided.size(); ++i) {
    PRISMA_CHECK_OK(ofm_->ResolveRecovered(undecided[i], reply->commit[i]));
  }
}

}  // namespace prisma::gdh
