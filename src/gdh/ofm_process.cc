#include "gdh/ofm_process.h"

#include <optional>
#include <utility>

#include "common/logging.h"

namespace prisma::gdh {

OfmProcess::OfmProcess(Config config) : config_(std::move(config)) {}

OfmProcess::~OfmProcess() {
  if (config_.registry != nullptr && ofm_ != nullptr) {
    config_.registry->Unregister(pe(), config_.fragment_name);
  }
}

void OfmProcess::OnStart() {
  // The charge hook binds to this process so all OFM work lands on the
  // hosting PE's clock.
  config_.ofm.exec.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  ofm_ = std::make_unique<exec::Ofm>(config_.fragment_name, config_.schema,
                                     config_.ofm);
  if (config_.metrics != nullptr) {
    const obs::Labels labels = {{"fragment", config_.fragment_name}};
    m_tuples_scanned_ = config_.metrics->GetCounter("ofm.tuples_scanned", labels);
    m_index_selections_ =
        config_.metrics->GetCounter("ofm.index_selections", labels);
    m_full_scans_ = config_.metrics->GetCounter("ofm.full_scans", labels);
    m_plans_executed_ = config_.metrics->GetCounter("ofm.plans_executed", labels);
    m_writes_ = config_.metrics->GetCounter("ofm.write_ops", labels);
    m_commits_ = config_.metrics->GetCounter("ofm.txn_commits", labels);
    m_aborts_ = config_.metrics->GetCounter("ofm.txn_aborts", labels);
    m_wal_records_ = config_.metrics->GetCounter("ofm.wal_records", labels);
    m_redo_applied_ = config_.metrics->GetCounter("ofm.redo_applied", labels);
    m_recoveries_ = config_.metrics->GetCounter("ofm.recoveries", labels);
  }
  if (config_.recover) {
    PRISMA_CHECK_OK(ofm_->Recover());
    if (m_recoveries_ != nullptr) m_recoveries_->Increment();
    SyncDurabilityMetrics();
    if (!ofm_->recovered_undecided().empty() &&
        config_.gdh != pool::kNoProcess) {
      auto request = std::make_shared<DecisionRequest>();
      request->transactions = ofm_->recovered_undecided();
      SendMail(config_.gdh, kMailDecisionRequest, request, kControlBits);
    }
  }
  for (const IndexInfo& index : config_.indexes) {
    if (index.ordered) {
      PRISMA_CHECK_OK(ofm_->CreateBTreeIndex(index.name, index.columns));
    } else {
      PRISMA_CHECK_OK(ofm_->CreateHashIndex(index.name, index.columns));
    }
  }
  if (config_.registry != nullptr) {
    config_.registry->Register(pe(), config_.fragment_name, ofm_.get());
  }
}

void OfmProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailExecPlan) {
    HandleExecPlan(mail);
  } else if (mail.kind == kMailWrite) {
    HandleWrite(mail);
  } else if (mail.kind == kMailTxnControl) {
    HandleTxnControl(mail);
  } else if (mail.kind == kMailDecisionReply) {
    HandleDecisionReply(mail);
  } else if (mail.kind == kMailCheckpoint) {
    auto request =
        std::any_cast<std::shared_ptr<CheckpointRequest>>(mail.body);
    auto reply = std::make_shared<WriteReply>();
    reply->request_id = request->request_id;
    reply->fragment = config_.fragment_name;
    reply->status = ofm_->Checkpoint();
    SendMail(mail.from, kMailWriteReply, reply, kControlBits);
  } else if (mail.kind == kMailCreateIndex) {
    auto request =
        std::any_cast<std::shared_ptr<CreateIndexRequest>>(mail.body);
    auto reply = std::make_shared<WriteReply>();
    reply->request_id = request->request_id;
    reply->fragment = config_.fragment_name;
    reply->status = request->ordered
                        ? ofm_->CreateBTreeIndex(request->index_name,
                                                 request->columns)
                        : ofm_->CreateHashIndex(request->index_name,
                                                request->columns);
    SendMail(mail.from, kMailWriteReply, reply, kControlBits);
  }
  // Unknown kinds are ignored (forward compatibility).
}

void OfmProcess::HandleExecPlan(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<ExecPlanRequest>>(mail.body);
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  std::optional<PeLocalResolver> colocated;
  if (config_.registry != nullptr) {
    colocated.emplace(config_.registry, pe());
  }
  std::optional<obs::OperatorProfile> profile;
  if (request->profile) profile.emplace();
  auto result =
      ofm_->ExecutePlan(*request->plan,
                        colocated.has_value() ? &*colocated : nullptr,
                        profile.has_value() ? &*profile : nullptr);
  if (m_plans_executed_ != nullptr) {
    const exec::ExecStats& stats = ofm_->last_exec_stats();
    m_plans_executed_->Increment();
    m_tuples_scanned_->Increment(stats.tuples_scanned);
    m_index_selections_->Increment(stats.index_selections);
    // Plan-level classification: tuples were scanned but no selection went
    // through an index, so at least one full fragment scan happened.
    if (stats.tuples_scanned > 0 && stats.index_selections == 0) {
      m_full_scans_->Increment();
    }
  }
  if (result.ok()) {
    reply->tuples =
        std::make_shared<std::vector<Tuple>>(std::move(result).value());
    if (profile.has_value()) {
      reply->profile =
          std::make_shared<obs::OperatorProfile>(std::move(*profile));
    }
  } else {
    reply->status = result.status();
  }
  SendMail(mail.from, kMailExecPlanReply, reply, reply->WireBits());
}

void OfmProcess::HandleWrite(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<WriteRequest>>(mail.body);
  auto reply = std::make_shared<WriteReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  switch (request->op) {
    case WriteRequest::Op::kInsert: {
      auto row = ofm_->Insert(request->txn, request->tuple);
      if (row.ok()) {
        reply->affected_rows = 1;
        reply->row_delta = 1;
      } else {
        reply->status = row.status();
      }
      break;
    }
    case WriteRequest::Op::kDeleteWhere: {
      auto count = ofm_->DeleteWhere(request->txn, request->predicate.get());
      if (count.ok()) {
        reply->affected_rows = *count;
        reply->row_delta = -static_cast<int64_t>(*count);
      } else {
        reply->status = count.status();
      }
      break;
    }
    case WriteRequest::Op::kUpdateWhere: {
      std::vector<std::pair<size_t, const algebra::Expr*>> assignments;
      assignments.reserve(request->assignments.size());
      for (const auto& [col, expr] : request->assignments) {
        assignments.push_back({col, expr.get()});
      }
      auto count =
          ofm_->UpdateWhere(request->txn, request->predicate.get(), assignments);
      if (count.ok()) {
        reply->affected_rows = *count;
      } else {
        reply->status = count.status();
      }
      break;
    }
  }
  if (m_writes_ != nullptr && reply->status.ok()) m_writes_->Increment();
  SyncDurabilityMetrics();
  SendMail(mail.from, kMailWriteReply, reply, kControlBits);
}

void OfmProcess::HandleTxnControl(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<TxnControlRequest>>(mail.body);
  auto reply = std::make_shared<TxnControlReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  switch (request->op) {
    case TxnControlRequest::Op::kPrepare:
      reply->status = ofm_->Prepare(request->txn);
      break;
    case TxnControlRequest::Op::kCommit:
      reply->status = ofm_->Commit(request->txn);
      break;
    case TxnControlRequest::Op::kAbort:
      reply->status = ofm_->Abort(request->txn);
      break;
  }
  if (reply->status.ok() && m_commits_ != nullptr) {
    if (request->op == TxnControlRequest::Op::kCommit) m_commits_->Increment();
    if (request->op == TxnControlRequest::Op::kAbort) m_aborts_->Increment();
  }
  SyncDurabilityMetrics();
  SendMail(mail.from, kMailTxnControlReply, reply, kControlBits);
}

void OfmProcess::HandleDecisionReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<DecisionReply>>(mail.body);
  // The ids were sent in recovered_undecided() order; resolve each.
  const std::vector<exec::TxnId> undecided = ofm_->recovered_undecided();
  PRISMA_CHECK(reply->commit.size() == undecided.size());
  for (size_t i = 0; i < undecided.size(); ++i) {
    PRISMA_CHECK_OK(ofm_->ResolveRecovered(undecided[i], reply->commit[i]));
  }
  SyncDurabilityMetrics();
}

void OfmProcess::SyncDurabilityMetrics() {
  if (m_wal_records_ == nullptr) return;
  const uint64_t wal = ofm_->wal_records();
  const uint64_t redo = ofm_->redo_records_applied();
  m_wal_records_->Increment(wal - wal_synced_);
  m_redo_applied_->Increment(redo - redo_synced_);
  wal_synced_ = wal;
  redo_synced_ = redo;
}

}  // namespace prisma::gdh
