#include "gdh/ofm_process.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/column_batch.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace prisma::gdh {

OfmProcess::OfmProcess(Config config) : config_(std::move(config)) {}

OfmProcess::~OfmProcess() {
  if (config_.registry != nullptr && !ofm_.null()) {
    config_.registry->Unregister(pe(), config_.fragment_name);
  }
}

void OfmProcess::OnStart() {
  // The charge hook binds to this process so all OFM work lands on the
  // hosting PE's clock.
  config_.ofm.exec.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  ofm_ = std::make_unique<exec::Ofm>(config_.fragment_name, config_.schema,
                                     config_.ofm);
  if (config_.metrics != nullptr) {
    const obs::Labels labels = {{"fragment", config_.fragment_name}};
    m_tuples_scanned_ = config_.metrics->GetCounter("ofm.tuples_scanned", labels);
    m_index_selections_ =
        config_.metrics->GetCounter("ofm.index_selections", labels);
    m_full_scans_ = config_.metrics->GetCounter("ofm.full_scans", labels);
    m_plans_executed_ = config_.metrics->GetCounter("ofm.plans_executed", labels);
    m_writes_ = config_.metrics->GetCounter("ofm.write_ops", labels);
    m_commits_ = config_.metrics->GetCounter("ofm.txn_commits", labels);
    m_aborts_ = config_.metrics->GetCounter("ofm.txn_aborts", labels);
    m_wal_records_ = config_.metrics->GetCounter("ofm.wal_records", labels);
    m_redo_applied_ = config_.metrics->GetCounter("ofm.redo_applied", labels);
    m_recoveries_ = config_.metrics->GetCounter("ofm.recoveries", labels);
  }
  // A resync target must start empty even if the PE's stable store holds
  // stale state for this fragment: the surviving replica is ahead of it,
  // and the bulk stream rebuilds the contents from there.
  if (config_.recover && config_.resync_id == 0) {
    PRISMA_CHECK_OK(ofm_->Recover());
    if (m_recoveries_ != nullptr) m_recoveries_->Increment();
    SyncDurabilityMetrics();
    if (Stalled() && config_.gdh != pool::kNoProcess) {
      SendDecisionRequest();
      SendSelfAfter(config_.decision_retry_ns, kMailDecisionRetry);
    }
  }
  for (const IndexInfo& index : config_.indexes) {
    if (index.ordered) {
      PRISMA_CHECK_OK(ofm_->CreateBTreeIndex(index.name, index.columns));
    } else {
      PRISMA_CHECK_OK(ofm_->CreateHashIndex(index.name, index.columns));
    }
  }
  if (config_.registry != nullptr) {
    config_.registry->Register(pe(), config_.fragment_name, ofm_.get());
  }
}

bool OfmProcess::InDoubt(exec::TxnId txn) const {
  const std::vector<exec::TxnId>& undecided = ofm_->recovered_undecided();
  return std::find(undecided.begin(), undecided.end(), txn) !=
         undecided.end();
}

void OfmProcess::NoteFinished(exec::TxnId txn) {
  if (txn == exec::kAutoCommit) return;
  EvictExpiredDedupState();
  if (!finished_->insert(txn).second) return;
  finished_order_.push_back({runtime()->simulator()->now(), txn});
}

void OfmProcess::EvictExpiredDedupState() {
  // Time-based, not count-based: an entry may only be dropped once every
  // sender's retry window (and any delayed duplicate) has lapsed, or a
  // retransmission would re-execute a non-idempotent write.
  const sim::SimTime cutoff =
      runtime()->simulator()->now() - config_.dedup_retention_ns;
  while (!reply_order_.empty() && reply_order_.front().first <= cutoff) {
    replies_->erase(reply_order_.front().second);
    reply_order_.pop_front();
  }
  while (!finished_order_.empty() && finished_order_.front().first <= cutoff) {
    finished_->erase(finished_order_.front().second);
    finished_order_.pop_front();
  }
}

void OfmProcess::SendDecisionRequest() {
  auto request = std::make_shared<DecisionRequest>();
  request->request_id = next_request_id_++;
  request->transactions = ofm_->recovered_undecided();
  SendMail(config_.gdh, kMailDecisionRequest, request, kControlBits);
}

bool OfmProcess::ReplayCached(pool::ProcessId from, uint64_t request_id) {
  auto it = replies_->find({from, request_id});
  if (it == replies_->end()) return false;
  ++dup_requests_;
  if (m_dup_requests_ == nullptr && config_.metrics != nullptr) {
    // Registered on first duplicate so fault-free metric dumps are
    // unchanged.
    m_dup_requests_ = config_.metrics->GetCounter(
        "ofm.dup_requests", {{"fragment", config_.fragment_name}});
  }
  if (m_dup_requests_ != nullptr) m_dup_requests_->Increment();
  SendMail(from, it->second.kind, it->second.body, it->second.size_bits);
  return true;
}

void OfmProcess::Respond(pool::ProcessId to, uint64_t request_id,
                         const char* kind, std::any body,
                         int64_t size_bits) {
  EvictExpiredDedupState();
  const auto key = std::make_pair(to, request_id);
  auto [it, inserted] =
      replies_->try_emplace(key, CachedReply{kind, body, size_bits});
  if (inserted) {
    reply_order_.push_back({runtime()->simulator()->now(), key});
  }
  SendMail(to, kind, std::move(body), size_bits);
}

void OfmProcess::MaybeReplayStalled() {
  if (Stalled() || stalled_->empty()) return;
  std::vector<pool::Mail> replay = std::move(*stalled_);
  stalled_->clear();
  for (pool::Mail& mail : replay) OnMail(mail);
}

// Handler contract (D5): an OFM consumes the worker-side protocol — plan /
// write / txn-control execution, checkpointing, exchange data plane, 2PC
// decision recovery and the resync data plane.
// PRISMA_HANDLES(kMailExecPlan, kMailWrite, kMailTxnControl, kMailCheckpoint)
// PRISMA_HANDLES(kMailCreateIndex, kMailShufflePlan, kMailDecisionReply)
// PRISMA_HANDLES(kMailDecisionRetry, kMailBatchAck, kMailBatchResend)
// PRISMA_HANDLES(kMailTupleBatch, kMailResync, kMailResyncDelta)
// PRISMA_HANDLES(kMailResyncDeltaAck, kMailResyncPump)
void OfmProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailDecisionReply) {
    HandleDecisionReply(mail);
    return;
  }
  if (mail.kind == kMailDecisionRetry) {
    if (Stalled()) {
      SendDecisionRequest();
      SendSelfAfter(config_.decision_retry_ns, kMailDecisionRetry);
    }
    return;
  }
  // Exchange data-plane mail is not a request: acks carry no request_id
  // (a late ack of a finished shuffle is simply ignored) and the resend
  // kind is a local timer.
  if (mail.kind == kMailBatchAck) {
    HandleBatchAck(mail);
    return;
  }
  if (mail.kind == kMailBatchResend) {
    HandleBatchResend(mail);
    return;
  }
  // Resync data plane (DESIGN.md §13): bulk frames reach an OFM only as a
  // resync target (exchange consumers are separate processes), delta acks
  // only as a resync source, and the pump kind is a local timer.
  if (mail.kind == kMailTupleBatch) {
    HandleResyncBatch(mail);
    return;
  }
  if (mail.kind == kMailResyncDelta) {
    HandleResyncDelta(mail);
    return;
  }
  if (mail.kind == kMailResyncDeltaAck) {
    HandleResyncDeltaAck(mail);
    return;
  }
  if (mail.kind == kMailResyncPump) {
    HandleResyncPump(mail);
    return;
  }
  // Everything else is a request carrying a request_id: answer duplicates
  // from the reply cache without re-executing.
  uint64_t request_id = 0;
  if (mail.kind == kMailExecPlan) {
    request_id =
        std::any_cast<std::shared_ptr<ExecPlanRequest>>(mail.body)->request_id;
  } else if (mail.kind == kMailWrite) {
    request_id =
        std::any_cast<std::shared_ptr<WriteRequest>>(mail.body)->request_id;
  } else if (mail.kind == kMailTxnControl) {
    request_id = std::any_cast<std::shared_ptr<TxnControlRequest>>(mail.body)
                     ->request_id;
  } else if (mail.kind == kMailCheckpoint) {
    request_id = std::any_cast<std::shared_ptr<CheckpointRequest>>(mail.body)
                     ->request_id;
  } else if (mail.kind == kMailCreateIndex) {
    request_id = std::any_cast<std::shared_ptr<CreateIndexRequest>>(mail.body)
                     ->request_id;
  } else if (mail.kind == kMailShufflePlan) {
    request_id = std::any_cast<std::shared_ptr<ShufflePlanRequest>>(mail.body)
                     ->request_id;
  } else if (mail.kind == kMailResync) {
    request_id =
        std::any_cast<std::shared_ptr<ResyncRequest>>(mail.body)->request_id;
  } else {
    // Unknown kinds are ignored (forward compatibility).
    return;
  }
  if (ReplayCached(mail.from, request_id)) return;
  if (Stalled()) {
    // In-doubt transactions are unresolved: only 2PC control addressed to
    // them proceeds (the decision may arrive as a direct commit/abort);
    // all other work waits so it cannot observe withheld effects or
    // interleave with the pending decisions.
    bool defer = true;
    if (mail.kind == kMailTxnControl) {
      auto request =
          std::any_cast<std::shared_ptr<TxnControlRequest>>(mail.body);
      defer = !InDoubt(request->txn);
    }
    if (defer) {
      stalled_->push_back(mail);
      return;
    }
  }
  if (mail.kind == kMailExecPlan) {
    HandleExecPlan(mail);
  } else if (mail.kind == kMailWrite) {
    HandleWrite(mail);
  } else if (mail.kind == kMailTxnControl) {
    HandleTxnControl(mail);
  } else if (mail.kind == kMailCheckpoint) {
    HandleCheckpoint(mail);
  } else if (mail.kind == kMailCreateIndex) {
    HandleCreateIndex(mail);
  } else if (mail.kind == kMailShufflePlan) {
    HandleShufflePlan(mail);
  } else if (mail.kind == kMailResync) {
    HandleResync(mail);
  }
}

void OfmProcess::HandleCheckpoint(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<CheckpointRequest>>(mail.body);
  auto reply = std::make_shared<WriteReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  if (resync_sources_->empty() && resync_cursors_->empty()) {
    reply->status = ofm_->Checkpoint();
  }
  // else: a resync is reading this fragment's WAL (active session, or a
  // bulk-phase cursor awaiting its cutover). Checkpointing now would
  // truncate the log out from under the delta cursor, so acknowledge but
  // skip; the next checkpoint round picks it up.
  Respond(mail.from, request->request_id, kMailWriteReply, reply,
          kControlBits);
}

void OfmProcess::HandleCreateIndex(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<CreateIndexRequest>>(mail.body);
  auto reply = std::make_shared<WriteReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  reply->status = request->ordered
                      ? ofm_->CreateBTreeIndex(request->index_name,
                                               request->columns)
                      : ofm_->CreateHashIndex(request->index_name,
                                              request->columns);
  Respond(mail.from, request->request_id, kMailWriteReply, reply,
          kControlBits);
}

void OfmProcess::HandleExecPlan(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<ExecPlanRequest>>(mail.body);
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  std::optional<PeLocalResolver> colocated;
  if (config_.registry != nullptr) {
    colocated.emplace(config_.registry, pe());
  }
  std::optional<obs::OperatorProfile> profile;
  if (request->profile) profile.emplace();
  auto result =
      ofm_->ExecutePlan(*request->plan,
                        colocated.has_value() ? &*colocated : nullptr,
                        profile.has_value() ? &*profile : nullptr,
                        request->exec_mode);
  if (m_plans_executed_ != nullptr) {
    const exec::ExecStats& stats = ofm_->last_exec_stats();
    m_plans_executed_->Increment();
    m_tuples_scanned_->Increment(stats.tuples_scanned);
    m_index_selections_->Increment(stats.index_selections);
    // Plan-level classification: tuples were scanned but no selection went
    // through an index, so at least one full fragment scan happened.
    if (stats.tuples_scanned > 0 && stats.index_selections == 0) {
      m_full_scans_->Increment();
    }
  }
  if (result.ok()) {
    std::vector<Tuple> rows = std::move(result).value();
    if (request->sample_rows > 0 && rows.size() > request->sample_rows) {
      // Sampling request (distributed sort, DESIGN.md §14.3): keep
      // `sample_rows` evenly spaced rows of the (sorted) local result —
      // per-fragment quantiles — so the reply stays bounded instead of
      // gathering the fragment.
      std::vector<Tuple> sample;
      sample.reserve(request->sample_rows);
      for (uint64_t i = 0; i < request->sample_rows; ++i) {
        sample.push_back(rows[i * rows.size() / request->sample_rows]);
      }
      rows = std::move(sample);
    }
    reply->tuples = std::make_shared<std::vector<Tuple>>(std::move(rows));
    if (profile.has_value()) {
      reply->profile =
          std::make_shared<obs::OperatorProfile>(std::move(*profile));
    }
  } else {
    reply->status = result.status();
  }
  // Not cached: plan execution is an idempotent read, and its reply
  // carries result tuples — caching it for the full dedup retention
  // window would pin every result set in memory. A duplicated request
  // simply re-executes; the coordinator drops the surplus reply.
  SendMail(mail.from, kMailExecPlanReply, reply, reply->WireBits());
}

void OfmProcess::RegisterExchangeMetrics() {
  if (config_.metrics == nullptr || m_batches_sent_ != nullptr) return;
  const obs::Labels labels = {{"fragment", config_.fragment_name}};
  m_batches_sent_ =
      config_.metrics->GetCounter("exchange.batches_sent", labels);
  m_exchange_bytes_ = config_.metrics->GetCounter("exchange.bytes", labels);
  m_exchange_stalls_ = config_.metrics->GetCounter("exchange.stalls", labels);
  m_wire_bits_ = config_.metrics->GetCounter("exchange.wire_bits", labels);
}

void OfmProcess::HandleShufflePlan(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<ShufflePlanRequest>>(mail.body);
  // A retransmitted plan racing its own in-flight execution: the running
  // shuffle will answer the coordinator, so a second stream would only
  // duplicate every batch.
  if (active_shuffles_->contains({mail.from, request->request_id})) return;

  std::optional<PeLocalResolver> colocated;
  if (config_.registry != nullptr) colocated.emplace(config_.registry, pe());
  auto result = ofm_->ExecutePlan(
      *request->plan, colocated.has_value() ? &*colocated : nullptr, nullptr,
      request->exec_mode);
  if (m_plans_executed_ != nullptr) {
    const exec::ExecStats& stats = ofm_->last_exec_stats();
    m_plans_executed_->Increment();
    m_tuples_scanned_->Increment(stats.tuples_scanned);
    m_index_selections_->Increment(stats.index_selections);
    if (stats.tuples_scanned > 0 && stats.index_selections == 0) {
      m_full_scans_->Increment();
    }
  }
  if (!result.ok()) {
    auto reply = std::make_shared<ExecPlanReply>();
    reply->request_id = request->request_id;
    reply->fragment = config_.fragment_name;
    reply->status = result.status();
    Respond(mail.from, request->request_id, kMailExecPlanReply, reply,
            kControlBits);
    return;
  }

  std::vector<Tuple> rows = std::move(result).value();
  const size_t consumers = request->consumers.size();
  PRISMA_CHECK(consumers > 0);
  const pool::CostModel& costs = config_.ofm.exec.costs;
  std::vector<std::vector<Tuple>> partitions(consumers);
  if (request->mode == ShufflePlanRequest::Mode::kBroadcast) {
    for (size_t c = 0; c + 1 < consumers; ++c) partitions[c] = rows;
    partitions[consumers - 1] = std::move(rows);
  } else if (request->mode == ShufflePlanRequest::Mode::kRange) {
    // Range routing (distributed sort, DESIGN.md §14.3): binary search of
    // the row's sort key over the coordinator's sampled boundaries, with
    // the query's own comparator, so consumer c holds exactly slice c of
    // the global order.
    static const std::vector<Tuple> kNoBoundaries;
    const std::vector<Tuple>& boundaries =
        request->boundaries != nullptr ? *request->boundaries : kNoBoundaries;
    uint64_t probes = 1;
    for (size_t n = boundaries.size(); n > 0; n /= 2) ++probes;
    ChargeCpu(static_cast<sim::SimTime>(rows.size()) * probes *
              costs.compare_ns);
    for (Tuple& tuple : rows) {
      const size_t slice = RangeSliceOf(tuple, request->sort_columns,
                                        request->sort_desc, boundaries);
      partitions[std::min(slice, consumers - 1)].push_back(std::move(tuple));
    }
  } else {
    // Same routing function as the stationary hash fragmenter
    // (Fragmenter::HashFragment), so a shuffled side lands on the
    // fragments that already hold the anchor table's matching keys.
    // Join shuffles drop NULL keys (they can never satisfy an equi-join);
    // group-by shuffles set keep_nulls — NULL is a real group — and route
    // them to consumer 0 (every producer agrees, so the group merges once).
    ChargeCpu(static_cast<sim::SimTime>(rows.size()) * costs.hash_ns);
    for (Tuple& tuple : rows) {
      const Value& key = tuple.at(request->partition_column);
      if (key.is_null()) {
        if (request->keep_nulls) partitions[0].push_back(std::move(tuple));
        continue;
      }
      partitions[key.Hash() % consumers].push_back(std::move(tuple));
    }
  }

  RegisterExchangeMetrics();
  const uint64_t token = next_shuffle_token_++;
  ShuffleState state;
  state.coordinator = mail.from;
  state.request_id = request->request_id;
  state.token = token;
  state.exchange_id = request->exchange_id;
  state.side = request->side;
  state.producer = request->producer;
  state.columnar = request->exec_mode == exec::ExecMode::kVectorized;
  state.retry_delay = config_.batch_retry_ns;
  state.channels.reserve(consumers);
  for (size_t c = 0; c < consumers; ++c) {
    obs::Gauge* gauge = nullptr;
    if (config_.metrics != nullptr) {
      gauge = config_.metrics->GetGauge(
          "exchange.credit", {{"fragment", config_.fragment_name},
                              {"channel", std::to_string(c)}});
    }
    state.channels.push_back(
        {exec::OutboundChannel(std::move(partitions[c]), request->batch_rows,
                               request->credit_window),
         request->consumers[c], gauge});
  }
  (*active_shuffles_)[{mail.from, request->request_id}] = token;
  auto [it, inserted] = shuffles_->emplace(token, std::move(state));
  PRISMA_CHECK(inserted);
  PumpShuffle(it->second);
  it->second.resend_timer =
      SendSelfAfter(it->second.retry_delay, kMailBatchResend,
                    std::make_shared<uint64_t>(token));
}

void OfmProcess::PumpShuffle(ShuffleState& state) {
  for (ShuffleChannel& sc : state.channels) {
    bool sent = false;
    while (const exec::TupleBatch* batch = sc.channel.TakeNextToSend()) {
      // Only first transmissions count toward the shuffle's modelled
      // data-plane bits; retransmissions are repair, not payload.
      state.wire_bits +=
          static_cast<uint64_t>(SendBatch(state, sc, *batch));
      sent = true;
    }
    // A drain that halted at the window edge (rather than running out of
    // batches) is one stall event: the pipeline is now waiting on acks.
    if (sent && sc.channel.Stalled() && m_exchange_stalls_ != nullptr) {
      m_exchange_stalls_->Increment();
    }
    if (sc.credit_gauge != nullptr) {
      sc.credit_gauge->Set(static_cast<int64_t>(sc.channel.credit()));
    }
  }
}

int64_t OfmProcess::SendBatch(const ShuffleState& state,
                              const ShuffleChannel& channel,
                              const exec::TupleBatch& batch) {
  auto msg = std::make_shared<TupleBatchMsg>();
  msg->exchange_id = state.exchange_id;
  msg->side = state.side;
  msg->producer = state.producer;
  msg->shuffle_token = state.token;
  msg->seq = batch.seq;
  msg->eos = batch.eos;
  if (state.columnar) {
    // Column-encoded frame (DESIGN.md §12): the serialized byte length is
    // the modelled payload size, so format savings show up in
    // exchange.wire_bits / exchange.bytes instead of being assumed.
    msg->column_frame = std::make_shared<const std::string>(
        SerializeColumnBatch(ColumnBatch::FromTuples(batch.tuples)));
  } else {
    msg->tuples = std::make_shared<std::vector<Tuple>>(batch.tuples);
  }
  const int64_t bits = msg->WireBits();
  // Marshalling cost, mirroring the consumer's per-tuple unmarshal charge.
  ChargeCpu(static_cast<sim::SimTime>(batch.tuples.size()) *
            config_.ofm.exec.costs.tuple_ns);
  if (m_batches_sent_ != nullptr) {
    m_batches_sent_->Increment();
    m_exchange_bytes_->Increment((bits - kControlBits) / 8);
    m_wire_bits_->Increment(bits);
  }
  SendMail(channel.consumer, kMailTupleBatch, std::move(msg), bits);
  return bits;
}

void OfmProcess::HandleBatchAck(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<BatchAckMsg>>(mail.body);
  auto it = shuffles_->find(msg->shuffle_token);
  if (it == shuffles_->end()) {
    // Not a shuffle: maybe the bulk stream of a resync this OFM sources
    // (tokens are drawn from the same sequence, so no collision).
    auto rs = resync_sources_->find(msg->shuffle_token);
    if (rs == resync_sources_->end()) return;  // Finished; stale ack.
    ResyncSource& source = rs->second;
    if (source.bulk == nullptr) return;
    source.bulk->set_window(msg->credit);
    if (source.bulk->OnAck(msg->ack)) {
      source.attempts = 0;
      source.retry_delay = config_.batch_retry_ns;
    }
    PumpResyncBulk(source);
    if (source.bulk->done() && !source.bulk_done) {
      // Snapshot delivered; switch to WAL-delta catch-up rounds.
      source.bulk_done = true;
      SendNextResyncDelta(source);
    }
    return;
  }
  ShuffleState& state = it->second;
  if (msg->consumer >= state.channels.size()) return;
  ShuffleChannel& channel = state.channels[msg->consumer];
  channel.channel.set_window(msg->credit);
  if (channel.channel.OnAck(msg->ack)) {
    // Window progress: the consumer is alive, so the retransmission
    // budget and backoff start over.
    state.attempts = 0;
    state.retry_delay = config_.batch_retry_ns;
  }
  PumpShuffle(state);
  for (const ShuffleChannel& sc : state.channels) {
    if (!sc.channel.done()) return;
  }
  FinishShuffle(state.token, Status::OK());
}

void OfmProcess::HandleBatchResend(const pool::Mail& mail) {
  const uint64_t token = *std::any_cast<std::shared_ptr<uint64_t>>(mail.body);
  auto it = shuffles_->find(token);
  if (it == shuffles_->end()) return;  // Shuffle finished; timer is moot.
  ShuffleState& state = it->second;
  if (++state.attempts > config_.batch_attempts) {
    FinishShuffle(token,
                  UnavailableError("shuffle from fragment " +
                                   config_.fragment_name +
                                   " made no progress after " +
                                   std::to_string(config_.batch_attempts) +
                                   " retransmission windows"));
    return;
  }
  // Retransmit the lowest unacknowledged already-sent batch of every
  // unfinished channel (repairs both a lost batch and a lost ack — the
  // consumer re-acks duplicates), then pump in case credit is free.
  for (ShuffleChannel& sc : state.channels) {
    if (sc.channel.done()) continue;
    const uint64_t seq = sc.channel.acked() + 1;
    if (!sc.channel.Sent(seq)) continue;  // First transmission: Pump's job.
    const exec::TupleBatch* batch = sc.channel.BatchAt(seq);
    if (batch == nullptr) continue;
    if (config_.metrics != nullptr) {
      if (m_batch_retransmits_ == nullptr) {
        // Registered on first retransmission so fault-free metric dumps
        // are unchanged.
        m_batch_retransmits_ = config_.metrics->GetCounter(
            "exchange.retransmits", {{"fragment", config_.fragment_name}});
      }
      m_batch_retransmits_->Increment();
    }
    SendBatch(state, sc, *batch);
  }
  PumpShuffle(state);
  state.retry_delay =
      std::min(state.retry_delay * 2, config_.batch_backoff_cap_ns);
  state.resend_timer = SendSelfAfter(state.retry_delay, kMailBatchResend,
                                     std::make_shared<uint64_t>(token));
}

void OfmProcess::FinishShuffle(uint64_t token, Status status) {
  auto it = shuffles_->find(token);
  if (it == shuffles_->end()) return;
  ShuffleState& state = it->second;
  // A settled shuffle must not leave its resend timer in the event queue:
  // the fault-free backoff is seconds-scale, and a pending tombstone-less
  // event would pad every drain-to-empty makespan measurement by that much.
  runtime()->simulator()->Cancel(state.resend_timer);
  for (ShuffleChannel& sc : state.channels) {
    if (sc.credit_gauge != nullptr) sc.credit_gauge->Set(0);
  }
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = state.request_id;
  reply->fragment = config_.fragment_name;
  reply->status = std::move(status);
  reply->shuffle_wire_bits = state.wire_bits;
  // Cached, unlike plain plan replies: a shuffle completion is control-
  // sized, and re-running the shuffle for a duplicated request would
  // re-stream every batch at the consumers.
  Respond(state.coordinator, state.request_id, kMailExecPlanReply, reply,
          kControlBits);
  active_shuffles_->erase({state.coordinator, state.request_id});
  shuffles_->erase(it);
}

// ------------------------------------------------------- Replica resync
// (DESIGN.md §13.) Source side: the GDH asks this (surviving, in-sync)
// replica to refill a freshly spawned empty peer. Phase 1 streams a
// committed snapshot over an exchange channel, then ships committed
// WAL-delta rounds stop-and-wait until the log is drained. Phase 2
// (cutover, under the fragment's exclusive lock) ships one final round
// and waits for the target to seal itself.

namespace {
// Catch-up rounds per bulk phase before the source stops chasing the
// writers and reports "caught up enough": the cutover's exclusive lock
// bounds whatever remains to one final round.
constexpr uint64_t kMaxResyncCatchupRounds = 64;
}  // namespace

void OfmProcess::HandleResync(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<ResyncRequest>>(mail.body);
  // A retransmitted request racing its own in-flight session: the running
  // session will answer the GDH.
  if (active_resync_requests_->contains({mail.from, request->request_id})) {
    return;
  }
  auto fail = [&](Status status) {
    auto reply = std::make_shared<ResyncReply>();
    reply->request_id = request->request_id;
    reply->fragment = config_.fragment_name;
    reply->status = std::move(status);
    Respond(mail.from, request->request_id, kMailResyncReply, reply,
            kControlBits);
  };
  if (request->cutover && !resync_cursors_->contains(request->resync_id)) {
    // This incarnation never served the bulk phase (crash replacement
    // between phases lost the WAL cursor), so the final delta cannot be
    // bounded. The GDH aborts and restarts the resync from scratch.
    fail(FailedPreconditionError("fragment " + config_.fragment_name +
                                 " lost the WAL cursor of resync " +
                                 std::to_string(request->resync_id) +
                                 " (crash?)"));
    return;
  }
  RegisterExchangeMetrics();
  const uint64_t token = next_shuffle_token_++;
  ResyncSource source;
  source.gdh = mail.from;
  source.target = request->target;
  source.request_id = request->request_id;
  source.resync_id = request->resync_id;
  source.token = token;
  source.credit_window = request->credit_window;
  source.columnar = request->columnar;
  source.cutover = request->cutover;
  source.retry_delay = config_.batch_retry_ns;
  if (!request->cutover) {
    // A fresh bulk request supersedes the cursor of any earlier attempt
    // on this fragment (the GDH runs at most one resync per fragment).
    resync_cursors_->clear();
    // Position the delta cursor and take the committed snapshot in the
    // same event: records at positions >= cursor are replayed by the
    // delta rounds, everything before is covered by the snapshot.
    size_t cursor = 0;
    auto boundary = ofm_->CommittedWalSince(&cursor);
    if (!boundary.ok()) {
      fail(boundary.status());
      return;
    }
    (*resync_cursors_)[request->resync_id] = cursor;
    std::vector<std::pair<storage::RowId, Tuple>> rows = ofm_->CommittedRows();
    source.bulk_tuples = rows.size();
    // Wire framing: the RowId rides as a prepended INT column so the
    // target reproduces the source's slot layout exactly.
    std::vector<Tuple> framed;
    framed.reserve(rows.size());
    for (auto& [row, tuple] : rows) {
      std::vector<Value> values;
      values.reserve(tuple.size() + 1);
      values.push_back(Value::Int(static_cast<int64_t>(row)));
      for (const Value& v : tuple.values()) values.push_back(v);
      framed.push_back(Tuple(std::move(values)));
    }
    source.bulk = std::make_unique<exec::OutboundChannel>(
        std::move(framed), request->batch_rows, request->credit_window);
  } else {
    source.bulk_done = true;  // Cutover: straight to the final delta.
  }
  (*active_resync_requests_)[{mail.from, request->request_id}] = token;
  auto [it, inserted] = resync_sources_->emplace(token, std::move(source));
  PRISMA_CHECK(inserted);
  if (it->second.cutover) {
    SendNextResyncDelta(it->second);
  } else {
    PumpResyncBulk(it->second);
  }
  // The session may already be gone (cutover finished in one round only
  // after its ack, so not yet) — the pump timer tolerates that.
  SendSelfAfter(config_.batch_retry_ns, kMailResyncPump,
                std::make_shared<uint64_t>(token));
}

void OfmProcess::PumpResyncBulk(ResyncSource& source) {
  if (source.bulk == nullptr) return;
  bool sent = false;
  while (const exec::TupleBatch* batch = source.bulk->TakeNextToSend()) {
    SendResyncBatch(source, *batch);
    sent = true;
  }
  if (sent && source.bulk->Stalled() && m_exchange_stalls_ != nullptr) {
    m_exchange_stalls_->Increment();
  }
}

void OfmProcess::SendResyncBatch(ResyncSource& source,
                                 const exec::TupleBatch& batch) {
  auto msg = std::make_shared<TupleBatchMsg>();
  msg->exchange_id = source.resync_id;
  msg->shuffle_token = source.token;
  msg->seq = batch.seq;
  msg->eos = batch.eos;
  if (source.columnar) {
    msg->column_frame = std::make_shared<const std::string>(
        SerializeColumnBatch(ColumnBatch::FromTuples(batch.tuples)));
  } else {
    msg->tuples = std::make_shared<std::vector<Tuple>>(batch.tuples);
  }
  const int64_t bits = msg->WireBits();
  source.wire_bits += static_cast<uint64_t>(bits);
  ChargeCpu(static_cast<sim::SimTime>(batch.tuples.size()) *
            config_.ofm.exec.costs.tuple_ns);
  if (m_batches_sent_ != nullptr) {
    m_batches_sent_->Increment();
    m_exchange_bytes_->Increment((bits - kControlBits) / 8);
    m_wire_bits_->Increment(bits);
  }
  SendMail(source.target, kMailTupleBatch, std::move(msg), bits);
}

void OfmProcess::SendNextResyncDelta(ResyncSource& source) {
  // Round-cap check comes BEFORE the WAL read: reading first would advance
  // the cursor past records this phase never ships, and the cutover round
  // would silently miss them.
  if (!source.cutover && source.delta_rounds >= kMaxResyncCatchupRounds) {
    FinishResyncSource(source.token, Status::OK());
    return;
  }
  auto cursor = resync_cursors_->find(source.resync_id);
  PRISMA_CHECK(cursor != resync_cursors_->end());
  auto records = ofm_->CommittedWalSince(&cursor->second);
  if (!records.ok()) {
    FinishResyncSource(source.token, records.status());
    return;
  }
  if (!source.cutover && records->empty()) {
    // Caught up: the phase is done. (The cutover phase instead always
    // ships its round — possibly empty — so the target seals itself.)
    FinishResyncSource(source.token, Status::OK());
    return;
  }
  ++source.delta_rounds;
  ++source.delta_seq;
  auto msg = std::make_shared<ResyncDeltaMsg>();
  msg->resync_id = source.resync_id;
  msg->session_token = source.token;
  msg->seq = source.delta_seq;
  msg->final_delta = source.cutover;
  msg->source_slots = ofm_->relation().num_slots();
  msg->records = std::move(records).value();
  source.delta_records += msg->records.size();
  const int64_t bits = msg->WireBits();
  source.wire_bits += static_cast<uint64_t>(bits);
  if (m_wire_bits_ != nullptr) m_wire_bits_->Increment(bits);
  source.pending_delta = msg;
  SendMail(source.target, kMailResyncDelta, std::move(msg), bits);
}

void OfmProcess::HandleResyncDeltaAck(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<ResyncDeltaAck>>(mail.body);
  auto it = resync_sources_->find(msg->session_token);
  if (it == resync_sources_->end()) return;  // Finished; stale ack.
  ResyncSource& source = it->second;
  if (source.pending_delta == nullptr || msg->ack != source.delta_seq) return;
  source.pending_delta = nullptr;
  source.attempts = 0;
  source.retry_delay = config_.batch_retry_ns;
  if (source.cutover) {
    // The target applied the final delta and sealed itself (index rebuild
    // + checkpoint); the resync is complete.
    FinishResyncSource(source.token, Status::OK());
  } else {
    SendNextResyncDelta(source);
  }
}

void OfmProcess::HandleResyncPump(const pool::Mail& mail) {
  const uint64_t token = *std::any_cast<std::shared_ptr<uint64_t>>(mail.body);
  auto it = resync_sources_->find(token);
  if (it == resync_sources_->end()) return;  // Session finished; timer moot.
  ResyncSource& source = it->second;
  if (++source.attempts > config_.batch_attempts) {
    FinishResyncSource(
        token, UnavailableError("resync from fragment " +
                                config_.fragment_name +
                                " made no progress after " +
                                std::to_string(config_.batch_attempts) +
                                " retransmission windows (crashed target?)"));
    return;
  }
  if (source.bulk != nullptr && !source.bulk->done()) {
    // Same repair rule as shuffles: retransmit the lowest unacknowledged
    // already-sent batch, then pump in case credit freed up.
    const uint64_t seq = source.bulk->acked() + 1;
    if (source.bulk->Sent(seq)) {
      if (const exec::TupleBatch* batch = source.bulk->BatchAt(seq)) {
        if (config_.metrics != nullptr) {
          if (m_batch_retransmits_ == nullptr) {
            m_batch_retransmits_ = config_.metrics->GetCounter(
                "exchange.retransmits", {{"fragment", config_.fragment_name}});
          }
          m_batch_retransmits_->Increment();
        }
        SendResyncBatch(source, *batch);
      }
    }
    PumpResyncBulk(source);
  } else if (source.pending_delta != nullptr) {
    SendMail(source.target, kMailResyncDelta, source.pending_delta,
             source.pending_delta->WireBits());
  }
  source.retry_delay =
      std::min(source.retry_delay * 2, config_.batch_backoff_cap_ns);
  SendSelfAfter(source.retry_delay, kMailResyncPump,
                std::make_shared<uint64_t>(token));
}

void OfmProcess::FinishResyncSource(uint64_t token, Status status) {
  auto it = resync_sources_->find(token);
  if (it == resync_sources_->end()) return;
  ResyncSource& source = it->second;
  // The WAL cursor survives the session only on a successful bulk phase:
  // the cutover resumes from it. Failures drop it (the GDH restarts the
  // resync under a new id), and a successful cutover is done with it.
  if (!(status.ok() && !source.cutover)) {
    resync_cursors_->erase(source.resync_id);
  }
  auto reply = std::make_shared<ResyncReply>();
  reply->request_id = source.request_id;
  reply->fragment = config_.fragment_name;
  reply->bulk_tuples = source.bulk_tuples;
  reply->delta_records = source.delta_records;
  reply->delta_rounds = source.delta_rounds;
  reply->wire_bits = source.wire_bits;
  reply->status = std::move(status);
  Respond(source.gdh, source.request_id, kMailResyncReply, reply,
          kControlBits);
  active_resync_requests_->erase({source.gdh, source.request_id});
  resync_sources_->erase(it);
}

// Target side: absorb the bulk stream (reordering / deduplicating through
// an InboundChannel), then apply stop-and-wait delta rounds; the final
// delta triggers FinishResync (index rebuild + checkpoint).

void OfmProcess::HandleResyncBatch(const pool::Mail& mail) {
  if (config_.resync_id == 0) return;  // Not a resync target.
  auto msg = std::any_cast<std::shared_ptr<TupleBatchMsg>>(mail.body);
  if (msg->exchange_id != config_.resync_id || resync_finished_) return;
  if (msg->shuffle_token < resync_token_) return;  // Superseded session.
  if (msg->shuffle_token > resync_token_) {
    // A fresh source session (the source re-answered the GDH's bulk
    // request): the old partial stream is void, restart from scratch.
    resync_token_ = msg->shuffle_token;
    resync_delta_applied_ = 0;
    *resync_in_ = exec::InboundChannel();
    ofm_->ResyncReset();
  }
  auto rows = TupleBatchRows(*msg);
  PRISMA_CHECK_OK(rows.status());
  ChargeCpu(static_cast<sim::SimTime>(rows->size()) *
            config_.ofm.exec.costs.tuple_ns);
  exec::TupleBatch batch;
  batch.seq = msg->seq;
  batch.eos = msg->eos;
  batch.tuples = std::move(rows).value();
  resync_in_->Offer(std::move(batch));
  for (exec::TupleBatch& ready : resync_in_->TakeReady()) {
    for (Tuple& t : ready.tuples) {
      const auto row = static_cast<storage::RowId>(t.at(0).int_value());
      std::vector<Value> values(t.values().begin() + 1, t.values().end());
      PRISMA_CHECK_OK(ofm_->ResyncRestoreRow(row, Tuple(std::move(values))));
    }
  }
  // Always (re-)acknowledge, even duplicates: a lost ack would stall the
  // source's credit window forever. Credit 0 = keep the window the GDH
  // granted the source (OutboundChannel::set_window ignores zero).
  auto ack = std::make_shared<BatchAckMsg>();
  ack->shuffle_token = resync_token_;
  ack->consumer = 0;
  ack->ack = resync_in_->ack();
  ack->credit = 0;
  SendMail(mail.from, kMailBatchAck, std::move(ack), kControlBits);
}

void OfmProcess::HandleResyncDelta(const pool::Mail& mail) {
  if (config_.resync_id == 0) return;  // Not a resync target.
  auto msg = std::any_cast<std::shared_ptr<ResyncDeltaMsg>>(mail.body);
  if (msg->resync_id != config_.resync_id) return;
  if (msg->session_token < resync_token_) return;  // Superseded session.
  if (msg->session_token > resync_token_) {
    // A new source session without a bulk stream: the cutover phase. It
    // continues from the contents the bulk session left behind; only the
    // stop-and-wait sequence restarts.
    resync_token_ = msg->session_token;
    resync_delta_applied_ = 0;
  }
  if (msg->seq == resync_delta_applied_ + 1) {
    if (!resync_finished_) {
      for (const std::string& record : msg->records) {
        PRISMA_CHECK_OK(ofm_->ResyncApplyRecord(record));
      }
      if (msg->final_delta) {
        // 2PC-consistent cutover: rebuild indexes and checkpoint, making
        // this replica's stable state self-sufficient for normal
        // recovery.
        PRISMA_CHECK_OK(ofm_->FinishResync(msg->source_slots));
        resync_finished_ = true;
      }
      SyncDurabilityMetrics();
    }
    resync_delta_applied_ = msg->seq;
  } else if (msg->seq > resync_delta_applied_ + 1) {
    // A gap: wait for the retransmission of the missing round. (Cannot
    // happen stop-and-wait unless the network reordered heavily; the
    // cumulative ack below repairs it either way.)
    return;
  }
  // seq <= applied falls through: re-acknowledge so a lost ack cannot
  // wedge the source.
  auto ack = std::make_shared<ResyncDeltaAck>();
  ack->resync_id = msg->resync_id;
  ack->session_token = msg->session_token;
  ack->ack = resync_delta_applied_;
  SendMail(mail.from, kMailResyncDeltaAck, std::move(ack), kControlBits);
}

void OfmProcess::HandleWrite(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<WriteRequest>>(mail.body);
  auto reply = std::make_shared<WriteReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  if (Finished(request->txn)) {
    // A delayed or reordered write arriving after its transaction already
    // terminated here: applying it would re-open the transaction and leak
    // uncommitted effects, so refuse it.
    reply->status = AbortedError("transaction " +
                                 std::to_string(request->txn) +
                                 " already terminated on fragment " +
                                 config_.fragment_name);
    Respond(mail.from, request->request_id, kMailWriteReply, reply,
            kControlBits);
    return;
  }
  if (request->txn != exec::kAutoCommit) seen_txns_->insert(request->txn);
  switch (request->op) {
    case WriteRequest::Op::kInsert: {
      auto row = ofm_->Insert(request->txn, request->tuple);
      if (row.ok()) {
        reply->affected_rows = 1;
        reply->row_delta = 1;
      } else {
        reply->status = row.status();
      }
      break;
    }
    case WriteRequest::Op::kDeleteWhere: {
      auto count = ofm_->DeleteWhere(request->txn, request->predicate.get());
      if (count.ok()) {
        reply->affected_rows = *count;
        reply->row_delta = -static_cast<int64_t>(*count);
      } else {
        reply->status = count.status();
      }
      break;
    }
    case WriteRequest::Op::kUpdateWhere: {
      std::vector<std::pair<size_t, const algebra::Expr*>> assignments;
      assignments.reserve(request->assignments.size());
      for (const auto& [col, expr] : request->assignments) {
        assignments.push_back({col, expr.get()});
      }
      auto count =
          ofm_->UpdateWhere(request->txn, request->predicate.get(), assignments);
      if (count.ok()) {
        reply->affected_rows = *count;
      } else {
        reply->status = count.status();
      }
      break;
    }
  }
  if (m_writes_ != nullptr && reply->status.ok()) m_writes_->Increment();
  SyncDurabilityMetrics();
  Respond(mail.from, request->request_id, kMailWriteReply, reply,
          kControlBits);
}

void OfmProcess::HandleTxnControl(const pool::Mail& mail) {
  auto request = std::any_cast<std::shared_ptr<TxnControlRequest>>(mail.body);
  auto reply = std::make_shared<TxnControlReply>();
  reply->request_id = request->request_id;
  reply->fragment = config_.fragment_name;
  switch (request->op) {
    case TxnControlRequest::Op::kPrepare:
      if (InDoubt(request->txn)) {
        // Prepared before the crash; the vote stands.
        reply->status = Status::OK();
      } else if (!seen_txns_->contains(request->txn)) {
        // This incarnation never received a write of the transaction: a
        // crash replacement lost the writes (the coordinator only sends
        // prepare after every write was acknowledged). Voting yes could
        // commit a partial transaction, so vote no.
        reply->status =
            AbortedError("fragment " + config_.fragment_name +
                         " lost state of transaction " +
                         std::to_string(request->txn) + " (crash?)");
      } else {
        // A transaction whose writes all matched zero rows has no Ofm
        // state; Prepare treats it as a trivial yes.
        reply->status = ofm_->Prepare(request->txn);
      }
      break;
    case TxnControlRequest::Op::kCommit:
      reply->status = InDoubt(request->txn)
                          ? ofm_->ResolveRecovered(request->txn, true)
                          : ofm_->Commit(request->txn);
      // Recorded even when this OFM never saw the transaction: a delayed
      // write of it may still arrive and must find it terminated.
      NoteFinished(request->txn);
      seen_txns_->erase(request->txn);
      break;
    case TxnControlRequest::Op::kAbort:
      reply->status = InDoubt(request->txn)
                          ? ofm_->ResolveRecovered(request->txn, false)
                          : ofm_->Abort(request->txn);
      NoteFinished(request->txn);
      seen_txns_->erase(request->txn);
      break;
  }
  if (reply->status.ok() && m_commits_ != nullptr) {
    if (request->op == TxnControlRequest::Op::kCommit) m_commits_->Increment();
    if (request->op == TxnControlRequest::Op::kAbort) m_aborts_->Increment();
  }
  SyncDurabilityMetrics();
  Respond(mail.from, request->request_id, kMailTxnControlReply, reply,
          kControlBits);
  MaybeReplayStalled();
}

void OfmProcess::HandleDecisionReply(const pool::Mail& mail) {
  auto reply = std::any_cast<std::shared_ptr<DecisionReply>>(mail.body);
  PRISMA_CHECK(reply->transactions.size() == reply->commit.size());
  // Late and duplicated replies are fine: only transactions still in
  // doubt are resolved, matched through the echoed ids.
  for (size_t i = 0; i < reply->transactions.size(); ++i) {
    if (!InDoubt(reply->transactions[i])) continue;
    PRISMA_CHECK_OK(
        ofm_->ResolveRecovered(reply->transactions[i], reply->commit[i]));
    NoteFinished(reply->transactions[i]);
  }
  SyncDurabilityMetrics();
  MaybeReplayStalled();
}

void OfmProcess::SyncDurabilityMetrics() {
  if (m_wal_records_ == nullptr) return;
  const uint64_t wal = ofm_->wal_records();
  const uint64_t redo = ofm_->redo_records_applied();
  m_wal_records_->Increment(wal - wal_synced_);
  m_redo_applied_->Increment(redo - redo_synced_);
  wal_synced_ = wal;
  redo_synced_ = redo;
}

}  // namespace prisma::gdh
